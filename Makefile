GO ?= go

.PHONY: all vet build test race check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fault-injection and scan paths are heavily concurrent; run them under
# the race detector.
race:
	$(GO) test -race ./internal/kvstore ./internal/engine

check: vet build test race

# Read-path benchmarks (region scan, k-way merge, scan executor, hot SRQ).
# Human-readable output goes to stderr; machine-readable results land in
# BENCH_readpath.json for archival and regression diffing.
bench:
	$(GO) test -run= -bench 'BenchmarkRegionScan|BenchmarkScanRangesManyRegions|BenchmarkMergeRuns' \
		-benchmem -benchtime=2s ./internal/kvstore/ > /tmp/bench_kvstore.txt
	$(GO) test -run= -bench 'BenchmarkSRQHot' -benchmem -benchtime=2s ./internal/engine/ > /tmp/bench_engine.txt
	cat /tmp/bench_kvstore.txt /tmp/bench_engine.txt | $(GO) run ./cmd/benchjson -o BENCH_readpath.json
