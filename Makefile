GO ?= go

.PHONY: all vet build test race check bench bench-write bench-query \
	bench-overhead bench-serving lint-logs obs-check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fault-injection and scan paths are heavily concurrent; run them under
# the race detector.
race:
	$(GO) test -race ./internal/kvstore ./internal/engine

# Library code must log through log/slog (or stay silent) — bare fmt.Print*
# writes to stdout bypass the structured request log and pollute exposition
# pipes. Test files are exempt.
lint-logs:
	@if grep -rn --include='*.go' --exclude='*_test.go' 'fmt\.Print' internal/; then \
		echo 'lint-logs: use log/slog (or return errors) instead of fmt.Print* in internal/' >&2; \
		exit 1; \
	fi
	@echo 'lint-logs: OK'

check: vet build lint-logs test race

# Boot tmand, scrape /metrics, and validate the Prometheus exposition
# (parseability, TYPE declarations, histogram consistency, minimum series
# count). obscheck retries while the server comes up, so no sleeps.
OBS_ADDR ?= 127.0.0.1:18080
OBS_REQUIRED = tman_bg_jobs_total,tman_bg_bytes_read_total,tman_bg_bytes_written_total,tman_bg_seconds_total,tman_bg_stall_seconds_total,tman_bg_jobs_running,tman_slo_good_total,tman_slo_late_total,tman_slo_shed_total,tman_slo_objective_seconds,tman_slo_burn_rate_1m,tman_slo_burn_rate_5m,tman_scan_queue_depth,tman_region_hottest_rows,tman_region_hotness_share
obs-check:
	$(GO) build -o /tmp/tmand-obscheck ./cmd/tmand
	$(GO) build -o /tmp/obscheck ./cmd/obscheck
	@/tmp/tmand-obscheck -addr $(OBS_ADDR) -log-level warn -trace-sample 1 & pid=$$!; \
	/tmp/obscheck -url http://$(OBS_ADDR)/metrics -min-series 250 \
		-require $(OBS_REQUIRED); rc=$$?; \
	kill $$pid 2>/dev/null; exit $$rc

# Read-path benchmarks (region scan, k-way merge, scan executor, hot SRQ).
# Human-readable output goes to stderr; machine-readable results land in
# BENCH_readpath.json for archival and regression diffing.
bench:
	$(GO) test -run= -bench 'BenchmarkRegionScan|BenchmarkScanRangesManyRegions|BenchmarkMergeRuns|BenchmarkBlock' \
		-benchmem -benchtime=2s ./internal/kvstore/ > /tmp/bench_kvstore.txt
	$(GO) test -run= -bench 'BenchmarkSRQHot' -benchmem -benchtime=2s ./internal/engine/ > /tmp/bench_engine.txt
	$(GO) run ./cmd/benchjson -suite readpath -o BENCH_readpath.json \
		/tmp/bench_kvstore.txt /tmp/bench_engine.txt

# Write-path benchmarks (per-region MultiPut vs sequential Put, WAL group
# commit, engine BatchPut vs Put loop, sustained-ingest write amplification
# for the tiered vs monolithic compaction policies). Each benchmark runs
# WRITE_BENCHCOUNT times and benchjson archives the fastest (min-of-N, same
# noise rationale as bench-query). Results land in BENCH_writepath.json.
WRITE_BENCHCOUNT ?= 3
bench-write:
	$(GO) test -run= -bench 'BenchmarkWrite(Sequential|Batched)' -count=$(WRITE_BENCHCOUNT) \
		-benchmem -benchtime=2s ./internal/kvstore/ > /tmp/bench_write_kvstore.txt
	$(GO) test -run= -bench 'BenchmarkSustainedIngest' -count=$(WRITE_BENCHCOUNT) \
		-benchmem -benchtime=1x ./internal/kvstore/ > /tmp/bench_write_sustained.txt
	$(GO) test -run= -bench 'BenchmarkEngineIngest' -count=$(WRITE_BENCHCOUNT) \
		-benchmem -benchtime=20x ./internal/engine/ > /tmp/bench_write_engine.txt
	$(GO) run ./cmd/benchjson -suite writepath -o BENCH_writepath.json \
		/tmp/bench_write_kvstore.txt /tmp/bench_write_sustained.txt /tmp/bench_write_engine.txt

# Query-path throughput benchmarks: the mixed workload driven by 1/4/8
# concurrent clients against the tuned path (sharded LFU + singleflight +
# plan cache) and the pre-PR baseline (single mutex, no plan cache).
# QUERY_BENCHTIME=1x gives CI a smoke run; the default measures for real.
# Each benchmark runs QUERY_BENCHCOUNT times and benchjson archives the
# fastest — single samples swing ±20% on shared single-core hosts, far past
# any useful regression budget, while min-of-N rejects the (one-sided)
# CPU-steal noise.
QUERY_BENCHTIME ?= 2000x
QUERY_BENCHCOUNT ?= 3
bench-query:
	$(GO) test -run= -bench 'BenchmarkQueryPath' -count=$(QUERY_BENCHCOUNT) \
		-benchmem -benchtime=$(QUERY_BENCHTIME) ./internal/engine/ > /tmp/bench_querypath.txt
	$(GO) run ./cmd/benchjson -suite querypath -o BENCH_querypath.json \
		/tmp/bench_querypath.txt

# Instrumentation overhead assertion: rerun the concurrent query-path
# benchmark (metrics on, trace sampling off — the production default) and
# compare ns/op against the archived pre-instrumentation baseline in
# BENCH_querypath.json. Fails when any benchmark regresses more than
# OVERHEAD_BUDGET percent.
OVERHEAD_BUDGET ?= 2
bench-overhead:
	$(GO) test -run= -bench 'BenchmarkQueryPathConcurrent' -count=$(QUERY_BENCHCOUNT) \
		-benchmem -benchtime=$(QUERY_BENCHTIME) ./internal/engine/ > /tmp/bench_overhead.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_querypath.json -suite querypath \
		-max-regress $(OVERHEAD_BUDGET) /tmp/bench_overhead.txt

# Serving benchmark: boot tmand with admission control and SLO tracking on,
# drive it with the open-loop Poisson harness (coordinated-omission-safe
# percentiles + goodput), archive BENCH_serving.json. SERVING_GATE=enforce
# makes the SLO verdict the exit status; the default reports only.
SERVING_ADDR ?= 127.0.0.1:18090
SERVING_RATE ?= 150
SERVING_DURATION ?= 30s
SERVING_GATE ?= report
bench-serving:
	$(GO) build -o /tmp/tmand-serving ./cmd/tmand
	$(GO) build -o /tmp/tman-loadgen ./cmd/tman-loadgen
	@/tmp/tmand-serving -addr $(SERVING_ADDR) -boundary 70,0,140,55 -log-level warn \
		-slo-p99-ms 250 -max-inflight 256 & pid=$$!; \
	sleep 1; \
	/tmp/tman-loadgen -addr http://$(SERVING_ADDR) -rate $(SERVING_RATE) \
		-duration $(SERVING_DURATION) -deadline-ms 250 -gate $(SERVING_GATE) \
		-o BENCH_serving.json; rc=$$?; \
	kill $$pid 2>/dev/null; exit $$rc
