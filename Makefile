GO ?= go

.PHONY: all vet build test race check bench bench-write bench-query

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fault-injection and scan paths are heavily concurrent; run them under
# the race detector.
race:
	$(GO) test -race ./internal/kvstore ./internal/engine

check: vet build test race

# Read-path benchmarks (region scan, k-way merge, scan executor, hot SRQ).
# Human-readable output goes to stderr; machine-readable results land in
# BENCH_readpath.json for archival and regression diffing.
bench:
	$(GO) test -run= -bench 'BenchmarkRegionScan|BenchmarkScanRangesManyRegions|BenchmarkMergeRuns' \
		-benchmem -benchtime=2s ./internal/kvstore/ > /tmp/bench_kvstore.txt
	$(GO) test -run= -bench 'BenchmarkSRQHot' -benchmem -benchtime=2s ./internal/engine/ > /tmp/bench_engine.txt
	$(GO) run ./cmd/benchjson -suite readpath -o BENCH_readpath.json \
		/tmp/bench_kvstore.txt /tmp/bench_engine.txt

# Write-path benchmarks (per-region MultiPut vs sequential Put, WAL group
# commit, engine BatchPut vs Put loop). Results land in BENCH_writepath.json.
bench-write:
	$(GO) test -run= -bench 'BenchmarkWrite(Sequential|Batched)' \
		-benchmem -benchtime=2s ./internal/kvstore/ > /tmp/bench_write_kvstore.txt
	$(GO) test -run= -bench 'BenchmarkEngineIngest' \
		-benchmem -benchtime=20x ./internal/engine/ > /tmp/bench_write_engine.txt
	$(GO) run ./cmd/benchjson -suite writepath -o BENCH_writepath.json \
		/tmp/bench_write_kvstore.txt /tmp/bench_write_engine.txt

# Query-path throughput benchmarks: the mixed workload driven by 1/4/8
# concurrent clients against the tuned path (sharded LFU + singleflight +
# plan cache) and the pre-PR baseline (single mutex, no plan cache).
# QUERY_BENCHTIME=1x gives CI a smoke run; the default measures for real.
QUERY_BENCHTIME ?= 2000x
bench-query:
	$(GO) test -run= -bench 'BenchmarkQueryPath' \
		-benchmem -benchtime=$(QUERY_BENCHTIME) ./internal/engine/ > /tmp/bench_querypath.txt
	$(GO) run ./cmd/benchjson -suite querypath -o BENCH_querypath.json \
		/tmp/bench_querypath.txt
