GO ?= go

.PHONY: all vet build test race check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fault-injection and scan paths are heavily concurrent; run them under
# the race detector.
race:
	$(GO) test -race ./internal/kvstore ./internal/engine

check: vet build test race
