// Route similarity: given one delivery route, find routes that follow the
// same roads — threshold search for near-duplicates and top-k search for
// candidates to merge, under three distance measures.
//
//	go run ./examples/similarity
package main

import (
	"fmt"
	"log"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/workload"
)

func main() {
	ds := workload.TLorrySim(4000, 99)
	db, err := tman.Open(ds.Boundary)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.PutBatch(ds.Trajs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d routes\n\n", db.Len())

	query := ds.Trajs[42]
	fmt.Printf("query route: %s (%d points, MBR %v)\n\n", query.TID, query.Len(), query.MBR())

	// Near-duplicates: Hausdorff within 0.5%% of the service area.
	const theta = 0.005
	for _, m := range []tman.Measure{tman.Frechet, tman.DTW, tman.Hausdorff} {
		th := theta
		if m == tman.DTW {
			th = 0.08 // DTW accumulates per-point distances
		}
		dups, rep, err := db.QuerySimilarThreshold(query, m, th)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s θ=%.3f: %3d routes within threshold (%.2fms, %d candidates scanned)\n",
			m, th, len(dups), float64(rep.Elapsed.Microseconds())/1000, rep.Candidates)
	}

	// Merge candidates: the 5 most similar routes under Fréchet.
	fmt.Println()
	top, rep, err := db.QuerySimilarTopK(query, tman.Frechet, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 most similar routes (%.2fms):\n", float64(rep.Elapsed.Microseconds())/1000)
	for i, t := range top {
		fmt.Printf("  %d. %s (object %s, %d points)\n", i+1, t.TID, t.OID, t.Len())
	}
}
