// Quickstart: open a TMan database, store a handful of taxi trips, and run
// each of the six query types.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tman "github.com/tman-db/tman"
)

func main() {
	// A TMan database is opened over the spatial boundary of the data it
	// will hold; tman.Beijing is the TDrive boundary from the paper.
	db, err := tman.Open(tman.Beijing)
	if err != nil {
		log.Fatal(err)
	}

	// Store a few trips. Each trajectory needs a unique TID, an object id
	// (the vehicle), and time-ordered points.
	base := int64(1_700_000_000_000) // some Tuesday, in Unix milliseconds
	trips := []*tman.Trajectory{
		trip("taxi-1", "trip-001", base, 116.390, 39.910, 0.0012, 0.0008),
		trip("taxi-1", "trip-002", base+2*3600_000, 116.420, 39.930, -0.0010, 0.0006),
		trip("taxi-2", "trip-003", base+30*60_000, 116.395, 39.905, 0.0009, -0.0011),
		trip("taxi-2", "trip-004", base+26*3600_000, 116.500, 39.990, 0.0011, 0.0004),
		trip("taxi-3", "trip-005", base+3600_000, 116.380, 39.915, 0.0013, 0.0013),
	}
	if err := db.PutBatch(trips); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d trips\n\n", db.Len())

	// 1. Temporal range query: everything moving in the first 90 minutes.
	window := tman.TimeRange{Start: base, End: base + 90*60_000}
	results, rep, err := db.QueryTimeRange(window)
	must(err)
	fmt.Printf("time range %v..+90m: %d trips (plan %s, %d candidates)\n",
		base, len(results), rep.Plan, rep.Candidates)

	// 2. Spatial range query: who crossed this block?
	block := tman.Rect{MinX: 116.388, MinY: 39.904, MaxX: 116.402, MaxY: 39.916}
	results, rep, err = db.QuerySpace(block)
	must(err)
	fmt.Printf("block query: %d trips (plan %s)\n", len(results), rep.Plan)

	// 3. Object query: taxi-1's trips that morning.
	results, _, err = db.QueryObject("taxi-1", tman.TimeRange{Start: base, End: base + 6*3600_000})
	must(err)
	fmt.Printf("taxi-1 before noon: %d trips\n", len(results))

	// 4. Spatio-temporal query: the block, during the first two hours.
	results, rep, err = db.QuerySpaceTime(block, tman.TimeRange{Start: base, End: base + 2*3600_000})
	must(err)
	fmt.Printf("block x 2h: %d trips (optimizer chose %s)\n", len(results), rep.Plan)

	// 5. Similarity: trips within Hausdorff distance 0.01 (normalized) of
	// trip-001.
	results, _, err = db.QuerySimilarThreshold(trips[0], tman.Hausdorff, 0.01)
	must(err)
	fmt.Printf("similar to trip-001 (threshold): %d trips\n", len(results))

	// 6. Top-k: the 2 trips most similar to trip-001 under Fréchet.
	results, _, err = db.QuerySimilarTopK(trips[0], tman.Frechet, 2)
	must(err)
	fmt.Printf("top-2 similar to trip-001:")
	for _, t := range results {
		fmt.Printf(" %s", t.TID)
	}
	fmt.Println()
}

// trip builds a straight-ish 20-point trajectory starting at (x, y) and
// drifting by (dx, dy) per minute.
func trip(oid, tid string, start int64, x, y, dx, dy float64) *tman.Trajectory {
	t := &tman.Trajectory{OID: oid, TID: tid}
	for i := 0; i < 20; i++ {
		t.Points = append(t.Points, tman.Point{
			X: x + float64(i)*dx,
			Y: y + float64(i)*dy,
			T: start + int64(i)*60_000,
		})
	}
	return t
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
