// Fleet monitoring: the workload the paper's introduction motivates —
// tens of thousands of courier trajectories per day, answered with
// ID-temporal queries ("where was courier X this morning?") and live batch
// ingestion.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/workload"
)

func main() {
	// Simulate a day of courier activity in the Lorry service area.
	ds := workload.TLorrySim(5000, 2024)
	db, err := tman.Open(ds.Boundary,
		tman.WithShards(4),
		tman.WithShapeEncoding(tman.EncodingGreedy),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Morning bulk load.
	started := time.Now()
	if err := db.PutBatch(ds.Trajs[:4000]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d trajectories in %v\n", db.Len(), time.Since(started).Round(time.Millisecond))

	// Live ingestion: new legs stream in as couriers finish them.
	for _, t := range ds.Trajs[4000:] {
		if err := db.Put(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after live ingest: %d trajectories\n\n", db.Len())

	// Dispatcher workflow: review one courier's recent legs.
	courier := ds.Trajs[0].OID
	dayStart := ds.Trajs[0].TimeRange().Start - 6*3600_000
	legs, rep, err := db.QueryObject(courier, tman.TimeRange{Start: dayStart, End: dayStart + 24*3600_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("courier %s: %d legs in the last 24h (%.2fms, %d candidates)\n",
		courier, len(legs), float64(rep.Elapsed.Microseconds())/1000, rep.Candidates)
	for i, leg := range legs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(legs)-5)
			break
		}
		tr := leg.TimeRange()
		fmt.Printf("  %s: %d points, %s\n", leg.TID, leg.Len(),
			time.Duration(tr.Duration())*time.Millisecond)
	}

	// A leg was recorded against the wrong courier: remove and re-insert.
	if len(legs) > 0 {
		wrong := legs[0]
		if err := db.Delete(wrong); err != nil {
			log.Fatal(err)
		}
		fixed := wrong.Clone()
		fixed.OID = "reassigned-courier"
		fixed.TID = wrong.TID + "-fixed"
		if err := db.Put(fixed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreassigned %s -> %s (%d trajectories stored)\n", wrong.TID, fixed.TID, db.Len())
	}
}
