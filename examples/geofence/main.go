// Geofence analytics: spatial and spatio-temporal range queries over a
// restricted zone — "which vehicles entered the port area during the night
// shift?" — exercising TShape's shape-aware pruning on trajectories that
// pass *near* the zone without entering it.
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"log"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/workload"
)

func main() {
	ds := workload.TDriveSim(8000, 7)
	db, err := tman.Open(ds.Boundary, tman.WithShapeGrid(3, 3, 16))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.PutBatch(ds.Trajs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d trajectories\n\n", db.Len())

	// A 3km x 3km restricted zone in the Beijing core.
	zone := tman.Rect{MinX: 116.40, MinY: 39.90, MaxX: 116.427, MaxY: 39.927}

	// All-time intrusions.
	hits, rep, err := db.QuerySpace(zone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone intrusions (all time): %d trajectories\n", len(hits))
	fmt.Printf("  plan=%s windows=%d candidates=%d scanned_rows=%d elapsed=%.2fms\n",
		rep.Plan, rep.Windows, rep.Candidates, rep.Store.RowsScanned,
		float64(rep.Elapsed.Microseconds())/1000)

	// The TShape index prunes trajectories whose enlarged element overlaps
	// the zone but whose actual shape avoids it; compare candidates with
	// results to see the refinement at work.
	if len(hits) > 0 {
		fmt.Printf("  refinement ratio: %d candidates -> %d hits\n\n", rep.Candidates, len(hits))
	}

	// Night shift only (first 8 hours of the dataset's first day).
	night := tman.TimeRange{
		Start: ds.TimeOrigin,
		End:   ds.TimeOrigin + 8*3600_000,
	}
	nightHits, rep2, err := db.QuerySpaceTime(zone, night)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone x night shift: %d trajectories (optimizer plan: %s)\n", len(nightHits), rep2.Plan)

	// Per-object report: which vehicles entered, and how often.
	perVehicle := map[string]int{}
	for _, t := range hits {
		perVehicle[t.OID]++
	}
	repeat := 0
	for _, n := range perVehicle {
		if n > 1 {
			repeat++
		}
	}
	fmt.Printf("distinct vehicles in zone: %d (%d repeat visitors)\n", len(perVehicle), repeat)
}
