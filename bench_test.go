// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (driving the same runners as cmd/tman-bench, at reduced
// scale and with output discarded), plus micro-benchmarks of the core
// operations. Figure-level benchmarks execute a full experiment per
// iteration; run them with -benchtime=1x (or a small count):
//
//	go test -bench=BenchmarkFig -benchtime=1x
//	go test -bench=BenchmarkMicro
package tman_test

import (
	"io"
	"testing"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/bench"
	"github.com/tman-db/tman/internal/workload"
)

// benchOpts returns reduced-scale options for figure-level benchmarks.
func benchOpts() bench.Options {
	o := bench.DefaultOptions()
	o.TDriveSize = 1500
	o.LorrySize = 2500
	o.Queries = 6
	o.Out = io.Discard
	return o
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14Distributions(b *testing.B)    { runExperiment(b, "fig14") }
func BenchmarkTable1TemporalIndexes(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig15AlphaBeta(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkFig16Encodings(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17TRQ(b *testing.B)              { runExperiment(b, "fig17") }
func BenchmarkFig18SRQ(b *testing.B)              { runExperiment(b, "fig18") }
func BenchmarkFig19IDTSTRQ(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkFig20ThresholdSim(b *testing.B)     { runExperiment(b, "fig20") }
func BenchmarkFig21TopK(b *testing.B)             { runExperiment(b, "fig21") }
func BenchmarkFig22Scalability(b *testing.B)      { runExperiment(b, "fig22") }
func BenchmarkFig23TailLatency(b *testing.B)      { runExperiment(b, "fig23") }
func BenchmarkAblation1Storage(b *testing.B)      { runExperiment(b, "ablation1") }

// ------------------------------------------------------------- micro ---

// benchDB builds a loaded DB for operation-level micro-benchmarks.
func benchDB(b *testing.B, n int) (*tman.DB, *workload.Dataset) {
	b.Helper()
	ds := workload.TDriveSim(n, 7)
	db, err := tman.Open(ds.Boundary)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.PutBatch(ds.Trajs); err != nil {
		b.Fatal(err)
	}
	return db, ds
}

func BenchmarkMicroPut(b *testing.B) {
	ds := workload.TDriveSim(b.N+1, 11)
	db, err := tman.Open(ds.Boundary)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(ds.Trajs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSpatialRangeQuery(b *testing.B) {
	db, ds := benchDB(b, 3000)
	sampler := workload.NewQuerySampler(ds, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QuerySpace(sampler.SpaceWindow(1.5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTemporalRangeQuery(b *testing.B) {
	db, ds := benchDB(b, 3000)
	sampler := workload.NewQuerySampler(ds, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.QueryTimeRange(sampler.TimeWindow(3600_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSpatioTemporalQuery(b *testing.B) {
	db, ds := benchDB(b, 3000)
	sampler := workload.NewQuerySampler(ds, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := db.QuerySpaceTime(sampler.SpaceWindow(2.0), sampler.TimeWindow(6*3600_000))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroObjectQuery(b *testing.B) {
	db, ds := benchDB(b, 3000)
	sampler := workload.NewQuerySampler(ds, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid, tw := sampler.ObjectWindow(12 * 3600_000)
		if _, _, err := db.QueryObject(oid, tw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTopKSimilarity(b *testing.B) {
	db, ds := benchDB(b, 1000)
	sampler := workload.NewQuerySampler(ds, 29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := sampler.QueryTrajectory()
		if _, _, err := db.QuerySimilarTopK(q, tman.Frechet, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: figure benches must exist for every experiment id the harness
// knows, so the list cannot silently drift.
func TestBenchmarkCoverageMatchesExperiments(t *testing.T) {
	want := map[string]bool{}
	for _, e := range bench.Experiments {
		want[e.Name] = true
	}
	for _, name := range []string{
		"fig14", "table1", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23", "ablation1",
	} {
		if !want[name] {
			t.Errorf("benchmark references unknown experiment %q", name)
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("experiment %q has no benchmark target", name)
	}
}
