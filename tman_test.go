package tman_test

import (
	"fmt"
	"testing"

	tman "github.com/tman-db/tman"
)

func sampleTrip(oid, tid string, startT int64, xs, ys float64) *tman.Trajectory {
	t := &tman.Trajectory{OID: oid, TID: tid}
	x, y := xs, ys
	for i := 0; i < 20; i++ {
		x += 0.001
		y += 0.0005
		t.Points = append(t.Points, tman.Point{X: x, Y: y, T: startT + int64(i)*60_000})
	}
	return t
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := tman.Open(tman.Beijing,
		tman.WithTimePeriod(3600_000, 48),
		tman.WithShapeGrid(3, 3, 14),
		tman.WithShapeEncoding(tman.EncodingGreedy),
		tman.WithShards(2),
		tman.WithIndexCache(true, 512),
	)
	if err != nil {
		t.Fatal(err)
	}

	base := int64(1_700_000_000_000)
	for i := 0; i < 50; i++ {
		trip := sampleTrip(fmt.Sprintf("taxi-%d", i%5), fmt.Sprintf("trip-%03d", i),
			base+int64(i)*3600_000, 116.3+float64(i%10)*0.01, 39.9)
		if err := db.Put(trip); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 50 {
		t.Fatalf("Len = %d", db.Len())
	}

	// Temporal.
	trips, rep, err := db.QueryTimeRange(tman.TimeRange{Start: base, End: base + 2*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) == 0 || rep.Plan == "" {
		t.Fatalf("temporal query: %d trips, plan %q", len(trips), rep.Plan)
	}

	// Spatial.
	trips, _, err = db.QuerySpace(tman.Rect{MinX: 116.3, MinY: 39.89, MaxX: 116.35, MaxY: 39.93})
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) == 0 {
		t.Fatal("spatial query found nothing")
	}

	// Object.
	trips, _, err = db.QueryObject("taxi-1", tman.TimeRange{Start: base, End: base + 50*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trips {
		if tr.OID != "taxi-1" {
			t.Fatalf("object query returned %s", tr.OID)
		}
	}
	if len(trips) != 10 {
		t.Fatalf("object query = %d trips, want 10", len(trips))
	}

	// Spatio-temporal.
	trips, rep, err = db.QuerySpaceTime(
		tman.Rect{MinX: 116.29, MinY: 39.88, MaxX: 116.42, MaxY: 39.95},
		tman.TimeRange{Start: base, End: base + 5*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == "" {
		t.Error("spatio-temporal plan missing")
	}
	for _, tr := range trips {
		if !tr.TimeRange().Intersects(tman.TimeRange{Start: base, End: base + 5*3600_000}) {
			t.Error("result outside time range")
		}
	}

	// Similarity.
	q := sampleTrip("probe", "probe-1", base, 116.3, 39.9)
	sims, _, err := db.QuerySimilarTopK(q, tman.Frechet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 3 {
		t.Fatalf("topk = %d trips", len(sims))
	}
	within, _, err := db.QuerySimilarThreshold(q, tman.Hausdorff, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) == 0 {
		t.Error("threshold similarity found nothing in a dense cluster")
	}

	// Delete.
	victim := trips[0]
	if err := db.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 49 {
		t.Fatalf("Len after delete = %d", db.Len())
	}
}

func TestOpenRejectsBadBoundary(t *testing.T) {
	if _, err := tman.Open(tman.Rect{}); err == nil {
		t.Error("zero boundary accepted")
	}
}

func ExampleOpen() {
	db, err := tman.Open(tman.Beijing)
	if err != nil {
		panic(err)
	}
	trip := &tman.Trajectory{
		OID: "taxi-42",
		TID: "trip-0001",
		Points: []tman.Point{
			{X: 116.39, Y: 39.91, T: 1_700_000_000_000},
			{X: 116.40, Y: 39.92, T: 1_700_000_060_000},
			{X: 116.41, Y: 39.92, T: 1_700_000_120_000},
		},
	}
	if err := db.Put(trip); err != nil {
		panic(err)
	}
	trips, _, _ := db.QuerySpace(tman.Rect{MinX: 116.3, MinY: 39.8, MaxX: 116.5, MaxY: 40.0})
	fmt.Println("trips found:", len(trips))
	// Output: trips found: 1
}

func TestDurablePublicAPI(t *testing.T) {
	dir := t.TempDir()
	db, err := tman.Open(tman.Beijing, tman.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1_700_000_000_000)
	for i := 0; i < 20; i++ {
		if err := db.Put(sampleTrip("taxi", fmt.Sprintf("trip-%02d", i), base+int64(i)*3600_000, 116.3, 39.9)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := tman.Open(tman.Beijing, tman.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 20 {
		t.Fatalf("recovered Len = %d, want 20", db2.Len())
	}
	trips, _, err := db2.QueryTimeRange(tman.TimeRange{Start: base, End: base + 30*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != 20 {
		t.Fatalf("recovered query found %d trips", len(trips))
	}
}

func TestPrimaryTemporalOption(t *testing.T) {
	db, err := tman.Open(tman.Beijing, tman.WithPrimaryTemporal())
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1_700_000_000_000)
	db.Put(sampleTrip("taxi", "t1", base, 116.3, 39.9))
	_, rep, err := db.QueryTimeRange(tman.TimeRange{Start: base, End: base + 3600_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan != "primary:tr" {
		t.Errorf("plan = %q, want primary:tr", rep.Plan)
	}
}
