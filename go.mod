module github.com/tman-db/tman

go 1.22
