// Command tman-load generates a synthetic workload and drives a running
// tmand server: bulk ingest followed by a mixed query storm, reporting
// throughput and latency percentiles. A smoke test for deployments.
//
//	tmand -boundary 70,0,140,55 &
//	tman-load -addr http://localhost:8080 -n 5000 -queries 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"github.com/tman-db/tman/internal/httpapi"
	"github.com/tman-db/tman/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "tmand base URL")
		n       = flag.Int("n", 5000, "trajectories to generate (Lorry-sim)")
		queries = flag.Int("queries", 100, "queries per type")
		batch   = flag.Int("batch", 500, "ingest batch size")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	ds := workload.TLorrySim(*n, *seed)
	client := &http.Client{Timeout: 60 * time.Second}

	// Ingest in batches.
	started := time.Now()
	for lo := 0; lo < len(ds.Trajs); lo += *batch {
		hi := lo + *batch
		if hi > len(ds.Trajs) {
			hi = len(ds.Trajs)
		}
		payload := make([]httpapi.TrajectoryJSON, 0, hi-lo)
		for _, t := range ds.Trajs[lo:hi] {
			tj := httpapi.TrajectoryJSON{OID: t.OID, TID: t.TID}
			for _, p := range t.Points {
				tj.Points = append(tj.Points, httpapi.PointJSON{X: p.X, Y: p.Y, T: p.T})
			}
			payload = append(payload, tj)
		}
		body, _ := json.Marshal(payload)
		req, _ := http.NewRequest(http.MethodPut, *addr+"/trajectories", bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("ingest: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	elapsed := time.Since(started)
	fmt.Printf("ingested %d trajectories in %v (%.0f/s)\n",
		len(ds.Trajs), elapsed.Round(time.Millisecond), float64(len(ds.Trajs))/elapsed.Seconds())

	sampler := workload.NewQuerySampler(ds, *seed+1)
	run := func(name string, mkURL func() string) {
		lat := make([]time.Duration, 0, *queries)
		for i := 0; i < *queries; i++ {
			url := mkURL()
			t0 := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("%s: status %d (%s)", name, resp.StatusCode, url)
			}
			resp.Body.Close()
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%-12s p50=%-10v p90=%-10v p99=%v\n",
			name, lat[len(lat)/2].Round(time.Microsecond),
			lat[len(lat)*9/10].Round(time.Microsecond),
			lat[len(lat)-1].Round(time.Microsecond))
	}

	run("time", func() string {
		q := sampler.TimeWindow(3600_000)
		return fmt.Sprintf("%s/query/time?start=%d&end=%d", *addr, q.Start, q.End)
	})
	run("space", func() string {
		r := sampler.SpaceWindow(1.5)
		return fmt.Sprintf("%s/query/space?minx=%f&miny=%f&maxx=%f&maxy=%f",
			*addr, r.MinX, r.MinY, r.MaxX, r.MaxY)
	})
	run("spacetime", func() string {
		r := sampler.SpaceWindow(2.5)
		q := sampler.TimeWindow(6 * 3600_000)
		return fmt.Sprintf("%s/query/spacetime?minx=%f&miny=%f&maxx=%f&maxy=%f&start=%d&end=%d",
			*addr, r.MinX, r.MinY, r.MaxX, r.MaxY, q.Start, q.End)
	})
	run("object", func() string {
		oid, q := sampler.ObjectWindow(12 * 3600_000)
		return fmt.Sprintf("%s/query/object?oid=%s&start=%d&end=%d", *addr, oid, q.Start, q.End)
	})

	// Final server-side stats.
	resp, err := client.Get(*addr + "/stats")
	if err == nil {
		var stats map[string]any
		json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		fmt.Printf("server stats: %v trajectories, %v rows scanned, %v cache hits\n",
			stats["trajectories"], stats["rows_scanned"], stats["cache_hits"])
	}
}
