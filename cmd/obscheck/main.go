// Command obscheck validates a /metrics endpoint: it fetches the exposition
// (retrying while the server boots), checks that every line parses as
// Prometheus text format 0.0.4, that every sample belongs to a family with a
// TYPE declaration, that histogram bucket series are cumulative and
// consistent with their _count, and that at least -min-series samples are
// exported. `make obs-check` runs it against a freshly booted tmand.
//
//	obscheck -url http://127.0.0.1:8080/metrics -min-series 25 \
//	    -require tman_bg_jobs_total,tman_slo_good_total
//
// -require takes comma-separated family names that must be present; the
// failure message lists exactly which ones are missing, so a renamed or
// dropped series is identified by name instead of by a count delta.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080/metrics", "metrics endpoint")
	minSeries := flag.Int("min-series", 25, "minimum number of exported samples")
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	retries := flag.Int("retries", 50, "fetch attempts while the server boots")
	interval := flag.Duration("interval", 100*time.Millisecond, "delay between attempts")
	flag.Parse()

	body, err := fetch(*url, *retries, *interval)
	if err != nil {
		fail("fetch %s: %v", *url, err)
	}
	samples, types, err := validate(body)
	if err != nil {
		fail("invalid exposition: %v", err)
	}
	if samples < *minSeries {
		fail("only %d samples exported, need at least %d", samples, *minSeries)
	}
	if *require != "" {
		var missing []string
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if _, ok := types[fam]; !ok {
				missing = append(missing, fam)
			}
		}
		if len(missing) > 0 {
			fail("missing required metric families: %s", strings.Join(missing, ", "))
		}
	}
	fmt.Printf("obscheck: OK — %d samples across %d families from %s\n", samples, len(types), *url)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}

// fetch GETs the endpoint, retrying connection failures while the server
// comes up.
func fetch(url string, retries int, interval time.Duration) (string, error) {
	var lastErr error
	for i := 0; i < retries; i++ {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(interval)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			return "", fmt.Errorf("unexpected content type %q", ct)
		}
		return string(body), nil
	}
	return "", lastErr
}

// histState accumulates one histogram family's bucket/count consistency.
type histState struct {
	lastCum  float64
	infSeen  bool
	infValue float64
	count    float64
	hasCount bool
}

// validate parses the exposition and returns the sample count plus the
// family -> type map (for -require membership checks).
func validate(body string) (int, map[string]string, error) {
	types := map[string]string{} // family -> counter|gauge|histogram
	hists := map[string]*histState{}
	samples := 0
	for ln, line := range strings.Split(body, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, nil, fmt.Errorf("line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return 0, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			return 0, nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if types[family] == "histogram" {
			h := hists[family+"{"+stripLE(labels)+"}"]
			if h == nil {
				h = &histState{}
				hists[family+"{"+stripLE(labels)+"}"] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if value < h.lastCum {
					return 0, nil, fmt.Errorf("line %d: non-cumulative bucket in %s", lineNo, family)
				}
				h.lastCum = value
				if strings.Contains(labels, `le="+Inf"`) {
					h.infSeen = true
					h.infValue = value
				}
			case strings.HasSuffix(name, "_count"):
				h.count = value
				h.hasCount = true
			}
		}
	}
	for series, h := range hists {
		if !h.infSeen {
			return 0, nil, fmt.Errorf("histogram %s is missing its +Inf bucket", series)
		}
		if h.hasCount && h.count != h.infValue {
			return 0, nil, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", series, h.count, h.infValue)
		}
	}
	return samples, types, nil
}

// parseSample splits one sample line into name, label body and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", 0, fmt.Errorf("malformed label %q in %q", pair, line)
			}
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	if name == "" {
		return "", "", 0, fmt.Errorf("empty metric name in %q", line)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLE removes the le label so all buckets of one histogram series key
// to the same state entry.
func stripLE(labels string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}
