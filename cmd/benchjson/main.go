// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark runs can be archived and
// diffed without re-parsing the textual format.
//
//	go test -bench=. -benchmem ./internal/kvstore/ | benchjson -o BENCH.json
//	benchjson -suite writepath -o BENCH.json kvstore.txt engine.txt
//
// Input comes from positional file arguments, or stdin when none are given.
// Only the standard benchmark line shape is understood:
//
//	BenchmarkName-8   100   6850000 ns/op   3670240 B/op   6 allocs/op
//
// Non-benchmark lines (PASS, ok, logs) are ignored. The -benchmem columns
// are optional; missing metrics are emitted as zero.
//
// Repeated lines with the same benchmark name — what `go test -count=N`
// emits — collapse to the fastest run. Timing noise on shared hosts is
// one-sided (CPU steal only ever slows a run down), so min-of-N is the
// stable estimator: both the archived baselines and the regression gates
// compare best-of-N against best-of-N.
//
// Without -suite the output is the flat legacy document {label, results}.
// With -suite the results are wrapped in a named suite, and if the output
// file already holds a suites document the named suite is replaced in place
// while every other suite is preserved — so independent benchmark runs
// (read path, write path) can share one archive file without clobbering
// each other.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. Extra holds custom b.ReportMetric
// units (e.g. qps, p50_us) keyed by unit name.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// suite is one named benchmark run inside a multi-suite document.
type suite struct {
	Name    string   `json:"name"`
	Label   string   `json:"label,omitempty"`
	Results []result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "optional label recorded alongside the results")
	suiteName := flag.String("suite", "", "wrap results in a named suite and merge into the output file")
	baseline := flag.String("baseline", "", "compare parsed results against this archived JSON document")
	maxRegress := flag.Float64("max-regress", 0, "with -baseline: fail when ns/op regresses more than this percent (0 = report only)")
	flag.Parse()

	results, err := parseInputs(flag.Args())
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	results = collapseBest(results)

	if *baseline != "" {
		if err := compareBaseline(*baseline, *suiteName, results, *maxRegress); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if *out == "" {
			return
		}
	}

	var enc []byte
	if *suiteName == "" {
		doc := struct {
			Label   string   `json:"label,omitempty"`
			Results []result `json:"results"`
		}{Label: *label, Results: results}
		enc, err = json.MarshalIndent(doc, "", "  ")
	} else {
		doc := struct {
			Suites []suite `json:"suites"`
		}{Suites: mergeSuite(*out, suite{Name: *suiteName, Label: *label, Results: results})}
		enc, err = json.MarshalIndent(doc, "", "  ")
	}
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parseInputs concatenates the named files (stdin when none) into one result
// list, preserving file order so multi-package runs read top to bottom.
func parseInputs(paths []string) ([]result, error) {
	if len(paths) == 0 {
		return parse(os.Stdin)
	}
	var all []result
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		results, err := parse(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, results...)
	}
	return all, nil
}

// collapseBest keeps, per benchmark name, the run with the lowest ns/op
// (first occurrence order preserved). `go test -count=N` repeats each
// benchmark N times under the same name; the minimum is the least-disturbed
// sample on hosts with CPU-steal noise.
func collapseBest(results []result) []result {
	idx := make(map[string]int, len(results))
	out := results[:0]
	for _, r := range results {
		i, seen := idx[r.Name]
		if !seen {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp > 0 && (out[i].NsPerOp <= 0 || r.NsPerOp < out[i].NsPerOp) {
			out[i] = r
		}
	}
	return out
}

// mergeSuite loads any existing suites document at path and replaces the
// suite with the same name, keeping the rest. A missing, empty, or legacy
// flat-format file starts a fresh document.
func mergeSuite(path string, s suite) []suite {
	if path == "" {
		return []suite{s}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return []suite{s}
	}
	var doc struct {
		Suites []suite `json:"suites"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.Suites) == 0 {
		return []suite{s}
	}
	for i := range doc.Suites {
		if doc.Suites[i].Name == s.Name {
			doc.Suites[i] = s
			return doc.Suites
		}
	}
	return append(doc.Suites, s)
}

// compareBaseline diffs the freshly parsed results against an archived
// document (flat or suites format; suiteName picks the suite when set). The
// per-benchmark ns/op delta is printed to stderr; with maxRegress > 0 any
// benchmark slower than baseline by more than that percentage fails the run —
// the overhead-assertion mode `make bench-overhead` uses to hold query-path
// instrumentation under its regression budget.
func compareBaseline(path, suiteName string, results []result, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Results []result `json:"results"`
		Suites  []suite  `json:"suites"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := doc.Results
	for _, s := range doc.Suites {
		if suiteName == "" || s.Name == suiteName {
			base = s.Results
			break
		}
	}
	if len(base) == 0 {
		return fmt.Errorf("%s: no baseline results (suite %q)", path, suiteName)
	}
	byName := make(map[string]result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}

	var failed []string
	compared := 0
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		compared++
		deltaPct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		status := "ok"
		if maxRegress > 0 && deltaPct > maxRegress {
			status = "FAIL"
			failed = append(failed, r.Name)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-50s %12.0f -> %12.0f ns/op  %+6.2f%%  [%s]\n",
			r.Name, b.NsPerOp, r.NsPerOp, deltaPct, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched baseline %s", path)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.1f%% vs %s: %s",
			len(failed), maxRegress, path, strings.Join(failed, ", "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within budget vs %s\n", compared, path)
	return nil
}

func parse(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the input so benchjson can sit at the end of a pipe without
		// hiding the human-readable report.
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... --- SKIP" shapes
		}
		res := result{Name: trimCPUSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				// Custom b.ReportMetric units (qps, p50_us, ...): keep them
				// rather than silently dropping columns we don't know.
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					continue
				}
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = f
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker from a benchmark
// name, so results compare across machines with different core counts.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
