// Command tman-bench regenerates the tables and figures of the TMan paper
// (ICDE 2024) on synthetic TDrive/Lorry workloads.
//
// Usage:
//
//	tman-bench -exp table1                 # one experiment
//	tman-bench -exp all -lorry 20000       # everything, bigger dataset
//	tman-bench -list                       # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tman-db/tman/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig14, table1, fig15..fig23, all)")
		list       = flag.Bool("list", false, "list experiments and exit")
		tdrive     = flag.Int("tdrive", 0, "TDrive-sim trajectory count (default 6000)")
		lorry      = flag.Int("lorry", 0, "Lorry-sim trajectory count (default 10000)")
		queries    = flag.Int("queries", 0, "query windows per measurement (default 20)")
		percentile = flag.Float64("percentile", 0.5, "reported latency percentile")
		seed       = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	opts := bench.DefaultOptions()
	if *tdrive > 0 {
		opts.TDriveSize = *tdrive
	}
	if *lorry > 0 {
		opts.LorrySize = *lorry
	}
	if *queries > 0 {
		opts.Queries = *queries
	}
	opts.Percentile = *percentile
	opts.Seed = *seed

	started := time.Now()
	if err := bench.Run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "tman-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\ncompleted in %v\n", time.Since(started).Round(time.Millisecond))
}
