// Command tmand serves a TMan database over HTTP/JSON.
//
//	tmand -addr :8080 -boundary 110,35,125,45
//
// See internal/httpapi for the endpoint reference. Data lives in process
// memory (the embedded KV store); tmand is the single-node deployment shape
// of the system.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/httpapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		boundary = flag.String("boundary", "110,35,125,45", "dataset boundary minx,miny,maxx,maxy")
		shards   = flag.Int("shards", 4, "hash shards")
		alpha    = flag.Int("alpha", 3, "TShape alpha")
		beta     = flag.Int("beta", 3, "TShape beta")
		g        = flag.Int("g", 16, "TShape max resolution")
		encoding = flag.String("encoding", "greedy", "shape encoding: bitmap|greedy|genetic")
		dataDir  = flag.String("data", "", "durable data directory (empty = in-memory)")
	)
	flag.Parse()

	rect, err := parseBoundary(*boundary)
	if err != nil {
		log.Fatalf("tmand: %v", err)
	}
	enc := tman.EncodingGreedy
	switch *encoding {
	case "bitmap":
		enc = tman.EncodingBitmap
	case "greedy":
		enc = tman.EncodingGreedy
	case "genetic":
		enc = tman.EncodingGenetic
	default:
		log.Fatalf("tmand: unknown encoding %q", *encoding)
	}

	opts := []tman.Option{
		tman.WithShards(*shards),
		tman.WithShapeGrid(*alpha, *beta, *g),
		tman.WithShapeEncoding(enc),
	}
	if *dataDir != "" {
		opts = append(opts, tman.WithDataDir(*dataDir))
	}
	db, err := tman.Open(rect, opts...)
	if err != nil {
		log.Fatalf("tmand: %v", err)
	}
	if *dataDir != "" {
		log.Printf("tmand recovered %d trajectories from %s", db.Len(), *dataDir)
	}

	log.Printf("tmand listening on %s (boundary %v, %dx%d grid, %s encoding)",
		*addr, rect, *alpha, *beta, *encoding)
	if err := http.ListenAndServe(*addr, httpapi.New(db)); err != nil {
		log.Fatal(err)
	}
}

func parseBoundary(s string) (tman.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return tman.Rect{}, fmt.Errorf("boundary needs 4 comma-separated numbers, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return tman.Rect{}, fmt.Errorf("boundary component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := tman.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Width() <= 0 || r.Height() <= 0 {
		return tman.Rect{}, fmt.Errorf("degenerate boundary %v", r)
	}
	return r, nil
}
