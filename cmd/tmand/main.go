// Command tmand serves a TMan database over HTTP/JSON.
//
//	tmand -addr :8080 -boundary 110,35,125,45
//
// See internal/httpapi for the endpoint reference. Data lives in process
// memory (the embedded KV store); tmand is the single-node deployment shape
// of the system. Observability:
//
//	GET /metrics               Prometheus text exposition
//	GET /trace?query=space&... run one traced query, return its span tree
//	GET /debug/jobs            running/recent background jobs + hottest regions
//	-log-level debug           structured request logging (log/slog)
//	-slow-query-ms 250         WARN-log requests slower than 250ms
//	-trace-sample 0.01         trace 1% of queries into the trace ring
//	-slo-p99-ms 250            latency objective behind the tman_slo_* series
//	-max-inflight 256          shed query/ingest load above this bound
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (pprof listener only)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/httpapi"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		boundary    = flag.String("boundary", "110,35,125,45", "dataset boundary minx,miny,maxx,maxy")
		shards      = flag.Int("shards", 4, "hash shards")
		alpha       = flag.Int("alpha", 3, "TShape alpha")
		beta        = flag.Int("beta", 3, "TShape beta")
		g           = flag.Int("g", 16, "TShape max resolution")
		encoding    = flag.String("encoding", "greedy", "shape encoding: bitmap|greedy|genetic")
		dataDir     = flag.String("data", "", "durable data directory (empty = in-memory)")
		replicas    = flag.Int("replicas", 1, "copies of each region, leader included (1 = no replication)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
		pprofAddr   = flag.String("pprof-addr", "", "pprof listen address (e.g. localhost:6060; empty = disabled)")
		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
		slowQueryMS = flag.Int("slow-query-ms", 0, "WARN-log requests slower than this many ms (0 = disabled)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of queries to trace into the trace ring (0..1)")
		blockSize   = flag.Int("block-size", 0, "encoded run block size in bytes (0 = 4096, min 512)")
		blockCache  = flag.Int("block-cache-mb", 0, "decoded block cache capacity in MiB (0 = 32, negative disables)")
		bloomBits   = flag.Int("bloom-bits", 0, "bloom filter bits per key (0 = 10, negative disables)")
		blockFences = flag.Bool("block-fences", true, "prune run blocks via per-block time/bbox fences")
		compactFan  = flag.Int("compact-fanin", 0, "same-tier runs merged per tiered compaction (0 = 4, min 2)")
		compactSub  = flag.Int("compact-subranges", 0, "key-range partitions per large merge (0 = 4, 1 disables)")
		monolithic  = flag.Bool("compact-monolithic", false, "use the legacy whole-region compaction policy")
		sloP99MS    = flag.Int("slo-p99-ms", 0, "per-query latency objective in ms (0 = 250, negative disables SLO tracking)")
		sloBudget   = flag.Float64("slo-budget", 0, "allowed late fraction of the objective (0 = 0.01)")
		maxInflight = flag.Int("max-inflight", 0, "shed query/ingest load above this many in-flight requests (0 = unlimited)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "tmand: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	rect, err := parseBoundary(*boundary)
	if err != nil {
		fatal("bad boundary", "err", err)
	}
	enc := tman.EncodingGreedy
	switch *encoding {
	case "bitmap":
		enc = tman.EncodingBitmap
	case "greedy":
		enc = tman.EncodingGreedy
	case "genetic":
		enc = tman.EncodingGenetic
	default:
		fatal("unknown encoding", "encoding", *encoding)
	}

	opts := []tman.Option{
		tman.WithShards(*shards),
		tman.WithShapeGrid(*alpha, *beta, *g),
		tman.WithShapeEncoding(enc),
		tman.WithTraceSampling(*traceSample),
	}
	if *sloP99MS != 0 || *sloBudget != 0 {
		opts = append(opts, tman.WithSLO(*sloP99MS, *sloBudget))
	}
	if *blockSize != 0 || *blockCache != 0 || *bloomBits != 0 {
		cacheBytes := *blockCache
		if cacheBytes > 0 {
			cacheBytes <<= 20
		}
		opts = append(opts, tman.WithBlockTuning(*blockSize, *bloomBits, cacheBytes))
	}
	if !*blockFences {
		opts = append(opts, tman.WithFenceTuning(false))
	}
	if *compactFan != 0 || *compactSub != 0 || *monolithic {
		opts = append(opts, tman.WithCompactionTuning(*compactFan, *compactSub, *monolithic))
	}
	if *dataDir != "" {
		opts = append(opts, tman.WithDataDir(*dataDir))
	}
	if *replicas > 1 {
		opts = append(opts, tman.WithReplication(*replicas))
	}
	db, err := tman.Open(rect, opts...)
	if err != nil {
		fatal("open failed", "err", err)
	}
	if *dataDir != "" {
		logger.Info("recovered durable state", "trajectories", db.Len(), "dir", *dataDir)
	}

	// The pprof endpoints live on their own listener so profiling is never
	// exposed on the serving address. The API server installs its own
	// Handler, which leaves DefaultServeMux free for net/http/pprof's
	// registrations.
	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			psrv := &http.Server{Addr: *pprofAddr, ReadHeaderTimeout: 5 * time.Second}
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	api := httpapi.New(db,
		httpapi.WithLogger(logger),
		httpapi.WithSlowQueryThreshold(time.Duration(*slowQueryMS)*time.Millisecond),
		httpapi.WithMaxInflight(*maxInflight),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "boundary", rect.String(),
			"grid", fmt.Sprintf("%dx%d", *alpha, *beta), "encoding", *encoding,
			"trace_sample", *traceSample)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "deadline", *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal("server failed", "err", err)
		}
	}
	if err := db.Close(); err != nil {
		fatal("close failed", "err", err)
	}
	logger.Info("shut down cleanly")
}

func parseBoundary(s string) (tman.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return tman.Rect{}, fmt.Errorf("boundary needs 4 comma-separated numbers, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return tman.Rect{}, fmt.Errorf("boundary component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := tman.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Width() <= 0 || r.Height() <= 0 {
		return tman.Rect{}, fmt.Errorf("degenerate boundary %v", r)
	}
	return r, nil
}
