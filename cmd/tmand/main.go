// Command tmand serves a TMan database over HTTP/JSON.
//
//	tmand -addr :8080 -boundary 110,35,125,45
//
// See internal/httpapi for the endpoint reference. Data lives in process
// memory (the embedded KV store); tmand is the single-node deployment shape
// of the system.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (pprof listener only)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/httpapi"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		boundary  = flag.String("boundary", "110,35,125,45", "dataset boundary minx,miny,maxx,maxy")
		shards    = flag.Int("shards", 4, "hash shards")
		alpha     = flag.Int("alpha", 3, "TShape alpha")
		beta      = flag.Int("beta", 3, "TShape beta")
		g         = flag.Int("g", 16, "TShape max resolution")
		encoding  = flag.String("encoding", "greedy", "shape encoding: bitmap|greedy|genetic")
		dataDir   = flag.String("data", "", "durable data directory (empty = in-memory)")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
		pprofAddr = flag.String("pprof-addr", "", "pprof listen address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	rect, err := parseBoundary(*boundary)
	if err != nil {
		log.Fatalf("tmand: %v", err)
	}
	enc := tman.EncodingGreedy
	switch *encoding {
	case "bitmap":
		enc = tman.EncodingBitmap
	case "greedy":
		enc = tman.EncodingGreedy
	case "genetic":
		enc = tman.EncodingGenetic
	default:
		log.Fatalf("tmand: unknown encoding %q", *encoding)
	}

	opts := []tman.Option{
		tman.WithShards(*shards),
		tman.WithShapeGrid(*alpha, *beta, *g),
		tman.WithShapeEncoding(enc),
	}
	if *dataDir != "" {
		opts = append(opts, tman.WithDataDir(*dataDir))
	}
	db, err := tman.Open(rect, opts...)
	if err != nil {
		log.Fatalf("tmand: %v", err)
	}
	if *dataDir != "" {
		log.Printf("tmand recovered %d trajectories from %s", db.Len(), *dataDir)
	}

	// The pprof endpoints live on their own listener so profiling is never
	// exposed on the serving address. The API server installs its own
	// Handler, which leaves DefaultServeMux free for net/http/pprof's
	// registrations.
	if *pprofAddr != "" {
		go func() {
			log.Printf("tmand pprof listening on %s", *pprofAddr)
			psrv := &http.Server{Addr: *pprofAddr, ReadHeaderTimeout: 5 * time.Second}
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("tmand: pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(db),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("tmand listening on %s (boundary %v, %dx%d grid, %s encoding)",
			*addr, rect, *alpha, *beta, *encoding)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("tmand: %v — draining for up to %v", sig, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tmand: drain incomplete: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tmand: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		log.Fatalf("tmand: close: %v", err)
	}
	log.Print("tmand: shut down cleanly")
}

func parseBoundary(s string) (tman.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return tman.Rect{}, fmt.Errorf("boundary needs 4 comma-separated numbers, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return tman.Rect{}, fmt.Errorf("boundary component %q: %w", p, err)
		}
		vals[i] = v
	}
	r := tman.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !r.Valid() || r.Width() <= 0 || r.Height() <= 0 {
		return tman.Rect{}, fmt.Errorf("degenerate boundary %v", r)
	}
	return r, nil
}
