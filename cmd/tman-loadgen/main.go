// Command tman-loadgen drives a running tmand server with an open-loop
// workload: request arrivals follow a Poisson process at a fixed target rate,
// every arrival is dispatched at its scheduled instant regardless of how many
// responses are outstanding, and latency is measured from the scheduled
// arrival — not from when a free connection got around to sending. A server
// that stalls therefore shows the stall in its percentiles (no coordinated
// omission), which is the difference between this tool and the closed-loop
// tman-load.
//
// The mix covers batched ingest plus all six query types. Each response is
// classified for goodput accounting:
//
//	good  2xx within the deadline
//	late  2xx but over the deadline
//	shed  503 from admission control
//	error anything else (including transport failures)
//
// Results print as a human summary and archive as JSON (schema
// tman-bench-serving/v1) for regression diffing:
//
//	tmand -boundary 70,0,140,55 -max-inflight 64 &
//	tman-loadgen -addr http://localhost:8080 -rate 200 -duration 30s \
//	    -deadline-ms 250 -o BENCH_serving.json
//
// With -gate enforce the exit status enforces the SLO (goodput fraction and
// p99); -gate report (the default) prints the verdict but always exits 0, so
// CI can watch the trend before it bets the build on it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/tman-db/tman/internal/httpapi"
	"github.com/tman-db/tman/internal/workload"
)

// opKind tags one scheduled request. The mix weights below are a serving
// blend: ingest-heavy enough to keep flushes and compactions running behind
// the queries it is interfering with.
type opKind int

const (
	opIngest opKind = iota
	opTime
	opSpace
	opSpaceTime
	opObject
	opSimilar
	opNearest
	opKinds
)

var opNames = [opKinds]string{"ingest", "time", "space", "spacetime", "object", "similar", "nearest"}

// mixWeights must sum to 100.
var mixWeights = [opKinds]int{15, 20, 15, 15, 15, 5, 15}

// sample is one completed request.
type sample struct {
	kind    opKind
	latency time.Duration
	status  int // 0 = transport error
}

// percentiles of a sorted duration slice, in milliseconds.
type pcts struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
}

func computePcts(lat []time.Duration) pcts {
	if len(lat) == 0 {
		return pcts{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return float64(lat[i].Microseconds()) / 1000
	}
	return pcts{P50: at(0.50), P99: at(0.99), P999: at(0.999)}
}

// typeReport is one request type's slice of the run.
type typeReport struct {
	Sent  int  `json:"sent"`
	Good  int  `json:"good"`
	Late  int  `json:"late"`
	Shed  int  `json:"shed"`
	Error int  `json:"errors"`
	Pcts  pcts `json:"latency"`
}

// servingReport is the archived BENCH_serving.json payload.
type servingReport struct {
	Schema     string  `json:"schema"`
	Addr       string  `json:"addr"`
	RateQPS    float64 `json:"rate_qps"`
	DurationS  float64 `json:"duration_s"`
	DeadlineMS int64   `json:"deadline_ms"`
	Seed       int64   `json:"seed"`
	Preloaded  int     `json:"preloaded_trajectories"`

	Sent       int     `json:"sent"`
	Good       int     `json:"good"`
	Late       int     `json:"late"`
	Shed       int     `json:"shed"`
	Error      int     `json:"errors"`
	GoodputQPS float64 `json:"goodput_qps"`
	GoodputFrc float64 `json:"goodput_fraction"`

	Overall pcts                  `json:"latency"`
	ByType  map[string]typeReport `json:"by_type"`
}

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8080", "tmand base URL")
		rate       = flag.Float64("rate", 100, "target arrival rate, requests/second (Poisson)")
		duration   = flag.Duration("duration", 30*time.Second, "measured run length")
		deadlineMS = flag.Int64("deadline-ms", 250, "per-request latency deadline for goodput classification")
		preload    = flag.Int("preload", 2000, "trajectories to bulk-ingest before the measured run")
		batch      = flag.Int("batch", 500, "preload ingest batch size")
		seed       = flag.Int64("seed", 1, "workload + arrival-process seed")
		out        = flag.String("o", "", "archive results as JSON to this file")
		gate       = flag.String("gate", "report", "SLO gate mode: report|enforce")
		gateP99MS  = flag.Float64("gate-p99-ms", 0, "enforce: fail when overall p99 exceeds this (0 = deadline-ms)")
		gateGood   = flag.Float64("gate-goodput", 0.90, "enforce: fail when goodput fraction falls below this")
	)
	flag.Parse()
	if *gate != "report" && *gate != "enforce" {
		log.Fatalf("-gate must be report or enforce, got %q", *gate)
	}
	if *rate <= 0 {
		log.Fatalf("-rate must be positive, got %g", *rate)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	ds := workload.TLorrySim(*preload, *seed)
	preloadTrajectories(client, *addr, ds, *batch)
	fmt.Fprintf(os.Stderr, "preloaded %d trajectories; running %.0f req/s open-loop for %v\n",
		len(ds.Trajs), *rate, *duration)

	// Fresh trajectories for the in-run ingest stream, distinct from the
	// preload so every ingest batch is new data, not an overwrite.
	ingestDS := workload.TLorrySim(2000, *seed+1)
	sampler := workload.NewQuerySampler(ds, *seed+2)
	rng := rand.New(rand.NewSource(*seed + 3))

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
		ingestN int
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	// Open loop: walk the Poisson schedule, firing each request in its own
	// goroutine at its scheduled instant. Latency is measured from the
	// schedule, so local dispatch delay under overload counts against the
	// server the same way client-side queueing would in production.
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
		if next.Sub(start) >= *duration {
			break
		}
		kind := pickKind(rng)
		var req *http.Request
		switch kind {
		case opIngest:
			ingestN++
			req = ingestRequest(*addr, ingestDS, ingestN)
		case opSimilar:
			req = similarRequest(*addr, sampler)
		default:
			req, _ = http.NewRequest(http.MethodGet, queryURL(*addr, kind, sampler), nil)
		}
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(kind opKind, scheduled time.Time, req *http.Request) {
			defer wg.Done()
			status := 0
			if resp, err := client.Do(req); err == nil {
				status = resp.StatusCode
				resp.Body.Close()
			}
			record(sample{kind: kind, latency: time.Since(scheduled), status: status})
		}(kind, next, req)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(samples, *addr, *rate, elapsed, *deadlineMS, *seed, len(ds.Trajs))
	printReport(rep)
	if *out != "" {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "archived %s\n", *out)
	}

	p99Gate := *gateP99MS
	if p99Gate <= 0 {
		p99Gate = float64(*deadlineMS)
	}
	ok := rep.GoodputFrc >= *gateGood && rep.Overall.P99 <= p99Gate
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "SLO gate [%s]: %s (goodput %.3f >= %.3f, p99 %.1fms <= %.1fms)\n",
		*gate, verdict, rep.GoodputFrc, *gateGood, rep.Overall.P99, p99Gate)
	if !ok && *gate == "enforce" {
		os.Exit(1)
	}
}

// pickKind samples the mix.
func pickKind(rng *rand.Rand) opKind {
	n := rng.Intn(100)
	for k, w := range mixWeights {
		if n < w {
			return opKind(k)
		}
		n -= w
	}
	return opTime
}

func queryURL(addr string, kind opKind, s *workload.QuerySampler) string {
	switch kind {
	case opTime:
		q := s.TimeWindow(3600_000)
		return fmt.Sprintf("%s/query/time?start=%d&end=%d&deadline_ms=5000", addr, q.Start, q.End)
	case opSpace:
		r := s.SpaceWindow(1.5)
		return fmt.Sprintf("%s/query/space?minx=%f&miny=%f&maxx=%f&maxy=%f&deadline_ms=5000",
			addr, r.MinX, r.MinY, r.MaxX, r.MaxY)
	case opSpaceTime:
		r := s.SpaceWindow(2.5)
		q := s.TimeWindow(6 * 3600_000)
		return fmt.Sprintf("%s/query/spacetime?minx=%f&miny=%f&maxx=%f&maxy=%f&start=%d&end=%d&deadline_ms=5000",
			addr, r.MinX, r.MinY, r.MaxX, r.MaxY, q.Start, q.End)
	case opObject:
		oid, q := s.ObjectWindow(12 * 3600_000)
		return fmt.Sprintf("%s/query/object?oid=%s&start=%d&end=%d&deadline_ms=5000", addr, oid, q.Start, q.End)
	case opNearest:
		r := s.SpaceWindow(1)
		return fmt.Sprintf("%s/query/nearest?x=%f&y=%f&k=8&deadline_ms=5000",
			addr, (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2)
	}
	panic("unreachable")
}

// ingestRequest builds a small batched write of fresh trajectories. The TID
// carries the request ordinal so repeated cycles through the source dataset
// insert new rows instead of overwriting old ones.
func ingestRequest(addr string, ds *workload.Dataset, n int) *http.Request {
	const perBatch = 5
	payload := make([]httpapi.TrajectoryJSON, 0, perBatch)
	for i := 0; i < perBatch; i++ {
		t := ds.Trajs[(n*perBatch+i)%len(ds.Trajs)]
		tj := httpapi.TrajectoryJSON{OID: t.OID, TID: fmt.Sprintf("%s-lg%d", t.TID, n)}
		for _, p := range t.Points {
			tj.Points = append(tj.Points, httpapi.PointJSON{X: p.X, Y: p.Y, T: p.T})
		}
		payload = append(payload, tj)
	}
	body, _ := json.Marshal(payload)
	req, _ := http.NewRequest(http.MethodPut, addr+"/trajectories", bytes.NewReader(body))
	return req
}

func similarRequest(addr string, s *workload.QuerySampler) *http.Request {
	t := s.QueryTrajectory()
	tj := httpapi.TrajectoryJSON{OID: t.OID, TID: t.TID}
	for _, p := range t.Points {
		tj.Points = append(tj.Points, httpapi.PointJSON{X: p.X, Y: p.Y, T: p.T})
	}
	body, _ := json.Marshal(map[string]any{"query": tj, "measure": "frechet", "k": 5})
	req, _ := http.NewRequest(http.MethodPost, addr+"/query/similar?deadline_ms=5000", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req
}

func preloadTrajectories(client *http.Client, addr string, ds *workload.Dataset, batch int) {
	for lo := 0; lo < len(ds.Trajs); lo += batch {
		hi := lo + batch
		if hi > len(ds.Trajs) {
			hi = len(ds.Trajs)
		}
		payload := make([]httpapi.TrajectoryJSON, 0, hi-lo)
		for _, t := range ds.Trajs[lo:hi] {
			tj := httpapi.TrajectoryJSON{OID: t.OID, TID: t.TID}
			for _, p := range t.Points {
				tj.Points = append(tj.Points, httpapi.PointJSON{X: p.X, Y: p.Y, T: p.T})
			}
			payload = append(payload, tj)
		}
		body, _ := json.Marshal(payload)
		req, _ := http.NewRequest(http.MethodPut, addr+"/trajectories", bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			log.Fatalf("preload: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("preload: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func summarize(samples []sample, addr string, rate float64, elapsed time.Duration,
	deadlineMS, seed int64, preloaded int) servingReport {
	deadline := time.Duration(deadlineMS) * time.Millisecond
	rep := servingReport{
		Schema:     "tman-bench-serving/v1",
		Addr:       addr,
		RateQPS:    rate,
		DurationS:  elapsed.Seconds(),
		DeadlineMS: deadlineMS,
		Seed:       seed,
		Preloaded:  preloaded,
		ByType:     make(map[string]typeReport, int(opKinds)),
	}
	byType := make(map[opKind][]time.Duration, int(opKinds))
	var all []time.Duration
	tr := make([]typeReport, opKinds)
	for _, s := range samples {
		rep.Sent++
		t := &tr[s.kind]
		t.Sent++
		switch {
		case s.status >= 200 && s.status < 300 && s.latency <= deadline:
			rep.Good++
			t.Good++
		case s.status >= 200 && s.status < 300:
			rep.Late++
			t.Late++
		case s.status == http.StatusServiceUnavailable:
			rep.Shed++
			t.Shed++
		default:
			rep.Error++
			t.Error++
		}
		// Shed requests are excluded from latency percentiles (they fail in
		// microseconds, which would flatter the distribution) but count
		// against goodput.
		if s.status != http.StatusServiceUnavailable {
			byType[s.kind] = append(byType[s.kind], s.latency)
			all = append(all, s.latency)
		}
	}
	rep.Overall = computePcts(all)
	for k := opKind(0); k < opKinds; k++ {
		if tr[k].Sent == 0 {
			continue
		}
		tr[k].Pcts = computePcts(byType[k])
		rep.ByType[opNames[k]] = tr[k]
	}
	if rep.Sent > 0 {
		rep.GoodputFrc = float64(rep.Good) / float64(rep.Sent)
	}
	if elapsed > 0 {
		rep.GoodputQPS = float64(rep.Good) / elapsed.Seconds()
	}
	return rep
}

func printReport(rep servingReport) {
	fmt.Printf("open-loop %.0f req/s for %.1fs: sent=%d good=%d late=%d shed=%d errors=%d\n",
		rep.RateQPS, rep.DurationS, rep.Sent, rep.Good, rep.Late, rep.Shed, rep.Error)
	fmt.Printf("goodput %.1f req/s (%.1f%% of sent), deadline %dms\n",
		rep.GoodputQPS, rep.GoodputFrc*100, rep.DeadlineMS)
	fmt.Printf("overall  p50=%.2fms p99=%.2fms p999=%.2fms\n",
		rep.Overall.P50, rep.Overall.P99, rep.Overall.P999)
	names := make([]string, 0, len(rep.ByType))
	for n := range rep.ByType {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := rep.ByType[n]
		fmt.Printf("%-10s sent=%-6d good=%-6d late=%-5d shed=%-5d p50=%.2fms p99=%.2fms p999=%.2fms\n",
			n, t.Sent, t.Good, t.Late, t.Shed, t.Pcts.P50, t.Pcts.P99, t.Pcts.P999)
	}
}
