package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/tman-db/tman/internal/obs"
)

// TestMetricsEndpoint checks the exposition contract: GET-only, the
// Prometheus text content type, and a healthy number of series (the
// registry mirrors store/engine/cache/http metrics — well past the
// 25-series floor obscheck enforces).
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sampleJSON("a", "t1", 1_700_000_000_000, 116.40, 39.90))
	getQuery(t, ts, "/query/space?minx=116.3&miny=39.8&maxx=116.5&maxy=40.0")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	if samples < 25 {
		t.Errorf("exposition has %d samples, want >= 25:\n%s", samples, body)
	}
	for _, want := range []string{
		`tman_queries_total{type="spatial"} 1`,
		"tman_store_rows_scanned_total",
		`tman_http_requests_total{code="2xx"}`,
		"tman_query_duration_seconds_bucket",
		"tman_engine_trajectories 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Method guard.
	post, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", post.StatusCode)
	}
}

// TestTraceEndpoint executes a forced-trace query and checks the span tree
// and cost accounting round-trip through JSON.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts,
		sampleJSON("a", "t1", base, 116.40, 39.90),
		sampleJSON("a", "t2", base, 116.42, 39.92),
	)
	// Warm so the traced run is a pure primary scan (plan and directory
	// caches settled).
	getQuery(t, ts, "/query/space?minx=116.3&miny=39.8&maxx=116.5&maxy=40.0")

	resp, err := http.Get(ts.URL + "/trace?query=space&minx=116.3&miny=39.8&maxx=116.5&maxy=40.0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: status %d", resp.StatusCode)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.RequestID == "" {
		t.Error("trace response missing request_id")
	}
	if tr.Plan == "" || tr.Candidates == 0 || tr.Results != 2 {
		t.Errorf("report not populated: %+v", tr)
	}
	if tr.Trace.Name != "request" || len(tr.Trace.Children) == 0 {
		t.Fatalf("span tree missing: %+v", tr.Trace)
	}
	query := tr.Trace.Children[0]
	if !strings.HasPrefix(query.Name, "query:") {
		t.Fatalf("first child = %q, want query:* span", query.Name)
	}
	// The cost model's row charges must survive serialization: summing
	// rows_visited over the tree reproduces the report's candidate count.
	if got := sumAttrJSON(tr.Trace, "rows_visited"); got != tr.Candidates {
		t.Errorf("JSON rows_visited sum = %d, candidates = %d", got, tr.Candidates)
	}
}

func sumAttrJSON(s obs.SpanJSON, key string) int64 {
	total := s.Attrs[key]
	for _, c := range s.Children {
		total += sumAttrJSON(c, key)
	}
	return total
}

// TestTraceEndpointErrors pins the failure modes: no sampled trace yet,
// unknown query kind, bad parameters, wrong method.
func TestTraceEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path string
		wantCode     int
	}{
		{"GET", "/trace", http.StatusNotFound}, // sampling off, nothing recorded
		{"GET", "/trace?query=bogus", http.StatusBadRequest},
		{"GET", "/trace?query=space&minx=bad", http.StatusBadRequest},
		{"GET", "/trace?query=nearest&x=1&y=2", http.StatusBadRequest},
		{"GET", "/trace?query=object&start=0&end=1", http.StatusBadRequest},
		{"POST", "/trace", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantCode)
		}
	}
}

// TestRequestIDPropagation checks the middleware echoes a caller-supplied
// X-Request-Id and generates one when absent.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Errorf("supplied id not echoed: %q", got)
	}

	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Errorf("generated id = %q, want 16 hex chars", got)
	}
}

// TestStatsObservability covers the satellite fixes on /stats: method
// guard, JSON content type, and the uptime/build fields.
func TestStatsObservability(t *testing.T) {
	ts, _ := newTestServer(t)

	post, err := http.Post(ts.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: status %d, want 405", post.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/stats Content-Type = %q", ct)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	up, ok := stats["uptime_seconds"].(float64)
	if !ok || up < 0 {
		t.Errorf("uptime_seconds = %v", stats["uptime_seconds"])
	}
	for _, key := range []string{"version", "go_version"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
}
