// Package httpapi exposes a TMan database over HTTP/JSON — the service
// layer a deployment would put in front of the engine. It is deliberately
// small: JSON in, JSON out, no framework.
//
// Endpoints:
//
//	PUT  /trajectories           ingest a JSON array of trajectories
//	GET  /query/time             ?start=&end=                 (unix ms)
//	GET  /query/space            ?minx=&miny=&maxx=&maxy=
//	GET  /query/spacetime        space params + start/end
//	GET  /query/object           ?oid=&start=&end=
//	POST /query/similar          {"query": {...}, "measure": "frechet",
//	                              "k": 10} or {"theta": 0.015}
//	GET  /query/nearest          ?x=&y=&k=
//	DELETE /trajectories/{tid}   body: the trajectory to delete
//	GET  /stats                  engine + store counters
package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/obs"
	"github.com/tman-db/tman/internal/similarity"
)

// TrajectoryJSON is the wire representation of a trajectory.
type TrajectoryJSON struct {
	OID    string      `json:"oid"`
	TID    string      `json:"tid"`
	Points []PointJSON `json:"points"`
}

// PointJSON is the wire representation of one observation.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	T int64   `json:"t"`
}

// QueryResponse is the wire representation of a query result. Partial is
// true when the query degraded gracefully (deadline expiry or exhausted
// retries dropped some region scans): the trajectories present are correct,
// but more may exist. Degraded queries still respond 200.
type QueryResponse struct {
	Count         int              `json:"count"`
	Plan          string           `json:"plan"`
	Candidates    int64            `json:"candidates"`
	ElapsedMs     float64          `json:"elapsed_ms"`
	Partial       bool             `json:"partial"`
	RetriedRPCs   int64            `json:"retried_rpcs"`
	FailedRegions int              `json:"failed_regions"`
	FollowerReads int64            `json:"follower_reads,omitempty"`
	Trajectories  []TrajectoryJSON `json:"trajectories"`
}

// similarRequest is the POST /query/similar body.
type similarRequest struct {
	Query   TrajectoryJSON `json:"query"`
	Measure string         `json:"measure"`
	K       int            `json:"k,omitempty"`
	Theta   float64        `json:"theta,omitempty"`
}

// Server wraps a DB with HTTP handlers.
type Server struct {
	db          *tman.DB
	mux         *http.ServeMux
	log         *slog.Logger
	slow        time.Duration // requests slower than this log at WARN; 0 disables
	maxInflight int64         // sheds query/ingest load above this; 0 disables
	started     time.Time
	met         *serverMetrics
}

// ServerOption customizes a Server at New time.
type ServerOption func(*Server)

// WithLogger sets the structured request logger. Nil disables request
// logging (the default).
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithSlowQueryThreshold logs requests slower than d at WARN level with
// their full query report. Zero disables slow-query logging.
func WithSlowQueryThreshold(d time.Duration) ServerOption {
	return func(s *Server) { s.slow = d }
}

// WithMaxInflight bounds concurrently served query/ingest requests: load
// above the bound is shed with 503 + Retry-After instead of queueing without
// limit, and counted per request type in tman_slo_shed_total. Diagnostic
// endpoints (/stats, /metrics, /trace, /debug/...) are never shed. Zero (the
// default) disables admission control.
func WithMaxInflight(n int) ServerOption {
	return func(s *Server) { s.maxInflight = int64(n) }
}

// New builds a Server over an open database.
func New(db *tman.DB, opts ...ServerOption) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.met = newServerMetrics(db.Engine().Metrics())
	s.mux.HandleFunc("/trajectories", s.handleIngest)
	s.mux.HandleFunc("/trajectories/", s.handleDelete)
	s.mux.HandleFunc("/query/time", s.handleTime)
	s.mux.HandleFunc("/query/space", s.handleSpace)
	s.mux.HandleFunc("/query/spacetime", s.handleSpaceTime)
	s.mux.HandleFunc("/query/object", s.handleObject)
	s.mux.HandleFunc("/query/similar", s.handleSimilar)
	s.mux.HandleFunc("/query/nearest", s.handleNearest)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/jobs", s.handleDebugJobs)
	return s
}

// shedClass maps a request to its shed-accounting type, or "" when the
// request is not subject to admission control (diagnostic endpoints).
func shedClass(method, path string) string {
	switch {
	case strings.HasPrefix(path, "/query/"):
		return strings.TrimPrefix(path, "/query/")
	case path == "/trajectories" && (method == http.MethodPut || method == http.MethodPost):
		return "ingest"
	default:
		return ""
	}
}

// ServeHTTP implements http.Handler: every request gets an X-Request-Id
// (propagated from the client or generated), request metrics, and — when a
// logger is configured — a structured access-log line with slow-request
// escalation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	r = r.WithContext(obs.WithRequestID(r.Context(), reqID))

	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.met.inFlight.Add(1)
	if cls := shedClass(r.Method, r.URL.Path); cls != "" && s.maxInflight > 0 &&
		s.met.inFlight.Value() > s.maxInflight {
		// Shed rather than queue: the client gets an immediate, honest 503
		// it can back off on, instead of a latency cliff for everyone.
		if c, ok := s.met.shed[cls]; ok {
			c.Inc()
		}
		rec.Header().Set("Retry-After", "1")
		httpError(rec, http.StatusServiceUnavailable,
			"overloaded: %d requests in flight (limit %d)", s.met.inFlight.Value()-1, s.maxInflight)
	} else {
		s.mux.ServeHTTP(rec, r)
	}
	s.met.inFlight.Add(-1)

	elapsed := time.Since(started)
	s.met.observe(rec.status, elapsed)
	if s.log == nil {
		return
	}
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"elapsed_ms", float64(elapsed.Microseconds()) / 1000,
		"request_id", reqID,
	}
	switch {
	case s.slow > 0 && elapsed >= s.slow:
		s.log.Warn("slow request", attrs...)
	case rec.status >= 500:
		s.log.Error("request failed", attrs...)
	default:
		s.log.Debug("request", attrs...)
	}
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func toModel(in TrajectoryJSON) *tman.Trajectory {
	t := &tman.Trajectory{OID: in.OID, TID: in.TID}
	for _, p := range in.Points {
		t.Points = append(t.Points, tman.Point{X: p.X, Y: p.Y, T: p.T})
	}
	return t
}

func fromModel(t *tman.Trajectory) TrajectoryJSON {
	out := TrajectoryJSON{OID: t.OID, TID: t.TID}
	for _, p := range t.Points {
		out.Points = append(out.Points, PointJSON{X: p.X, Y: p.Y, T: p.T})
	}
	return out
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use PUT or POST")
		return
	}
	var in []TrajectoryJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// Validate up front so the request lands as one PutBatch through the
	// batched write path. The first invalid trajectory cuts the batch: the
	// valid prefix is still stored and the response reports how far ingest
	// got, matching the old sequential semantics.
	batch := make([]*tman.Trajectory, 0, len(in))
	var badTID string
	var badErr error
	for _, tj := range in {
		t := toModel(tj)
		t.SortByTime()
		if err := t.Validate(); err != nil {
			badTID, badErr = tj.TID, err
			break
		}
		batch = append(batch, t)
	}
	if err := s.db.PutBatch(batch); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "batch rejected: %v", err)
		return
	}
	if badErr != nil {
		httpError(w, http.StatusUnprocessableEntity,
			"trajectory %q rejected after %d stored: %v", badTID, len(batch), badErr)
		return
	}
	writeJSON(w, map[string]any{"stored": len(batch), "total": s.db.Len()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "use DELETE")
		return
	}
	var in TrajectoryJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := s.db.Delete(toModel(in)); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "delete failed: %v", err)
		return
	}
	writeJSON(w, map[string]any{"total": s.db.Len()})
}

func (s *Server) handleTime(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q, ok := timeRangeParam(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	trips, rep, err := s.db.QueryTimeRangeCtx(ctx, q)
	respond(w, trips, rep, err)
}

func (s *Server) handleSpace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	sr, ok := rectParam(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	trips, rep, err := s.db.QuerySpaceCtx(ctx, sr)
	respond(w, trips, rep, err)
}

func (s *Server) handleSpaceTime(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	sr, ok := rectParam(w, r)
	if !ok {
		return
	}
	q, ok := timeRangeParam(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	trips, rep, err := s.db.QuerySpaceTimeCtx(ctx, sr, q)
	respond(w, trips, rep, err)
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	oid := r.URL.Query().Get("oid")
	if oid == "" {
		httpError(w, http.StatusBadRequest, "missing oid")
		return
	}
	q, ok := timeRangeParam(w, r)
	if !ok {
		return
	}
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	trips, rep, err := s.db.QueryObjectCtx(ctx, oid, q)
	respond(w, trips, rep, err)
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req similarRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	var m tman.Measure
	switch req.Measure {
	case "frechet", "":
		m = similarity.Frechet
	case "dtw":
		m = similarity.DTW
	case "hausdorff":
		m = similarity.Hausdorff
	default:
		httpError(w, http.StatusBadRequest, "unknown measure %q", req.Measure)
		return
	}
	query := toModel(req.Query)
	query.SortByTime()
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	switch {
	case req.K > 0:
		trips, rep, err := s.db.QuerySimilarTopKCtx(ctx, query, m, req.K)
		respond(w, trips, rep, err)
	case req.Theta > 0:
		trips, rep, err := s.db.QuerySimilarThresholdCtx(ctx, query, m, req.Theta)
		respond(w, trips, rep, err)
	default:
		httpError(w, http.StatusBadRequest, "set k or theta")
	}
}

// handleNearest serves GET /query/nearest?x=&y=&k=.
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	x, e1 := strconv.ParseFloat(r.URL.Query().Get("x"), 64)
	y, e2 := strconv.ParseFloat(r.URL.Query().Get("y"), 64)
	k, e3 := strconv.Atoi(r.URL.Query().Get("k"))
	if e1 != nil || e2 != nil || e3 != nil || k <= 0 {
		httpError(w, http.StatusBadRequest, "need x, y and k > 0")
		return
	}
	ctx, cancel, ok := queryCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	trips, rep, err := s.db.QueryNearestCtx(ctx, x, y, k)
	respond(w, trips, rep, err)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap := s.db.Engine().Store().Stats().Snapshot()
	cs := s.db.Engine().CacheStats()
	ps := s.db.Engine().PlanCacheStats()
	rs := s.db.Engine().Store().ReplicaStats()
	bcs := s.db.Engine().Store().BlockCacheStats()
	sloMS, slo := s.db.Engine().SLOSnapshot()
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"version":        buildVersion(),
		"go_version":     runtime.Version(),
		"trajectories":   s.db.Len(),
		"rows_scanned":   snap.RowsScanned,
		"rows_returned":  snap.RowsReturned,
		"seeks":          snap.Seeks,
		"rpcs":           snap.RPCs,
		"bytes_returned": snap.BytesReturned,
		"region_splits":  snap.RegionSplits,
		"failed_rpcs":    snap.FailedRPCs,
		"retried_rpcs":   snap.RetriedRPCs,
		"failed_regions": snap.FailedRegions,
		"partial_scans":  snap.PartialScans,

		"flushes":             snap.Flushes,
		"compactions":         snap.Compactions,
		"subcompactions":      snap.SubCompactions,
		"bytes_flushed":       snap.BytesFlushed,
		"bytes_compacted":     snap.BytesCompacted,
		"compact_stall_ns":    snap.CompactStallNanos,
		"compact_queue_depth": s.db.Engine().Store().CompactQueueDepth(),

		"replicas":          s.db.Engine().Store().Replicas(),
		"replica_followers": rs.Followers,
		"replicas_down":     rs.Down,
		"replica_lag_ms":    rs.MaxLagMS,
		"failovers":         snap.Failovers,
		"follower_reads":    snap.FollowerReads,
		"ship_frames":       snap.ShipFrames,
		"ship_rejects":      snap.ShipRejects,
		"catchup_tail":      snap.CatchupTail,
		"catchup_snapshot":  snap.CatchupSnapshots,

		"block_cache_hits":       snap.BlockCacheHits,
		"block_cache_misses":     snap.BlockCacheMisses,
		"block_cache_evictions":  bcs.Evictions,
		"block_cache_used_bytes": s.db.Engine().Store().BlockCacheUsedBytes(),
		"block_read_bytes":       snap.BlockReadBytes,
		"bloom_checks":           snap.BloomChecks,
		"bloom_negatives":        snap.BloomNegatives,
		"bloom_false_positives":  snap.BloomFalsePositives,
		"catchup_ship_bytes":     snap.CatchupShipBytes,
		"fence_blocks_skipped":   snap.BlocksSkipped,
		"fence_blocks_accepted":  snap.BlocksAcceptedWhole,
		"fence_bytes_read":       snap.FenceBytesRead,

		"reencodes":    s.db.Engine().Reencodes(),
		"cache_hits":   cs.Hits,
		"cache_misses": cs.Misses,
		"cache_evicts": cs.Evictions,
		"dir_loads":    cs.DirLoads,
		"shared_loads": cs.SharedLoads,
		"plan_hits":    ps.Hits,
		"plan_misses":  ps.Misses,
		"plan_entries": ps.Entries,

		"slo_objective_ms": sloMS,
		"slo":              slo,
		"bg_jobs_running":  s.db.Engine().Jobs().RunningCount(),
		"scan_queue_depth": s.db.Engine().Store().ScanQueueDepth(),
	})
}

// ------------------------------------------------------------- helpers ---

// queryCtx derives the query context from the optional ?deadline_ms= and
// ?max_staleness_ms= parameters. With a deadline set, queries that run out
// of time respond 200 with partial=true instead of failing; with a staleness
// bound set, region scans may be served by follower replicas no further than
// that many milliseconds behind the leader (requires replication). The
// returned cancel must be called.
func queryCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if raw := r.URL.Query().Get("max_staleness_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "max_staleness_ms must be a non-negative integer, got %q", raw)
			return nil, nil, false
		}
		ctx = tman.WithMaxStaleness(ctx, time.Duration(ms)*time.Millisecond)
	}
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			httpError(w, http.StatusBadRequest, "deadline_ms must be a positive integer, got %q", raw)
			return nil, nil, false
		}
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	}
	return ctx, cancel, true
}

func respond(w http.ResponseWriter, trips []*tman.Trajectory, rep tman.Report, err error) {
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "query failed: %v", err)
		return
	}
	out := QueryResponse{
		Count:         len(trips),
		Plan:          rep.Plan,
		Candidates:    rep.Candidates,
		ElapsedMs:     float64(rep.Elapsed.Microseconds()) / 1000,
		Partial:       rep.Partial,
		RetriedRPCs:   rep.RetriedRPCs,
		FailedRegions: rep.FailedRegions,
		FollowerReads: rep.FollowerReads,
	}
	for _, t := range trips {
		out.Trajectories = append(out.Trajectories, fromModel(t))
	}
	writeJSON(w, out)
}

func timeRangeParam(w http.ResponseWriter, r *http.Request) (tman.TimeRange, bool) {
	start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	end, err2 := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
	if err1 != nil || err2 != nil || end < start {
		httpError(w, http.StatusBadRequest, "need start <= end (unix ms)")
		return tman.TimeRange{}, false
	}
	return tman.TimeRange{Start: start, End: end}, true
}

func rectParam(w http.ResponseWriter, r *http.Request) (tman.Rect, bool) {
	get := func(k string) (float64, error) { return strconv.ParseFloat(r.URL.Query().Get(k), 64) }
	minx, e1 := get("minx")
	miny, e2 := get("miny")
	maxx, e3 := get("maxx")
	maxy, e4 := get("maxy")
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil || maxx < minx || maxy < miny {
		httpError(w, http.StatusBadRequest, "need minx <= maxx, miny <= maxy")
		return tman.Rect{}, false
	}
	return tman.Rect{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy}, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
