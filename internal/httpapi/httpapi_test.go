package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tman "github.com/tman-db/tman"
)

func newTestServer(t *testing.T) (*httptest.Server, *tman.DB) {
	t.Helper()
	db, err := tman.Open(tman.Beijing)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts, db
}

func sampleJSON(oid, tid string, start int64, x, y float64) TrajectoryJSON {
	tj := TrajectoryJSON{OID: oid, TID: tid}
	for i := 0; i < 10; i++ {
		tj.Points = append(tj.Points, PointJSON{
			X: x + float64(i)*0.001, Y: y + float64(i)*0.001, T: start + int64(i)*60_000,
		})
	}
	return tj
}

func ingest(t *testing.T, ts *httptest.Server, trajs ...TrajectoryJSON) {
	t.Helper()
	body, _ := json.Marshal(trajs)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/trajectories", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
}

func getQuery(t *testing.T, ts *httptest.Server, path string) QueryResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIngestAndQueries(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts,
		sampleJSON("car-1", "t1", base, 116.40, 39.90),
		sampleJSON("car-1", "t2", base+3600_000, 116.42, 39.92),
		sampleJSON("car-2", "t3", base+30*60_000, 116.40, 39.91),
	)
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}

	// Temporal: t1 spans [base, base+9m], t3 starts at +30m, t2 at +1h.
	out := getQuery(t, ts, fmt.Sprintf("/query/time?start=%d&end=%d", base, base+35*60_000))
	if out.Count != 2 {
		t.Errorf("time query count = %d, want 2 (t1 and t3)", out.Count)
	}
	if out.Plan == "" || out.ElapsedMs < 0 {
		t.Errorf("report not populated: %+v", out)
	}

	// Spatial.
	out = getQuery(t, ts, "/query/space?minx=116.39&miny=39.89&maxx=116.41&maxy=39.905")
	if out.Count != 1 || out.Trajectories[0].TID != "t1" {
		t.Errorf("space query = %+v", out.Trajectories)
	}

	// Spatio-temporal.
	out = getQuery(t, ts, fmt.Sprintf(
		"/query/spacetime?minx=116.39&miny=39.89&maxx=116.45&maxy=39.95&start=%d&end=%d",
		base, base+35*60_000))
	if out.Count != 2 {
		t.Errorf("spacetime count = %d, want 2 (t1 and t3)", out.Count)
	}

	// Object.
	out = getQuery(t, ts, fmt.Sprintf("/query/object?oid=car-1&start=%d&end=%d", base, base+2*3600_000))
	if out.Count != 2 {
		t.Errorf("object count = %d, want 2", out.Count)
	}
}

func TestSimilarEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts,
		sampleJSON("a", "t1", base, 116.40, 39.90),
		sampleJSON("a", "t2", base, 116.401, 39.901),
		sampleJSON("a", "t3", base, 116.60, 40.10),
	)
	body, _ := json.Marshal(similarRequest{
		Query:   sampleJSON("q", "q1", base, 116.4005, 39.9005),
		Measure: "hausdorff",
		K:       2,
	})
	resp, err := http.Post(ts.URL+"/query/similar", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if out.Count != 2 {
		t.Fatalf("topk count = %d, want 2", out.Count)
	}
	for _, tr := range out.Trajectories {
		if tr.TID == "t3" {
			t.Error("distant trajectory in top-2")
		}
	}

	// Threshold variant.
	body, _ = json.Marshal(similarRequest{
		Query: sampleJSON("q", "q2", base, 116.4005, 39.9005),
		Theta: 0.01,
	})
	resp2, err := http.Post(ts.URL+"/query/similar", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 QueryResponse
	json.NewDecoder(resp2.Body).Decode(&out2)
	if out2.Count == 0 {
		t.Error("threshold found nothing nearby")
	}
}

func TestDeleteEndpoint(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	tj := sampleJSON("a", "t1", base, 116.40, 39.90)
	ingest(t, ts, tj)
	body, _ := json.Marshal(tj)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/trajectories/t1", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if db.Len() != 0 {
		t.Errorf("Len after delete = %d", db.Len())
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sampleJSON("a", "t1", 1_700_000_000_000, 116.40, 39.90))
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["trajectories"].(float64) != 1 {
		t.Errorf("stats = %v", stats)
	}
	for _, key := range []string{"cache_hits", "cache_misses", "dir_loads", "shared_loads", "plan_hits", "plan_misses", "plan_entries"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q: %v", key, stats)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path, body string
		wantCode           int
	}{
		{"GET", "/query/time?start=10&end=5", "", http.StatusBadRequest},
		{"GET", "/query/time", "", http.StatusBadRequest},
		{"GET", "/query/space?minx=2&miny=0&maxx=1&maxy=1", "", http.StatusBadRequest},
		{"GET", "/query/object?start=0&end=1", "", http.StatusBadRequest},
		{"PUT", "/trajectories", "{not json", http.StatusBadRequest},
		{"PUT", "/trajectories", `[{"oid":"o","tid":"","points":[]}]`, http.StatusUnprocessableEntity},
		{"POST", "/query/similar", `{"measure":"nope"}`, http.StatusBadRequest},
		{"GET", "/trajectories/t1", "", http.StatusMethodNotAllowed},
		{"DELETE", "/query/time", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantCode)
		}
	}
}

func TestIngestSortsUnorderedPoints(t *testing.T) {
	ts, db := newTestServer(t)
	tj := TrajectoryJSON{OID: "o", TID: "t", Points: []PointJSON{
		{X: 116.4, Y: 39.9, T: 2000},
		{X: 116.41, Y: 39.91, T: 1000},
	}}
	ingest(t, ts, tj)
	if db.Len() != 1 {
		t.Fatal("unordered trajectory should be repaired and stored")
	}
}

func TestNearestEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts,
		sampleJSON("a", "near", base, 116.400, 39.900),
		sampleJSON("a", "far", base, 116.80, 40.30),
	)
	out := getQuery(t, ts, "/query/nearest?x=116.401&y=39.901&k=1")
	if out.Count != 1 || out.Trajectories[0].TID != "near" {
		t.Fatalf("nearest = %+v", out.Trajectories)
	}
	resp, _ := http.Get(ts.URL + "/query/nearest?x=1&y=2")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing k: status %d", resp.StatusCode)
	}
}

func TestSimilarRequiresKOrTheta(t *testing.T) {
	ts, _ := newTestServer(t)
	body, _ := json.Marshal(similarRequest{
		Query: sampleJSON("q", "q1", 1_700_000_000_000, 116.4, 39.9),
	})
	resp, err := http.Post(ts.URL+"/query/similar", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing k/theta: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp2, _ := http.Get(ts.URL + "/query/similar")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET similar: status %d", resp2.StatusCode)
	}
	// Bad JSON body.
	resp3, _ := http.Post(ts.URL+"/query/similar", "application/json", strings.NewReader("{"))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp3.StatusCode)
	}
}

func TestIngestPartialFailureReportsProgress(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	good := sampleJSON("a", "ok-1", base, 116.4, 39.9)
	bad := TrajectoryJSON{OID: "a", TID: "", Points: []PointJSON{{X: 1, Y: 1, T: 1}}}
	body, _ := json.Marshal([]TrajectoryJSON{good, bad})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/trajectories", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("partial failure status %d", resp.StatusCode)
	}
	var msg map[string]string
	json.NewDecoder(resp.Body).Decode(&msg)
	if !strings.Contains(msg["error"], "after 1 stored") {
		t.Errorf("error should report progress: %q", msg["error"])
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d; the valid trajectory should have landed", db.Len())
	}
}

func TestDeleteBadBodyAndMissing(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/trajectories/x", strings.NewReader("{"))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad delete body: status %d", resp.StatusCode)
	}
	// Deleting an absent (but well-formed) trajectory is a KV no-op: the
	// engine validates shape only, so it succeeds idempotently.
	body, _ := json.Marshal(sampleJSON("a", "ghost", 1_700_000_000_000, 116.4, 39.9))
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/trajectories/ghost", bytes.NewReader(body))
	resp2, _ := http.DefaultClient.Do(req2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("idempotent delete: status %d", resp2.StatusCode)
	}
}

func TestSpaceTimeMissingTimeParams(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := http.Get(ts.URL + "/query/spacetime?minx=1&miny=1&maxx=2&maxy=2")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing time params: status %d", resp.StatusCode)
	}
}
