package httpapi

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/obs"
)

func floatParam(r *http.Request, key string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(key), 64)
}

func intParam(r *http.Request, key string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(key))
}

// shedTypes are the request types subject to admission control, keyed the
// way clients see them (the /query/ path segment, plus "ingest" for
// trajectory writes). Registered up front so the shed series exist at zero
// before any overload.
var shedTypes = []string{"time", "space", "spacetime", "object", "similar", "nearest", "ingest"}

// serverMetrics is the HTTP layer's registration into the shared engine
// registry: request counts by status class, request latency, in-flight
// requests, and per-type shed-load counters.
type serverMetrics struct {
	inFlight *obs.Gauge
	byClass  map[int]*obs.Counter    // status/100 (2..5) -> counter
	shed     map[string]*obs.Counter // request type -> 503s from admission control
	duration *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		inFlight: reg.Gauge("tman_http_in_flight", "requests currently being served"),
		byClass:  make(map[int]*obs.Counter, 4),
		shed:     make(map[string]*obs.Counter, len(shedTypes)),
		duration: reg.Histogram("tman_http_request_duration_seconds",
			"HTTP request latency", obs.DefBuckets),
	}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		m.byClass[int(class[0]-'0')] = reg.Counter(
			`tman_http_requests_total{code="`+class+`"}`, "HTTP requests by status class")
	}
	for _, t := range shedTypes {
		m.shed[t] = reg.Counter(`tman_slo_shed_total{type="`+t+`"}`,
			"requests shed by admission control")
	}
	return m
}

// observe records one finished request.
func (m *serverMetrics) observe(status int, elapsed time.Duration) {
	if c, ok := m.byClass[status/100]; ok {
		c.Inc()
	}
	m.duration.ObserveDuration(elapsed.Nanoseconds())
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.db.Engine().Metrics().WritePrometheus(w)
}

// TraceResponse is the /trace payload: the query's report plus its full
// span tree with cost-model charges.
type TraceResponse struct {
	RequestID     string       `json:"request_id"`
	Plan          string       `json:"plan"`
	Candidates    int64        `json:"candidates"`
	Results       int          `json:"count"`
	ElapsedMs     float64      `json:"elapsed_ms"`
	Partial       bool         `json:"partial"`
	RetriedRPCs   int64        `json:"retried_rpcs"`
	FailedRegions int          `json:"failed_regions"`
	Trace         obs.SpanJSON `json:"trace"`
}

// handleTrace serves GET /trace?query=<type>&...: it executes one query of
// the given type (same parameters as the matching /query/ endpoint) with
// tracing forced on — regardless of the engine's sample rate — and returns
// the report together with the span tree. Result trajectories are not
// returned; this is a diagnosis endpoint, not a data path.
//
//	/trace?query=time&start=&end=
//	/trace?query=space&minx=&miny=&maxx=&maxy=
//	/trace?query=spacetime&minx=..&start=..
//	/trace?query=object&oid=&start=&end=
//	/trace?query=nearest&x=&y=&k=
//
// With no query parameter, the most recent sampled trace is returned (404
// when sampling is off or nothing has been sampled yet).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	kind := r.URL.Query().Get("query")
	if kind == "" {
		last := s.db.Engine().LastTrace()
		if last == nil {
			httpError(w, http.StatusNotFound, "no sampled trace available; pass ?query= or enable sampling")
			return
		}
		writeJSON(w, map[string]any{"trace": last.JSON()})
		return
	}

	qStart := time.Now()
	root := obs.NewSpan("request")
	ctx := obs.ContextWithSpan(r.Context(), root)

	var rep tman.Report
	var err error
	switch kind {
	case "time":
		q, ok := timeRangeParam(w, r)
		if !ok {
			return
		}
		_, rep, err = s.db.QueryTimeRangeCtx(ctx, q)
	case "space":
		sr, ok := rectParam(w, r)
		if !ok {
			return
		}
		_, rep, err = s.db.QuerySpaceCtx(ctx, sr)
	case "spacetime":
		sr, ok := rectParam(w, r)
		if !ok {
			return
		}
		q, ok := timeRangeParam(w, r)
		if !ok {
			return
		}
		_, rep, err = s.db.QuerySpaceTimeCtx(ctx, sr, q)
	case "object":
		oid := r.URL.Query().Get("oid")
		q, ok := timeRangeParam(w, r)
		if !ok {
			return
		}
		if oid == "" {
			httpError(w, http.StatusBadRequest, "missing oid")
			return
		}
		_, rep, err = s.db.QueryObjectCtx(ctx, oid, q)
	case "nearest":
		x, e1 := floatParam(r, "x")
		y, e2 := floatParam(r, "y")
		k, e3 := intParam(r, "k")
		if e1 != nil || e2 != nil || e3 != nil || k <= 0 {
			httpError(w, http.StatusBadRequest, "need x, y and k > 0")
			return
		}
		_, rep, err = s.db.QueryNearestCtx(ctx, x, y, k)
	default:
		httpError(w, http.StatusBadRequest, "unknown query type %q (time|space|spacetime|object|nearest)", kind)
		return
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "query failed: %v", err)
		return
	}
	root.EndWith(rep.Elapsed)
	// Attach the background jobs (flushes, compactions, catch-ups...) whose
	// lifetime overlapped this query: the trace then shows not just where the
	// query spent its time, but what maintenance work it was contending with.
	if jobs := s.db.Engine().Jobs().Overlapping(qStart, time.Now()); len(jobs) > 0 {
		bg := root.Child("background", 0)
		for _, js := range jobs {
			bg.Attach(js.Span())
		}
	}
	writeJSON(w, TraceResponse{
		RequestID:     obs.RequestIDFrom(r.Context()),
		Plan:          rep.Plan,
		Candidates:    rep.Candidates,
		Results:       rep.Results,
		ElapsedMs:     float64(rep.Elapsed.Microseconds()) / 1000,
		Partial:       rep.Partial,
		RetriedRPCs:   rep.RetriedRPCs,
		FailedRegions: rep.FailedRegions,
		Trace:         root.JSON(),
	})
}

// DebugJobsResponse is the /debug/jobs payload: in-flight background jobs,
// a bounded ring of recently completed ones (newest first), and the hottest
// regions by rows scanned.
type DebugJobsResponse struct {
	Running        []obs.JobSnapshot   `json:"running"`
	Recent         []obs.JobSnapshot   `json:"recent"`
	HottestRegions []kvstore.RegionHot `json:"hottest_regions"`
}

// handleDebugJobs serves GET /debug/jobs?n=: the background maintenance the
// store is doing right now and did recently, with per-job resource ledgers.
// n bounds the completed-job list (default 32).
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	limit := 32
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer, got %q", raw)
			return
		}
		limit = n
	}
	running, recent := s.db.Engine().Jobs().Snapshot(limit)
	writeJSON(w, DebugJobsResponse{
		Running:        running,
		Recent:         recent,
		HottestRegions: s.db.Engine().RegionHotness(10),
	})
}

// buildVersion reports the module version baked into the binary ("devel"
// for local builds).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
