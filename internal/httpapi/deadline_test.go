package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/engine"
)

// newFaultedServer builds a server over a database with many small regions
// and the given fault model, pre-loaded with n trajectories around Beijing.
func newFaultedServer(t *testing.T, n int, fc tman.FaultConfig, rp tman.RetryPolicy) (*httptest.Server, *tman.DB) {
	t.Helper()
	db, err := tman.Open(tman.Beijing,
		func(c *engine.Config) {
			c.KV.RegionMaxBytes = 32 << 10
			c.KV.MemtableFlushBytes = 8 << 10
		},
		tman.WithFaultInjection(fc),
		tman.WithRetryPolicy(rp),
	)
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1_700_000_000_000)
	trajs := make([]*tman.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		x := 116.0 + float64(i%40)*0.02
		y := 39.5 + float64(i/40%40)*0.02
		tr := &tman.Trajectory{OID: fmt.Sprintf("o%03d", i%50), TID: fmt.Sprintf("t%05d", i)}
		for p := 0; p < 12; p++ {
			tr.Points = append(tr.Points, tman.Point{
				X: x + float64(p)*0.001, Y: y + float64(p)*0.001,
				T: base + int64(i)*60_000 + int64(p)*5_000,
			})
		}
		trajs = append(trajs, tr)
	}
	if err := db.PutBatch(trajs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts, db
}

// TestDeadlineParamDegradesToPartial200: a whole-boundary spatial query
// under aggressive faults and a tight ?deadline_ms= must respond 200 with
// partial=true and a non-empty subset, not an error.
func TestDeadlineParamDegradesToPartial200(t *testing.T) {
	ts, _ := newFaultedServer(t, 1200,
		tman.FaultConfig{Seed: 13, PFailRPC: 0.5},
		tman.RetryPolicy{
			MaxAttempts: 6,
			BaseBackoff: 300 * time.Millisecond,
			MaxBackoff:  10 * time.Second,
			Multiplier:  2,
			JitterFrac:  0.2,
		},
	)
	path := "/query/space?minx=110&miny=35&maxx=125&maxy=45&deadline_ms=50"
	started := time.Now()
	out := getQuery(t, ts, path) // getQuery fails the test on non-200
	if time.Since(started) > 2*time.Second {
		t.Fatal("deadline handling slept for real backoff time")
	}
	if !out.Partial {
		t.Fatalf("expected partial=true under 50%% faults and a 50ms deadline: %+v", out)
	}
	if out.Count == 0 {
		t.Fatal("partial response must keep rows from healthy regions")
	}
	if out.FailedRegions == 0 {
		t.Fatalf("partial response must count failed regions: %+v", out)
	}

	// The same window without a deadline eventually succeeds in full.
	full := getQuery(t, ts, "/query/space?minx=110&miny=35&maxx=125&maxy=45")
	if full.Partial {
		t.Fatalf("deadline-free query must retry to completion: %+v", full)
	}
	if full.Count <= out.Count {
		t.Fatalf("full answer (%d) should exceed the partial one (%d)", full.Count, out.Count)
	}
	if full.RetriedRPCs == 0 {
		t.Fatal("full answer under faults must have retried")
	}

	// /stats exposes the fault counters.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"retried_rpcs", "failed_rpcs", "failed_regions", "partial_scans"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("/stats missing %q: %v", key, stats)
		}
	}
	if stats["partial_scans"].(float64) == 0 {
		t.Fatalf("partial_scans not counted: %v", stats)
	}
	if stats["retried_rpcs"].(float64) == 0 {
		t.Fatalf("retried_rpcs not counted: %v", stats)
	}
}

// TestDeadlineParamHealthyServerUnaffected: a generous deadline on a
// fault-free server returns the complete answer with partial=false.
func TestDeadlineParamHealthyServerUnaffected(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts, sampleJSON("a", "t1", base, 116.40, 39.90))
	out := getQuery(t, ts, fmt.Sprintf("/query/time?start=%d&end=%d&deadline_ms=5000", base, base+3600_000))
	if out.Partial || out.Count != 1 {
		t.Fatalf("healthy deadline query degraded: %+v", out)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

// TestDeadlineParamValidation: malformed deadlines are a 400.
func TestDeadlineParamValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		resp, err := http.Get(ts.URL + "/query/time?start=0&end=1&deadline_ms=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline_ms=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
