package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
)

// TestDebugJobsEndpoint checks /debug/jobs surfaces the background work a
// bulk load plus major compaction produces, with non-empty resource ledgers,
// and that region hotness reflects queries actually run.
func TestDebugJobsEndpoint(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	var trajs []TrajectoryJSON
	for i := 0; i < 50; i++ {
		trajs = append(trajs, sampleJSON("o", fmt.Sprintf("t%d", i), base+int64(i)*60_000, 116.40, 39.90))
	}
	ingest(t, ts, trajs...)
	db.Engine().Store().CompactAll()
	getQuery(t, ts, "/query/space?minx=116.3&miny=39.8&maxx=116.5&maxy=40.0")

	resp, err := http.Get(ts.URL + "/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/jobs: status %d", resp.StatusCode)
	}
	var out DebugJobsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) == 0 {
		t.Fatal("no completed jobs after bulk load + CompactAll")
	}
	kinds := make(map[string]bool)
	var ledgered bool
	for _, j := range out.Recent {
		kinds[j.Kind] = true
		if j.BytesWritten > 0 || j.BytesRead > 0 {
			ledgered = true
		}
		if j.Running {
			t.Errorf("completed list contains a running job: %+v", j)
		}
	}
	if !kinds["flush"] {
		t.Errorf("no flush job recorded; kinds = %v", kinds)
	}
	if !ledgered {
		t.Errorf("every job ledger is empty: %+v", out.Recent)
	}
	if len(out.HottestRegions) == 0 {
		t.Fatal("no region hotness reported")
	}
	var rows int64
	for _, h := range out.HottestRegions {
		rows += h.Rows
	}
	if rows == 0 {
		t.Errorf("hotness all zero after a query: %+v", out.HottestRegions)
	}

	// Parameter and method guards.
	bad, _ := http.Get(ts.URL + "/debug/jobs?n=zero")
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", bad.StatusCode)
	}
	post, _ := http.Post(ts.URL+"/debug/jobs", "application/json", nil)
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", post.StatusCode)
	}
}

// TestTraceAttachesOverlappingBackgroundJobs pins the acceptance criterion:
// a forced /trace?query= concurrent with compaction shows the background
// job's span with non-zero byte attribution. A churn goroutine keeps
// ingest + major compactions running while the test polls /trace until a
// background child with a charged ledger appears.
func TestTraceAttachesOverlappingBackgroundJobs(t *testing.T) {
	ts, db := newTestServer(t)
	base := int64(1_700_000_000_000)
	ingest(t, ts, sampleJSON("o", "seed", base, 116.40, 39.90))

	var stop atomic.Bool
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; !stop.Load(); i++ {
			tr := sampleJSON("churn", fmt.Sprintf("c%d", i), base+int64(i)*60_000, 116.41, 39.91)
			mt := toModel(tr)
			mt.SortByTime()
			if err := db.PutBatch([]*tman.Trajectory{mt}); err != nil {
				t.Error(err)
				return
			}
			db.Engine().Store().CompactAll()
		}
	}()
	defer func() { stop.Store(true); <-churnDone }()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/trace?query=space&minx=116.3&miny=39.8&maxx=116.5&maxy=40.0")
		if err != nil {
			t.Fatal(err)
		}
		var tr TraceResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, child := range tr.Trace.Children {
			if child.Name != "background" {
				continue
			}
			for _, job := range child.Children {
				bytes := job.Attrs["bytes_read"] + job.Attrs["bytes_written"]
				if bytes > 0 {
					// The span must identify the job and carry the ledger.
					if !strings.Contains(job.Name, ":") || job.Attrs["job_id"] == 0 {
						t.Fatalf("background span malformed: %+v", job)
					}
					return // acceptance met
				}
			}
		}
	}
	t.Fatal("no background job span with non-zero byte attribution appeared in /trace within 30s")
}

// TestAdmissionControlSheds pins the overload contract: with a bound set,
// query and ingest requests over the in-flight limit get 503 + Retry-After
// and a per-type shed counter; diagnostic endpoints are never shed.
func TestAdmissionControlSheds(t *testing.T) {
	db, err := tman.Open(tman.Beijing)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, WithMaxInflight(2))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Simulate saturation: park phantom in-flight requests on the gauge so
	// the next real request is over the limit, deterministically.
	srv.met.inFlight.Add(5)
	defer srv.met.inFlight.Add(-5)

	resp, err := http.Get(ts.URL + "/query/time?start=0&end=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if got := srv.met.shed["time"].Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/trajectories", strings.NewReader("[]"))
	ir, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if ir.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded ingest: status %d, want 503", ir.StatusCode)
	}
	if got := srv.met.shed["ingest"].Value(); got != 1 {
		t.Errorf("ingest shed counter = %d, want 1", got)
	}

	// Diagnostics stay reachable under overload — that's the point of
	// shedding in the first place.
	for _, path := range []string{"/stats", "/metrics", "/debug/jobs"} {
		dr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusOK {
			t.Errorf("GET %s under overload: status %d, want 200", path, dr.StatusCode)
		}
	}

	// The shed series are visible in the exposition.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, mr)
	if !strings.Contains(body, `tman_slo_shed_total{type="time"} 1`) {
		t.Errorf("exposition missing shed series:\n%s", grepLines(body, "shed"))
	}
}

// TestAdmissionControlDisabledByDefault: without WithMaxInflight, nothing is
// shed no matter the gauge.
func TestAdmissionControlDisabledByDefault(t *testing.T) {
	db, err := tman.Open(tman.Beijing)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	srv.met.inFlight.Add(100)
	defer srv.met.inFlight.Add(-100)
	resp, err := http.Get(ts.URL + "/query/time?start=0&end=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbounded server shed: status %d", resp.StatusCode)
	}
}

// TestStatsSLOSection checks /stats reports the SLO standing and background
// job summary, and that queries move the good counters.
func TestStatsSLOSection(t *testing.T) {
	ts, _ := newTestServer(t)
	ingest(t, ts, sampleJSON("a", "t1", 1_700_000_000_000, 116.40, 39.90))
	getQuery(t, ts, "/query/time?start=0&end=2000000000000")

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		SLOObjectiveMS int64 `json:"slo_objective_ms"`
		SLO            map[string]struct {
			Good int64 `json:"good"`
			Late int64 `json:"late"`
		} `json:"slo"`
		BGJobsRunning  *int64 `json:"bg_jobs_running"`
		ScanQueueDepth *int64 `json:"scan_queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SLOObjectiveMS != 250 {
		t.Errorf("slo_objective_ms = %d, want the 250 default", stats.SLOObjectiveMS)
	}
	tempo, ok := stats.SLO["temporal"]
	if !ok {
		t.Fatalf("slo section missing temporal type: %v", stats.SLO)
	}
	if tempo.Good+tempo.Late == 0 {
		t.Error("temporal query not observed against the SLO")
	}
	if stats.BGJobsRunning == nil || stats.ScanQueueDepth == nil {
		t.Error("/stats missing bg_jobs_running or scan_queue_depth")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
