package quad

import (
	"math"
	"math/rand"
	"testing"
)

// The paper's Figure 8(a) examples with g = 2: quadrant codes of enlarged
// elements '03' and '33' are 4 and 20.
func TestCodeMatchesPaperExamples(t *testing.T) {
	const g = 2
	seq03 := CellFromSequence([]byte{0, 3})
	if got := seq03.Code(g); got != 4 {
		t.Errorf("code('03') = %d, want 4", got)
	}
	// Figure 8(a) labels '33' as 20, but Eq. 2 evaluates to 19 — with g=2
	// there are exactly 4+16 = 20 sequences, so the DFS-last code is 19 and
	// the figure is off by one ('03' = 4 confirms the 0-based numbering).
	seq33 := CellFromSequence([]byte{3, 3})
	if got := seq33.Code(g); got != 19 {
		t.Errorf("code('33') = %d, want 19 (Eq. 2)", got)
	}
	// First sequences in DFS order: '0' = 0, '00' = 1.
	if got := CellFromSequence([]byte{0}).Code(g); got != 0 {
		t.Errorf("code('0') = %d, want 0", got)
	}
	if got := CellFromSequence([]byte{0, 0}).Code(g); got != 1 {
		t.Errorf("code('00') = %d, want 1", got)
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 500; iter++ {
		r := 1 + rng.Intn(12)
		c := Cell{IX: uint32(rng.Intn(1 << r)), IY: uint32(rng.Intn(1 << r)), R: r}
		seq := c.Sequence()
		if len(seq) != r {
			t.Fatalf("sequence length %d != %d", len(seq), r)
		}
		back := CellFromSequence(seq)
		if back != c {
			t.Fatalf("round trip %v -> %v -> %v", c, seq, back)
		}
	}
}

// Codes are assigned in depth-first lexicographic order: for any two cells,
// lexicographic sequence order must equal code order.
func TestCodeIsDFSOrder(t *testing.T) {
	const g = 5
	type sc struct {
		seq  string
		code uint64
	}
	var all []sc
	var walk func(c Cell, seq []byte)
	walk = func(c Cell, seq []byte) {
		if c.R >= 1 {
			all = append(all, sc{seq: string(seq), code: c.Code(g)})
		}
		if c.R >= g {
			return
		}
		for q, ch := range c.Children() {
			walk(ch, append(seq, byte('0'+q)))
		}
	}
	walk(Cell{R: 0}, nil)
	for i := 1; i < len(all); i++ {
		if all[i-1].code >= all[i].code {
			t.Fatalf("DFS order violated: %q=%d then %q=%d", all[i-1].seq, all[i-1].code, all[i].seq, all[i].code)
		}
		if all[i].code != all[i-1].code+1 {
			t.Fatalf("codes not consecutive in DFS: %q=%d then %q=%d", all[i-1].seq, all[i-1].code, all[i].seq, all[i].code)
		}
	}
	if all[0].code != 0 {
		t.Errorf("first DFS code = %d, want 0", all[0].code)
	}
	if got, want := all[len(all)-1].code, MaxCode(g); got != want {
		t.Errorf("last DFS code = %d, MaxCode = %d", got, want)
	}
}

func TestSubtreeSize(t *testing.T) {
	const g = 4
	// A cell at resolution g has only itself.
	if got := SubtreeSize(g, g); got != 1 {
		t.Errorf("SubtreeSize(g,g) = %d", got)
	}
	// r = g-1: itself + 4 children.
	if got := SubtreeSize(g-1, g); got != 5 {
		t.Errorf("SubtreeSize(g-1,g) = %d", got)
	}
	if got := SubtreeSize(g+1, g); got != 0 {
		t.Errorf("SubtreeSize(g+1,g) = %d", got)
	}
	// Consistency with DFS: codes of subtree of '0' at r=1 are [0, SubtreeSize).
	c := CellFromSequence([]byte{0})
	lastInSubtree := CellFromSequence([]byte{0, 3, 3, 3})
	if lastInSubtree.Code(g) != c.Code(g)+SubtreeSize(1, g)-1 {
		t.Errorf("subtree range mismatch: %d vs %d + %d - 1",
			lastInSubtree.Code(g), c.Code(g), SubtreeSize(1, g))
	}
	// Total extended codes = 1 + sum of 4 level-1 subtrees.
	if TotalExtCodes(g) != 1+4*SubtreeSize(1, g) {
		t.Errorf("TotalExtCodes inconsistent")
	}
}

func TestExtCode(t *testing.T) {
	const g = 3
	if ExtCode(Cell{R: 0}, g) != 0 {
		t.Error("root ext code should be 0")
	}
	if ExtCode(CellFromSequence([]byte{0}), g) != 1 {
		t.Error("first child ext code should be 1")
	}
	// Subtree consecutiveness under ExtCode.
	c := CellFromSequence([]byte{1})
	first := ExtCode(c, g)
	last := ExtCode(CellFromSequence([]byte{1, 3, 3}), g)
	if last != first+ExtSubtreeSize(1, g)-1 {
		t.Errorf("ext subtree range mismatch: first=%d last=%d size=%d", first, last, ExtSubtreeSize(1, g))
	}
}

func TestCellRectAndCellAt(t *testing.T) {
	c := CellAt(0.6, 0.3, 2)
	// 0.6 -> column 2, 0.3 -> row 1 at resolution 2 (4x4 grid).
	if c.IX != 2 || c.IY != 1 {
		t.Errorf("CellAt = %+v", c)
	}
	r := c.Rect()
	if r.MinX != 0.5 || r.MinY != 0.25 || r.MaxX != 0.75 || r.MaxY != 0.5 {
		t.Errorf("Rect = %v", r)
	}
	if !r.ContainsPoint(0.6, 0.3) {
		t.Error("cell rect must contain its defining point")
	}
	// Clamping at the boundary.
	edge := CellAt(1.0, 1.0, 3)
	if edge.IX != 7 || edge.IY != 7 {
		t.Errorf("boundary CellAt = %+v", edge)
	}
	if CellAt(-0.1, 2.0, 1) != (Cell{IX: 0, IY: 1, R: 1}) {
		t.Error("out-of-range clamping failed")
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		r := rng.Intn(10)
		c := Cell{IX: uint32(rng.Intn(1 << r)), IY: uint32(rng.Intn(1 << r)), R: r}
		pr := c.Rect()
		var area float64
		for _, ch := range c.Children() {
			cr := ch.Rect()
			if !pr.Contains(cr) {
				t.Fatalf("child %v (%v) not inside parent %v (%v)", ch, cr, c, pr)
			}
			area += cr.Area()
		}
		if math.Abs(area-pr.Area()) > 1e-12 {
			t.Fatalf("children areas %g != parent area %g", area, pr.Area())
		}
	}
}

func TestResolutionForExtent(t *testing.T) {
	const g = 16
	cases := []struct {
		w, h        float64
		alpha, beta int
		want        int
	}{
		{0.3, 0.3, 1, 1, 1},   // log0.5(0.3) = 1.74
		{0.25, 0.25, 1, 1, 2}, // exactly 0.25 -> l = 2
		{0.6, 0.1, 1, 1, 0},   // wider than half the space
		{0.6, 0.1, 2, 2, 1},   // α=2 halves effective extent
		{0, 0, 3, 3, g},       // point
		{1e-9, 1e-9, 5, 5, g}, // tiny -> clamped at g
		{0.05, 0.2, 2, 4, 4},  // max(0.025, 0.05) = 0.05 -> l=4
	}
	for i, tc := range cases {
		if got := ResolutionForExtent(tc.w, tc.h, tc.alpha, tc.beta, g); got != tc.want {
			t.Errorf("case %d: ResolutionForExtent = %d, want %d", i, got, tc.want)
		}
	}
}

// Property: the enlarged element of α×β cells at the returned resolution is
// at least as large as the box on both axes (Lemma 3's upper bound l).
func TestResolutionForExtentCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const g = 20
	for iter := 0; iter < 1000; iter++ {
		w := rng.Float64()
		h := rng.Float64()
		alpha := 2 + rng.Intn(4)
		beta := 2 + rng.Intn(4)
		l := ResolutionForExtent(w, h, alpha, beta, g)
		if l == g {
			continue // clamped; nothing to verify
		}
		cw := CellWidth(l)
		if float64(alpha)*cw < w-1e-12 || float64(beta)*cw < h-1e-12 {
			t.Fatalf("iter %d: enlarged element %gx%g at l=%d smaller than box %gx%g",
				iter, float64(alpha)*cw, float64(beta)*cw, l, w, h)
		}
		// l is maximal: at l+1 the enlarged element no longer covers.
		cw2 := CellWidth(l + 1)
		if float64(alpha)*cw2 >= w && float64(beta)*cw2 >= h {
			t.Fatalf("iter %d: l=%d not maximal for box %gx%g (α=%d β=%d)", iter, l, w, h, alpha, beta)
		}
	}
}
