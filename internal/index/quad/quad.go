// Package quad implements the quad-tree sequence math shared by TMan's
// spatial indexes (XZ-ordering, XZ*, TShape).
//
// The unit square is recursively divided into four sub-cells. A cell at
// resolution r is identified either by its quadrant sequence q1..qr
// (qi ∈ {0,1,2,3}: 0 = lower-left, 1 = lower-right, 2 = upper-left,
// 3 = upper-right) or, equivalently, by grid coordinates (ix, iy) at
// resolution r where the cell spans [ix·w, (ix+1)·w) × [iy·w, (iy+1)·w)
// with w = 0.5^r.
//
// Sequences are mapped to integers by the XZ-ordering code (paper Eq. 2),
// which preserves lexicographic (depth-first) order:
//
//	code(q1..qr) = Σ_{i=1..r} ( qi · (4^{g-i+1}-1)/3 + 1 ) - 1
//
// where g is the maximum resolution. All elements prefixed by a sequence
// occupy the consecutive code interval [code, code+SubtreeSize(r)).
package quad

import "github.com/tman-db/tman/internal/geo"

// MaxResolution is the largest supported g. With g = 30 the maximum code is
// below 2^61, leaving room for composite encodings.
const MaxResolution = 30

// Cell identifies one quad-tree cell by grid coordinates at a resolution.
type Cell struct {
	IX, IY uint32
	R      int
}

// Rect returns the unit-square rectangle of the cell.
func (c Cell) Rect() geo.Rect {
	w := CellWidth(c.R)
	x := float64(c.IX) * w
	y := float64(c.IY) * w
	return geo.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
}

// Children returns the four sub-cells at resolution R+1 in quadrant order
// (lower-left, lower-right, upper-left, upper-right).
func (c Cell) Children() [4]Cell {
	bx, by := c.IX*2, c.IY*2
	return [4]Cell{
		{IX: bx, IY: by, R: c.R + 1},
		{IX: bx + 1, IY: by, R: c.R + 1},
		{IX: bx, IY: by + 1, R: c.R + 1},
		{IX: bx + 1, IY: by + 1, R: c.R + 1},
	}
}

// CellWidth returns the side length of cells at resolution r.
func CellWidth(r int) float64 {
	return 1 / float64(uint64(1)<<uint(r))
}

// CellAt returns the cell containing the point (x, y) at resolution r,
// clamping coordinates into [0, 1).
func CellAt(x, y float64, r int) Cell {
	n := uint64(1) << uint(r)
	ix := int64(x * float64(n))
	iy := int64(y * float64(n))
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	if ix >= int64(n) {
		ix = int64(n) - 1
	}
	if iy >= int64(n) {
		iy = int64(n) - 1
	}
	return Cell{IX: uint32(ix), IY: uint32(iy), R: r}
}

// Sequence returns the quadrant sequence q1..qr of the cell, derived from
// the interleaved bits of (IX, IY) most-significant first.
func (c Cell) Sequence() []byte {
	seq := make([]byte, c.R)
	for i := 0; i < c.R; i++ {
		shift := uint(c.R - 1 - i)
		xb := (c.IX >> shift) & 1
		yb := (c.IY >> shift) & 1
		seq[i] = byte(xb + 2*yb)
	}
	return seq
}

// CellFromSequence reconstructs a cell from its quadrant sequence.
func CellFromSequence(seq []byte) Cell {
	var ix, iy uint32
	for _, q := range seq {
		ix = ix<<1 | uint32(q&1)
		iy = iy<<1 | uint32(q>>1&1)
	}
	return Cell{IX: ix, IY: iy, R: len(seq)}
}

// quarterPow4[i] = (4^i - 1) / 3 = 0b0101..01 with i digits base 4.
var quarterPow4 [MaxResolution + 2]uint64

func init() {
	for i := 1; i < len(quarterPow4); i++ {
		quarterPow4[i] = quarterPow4[i-1]*4 + 1
	}
}

// Code computes the XZ-ordering code (Eq. 2) of the cell's sequence with
// maximum resolution g. The empty sequence (root, R = 0) has no code in the
// paper's scheme; Code panics for R == 0 or R > g.
func (c Cell) Code(g int) uint64 {
	if c.R < 1 || c.R > g {
		panic("quad: Code requires 1 <= R <= g")
	}
	var code uint64
	for i := 1; i <= c.R; i++ {
		shift := uint(c.R - i)
		q := uint64((c.IX>>shift)&1) + 2*uint64((c.IY>>shift)&1)
		code += q*quarterPow4[g-i+1] + 1
	}
	return code - 1
}

// SubtreeSize returns EN(E): the number of elements (cells) whose sequence
// is prefixed by a sequence of resolution r, itself included, up to g:
// Σ_{i=r..g} 4^{i-r}.
func SubtreeSize(r, g int) uint64 {
	if r > g {
		return 0
	}
	// Σ_{k=0..g-r} 4^k = (4^{g-r+1} - 1) / 3.
	return quarterPow4[g-r+1]
}

// MaxCode returns the largest code at maximum resolution g (the code of the
// all-3s sequence of length g).
func MaxCode(g int) uint64 {
	c := Cell{IX: 1<<uint(g) - 1, IY: 1<<uint(g) - 1, R: g}
	return c.Code(g)
}

// ExtCode extends Eq. 2 to the root: the root cell (R = 0) gets code 0 and
// every other cell gets Code+1. Depth-first consecutiveness is preserved:
// the subtree of a cell at resolution r occupies [ExtCode, ExtCode +
// ExtSubtreeSize(r, g)).
func ExtCode(c Cell, g int) uint64 {
	if c.R == 0 {
		return 0
	}
	return c.Code(g) + 1
}

// ExtSubtreeSize returns the number of extended codes in the subtree rooted
// at a cell of resolution r (itself included): Σ_{i=r..g} 4^{i-r}, with the
// root counting the entire code space.
func ExtSubtreeSize(r, g int) uint64 {
	if r > g {
		return 0
	}
	return quarterPow4[g-r+1]
}

// TotalExtCodes returns the size of the extended code space for maximum
// resolution g (root + all cells of resolutions 1..g).
func TotalExtCodes(g int) uint64 {
	return ExtSubtreeSize(0, g)
}

// ResolutionForExtent returns l = floor(log0.5(max(w/α, h/β))) — the
// candidate resolution at which a box of size w×h fits into an enlarged
// element of α×β cells (paper Lemma 3). The result is clamped to [0, g];
// resolution 0 anchors at the root cell.
func ResolutionForExtent(w, h float64, alpha, beta int, g int) int {
	m := w / float64(alpha)
	if hh := h / float64(beta); hh > m {
		m = hh
	}
	if m <= 0 {
		return g
	}
	l := 0
	// Largest l with 0.5^l >= m.
	for l < g && CellWidth(l+1) >= m {
		l++
	}
	return l
}
