// Package xz2 implements XZ-ordering (Böhm, Klump, Kriegel 1999): the
// space-filling curve for spatially extended objects used by GeoMesa,
// TrajMesa, JUST and VRE, and the spatial baseline TMan compares against.
//
// Every quad-tree cell is doubled in width and height to form an "enlarged
// element"; an object is represented by the code of the smallest enlarged
// element that covers its MBR. Queries enumerate enlarged elements that
// intersect the query window: fully contained subtrees collapse into one
// consecutive code interval, partially intersecting elements contribute
// their own code.
package xz2

import (
	"math"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
)

// Index is an XZ-ordering index over the unit square with maximum
// resolution G.
type Index struct {
	g int
}

// ValueRange is a closed interval [Lo, Hi] of candidate index values.
type ValueRange struct {
	Lo, Hi uint64
}

// New creates an XZ-ordering index with maximum resolution g in [1, 30].
func New(g int) *Index {
	if g < 1 || g > quad.MaxResolution {
		panic("xz2: resolution out of range")
	}
	return &Index{g: g}
}

// G returns the maximum resolution.
func (ix *Index) G() int { return ix.g }

// Anchor returns the cell whose enlarged element (the cell doubled right
// and up) is the smallest covering the normalized MBR r.
func (ix *Index) Anchor(r geo.Rect) quad.Cell {
	l := quad.ResolutionForExtent(r.Width(), r.Height(), 1, 1, ix.g)
	for ; l > 0; l-- {
		c := quad.CellAt(r.MinX, r.MinY, l)
		if Enlarged(c).Contains(r) {
			return c
		}
	}
	return quad.Cell{R: 0}
}

// Encode returns the XZ index value (extended code) for a normalized MBR.
func (ix *Index) Encode(r geo.Rect) uint64 {
	return quad.ExtCode(ix.Anchor(r), ix.g)
}

// Enlarged returns the enlarged element of a cell: the cell doubled in
// width and height (anchored at the cell's lower-left corner).
func Enlarged(c quad.Cell) geo.Rect {
	r := c.Rect()
	return geo.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MinX + 2*r.Width(), MaxY: r.MinY + 2*r.Height()}
}

// QueryRanges returns the sorted, disjoint closed intervals of index values
// whose enlarged elements intersect the normalized query window sr. Every
// object intersecting sr is indexed under one of these values (its enlarged
// element covers its MBR, and that element must intersect sr); objects not
// intersecting sr may still be returned and are refined by push-down.
func (ix *Index) QueryRanges(sr geo.Rect) []ValueRange {
	var out []ValueRange

	// Recursion cap, as in GeoMesa: once cells are much finer than the
	// window, partially-intersecting elements emit their whole subtree
	// interval (conservative; refined downstream) instead of recursing.
	stopLevel := ix.g
	if minSide := math.Min(sr.Width(), sr.Height()); minSide > 0 {
		for lvl := 1; lvl <= ix.g; lvl++ {
			if quad.CellWidth(lvl) < minSide/16 {
				stopLevel = lvl
				break
			}
		}
	}

	var visit func(c quad.Cell)
	visit = func(c quad.Cell) {
		e := Enlarged(c)
		switch {
		case sr.Contains(e):
			// Every enlarged element in the subtree lies inside sr (a
			// child's enlarged element is contained in its parent's): take
			// the whole consecutive code interval.
			lo := quad.ExtCode(c, ix.g)
			out = append(out, ValueRange{Lo: lo, Hi: lo + quad.ExtSubtreeSize(c.R, ix.g) - 1})
		case sr.Intersects(e):
			lo := quad.ExtCode(c, ix.g)
			if c.R >= stopLevel && c.R < ix.g {
				out = append(out, ValueRange{Lo: lo, Hi: lo + quad.ExtSubtreeSize(c.R, ix.g) - 1})
				return
			}
			out = append(out, ValueRange{Lo: lo, Hi: lo})
			if c.R < ix.g {
				for _, ch := range c.Children() {
					visit(ch)
				}
			}
		}
		// Disjoint: the whole subtree is pruned — children's enlarged
		// elements are contained in this one.
	}
	visit(quad.Cell{R: 0})
	return mergeRanges(out)
}

// mergeRanges sorts and coalesces adjacent/overlapping ranges. The visit
// order is already DFS (= code order), so a single linear pass suffices.
func mergeRanges(in []ValueRange) []ValueRange {
	if len(in) <= 1 {
		return in
	}
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CandidateValues sums the number of index values covered by ranges.
func CandidateValues(ranges []ValueRange) uint64 {
	var total uint64
	for _, r := range ranges {
		total += r.Hi - r.Lo + 1
	}
	return total
}
