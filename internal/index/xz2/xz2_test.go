package xz2

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
)

func TestAnchorCoversMBR(t *testing.T) {
	ix := New(16)
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 2000; iter++ {
		x := rng.Float64()
		y := rng.Float64()
		w := rng.Float64() * (1 - x) * 0.99
		h := rng.Float64() * (1 - y) * 0.99
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		a := ix.Anchor(r)
		if !Enlarged(a).Contains(r) {
			t.Fatalf("iter %d: enlarged element of anchor %v does not cover %v", iter, a, r)
		}
	}
}

func TestAnchorIsMaximalResolution(t *testing.T) {
	ix := New(16)
	// A tiny box away from cell boundaries should land at a deep resolution.
	r := geo.Rect{MinX: 0.3000001, MinY: 0.3000001, MaxX: 0.3000002, MaxY: 0.3000002}
	a := ix.Anchor(r)
	if a.R != 16 {
		t.Errorf("tiny box anchor resolution = %d, want 16", a.R)
	}
	// A box spanning nearly everything anchors at the root.
	big := geo.Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.99, MaxY: 0.99}
	if a := ix.Anchor(big); a.R != 0 {
		t.Errorf("huge box anchor resolution = %d, want 0", a.R)
	}
}

func TestEncodeDistinguishesRegions(t *testing.T) {
	ix := New(8)
	a := ix.Encode(geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.12, MaxY: 0.12})
	b := ix.Encode(geo.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.82, MaxY: 0.82})
	if a == b {
		t.Error("distant boxes should get different codes")
	}
}

// Core soundness property: for random objects and query windows, every
// object whose MBR intersects the query must have its index value covered
// by some query range (no false negatives).
func TestQueryRangesNoFalseNegatives(t *testing.T) {
	ix := New(10)
	rng := rand.New(rand.NewSource(43))
	covered := func(ranges []ValueRange, v uint64) bool {
		for _, r := range ranges {
			if r.Lo <= v && v <= r.Hi {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < 300; iter++ {
		qx, qy := rng.Float64()*0.9, rng.Float64()*0.9
		q := geo.Rect{MinX: qx, MinY: qy, MaxX: qx + rng.Float64()*0.1, MaxY: qy + rng.Float64()*0.1}
		ranges := ix.QueryRanges(q)
		for obj := 0; obj < 50; obj++ {
			ox, oy := rng.Float64()*0.95, rng.Float64()*0.95
			o := geo.Rect{MinX: ox, MinY: oy, MaxX: ox + rng.Float64()*0.05, MaxY: oy + rng.Float64()*0.05}
			if !o.Intersects(q) {
				continue
			}
			v := ix.Encode(o)
			if !covered(ranges, v) {
				t.Fatalf("iter %d: object %v intersects query %v but value %d not covered", iter, o, q, v)
			}
		}
	}
}

func TestQueryRangesSortedDisjoint(t *testing.T) {
	ix := New(12)
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 100; iter++ {
		qx, qy := rng.Float64()*0.8, rng.Float64()*0.8
		q := geo.Rect{MinX: qx, MinY: qy, MaxX: qx + rng.Float64()*0.2, MaxY: qy + rng.Float64()*0.2}
		ranges := ix.QueryRanges(q)
		for i, r := range ranges {
			if r.Lo > r.Hi {
				t.Fatalf("iter %d: inverted range %+v", iter, r)
			}
			if i > 0 && r.Lo <= ranges[i-1].Hi+1 {
				t.Fatalf("iter %d: ranges not disjoint/merged: %+v then %+v", iter, ranges[i-1], r)
			}
		}
	}
}

// Selectivity: a small query window should cover far fewer index values
// than the whole code space.
func TestQueryRangesAreSelective(t *testing.T) {
	ix := New(12)
	q := geo.Rect{MinX: 0.41, MinY: 0.41, MaxX: 0.43, MaxY: 0.43}
	got := CandidateValues(ix.QueryRanges(q))
	total := quad.TotalExtCodes(12)
	if got*20 > total {
		t.Errorf("small window covers %d of %d values; expected < 5%%", got, total)
	}
	// Full-space query covers everything.
	full := CandidateValues(ix.QueryRanges(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}))
	if full != total {
		t.Errorf("full-space query covers %d, want %d", full, total)
	}
}

func TestMergeRanges(t *testing.T) {
	in := []ValueRange{{1, 3}, {4, 6}, {8, 9}, {9, 12}, {20, 20}}
	got := mergeRanges(in)
	want := []ValueRange{{1, 6}, {8, 12}, {20, 20}}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := mergeRanges(nil); out != nil {
		t.Error("nil input should stay nil")
	}
}

func TestNewPanicsOnBadResolution(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}
