package tr_test

import (
	"fmt"

	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/model"
)

// A trajectory running from 09:30 to 11:15 with one-hour periods spans
// periods 9..11, so its bin is TB(9,11) and Eq. 1 gives 9*48 + 2.
func ExampleIndex_Encode() {
	ix := tr.MustNew(3600_000, 48) // 1-hour periods, N = 48

	nineThirty := int64(9*3600_000 + 30*60_000)
	elevenFifteen := int64(11*3600_000 + 15*60_000)
	v := ix.Encode(model.TimeRange{Start: nineThirty, End: elevenFifteen})

	i, j := ix.Decode(v)
	fmt.Printf("value=%d bin=TB(%d,%d)\n", v, i, j)
	// Output: value=434 bin=TB(9,11)
}

// Temporal range queries produce at most N candidate value intervals
// (Algorithm 1): one per possible earlier start period, plus one merged
// interval for bins starting inside the query.
func ExampleIndex_QueryRanges() {
	ix := tr.MustNew(3600_000, 4) // small N for a readable example

	q := model.TimeRange{Start: 10 * 3600_000, End: 11*3600_000 - 1} // period 10
	for _, r := range ix.QueryRanges(q) {
		lo1, lo2 := ix.Decode(r.Lo)
		hi1, hi2 := ix.Decode(r.Hi)
		fmt.Printf("[%d..%d] = TB(%d,%d)..TB(%d,%d)\n", r.Lo, r.Hi, lo1, lo2, hi1, hi2)
	}
	// Output:
	// [31..31] = TB(7,10)..TB(7,10)
	// [34..35] = TB(8,10)..TB(8,11)
	// [37..39] = TB(9,10)..TB(9,12)
	// [40..43] = TB(10,10)..TB(10,13)
}
