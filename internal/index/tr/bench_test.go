package tr

import (
	"testing"

	"github.com/tman-db/tman/internal/model"
)

func BenchmarkEncode(b *testing.B) {
	ix := MustNew(hour, 48)
	q := model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 90*60_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ix.Encode(q)
	}
}

func BenchmarkQueryRanges(b *testing.B) {
	ix := MustNew(hour, 48)
	q := model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 6*hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ix.QueryRanges(q)
	}
}
