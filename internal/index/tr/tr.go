// Package tr implements TMan's TR index (paper Section IV-A1): a static
// temporal-range index that maps the time range of a trajectory to a single
// integer without redundant storage.
//
// The timeline (anchored at the Unix epoch) is divided into adjacent,
// disjoint time periods of a fixed length. A trajectory whose time range
// starts in period i and ends in period j is represented by the time bin
// TB(i, j) — the run of (j-i+1) consecutive periods — and encoded as
//
//	TR(TB(i,j)) = i*N + (j - i)            (Eq. 1)
//
// where N bounds the number of periods a bin may span. The encoding is
// unique, adjacent bins get adjacent values (Lemmas 1-2), and temporal range
// queries reduce to at most N+1 closed value intervals (Lemma 5 /
// Algorithm 1).
package tr

import (
	"fmt"

	"github.com/tman-db/tman/internal/model"
)

// Index is a TR index configuration. The zero value is not usable; use New.
type Index struct {
	periodMillis int64
	n            int64
}

// ValueRange is a closed interval [Lo, Hi] of candidate index values.
type ValueRange struct {
	Lo, Hi uint64
}

// New creates a TR index with the given period length and maximum bin span
// N (the paper's default pairing is a 1-hour period with N = 48).
func New(periodMillis int64, n int) (*Index, error) {
	if periodMillis <= 0 {
		return nil, fmt.Errorf("tr: period must be positive, got %d", periodMillis)
	}
	if n <= 0 {
		return nil, fmt.Errorf("tr: N must be positive, got %d", n)
	}
	return &Index{periodMillis: periodMillis, n: int64(n)}, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(periodMillis int64, n int) *Index {
	ix, err := New(periodMillis, n)
	if err != nil {
		panic(err)
	}
	return ix
}

// PeriodMillis returns the period length in milliseconds.
func (ix *Index) PeriodMillis() int64 { return ix.periodMillis }

// N returns the maximum number of periods a time bin may span.
func (ix *Index) N() int { return int(ix.n) }

// Period returns the index of the time period containing t (milliseconds
// since the Unix epoch). Negative timestamps floor toward -inf so that the
// mapping stays monotone, but TMan datasets are all post-epoch.
func (ix *Index) Period(t int64) int64 {
	p := t / ix.periodMillis
	if t < 0 && t%ix.periodMillis != 0 {
		p--
	}
	return p
}

// PeriodStart returns the start timestamp of period p.
func (ix *Index) PeriodStart(p int64) int64 { return p * ix.periodMillis }

// Encode returns the TR index value for a time range per Eq. 1. Ranges
// longer than N periods are clamped to N periods (the paper assumes
// preprocessing bounds trajectory durations; clamping keeps the value legal
// and errs toward false positives, never false negatives, because queries
// compare the stored exact time range during push-down).
func (ix *Index) Encode(t model.TimeRange) uint64 {
	i := ix.Period(t.Start)
	j := ix.Period(t.End)
	if j < i {
		j = i
	}
	if j-i >= ix.n {
		j = i + ix.n - 1
	}
	return uint64(i*ix.n + (j - i))
}

// EncodeBin returns the value for an explicit bin TB(i, j); i <= j < i+N.
func (ix *Index) EncodeBin(i, j int64) uint64 {
	return uint64(i*ix.n + (j - i))
}

// Decode returns the (i, j) periods of the bin encoded by v.
func (ix *Index) Decode(v uint64) (i, j int64) {
	i = int64(v) / ix.n
	span := int64(v) % ix.n
	return i, i + span
}

// BinRange returns the timestamp interval covered by the bin encoded by v:
// [start of period i, end of period j).
func (ix *Index) BinRange(v uint64) model.TimeRange {
	i, j := ix.Decode(v)
	return model.TimeRange{Start: ix.PeriodStart(i), End: ix.PeriodStart(j+1) - 1}
}

// QueryRanges implements Algorithm 1: it returns the closed intervals of
// index values whose bins may intersect the query time range q. Per
// Lemma 5, bins starting in periods [i-N+1, i-1] contribute one interval
// each ([TR(k,i), TR(k,k+N-1)]), and bins starting in [i, j] collapse into
// the single interval [TR(i,i), TR(j,j+N-1)].
//
// The result is sorted and non-overlapping.
func (ix *Index) QueryRanges(q model.TimeRange) []ValueRange {
	if !q.Valid() {
		return nil
	}
	i := ix.Period(q.Start)
	j := ix.Period(q.End)
	out := make([]ValueRange, 0, ix.n)
	for k := i - ix.n + 1; k < i; k++ {
		if k < 0 {
			continue // nothing before the epoch anchor
		}
		out = append(out, ValueRange{
			Lo: ix.EncodeBin(k, i),
			Hi: ix.EncodeBin(k, k+ix.n-1),
		})
	}
	lo := int64(0)
	if i > 0 {
		lo = i
	}
	out = append(out, ValueRange{
		Lo: ix.EncodeBin(lo, lo),
		Hi: ix.EncodeBin(j, j+ix.n-1),
	})
	return out
}

// CandidateBins returns the total number of index values covered by the
// query ranges — the retrieval-count metric reported in the paper's
// Table I discussion.
func CandidateBins(ranges []ValueRange) uint64 {
	var total uint64
	for _, r := range ranges {
		total += r.Hi - r.Lo + 1
	}
	return total
}
