package tr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tman-db/tman/internal/model"
)

const hour = int64(3600_000)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 48); err == nil {
		t.Error("zero period should be rejected")
	}
	if _, err := New(hour, 0); err == nil {
		t.Error("zero N should be rejected")
	}
	if _, err := New(hour, 48); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestPeriodMath(t *testing.T) {
	ix := MustNew(hour, 48)
	if p := ix.Period(0); p != 0 {
		t.Errorf("Period(0) = %d", p)
	}
	if p := ix.Period(hour - 1); p != 0 {
		t.Errorf("Period(hour-1) = %d", p)
	}
	if p := ix.Period(hour); p != 1 {
		t.Errorf("Period(hour) = %d", p)
	}
	if s := ix.PeriodStart(5); s != 5*hour {
		t.Errorf("PeriodStart(5) = %d", s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ix := MustNew(hour, 48)
	f := func(rawI int64, span uint8) bool {
		i := rawI % 1_000_000
		if i < 0 {
			i = -i
		}
		j := i + int64(span%48)
		v := ix.EncodeBin(i, j)
		gi, gj := ix.Decode(v)
		return gi == i && gj == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Lemma 1: TR(TB(i,j)) + 1 == TR(TB(i,j+1)).
func TestLemma1AdjacentBinsSamePeriod(t *testing.T) {
	ix := MustNew(hour, 48)
	for i := int64(0); i < 100; i++ {
		for j := i; j < i+47; j++ {
			if ix.EncodeBin(i, j)+1 != ix.EncodeBin(i, j+1) {
				t.Fatalf("Lemma 1 violated at i=%d j=%d", i, j)
			}
		}
	}
}

// Lemma 2: TR(TB(i,i+N-1)) + 1 == TR(TB(i+1,i+1)) and the max interval
// between bins of adjacent periods is 2N-1.
func TestLemma2AdjacentPeriods(t *testing.T) {
	ix := MustNew(hour, 48)
	n := int64(48)
	for i := int64(0); i < 100; i++ {
		if ix.EncodeBin(i, i+n-1)+1 != ix.EncodeBin(i+1, i+1) {
			t.Fatalf("Lemma 2 contiguity violated at i=%d", i)
		}
		if ix.EncodeBin(i+1, i+1+n-1)-ix.EncodeBin(i, i) != uint64(2*n-1) {
			t.Fatalf("Lemma 2 max interval violated at i=%d", i)
		}
	}
}

// Uniqueness: distinct bins get distinct values.
func TestEncodingUniqueness(t *testing.T) {
	ix := MustNew(hour, 8)
	seen := map[uint64][2]int64{}
	for i := int64(0); i < 200; i++ {
		for j := i; j < i+8; j++ {
			v := ix.EncodeBin(i, j)
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %d assigned to both %v and (%d,%d)", v, prev, i, j)
			}
			seen[v] = [2]int64{i, j}
		}
	}
}

func TestEncodeClampsLongRanges(t *testing.T) {
	ix := MustNew(hour, 4)
	// 10-hour trajectory with N=4 gets clamped to 4 periods.
	v := ix.Encode(model.TimeRange{Start: 0, End: 10 * hour})
	i, j := ix.Decode(v)
	if i != 0 || j != 3 {
		t.Errorf("clamped bin = (%d,%d), want (0,3)", i, j)
	}
	// Inverted range degrades to a single period, not a panic.
	v = ix.Encode(model.TimeRange{Start: 5 * hour, End: 2 * hour})
	i, j = ix.Decode(v)
	if i != 5 || j != 5 {
		t.Errorf("inverted range bin = (%d,%d), want (5,5)", i, j)
	}
}

func TestBinRangeCoversEncodeInput(t *testing.T) {
	ix := MustNew(30*60_000, 16) // 30-minute periods
	f := func(startRaw int64, durRaw int64) bool {
		start := abs64(startRaw) % (1_000_000 * hour)
		// Keep durations within N-1 periods so clamping never kicks in:
		// a range of d <= 7h starting anywhere spans at most 15+1 = 16
		// 30-minute periods.
		dur := abs64(durRaw) % (7 * hour)
		q := model.TimeRange{Start: start, End: start + dur}
		v := ix.Encode(q)
		br := ix.BinRange(v)
		return br.Start <= q.Start && q.End <= br.End
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 5 / Algorithm 1 completeness: every bin that intersects the query
// is covered by some returned range, and (soundness) every covered bin
// actually can intersect the query.
func TestQueryRangesCompleteAndSound(t *testing.T) {
	ix := MustNew(hour, 8)
	rng := rand.New(rand.NewSource(21))
	n := int64(8)
	for iter := 0; iter < 300; iter++ {
		qs := rng.Int63n(2000) * hour / 2
		qe := qs + rng.Int63n(48*hour)
		q := model.TimeRange{Start: qs, End: qe}
		ranges := ix.QueryRanges(q)

		covered := func(v uint64) bool {
			for _, r := range ranges {
				if r.Lo <= v && v <= r.Hi {
					return true
				}
			}
			return false
		}

		qi := ix.Period(qs)
		qj := ix.Period(qe)
		// Exhaustively walk all bins near the query.
		for i := qi - 2*n; i <= qj+2*n; i++ {
			if i < 0 {
				continue
			}
			for j := i; j < i+n; j++ {
				v := ix.EncodeBin(i, j)
				binIntersects := i <= qj && j >= qi // bin periods [i,j] vs query periods [qi,qj]
				if binIntersects && !covered(v) {
					t.Fatalf("iter %d: bin (%d,%d) intersects query %v but not covered", iter, i, j, q)
				}
				if !binIntersects && covered(v) {
					// Allowed only for bins the interval must include for
					// contiguity: Algorithm 1's per-start-period intervals
					// are exact, so any covered non-intersecting bin is a
					// soundness bug.
					t.Fatalf("iter %d: bin (%d,%d) does not intersect query %v but is covered", iter, i, j, q)
				}
			}
		}
	}
}

func TestQueryRangesAreSortedDisjoint(t *testing.T) {
	ix := MustNew(hour, 48)
	q := model.TimeRange{Start: 100 * hour, End: 103 * hour}
	ranges := ix.QueryRanges(q)
	for i := 0; i < len(ranges); i++ {
		if ranges[i].Lo > ranges[i].Hi {
			t.Fatalf("range %d inverted: %+v", i, ranges[i])
		}
		if i > 0 && ranges[i].Lo <= ranges[i-1].Hi {
			t.Fatalf("ranges %d and %d overlap or are unsorted", i-1, i)
		}
	}
	if len(ranges) != 48 {
		// N-1 head intervals plus the merged tail interval.
		t.Errorf("expected N ranges for mid-timeline query, got %d", len(ranges))
	}
}

func TestQueryRangesInvalidQuery(t *testing.T) {
	ix := MustNew(hour, 48)
	if got := ix.QueryRanges(model.TimeRange{Start: 10, End: 5}); got != nil {
		t.Errorf("invalid query should return nil, got %v", got)
	}
}

// The paper's retrieval-count claim: with a 30-minute period, T=1488
// periods, N=8 and Q=2 periods, a query touches ~ (N*(N-1)/2 + Q*N) bins.
func TestCandidateBinsMatchesPaperFormula(t *testing.T) {
	ix := MustNew(30*60_000, 8)
	period := int64(30 * 60_000)
	q := model.TimeRange{Start: 1000 * period, End: 1002*period - 1} // Q = 2 periods exactly
	got := CandidateBins(ix.QueryRanges(q))
	// Head intervals: sum over k in [i-N+1, i-1] of (N - (i-k)) values =
	// N(N-1)/2. Tail: (j-i+1)*N = Q*N values.
	want := uint64(8*7/2 + 2*8)
	if got != want {
		t.Errorf("CandidateBins = %d, want %d", got, want)
	}
}

func TestEncodeMatchesPaperExample(t *testing.T) {
	// Figure 4's scheme: a range spanning periods i..j is the bin of
	// (j-i+1) periods starting at i.
	ix := MustNew(hour, 48)
	q := model.TimeRange{Start: 3*hour + 5, End: 6*hour + 10} // periods 3..6
	v := ix.Encode(q)
	if i, j := ix.Decode(v); i != 3 || j != 6 {
		t.Errorf("bin = (%d,%d), want (3,6)", i, j)
	}
	if v != uint64(3*48+3) {
		t.Errorf("Eq.1 value = %d, want %d", v, 3*48+3)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 1<<63 - 1
		}
		return -v
	}
	return v
}
