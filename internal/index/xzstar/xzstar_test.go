package xzstar

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

func unitSpace() *geo.Space {
	return geo.MustSpace(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func randomTraj(rng *rand.Rand, n int) *model.Trajectory {
	pts := make([]model.Point, n)
	x := rng.Float64()*0.8 + 0.1
	y := rng.Float64()*0.8 + 0.1
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.02
		y += (rng.Float64() - 0.5) * 0.02
		pts[i] = model.Point{X: clamp(x), Y: clamp(y), T: int64(i) * 1000}
	}
	return &model.Trajectory{OID: "o", TID: "t", Points: pts}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestEncodeHasNonEmptyMask(t *testing.T) {
	ix := MustNew(12, unitSpace())
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 200; i++ {
		tr := randomTraj(rng, 2+rng.Intn(20))
		v := ix.Encode(tr)
		if v&0xF == 0 {
			t.Fatalf("iter %d: sub-quad mask empty for value %d", i, v)
		}
	}
}

func TestQueryRangesNoFalseNegatives(t *testing.T) {
	ix := MustNew(10, unitSpace())
	rng := rand.New(rand.NewSource(103))
	type obj struct {
		tr *model.Trajectory
		v  uint64
	}
	var objs []obj
	for i := 0; i < 300; i++ {
		tr := randomTraj(rng, 2+rng.Intn(20))
		objs = append(objs, obj{tr: tr, v: ix.Encode(tr)})
	}
	for iter := 0; iter < 100; iter++ {
		qx, qy := rng.Float64()*0.9, rng.Float64()*0.9
		q := geo.Rect{MinX: qx, MinY: qy, MaxX: qx + rng.Float64()*0.1, MaxY: qy + rng.Float64()*0.1}
		ranges := ix.QueryRanges(q)
		for _, o := range objs {
			if !o.tr.IntersectsRect(q) {
				continue
			}
			found := false
			for _, r := range ranges {
				if r.Lo <= o.v && o.v <= r.Hi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: trajectory intersects query but value not covered", iter)
			}
		}
	}
}

func TestNewValidationAndInner(t *testing.T) {
	if _, err := New(40, unitSpace()); err == nil {
		t.Error("excessive resolution accepted")
	}
	ix := MustNew(8, unitSpace())
	if ix.Inner() == nil {
		t.Error("Inner should expose the TShape machinery")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad params should panic")
		}
	}()
	MustNew(0, unitSpace())
}
