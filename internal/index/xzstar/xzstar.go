// Package xzstar implements the XZ* index from TraSS (He et al., ICDE
// 2022): XZ-ordering extended with a 4-bit sub-quad combination code.
//
// An enlarged element is the anchor cell doubled in both directions — i.e.
// a 2×2 block of cells — and a trajectory is represented by the bitmask of
// the sub-quads it intersects. XZ* is exactly TShape with α = β = 2 and no
// per-element shape directory: all 15 non-empty combinations are statically
// known, so queries check each of them against the query window. TMan's
// TShape generalizes the block to α×β cells and adds the optimized shape
// encoding; this package provides the baseline for Fig. 16 and the
// similarity-search comparisons.
package xzstar

import (
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/model"
)

// Index is an XZ* index over a normalized space.
type Index struct {
	ts     *tshape.Index
	shapes staticShapes
}

// staticShapes serves the 15 possible sub-quad combinations for every
// element.
type staticShapes []tshape.Shape

// Shapes implements tshape.ShapeProvider.
func (s staticShapes) Shapes(uint64) []tshape.Shape { return s }

// New creates an XZ* index with maximum resolution g.
func New(g int, space *geo.Space) (*Index, error) {
	ts, err := tshape.New(tshape.Params{Alpha: 2, Beta: 2, G: g}, space)
	if err != nil {
		return nil, err
	}
	shapes := make(staticShapes, 0, 15)
	for bits := uint64(1); bits < 16; bits++ {
		shapes = append(shapes, tshape.Shape{Bits: bits, Code: bits})
	}
	return &Index{ts: ts, shapes: shapes}, nil
}

// MustNew is New that panics on error.
func MustNew(g int, space *geo.Space) *Index {
	ix, err := New(g, space)
	if err != nil {
		panic(err)
	}
	return ix
}

// Encode returns the XZ* index value of a trajectory: element code shifted
// by 4 bits, OR'ed with the sub-quad mask.
func (ix *Index) Encode(t *model.Trajectory) uint64 {
	elem, bits := ix.ts.EncodeRaw(t)
	return ix.ts.Pack(elem, bits)
}

// QueryRanges returns candidate index value intervals for a normalized
// spatial window.
func (ix *Index) QueryRanges(sr geo.Rect) []tshape.ValueRange {
	ranges, _ := ix.ts.QueryRanges(sr, ix.shapes)
	return ranges
}

// Inner exposes the underlying TShape machinery (anchor math, packing) for
// reuse by similarity baselines.
func (ix *Index) Inner() *tshape.Index { return ix.ts }
