// Package idt implements TMan's IDT index (paper Section IV-A3): the
// composite of an object identifier and the TR index value of a
// trajectory's time range,
//
//	IDT(T) = T.oid :: TR(TB(i,j))
//
// supporting ID-temporal queries ("all trajectories of courier X last
// Tuesday"). The oid component is 0x00-terminated so that byte order equals
// (oid, tr-value) order.
package idt

import (
	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/model"
)

// Key builds the IDT index component for an object and a TR index value.
func Key(oid string, trValue uint64) []byte {
	k := codec.AppendString(nil, oid)
	return codec.AppendUint64(k, trValue)
}

// Split decodes an IDT index component.
func Split(key []byte) (oid string, trValue uint64, err error) {
	oid, rest, err := codec.String(key)
	if err != nil {
		return "", 0, err
	}
	v, err := codec.Uint64(rest)
	if err != nil {
		return "", 0, err
	}
	return oid, v, nil
}

// ByteRange is a half-open [Start, End) range over index components.
type ByteRange struct {
	Start, End []byte
}

// QueryRanges combines an object id with TR candidate value ranges into
// byte ranges over IDT components.
func QueryRanges(oid string, ix *tr.Index, q model.TimeRange) []ByteRange {
	values := ix.QueryRanges(q)
	out := make([]ByteRange, 0, len(values))
	for _, vr := range values {
		out = append(out, ByteRange{
			Start: Key(oid, vr.Lo),
			End:   keyAfter(oid, vr.Hi),
		})
	}
	return out
}

// keyAfter returns the first component greater than every (oid, v) pair.
func keyAfter(oid string, hi uint64) []byte {
	if hi == ^uint64(0) {
		// Past the last value of this oid: bump the terminator.
		k := []byte(oid)
		return append(k, 0x01)
	}
	return Key(oid, hi+1)
}
