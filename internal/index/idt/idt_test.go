package idt

import (
	"bytes"
	"testing"

	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/model"
)

const hour = int64(3600_000)

func TestKeySplitRoundTrip(t *testing.T) {
	k := Key("courier-42", 12345)
	oid, v, err := Split(k)
	if err != nil || oid != "courier-42" || v != 12345 {
		t.Fatalf("Split = (%q,%d,%v)", oid, v, err)
	}
	if _, _, err := Split([]byte("no-terminator")); err == nil {
		t.Error("malformed key should error")
	}
}

func TestKeyOrdering(t *testing.T) {
	// Order by oid first, then TR value.
	if bytes.Compare(Key("a", 999), Key("b", 0)) >= 0 {
		t.Error("oid should dominate ordering")
	}
	if bytes.Compare(Key("a", 1), Key("a", 2)) >= 0 {
		t.Error("same oid: TR value should order")
	}
	// A shorter oid that is a prefix of a longer one sorts first.
	if bytes.Compare(Key("ab", 0), Key("abc", 0)) >= 0 {
		t.Error("prefix oid should sort before extension")
	}
}

func TestQueryRangesCoverEncodedKeys(t *testing.T) {
	ix := tr.MustNew(hour, 8)
	q := model.TimeRange{Start: 100 * hour, End: 102 * hour}
	ranges := QueryRanges("obj-7", ix, q)
	if len(ranges) == 0 {
		t.Fatal("no ranges generated")
	}
	// A trajectory of obj-7 overlapping q must fall inside some range.
	otr := model.TimeRange{Start: 101 * hour, End: 103 * hour}
	k := Key("obj-7", ix.Encode(otr))
	found := false
	for _, r := range ranges {
		if bytes.Compare(k, r.Start) >= 0 && bytes.Compare(k, r.End) < 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("overlapping trajectory key not covered by any range")
	}
	// A different object's key must never be covered.
	other := Key("obj-8", ix.Encode(otr))
	for _, r := range ranges {
		if bytes.Compare(other, r.Start) >= 0 && bytes.Compare(other, r.End) < 0 {
			t.Error("other object's key covered by oid-scoped range")
		}
	}
}

func TestKeyAfterMaxValue(t *testing.T) {
	end := keyAfter("zz", ^uint64(0))
	k := Key("zz", ^uint64(0))
	if bytes.Compare(k, end) >= 0 {
		t.Error("keyAfter(max) must sort after the max key")
	}
	next := Key("zza", 0)
	if bytes.Compare(end, next) > 0 {
		t.Error("keyAfter(max) must not cover other oids' keys")
	}
}
