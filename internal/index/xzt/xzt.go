// Package xzt implements TrajMesa's XZT temporal index — the baseline TMan
// compares TR against (paper Sections II-1 and VI-A2).
//
// Time is divided into long fixed periods (e.g. one week). Within a period,
// elements are formed by binary dichotomy: the element at level l with
// binary sequence b1..bl spans 1/2^l of the period. Each element is doubled
// in length to get an XElement; a time range is represented by the code of
// the smallest XElement that covers it. Codes order sequences depth-first
// (the 1-D analogue of XZ-ordering):
//
//	code(b1..bl) = Σ_{i=1..l} ( bi · (2^{g-i+1}-1) + 1 )
//
// extended with code 0 for the empty sequence (the whole period), and the
// full index value is periodIndex · codesPerPeriod + code.
package xzt

import (
	"fmt"

	"github.com/tman-db/tman/internal/model"
)

// Index is an XZT index.
type Index struct {
	periodMillis int64
	g            int // maximum dichotomy depth
	perPeriod    uint64
}

// ValueRange is a closed interval [Lo, Hi] of candidate index values.
type ValueRange struct {
	Lo, Hi uint64
}

// New creates an XZT index with the given period length (TrajMesa uses one
// to two weeks) and maximum dichotomy depth g in [1, 50].
func New(periodMillis int64, g int) (*Index, error) {
	if periodMillis <= 0 {
		return nil, fmt.Errorf("xzt: period must be positive, got %d", periodMillis)
	}
	if g < 1 || g > 50 {
		return nil, fmt.Errorf("xzt: g must be in [1,50], got %d", g)
	}
	return &Index{periodMillis: periodMillis, g: g, perPeriod: totalCodes(g)}, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(periodMillis int64, g int) *Index {
	ix, err := New(periodMillis, g)
	if err != nil {
		panic(err)
	}
	return ix
}

// PeriodMillis returns the period length.
func (ix *Index) PeriodMillis() int64 { return ix.periodMillis }

// G returns the maximum dichotomy depth.
func (ix *Index) G() int { return ix.g }

// CodesPerPeriod returns the size of the code space within one period.
func (ix *Index) CodesPerPeriod() uint64 { return ix.perPeriod }

// totalCodes returns 1 (empty sequence) + Σ_{l=1..g} 2^l = 2^{g+1} - 1.
func totalCodes(g int) uint64 {
	return 1<<(uint(g)+1) - 1
}

// subtreeSize returns the number of sequences prefixed by a sequence of
// length l (itself included): Σ_{i=l..g} 2^{i-l} = 2^{g-l+1} - 1.
func (ix *Index) subtreeSize(l int) uint64 {
	return 1<<(uint(ix.g-l)+1) - 1
}

// element identifies a dichotomy element inside one period.
type element struct {
	level int
	idx   int64 // position within the period at this level: [0, 2^level)
}

// interval returns the element's absolute [start, end) in milliseconds for
// period p.
func (ix *Index) interval(p int64, e element) (start, end int64) {
	w := ix.periodMillis >> uint(e.level)
	start = p*ix.periodMillis + e.idx*w
	return start, start + w
}

// xInterval returns the XElement interval: the element doubled in length.
func (ix *Index) xInterval(p int64, e element) (start, end int64) {
	s, en := ix.interval(p, e)
	return s, s + 2*(en-s)
}

// code computes the extended DFS code of an element (0 = whole period).
func (ix *Index) code(e element) uint64 {
	if e.level == 0 {
		return 0
	}
	var c uint64 = 1 // consume the empty-sequence code
	for i := 1; i <= e.level; i++ {
		bit := (e.idx >> uint(e.level-i)) & 1
		// Skipping a left subtree costs its whole size.
		if bit == 1 {
			c += ix.subtreeSize(i)
		}
		if i < e.level {
			c++ // descend into the child: its own code slot
		}
	}
	return c
}

// Period returns the period index containing t.
func (ix *Index) Period(t int64) int64 {
	p := t / ix.periodMillis
	if t < 0 && t%ix.periodMillis != 0 {
		p--
	}
	return p
}

// Encode returns the XZT index value of a time range: the smallest XElement
// covering it. Time ranges longer than the period are clamped to the
// whole-period element of the period containing the start time (TrajMesa
// assumes trajectory durations below the period length).
func (ix *Index) Encode(tr model.TimeRange) uint64 {
	p := ix.Period(tr.Start)
	length := tr.End - tr.Start
	if length < 0 {
		length = 0
	}
	// TrajMesa's XZT selects the level from the range length alone:
	// l = floor(log2(P / length)), whose element width w = P/2^l satisfies
	// w >= length so the doubled element always covers (element start <=
	// tr.Start implies start + 2w >= tr.Start + length + w >= tr.End).
	// It does NOT descend further even when a deeper element would cover a
	// range that happens to begin near an element start — the dichotomy
	// dead region TMan's TR index eliminates (paper Section II-1).
	level := 0
	for level < ix.g && ix.periodMillis>>(uint(level)+1) >= length {
		level++
	}
	elemAt := func(lv int) element {
		w := ix.periodMillis >> uint(lv)
		return element{level: lv, idx: (tr.Start - p*ix.periodMillis) / w}
	}
	covers := func(e element) bool {
		_, xe := ix.xInterval(p, e)
		return xe >= tr.End
	}
	// Back off while the level fails to cover (l-1 fallback; also handles
	// length > period).
	for level > 0 && !covers(elemAt(level)) {
		level--
	}
	return uint64(p)*ix.perPeriod + ix.code(elemAt(level))
}

// QueryRanges returns sorted, disjoint closed intervals of index values
// whose XElements intersect the query time range. XElements may extend one
// period past their own, so the walk starts one period early.
func (ix *Index) QueryRanges(q model.TimeRange) []ValueRange {
	if !q.Valid() {
		return nil
	}
	var out []ValueRange
	p0 := ix.Period(q.Start) - 1
	if p0 < 0 {
		p0 = 0
	}
	p1 := ix.Period(q.End)
	for p := p0; p <= p1; p++ {
		base := uint64(p) * ix.perPeriod
		var visit func(e element)
		visit = func(e element) {
			xs, xe := ix.xInterval(p, e)
			if xe <= q.Start || xs > q.End {
				return // disjoint: children's XElements are contained
			}
			if xs >= q.Start && xe <= q.End+1 {
				// Entire XElement inside the query: every descendant's
				// XElement is inside too — take the whole subtree interval.
				lo := base + ix.code(e)
				out = append(out, ValueRange{Lo: lo, Hi: lo + ix.subtreeSize(e.level) - 1})
				return
			}
			lo := base + ix.code(e)
			out = append(out, ValueRange{Lo: lo, Hi: lo})
			if e.level < ix.g {
				visit(element{level: e.level + 1, idx: e.idx * 2})
				visit(element{level: e.level + 1, idx: e.idx*2 + 1})
			}
		}
		visit(element{level: 0, idx: 0})
	}
	return mergeRanges(out)
}

func mergeRanges(in []ValueRange) []ValueRange {
	if len(in) <= 1 {
		return in
	}
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CandidateValues sums the number of index values covered by ranges.
func CandidateValues(ranges []ValueRange) uint64 {
	var total uint64
	for _, r := range ranges {
		total += r.Hi - r.Lo + 1
	}
	return total
}
