package xzt

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/model"
)

const (
	hour = int64(3600_000)
	week = 7 * 24 * hour
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero period should be rejected")
	}
	if _, err := New(week, 0); err == nil {
		t.Error("zero g should be rejected")
	}
	if _, err := New(week, 16); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// DFS code layout for g=2: "" 0, "0" 1, "00" 2, "01" 3, "1" 4, "10" 5, "11" 6.
func TestCodeDFSLayout(t *testing.T) {
	ix := MustNew(week, 2)
	cases := []struct {
		level int
		idx   int64
		want  uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{2, 0, 2},
		{2, 1, 3},
		{1, 1, 4},
		{2, 2, 5},
		{2, 3, 6},
	}
	for _, tc := range cases {
		if got := ix.code(element{level: tc.level, idx: tc.idx}); got != tc.want {
			t.Errorf("code(level=%d idx=%d) = %d, want %d", tc.level, tc.idx, got, tc.want)
		}
	}
	if ix.CodesPerPeriod() != 7 {
		t.Errorf("CodesPerPeriod = %d, want 7", ix.CodesPerPeriod())
	}
}

func TestEncodeChoosesSmallestCoveringXElement(t *testing.T) {
	ix := MustNew(week, 16)
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 2000; iter++ {
		start := rng.Int63n(100 * week)
		length := rng.Int63n(2 * 24 * hour) // up to 48h, typical trajectories
		tr := model.TimeRange{Start: start, End: start + length}
		v := ix.Encode(tr)
		p := int64(v / ix.perPeriod)
		code := v % ix.perPeriod
		e, ok := elementFromCode(ix, code)
		if !ok {
			t.Fatalf("iter %d: cannot invert code %d", iter, code)
		}
		xs, xe := ix.xInterval(p, e)
		if xs > tr.Start || xe < tr.End {
			t.Fatalf("iter %d: XElement [%d,%d) does not cover [%d,%d]", iter, xs, xe, tr.Start, tr.End)
		}
		// Level selection follows TrajMesa's rule: the formula level l =
		// floor(log2(P/len)) or a shallower fallback — never deeper.
		wantLevel := 0
		for wantLevel < ix.g && ix.periodMillis>>(uint(wantLevel)+1) >= length {
			wantLevel++
		}
		if e.level > wantLevel {
			t.Fatalf("iter %d: level %d deeper than formula level %d", iter, e.level, wantLevel)
		}
	}
}

// elementFromCode inverts the DFS numbering (test helper).
func elementFromCode(ix *Index, code uint64) (element, bool) {
	if code == 0 {
		return element{level: 0, idx: 0}, true
	}
	code--
	e := element{level: 0, idx: 0}
	for {
		e.level++
		e.idx *= 2
		sub := ix.subtreeSize(e.level)
		if code >= sub {
			code -= sub
			e.idx++
		}
		if code == 0 {
			return e, true
		}
		code--
		if e.level > ix.g {
			return element{}, false
		}
	}
}

// No false negatives: every time range intersecting the query has its value
// covered by a returned range.
func TestQueryRangesNoFalseNegatives(t *testing.T) {
	ix := MustNew(24*hour, 10) // one-day period to exercise cross-period cases
	rng := rand.New(rand.NewSource(89))
	covered := func(ranges []ValueRange, v uint64) bool {
		for _, r := range ranges {
			if r.Lo <= v && v <= r.Hi {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < 300; iter++ {
		qs := rng.Int63n(50 * 24 * hour)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(24*hour)}
		ranges := ix.QueryRanges(q)
		for obj := 0; obj < 50; obj++ {
			os := rng.Int63n(52 * 24 * hour)
			o := model.TimeRange{Start: os, End: os + rng.Int63n(20*hour)}
			if !o.Intersects(q) {
				continue
			}
			v := ix.Encode(o)
			if !covered(ranges, v) {
				t.Fatalf("iter %d: range %v intersects query %v but value %d not covered", iter, o, q, v)
			}
		}
	}
}

func TestQueryRangesSortedDisjoint(t *testing.T) {
	ix := MustNew(week, 12)
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 100; iter++ {
		qs := rng.Int63n(20 * week)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(3*24*hour)}
		ranges := ix.QueryRanges(q)
		for i, r := range ranges {
			if r.Lo > r.Hi {
				t.Fatalf("inverted range %+v", r)
			}
			if i > 0 && r.Lo <= ranges[i-1].Hi+1 {
				t.Fatalf("ranges not merged/sorted: %+v then %+v", ranges[i-1], r)
			}
		}
	}
}

func TestQueryRangesInvalidQuery(t *testing.T) {
	ix := MustNew(week, 12)
	if got := ix.QueryRanges(model.TimeRange{Start: 10, End: 5}); got != nil {
		t.Errorf("invalid query should return nil, got %v", got)
	}
}

// The structural weakness the paper exploits: XZT's dichotomy leaves up to
// half an XElement as dead region. A range slightly longer than the element
// width at level l+1 is assigned level l, whose XElement spans almost 4x
// the range length.
func TestDichotomyDeadRegion(t *testing.T) {
	ix := MustNew(week, 16)
	w := week / (1 << 8) // element width at level 8
	// Range of 1.01 x w: the formula picks level 7 (width 2w), whose
	// XElement spans 4w — nearly 75% dead region.
	tr := model.TimeRange{Start: 10 * week, End: 10*week + w + w/100}
	v := ix.Encode(tr)
	e, ok := elementFromCode(ix, v%ix.perPeriod)
	if !ok {
		t.Fatal("cannot invert code")
	}
	if e.level != 7 {
		t.Errorf("expected formula level 7, got %d", e.level)
	}
	xs, xe := ix.xInterval(10, e)
	span := xe - xs
	if span < 3*(tr.End-tr.Start) {
		t.Errorf("XElement span %d should dwarf range %d (dead region)", span, tr.End-tr.Start)
	}
	// A range of exactly w starting at an element boundary gets level 8
	// (width w, XElement 2w): the best case, still half dead.
	tr2 := model.TimeRange{Start: 10 * week, End: 10*week + w}
	v2 := ix.Encode(tr2)
	e2, _ := elementFromCode(ix, v2%ix.perPeriod)
	if e2.level != 8 {
		t.Errorf("exact-width range: expected level 8, got %d", e2.level)
	}
}
