// Package st implements TMan's ST index (paper Section IV-A4): the
// spatio-temporal composite
//
//	ST(T) = TR(TB(i,j)) :: TShape(code(E), s)
//
// — a 16-byte big-endian concatenation of the TR value and the TShape
// value, ordered first by time bin and then by spatial index value.
//
// Spatio-temporal range queries cross TR candidate intervals with TShape
// candidate intervals. Because the temporal component is the key prefix, a
// TShape interval constrains the key range only when the TR component is
// pinned to a single value; the window generator therefore enumerates TR
// values up to a budget and falls back to coarse per-interval windows when
// the cross product would explode (the store-side filter still refines).
package st

import (
	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/index/tshape"
)

// Key builds the 16-byte ST index component.
func Key(trValue, tshapeValue uint64) []byte {
	k := codec.AppendUint64(nil, trValue)
	return codec.AppendUint64(k, tshapeValue)
}

// Split decodes an ST index component.
func Split(key []byte) (trValue, tshapeValue uint64, err error) {
	trValue, err = codec.Uint64(key)
	if err != nil {
		return 0, 0, err
	}
	tshapeValue, err = codec.Uint64(key[8:])
	if err != nil {
		return 0, 0, err
	}
	return trValue, tshapeValue, nil
}

// ByteRange is a half-open [Start, End) range over index components.
type ByteRange struct {
	Start, End []byte
}

// DefaultWindowBudget bounds the number of generated query windows.
const DefaultWindowBudget = 4096

// QueryRanges crosses TR intervals with TShape intervals into byte ranges.
// budget <= 0 uses DefaultWindowBudget. When the exact cross product would
// exceed the budget, TR intervals are emitted as coarse windows spanning
// the full spatial code space (sound: refinement happens in push-down).
func QueryRanges(trRanges []tr.ValueRange, tsRanges []tshape.ValueRange, budget int) []ByteRange {
	if budget <= 0 {
		budget = DefaultWindowBudget
	}
	if len(trRanges) == 0 || len(tsRanges) == 0 {
		return nil
	}
	var trValues uint64
	for _, r := range trRanges {
		trValues += r.Hi - r.Lo + 1
	}
	exact := trValues * uint64(len(tsRanges))
	out := make([]ByteRange, 0, min64(exact, uint64(budget)))
	if exact <= uint64(budget) {
		for _, tv := range trRanges {
			for v := tv.Lo; ; v++ {
				for _, sv := range tsRanges {
					out = append(out, ByteRange{
						Start: Key(v, sv.Lo),
						End:   keyAfter(v, sv.Hi),
					})
				}
				if v == tv.Hi {
					break
				}
			}
		}
		return out
	}
	// Coarse fallback: one window per TR interval covering all spatial
	// values — equivalent to a pure temporal scan over those bins.
	for _, tv := range trRanges {
		out = append(out, ByteRange{
			Start: Key(tv.Lo, 0),
			End:   keyAfter(tv.Hi, ^uint64(0)),
		})
	}
	return out
}

func keyAfter(trValue, tshapeHi uint64) []byte {
	if tshapeHi == ^uint64(0) {
		if trValue == ^uint64(0) {
			// Sentinel past everything: 17 bytes of 0xFF sorts after any
			// 16-byte component.
			k := make([]byte, 17)
			for i := range k {
				k[i] = 0xFF
			}
			return k
		}
		return Key(trValue+1, 0)
	}
	return Key(trValue, tshapeHi+1)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
