package st

import (
	"bytes"
	"testing"

	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/index/tshape"
)

func TestKeySplitRoundTrip(t *testing.T) {
	k := Key(7, 99)
	tv, sv, err := Split(k)
	if err != nil || tv != 7 || sv != 99 {
		t.Fatalf("Split = (%d,%d,%v)", tv, sv, err)
	}
	if _, _, err := Split([]byte{1, 2, 3}); err == nil {
		t.Error("short key should error")
	}
}

func TestKeyOrdering(t *testing.T) {
	if bytes.Compare(Key(1, 999), Key(2, 0)) >= 0 {
		t.Error("TR value should dominate ordering")
	}
	if bytes.Compare(Key(5, 10), Key(5, 11)) >= 0 {
		t.Error("same TR: TShape value should order")
	}
}

func TestQueryRangesExactCrossProduct(t *testing.T) {
	trR := []tr.ValueRange{{Lo: 10, Hi: 11}}
	tsR := []tshape.ValueRange{{Lo: 100, Hi: 105}, {Lo: 200, Hi: 200}}
	got := QueryRanges(trR, tsR, 100)
	if len(got) != 2*2 {
		t.Fatalf("windows = %d, want 4", len(got))
	}
	contains := func(trV, tsV uint64) bool {
		k := Key(trV, tsV)
		for _, r := range got {
			if bytes.Compare(k, r.Start) >= 0 && bytes.Compare(k, r.End) < 0 {
				return true
			}
		}
		return false
	}
	for _, trV := range []uint64{10, 11} {
		for _, tsV := range []uint64{100, 103, 105, 200} {
			if !contains(trV, tsV) {
				t.Errorf("(%d,%d) not covered", trV, tsV)
			}
		}
	}
	if contains(10, 106) || contains(12, 100) || contains(9, 200) {
		t.Error("exact windows cover values outside the cross product")
	}
}

func TestQueryRangesBudgetFallback(t *testing.T) {
	trR := []tr.ValueRange{{Lo: 0, Hi: 999}}
	tsR := []tshape.ValueRange{{Lo: 1, Hi: 1}, {Lo: 5, Hi: 5}}
	got := QueryRanges(trR, tsR, 10)
	if len(got) != 1 {
		t.Fatalf("fallback windows = %d, want 1 per TR interval", len(got))
	}
	// The coarse window must still cover every exact pair.
	k := Key(500, 5)
	if bytes.Compare(k, got[0].Start) < 0 || bytes.Compare(k, got[0].End) >= 0 {
		t.Error("coarse window lost a pair")
	}
}

func TestQueryRangesEmptyInputs(t *testing.T) {
	if QueryRanges(nil, []tshape.ValueRange{{Lo: 1, Hi: 2}}, 0) != nil {
		t.Error("nil TR ranges should yield nil")
	}
	if QueryRanges([]tr.ValueRange{{Lo: 1, Hi: 2}}, nil, 0) != nil {
		t.Error("nil TShape ranges should yield nil")
	}
}

func TestKeyAfterSentinels(t *testing.T) {
	end := keyAfter(^uint64(0), ^uint64(0))
	k := Key(^uint64(0), ^uint64(0))
	if bytes.Compare(k, end) >= 0 {
		t.Error("ultimate sentinel must sort after the maximum key")
	}
	end2 := keyAfter(5, ^uint64(0))
	if !bytes.Equal(end2, Key(6, 0)) {
		t.Error("tshape overflow should carry into the TR component")
	}
}
