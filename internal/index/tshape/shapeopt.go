package tshape

import (
	"math/bits"
	"math/rand"
	"sort"
)

// Encoding selects how the used shapes of an enlarged element are assigned
// final codes (paper Section IV-A2(3)).
type Encoding int

const (
	// EncodingBitmap keeps raw bitmaps as codes (sorted numerically) — the
	// unoptimized control.
	EncodingBitmap Encoding = iota
	// EncodingGreedy orders shapes by nearest-neighbor Jaccard similarity.
	EncodingGreedy
	// EncodingGenetic refines an order with a genetic algorithm maximizing
	// cumulative adjacent similarity (the TSP formulation of Eq. 5).
	EncodingGenetic
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case EncodingBitmap:
		return "bitmap"
	case EncodingGreedy:
		return "greedy"
	case EncodingGenetic:
		return "genetic"
	default:
		return "unknown"
	}
}

// Jaccard returns the Jaccard similarity of two shape bitmaps (Eq. 4): the
// number of cells covered by both over the number covered by either. Two
// empty shapes have similarity 1.
func Jaccard(a, b uint64) float64 {
	union := bits.OnesCount64(a | b)
	if union == 0 {
		return 1
	}
	return float64(bits.OnesCount64(a&b)) / float64(union)
}

// CumulativeSimilarity returns Σ Jaccard(order[i], order[i+1]) — the TSP
// objective of Eq. 5.
func CumulativeSimilarity(order []uint64) float64 {
	var sum float64
	for i := 0; i+1 < len(order); i++ {
		sum += Jaccard(order[i], order[i+1])
	}
	return sum
}

// OptimizeOrder renumbers the used shapes of one enlarged element: it
// returns the shapes in their final-code order (final code = position).
// The input order is the "raw order" the paper's Figure 9/10 refer to.
// seed makes the genetic search deterministic.
func OptimizeOrder(shapes []uint64, enc Encoding, seed int64) []uint64 {
	out := make([]uint64, len(shapes))
	copy(out, shapes)
	if len(out) <= 2 {
		if enc == EncodingBitmap {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
		return out
	}
	switch enc {
	case EncodingBitmap:
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	case EncodingGreedy:
		return greedyOrder(out)
	case EncodingGenetic:
		return geneticOrder(out, seed)
	default:
		return out
	}
}

// greedyOrder implements the paper's greedy heuristic: starting from the
// first shape, repeatedly append the unvisited shape most similar to the
// current path end.
func greedyOrder(shapes []uint64) []uint64 {
	n := len(shapes)
	used := make([]bool, n)
	out := make([]uint64, 0, n)
	cur := 0
	used[0] = true
	out = append(out, shapes[0])
	for len(out) < n {
		best, bestSim := -1, -1.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if sim := Jaccard(shapes[cur], shapes[i]); sim > bestSim {
				best, bestSim = i, sim
			}
		}
		used[best] = true
		out = append(out, shapes[best])
		cur = best
	}
	return out
}

// Genetic algorithm parameters. Modest sizes keep per-element optimization
// cheap (elements rarely hold more than a few thousand shapes, and most
// hold fewer than ten — Fig. 16(a)).
const (
	gaPopulation  = 32
	gaGenerations = 60
	gaMutationP   = 0.2
	gaElite       = 2
	gaTournament  = 3
)

// geneticOrder maximizes cumulative adjacent similarity with a permutation
// GA: greedy-seeded population, tournament selection, order crossover (OX)
// and swap mutation, with elitism.
func geneticOrder(shapes []uint64, seed int64) []uint64 {
	n := len(shapes)
	rng := rand.New(rand.NewSource(seed))

	type individual struct {
		perm    []int
		fitness float64
	}
	fitnessOf := func(perm []int) float64 {
		var sum float64
		for i := 0; i+1 < n; i++ {
			sum += Jaccard(shapes[perm[i]], shapes[perm[i+1]])
		}
		return sum
	}

	// Seed population: one greedy solution, rest random permutations.
	greedy := greedyOrder(shapes)
	greedyPerm := permOf(shapes, greedy)
	pop := make([]individual, gaPopulation)
	pop[0] = individual{perm: greedyPerm, fitness: fitnessOf(greedyPerm)}
	for i := 1; i < gaPopulation; i++ {
		p := rng.Perm(n)
		pop[i] = individual{perm: p, fitness: fitnessOf(p)}
	}

	sortPop := func() {
		sort.Slice(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
	}
	sortPop()

	tournament := func() []int {
		best := rng.Intn(gaPopulation)
		for k := 1; k < gaTournament; k++ {
			c := rng.Intn(gaPopulation)
			if pop[c].fitness > pop[best].fitness {
				best = c
			}
		}
		return pop[best].perm
	}

	for gen := 0; gen < gaGenerations; gen++ {
		next := make([]individual, 0, gaPopulation)
		next = append(next, pop[:gaElite]...)
		for len(next) < gaPopulation {
			child := orderCrossover(tournament(), tournament(), rng)
			if rng.Float64() < gaMutationP {
				i, j := rng.Intn(n), rng.Intn(n)
				child[i], child[j] = child[j], child[i]
			}
			next = append(next, individual{perm: child, fitness: fitnessOf(child)})
		}
		pop = next
		sortPop()
	}

	best := pop[0].perm
	out := make([]uint64, n)
	for i, idx := range best {
		out[i] = shapes[idx]
	}
	return out
}

// orderCrossover implements OX: copy a random slice from parent a, fill the
// rest with parent b's order.
func orderCrossover(a, b []int, rng *rand.Rand) []int {
	n := len(a)
	lo := rng.Intn(n)
	hi := lo + rng.Intn(n-lo)
	child := make([]int, n)
	inSlice := make(map[int]bool, hi-lo+1)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		inSlice[a[i]] = true
	}
	pos := 0
	for _, v := range b {
		if inSlice[v] {
			continue
		}
		for pos >= lo && pos <= hi {
			pos++
		}
		child[pos] = v
		pos++
	}
	return child
}

// permOf maps an ordered shape slice back to indices into the original.
func permOf(original, ordered []uint64) []int {
	pos := make(map[uint64][]int, len(original))
	for i, s := range original {
		pos[s] = append(pos[s], i)
	}
	perm := make([]int, len(ordered))
	for i, s := range ordered {
		idxs := pos[s]
		perm[i] = idxs[0]
		pos[s] = idxs[1:]
	}
	return perm
}
