package tshape

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The paper's Figure 7/10 worked example: four shapes in a 3x3 element.
// s0 = 111100001, s1 = 011110001, s2 = 000010011, s3 = 010010011 (the
// tuples listed in Section IV-B(3)), written there most-significant bit
// first.
var paperShapes = []uint64{
	0b111100001,
	0b011110001,
	0b000010011,
	0b010010011,
}

func TestJaccardMatchesPaperFigure10(t *testing.T) {
	want := [4][4]float64{
		{1, 0.67, 0.14, 0.29},
		{0.67, 1, 0.33, 0.50},
		{0.14, 0.33, 1, 0.75},
		{0.29, 0.50, 0.75, 1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			got := Jaccard(paperShapes[i], paperShapes[j])
			if math.Abs(got-want[i][j]) > 0.005 {
				t.Errorf("Jaccard(s%d,s%d) = %.3f, want %.2f", i, j, got, want[i][j])
			}
		}
	}
}

func TestGreedyOrderMatchesPaperFigure10(t *testing.T) {
	got := OptimizeOrder(paperShapes, EncodingGreedy, 1)
	want := []uint64{paperShapes[0], paperShapes[1], paperShapes[3], paperShapes[2]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("greedy order[%d] = %09b, want %09b (paper order <s0,s1,s3,s2>)", i, got[i], want[i])
		}
	}
	sim := CumulativeSimilarity(got)
	if math.Abs(sim-1.92) > 0.01 {
		t.Errorf("greedy cumulative similarity = %.3f, want 1.92", sim)
	}
	raw := CumulativeSimilarity(paperShapes)
	if math.Abs(raw-1.75) > 0.01 {
		t.Errorf("raw cumulative similarity = %.3f, want 1.75", raw)
	}
}

func TestJaccardBasics(t *testing.T) {
	if Jaccard(0, 0) != 1 {
		t.Error("empty shapes should have similarity 1")
	}
	if Jaccard(0b101, 0b101) != 1 {
		t.Error("identical shapes should have similarity 1")
	}
	if Jaccard(0b1, 0b10) != 0 {
		t.Error("disjoint shapes should have similarity 0")
	}
	if got := Jaccard(0b11, 0b10); got != 0.5 {
		t.Errorf("Jaccard(11,10) = %g, want 0.5", got)
	}
}

func TestOptimizeOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, enc := range []Encoding{EncodingBitmap, EncodingGreedy, EncodingGenetic} {
		for iter := 0; iter < 20; iter++ {
			n := 1 + rng.Intn(40)
			shapes := make([]uint64, n)
			seen := map[uint64]bool{}
			for i := range shapes {
				for {
					s := rng.Uint64() & 0x1FF
					if !seen[s] {
						seen[s] = true
						shapes[i] = s
						break
					}
				}
			}
			got := OptimizeOrder(shapes, enc, int64(iter))
			if len(got) != n {
				t.Fatalf("%v: length %d != %d", enc, len(got), n)
			}
			a := append([]uint64(nil), shapes...)
			b := append([]uint64(nil), got...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: output is not a permutation of input", enc)
				}
			}
		}
	}
}

func TestGeneticAtLeastAsGoodAsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 10; iter++ {
		n := 5 + rng.Intn(30)
		shapes := make([]uint64, n)
		for i := range shapes {
			shapes[i] = rng.Uint64() & 0x1FFFFFF // 25-bit shapes
		}
		greedy := CumulativeSimilarity(OptimizeOrder(shapes, EncodingGreedy, 1))
		genetic := CumulativeSimilarity(OptimizeOrder(shapes, EncodingGenetic, 1))
		// The GA is seeded with the greedy solution and keeps elites, so it
		// can never be worse.
		if genetic < greedy-1e-9 {
			t.Errorf("iter %d: genetic %.4f < greedy %.4f", iter, genetic, greedy)
		}
	}
}

func TestGeneticDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	shapes := make([]uint64, 20)
	for i := range shapes {
		shapes[i] = rng.Uint64() & 0x1FF
	}
	a := OptimizeOrder(shapes, EncodingGenetic, 42)
	b := OptimizeOrder(shapes, EncodingGenetic, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("genetic order must be deterministic for a fixed seed")
		}
	}
}

func TestOptimizeOrderDegenerate(t *testing.T) {
	if got := OptimizeOrder(nil, EncodingGreedy, 1); len(got) != 0 {
		t.Error("empty input should return empty output")
	}
	one := OptimizeOrder([]uint64{7}, EncodingGenetic, 1)
	if len(one) != 1 || one[0] != 7 {
		t.Errorf("single shape = %v", one)
	}
	two := OptimizeOrder([]uint64{9, 3}, EncodingBitmap, 1)
	if two[0] != 3 || two[1] != 9 {
		t.Errorf("bitmap encoding should sort: %v", two)
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingBitmap.String() != "bitmap" || EncodingGreedy.String() != "greedy" ||
		EncodingGenetic.String() != "genetic" || Encoding(99).String() != "unknown" {
		t.Error("Encoding.String labels wrong")
	}
}
