package tshape

import (
	"math"
	"sort"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
)

// QueryStats reports the work done by one candidate-generation pass.
type QueryStats struct {
	ElementsVisited   int // enlarged elements checked by the BFS
	ElementsContained int // elements fully inside the query (subtree ranges)
	ShapesChecked     int // used shapes tested for intersection
	ShapesMatched     int // shapes that intersect the query
}

// QueryRanges implements the paper's Algorithm 2. It returns sorted,
// disjoint closed intervals of index values whose shapes may intersect the
// normalized query window sr:
//
//   - elements whose enlarged rectangle is contained in sr contribute their
//     entire subtree code interval (every trajectory there is inside sr);
//   - elements that merely intersect sr contribute only the index values of
//     used shapes (obtained from the ShapeProvider) whose covered cells
//     intersect sr;
//   - disjoint elements prune their whole subtree.
//
// With a nil provider, intersecting elements fall back to their full
// 2^(α·β) shape interval — the "no index cache" mode of Fig. 16(b).
func (ix *Index) QueryRanges(sr geo.Rect, provider ShapeProvider) ([]ValueRange, QueryStats) {
	var out []ValueRange
	var stats QueryStats

	// Recursion cap: once cells are much finer than the query window, the
	// boundary ring of partially-intersecting elements grows exponentially
	// while contributing almost no extra selectivity. Below stopLevel,
	// intersecting elements emit their whole (conservative) subtree range
	// and rely on push-down refinement — the same max-recursion guard
	// GeoMesa applies to XZ queries.
	stopLevel := ix.p.G
	if minSide := math.Min(sr.Width(), sr.Height()); minSide > 0 {
		for lvl := 1; lvl <= ix.p.G; lvl++ {
			if quad.CellWidth(lvl) < minSide/16 {
				stopLevel = lvl
				break
			}
		}
	}

	emitSubtree := func(c quad.Cell) {
		lo := quad.ExtCode(c, ix.p.G)
		min := ix.Pack(lo, 0)
		max := ix.Pack(lo+quad.ExtSubtreeSize(c.R, ix.p.G)-1, 1<<ix.bits-1)
		out = append(out, ValueRange{Lo: min, Hi: max})
	}

	// Breadth-first per the paper; level order does not change the result
	// set, but we keep it faithful to Algorithm 2's queue + LevelTerminator
	// structure.
	queue := []quad.Cell{{R: 0}}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		e := ix.ElementRect(c)
		stats.ElementsVisited++
		switch {
		case sr.Contains(e):
			stats.ElementsContained++
			emitSubtree(c)
		case sr.Intersects(e):
			if c.R >= stopLevel && c.R < ix.p.G {
				emitSubtree(c)
				continue
			}
			elemCode := quad.ExtCode(c, ix.p.G)
			if provider == nil {
				out = append(out, ValueRange{
					Lo: ix.Pack(elemCode, 0),
					Hi: ix.Pack(elemCode, 1<<ix.bits-1),
				})
			} else {
				for _, s := range provider.Shapes(elemCode) {
					stats.ShapesChecked++
					if ix.shapeIntersects(c, s.Bits, sr) {
						stats.ShapesMatched++
						v := ix.Pack(elemCode, s.Code)
						out = append(out, ValueRange{Lo: v, Hi: v})
					}
				}
			}
			if c.R < ix.p.G {
				ch := c.Children()
				queue = append(queue, ch[0], ch[1], ch[2], ch[3])
			}
		}
	}
	return normalizeRanges(out), stats
}

// shapeIntersects reports whether any covered cell of the shape bitmap
// intersects sr.
func (ix *Index) shapeIntersects(anchor quad.Cell, bits uint64, sr geo.Rect) bool {
	r := anchor.Rect()
	w := r.Width()
	for dy := 0; dy < ix.p.Beta; dy++ {
		rowBase := dy * ix.p.Alpha
		y := r.MinY + float64(dy)*w
		if y > sr.MaxY || y+w < sr.MinY {
			continue
		}
		for dx := 0; dx < ix.p.Alpha; dx++ {
			if bits&(1<<uint(rowBase+dx)) == 0 {
				continue
			}
			x := r.MinX + float64(dx)*w
			if x <= sr.MaxX && x+w >= sr.MinX {
				return true
			}
		}
	}
	return false
}

// normalizeRanges sorts and merges candidate ranges. BFS emits values out
// of global order (level by level), so a full sort is required, unlike the
// DFS-ordered XZ walk.
func normalizeRanges(in []ValueRange) []ValueRange {
	if len(in) <= 1 {
		return in
	}
	sortRanges(in)
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRanges(rs []ValueRange) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
}

// CandidateValues sums the number of index values covered by ranges.
func CandidateValues(ranges []ValueRange) uint64 {
	var total uint64
	for _, r := range ranges {
		total += r.Hi - r.Lo + 1
	}
	return total
}
