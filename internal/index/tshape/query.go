package tshape

import (
	"math"
	"sort"
	"sync"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
)

// QueryStats reports the work done by one candidate-generation pass.
type QueryStats struct {
	ElementsVisited   int // enlarged elements checked by the BFS
	ElementsContained int // elements fully inside the query (subtree ranges)
	ShapesChecked     int // used shapes tested for intersection
	ShapesMatched     int // shapes that intersect the query
}

// add folds another pass's counters in (used to merge parallel chunks).
func (s *QueryStats) add(o QueryStats) {
	s.ElementsVisited += o.ElementsVisited
	s.ElementsContained += o.ElementsContained
	s.ShapesChecked += o.ShapesChecked
	s.ShapesMatched += o.ShapesMatched
}

// QueryRanges implements the paper's Algorithm 2. It returns sorted,
// disjoint closed intervals of index values whose shapes may intersect the
// normalized query window sr:
//
//   - elements whose enlarged rectangle is contained in sr contribute their
//     entire subtree code interval (every trajectory there is inside sr);
//   - elements that merely intersect sr contribute only the index values of
//     used shapes (obtained from the ShapeProvider) whose covered cells
//     intersect sr;
//   - disjoint elements prune their whole subtree.
//
// With a nil provider, intersecting elements fall back to their full
// 2^(α·β) shape interval — the "no index cache" mode of Fig. 16(b).
func (ix *Index) QueryRanges(sr geo.Rect, provider ShapeProvider) ([]ValueRange, QueryStats) {
	return ix.QueryRangesParallel(sr, provider, 1)
}

// parallelFrontierMin is the BFS frontier size below which a level is
// processed inline: small levels are a few rectangle tests, not worth a
// goroutine handoff.
const parallelFrontierMin = 32

// QueryRangesParallel is QueryRanges with the per-level element checks
// fanned across up to workers goroutines. Large windows at fine resolutions
// produce boundary frontiers of thousands of elements, each paying a
// directory/cache lookup; those checks are independent, so the enumeration
// runs level-synchronously and splits each big frontier into contiguous
// chunks. Results are identical to the sequential walk: per-chunk outputs
// are merged in frontier order and the final normalizeRanges sort is
// order-insensitive. workers <= 1 (or a small frontier) keeps everything
// inline. The provider must be safe for concurrent use (the engine's
// IndexCache is).
func (ix *Index) QueryRangesParallel(sr geo.Rect, provider ShapeProvider, workers int) ([]ValueRange, QueryStats) {
	var out []ValueRange
	var stats QueryStats

	// Recursion cap: once cells are much finer than the query window, the
	// boundary ring of partially-intersecting elements grows exponentially
	// while contributing almost no extra selectivity. Below stopLevel,
	// intersecting elements emit their whole (conservative) subtree range
	// and rely on push-down refinement — the same max-recursion guard
	// GeoMesa applies to XZ queries.
	stopLevel := ix.p.G
	if minSide := math.Min(sr.Width(), sr.Height()); minSide > 0 {
		for lvl := 1; lvl <= ix.p.G; lvl++ {
			if quad.CellWidth(lvl) < minSide/16 {
				stopLevel = lvl
				break
			}
		}
	}

	// Level-synchronous BFS per the paper's Algorithm 2 (the frontier swap
	// is its LevelTerminator); level order does not change the result set.
	frontier := []quad.Cell{{R: 0}}
	for len(frontier) > 0 {
		if workers <= 1 || len(frontier) < parallelFrontierMin {
			res := ix.visitCells(frontier, sr, provider, stopLevel)
			out = append(out, res.out...)
			stats.add(res.stats)
			frontier = res.next
			continue
		}
		n := workers
		if max := (len(frontier) + parallelFrontierMin - 1) / parallelFrontierMin; n > max {
			n = max
		}
		chunks := make([]levelResult, n)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			lo := w * len(frontier) / n
			hi := (w + 1) * len(frontier) / n
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				chunks[w] = ix.visitCells(frontier[lo:hi], sr, provider, stopLevel)
			}(w, lo, hi)
		}
		wg.Wait()
		var next []quad.Cell
		for _, res := range chunks {
			out = append(out, res.out...)
			next = append(next, res.next...)
			stats.add(res.stats)
		}
		frontier = next
	}
	return normalizeRanges(out), stats
}

// levelResult is one chunk of a BFS level: emitted ranges, the next-level
// cells it produced, and the work counters.
type levelResult struct {
	out   []ValueRange
	next  []quad.Cell
	stats QueryStats
}

// visitCells runs the Algorithm 2 per-element classification over a slice
// of same-level cells, appending child cells for elements that still need
// refinement.
func (ix *Index) visitCells(cells []quad.Cell, sr geo.Rect, provider ShapeProvider, stopLevel int) levelResult {
	var res levelResult
	emitSubtree := func(c quad.Cell) {
		lo := quad.ExtCode(c, ix.p.G)
		min := ix.Pack(lo, 0)
		max := ix.Pack(lo+quad.ExtSubtreeSize(c.R, ix.p.G)-1, 1<<ix.bits-1)
		res.out = append(res.out, ValueRange{Lo: min, Hi: max})
	}
	for _, c := range cells {
		e := ix.ElementRect(c)
		res.stats.ElementsVisited++
		switch {
		case sr.Contains(e):
			res.stats.ElementsContained++
			emitSubtree(c)
		case sr.Intersects(e):
			if c.R >= stopLevel && c.R < ix.p.G {
				emitSubtree(c)
				continue
			}
			elemCode := quad.ExtCode(c, ix.p.G)
			if provider == nil {
				res.out = append(res.out, ValueRange{
					Lo: ix.Pack(elemCode, 0),
					Hi: ix.Pack(elemCode, 1<<ix.bits-1),
				})
			} else {
				for _, s := range provider.Shapes(elemCode) {
					res.stats.ShapesChecked++
					if ix.shapeIntersects(c, s.Bits, sr) {
						res.stats.ShapesMatched++
						v := ix.Pack(elemCode, s.Code)
						res.out = append(res.out, ValueRange{Lo: v, Hi: v})
					}
				}
			}
			if c.R < ix.p.G {
				ch := c.Children()
				res.next = append(res.next, ch[0], ch[1], ch[2], ch[3])
			}
		}
	}
	return res
}

// shapeIntersects reports whether any covered cell of the shape bitmap
// intersects sr.
func (ix *Index) shapeIntersects(anchor quad.Cell, bits uint64, sr geo.Rect) bool {
	r := anchor.Rect()
	w := r.Width()
	for dy := 0; dy < ix.p.Beta; dy++ {
		rowBase := dy * ix.p.Alpha
		y := r.MinY + float64(dy)*w
		if y > sr.MaxY || y+w < sr.MinY {
			continue
		}
		for dx := 0; dx < ix.p.Alpha; dx++ {
			if bits&(1<<uint(rowBase+dx)) == 0 {
				continue
			}
			x := r.MinX + float64(dx)*w
			if x <= sr.MaxX && x+w >= sr.MinX {
				return true
			}
		}
	}
	return false
}

// normalizeRanges sorts and merges candidate ranges. BFS emits values out
// of global order (level by level), so a full sort is required, unlike the
// DFS-ordered XZ walk.
func normalizeRanges(in []ValueRange) []ValueRange {
	if len(in) <= 1 {
		return in
	}
	sortRanges(in)
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRanges(rs []ValueRange) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
}

// CandidateValues sums the number of index values covered by ranges.
func CandidateValues(ranges []ValueRange) uint64 {
	var total uint64
	for _, r := range ranges {
		total += r.Hi - r.Lo + 1
	}
	return total
}
