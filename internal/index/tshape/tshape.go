// Package tshape implements TMan's TShape index (paper Section IV-A2):
// a spatial index that represents the irregular shape of a trajectory by
// the combination of cells it intersects inside an "enlarged element" of
// α×β quad-tree cells.
//
// An enlarged element is identified by the quadrant sequence of its
// lower-left (anchor) cell; the trajectory's shape inside the element is a
// bitmap of α·β bits (bit dy·α+dx set iff the trajectory intersects the
// cell at column dx, row dy). The index value packs both (Eq. 3):
//
//	TShape(code(E), s) = code(E) << (α·β) | s
//
// Because only a small fraction of the 2^(α·β) possible shapes occur in
// real data, shape codes can be renumbered per element ("final codes") so
// that spatially similar shapes receive adjacent values; package shapeopt
// computes such orders and the engine's index cache stores the mapping.
// Spatial range queries follow the paper's Algorithm 2.
package tshape

import (
	"fmt"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
	"github.com/tman-db/tman/internal/model"
)

// Params configures a TShape index.
type Params struct {
	Alpha, Beta int // enlarged element spans Alpha × Beta cells
	G           int // maximum quad-tree resolution
}

// Validate checks that the parameters fit the 64-bit index value layout:
// extended quadrant codes need at most 2G+2 bits, leaving α·β bits for the
// shape code.
func (p Params) Validate() error {
	if p.Alpha < 2 || p.Beta < 2 {
		return fmt.Errorf("tshape: alpha and beta must be >= 2, got %d x %d", p.Alpha, p.Beta)
	}
	if p.Alpha*p.Beta > 30 {
		return fmt.Errorf("tshape: alpha*beta must be <= 30, got %d", p.Alpha*p.Beta)
	}
	if p.G < 1 || p.G > quad.MaxResolution {
		return fmt.Errorf("tshape: G must be in [1,%d], got %d", quad.MaxResolution, p.G)
	}
	if 2*p.G+2+p.Alpha*p.Beta > 64 {
		return fmt.Errorf("tshape: 2G+2+alpha*beta = %d exceeds 64 bits", 2*p.G+2+p.Alpha*p.Beta)
	}
	return nil
}

// Index is a TShape index over the unit square.
type Index struct {
	p     Params
	bits  uint // shape code width = alpha*beta
	space *geo.Space
}

// ValueRange is a closed interval [Lo, Hi] of candidate index values.
type ValueRange struct {
	Lo, Hi uint64
}

// Shape is one used shape of an enlarged element: the raw cell bitmap and
// the (possibly optimized) final code stored in index values.
type Shape struct {
	Bits uint64 // raw α·β-bit cell bitmap
	Code uint64 // final code; equals Bits when no optimization is applied
}

// ShapeProvider supplies the used shapes of an enlarged element during
// query processing — TMan's index cache. A nil provider makes queries fall
// back to covering the full 2^(α·β) shape range of every intersecting
// element (the paper's "no index cache" ablation).
type ShapeProvider interface {
	Shapes(elemCode uint64) []Shape
}

// New creates a TShape index. space maps dataset coordinates to the unit
// square.
func New(p Params, space *geo.Space) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if space == nil {
		return nil, fmt.Errorf("tshape: nil space")
	}
	return &Index{p: p, bits: uint(p.Alpha * p.Beta), space: space}, nil
}

// MustNew is New that panics on error.
func MustNew(p Params, space *geo.Space) *Index {
	ix, err := New(p, space)
	if err != nil {
		panic(err)
	}
	return ix
}

// Params returns the index parameters.
func (ix *Index) Params() Params { return ix.p }

// Space returns the normalization space.
func (ix *Index) Space() *geo.Space { return ix.space }

// ShapeBitsWidth returns α·β, the number of bits in a shape code.
func (ix *Index) ShapeBitsWidth() uint { return ix.bits }

// ElementRect returns the unit-square rectangle spanned by the enlarged
// element anchored at cell c: α cells wide, β cells tall.
func (ix *Index) ElementRect(c quad.Cell) geo.Rect {
	r := c.Rect()
	w := r.Width()
	return geo.Rect{
		MinX: r.MinX, MinY: r.MinY,
		MaxX: r.MinX + float64(ix.p.Alpha)*w,
		MaxY: r.MinY + float64(ix.p.Beta)*w,
	}
}

// Anchor returns the anchor cell of the smallest enlarged element covering
// the normalized MBR r, per Lemmas 3 and 4: try l =
// floor(log0.5(max(w/α, h/β))); if the element anchored at the cell
// containing r's lower-left corner does not reach past r, drop to l-1.
func (ix *Index) Anchor(r geo.Rect) quad.Cell {
	l := quad.ResolutionForExtent(r.Width(), r.Height(), ix.p.Alpha, ix.p.Beta, ix.p.G)
	for ; l > 0; l-- {
		c := quad.CellAt(r.MinX, r.MinY, l)
		if er := ix.ElementRect(c); er.MaxX >= r.MaxX && er.MaxY >= r.MaxY {
			return c
		}
	}
	return quad.Cell{R: 0}
}

// ShapeBits computes the raw shape bitmap of a trajectory (already in
// dataset coordinates) inside the enlarged element anchored at c. Bit
// dy·α+dx is set iff the trajectory intersects the cell at (dx, dy).
func (ix *Index) ShapeBits(t *model.Trajectory, c quad.Cell) uint64 {
	anchor := c.Rect()
	w := anchor.Width()
	var bits uint64
	full := uint64(1)<<ix.bits - 1

	cellRect := func(dx, dy int) geo.Rect {
		x := anchor.MinX + float64(dx)*w
		y := anchor.MinY + float64(dy)*w
		return geo.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
	}

	if len(t.Points) == 1 {
		nx, ny := ix.space.Normalize(t.Points[0].X, t.Points[0].Y)
		for dy := 0; dy < ix.p.Beta; dy++ {
			for dx := 0; dx < ix.p.Alpha; dx++ {
				if cellRect(dx, dy).ContainsPoint(nx, ny) {
					bits |= 1 << uint(dy*ix.p.Alpha+dx)
				}
			}
		}
		return bits
	}

	px, py := ix.space.Normalize(t.Points[0].X, t.Points[0].Y)
	for i := 1; i < len(t.Points); i++ {
		nx, ny := ix.space.Normalize(t.Points[i].X, t.Points[i].Y)
		seg := geo.Segment{X1: px, Y1: py, X2: nx, Y2: ny}
		px, py = nx, ny
		sb := seg.Bounds()
		// Only test cells overlapping the segment's bounding box.
		dx0 := clampCell(int((sb.MinX-anchor.MinX)/w), ix.p.Alpha)
		dx1 := clampCell(int((sb.MaxX-anchor.MinX)/w), ix.p.Alpha)
		dy0 := clampCell(int((sb.MinY-anchor.MinY)/w), ix.p.Beta)
		dy1 := clampCell(int((sb.MaxY-anchor.MinY)/w), ix.p.Beta)
		for dy := dy0; dy <= dy1; dy++ {
			for dx := dx0; dx <= dx1; dx++ {
				bit := uint64(1) << uint(dy*ix.p.Alpha+dx)
				if bits&bit != 0 {
					continue
				}
				if seg.IntersectsRect(cellRect(dx, dy)) {
					bits |= bit
				}
			}
		}
		if bits == full {
			break
		}
	}
	return bits
}

// Pack builds the index value from an element's extended quadrant code and
// a shape code (Eq. 3).
func (ix *Index) Pack(elemCode, shapeCode uint64) uint64 {
	return elemCode<<ix.bits | shapeCode
}

// Unpack splits an index value into element code and shape code.
func (ix *Index) Unpack(v uint64) (elemCode, shapeCode uint64) {
	return v >> ix.bits, v & (1<<ix.bits - 1)
}

// EncodeRaw computes the (element code, raw shape bits) pair of a
// trajectory without shape-code optimization.
func (ix *Index) EncodeRaw(t *model.Trajectory) (elemCode, shapeBits uint64) {
	mbr := ix.space.NormalizeRect(t.MBR())
	c := ix.Anchor(mbr)
	return quad.ExtCode(c, ix.p.G), ix.ShapeBits(t, c)
}

// AnchorFromExtCode reconstructs the anchor cell of an element code by
// walking the extended DFS numbering.
func (ix *Index) AnchorFromExtCode(code uint64) quad.Cell {
	c := quad.Cell{R: 0}
	if code == 0 {
		return c
	}
	code-- // consume the root
	for {
		// Each child subtree has ExtSubtreeSize(c.R+1, G) codes.
		sub := quad.ExtSubtreeSize(c.R+1, ix.p.G)
		childIdx := code / sub
		c = c.Children()[childIdx]
		code %= sub
		if code == 0 {
			return c
		}
		code--
	}
}

func clampCell(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
