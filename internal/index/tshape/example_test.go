package tshape_test

import (
	"fmt"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/model"
)

// A short trajectory in the unit square is represented by its enlarged
// element (the quadrant code of the anchor cell) and the bitmap of the
// 3x3 cells it crosses.
func ExampleIndex_EncodeRaw() {
	space := geo.MustSpace(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	ix := tshape.MustNew(tshape.Params{Alpha: 3, Beta: 3, G: 8}, space)

	// An L-shaped trip: right along the bottom cells, then up.
	trip := &model.Trajectory{OID: "o", TID: "t", Points: []model.Point{
		{X: 0.05, Y: 0.05, T: 0},
		{X: 0.30, Y: 0.05, T: 60_000},
		{X: 0.30, Y: 0.30, T: 120_000},
	}}
	elem, bits := ix.EncodeRaw(trip)
	fmt.Printf("element=%d shape=%09b value=%d\n", elem, bits, ix.Pack(elem, bits))
	// Output: element=3 shape=100100111 value=1831
}

// The paper's Figure 10 worked example: greedy ordering of four shapes by
// Jaccard similarity improves the cumulative adjacency score from 1.75
// (raw order) to 1.92.
func ExampleOptimizeOrder() {
	shapes := []uint64{
		0b111100001, // s0
		0b011110001, // s1
		0b000010011, // s2
		0b010010011, // s3
	}
	fmt.Printf("raw order:    %.2f\n", tshape.CumulativeSimilarity(shapes))
	ordered := tshape.OptimizeOrder(shapes, tshape.EncodingGreedy, 1)
	fmt.Printf("greedy order: %.2f\n", tshape.CumulativeSimilarity(ordered))
	// Output:
	// raw order:    1.75
	// greedy order: 1.92
}
