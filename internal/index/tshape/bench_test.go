package tshape

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	space := geo.MustSpace(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	ix, err := New(Params{Alpha: 3, Beta: 3, G: 16}, space)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func benchTraj(n int) *model.Trajectory {
	rng := rand.New(rand.NewSource(1))
	pts := make([]model.Point, n)
	x, y := 0.4, 0.4
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.002
		y += (rng.Float64() - 0.5) * 0.002
		pts[i] = model.Point{X: x, Y: y, T: int64(i) * 1000}
	}
	return &model.Trajectory{OID: "o", TID: "t", Points: pts}
}

func BenchmarkEncodeRaw(b *testing.B) {
	ix := benchIndex(b)
	tr := benchTraj(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = ix.EncodeRaw(tr)
	}
}

func BenchmarkQueryRangesWithProvider(b *testing.B) {
	ix := benchIndex(b)
	rng := rand.New(rand.NewSource(2))
	provider := memProvider{}
	for i := 0; i < 2000; i++ {
		tr := randomTraj(rng, 2+rng.Intn(30), 0.01)
		elem, bits := ix.EncodeRaw(tr)
		provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
	}
	q := geo.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.42, MaxY: 0.42}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = ix.QueryRanges(q, provider)
	}
}

func BenchmarkOptimizeOrderGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	shapes := make([]uint64, 64)
	for i := range shapes {
		shapes[i] = rng.Uint64() & 0x1FF
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = OptimizeOrder(shapes, EncodingGreedy, 1)
	}
}

func BenchmarkOptimizeOrderGenetic(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	shapes := make([]uint64, 64)
	for i := range shapes {
		shapes[i] = rng.Uint64() & 0x1FF
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = OptimizeOrder(shapes, EncodingGenetic, 1)
	}
}
