package tshape

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// The recursion cap (stopLevel) kicks in for windows much larger than the
// finest cells. It must never lose a result — only add conservative
// candidates. Exercise it with large windows against brute force.
func TestQueryRangesLargeWindowsNoFalseNegatives(t *testing.T) {
	ix := newIndex(t, 3, 3, 14)
	rng := rand.New(rand.NewSource(307))
	type indexed struct {
		tr *model.Trajectory
		v  uint64
	}
	provider := memProvider{}
	var objs []indexed
	for i := 0; i < 400; i++ {
		tr := randomTraj(rng, 2+rng.Intn(20), 0.01)
		elem, bits := ix.EncodeRaw(tr)
		objs = append(objs, indexed{tr: tr, v: ix.Pack(elem, bits)})
		provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
	}
	// Window sizes from "covers half the space" down to a few cells.
	for _, side := range []float64{0.9, 0.5, 0.25, 0.1} {
		for iter := 0; iter < 20; iter++ {
			x := rng.Float64() * (1 - side)
			y := rng.Float64() * (1 - side)
			q := geo.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
			ranges, stats := ix.QueryRanges(q, provider)
			for _, o := range objs {
				if !o.tr.IntersectsRect(q) {
					continue
				}
				if !coveredBy(ranges, o.v) {
					t.Fatalf("side %g iter %d: intersecting trajectory lost", side, iter)
				}
			}
			// The cap must bound BFS growth: visiting the full tree to
			// depth 14 would be ~4^14 elements; the cap keeps it far below.
			if stats.ElementsVisited > 200_000 {
				t.Fatalf("side %g: %d elements visited; recursion cap ineffective", side, stats.ElementsVisited)
			}
		}
	}
}

// Full-space query must cover every possible packed value.
func TestQueryRangesFullSpaceCoversAll(t *testing.T) {
	ix := newIndex(t, 2, 2, 8)
	full := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	ranges, _ := ix.QueryRanges(full, nil)
	rng := rand.New(rand.NewSource(311))
	for i := 0; i < 500; i++ {
		tr := randomTraj(rng, 2+rng.Intn(10), 0.05)
		elem, bits := ix.EncodeRaw(tr)
		if !coveredBy(ranges, ix.Pack(elem, bits)) {
			t.Fatalf("full-space query missed a value")
		}
	}
}

// Degenerate (point) query windows still work.
func TestQueryRangesPointWindow(t *testing.T) {
	ix := newIndex(t, 3, 3, 10)
	provider := memProvider{}
	tr := mkTraj([2]float64{0.31, 0.44}, [2]float64{0.33, 0.46})
	elem, bits := ix.EncodeRaw(tr)
	provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
	q := geo.Rect{MinX: 0.32, MinY: 0.45, MaxX: 0.32, MaxY: 0.45}
	ranges, _ := ix.QueryRanges(q, provider)
	if tr.IntersectsRect(q) && !coveredBy(ranges, ix.Pack(elem, bits)) {
		t.Fatal("point window lost an intersecting trajectory")
	}
}

// Parallel enumeration must produce exactly the sequential ranges and
// stats for every window size, with and without a provider.
func TestQueryRangesParallelMatchesSequential(t *testing.T) {
	ix := newIndex(t, 3, 3, 14)
	rng := rand.New(rand.NewSource(419))
	provider := memProvider{}
	for i := 0; i < 300; i++ {
		tr := randomTraj(rng, 2+rng.Intn(20), 0.01)
		elem, bits := ix.EncodeRaw(tr)
		provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
	}
	for _, side := range []float64{0.9, 0.4, 0.1, 0.02} {
		for iter := 0; iter < 10; iter++ {
			x := rng.Float64() * (1 - side)
			y := rng.Float64() * (1 - side)
			q := geo.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
			for _, p := range []ShapeProvider{nil, provider} {
				seqR, seqS := ix.QueryRangesParallel(q, p, 1)
				for _, workers := range []int{2, 8} {
					parR, parS := ix.QueryRangesParallel(q, p, workers)
					if parS != seqS {
						t.Fatalf("side %g workers %d: stats %+v != sequential %+v", side, workers, parS, seqS)
					}
					if len(parR) != len(seqR) {
						t.Fatalf("side %g workers %d: %d ranges != sequential %d", side, workers, len(parR), len(seqR))
					}
					for i := range seqR {
						if parR[i] != seqR[i] {
							t.Fatalf("side %g workers %d: range %d = %+v != %+v", side, workers, i, parR[i], seqR[i])
						}
					}
				}
			}
		}
	}
}

func TestNormalizeRangesMergesBFSOutput(t *testing.T) {
	in := []ValueRange{{Lo: 50, Hi: 60}, {Lo: 10, Hi: 20}, {Lo: 21, Hi: 30}, {Lo: 55, Hi: 70}}
	out := normalizeRanges(in)
	want := []ValueRange{{Lo: 10, Hi: 30}, {Lo: 50, Hi: 70}}
	if len(out) != len(want) {
		t.Fatalf("normalizeRanges = %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("range %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}
