package tshape

import (
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
	"github.com/tman-db/tman/internal/model"
)

func unitSpace(t *testing.T) *geo.Space {
	t.Helper()
	return geo.MustSpace(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

func newIndex(t *testing.T, alpha, beta, g int) *Index {
	t.Helper()
	ix, err := New(Params{Alpha: alpha, Beta: beta, G: g}, unitSpace(t))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Alpha: 3, Beta: 3, G: 16}, true},
		{Params{Alpha: 5, Beta: 5, G: 16}, true},
		{Params{Alpha: 1, Beta: 3, G: 16}, false},
		{Params{Alpha: 6, Beta: 6, G: 16}, false}, // 36 bits > 30
		{Params{Alpha: 5, Beta: 5, G: 0}, false},
		{Params{Alpha: 5, Beta: 5, G: 20}, false}, // 2*20+2+25 = 67 > 64
		{Params{Alpha: 2, Beta: 2, G: 28}, true},  // 58+4 = 62
	}
	for i, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d (%+v): err = %v", i, tc.p, err)
		}
	}
}

func TestAnchorElementCoversMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, ab := range [][2]int{{2, 2}, {3, 3}, {3, 4}, {5, 5}} {
		ix := newIndex(t, ab[0], ab[1], 16)
		for iter := 0; iter < 1000; iter++ {
			x := rng.Float64() * 0.95
			y := rng.Float64() * 0.95
			r := geo.Rect{
				MinX: x, MinY: y,
				MaxX: x + rng.Float64()*(1-x),
				MaxY: y + rng.Float64()*(1-y),
			}
			a := ix.Anchor(r)
			er := ix.ElementRect(a)
			if !(er.MinX <= r.MinX && er.MinY <= r.MinY && er.MaxX >= r.MaxX-1e-12 && er.MaxY >= r.MaxY-1e-12) {
				t.Fatalf("α=%d β=%d iter %d: element %v does not cover %v (anchor %+v)",
					ab[0], ab[1], iter, er, r, a)
			}
		}
	}
}

// Lemma 3/4: the chosen resolution is l or l-1 where l comes from the
// extent formula.
func TestAnchorResolutionIsLemma3(t *testing.T) {
	ix := newIndex(t, 3, 3, 16)
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 1000; iter++ {
		x := rng.Float64() * 0.9
		y := rng.Float64() * 0.9
		r := geo.Rect{
			MinX: x, MinY: y,
			MaxX: x + rng.Float64()*(1-x)*0.8,
			MaxY: y + rng.Float64()*(1-y)*0.8,
		}
		l := quad.ResolutionForExtent(r.Width(), r.Height(), 3, 3, 16)
		a := ix.Anchor(r)
		if a.R != l && a.R != l-1 {
			t.Fatalf("iter %d: anchor resolution %d, want %d or %d (mbr %v)", iter, a.R, l, l-1, r)
		}
	}
}

func mkTraj(pts ...[2]float64) *model.Trajectory {
	t := &model.Trajectory{OID: "o", TID: "t"}
	for i, p := range pts {
		t.Points = append(t.Points, model.Point{X: p[0], Y: p[1], T: int64(i) * 1000})
	}
	return t
}

func TestShapeBitsSimpleDiagonal(t *testing.T) {
	ix := newIndex(t, 2, 2, 8)
	// Anchor at cell (0,0) resolution 1: element covers the whole unit
	// square as 2x2 cells of width 0.5. A diagonal crosses lower-left and
	// upper-right (and touches the shared corner cells).
	anchor := quad.Cell{IX: 0, IY: 0, R: 1}
	tr := mkTraj([2]float64{0.1, 0.1}, [2]float64{0.9, 0.9})
	bits := ix.ShapeBits(tr, anchor)
	// Cells: bit0 = (0,0), bit1 = (1,0), bit2 = (0,1), bit3 = (1,1).
	if bits&(1<<0) == 0 || bits&(1<<3) == 0 {
		t.Errorf("diagonal must cover corner cells, bits = %04b", bits)
	}
	// An L-shaped trajectory hugging the bottom and right edges must NOT
	// cover the upper-left cell.
	lshape := mkTraj([2]float64{0.1, 0.1}, [2]float64{0.9, 0.1}, [2]float64{0.9, 0.9})
	bits = ix.ShapeBits(lshape, anchor)
	if bits&(1<<2) != 0 {
		t.Errorf("L-shape must not cover upper-left cell, bits = %04b", bits)
	}
	if bits&(1<<0) == 0 || bits&(1<<1) == 0 || bits&(1<<3) == 0 {
		t.Errorf("L-shape must cover the three cells it passes, bits = %04b", bits)
	}
}

func TestShapeBitsSinglePoint(t *testing.T) {
	ix := newIndex(t, 3, 3, 8)
	anchor := quad.Cell{IX: 0, IY: 0, R: 2} // cells of width 0.25, element 0.75x0.75
	tr := mkTraj([2]float64{0.3, 0.55})     // cell (1, 2) of the element
	bits := ix.ShapeBits(tr, anchor)
	wantBit := uint(2*3 + 1)
	if bits&(1<<wantBit) == 0 {
		t.Errorf("point should set bit %d, bits = %09b", wantBit, bits)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	ix := newIndex(t, 3, 3, 16)
	for _, elem := range []uint64{0, 1, 12345, 1 << 30} {
		for _, shape := range []uint64{0, 1, 0x1FF} {
			v := ix.Pack(elem, shape)
			ge, gs := ix.Unpack(v)
			if ge != elem || gs != shape {
				t.Fatalf("Pack/Unpack(%d,%d) = (%d,%d)", elem, shape, ge, gs)
			}
		}
	}
}

func TestAnchorFromExtCodeRoundTrip(t *testing.T) {
	ix := newIndex(t, 3, 3, 10)
	rng := rand.New(rand.NewSource(57))
	for iter := 0; iter < 2000; iter++ {
		r := rng.Intn(11)
		var c quad.Cell
		if r == 0 {
			c = quad.Cell{R: 0}
		} else {
			c = quad.Cell{IX: uint32(rng.Intn(1 << r)), IY: uint32(rng.Intn(1 << r)), R: r}
		}
		code := quad.ExtCode(c, 10)
		back := ix.AnchorFromExtCode(code)
		if back != c {
			t.Fatalf("iter %d: code %d: %+v -> %+v", iter, code, c, back)
		}
	}
}

func TestEncodeRawStableAndInElement(t *testing.T) {
	ix := newIndex(t, 3, 3, 12)
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 200; iter++ {
		tr := randomTraj(rng, 2+rng.Intn(50), 0.05)
		elem, bits := ix.EncodeRaw(tr)
		if bits == 0 {
			t.Fatalf("iter %d: trajectory inside element must cover >= 1 cell", iter)
		}
		// Re-encode must be deterministic.
		e2, b2 := ix.EncodeRaw(tr)
		if e2 != elem || b2 != bits {
			t.Fatalf("iter %d: non-deterministic encode", iter)
		}
		// The anchor reconstructed from the code must cover the MBR.
		anchor := ix.AnchorFromExtCode(elem)
		er := ix.ElementRect(anchor)
		mbr := ix.space.NormalizeRect(tr.MBR())
		if !(er.MinX <= mbr.MinX+1e-12 && er.MaxX >= mbr.MaxX-1e-12) {
			t.Fatalf("iter %d: element %v does not cover mbr %v", iter, er, mbr)
		}
	}
}

func randomTraj(rng *rand.Rand, n int, step float64) *model.Trajectory {
	pts := make([]model.Point, n)
	x := rng.Float64()*0.8 + 0.1
	y := rng.Float64()*0.8 + 0.1
	for i := range pts {
		x += (rng.Float64() - 0.5) * step
		y += (rng.Float64() - 0.5) * step
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		if y < 0 {
			y = 0
		}
		if y > 1 {
			y = 1
		}
		pts[i] = model.Point{X: x, Y: y, T: int64(i) * 1000}
	}
	return &model.Trajectory{OID: "o", TID: "t", Points: pts}
}

// memProvider is a test ShapeProvider over a map.
type memProvider map[uint64][]Shape

func (m memProvider) Shapes(elem uint64) []Shape { return m[elem] }

// The central soundness property: index + Algorithm 2 never lose a result.
// Build many trajectories, index them with raw shape codes, and check every
// trajectory that intersects a random query window has its value covered.
func TestQueryRangesNoFalseNegatives(t *testing.T) {
	for _, ab := range [][2]int{{2, 2}, {3, 3}, {5, 5}} {
		ix := newIndex(t, ab[0], ab[1], 10)
		rng := rand.New(rand.NewSource(int64(61 + ab[0])))
		type indexed struct {
			tr *model.Trajectory
			v  uint64
		}
		provider := memProvider{}
		var objs []indexed
		for i := 0; i < 300; i++ {
			tr := randomTraj(rng, 2+rng.Intn(30), 0.02)
			elem, bits := ix.EncodeRaw(tr)
			objs = append(objs, indexed{tr: tr, v: ix.Pack(elem, bits)})
			// Register the shape (raw code = final code in this test).
			found := false
			for _, s := range provider[elem] {
				if s.Bits == bits {
					found = true
					break
				}
			}
			if !found {
				provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
			}
		}
		for iter := 0; iter < 100; iter++ {
			qx, qy := rng.Float64()*0.9, rng.Float64()*0.9
			q := geo.Rect{MinX: qx, MinY: qy, MaxX: qx + rng.Float64()*0.1, MaxY: qy + rng.Float64()*0.1}
			ranges, _ := ix.QueryRanges(q, provider)
			for _, o := range objs {
				if !o.tr.IntersectsRect(q) {
					continue
				}
				if !coveredBy(ranges, o.v) {
					t.Fatalf("α×β=%dx%d iter %d: trajectory %v intersects %v but value %d not covered",
						ab[0], ab[1], iter, o.tr.MBR(), q, o.v)
				}
			}
			// Also: nil provider (no cache) must cover at least as much.
			nilRanges, _ := ix.QueryRanges(q, nil)
			for _, o := range objs {
				if o.tr.IntersectsRect(q) && !coveredBy(nilRanges, o.v) {
					t.Fatalf("nil-provider query lost trajectory")
				}
			}
		}
	}
}

func coveredBy(ranges []ValueRange, v uint64) bool {
	for _, r := range ranges {
		if r.Lo <= v && v <= r.Hi {
			return true
		}
	}
	return false
}

// TShape should be more selective than covering all shapes: with the shape
// provider the candidate count must never exceed the nil-provider count.
func TestShapeProviderImprovesSelectivity(t *testing.T) {
	ix := newIndex(t, 3, 3, 10)
	rng := rand.New(rand.NewSource(67))
	provider := memProvider{}
	for i := 0; i < 500; i++ {
		tr := randomTraj(rng, 2+rng.Intn(30), 0.02)
		elem, bits := ix.EncodeRaw(tr)
		provider[elem] = append(provider[elem], Shape{Bits: bits, Code: bits})
	}
	var withCache, withoutCache uint64
	for iter := 0; iter < 50; iter++ {
		qx, qy := rng.Float64()*0.9, rng.Float64()*0.9
		q := geo.Rect{MinX: qx, MinY: qy, MaxX: qx + 0.05, MaxY: qy + 0.05}
		r1, _ := ix.QueryRanges(q, provider)
		r2, _ := ix.QueryRanges(q, nil)
		withCache += CandidateValues(r1)
		withoutCache += CandidateValues(r2)
	}
	if withCache >= withoutCache {
		t.Errorf("cache candidates %d >= no-cache %d; provider should prune", withCache, withoutCache)
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	ix := newIndex(t, 3, 3, 8)
	provider := memProvider{}
	tr := mkTraj([2]float64{0.4, 0.4}, [2]float64{0.45, 0.45})
	elem, bits := ix.EncodeRaw(tr)
	provider[elem] = append(provider[elem], Shape{Bits: bits, Code: 0})
	_, stats := ix.QueryRanges(geo.Rect{MinX: 0.39, MinY: 0.39, MaxX: 0.46, MaxY: 0.46}, provider)
	if stats.ElementsVisited == 0 {
		t.Error("ElementsVisited should be > 0")
	}
	if stats.ShapesChecked == 0 || stats.ShapesMatched == 0 {
		t.Errorf("shape stats empty: %+v", stats)
	}
}
