package engine

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// qpWorkloadQuery is one query of the mixed read workload used by the
// query-path tests and benchmarks.
type qpWorkloadQuery struct {
	kind int // 0 spatial, 1 temporal, 2 spatio-temporal, 3 id-temporal
	sr   geo.Rect
	tr   model.TimeRange
	oid  string
}

// qpMixShape scales the windows of a generated workload: broad analytic
// windows for coverage tests, small hot windows for the cached-workload
// throughput benchmark.
type qpMixShape struct {
	wBase, wSpan, hBase, hSpan float64 // spatial half-extents (degrees)
	tBefore, tAfter            int64   // temporal window around the anchor (ms)
}

var (
	qpBroadMix = qpMixShape{0.3, 1.8, 0.3, 1.2, 6 * 3600_000, 36 * 3600_000}
	qpHotMix   = qpMixShape{0.04, 0.16, 0.04, 0.12, 1 * 3600_000, 5 * 3600_000}
)

// genQueryMix derives a deterministic mixed workload from stored
// trajectories: windows anchored at real data so queries hit rows.
func genQueryMix(rng *rand.Rand, trajs []*model.Trajectory, n int) []qpWorkloadQuery {
	return genQueryMixShaped(rng, trajs, n, qpBroadMix)
}

func genQueryMixShaped(rng *rand.Rand, trajs []*model.Trajectory, n int, shape qpMixShape) []qpWorkloadQuery {
	out := make([]qpWorkloadQuery, n)
	for i := range out {
		t := trajs[rng.Intn(len(trajs))]
		p := t.Points[rng.Intn(len(t.Points))]
		w := shape.wBase + rng.Float64()*shape.wSpan
		h := shape.hBase + rng.Float64()*shape.hSpan
		sr := geo.Rect{MinX: p.X - w, MinY: p.Y - h, MaxX: p.X + w, MaxY: p.Y + h}
		trng := model.TimeRange{Start: p.T - shape.tBefore, End: p.T + shape.tAfter}
		q := qpWorkloadQuery{sr: sr, tr: trng, oid: t.OID}
		switch r := rng.Intn(10); {
		case r < 4:
			q.kind = 0
		case r < 6:
			q.kind = 1
		case r < 9:
			q.kind = 2
		default:
			q.kind = 3
		}
		out[i] = q
	}
	return out
}

// runWorkloadQuery executes one workload query and returns its results.
func runWorkloadQuery(e *Engine, q qpWorkloadQuery) ([]*model.Trajectory, QueryReport, error) {
	switch q.kind {
	case 0:
		return e.SpatialRangeQuery(q.sr)
	case 1:
		return e.TemporalRangeQuery(q.tr)
	case 2:
		return e.SpatioTemporalQuery(q.sr, q.tr)
	default:
		return e.IDTemporalQuery(q.oid, q.tr)
	}
}

// canonicalize renders a result set into comparable bytes (sorted by TID;
// scan order is deterministic but sorting keeps the comparison about
// content, not plan-internal emission order).
func canonicalize(t *testing.T, trips []*model.Trajectory) string {
	t.Helper()
	sorted := make([]*model.Trajectory, len(trips))
	copy(sorted, trips)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].TID < sorted[j-1].TID; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	enc, err := json.Marshal(sorted)
	if err != nil {
		t.Fatal(err)
	}
	return string(enc)
}

// TestQueryPathEquivalence is the golden equivalence gate: the tuned
// query-serving path (sharded LFU, singleflight, plan cache, parallel
// TShape enumeration) must return byte-identical results to the
// unsharded/uncached path for every query of the mixed workload — on both
// a cold and a warm (memoized-plan) pass.
func TestQueryPathEquivalence(t *testing.T) {
	tuned := testConfig()
	tuned.CacheShards = 16
	tuned.PlanCacheSize = 1024

	plain := testConfig()
	plain.CacheShards = 1   // single-mutex LFU layout
	plain.PlanCacheSize = -1 // no plan memoization

	const rows = 900
	eTuned, trajs := loadEngine(t, tuned, rows, 23)
	ePlain, _ := loadEngine(t, plain, rows, 23)

	queries := genQueryMix(rand.New(rand.NewSource(31)), trajs, 60)
	warm := make([]string, len(queries))
	for i, q := range queries {
		gotT, _, errT := runWorkloadQuery(eTuned, q)
		gotP, _, errP := runWorkloadQuery(ePlain, q)
		if errT != nil || errP != nil {
			t.Fatalf("query %d: errs %v / %v", i, errT, errP)
		}
		ct, cp := canonicalize(t, gotT), canonicalize(t, gotP)
		if ct != cp {
			t.Fatalf("query %d (kind %d): tuned %d results != plain %d results", i, q.kind, len(gotT), len(gotP))
		}
		warm[i] = ct
	}
	// Second pass replays memoized plans; results must not drift.
	for i, q := range queries {
		got, _, err := runWorkloadQuery(eTuned, q)
		if err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
		if c := canonicalize(t, got); c != warm[i] {
			t.Fatalf("warm query %d (kind %d): cached plan changed the result", i, q.kind)
		}
	}
	ps := eTuned.PlanCacheStats()
	if ps.Hits == 0 {
		t.Errorf("warm pass produced no plan-cache hits: %+v", ps)
	}
}

// TestPlanCacheInvalidationOnReencode pins the correctness rule the plan
// cache must obey: after a re-encode rewrites an element's final codes, the
// next query must plan with fresh codes, not replay the memoized ranges.
func TestPlanCacheInvalidationOnReencode(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 4 // re-encode after a handful of new shapes
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	control := cfg
	control.PlanCacheSize = -1
	ec, err := New(control)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	put := func(tr *model.Trajectory) {
		t.Helper()
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
		if err := ec.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Cluster trajectories in one small urban core so they share enlarged
	// elements and their distinct shapes drive the buffer to threshold
	// (spread-out data never reuses elements).
	cluster := func(tr *model.Trajectory) {
		for j := range tr.Points {
			tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.4)
			tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
		}
	}
	for i := 0; i < 40; i++ {
		tr := genTrajectory(rng, "obj", fmt.Sprintf("phase1-%03d", i))
		cluster(tr)
		put(tr)
	}
	window := geo.Rect{MinX: 115.5, MinY: 39, MaxX: 117, MaxY: 40.5}

	// Prime the plan cache for the window.
	r1, _, err := e.SpatialRangeQuery(window)
	if err != nil {
		t.Fatal(err)
	}
	c1, _, err := ec.SpatialRangeQuery(window)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalize(t, r1) != canonicalize(t, c1) {
		t.Fatal("pre-reencode results diverge")
	}
	if hits := func() int64 { e.SpatialRangeQuery(window); return e.PlanCacheStats().Hits }(); hits == 0 {
		t.Fatal("repeated window did not hit the plan cache")
	}

	// Phase 2: new distinct shapes in the same area force a re-encode.
	before := e.Reencodes()
	for i := 0; i < 120 && e.Reencodes() == before; i++ {
		tr := genTrajectory(rng, "obj2", fmt.Sprintf("phase2-%03d", i))
		cluster(tr)
		put(tr)
	}
	if e.Reencodes() == before {
		t.Fatal("workload never triggered a re-encode; test premise broken")
	}

	// The memoized plan must now be dead: spatialRanges has to equal a
	// fresh (uncached) enumeration against the rewritten directory...
	nsr := e.space.NormalizeRect(window)
	gotRanges := e.spatialRanges(nsr)
	freshRanges := e.spatialRangesUncached(nsr)
	if len(gotRanges) != len(freshRanges) {
		t.Fatalf("post-reencode plan has %d ranges, fresh enumeration %d — stale plan served", len(gotRanges), len(freshRanges))
	}
	for i := range freshRanges {
		if gotRanges[i] != freshRanges[i] {
			t.Fatalf("post-reencode plan range %d = %+v, fresh %+v", i, gotRanges[i], freshRanges[i])
		}
	}
	// ...and the query must see every row, exactly like the uncached engine.
	r2, _, err := e.SpatialRangeQuery(window)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := ec.SpatialRangeQuery(window)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalize(t, r2) != canonicalize(t, c2) {
		t.Fatalf("post-reencode results diverge: %d vs %d rows", len(r2), len(c2))
	}
	if len(r2) <= len(r1) {
		t.Fatalf("phase-2 rows invisible after reencode: %d <= %d", len(r2), len(r1))
	}
}

// TestConcurrentQueryStress hammers one engine from parallel readers while
// a writer keeps buffering shapes and triggering re-encodes — the -race
// gate for the sharded cache, singleflight, plan epoch, and parallel
// enumeration working together.
func TestConcurrentQueryStress(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 6
	cfg.CacheCapacity = 64 // force evictions and cold misses
	e, trajs := loadEngine(t, cfg, 400, 51)

	queries := genQueryMix(rand.New(rand.NewSource(52)), trajs, 64)
	var readersWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	writerWG.Add(1)
	go func() { // writer: keeps mutating shape state under the readers
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(53))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := genTrajectory(rng, "w", fmt.Sprintf("stress-%05d", i))
			if err := e.Put(tr); err != nil {
				errs <- err
				return
			}
		}
	}()
	const readers = 8
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				q := queries[rng.Intn(len(queries))]
				if _, _, err := runWorkloadQuery(e, q); err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}(int64(100 + r))
	}
	done := make(chan struct{})
	go func() { readersWG.Wait(); close(done) }()
	select {
	case err := <-errs:
		close(stop)
		writerWG.Wait()
		t.Fatal(err)
	case <-done:
	}
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Post-stress sanity: the engine still answers consistently with an
	// uncached replay of the same physical state.
	nsr := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	got := e.spatialRanges(nsr)
	fresh := e.spatialRangesUncached(nsr)
	if len(got) != len(fresh) {
		t.Fatalf("post-stress plan diverges from fresh enumeration: %d vs %d ranges", len(got), len(fresh))
	}
	st := e.CacheStats()
	if st.DirLoads == 0 {
		t.Errorf("stress exercised no directory loads: %+v", st)
	}
}
