package engine

import (
	"github.com/tman-db/tman/internal/cache"
	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/kvstore"
)

// kvDirectory persists per-element shape directories in a KV-store table —
// the stand-in for the paper's Redis deployment. Each element's full tuple
// set is stored as one row: key = element code (8B BE), value = repeated
// (bits, code) uvarint pairs.
type kvDirectory struct {
	table *kvstore.Table
}

func newKVDirectory(t *kvstore.Table) *kvDirectory { return &kvDirectory{table: t} }

// Load implements cache.Directory.
func (d *kvDirectory) Load(elemCode uint64) ([]cache.Shape, error) {
	v, ok := d.table.Get(codec.AppendUint64(nil, elemCode))
	if !ok {
		return nil, nil
	}
	return decodeShapes(v)
}

// Store implements cache.Directory.
func (d *kvDirectory) Store(elemCode uint64, shapes []cache.Shape) error {
	d.table.Put(codec.AppendUint64(nil, elemCode), encodeShapes(shapes))
	return nil
}

func encodeShapes(shapes []cache.Shape) []byte {
	out := compress.AppendUvarint(nil, uint64(len(shapes)))
	for _, s := range shapes {
		out = compress.AppendUvarint(out, s.Bits)
		out = compress.AppendUvarint(out, s.Code)
	}
	return out
}

func decodeShapes(b []byte) ([]cache.Shape, error) {
	n, c := compress.Uvarint(b)
	if c <= 0 {
		return nil, ErrBadRow
	}
	b = b[c:]
	if n > uint64(len(b)) {
		return nil, ErrBadRow
	}
	out := make([]cache.Shape, n)
	for i := range out {
		bits, c := compress.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadRow
		}
		b = b[c:]
		code, c := compress.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadRow
		}
		b = b[c:]
		out[i] = cache.Shape{Bits: bits, Code: code}
	}
	return out, nil
}
