package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSRQHot measures a hot spatial range query end to end: index
// ranges → multi-window primary scan → push-down spatial filter (header +
// feature decode per candidate, point decode for survivors). This is the
// engine-level view of the kvstore read path plus the row-decode hot loop.
func BenchmarkSRQHot(b *testing.B) {
	cfg := testConfig()
	cfg.KV.RPCLatencyMicros = 0
	cfg.KV.TransferMBps = 0
	cfg.KV.DiskMBps = 0
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var anchorX, anchorY float64
	for i := 0; i < 3000; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%50), fmt.Sprintf("traj-%05d", i))
		if i == 123 {
			anchorX, anchorY = tr.Points[0].X, tr.Points[0].Y
		}
		if err := e.Put(tr); err != nil {
			b.Fatal(err)
		}
	}
	window := testBoundary
	window.MinX, window.MaxX = anchorX-1.2, anchorX+1.2
	window.MinY, window.MaxY = anchorY-0.9, anchorY+0.9
	out, rep, err := e.SpatialRangeQuery(window)
	if err != nil || len(out) == 0 {
		b.Fatalf("warmup query: %d results, err=%v (plan %s)", len(out), err, rep.Plan)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		res, _, err := e.SpatialRangeQuery(window)
		if err != nil || len(res) != len(out) {
			b.Fatalf("query: %d results (want %d), err=%v", len(res), len(out), err)
		}
	}
}
