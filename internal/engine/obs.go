package engine

import (
	"context"
	"time"

	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/obs"
)

// Query-type labels used by the per-type metric series and span names.
const (
	qTemporal  = "temporal"
	qSpatial   = "spatial"
	qSpaceTime = "spacetime"
	qObject    = "object"
	qSimilar   = "similar"
	qNearest   = "nearest"
)

var queryTypes = []string{qTemporal, qSpatial, qSpaceTime, qObject, qSimilar, qNearest}

// jobKinds is the fixed set of background-job kinds the tman_bg_* series
// are registered for (matching the kinds kvstore records).
var jobKinds = []string{"flush", "compact", "catchup", "split", "failover"}

// engineMetrics is the engine's registration into the obs layer: the shared
// registry every subsystem exports through, per-query-type latency
// histograms and counters, and the trace sampler + ring.
//
// Counters that already exist as a subsystem's own atomics (kvstore.Stats,
// cache stats, plan-cache stats) are mirrored as scrape-time func metrics —
// the hot paths keep their single-atomic-add cost and nothing is counted
// twice.
type engineMetrics struct {
	reg *obs.Registry

	queriesTotal    map[string]*obs.Counter
	queryLatency    map[string]*obs.Histogram
	queriesPartial  *obs.Counter
	queryCandidates *obs.Histogram

	sampler *obs.Sampler   // nil when TraceSampleRate is 0 (tracing off)
	traces  *obs.TraceRing // most recent sampled traces

	// slo holds one latency-objective tracker per query type (nil trackers
	// when SLO tracking is disabled; every method is nil-safe).
	slo       map[string]*obs.SLOTracker
	sloBudget float64
}

// newEngineMetrics builds the registry and registers every engine-side and
// store-side series.
func newEngineMetrics(e *Engine) *engineMetrics {
	reg := obs.NewRegistry()
	m := &engineMetrics{
		reg:          reg,
		queriesTotal: make(map[string]*obs.Counter, len(queryTypes)),
		queryLatency: make(map[string]*obs.Histogram, len(queryTypes)),
		sampler:      obs.NewSampler(e.cfg.TraceSampleRate),
		traces:       obs.NewTraceRing(32),
	}

	// --- kvstore: scan/write/fault counters mirrored from Stats ----------
	st := e.store.Stats()
	counter := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	counter("tman_store_rows_scanned_total", "live rows visited by region scanners (the paper's candidates metric)", st.RowsScanned.Load)
	counter("tman_store_rows_returned_total", "rows that passed push-down filters and were returned to the client", st.RowsReturned.Load)
	counter("tman_store_seeks_total", "scanner setups (one per region x range)", st.Seeks.Load)
	counter("tman_store_rpcs_total", "region RPCs charged by the cost model", st.RPCs.Load)
	counter("tman_store_bytes_returned_total", "value bytes transferred to clients", st.BytesReturned.Load)
	counter("tman_store_puts_total", "row puts applied", st.Puts.Load)
	counter("tman_store_deletes_total", "tombstones written", st.Deletes.Load)
	counter("tman_store_flushes_total", "memtable flushes into sorted runs", st.Flushes.Load)
	counter("tman_store_compactions_total", "run compactions", st.Compactions.Load)
	counter("tman_store_subcompactions_total", "key-range sub-merges fanned out by partitioned compactions", st.SubCompactions.Load)
	counter("tman_store_bytes_flushed_total", "raw key+value bytes memtable flushes wrote into first-level runs", st.BytesFlushed.Load)
	counter("tman_store_bytes_compacted_total", "raw bytes compactions re-read and rewrote (write-amplification numerator)", st.BytesCompacted.Load)
	reg.CounterFunc("tman_store_compact_stall_seconds_total", "wall time region flush paths spent inside compaction",
		func() float64 { return float64(st.CompactStallNanos.Load()) / 1e9 })
	reg.GaugeFunc("tman_store_compact_queue_depth", "regions awaiting flush plus unclaimed sub-compaction tasks",
		func() float64 { return float64(e.store.CompactQueueDepth()) })
	reg.GaugeFunc("tman_store_tier_runs", "logical sorted runs across all regions (tiered policy units)",
		func() float64 {
			n := 0
			for _, c := range e.store.TierRunHistogram() {
				n += c
			}
			return float64(n)
		})
	counter("tman_store_region_splits_total", "threshold-driven region splits", st.RegionSplits.Load)
	counter("tman_store_failed_rpcs_total", "injected per-attempt RPC faults", st.FailedRPCs.Load)
	counter("tman_store_retried_rpcs_total", "client RPC retries performed", st.RetriedRPCs.Load)
	counter("tman_store_failed_regions_total", "region tasks abandoned after retries/deadline", st.FailedRegions.Load)
	counter("tman_store_partial_scans_total", "scans that returned a partial result", st.PartialScans.Load)
	counter("tman_store_wal_appends_total", "WAL records appended (batch group commits count once)", st.WALAppends.Load)
	counter("tman_store_wal_syncs_total", "WAL fsyncs", st.WALSyncs.Load)
	reg.CounterFunc("tman_store_sim_io_seconds_total", "analytic cluster I/O time charged by the cost model",
		func() float64 { return float64(st.SimIONanos.Load()) / 1e9 })
	reg.CounterFunc("tman_store_backoff_seconds_total", "analytic retry backoff charged across client RPC paths",
		func() float64 { return float64(st.BackoffNanos.Load()) / 1e9 })
	reg.GaugeFunc("tman_store_regions", "regions across all tables",
		func() float64 { return float64(e.store.TotalRegions()) })

	// --- replication: ship/catch-up/failover counters + health gauges ----
	counter("tman_failovers_total", "leader promotions after node death", st.Failovers.Load)
	counter("tman_follower_reads_total", "region scans served by follower replicas", st.FollowerReads.Load)
	counter("tman_replica_ship_frames_total", "leader->follower replication frames shipped", st.ShipFrames.Load)
	counter("tman_replica_ship_rejects_total", "replication frames rejected by followers (corrupt or fenced)", st.ShipRejects.Load)
	counter("tman_replica_catchup_tail_total", "follower catch-ups served from the retained log tail", st.CatchupTail.Load)
	counter("tman_replica_catchup_snapshot_total", "follower catch-ups rebuilt from a leader snapshot", st.CatchupSnapshots.Load)
	reg.GaugeFunc("tman_replica_lag", "worst live-follower staleness in milliseconds",
		func() float64 { return float64(e.store.ReplicaStats().MaxLagMS) })
	reg.GaugeFunc("tman_replica_followers", "follower replicas across all regions",
		func() float64 { return float64(e.store.ReplicaStats().Followers) })
	reg.GaugeFunc("tman_replicas_down", "follower replicas currently down",
		func() float64 { return float64(e.store.ReplicaStats().Down) })

	// --- block runs: cache, physical reads, bloom filters ----------------
	counter("tman_block_cache_hits_total", "block-cache hits on the read path (no physical read charged)", st.BlockCacheHits.Load)
	counter("tman_block_cache_misses_total", "block fetches that decoded an encoded block (charged reads)", st.BlockCacheMisses.Load)
	counter("tman_block_read_bytes_total", "encoded block bytes physically read on cache misses", st.BlockReadBytes.Load)
	counter("tman_block_cache_evictions_total", "decoded blocks evicted under the byte cap",
		func() int64 { return e.store.BlockCacheStats().Evictions })
	reg.GaugeFunc("tman_block_cache_used_bytes", "decoded block bytes resident in the shared cache",
		func() float64 { return float64(e.store.BlockCacheUsedBytes()) })
	counter("tman_bloom_checks_total", "point gets screened against a run bloom filter", st.BloomChecks.Load)
	counter("tman_bloom_negatives_total", "point gets a bloom filter proved absent (no block touched)", st.BloomNegatives.Load)
	counter("tman_bloom_false_positives_total", "bloom passes where the run did not hold the key", st.BloomFalsePositives.Load)
	counter("tman_replica_catchup_ship_bytes_total", "encoded run bytes shipped by snapshot catch-ups", st.CatchupShipBytes.Load)
	counter("tman_fence_blocks_skipped_total", "run blocks skipped unread by fence verdicts", st.BlocksSkipped.Load)
	counter("tman_fence_blocks_accepted_total", "run blocks decoded without per-row filtering (fence inside the query)", st.BlocksAcceptedWhole.Load)
	counter("tman_fence_bytes_read_total", "fence metadata bytes consulted by pruning scans", st.FenceBytesRead.Load)

	// --- engine: dataset + shape-maintenance state -----------------------
	reg.GaugeFunc("tman_engine_trajectories", "stored trajectories",
		func() float64 { return float64(e.rows.Load()) })
	counter("tman_engine_reencodes_total", "TShape element re-encode passes", e.reencodes.Load)

	// --- index cache + plan cache ----------------------------------------
	counter("tman_cache_hits_total", "index-cache hits", func() int64 { return e.CacheStats().Hits })
	counter("tman_cache_misses_total", "index-cache misses", func() int64 { return e.CacheStats().Misses })
	counter("tman_cache_evictions_total", "index-cache evictions", func() int64 { return e.CacheStats().Evictions })
	counter("tman_cache_dir_loads_total", "directory loads performed (singleflight leaders)", func() int64 { return e.CacheStats().DirLoads })
	counter("tman_cache_shared_loads_total", "directory loads deduplicated by singleflight", func() int64 { return e.CacheStats().SharedLoads })
	counter("tman_plan_cache_hits_total", "plan-cache hits", func() int64 { return e.PlanCacheStats().Hits })
	counter("tman_plan_cache_misses_total", "plan-cache misses", func() int64 { return e.PlanCacheStats().Misses })
	reg.GaugeFunc("tman_plan_cache_entries", "memoized query plans resident",
		func() float64 { return float64(e.PlanCacheStats().Entries) })

	// --- per-query-type latency + volume ---------------------------------
	for _, qt := range queryTypes {
		m.queriesTotal[qt] = reg.Counter(
			`tman_queries_total{type="`+qt+`"}`, "queries executed by type")
		m.queryLatency[qt] = reg.Histogram(
			`tman_query_duration_seconds{type="`+qt+`"}`,
			"query latency by type (wall + analytic cluster I/O)", obs.DefBuckets)
	}
	m.queriesPartial = reg.Counter("tman_queries_partial_total",
		"queries that degraded to a partial result")
	m.queryCandidates = reg.Histogram("tman_query_candidates",
		"candidates visited per query (the paper's retrievals metric)", obs.SizeBuckets)

	// --- background jobs: always-on tracing + per-kind resource ledgers ---
	jobs := e.store.Jobs()
	for _, kind := range jobKinds {
		kind := kind
		counter(`tman_bg_jobs_total{kind="`+kind+`"}`,
			"background jobs completed by kind", func() int64 { return jobs.KindStats(kind).Jobs })
		counter(`tman_bg_bytes_read_total{kind="`+kind+`"}`,
			"bytes background jobs read by kind", func() int64 { return jobs.KindStats(kind).BytesRead })
		counter(`tman_bg_bytes_written_total{kind="`+kind+`"}`,
			"bytes background jobs wrote by kind", func() int64 { return jobs.KindStats(kind).BytesWritten })
		reg.CounterFunc(`tman_bg_seconds_total{kind="`+kind+`"}`,
			"wall time background jobs ran by kind",
			func() float64 { return float64(jobs.KindStats(kind).TotalNanos) / 1e9 })
		reg.CounterFunc(`tman_bg_stall_seconds_total{kind="`+kind+`"}`,
			"time background jobs held locks foreground work waited on, by kind",
			func() float64 { return float64(jobs.KindStats(kind).StallNanos) / 1e9 })
	}
	reg.GaugeFunc("tman_bg_jobs_running", "background jobs currently in flight",
		func() float64 { return float64(jobs.RunningCount()) })
	reg.GaugeFunc("tman_scan_queue_depth", "scan/write executor tasks queued but not started",
		func() float64 { return float64(e.store.ScanQueueDepth()) })

	// --- per-region hotness (top-1 gauges; full list on /debug/jobs) ------
	reg.GaugeFunc("tman_region_hottest_rows", "rows visited on the hottest region (lifetime)",
		func() float64 {
			if hot := e.store.RegionHotness(1); len(hot) > 0 {
				return float64(hot[0].Rows)
			}
			return 0
		})
	reg.GaugeFunc("tman_region_hotness_share", "hottest region's share of all rows visited",
		func() float64 {
			hot := e.store.RegionHotness(0)
			var total int64
			for _, h := range hot {
				total += h.Rows
			}
			if len(hot) == 0 || total == 0 {
				return 0
			}
			return float64(hot[0].Rows) / float64(total)
		})

	// --- SLO layer: per-type good/late counters + windowed burn rates -----
	m.sloBudget = e.cfg.SLOBudget
	m.slo = make(map[string]*obs.SLOTracker, len(queryTypes))
	objective := time.Duration(e.cfg.SLOTargetMillis) * time.Millisecond
	for _, qt := range queryTypes {
		var tr *obs.SLOTracker
		if e.cfg.SLOTargetMillis > 0 {
			tr = obs.NewSLOTracker(objective, e.cfg.SLOBudget, 10*time.Second, 30)
		}
		m.slo[qt] = tr
		counter(`tman_slo_good_total{type="`+qt+`"}`,
			"queries that met the latency objective, by type",
			func() int64 { good, _ := tr.Totals(); return good })
		counter(`tman_slo_late_total{type="`+qt+`"}`,
			"queries that missed the latency objective, by type",
			func() int64 { _, late := tr.Totals(); return late })
	}
	reg.GaugeFunc("tman_slo_objective_seconds", "latency objective queries are classified against",
		func() float64 { return objective.Seconds() })
	burn := func(w time.Duration) float64 {
		var good, late int64
		for _, tr := range m.slo {
			g, l := tr.Window(w)
			good += g
			late += l
		}
		if good+late == 0 {
			return 0
		}
		return (float64(late) / float64(good+late)) / m.sloBudget
	}
	reg.GaugeFunc("tman_slo_burn_rate_1m", "trailing-1m error-budget burn rate across all query types",
		func() float64 { return burn(time.Minute) })
	reg.GaugeFunc("tman_slo_burn_rate_5m", "trailing-5m error-budget burn rate across all query types",
		func() float64 { return burn(5 * time.Minute) })
	return m
}

// Jobs exposes the store's background-job recorder (for /debug/jobs and for
// attaching overlapping background spans to forced traces).
func (e *Engine) Jobs() *obs.JobRecorder { return e.store.Jobs() }

// RegionHotness returns the top-k regions by rows visited, hottest first.
func (e *Engine) RegionHotness(k int) []kvstore.RegionHot { return e.store.RegionHotness(k) }

// SLOStatus is one query type's SLO standing for /stats.
type SLOStatus struct {
	Good       int64   `json:"good"`
	Late       int64   `json:"late"`
	BurnRate1M float64 `json:"burn_rate_1m"`
}

// SLOSnapshot reports per-type SLO standing plus the objective in millis.
func (e *Engine) SLOSnapshot() (objectiveMS int64, byType map[string]SLOStatus) {
	byType = make(map[string]SLOStatus, len(queryTypes))
	for _, qt := range queryTypes {
		tr := e.met.slo[qt]
		good, late := tr.Totals()
		byType[qt] = SLOStatus{Good: good, Late: late, BurnRate1M: tr.BurnRate(time.Minute)}
		objectiveMS = tr.Objective().Milliseconds()
	}
	return objectiveMS, byType
}

// Metrics returns the engine's metrics registry — the single exposition
// point for store, cache, plan-cache and query series. httpapi serves it at
// /metrics and registers its own request series into it.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// LastTrace returns the most recent sampled query trace (nil when tracing
// is disabled or nothing was sampled yet).
func (e *Engine) LastTrace() *obs.Span { return e.met.traces.Last() }

// beginQuery opens the observability scope of one query: if the caller's
// context already carries a span (the /trace endpoint, or a traced parent
// query), the query becomes a child span; otherwise the sampler decides
// whether this query gets a fresh root trace. Untraced queries pay one
// context lookup and, at most, one atomic add in the sampler.
func (e *Engine) beginQuery(ctx context.Context, qtype string) (context.Context, *obs.Span, bool) {
	if parent := obs.SpanFrom(ctx); parent != nil {
		sp := parent.StartChild("query:" + qtype)
		return obs.ContextWithSpan(ctx, sp), sp, false
	}
	if e.met.sampler.Sample() {
		sp := obs.NewSpan("query:" + qtype)
		return obs.ContextWithSpan(ctx, sp), sp, true
	}
	return ctx, nil, false
}

// endQuery records the query's outcome: per-type counters and latency
// histograms always; span attributes and the trace ring only when traced.
// The span is closed with the report's elapsed time (wall + analytic I/O),
// so a trace's root duration equals the latency the client was told.
func (e *Engine) endQuery(qtype string, sp *obs.Span, sampled bool, rep *QueryReport) {
	m := e.met
	m.queriesTotal[qtype].Inc()
	m.queryLatency[qtype].ObserveDuration(int64(rep.Elapsed))
	m.queryCandidates.Observe(float64(rep.Candidates))
	m.slo[qtype].Observe(rep.Elapsed)
	if rep.Partial {
		m.queriesPartial.Inc()
	}
	if sp == nil {
		return
	}
	sp.Add("candidates", rep.Candidates)
	sp.Add("results", int64(rep.Results))
	sp.Add("windows", int64(rep.Windows))
	sp.Add("retried_rpcs", rep.RetriedRPCs)
	sp.Add("failed_regions", int64(rep.FailedRegions))
	if rep.FollowerReads > 0 {
		sp.Add("follower_reads", rep.FollowerReads)
	}
	sp.Add("sim_io_ns", rep.Store.SimIONanos)
	if rep.Partial {
		sp.Add("partial", 1)
	}
	sp.EndWith(rep.Elapsed)
	if sampled {
		m.traces.Add(sp)
	}
}
