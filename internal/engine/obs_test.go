package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/obs"
)

// obsTestEngine loads a small deterministic dataset into an engine with the
// simulated network zeroed (pure in-process measurement).
func obsTestEngine(t *testing.T, sampleRate float64) *Engine {
	t.Helper()
	cfg := testConfig()
	cfg.KV.RPCLatencyMicros = 0
	cfg.KV.TransferMBps = 0
	cfg.KV.DiskMBps = 0
	cfg.TraceSampleRate = sampleRate
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		if err := e.Put(genTrajectory(rng, fmt.Sprintf("obj-%d", i%20), fmt.Sprintf("traj-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestTracedQuerySpanRowsMatchCandidates is the trace-accounting invariant:
// for a primary-plan spatial query, Report.Candidates counts the rows region
// scanners visited, and the scan spans charge exactly those rows as
// rows_visited attributes — so the span-tree sum must equal the report.
func TestTracedQuerySpanRowsMatchCandidates(t *testing.T) {
	e := obsTestEngine(t, 0)
	window := geo.Rect{MinX: 112, MinY: 37, MaxX: 120, MaxY: 43}

	// Warm: the directory cache and memoized plan settle, so the traced run
	// below does only the primary-table scan.
	if _, _, err := e.SpatialRangeQuery(window); err != nil {
		t.Fatal(err)
	}

	root := obs.NewSpan("test")
	ctx := obs.ContextWithSpan(context.Background(), root)
	_, rep, err := e.SpatialRangeQueryCtx(ctx, window)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if !strings.HasPrefix(rep.Plan, "primary:") {
		t.Fatalf("want a primary plan, got %q", rep.Plan)
	}
	if rep.Candidates == 0 {
		t.Fatal("query visited no candidates; widen the window")
	}
	if got := root.SumAttr("rows_visited"); got != rep.Candidates {
		t.Fatalf("span rows_visited sum = %d, report.Candidates = %d", got, rep.Candidates)
	}

	// Tree shape: root -> query:spatial -> {plan, scan:primary -> region:*}.
	var query, scan *obs.Span
	root.Walk(func(s *obs.Span) {
		switch {
		case s.Name() == "query:spatial":
			query = s
		case strings.HasPrefix(s.Name(), "scan:"):
			scan = s
		}
	})
	if query == nil || scan == nil {
		t.Fatalf("trace missing query/scan spans: %+v", root.JSON())
	}
	if query.Attr("candidates") != rep.Candidates {
		t.Fatalf("query span candidates = %d, want %d", query.Attr("candidates"), rep.Candidates)
	}
	if query.Duration() != rep.Elapsed {
		t.Fatalf("query span duration %v != report elapsed %v", query.Duration(), rep.Elapsed)
	}
	if scan.Attr("rpcs") == 0 {
		t.Fatal("scan span charged no RPCs")
	}
}

// TestQueryMetricsRecorded checks the per-type counter and latency
// histogram move when queries run, and that the partial counter stays zero
// on clean runs.
func TestQueryMetricsRecorded(t *testing.T) {
	e := obsTestEngine(t, 0)
	reg := e.Metrics()
	window := geo.Rect{MinX: 113, MinY: 38, MaxX: 118, MaxY: 42}
	const n = 3
	for i := 0; i < n; i++ {
		if _, _, err := e.SpatialRangeQuery(window); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(`tman_queries_total{type="spatial"}`, "").Value(); got != n {
		t.Fatalf("spatial query counter = %d, want %d", got, n)
	}
	h := reg.Histogram(`tman_query_duration_seconds{type="spatial"}`, "", nil).Snapshot()
	if h.Count != n {
		t.Fatalf("latency histogram count = %d, want %d", h.Count, n)
	}
	if got := reg.Counter("tman_queries_partial_total", "").Value(); got != 0 {
		t.Fatalf("partial counter = %d, want 0", got)
	}
	// The mirrored store counters must be live (same atomics, read at scrape).
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "tman_store_rows_scanned_total") {
		t.Fatal("exposition missing mirrored store counters")
	}
}

// TestTraceSampling checks rate-1 sampling records every query into the
// trace ring, and rate-0 records nothing.
func TestTraceSampling(t *testing.T) {
	e := obsTestEngine(t, 1)
	// Covers the first week of the generated dataset (timestamps start at
	// 1.5e12 and span ~30 days).
	q := model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 7*24*3600_000}
	if e.LastTrace() != nil {
		t.Fatal("trace ring not empty before any query")
	}
	if _, _, err := e.TemporalRangeQuery(q); err != nil {
		t.Fatal(err)
	}
	last := e.LastTrace()
	if last == nil || last.Name() != "query:temporal" {
		t.Fatalf("sampled trace = %v", last.Name())
	}
	if last.Duration() == 0 {
		t.Fatal("sampled trace has no duration")
	}

	off := obsTestEngine(t, 0)
	if _, _, err := off.TemporalRangeQuery(q); err != nil {
		t.Fatal(err)
	}
	if off.LastTrace() != nil {
		t.Fatal("sampling disabled but a trace was recorded")
	}
}
