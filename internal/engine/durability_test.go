package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// A durable engine must recover every trajectory and answer all query
// types identically after a restart.
func TestDurableEngineRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = dir
	cfg.BufferThreshold = 3 // exercise buffered raw codes across restarts

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))
	var trajs []*model.Trajectory
	for i := 0; i < 150; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%10), fmt.Sprintf("t%04d", i))
		// Cluster half the data so elements share shapes (buffer activity).
		if i%2 == 0 {
			for j := range tr.Points {
				tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.3)
				tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
			}
		}
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Rows() != 150 {
		t.Fatalf("recovered Rows = %d, want 150", e2.Rows())
	}
	for iter := 0; iter < 10; iter++ {
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + 12*3600_000}
		got, _, err := e2.TemporalRangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("recovered TRQ iter %d", iter), tids(got), tids(want))

		cx := 116 + rng.Float64()*0.3
		cy := 39.5 + rng.Float64()*0.3
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.1, MaxY: cy + 0.1}
		gotS, _, err := e2.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		var wantS []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				wantS = append(wantS, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("recovered SRQ iter %d", iter), tids(gotS), tids(wantS))
	}
}

// Writes after a checkpoint survive the next restart; the checkpoint must
// not lose buffered shape state.
func TestDurableEngineCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = dir

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(409))
	var trajs []*model.Trajectory
	for i := 0; i < 60; i++ {
		tr := genTrajectory(rng, "o", fmt.Sprintf("pre%03d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tr := genTrajectory(rng, "o", fmt.Sprintf("post%03d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Rows() != 100 {
		t.Fatalf("recovered Rows = %d, want 100", e2.Rows())
	}
	all, _, err := e2.SpatialRangeQuery(testBoundary)
	if err != nil {
		t.Fatal(err)
	}
	sameTIDs(t, "checkpoint cycle", tids(all), tids(trajs))
}

// Deletes must survive restarts (tombstones in the WAL).
func TestDurableEngineDeletePersists(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = dir

	e, _ := New(cfg)
	rng := rand.New(rand.NewSource(419))
	tr := genTrajectory(rng, "o", "victim")
	keep := genTrajectory(rng, "o", "keeper")
	e.Put(tr)
	e.Put(keep)
	if err := e.Delete(tr); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Rows() != 1 {
		t.Fatalf("recovered Rows = %d, want 1", e2.Rows())
	}
	all, _, _ := e2.SpatialRangeQuery(testBoundary)
	if len(all) != 1 || all[0].TID != "keeper" {
		t.Fatalf("recovered rows = %v", tids(all))
	}
}
