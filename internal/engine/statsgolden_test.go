package engine

import (
	"fmt"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// TestQueryReportGolden pins the per-query candidate counts and store
// counters of a seeded query workload. Candidates (RowsScanned for
// primary-direct plans, index hits for secondary plans) are the paper's
// headline I/O metric; a read-path change that alters them silently changes
// what every experiment in EXPERIMENTS.md measures.
func TestQueryReportGolden(t *testing.T) {
	cfg := testConfig()
	cfg.KV.RegionMaxBytes = 128 << 10
	cfg.KV.MemtableFlushBytes = 16 << 10
	cfg.KV.MaxRunsPerRegion = 4
	e, trajs := loadEngine(t, cfg, 1200, 99)

	type obs struct {
		plan        string
		candidates  int64
		results     int64
		rowsScanned int64
		rowsRet     int64
		seeks       int64
		rpcs        int64
	}
	var got []obs
	record := func(rep QueryReport) {
		got = append(got, obs{
			plan:        rep.Plan,
			candidates:  rep.Candidates,
			results:     int64(rep.Results),
			rowsScanned: rep.Store.RowsScanned,
			rowsRet:     rep.Store.RowsReturned,
			seeks:       rep.Store.Seeks,
			rpcs:        rep.Store.RPCs,
		})
	}

	anchor := trajs[17].Points[0]
	window := geo.Rect{
		MinX: anchor.X - 2.0, MinY: anchor.Y - 1.5,
		MaxX: anchor.X + 2.0, MaxY: anchor.Y + 1.5,
	}
	tr0 := trajs[29].TimeRange()
	trange := model.TimeRange{Start: tr0.Start - 3600_000, End: tr0.Start + 48*3600_000}

	_, rep, err := e.SpatialRangeQuery(window)
	if err != nil {
		t.Fatal(err)
	}
	record(rep)
	_, rep, err = e.TemporalRangeQuery(trange)
	if err != nil {
		t.Fatal(err)
	}
	record(rep)
	_, rep, err = e.IDTemporalQuery(trajs[41].OID, model.TimeRange{Start: trange.Start, End: trange.End + 12*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	record(rep)
	_, rep, err = e.SpatioTemporalQuery(window, model.TimeRange{Start: trange.Start, End: trange.End + 24*3600_000})
	if err != nil {
		t.Fatal(err)
	}
	record(rep)

	// Re-pinned once for block fence pruning: fenced primary blocks whose
	// bbox/time fence contradicts the query are skipped before decode, so
	// primary-direct candidates and the secondary fetches' RowsScanned
	// drop (query 0: 50 → 49; query 3's refinement fetch: 264 → 161).
	want := []obs{
		{plan: "primary:tshape", candidates: 49, results: 44, rowsScanned: 49, rowsRet: 44, seeks: 565, rpcs: 6},
		{plan: "secondary:tr", candidates: 92, results: 89, rowsScanned: 184, rowsRet: 181, seeks: 284, rpcs: 9},
		{plan: "secondary:idt", candidates: 5, results: 5, rowsScanned: 10, rowsRet: 10, seeks: 197, rpcs: 5},
		{plan: "secondary:st", candidates: 132, results: 5, rowsScanned: 161, rowsRet: 137, seeks: 324, rpcs: 9},
	}
	if len(got) != len(want) {
		t.Fatalf("recorded %d queries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if t.Failed() {
		for i, o := range got {
			t.Logf("golden[%d] = %s", i, fmt.Sprintf("%#v", o))
		}
	}
}
