package engine

import (
	"errors"
	"fmt"
	"math"

	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Row is the decoded primary-table value (the paper's Fig. 11 layout):
// object id, trajectory id, the TR index value, the exact time range, the
// DP-Features sketch, and the compressed point blob. The blob is decoded
// lazily because push-down filters usually decide on the header and
// features alone.
type Row struct {
	OID       string
	TID       string
	TRValue   uint64
	TimeRange model.TimeRange
	Features  model.DPFeatures

	pointsBlob []byte
	points     []model.Point // decoded on demand
	decoded    bool          // whether points holds the decoded blob (pooled rows reuse the buffer)
}

const rowVersion = 1

// ErrBadRow is returned when a primary-table value cannot be decoded.
var ErrBadRow = errors.New("engine: malformed row value")

// encodeRow serializes a row value. Features are stored in normalized
// coordinates (they are compared against normalized query windows); points
// are compressed in dataset coordinates.
func encodeRow(t *model.Trajectory, trValue uint64, feat model.DPFeatures) []byte {
	blob := compress.EncodePoints(t.Points)
	out := make([]byte, 0, 64+len(blob))
	out = append(out, rowVersion)
	out = compress.AppendUvarint(out, uint64(len(t.OID)))
	out = append(out, t.OID...)
	out = compress.AppendUvarint(out, uint64(len(t.TID)))
	out = append(out, t.TID...)
	tr := t.TimeRange()
	out = compress.AppendVarint(out, tr.Start)
	out = compress.AppendVarint(out, tr.End)
	out = compress.AppendUvarint(out, trValue)

	// Features: representative points then boxes, fixed-point coordinates.
	out = compress.AppendUvarint(out, uint64(len(feat.Rep)))
	for _, p := range feat.Rep {
		out = compress.AppendVarint(out, q7(p.X))
		out = compress.AppendVarint(out, q7(p.Y))
		out = compress.AppendVarint(out, p.T)
	}
	out = compress.AppendUvarint(out, uint64(len(feat.Boxes)))
	for _, b := range feat.Boxes {
		out = compress.AppendVarint(out, q7(b.MinX))
		out = compress.AppendVarint(out, q7(b.MinY))
		out = compress.AppendVarint(out, q7(b.MaxX))
		out = compress.AppendVarint(out, q7(b.MaxY))
	}
	out = compress.AppendUvarint(out, uint64(len(blob)))
	out = append(out, blob...)
	return out
}

// decodeRow parses a full row value (header + features); the point blob is
// retained unparsed.
func decodeRow(value []byte) (*Row, error) {
	r := new(Row)
	if err := decodeRowInto(r, value, true); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeRowInto parses a full row value into r, reusing r's feature slices
// (and, via Points, its point buffer) — the scratch-row hot path. On
// success every field of r is replaced; the points stay undecoded until
// Points is called. withIDs=false skips materializing the OID/TID strings
// (left empty) for predicates that never read identities, saving two
// allocations per candidate row.
func decodeRowInto(r *Row, value []byte, withIDs bool) error {
	rest, err := decodeRowHeaderInto(r, value, withIDs)
	if err != nil {
		return err
	}
	r.decoded = false

	repN, n := compress.Uvarint(rest)
	if n <= 0 {
		return ErrBadRow
	}
	rest = rest[n:]
	if repN > uint64(len(rest)) {
		return fmt.Errorf("%w: implausible rep count %d", ErrBadRow, repN)
	}
	rep := r.Features.Rep[:0]
	if cap(rep) < int(repN) {
		rep = make([]model.Point, 0, repN)
	}
	for i := uint64(0); i < repN; i++ {
		var x, y, ts int64
		if x, rest, err = readVarint(rest); err != nil {
			return err
		}
		if y, rest, err = readVarint(rest); err != nil {
			return err
		}
		if ts, rest, err = readVarint(rest); err != nil {
			return err
		}
		rep = append(rep, model.Point{X: dq7(x), Y: dq7(y), T: ts})
	}
	r.Features.Rep = rep
	boxN, n := compress.Uvarint(rest)
	if n <= 0 {
		return ErrBadRow
	}
	rest = rest[n:]
	if boxN > uint64(len(rest)) {
		return fmt.Errorf("%w: implausible box count %d", ErrBadRow, boxN)
	}
	boxes := r.Features.Boxes[:0]
	if cap(boxes) < int(boxN) {
		boxes = make([]geo.Rect, 0, boxN)
	}
	for i := uint64(0); i < boxN; i++ {
		var x1, y1, x2, y2 int64
		if x1, rest, err = readVarint(rest); err != nil {
			return err
		}
		if y1, rest, err = readVarint(rest); err != nil {
			return err
		}
		if x2, rest, err = readVarint(rest); err != nil {
			return err
		}
		if y2, rest, err = readVarint(rest); err != nil {
			return err
		}
		boxes = append(boxes, geo.Rect{MinX: dq7(x1), MinY: dq7(y1), MaxX: dq7(x2), MaxY: dq7(y2)})
	}
	r.Features.Boxes = boxes
	blobLen, n := compress.Uvarint(rest)
	if n <= 0 {
		return ErrBadRow
	}
	rest = rest[n:]
	if blobLen > uint64(len(rest)) {
		return fmt.Errorf("%w: blob length %d exceeds remaining %d", ErrBadRow, blobLen, len(rest))
	}
	r.pointsBlob = rest[:blobLen]
	return nil
}

// decodeRowHeader parses only the fixed header (oid, tid, time range, TR
// value) into a fresh row.
func decodeRowHeader(value []byte) (*Row, []byte, error) {
	r := new(Row)
	rest, err := decodeRowHeaderInto(r, value, true)
	if err != nil {
		return nil, nil, err
	}
	return r, rest, nil
}

// decodeRowHeaderInto parses the fixed header (oid, tid, time range, TR
// value) into r, returning the remainder of the value. withIDs=false skips
// the OID/TID strings.
func decodeRowHeaderInto(r *Row, value []byte, withIDs bool) ([]byte, error) {
	if len(value) < 2 || value[0] != rowVersion {
		return nil, ErrBadRow
	}
	rest := value[1:]
	var oid, tid string
	var err error
	if withIDs {
		oid, rest, err = readString(rest)
		if err != nil {
			return nil, err
		}
		tid, rest, err = readString(rest)
		if err != nil {
			return nil, err
		}
	} else {
		if rest, err = skipString(rest); err != nil {
			return nil, err
		}
		if rest, err = skipString(rest); err != nil {
			return nil, err
		}
	}
	start, rest, err := readVarint(rest)
	if err != nil {
		return nil, err
	}
	end, rest, err := readVarint(rest)
	if err != nil {
		return nil, err
	}
	trValue, n := compress.Uvarint(rest)
	if n <= 0 {
		return nil, ErrBadRow
	}
	rest = rest[n:]
	r.OID = oid
	r.TID = tid
	r.TRValue = trValue
	r.TimeRange = model.TimeRange{Start: start, End: end}
	return rest, nil
}

// rowTimeRange extracts just the exact time range from an encoded row
// value, allocation-free: the temporal push-down filter runs once per
// candidate row and needs nothing else from the header.
func rowTimeRange(value []byte) (model.TimeRange, bool) {
	if len(value) < 2 || value[0] != rowVersion {
		return model.TimeRange{}, false
	}
	rest := value[1:]
	for i := 0; i < 2; i++ { // skip oid and tid without materializing strings
		l, n := compress.Uvarint(rest)
		if n <= 0 || l > uint64(len(rest)-n) {
			return model.TimeRange{}, false
		}
		rest = rest[n+int(l):]
	}
	start, n := compress.Varint(rest)
	if n <= 0 {
		return model.TimeRange{}, false
	}
	rest = rest[n:]
	end, n := compress.Varint(rest)
	if n <= 0 {
		return model.TimeRange{}, false
	}
	return model.TimeRange{Start: start, End: end}, true
}

// Points decodes (and memoizes) the compressed point sequence. The decode
// appends into r's existing point buffer, so a pooled row reuses the same
// backing array across values.
func (r *Row) Points() ([]model.Point, error) {
	if r.decoded {
		return r.points, nil
	}
	pts, err := compress.AppendPoints(r.points[:0], r.pointsBlob)
	if err != nil {
		return nil, err
	}
	r.points = pts
	r.decoded = true
	return pts, nil
}

// Trajectory materializes the full trajectory.
func (r *Row) Trajectory() (*model.Trajectory, error) {
	pts, err := r.Points()
	if err != nil {
		return nil, err
	}
	return &model.Trajectory{OID: r.OID, TID: r.TID, Points: pts}, nil
}

func readString(b []byte) (string, []byte, error) {
	l, n := compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", nil, ErrBadRow
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

// skipString advances past a length-prefixed string without materializing it.
func skipString(b []byte) ([]byte, error) {
	l, n := compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, ErrBadRow
	}
	return b[n+int(l):], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := compress.Varint(b)
	if n <= 0 {
		return 0, nil, ErrBadRow
	}
	return v, b[n:], nil
}

// q7 quantizes a normalized coordinate at 1e-7 resolution for varint
// storage; dq7 inverts it.
func q7(v float64) int64  { return int64(math.Round(v * 1e7)) }
func dq7(q int64) float64 { return float64(q) / 1e7 }
