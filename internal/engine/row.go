package engine

import (
	"errors"
	"fmt"
	"math"

	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Row is the decoded primary-table value (the paper's Fig. 11 layout):
// object id, trajectory id, the TR index value, the exact time range, the
// DP-Features sketch, and the compressed point blob. The blob is decoded
// lazily because push-down filters usually decide on the header and
// features alone.
type Row struct {
	OID       string
	TID       string
	TRValue   uint64
	TimeRange model.TimeRange
	Features  model.DPFeatures

	pointsBlob []byte
	points     []model.Point // decoded on demand
}

const rowVersion = 1

// ErrBadRow is returned when a primary-table value cannot be decoded.
var ErrBadRow = errors.New("engine: malformed row value")

// encodeRow serializes a row value. Features are stored in normalized
// coordinates (they are compared against normalized query windows); points
// are compressed in dataset coordinates.
func encodeRow(t *model.Trajectory, trValue uint64, feat model.DPFeatures) []byte {
	blob := compress.EncodePoints(t.Points)
	out := make([]byte, 0, 64+len(blob))
	out = append(out, rowVersion)
	out = compress.AppendUvarint(out, uint64(len(t.OID)))
	out = append(out, t.OID...)
	out = compress.AppendUvarint(out, uint64(len(t.TID)))
	out = append(out, t.TID...)
	tr := t.TimeRange()
	out = compress.AppendVarint(out, tr.Start)
	out = compress.AppendVarint(out, tr.End)
	out = compress.AppendUvarint(out, trValue)

	// Features: representative points then boxes, fixed-point coordinates.
	out = compress.AppendUvarint(out, uint64(len(feat.Rep)))
	for _, p := range feat.Rep {
		out = compress.AppendVarint(out, q7(p.X))
		out = compress.AppendVarint(out, q7(p.Y))
		out = compress.AppendVarint(out, p.T)
	}
	out = compress.AppendUvarint(out, uint64(len(feat.Boxes)))
	for _, b := range feat.Boxes {
		out = compress.AppendVarint(out, q7(b.MinX))
		out = compress.AppendVarint(out, q7(b.MinY))
		out = compress.AppendVarint(out, q7(b.MaxX))
		out = compress.AppendVarint(out, q7(b.MaxY))
	}
	out = compress.AppendUvarint(out, uint64(len(blob)))
	out = append(out, blob...)
	return out
}

// decodeRow parses a full row value (header + features); the point blob is
// retained unparsed.
func decodeRow(value []byte) (*Row, error) {
	hdr, rest, err := decodeRowHeader(value)
	if err != nil {
		return nil, err
	}
	r := hdr

	repN, n := compress.Uvarint(rest)
	if n <= 0 {
		return nil, ErrBadRow
	}
	rest = rest[n:]
	if repN > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: implausible rep count %d", ErrBadRow, repN)
	}
	r.Features.Rep = make([]model.Point, repN)
	for i := range r.Features.Rep {
		var x, y, ts int64
		if x, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if y, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if ts, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		r.Features.Rep[i] = model.Point{X: dq7(x), Y: dq7(y), T: ts}
	}
	boxN, n := compress.Uvarint(rest)
	if n <= 0 {
		return nil, ErrBadRow
	}
	rest = rest[n:]
	if boxN > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: implausible box count %d", ErrBadRow, boxN)
	}
	r.Features.Boxes = make([]geo.Rect, boxN)
	for i := range r.Features.Boxes {
		var x1, y1, x2, y2 int64
		if x1, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if y1, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if x2, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if y2, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		r.Features.Boxes[i] = geo.Rect{MinX: dq7(x1), MinY: dq7(y1), MaxX: dq7(x2), MaxY: dq7(y2)}
	}
	blobLen, n := compress.Uvarint(rest)
	if n <= 0 {
		return nil, ErrBadRow
	}
	rest = rest[n:]
	if blobLen > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: blob length %d exceeds remaining %d", ErrBadRow, blobLen, len(rest))
	}
	r.pointsBlob = rest[:blobLen]
	return r, nil
}

// decodeRowHeader parses only the fixed header (oid, tid, time range, TR
// value) — the fast path used by the temporal push-down filter.
func decodeRowHeader(value []byte) (*Row, []byte, error) {
	if len(value) < 2 || value[0] != rowVersion {
		return nil, nil, ErrBadRow
	}
	rest := value[1:]
	oid, rest, err := readString(rest)
	if err != nil {
		return nil, nil, err
	}
	tid, rest, err := readString(rest)
	if err != nil {
		return nil, nil, err
	}
	start, rest, err := readVarint(rest)
	if err != nil {
		return nil, nil, err
	}
	end, rest, err := readVarint(rest)
	if err != nil {
		return nil, nil, err
	}
	trValue, n := compress.Uvarint(rest)
	if n <= 0 {
		return nil, nil, ErrBadRow
	}
	rest = rest[n:]
	return &Row{
		OID:       oid,
		TID:       tid,
		TRValue:   trValue,
		TimeRange: model.TimeRange{Start: start, End: end},
	}, rest, nil
}

// Points decodes (and memoizes) the compressed point sequence.
func (r *Row) Points() ([]model.Point, error) {
	if r.points != nil {
		return r.points, nil
	}
	pts, err := compress.DecodePoints(r.pointsBlob)
	if err != nil {
		return nil, err
	}
	r.points = pts
	return pts, nil
}

// Trajectory materializes the full trajectory.
func (r *Row) Trajectory() (*model.Trajectory, error) {
	pts, err := r.Points()
	if err != nil {
		return nil, err
	}
	return &model.Trajectory{OID: r.OID, TID: r.TID, Points: pts}, nil
}

func readString(b []byte) (string, []byte, error) {
	l, n := compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", nil, ErrBadRow
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := compress.Varint(b)
	if n <= 0 {
		return 0, nil, ErrBadRow
	}
	return v, b[n:], nil
}

// q7 quantizes a normalized coordinate at 1e-7 resolution for varint
// storage; dq7 inverts it.
func q7(v float64) int64  { return int64(math.Round(v * 1e7)) }
func dq7(q int64) float64 { return float64(q) / 1e7 }
