package engine

import (
	"bytes"
	"context"
	"sort"
	"time"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/idt"
	"github.com/tman-db/tman/internal/index/st"
	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// QueryReport describes one executed query: which plan ran, how many
// candidates the index produced, and how much work the store did. The
// Candidates field is the paper's "number of retrievals / visited
// candidates" metric.
//
// Under fault injection or a context deadline a query can degrade instead of
// failing: Partial marks a result that is a correct subset of the full
// answer (some region scans were abandoned after exhausting retries or
// running out of deadline), RetriedRPCs counts client retries the query
// performed, and FailedRegions counts region scan tasks that contributed no
// rows.
type QueryReport struct {
	Plan       string
	Windows    int
	Candidates int64
	Results    int
	Elapsed    time.Duration
	Store      kvstore.Snapshot // store counter diff for this query

	Partial       bool
	RetriedRPCs   int64
	FailedRegions int
	// FollowerReads counts region scans this query served from follower
	// replicas under its staleness bound (see kvstore.WithReadPref).
	FollowerReads int64
}

// absorb folds one scan's fault/retry outcome into the report.
func (r *QueryReport) absorb(st kvstore.ScanStatus) {
	r.Partial = r.Partial || st.Partial
	r.RetriedRPCs += st.RetriedRPCs
	r.FailedRegions += st.FailedRegions
	r.FollowerReads += st.FollowerReads
}

// primaryWindows converts spatial value ranges into primary-table key
// ranges across all shards.
func (e *Engine) primaryWindows(ranges []valueRange) []kvstore.KeyRange {
	out := make([]kvstore.KeyRange, 0, len(ranges)*e.cfg.Shards)
	for s := 0; s < e.cfg.Shards; s++ {
		for _, r := range ranges {
			start, end := codec.RangeForIndexValues(byte(s), r.lo, r.hi)
			out = append(out, kvstore.KeyRange{Start: start, End: end})
		}
	}
	return out
}

// secondaryWindows converts raw index-component byte ranges into
// secondary-table key ranges across all shards.
func (e *Engine) secondaryWindows(ranges [][2][]byte) []kvstore.KeyRange {
	out := make([]kvstore.KeyRange, 0, len(ranges)*e.cfg.Shards)
	for s := 0; s < e.cfg.Shards; s++ {
		for _, r := range ranges {
			start := append([]byte{byte(s)}, r[0]...)
			end := append([]byte{byte(s)}, r[1]...)
			out = append(out, kvstore.KeyRange{Start: start, End: end})
		}
	}
	return out
}

// spatialRanges produces candidate spatial value intervals for a normalized
// window with the configured spatial index, memoized per exact window. A
// cached TShape plan is valid only while the shape state (directory +
// buffer) it was computed from is current — see planCache. The returned
// slice is shared read-only plan state.
func (e *Engine) spatialRanges(nsr geo.Rect) []valueRange {
	if e.plans != nil {
		if rs, ok := e.plans.spatialGet(nsr); ok {
			return rs
		}
	}
	var epoch int64
	if e.plans != nil {
		epoch = e.plans.epoch.Load()
	}
	out := e.spatialRangesUncached(nsr)
	if e.plans != nil {
		e.plans.spatialPut(nsr, epoch, out)
	}
	return out
}

// spatialRangesUncached runs the configured spatial index directly; TShape
// element enumeration fans out across the engine worker budget for large
// windows.
func (e *Engine) spatialRangesUncached(nsr geo.Rect) []valueRange {
	if e.cfg.Spatial == KindXZ2 {
		rs := e.xzIdx.QueryRanges(nsr)
		out := make([]valueRange, len(rs))
		for i, r := range rs {
			out[i] = valueRange{lo: r.Lo, hi: r.Hi}
		}
		return out
	}
	rs, _ := e.tsIdx.QueryRangesParallel(nsr, e.provider(), e.rangeWorkers)
	out := make([]valueRange, len(rs))
	for i, r := range rs {
		out[i] = valueRange{lo: r.Lo, hi: r.Hi}
	}
	return out
}

// temporalFilter builds a push-down filter that keeps rows whose exact time
// range intersects q (reading only the time range, allocation-free). The
// returned filter carries a fence verdict: block fences store the exact
// min/max of the rows' closed time ranges, so a fence disjoint from q
// proves no row in the block intersects (skip the block unread) and a
// fence contained in q proves every row does (decode without per-row
// checks).
func temporalFilter(q model.TimeRange) kvstore.Filter {
	return temporalFenceFilter{q: q}
}

type temporalFenceFilter struct{ q model.TimeRange }

func (f temporalFenceFilter) Accept(_, value []byte) bool {
	tr, ok := rowTimeRange(value)
	return ok && tr.Intersects(f.q)
}

func (f temporalFenceFilter) FenceVerdict(fc kvstore.Fence) kvstore.BlockVerdict {
	if fc.MaxT < f.q.Start || fc.MinT > f.q.End {
		return kvstore.VerdictSkip
	}
	if fc.MinT >= f.q.Start && fc.MaxT <= f.q.End {
		// Every row's [Start, End] lies inside the fence, hence inside q,
		// so Intersects holds row-by-row. A fence-valid block also
		// guarantees every row decoded during fence extraction, so Accept
		// could not reject on a decode failure either.
		return kvstore.VerdictAcceptAll
	}
	return kvstore.VerdictInspect
}

// spatialFilter builds a push-down filter that keeps rows intersecting the
// normalized window: the DP-Features sketch rejects cheaply, then the exact
// geometry decides. Candidates are decoded into a pooled scratch row that
// never escapes the callback. The filter's fence verdict compares the
// block's bounding box (the union of its rows' sketch MBRs) against the
// window: disjoint skips the block before any fetch, containment accepts
// every row via the same MBR fast path Accept itself would take.
func (e *Engine) spatialFilter(nsr geo.Rect) kvstore.Filter {
	return spatialFenceFilter{e: e, nsr: nsr}
}

type spatialFenceFilter struct {
	e   *Engine
	nsr geo.Rect
}

func (f spatialFenceFilter) Accept(_, value []byte) bool {
	row := getScratchRow()
	defer putScratchRow(row)
	// Geometry never reads identities; skip the OID/TID string allocs.
	if err := decodeRowInto(row, value, false); err != nil {
		return false
	}
	return f.e.rowIntersects(row, f.nsr)
}

func (f spatialFenceFilter) FenceVerdict(fc kvstore.Fence) kvstore.BlockVerdict {
	return spatialVerdict(fc, f.nsr)
}

// spatialVerdict maps a block fence against a normalized window. The fence
// bbox is the union of the rows' sketch MBRs, and the sketch
// over-approximates each trajectory: a disjoint fence means no sketch (and
// hence no trajectory) can touch the window, a contained fence means every
// sketch lies inside it, which is exactly the containment fast path of
// rowIntersects.
func spatialVerdict(fc kvstore.Fence, nsr geo.Rect) kvstore.BlockVerdict {
	fb := geo.Rect{MinX: fc.MinX, MinY: fc.MinY, MaxX: fc.MaxX, MaxY: fc.MaxY}
	if !fb.Intersects(nsr) {
		return kvstore.VerdictSkip
	}
	if nsr.Contains(fb) {
		return kvstore.VerdictAcceptAll
	}
	return kvstore.VerdictInspect
}

// rowIntersects checks a decoded row against a normalized window: sketch
// first, exact points second.
func (e *Engine) rowIntersects(row *Row, nsr geo.Rect) bool {
	if !row.Features.MayIntersect(nsr) {
		return false
	}
	if nsr.Contains(row.Features.MBR()) {
		// The sketch covers the whole trajectory, so a window containing
		// the entire sketch contains the trajectory — no need to decode
		// the points for the exact check.
		return true
	}
	pts, err := row.Points()
	if err != nil {
		return false
	}
	dsr := e.space.DenormalizeRect(nsr)
	t := model.Trajectory{Points: pts}
	return t.IntersectsRect(dsr)
}

// TemporalRangeQuery returns all trajectories whose time range intersects
// q (paper Section V-B). With a temporal primary table the query scans the
// primary directly with a push-down temporal filter; otherwise it resolves
// candidates through the TR secondary.
func (e *Engine) TemporalRangeQuery(q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	return e.TemporalRangeQueryCtx(context.Background(), q)
}

// TemporalRangeQueryCtx is TemporalRangeQuery under a context: a deadline
// degrades the answer to a Partial subset, cancellation aborts with an
// error, and per-RPC faults are retried per the store's RetryPolicy.
func (e *Engine) TemporalRangeQueryCtx(ctx context.Context, q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{}
	ctx, qspan, sampled := e.beginQuery(ctx, qTemporal)
	defer func() { e.endQuery(qTemporal, qspan, sampled, &report) }()
	if !q.Valid() {
		report.Plan = "secondary:" + e.cfg.Temporal.String()
		return nil, report, nil
	}

	planSpan := qspan.StartChild("plan")
	ranges := e.temporalRanges(q)
	planSpan.End()
	var rows []*Row
	if e.cfg.primaryIsTemporal() {
		report.Plan = "primary:" + e.cfg.Temporal.String()
		windows := e.primaryWindows(ranges)
		report.Windows = len(windows)
		filter := temporalFilter(q)
		if !e.cfg.PushDown {
			filter = nil
		}
		kvs, status, err := e.primary.ScanRangesCtx(ctx, windows, filter, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		if e.cfg.PushDown {
			rows = decodeAll(kvs)
		} else {
			for _, kv := range kvs {
				row, err := decodeRow(kv.Value)
				if err != nil {
					continue
				}
				if _, err := row.Points(); err != nil {
					continue
				}
				if row.TimeRange.Intersects(q) {
					rows = append(rows, row)
				}
			}
		}
		report.Candidates = kvstore.Diff(before, e.store.Stats().Snapshot()).RowsScanned
	} else {
		report.Plan = "secondary:" + e.cfg.Temporal.String()
		byteRanges := make([][2][]byte, len(ranges))
		for i, r := range ranges {
			byteRanges[i] = uint64ByteRange(r)
		}
		windows := e.secondaryWindows(byteRanges)
		report.Windows = len(windows)
		keys, status, err := e.trTable.ScanRangesCtx(ctx, windows, nil, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		report.Candidates = int64(len(keys))
		rows, err = e.fetchRows(ctx, keys, &report, func(row *Row) bool {
			return row.TimeRange.Intersects(q)
		}, temporalFenceFilter{q: q}.FenceVerdict)
		if err != nil {
			return nil, report, err
		}
	}
	out, err := materialize(rows)
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, err
}

// uint64ByteRange converts a closed value interval into a half-open byte
// range over 8-byte big-endian components.
func uint64ByteRange(r valueRange) [2][]byte {
	lo := codec.AppendUint64(nil, r.lo)
	var hi []byte
	if r.hi == ^uint64(0) {
		hi = append(codec.AppendUint64(nil, r.hi), 0xFF)
	} else {
		hi = codec.AppendUint64(nil, r.hi+1)
	}
	return [2][]byte{lo, hi}
}

// SpatialRangeQuery returns all trajectories intersecting the dataset-
// coordinate window sr (paper Section V-C). With a spatial primary table
// the query scans the primary directly with a push-down spatial filter;
// otherwise it resolves candidates through the spatial secondary.
func (e *Engine) SpatialRangeQuery(sr geo.Rect) ([]*model.Trajectory, QueryReport, error) {
	return e.SpatialRangeQueryCtx(context.Background(), sr)
}

// SpatialRangeQueryCtx is SpatialRangeQuery under a context (deadline →
// partial results, cancel → error, faults retried).
func (e *Engine) SpatialRangeQueryCtx(ctx context.Context, sr geo.Rect) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{}
	ctx, qspan, sampled := e.beginQuery(ctx, qSpatial)
	defer func() { e.endQuery(qSpatial, qspan, sampled, &report) }()
	if !sr.Valid() {
		report.Plan = "primary:" + e.cfg.Spatial.String()
		return nil, report, nil
	}
	nsr := e.space.NormalizeRect(sr)
	planSpan := qspan.StartChild("plan")
	ranges := e.spatialRanges(nsr)
	planSpan.End()

	var rows []*Row
	if e.cfg.primaryIsTemporal() {
		report.Plan = "secondary:" + e.cfg.Spatial.String()
		byteRanges := make([][2][]byte, len(ranges))
		for i, r := range ranges {
			byteRanges[i] = uint64ByteRange(r)
		}
		windows := e.secondaryWindows(byteRanges)
		report.Windows = len(windows)
		keys, status, err := e.spTable.ScanRangesCtx(ctx, windows, nil, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		report.Candidates = int64(len(keys))
		rows, err = e.fetchRows(ctx, keys, &report, func(row *Row) bool {
			return e.rowIntersects(row, nsr)
		}, func(fc kvstore.Fence) kvstore.BlockVerdict {
			return spatialVerdict(fc, nsr)
		})
		if err != nil {
			return nil, report, err
		}
	} else {
		report.Plan = "primary:" + e.cfg.Spatial.String()
		windows := e.primaryWindows(ranges)
		report.Windows = len(windows)
		if e.cfg.PushDown {
			kvs, status, err := e.primary.ScanRangesCtx(ctx, windows, e.spatialFilter(nsr), 0)
			report.absorb(status)
			if err != nil {
				return nil, report, err
			}
			rows = decodeAll(kvs)
		} else {
			// Client-side filtering: every candidate row is transferred and
			// decoded before the spatial check (the TrajMesa execution
			// model).
			kvs, status, err := e.primary.ScanRangesCtx(ctx, windows, nil, 0)
			report.absorb(status)
			if err != nil {
				return nil, report, err
			}
			for _, kv := range kvs {
				row, err := decodeRow(kv.Value)
				if err != nil {
					continue
				}
				if _, err := row.Points(); err != nil {
					continue
				}
				if e.rowIntersects(row, nsr) {
					rows = append(rows, row)
				}
			}
		}
		report.Candidates = kvstore.Diff(before, e.store.Stats().Snapshot()).RowsScanned
	}
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	out, err := materialize(rows)
	report.Results = len(out)
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, err
}

// IDTemporalQuery returns the trajectories of one object intersecting a
// time range (paper Section V-D).
func (e *Engine) IDTemporalQuery(oid string, q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	return e.IDTemporalQueryCtx(context.Background(), oid, q)
}

// IDTemporalQueryCtx is IDTemporalQuery under a context (deadline →
// partial results, cancel → error, faults retried).
func (e *Engine) IDTemporalQueryCtx(ctx context.Context, oid string, q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{Plan: "secondary:idt"}
	ctx, qspan, sampled := e.beginQuery(ctx, qObject)
	defer func() { e.endQuery(qObject, qspan, sampled, &report) }()
	if !q.Valid() || oid == "" {
		return nil, report, nil
	}
	planSpan := qspan.StartChild("plan")
	ranges := e.temporalRanges(q)
	planSpan.End()
	byteRanges := make([][2][]byte, len(ranges))
	for i, r := range ranges {
		lo := idt.Key(oid, r.lo)
		var hi []byte
		if r.hi == ^uint64(0) {
			hi = append(idt.Key(oid, r.hi), 0xFF)
		} else {
			hi = idt.Key(oid, r.hi+1)
		}
		byteRanges[i] = [2][]byte{lo, hi}
	}
	windows := e.secondaryWindows(byteRanges)
	report.Windows = len(windows)

	keys, status, err := e.idtTable.ScanRangesCtx(ctx, windows, nil, 0)
	report.absorb(status)
	if err != nil {
		return nil, report, err
	}
	report.Candidates = int64(len(keys))

	rows, err := e.fetchRows(ctx, keys, &report, func(row *Row) bool {
		return row.OID == oid && row.TimeRange.Intersects(q)
	}, func(fc kvstore.Fence) kvstore.BlockVerdict {
		// A time-disjoint fence proves no row matches; containment proves
		// nothing here because the OID equality still has to run per row.
		if fc.MaxT < q.Start || fc.MinT > q.End {
			return kvstore.VerdictSkip
		}
		return kvstore.VerdictInspect
	})
	if err != nil {
		return nil, report, err
	}
	out, err := materialize(rows)
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, err
}

// SpatioTemporalQuery returns trajectories intersecting both a spatial
// window and a time range (paper Section V-E). The CBO picks among three
// plans: the ST secondary index, the spatial primary with a temporal
// push-down filter, or the TR secondary with spatial refinement.
func (e *Engine) SpatioTemporalQuery(sr geo.Rect, q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	return e.SpatioTemporalQueryCtx(context.Background(), sr, q)
}

// SpatioTemporalQueryCtx is SpatioTemporalQuery under a context (deadline →
// partial results, cancel → error, faults retried).
func (e *Engine) SpatioTemporalQueryCtx(ctx context.Context, sr geo.Rect, q model.TimeRange) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{}
	ctx, qspan, sampled := e.beginQuery(ctx, qSpaceTime)
	defer func() { e.endQuery(qSpaceTime, qspan, sampled, &report) }()
	if !sr.Valid() || !q.Valid() {
		return nil, report, nil
	}
	nsr := e.space.NormalizeRect(sr)

	planSpan := qspan.StartChild("plan")
	plan := e.chooseSTPlan(nsr, q)
	planSpan.End()
	report.Plan = plan

	var rows []*Row
	switch plan {
	case "secondary:st":
		trRanges := make([]tr.ValueRange, 0)
		for _, r := range e.temporalRanges(q) {
			trRanges = append(trRanges, tr.ValueRange{Lo: r.lo, Hi: r.hi})
		}
		tsRanges := e.stSpatialRanges(nsr)
		byteRanges := make([][2][]byte, 0)
		for _, br := range st.QueryRanges(trRanges, tsRanges, e.cfg.WindowBudget) {
			byteRanges = append(byteRanges, [2][]byte{br.Start, br.End})
		}
		windows := e.secondaryWindows(byteRanges)
		report.Windows = len(windows)
		keys, status, err := e.stTable.ScanRangesCtx(ctx, windows, stIndexFenceFilter{q: q, nsr: nsr}, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		report.Candidates = int64(len(keys))
		rows, err = e.fetchRows(ctx, keys, &report, func(row *Row) bool {
			return row.TimeRange.Intersects(q) && e.rowIntersectsLoaded(row, nsr)
		}, func(fc kvstore.Fence) kvstore.BlockVerdict {
			return stVerdict(fc, q, nsr)
		})
		if err != nil {
			return nil, report, err
		}
	case "primary:spatial+tfilter", "primary:temporal+sfilter":
		// Scan the primary directly with the other dimension pushed down.
		var ranges []valueRange
		if e.cfg.primaryIsTemporal() {
			ranges = e.temporalRanges(q)
		} else {
			ranges = e.spatialRanges(nsr)
		}
		windows := e.primaryWindows(ranges)
		report.Windows = len(windows)
		filter := kvstore.Chain(temporalFilter(q), e.spatialFilter(nsr))
		if !e.cfg.PushDown {
			filter = nil
		}
		kvs, status, err := e.primary.ScanRangesCtx(ctx, windows, filter, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		if e.cfg.PushDown {
			rows = decodeAll(kvs)
		} else {
			for _, kv := range kvs {
				row, err := decodeRow(kv.Value)
				if err != nil {
					continue
				}
				if row.TimeRange.Intersects(q) && e.rowIntersects(row, nsr) {
					rows = append(rows, row)
				}
			}
		}
		report.Candidates = kvstore.Diff(before, e.store.Stats().Snapshot()).RowsScanned
	default: // "secondary:tr+sfilter" / "secondary:sp+tfilter"
		// Use the secondary of the non-primary family, refine both
		// dimensions while fetching.
		var ranges []valueRange
		table := e.trTable
		if e.cfg.primaryIsTemporal() {
			ranges = e.spatialRanges(nsr)
			table = e.spTable
		} else {
			ranges = e.temporalRanges(q)
		}
		byteRanges := make([][2][]byte, len(ranges))
		for i, r := range ranges {
			byteRanges[i] = uint64ByteRange(r)
		}
		windows := e.secondaryWindows(byteRanges)
		report.Windows = len(windows)
		keys, status, err := table.ScanRangesCtx(ctx, windows, nil, 0)
		report.absorb(status)
		if err != nil {
			return nil, report, err
		}
		report.Candidates = int64(len(keys))
		rows, err = e.fetchRows(ctx, keys, &report, func(row *Row) bool {
			return row.TimeRange.Intersects(q) && e.rowIntersectsLoaded(row, nsr)
		}, func(fc kvstore.Fence) kvstore.BlockVerdict {
			return stVerdict(fc, q, nsr)
		})
		if err != nil {
			return nil, report, err
		}
	}
	out, err := materialize(rows)
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, err
}

// rowIntersectsLoaded is rowIntersects for rows already fetched (points may
// need decoding, identical semantics).
func (e *Engine) rowIntersectsLoaded(row *Row, nsr geo.Rect) bool {
	return e.rowIntersects(row, nsr)
}

// stSpatialRanges produces the spatial component intervals for the ST
// secondary index, regardless of the configured primary spatial family.
// Both spatial families generate the same intervals here as spatialRanges
// does, so this shares its per-window memoization instead of re-running the
// enumeration.
func (e *Engine) stSpatialRanges(nsr geo.Rect) []tshape.ValueRange {
	rs := e.spatialRanges(nsr)
	out := make([]tshape.ValueRange, len(rs))
	for i, r := range rs {
		out[i] = tshape.ValueRange{Lo: r.lo, Hi: r.hi}
	}
	return out
}

// fencedKeepFilter is the push-down form of a fetchRows refinement
// predicate that also carries a block-fence verdict, letting the batched
// candidate fetch skip (or wholesale-accept) primary blocks before
// fetching and decoding them.
type fencedKeepFilter struct {
	keep    func(*Row) bool
	verdict func(kvstore.Fence) kvstore.BlockVerdict
}

func (f fencedKeepFilter) Accept(_, value []byte) bool {
	row := getScratchRow()
	defer putScratchRow(row)
	if err := decodeRowInto(row, value, true); err != nil {
		return false
	}
	return f.keep(row)
}

func (f fencedKeepFilter) FenceVerdict(fc kvstore.Fence) kvstore.BlockVerdict {
	return f.verdict(fc)
}

// stIndexFenceFilter prunes ST index blocks during the secondary:st scan.
// The scan windows over-approximate whenever the window budget collapses
// the spatial dimension (the coarse fallback in st.QueryRanges), so block
// fences — unions of TR-bin intervals and element rectangles, each a
// superset of its trajectory's extent — can rule out whole index blocks
// the windows admit. A skipped block cannot hide a matching trajectory:
// every entry of such a trajectory carries a fence that intersects the
// query, so its block never verdicts Skip. Accept keeps every surviving
// entry; exact refinement happens later against the fetched rows.
type stIndexFenceFilter struct {
	q   model.TimeRange
	nsr geo.Rect
}

func (f stIndexFenceFilter) Accept(_, _ []byte) bool { return true }

func (f stIndexFenceFilter) FenceVerdict(fc kvstore.Fence) kvstore.BlockVerdict {
	if stVerdict(fc, f.q, f.nsr) == kvstore.VerdictSkip {
		return kvstore.VerdictSkip
	}
	return kvstore.VerdictInspect
}

// stVerdict is the fence verdict of a combined space+time refinement:
// either dimension alone can prove a block empty of matches (Skip), and
// only both together can prove every row matches (AcceptAll).
func stVerdict(fc kvstore.Fence, q model.TimeRange, nsr geo.Rect) kvstore.BlockVerdict {
	tv := temporalFenceFilter{q: q}.FenceVerdict(fc)
	if tv == kvstore.VerdictSkip {
		return kvstore.VerdictSkip
	}
	sv := spatialVerdict(fc, nsr)
	if sv == kvstore.VerdictSkip {
		return kvstore.VerdictSkip
	}
	if tv == kvstore.VerdictAcceptAll && sv == kvstore.VerdictAcceptAll {
		return kvstore.VerdictAcceptAll
	}
	return kvstore.VerdictInspect
}

// fetchRows resolves secondary-index hits (values = primary keys) into
// decoded rows, applying the refinement predicate. Per the paper's
// Section V-G(1), candidate keys become query windows executed as one
// batched multi-range scan on the primary table; with push-down enabled the
// refinement runs store-side so rejected rows are never transferred. A
// non-nil verdict gives the push-down filter fence support so primary
// blocks whose fences contradict the predicate are skipped unread. Fault
// and deadline outcomes of the batched fetch are folded into report.
func (e *Engine) fetchRows(ctx context.Context, hits []kvstore.KV, report *QueryReport, keep func(*Row) bool, verdict func(kvstore.Fence) kvstore.BlockVerdict) ([]*Row, error) {
	if len(hits) == 0 {
		return nil, nil
	}
	keys := make([][]byte, 0, len(hits))
	for _, h := range hits {
		keys = append(keys, h.Value)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	windows := make([]kvstore.KeyRange, 0, len(keys))
	for i, k := range keys {
		if i > 0 && bytes.Equal(k, keys[i-1]) {
			continue
		}
		end := make([]byte, len(k)+1)
		copy(end, k) // end = key + 0x00: the immediate successor
		windows = append(windows, kvstore.KeyRange{Start: k, End: end})
	}

	var filter kvstore.Filter
	if e.cfg.PushDown && keep != nil {
		if verdict != nil {
			filter = fencedKeepFilter{keep: keep, verdict: verdict}
		} else {
			filter = kvstore.FilterFunc(func(_, value []byte) bool {
				row := getScratchRow()
				defer putScratchRow(row)
				if err := decodeRowInto(row, value, true); err != nil {
					return false
				}
				return keep(row)
			})
		}
	}
	kvs, status, err := e.primary.ScanRangesCtx(ctx, windows, filter, 0)
	report.absorb(status)
	if err != nil {
		return nil, err
	}
	rows := make([]*Row, 0, len(kvs))
	for _, kv := range kvs {
		row, err := decodeRow(kv.Value)
		if err != nil {
			continue
		}
		if filter == nil && keep != nil && !keep(row) {
			continue
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func decodeAll(kvs []kvstore.KV) []*Row {
	out := make([]*Row, 0, len(kvs))
	for _, kv := range kvs {
		row, err := decodeRow(kv.Value)
		if err != nil {
			continue
		}
		out = append(out, row)
	}
	return out
}

func materialize(rows []*Row) ([]*model.Trajectory, error) {
	out := make([]*model.Trajectory, 0, len(rows))
	seen := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		if _, dup := seen[r.TID]; dup {
			continue
		}
		seen[r.TID] = struct{}{}
		t, err := r.Trajectory()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// chooseSTPlan is the cost-based optimizer for spatio-temporal queries: it
// estimates the candidate row count of each plan from index selectivities
// and picks the cheapest (paper Section V-A).
func (e *Engine) chooseSTPlan(nsr geo.Rect, q model.TimeRange) string {
	rows := float64(e.rows.Load())
	if rows == 0 {
		return "secondary:st"
	}
	tSel := e.temporalSelectivity(q)
	sSel := e.spatialSelectivity(nsr)

	costSpatial := rows * sSel  // spatial-index candidates
	costTemporal := rows * tSel // temporal-index candidates
	// The ST composite touches the intersection but pays per-window seek
	// overhead; the factor penalizes tiny workloads where window setup
	// dominates.
	costST := rows * tSel * sSel * 4

	primaryPlan := "primary:spatial+tfilter"
	secondaryPlan := "secondary:tr+sfilter"
	costPrimary, costSecondary := costSpatial, costTemporal
	if e.cfg.primaryIsTemporal() {
		primaryPlan = "primary:temporal+sfilter"
		secondaryPlan = "secondary:sp+tfilter"
		costPrimary, costSecondary = costTemporal, costSpatial
	}
	switch {
	case costST <= costPrimary && costST <= costSecondary:
		return "secondary:st"
	case costPrimary <= costSecondary:
		return primaryPlan
	default:
		return secondaryPlan
	}
}

// temporalSelectivity estimates the fraction of rows a temporal range
// touches from the observed TR value extent.
func (e *Engine) temporalSelectivity(q model.TimeRange) float64 {
	if !e.trSeen.Load() {
		return 1
	}
	lo, hi := e.minTR.Load(), e.maxTR.Load()
	if hi <= lo {
		return 1
	}
	var covered uint64
	for _, r := range e.temporalRanges(q) {
		covered += r.hi - r.lo + 1
	}
	frac := float64(covered) / float64(hi-lo+1)
	if frac > 1 {
		return 1
	}
	if frac < 1e-6 {
		return 1e-6
	}
	return frac
}

// spatialSelectivity estimates the fraction of rows a normalized window
// touches from its area (trajectory extents add a smoothing floor).
func (e *Engine) spatialSelectivity(nsr geo.Rect) float64 {
	frac := nsr.Area()
	// Windows also catch trajectories overlapping their border; widen by a
	// typical trajectory extent (one cell at median resolution).
	frac += 2 * (nsr.Width() + nsr.Height()) * 0.01
	if frac > 1 {
		return 1
	}
	if frac < 1e-6 {
		return 1e-6
	}
	return frac
}

// RangeCount is a helper for benchmarks: candidate index values of a
// temporal query under the configured temporal index.
func (e *Engine) TemporalCandidateValues(q model.TimeRange) uint64 {
	var total uint64
	for _, r := range e.temporalRanges(q) {
		total += r.hi - r.lo + 1
	}
	return total
}

// SpatialCandidateStats exposes the Algorithm 2 statistics for a dataset-
// coordinate window (benchmark support).
func (e *Engine) SpatialCandidateStats(sr geo.Rect) (uint64, tshape.QueryStats) {
	nsr := e.space.NormalizeRect(sr)
	if e.cfg.Spatial == KindXZ2 {
		rs := e.xzIdx.QueryRanges(nsr)
		var total uint64
		for _, r := range rs {
			total += r.Hi - r.Lo + 1
		}
		return total, tshape.QueryStats{}
	}
	rs, stats := e.tsIdx.QueryRanges(nsr, e.provider())
	return tshape.CandidateValues(rs), stats
}
