package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

// fenceTestConfig shrinks flush/block geometry so the fence-pruning tests
// produce many runs of many blocks each from modest datasets.
func fenceTestConfig(disableFences bool) Config {
	cfg := testConfig()
	cfg.KV.MemtableFlushBytes = 16 << 10
	cfg.KV.RegionMaxBytes = 128 << 10
	cfg.KV.BlockSizeBytes = 1 << 10
	cfg.KV.DisableBlockFences = disableFences
	return cfg
}

// loadSkewedEngine ingests a clustered workload: trajectories live in one
// of four spatial hotspots, and each hotspot moves in its own disjoint time
// epoch. Spatial key order therefore clusters blocks by hotspot while their
// time fences separate by epoch — the regime where zone maps prune hardest
// (querying hotspot A during hotspot B's epoch should touch almost
// nothing).
func loadSkewedEngine(t *testing.T, cfg Config, n int, seed int64) (*Engine, []*model.Trajectory) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]*model.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		tr := genSkewedTrajectory(rng, i%4, fmt.Sprintf("obj-%d", i%25), fmt.Sprintf("traj-%05d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return e, trajs
}

// fenceHotspot returns the center of spatial cluster c and the start of its
// time epoch (epochs are a year apart — far beyond any query window).
func fenceHotspot(c int) (x, y float64, epoch int64) {
	centers := [4][2]float64{{112, 36.5}, {122.5, 43.5}, {113, 43}, {123, 36}}
	return centers[c][0], centers[c][1], 1_500_000_000_000 + int64(c)*365*24*3600_000
}

func genSkewedTrajectory(rng *rand.Rand, cluster int, oid, tid string) *model.Trajectory {
	cx, cy, epoch := fenceHotspot(cluster)
	n := 5 + rng.Intn(40)
	pts := make([]model.Point, n)
	x := cx + (rng.Float64()-0.5)*0.5
	y := cy + (rng.Float64()-0.5)*0.5
	ts := epoch + rng.Int63n(20*24*3600_000)
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.02
		y += (rng.Float64() - 0.5) * 0.02
		ts += 30_000 + rng.Int63n(120_000)
		pts[i] = model.Point{X: x, Y: y, T: ts}
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}
}

// TestFencePruneSixQueryEquivalence runs all six paper query types against
// a fenced engine and a fence-disabled twin over the identical skewed
// dataset, and demands identical answers — while the fenced engine must
// actually have skipped blocks. Windows deliberately mix matching and
// mismatching hotspot/epoch pairs so Skip, AcceptAll and Inspect verdicts
// all fire.
func TestFencePruneSixQueryEquivalence(t *testing.T) {
	fe, trajs := loadSkewedEngine(t, fenceTestConfig(false), 900, 7)
	pe, _ := loadSkewedEngine(t, fenceTestConfig(true), 900, 7)

	check := func(label string, a, b []*model.Trajectory, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errors %v / %v", label, err1, err2)
		}
		sameTIDs(t, label, tids(a), tids(b))
	}

	day := int64(24 * 3600_000)
	for c := 0; c < 4; c++ {
		cx, cy, epoch := fenceHotspot(c)
		_, _, otherEpoch := fenceHotspot((c + 1) % 4)
		box := geo.Rect{MinX: cx - 0.4, MinY: cy - 0.4, MaxX: cx + 0.4, MaxY: cy + 0.4}
		win := model.TimeRange{Start: epoch, End: epoch + 25*day}
		missWin := model.TimeRange{Start: otherEpoch, End: otherEpoch + 25*day}

		ga, _, e1 := fe.SpatialRangeQuery(box)
		gb, _, e2 := pe.SpatialRangeQuery(box)
		check(fmt.Sprintf("spatial c%d", c), ga, gb, e1, e2)

		ga, _, e1 = fe.TemporalRangeQuery(win)
		gb, _, e2 = pe.TemporalRangeQuery(win)
		check(fmt.Sprintf("temporal c%d", c), ga, gb, e1, e2)

		oid := fmt.Sprintf("obj-%d", c*5)
		ga, _, e1 = fe.IDTemporalQuery(oid, win)
		gb, _, e2 = pe.IDTemporalQuery(oid, win)
		check(fmt.Sprintf("idt c%d", c), ga, gb, e1, e2)

		for _, w := range []model.TimeRange{win, missWin} {
			ga, _, e1 = fe.SpatioTemporalQuery(box, w)
			gb, _, e2 = pe.SpatioTemporalQuery(box, w)
			check(fmt.Sprintf("st c%d [%d..]", c, w.Start), ga, gb, e1, e2)
		}

		ga, _, e1 = fe.NearestQuery(cx, cy, 7)
		gb, _, e2 = pe.NearestQuery(cx, cy, 7)
		check(fmt.Sprintf("knn c%d", c), ga, gb, e1, e2)

		q := trajs[c*17]
		ga, _, e1 = fe.SimilarityTopKQuery(q, similarity.Hausdorff, 5)
		gb, _, e2 = pe.SimilarityTopKQuery(q, similarity.Hausdorff, 5)
		check(fmt.Sprintf("simtopk c%d", c), ga, gb, e1, e2)
	}

	fs := fe.Store().Stats().Snapshot()
	if fs.BlocksSkipped == 0 {
		t.Fatal("fenced engine skipped no blocks across the whole workload")
	}
	if fs.FenceBytesRead == 0 {
		t.Fatal("fenced engine consulted no fence bytes")
	}
	ps := pe.Store().Stats().Snapshot()
	if ps.BlocksSkipped != 0 || ps.FenceBytesRead != 0 {
		t.Fatalf("fence-disabled engine pruned: skipped=%d fenceBytes=%d", ps.BlocksSkipped, ps.FenceBytesRead)
	}
	if fs.RowsScanned >= ps.RowsScanned {
		t.Fatalf("fenced engine visited %d rows, unfenced %d — pruning bought nothing", fs.RowsScanned, ps.RowsScanned)
	}
}

// TestFenceChargedByteReduction pins the acceptance criterion: on
// cold-cache spatio-temporal scans over the skewed dataset, fences must cut
// the charged disk bytes (encoded block reads plus the fence metadata
// consulted) by at least 30% against the fence-disabled twin, after full
// compaction (single-run regions, every block skippable).
func TestFenceChargedByteReduction(t *testing.T) {
	mk := func(disable bool) *Engine {
		cfg := fenceTestConfig(disable)
		cfg.KV.BlockCacheBytes = -1 // cold cache: every block read is charged
		e, _ := loadSkewedEngine(t, cfg, 900, 7)
		e.Store().CompactAll()
		return e
	}
	fe, pe := mk(false), mk(true)

	day := int64(24 * 3600_000)
	charged := func(e *Engine) int64 {
		before := e.Store().Stats().Snapshot()
		for c := 0; c < 4; c++ {
			cx, cy, epoch := fenceHotspot(c)
			_, _, otherEpoch := fenceHotspot((c + 1) % 4)
			box := geo.Rect{MinX: cx - 0.4, MinY: cy - 0.4, MaxX: cx + 0.4, MaxY: cy + 0.4}
			for _, w := range []model.TimeRange{
				{Start: epoch, End: epoch + 25*day},           // matching epoch
				{Start: otherEpoch, End: otherEpoch + 25*day}, // disjoint epoch
			} {
				if _, _, err := e.SpatioTemporalQuery(box, w); err != nil {
					t.Fatal(err)
				}
			}
		}
		d := kvstore.Diff(before, e.Store().Stats().Snapshot())
		return d.BlockReadBytes + d.FenceBytesRead
	}

	fb, pb := charged(fe), charged(pe)
	if fb == 0 || pb == 0 {
		t.Fatalf("charged bytes fenced=%d unfenced=%d — scans read nothing", fb, pb)
	}
	reduction := 100 * (1 - float64(fb)/float64(pb))
	t.Logf("cold ST charged bytes: fenced=%d unfenced=%d (%.1f%% reduction)", fb, pb, reduction)
	if reduction < 30 {
		t.Fatalf("charged-byte reduction %.1f%% < 30%%: fenced=%d unfenced=%d", reduction, fb, pb)
	}
}
