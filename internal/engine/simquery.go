package engine

import (
	"container/heap"
	"context"
	"math"
	"time"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

// SimilarityThresholdQuery returns all trajectories within distance theta
// of the query trajectory under the chosen measure (paper Section V-F).
// theta is expressed in normalized units — a fraction of the dataset
// boundary, matching the paper's θ = 0.015 convention — and distances are
// computed on normalized coordinates.
//
// The TraSS-style execution is: global pruning with TShape candidates of
// the query MBR expanded by theta, a local filter with MBR and DP-Features
// lower bounds, then exact distance computation.
func (e *Engine) SimilarityThresholdQuery(query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, QueryReport, error) {
	return e.SimilarityThresholdQueryCtx(context.Background(), query, m, theta)
}

// SimilarityThresholdQueryCtx is SimilarityThresholdQuery under a context
// (deadline → partial results, cancel → error, faults retried).
func (e *Engine) SimilarityThresholdQueryCtx(ctx context.Context, query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{Plan: "similarity:threshold:" + m.String()}
	ctx, qspan, sampled := e.beginQuery(ctx, qSimilar)
	defer func() { e.endQuery(qSimilar, qspan, sampled, &report) }()
	if err := query.Validate(); err != nil {
		return nil, report, err
	}
	nq := e.normalizePoints(query.Points)
	nmbr := boundsOfPoints(nq)

	// Global pruning: only trajectories whose geometry comes within theta
	// of the query can qualify (true for Fréchet and Hausdorff; for DTW the
	// bound is conservative since DTW >= max matched pair >= min distance).
	// The MBR and DP-Features lower bounds are pushed down as the paper's
	// similarity filter, so pruned rows never leave the storage layer.
	window := nmbr.Expand(theta)
	rows, err := e.candidateRows(ctx, window, &report, func(row *Row) bool {
		if similarity.MBRLowerBound(nmbr, row.Features.MBR()) > theta {
			return false
		}
		if similarity.EndpointLowerBound(m, nq, row.Features.Rep) > theta {
			return false
		}
		return similarity.FeatureLowerBound(nq, row.Features) <= theta
	})
	if err != nil {
		return nil, report, err
	}

	var out []*model.Trajectory
	for _, row := range rows {
		pts, err := row.Points()
		if err != nil {
			continue
		}
		npts := e.normalizePoints(pts)
		if similarity.Distance(m, nq, npts) <= theta {
			out = append(out, &model.Trajectory{OID: row.OID, TID: row.TID, Points: pts})
		}
	}
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, nil
}

// SimilarityTopKQuery returns the k trajectories closest to the query
// under the chosen measure, excluding the query's own TID if stored.
// It expands the search window geometrically until the k-th best distance
// is no larger than the guaranteed-covered radius.
func (e *Engine) SimilarityTopKQuery(query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, QueryReport, error) {
	return e.SimilarityTopKQueryCtx(context.Background(), query, m, k)
}

// SimilarityTopKQueryCtx is SimilarityTopKQuery under a context. On
// deadline expiry the expansion loop stops early and returns the best
// results found so far with Partial set.
func (e *Engine) SimilarityTopKQueryCtx(ctx context.Context, query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{Plan: "similarity:topk:" + m.String()}
	ctx, qspan, sampled := e.beginQuery(ctx, qSimilar)
	defer func() { e.endQuery(qSimilar, qspan, sampled, &report) }()
	if err := query.Validate(); err != nil {
		return nil, report, err
	}
	if k <= 0 {
		return nil, report, nil
	}
	nq := e.normalizePoints(query.Points)
	nmbr := boundsOfPoints(nq)

	h := &topkHeap{}
	heap.Init(h)
	seen := map[string]struct{}{}
	radius := 0.01
	for {
		if kvstore.DeadlineExceeded(ctx) {
			report.Partial = true
			break
		}
		window := nmbr.Expand(radius)
		// Push down the feature lower bound at the current radius: rows
		// farther than the guaranteed-covered radius are re-examined on
		// the next (doubled) expansion if still needed.
		rows, err := e.candidateRows(ctx, window, &report, func(row *Row) bool {
			return similarity.FeatureLowerBound(nq, row.Features) <= radius
		})
		if err != nil {
			return nil, report, err
		}
		for _, row := range rows {
			if row.TID == query.TID {
				continue
			}
			if _, dup := seen[row.TID]; dup {
				continue
			}
			bound := math.Inf(1)
			if h.Len() == k {
				bound = (*h)[0].dist
			}
			if similarity.MBRLowerBound(nmbr, row.Features.MBR()) > bound {
				continue
			}
			if similarity.EndpointLowerBound(m, nq, row.Features.Rep) > bound {
				continue
			}
			if similarity.FeatureLowerBound(nq, row.Features) > bound {
				continue
			}
			pts, err := row.Points()
			if err != nil {
				continue
			}
			seen[row.TID] = struct{}{}
			d := similarity.Distance(m, nq, e.normalizePoints(pts))
			if h.Len() < k {
				heap.Push(h, topkEntry{dist: d, row: row})
			} else if d < (*h)[0].dist {
				(*h)[0] = topkEntry{dist: d, row: row}
				heap.Fix(h, 0)
			}
		}
		// Termination: the window guarantees every trajectory within
		// `radius` was examined; if we have k results all within radius,
		// nothing outside can beat them. Also stop once the window covers
		// the whole space.
		if h.Len() == k && (*h)[0].dist <= radius {
			break
		}
		if window.Contains(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
			break
		}
		radius *= 2
	}

	out := make([]*model.Trajectory, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		ent := heap.Pop(h).(topkEntry)
		pts, err := ent.row.Points()
		if err != nil {
			continue
		}
		out[i] = &model.Trajectory{OID: ent.row.OID, TID: ent.row.TID, Points: pts}
	}
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, nil
}

// candidateRows runs the spatial candidate machinery for a normalized
// window and returns decoded rows without exact geometric refinement (the
// similarity filters refine instead). The DP-Features sketch prunes rows
// that cannot touch the window; extra (if non-nil) is an additional
// push-down predicate — the paper's similarity filter in the filter chain.
// With a temporal primary, candidates resolve through the spatial
// secondary instead.
func (e *Engine) candidateRows(ctx context.Context, nsr geo.Rect, report *QueryReport, extra func(*Row) bool) ([]*Row, error) {
	clamped := geo.Rect{
		MinX: math.Max(nsr.MinX, 0), MinY: math.Max(nsr.MinY, 0),
		MaxX: math.Min(nsr.MaxX, 1), MaxY: math.Min(nsr.MaxY, 1),
	}
	keep := func(row *Row) bool {
		if !row.Features.MayIntersect(clamped) {
			return false
		}
		return extra == nil || extra(row)
	}
	// Fence verdict for the candidate sweep: a block whose bbox misses the
	// window cannot hold a candidate (the sketch over-approximates every
	// trajectory), so it is skipped unread. Wholesale acceptance is only
	// sound without an extra predicate — the similarity filter still has to
	// see each row.
	verdict := func(fc kvstore.Fence) kvstore.BlockVerdict {
		switch v := spatialVerdict(fc, clamped); {
		case v == kvstore.VerdictSkip:
			return kvstore.VerdictSkip
		case v == kvstore.VerdictAcceptAll && extra == nil:
			return kvstore.VerdictAcceptAll
		}
		return kvstore.VerdictInspect
	}
	ranges := e.spatialRanges(clamped)

	if e.cfg.primaryIsTemporal() {
		byteRanges := make([][2][]byte, len(ranges))
		for i, r := range ranges {
			byteRanges[i] = uint64ByteRange(r)
		}
		windows := e.secondaryWindows(byteRanges)
		report.Windows += len(windows)
		keys, status, err := e.spTable.ScanRangesCtx(ctx, windows, nil, 0)
		report.absorb(status)
		if err != nil {
			return nil, err
		}
		report.Candidates += int64(len(keys))
		return e.fetchRows(ctx, keys, report, keep, verdict)
	}

	windows := e.primaryWindows(ranges)
	report.Windows += len(windows)
	filter := fencedKeepFilter{keep: keep, verdict: verdict}
	if e.cfg.PushDown {
		scanned, status, err := e.primary.ScanRangesCtx(ctx, windows, filter, 0)
		report.absorb(status)
		if err != nil {
			return nil, err
		}
		rows := decodeAll(scanned)
		report.Candidates += int64(len(scanned))
		return rows, nil
	}
	scanned, status, err := e.primary.ScanRangesCtx(ctx, windows, nil, 0)
	report.absorb(status)
	if err != nil {
		return nil, err
	}
	report.Candidates += int64(len(scanned))
	out := make([]*Row, 0, len(scanned))
	for _, kv := range scanned {
		row, err := decodeRow(kv.Value)
		if err != nil {
			continue
		}
		if keep(row) {
			out = append(out, row)
		}
	}
	return out, nil
}

func (e *Engine) normalizePoints(pts []model.Point) []model.Point {
	out := make([]model.Point, len(pts))
	for i, p := range pts {
		x, y := e.space.Normalize(p.X, p.Y)
		out[i] = model.Point{X: x, Y: y, T: p.T}
	}
	return out
}

func boundsOfPoints(pts []model.Point) geo.Rect {
	r := geo.Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}

// topkHeap is a max-heap on distance (root = current worst of the best k).
type topkEntry struct {
	dist float64
	row  *Row
}

type topkHeap []topkEntry

func (h topkHeap) Len() int            { return len(h) }
func (h topkHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h topkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x interface{}) { *h = append(*h, x.(topkEntry)) }
func (h *topkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
