package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// Corrupt primary rows (disk damage, partial writes) must be skipped by
// every query path, never crash or surface garbage.
func TestCorruptRowsAreSkipped(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 100, 211)
	// Inject corrupt rows straight into the primary table at keys inside
	// real candidate ranges.
	victim := trajs[0]
	spatial := e.spatialValue(victim)
	shard := codec.ShardOf("corrupt", e.cfg.Shards)
	e.primary.Put(codec.PrimaryKey(shard, spatial, "corrupt-a"), []byte{0xFF, 0x00, 0x13})
	e.primary.Put(codec.PrimaryKey(shard, spatial, "corrupt-b"), nil)

	got, _, err := e.SpatialRangeQuery(victim.MBR())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		if g.TID == "corrupt-a" || g.TID == "corrupt-b" {
			t.Fatal("corrupt row surfaced as a result")
		}
	}
	// The real trajectory must still be found despite its corrupt
	// neighbours.
	found := false
	for _, g := range got {
		if g.TID == victim.TID {
			found = true
		}
	}
	if !found {
		t.Error("victim trajectory lost next to corrupt rows")
	}
}

// A tiny LFU capacity forces eviction storms; queries must stay correct
// because the persistent directory backs every miss.
func TestCacheEvictionStormCorrectness(t *testing.T) {
	cfg := testConfig()
	cfg.CacheCapacity = 2 // pathological
	cfg.BufferThreshold = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(223))
	var trajs []*model.Trajectory
	for i := 0; i < 200; i++ {
		tr := genTrajectory(rng, "o", fmt.Sprintf("t%04d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	stats := e.CacheStats()
	if stats.Evictions == 0 {
		t.Log("no evictions observed (elements may be few); continuing")
	}
	for iter := 0; iter < 10; iter++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}
		got, _, err := e.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("eviction-storm iter %d", iter), tids(got), tids(want))
	}
}

// ST window budget: a tiny budget forces the coarse fallback; results must
// not change.
func TestSTWindowBudgetFallback(t *testing.T) {
	small := testConfig()
	small.WindowBudget = 2 // force coarse windows

	big := testConfig()
	big.WindowBudget = 100000

	eSmall, trajs := loadEngine(t, small, 200, 227)
	eBig, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		if err := eBig.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(229))
	for iter := 0; iter < 10; iter++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 1, MaxY: cy + 1}
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + 12*3600_000}
		a, _, err := eSmall.SpatioTemporalQuery(sr, q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := eBig.SpatioTemporalQuery(sr, q)
		if err != nil {
			t.Fatal(err)
		}
		sameTIDs(t, fmt.Sprintf("budget iter %d", iter), tids(a), tids(b))
	}
}

// The CBO must pick sensible plans at the extremes: a tiny time range with
// a huge window should prefer a temporal plan; a tiny window with a huge
// time range should prefer a spatial plan.
func TestCBOPlanSelectionExtremes(t *testing.T) {
	e, _ := loadEngine(t, testConfig(), 300, 233)
	nsrHuge := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	nsrTiny := geo.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5001, MaxY: 0.5001}
	qTiny := model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 60_000}
	qHuge := model.TimeRange{Start: 1_400_000_000_000, End: 1_700_000_000_000}

	if plan := e.chooseSTPlan(nsrHuge, qTiny); plan == "primary:spatial+tfilter" {
		t.Errorf("huge window + tiny range chose %q; spatial scan would read everything", plan)
	}
	if plan := e.chooseSTPlan(nsrTiny, qHuge); plan == "secondary:tr+sfilter" {
		t.Errorf("tiny window + huge range chose %q; temporal scan would read everything", plan)
	}
}

// QueryReport bookkeeping: plans, windows, candidates and store diffs are
// populated consistently.
func TestQueryReportsPopulated(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 150, 239)
	q := trajs[0].TimeRange()
	_, rep, err := e.TemporalRangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == "" || rep.Windows == 0 || rep.Elapsed <= 0 {
		t.Errorf("TRQ report incomplete: %+v", rep)
	}
	if rep.Store.Seeks == 0 || rep.Store.RPCs == 0 {
		t.Errorf("store diff empty: %+v", rep.Store)
	}
	if rep.Candidates < int64(rep.Results) {
		t.Errorf("candidates %d < results %d", rep.Candidates, rep.Results)
	}

	_, rep, err = e.SpatialRangeQuery(trajs[0].MBR())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan != "primary:tshape" {
		t.Errorf("SRQ plan = %q", rep.Plan)
	}
	if rep.Store.RowsScanned < rep.Store.RowsReturned {
		t.Errorf("scanned %d < returned %d", rep.Store.RowsScanned, rep.Store.RowsReturned)
	}
}

// Duplicate TID overwrite: re-putting a trajectory with the same TID must
// not duplicate results.
func TestPutSameTIDOverwrites(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 20, 241)
	victim := trajs[3]
	if err := e.Put(victim); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.SpatialRangeQuery(victim.MBR())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, g := range got {
		if g.TID == victim.TID {
			count++
		}
	}
	if count != 1 {
		t.Errorf("trajectory appears %d times after re-put", count)
	}
}

// The engine over a no-network store must behave identically (pure CPU).
func TestNoNetworkConfigAgrees(t *testing.T) {
	cfg := testConfig()
	cfg.KV = kvstore.NoNetworkOptions()
	e, trajs := loadEngine(t, cfg, 100, 251)
	q := trajs[0].TimeRange()
	got, rep, err := e.TemporalRangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Store.SimIONanos != 0 {
		t.Errorf("no-network config accrued %d simulated nanos", rep.Store.SimIONanos)
	}
	found := false
	for _, g := range got {
		if g.TID == trajs[0].TID {
			found = true
		}
	}
	if !found {
		t.Error("query lost the probe trajectory")
	}
}

// The full ablation cross: XZ2 spatial + XZT temporal together must still
// agree with the default configuration.
func TestCombinedBaselineIndexesAgree(t *testing.T) {
	base := testConfig()
	combo := testConfig()
	combo.Spatial = KindXZ2
	combo.Temporal = KindXZT

	eBase, trajs := loadEngine(t, base, 200, 257)
	eCombo, err := New(combo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		if err := eCombo.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(263))
	for iter := 0; iter < 8; iter++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + 6*3600_000}

		a, _, _ := eBase.SpatioTemporalQuery(sr, q)
		b, _, _ := eCombo.SpatioTemporalQuery(sr, q)
		sameTIDs(t, fmt.Sprintf("combo STRQ iter %d", iter), tids(b), tids(a))
		at, _, _ := eBase.TemporalRangeQuery(q)
		bt, _, _ := eCombo.TemporalRangeQuery(q)
		sameTIDs(t, fmt.Sprintf("combo TRQ iter %d", iter), tids(bt), tids(at))
		as, _, _ := eBase.SpatialRangeQuery(sr)
		bs, _, _ := eCombo.SpatialRangeQuery(sr)
		sameTIDs(t, fmt.Sprintf("combo SRQ iter %d", iter), tids(bs), tids(as))
	}
}

// Deleting a trajectory that was never stored must be an idempotent no-op:
// no tombstones, no row-count drift.
func TestDeleteMissingIsNoOp(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 10, 269)
	ghost := trajs[0].Clone()
	ghost.TID = "never-stored"
	if err := e.Delete(ghost); err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 10 {
		t.Fatalf("Rows = %d after deleting a ghost, want 10", e.Rows())
	}
	// Double delete of a real trajectory only counts once.
	if err := e.Delete(trajs[1]); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(trajs[1]); err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 9 {
		t.Fatalf("Rows = %d after double delete, want 9", e.Rows())
	}
}
