package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/model"
)

// Engine-level ingest benchmarks: the full trajectory write path — feature
// extraction, point compression, index-value resolution, and the four table
// writes — sequential Put versus BatchPut. Run via `make bench-write`.

func buildIngestTrajs(n int) []*model.Trajectory {
	rng := rand.New(rand.NewSource(9))
	trajs := make([]*model.Trajectory, n)
	for i := range trajs {
		trajs[i] = genTrajectory(rng, fmt.Sprintf("obj-%d", i%40), fmt.Sprintf("traj-%05d", i))
	}
	return trajs
}

func benchmarkEngineIngest(b *testing.B, batched bool) {
	cfg := testConfig()
	cfg.KV.RPCLatencyMicros = 0
	cfg.KV.TransferMBps = 0
	cfg.KV.DiskMBps = 0
	trajs := buildIngestTrajs(1000)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if batched {
			if err := e.BatchPut(trajs); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, tr := range trajs {
				if err := e.Put(tr); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if e.Rows() != int64(len(trajs)) {
			b.Fatalf("Rows = %d, want %d", e.Rows(), len(trajs))
		}
		e.Close()
		b.StartTimer()
	}
}

func BenchmarkEngineIngestSequential(b *testing.B) { benchmarkEngineIngest(b, false) }
func BenchmarkEngineIngestBatched(b *testing.B)    { benchmarkEngineIngest(b, true) }
