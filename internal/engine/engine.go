package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tman-db/tman/internal/cache"
	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/idt"
	"github.com/tman-db/tman/internal/index/st"
	"github.com/tman-db/tman/internal/index/tr"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/index/xz2"
	"github.com/tman-db/tman/internal/index/xzt"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// Table names within the KV store.
const (
	tablePrimary   = "primary"
	tableTR        = "sec_tr"
	tableSP        = "sec_sp"
	tableIDT       = "sec_idt"
	tableST        = "sec_st"
	tableShapeDir  = "shapedir"
	tableBufShapes = "bufshapes"
	tableMeta      = "meta"
)

// Engine is the TMan storage and query engine over an embedded KV store.
type Engine struct {
	cfg   Config
	store *kvstore.Store
	space *geo.Space

	trIdx  *tr.Index
	xztIdx *xzt.Index
	tsIdx  *tshape.Index
	xzIdx  *xz2.Index

	primary  *kvstore.Table
	trTable  *kvstore.Table
	spTable  *kvstore.Table // spatial secondary, used when the primary is temporal
	idtTable *kvstore.Table
	stTable  *kvstore.Table
	dirTable *kvstore.Table
	bufTable *kvstore.Table // persisted buffer-shape state (recovery)
	meta     *kvstore.Table

	icache *cache.IndexCache
	buffer *cache.BufferShapeCache
	plans  *planCache // memoized query ranges; nil when disabled

	// rangeWorkers is the worker budget for parallel TShape element
	// enumeration (the store's scan parallelism).
	rangeWorkers int

	reencodeMu sync.Mutex // serializes per-element re-encoding
	rows       atomic.Int64
	reencodes  atomic.Int64

	// Observed TR value extent, used by the CBO's temporal selectivity
	// estimate.
	minTR, maxTR atomic.Int64
	trSeen       atomic.Bool

	met *engineMetrics
}

// New creates an engine with its own KV store. With Config.DataDir set the
// store is durable and any previous state under that directory is
// recovered.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	space, err := geo.NewSpace(cfg.Boundary)
	if err != nil {
		return nil, err
	}
	var store *kvstore.Store
	if cfg.DataDir != "" {
		store, err = kvstore.OpenDir(cfg.DataDir, cfg.KV)
		if err != nil {
			return nil, err
		}
	} else {
		store = kvstore.Open(cfg.KV)
	}
	e := &Engine{cfg: cfg, space: space, store: store}

	e.trIdx, err = tr.New(cfg.PeriodMillis, cfg.N)
	if err != nil {
		return nil, err
	}
	if cfg.Temporal == KindXZT {
		e.xztIdx, err = xzt.New(cfg.XZTPeriodMillis, cfg.XZTG)
		if err != nil {
			return nil, err
		}
	}
	e.tsIdx, err = tshape.New(tshape.Params{Alpha: cfg.Alpha, Beta: cfg.Beta, G: cfg.G}, space)
	if err != nil {
		return nil, err
	}
	if cfg.Spatial == KindXZ2 {
		e.xzIdx = xz2.New(cfg.G)
	}

	// OpenTable is idempotent: on a recovered store the tables already
	// exist with their data.
	e.primary = e.store.OpenTable(tablePrimary)
	e.trTable = e.store.OpenTable(tableTR)
	e.spTable = e.store.OpenTable(tableSP)
	e.idtTable = e.store.OpenTable(tableIDT)
	e.stTable = e.store.OpenTable(tableST)
	e.dirTable = e.store.OpenTable(tableShapeDir)
	e.bufTable = e.store.OpenTable(tableBufShapes)
	e.meta = e.store.OpenTable(tableMeta)
	// Primary rows carry a decodable time range and sketch bbox, so their
	// run blocks get fences and fence-aware push-down filters can prune
	// whole blocks. The ST secondary gets key-derived fences (bin interval
	// × element rectangle): its query windows coarsen under the window
	// budget, and fences recover the pruning the collapsed spatial
	// dimension gave up. The other secondaries keep plain runs — their
	// windows are already exact at index granularity. No-op under
	// DisableBlockFormat/DisableBlockFences.
	e.primary.SetFenceExtractor(rowFence)
	e.stTable.SetFenceExtractor(e.stIndexFence)

	if cfg.UseIndexCache && cfg.Spatial == KindTShape {
		e.icache = cache.NewIndexCacheSharded(cfg.CacheCapacity, cfg.CacheShards, newKVDirectory(e.dirTable))
		e.buffer = cache.NewBufferShapeCache(cfg.BufferThreshold)
	}
	if cfg.PlanCacheSize > 0 {
		e.plans = newPlanCache(cfg.PlanCacheSize)
	}
	e.rangeWorkers = cfg.KV.Parallelism
	if e.rangeWorkers <= 0 {
		e.rangeWorkers = kvstore.DefaultOptions().Parallelism
	}
	e.met = newEngineMetrics(e)
	if cfg.DataDir != "" {
		if err := e.recoverState(); err != nil {
			return nil, err
		}
	}
	e.writeMeta()
	return e, nil
}

// recoverState rebuilds in-memory bookkeeping from recovered tables: the
// row count, the observed TR value extent, and the buffered (not yet
// re-encoded) shapes that keep raw-coded rows reachable by queries.
func (e *Engine) recoverState() error {
	rows := e.primary.Scan(nil, nil, nil, 0)
	e.rows.Store(int64(len(rows)))
	for _, kv := range rows {
		hdr, _, err := decodeRowHeader(kv.Value)
		if err != nil {
			continue
		}
		e.observeTR(hdr.TRValue)
	}
	if e.buffer != nil {
		for _, kv := range e.bufTable.Scan(nil, nil, nil, 0) {
			if len(kv.Key) != 16 {
				continue
			}
			elem, _ := codec.Uint64(kv.Key)
			bits, _ := codec.Uint64(kv.Key[8:])
			// Re-adding may cross the threshold; re-encode immediately so
			// the recovered state converges.
			if e.buffer.Add(elem, bits) {
				e.reencodeElement(elem)
			}
		}
	}
	return nil
}

// Close flushes durable state (no-op for in-memory engines).
func (e *Engine) Close() error { return e.store.Close() }

// Checkpoint snapshots a durable store and truncates its WAL.
func (e *Engine) Checkpoint() error { return e.store.Checkpoint() }

// writeMeta records index parameters in the metadata table (paper
// Section IV-B(4)).
func (e *Engine) writeMeta() {
	put := func(k, v string) { e.meta.Put([]byte(k), []byte(v)) }
	put("spatial", e.cfg.Spatial.String())
	put("temporal", e.cfg.Temporal.String())
	put("alpha", fmt.Sprint(e.cfg.Alpha))
	put("beta", fmt.Sprint(e.cfg.Beta))
	put("g", fmt.Sprint(e.cfg.G))
	put("period_ms", fmt.Sprint(e.cfg.PeriodMillis))
	put("n", fmt.Sprint(e.cfg.N))
	put("encoding", e.cfg.Encoding.String())
	put("shards", fmt.Sprint(e.cfg.Shards))
}

// Meta returns a recorded metadata entry.
func (e *Engine) Meta(key string) (string, bool) {
	v, ok := e.meta.Get([]byte(key))
	return string(v), ok
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Space returns the normalization space.
func (e *Engine) Space() *geo.Space { return e.space }

// Store exposes the underlying KV store (stats, table inspection).
func (e *Engine) Store() *kvstore.Store { return e.store }

// Rows returns the number of stored trajectories.
func (e *Engine) Rows() int64 { return e.rows.Load() }

// Reencodes returns how many element re-encode passes have run.
func (e *Engine) Reencodes() int64 { return e.reencodes.Load() }

// CacheStats returns index-cache counters (zero when the cache is off).
func (e *Engine) CacheStats() cache.CacheStats {
	if e.icache == nil {
		return cache.CacheStats{}
	}
	return e.icache.Stats()
}

// PlanCacheStats returns plan-cache counters (zero when disabled).
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.stats()
}

// ResetQueryPathStats zeroes the index-cache and plan-cache counters so
// back-to-back benchmark phases read clean deltas. Cached entries survive.
func (e *Engine) ResetQueryPathStats() {
	if e.icache != nil {
		e.icache.ResetStats()
	}
	if e.plans != nil {
		e.plans.resetStats()
	}
}

// bumpPlanEpoch invalidates memoized spatial plans. It must run after every
// shape-state mutation queries can observe: a raw shape entering the buffer
// (provider output changes) or a re-encode replacing final codes (the
// stale-plan-after-reencode correctness hazard).
func (e *Engine) bumpPlanEpoch() {
	if e.plans != nil {
		e.plans.bump()
	}
}

// temporalValue encodes a time range with the configured temporal index.
func (e *Engine) temporalValue(trng model.TimeRange) uint64 {
	if e.cfg.Temporal == KindXZT {
		return e.xztIdx.Encode(trng)
	}
	return e.trIdx.Encode(trng)
}

// temporalRanges produces candidate value intervals for a query range,
// memoized per exact range: TR/XZT range generation is a pure function of
// static index parameters, so entries never expire. The returned slice is
// shared read-only plan state.
func (e *Engine) temporalRanges(q model.TimeRange) []valueRange {
	if e.plans != nil {
		if rs, ok := e.plans.temporalGet(q); ok {
			return rs
		}
	}
	out := e.temporalRangesUncached(q)
	if e.plans != nil {
		e.plans.temporalPut(q, out)
	}
	return out
}

// temporalRangesUncached runs the configured temporal index directly.
func (e *Engine) temporalRangesUncached(q model.TimeRange) []valueRange {
	if e.cfg.Temporal == KindXZT {
		rs := e.xztIdx.QueryRanges(q)
		out := make([]valueRange, len(rs))
		for i, r := range rs {
			out[i] = valueRange{lo: r.Lo, hi: r.Hi}
		}
		return out
	}
	rs := e.trIdx.QueryRanges(q)
	out := make([]valueRange, len(rs))
	for i, r := range rs {
		out[i] = valueRange{lo: r.Lo, hi: r.Hi}
	}
	return out
}

// valueRange is a closed index-value interval, index-family agnostic.
type valueRange struct{ lo, hi uint64 }

// spatialValue computes the primary index value of a trajectory, resolving
// the shape code through the index cache / buffer cache when enabled.
func (e *Engine) spatialValue(t *model.Trajectory) uint64 {
	if e.cfg.Spatial == KindXZ2 {
		return e.xzIdx.Encode(e.space.NormalizeRect(t.MBR()))
	}
	elem, bits := e.tsIdx.EncodeRaw(t)
	return e.tsIdx.Pack(elem, e.resolveShapeCode(elem, bits))
}

// resolveShapeCode maps raw shape bits to the stored code per the update
// protocol of Section IV-C: optimized final code when the directory knows
// the shape, otherwise the raw bitmap (buffered for the next re-encode).
func (e *Engine) resolveShapeCode(elem, bits uint64) uint64 {
	if e.icache == nil {
		return bits
	}
	for _, s := range e.icache.Shapes(elem) {
		if s.Bits == bits {
			return s.Code
		}
	}
	if e.buffer.Contains(elem, bits) {
		return bits
	}
	e.bufTable.Put(bufShapeKey(elem, bits), nil)
	// A newly buffered raw shape changes what the shape provider reports
	// for this element; memoized spatial plans are stale from here on.
	defer e.bumpPlanEpoch()
	if e.buffer.Add(elem, bits) {
		e.reencodeElement(elem)
		// After re-encoding the directory knows this shape.
		for _, s := range e.icache.Shapes(elem) {
			if s.Bits == bits {
				return s.Code
			}
		}
	}
	return bits
}

// bufShapeKey addresses one buffered (not yet re-encoded) shape.
func bufShapeKey(elem, bits uint64) []byte {
	k := codec.AppendUint64(nil, elem)
	return codec.AppendUint64(k, bits)
}

// Put stores one trajectory, updating primary and secondary tables.
func (e *Engine) Put(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return e.putEncoded(t, e.temporalValue(t.TimeRange()), e.spatialValue(t))
}

// putEncoded writes a trajectory whose index values are already resolved.
func (e *Engine) putEncoded(t *model.Trajectory, trValue, spatial uint64) error {
	feat := e.normalizedFeatures(t)
	shard := codec.ShardOf(t.TID, e.cfg.Shards)
	primaryVal := spatial
	if e.cfg.primaryIsTemporal() {
		primaryVal = trValue
	}
	pk := codec.PrimaryKey(shard, primaryVal, t.TID)
	e.primary.Put(pk, encodeRow(t, trValue, feat))

	// Secondary tables map back to the primary row key; the family serving
	// as the primary index needs no secondary of its own.
	if e.cfg.primaryIsTemporal() {
		e.spTable.Put(codec.SecondaryKey(shard, codec.AppendUint64(nil, spatial), t.TID), pk)
	} else {
		e.trTable.Put(codec.SecondaryKey(shard, codec.AppendUint64(nil, trValue), t.TID), pk)
	}
	e.idtTable.Put(codec.SecondaryKey(shard, idt.Key(t.OID, trValue), t.TID), pk)
	e.stTable.Put(codec.SecondaryKey(shard, st.Key(trValue, spatial), t.TID), pk)

	e.rows.Add(1)
	e.observeTR(trValue)
	return nil
}

// BatchPut stores many trajectories through the batched write path:
//
//  1. every trajectory is validated up front (an invalid row rejects the
//     whole batch before anything is written);
//  2. index values are resolved — for TShape with the index cache enabled
//     this keeps the update protocol of Section IV-C, grouping rows by
//     quadrant code so each group resolves its shape codes with one
//     directory access and at most one re-encode;
//  3. row values are encoded in parallel (point compression and DP-Feature
//     extraction are the CPU hot spot of ingest);
//  4. rows land as one MultiPut per KV table — primary plus each secondary
//     index — so the store charges one cost-model RPC per region batch and
//     group-commits each table batch to the WAL.
func (e *Engine) BatchPut(ts []*model.Trajectory) error {
	if len(ts) == 0 {
		return nil
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("engine: batch put %s: %w", t.TID, err)
		}
	}
	trVals := make([]uint64, len(ts))
	for i, t := range ts {
		trVals[i] = e.temporalValue(t.TimeRange())
	}
	spVals, err := e.resolveBatchSpatial(ts)
	if err != nil {
		return err
	}

	encoded := e.encodeBatchRows(ts, trVals)

	temporalPrimary := e.cfg.primaryIsTemporal()
	primaryRows := make([]kvstore.KV, len(ts))
	secRows := make([]kvstore.KV, len(ts)) // spatial or TR secondary, whichever isn't primary
	idtRows := make([]kvstore.KV, len(ts))
	stRows := make([]kvstore.KV, len(ts))
	for i, t := range ts {
		shard := codec.ShardOf(t.TID, e.cfg.Shards)
		primaryVal := spVals[i]
		if temporalPrimary {
			primaryVal = trVals[i]
		}
		pk := codec.PrimaryKey(shard, primaryVal, t.TID)
		primaryRows[i] = kvstore.KV{Key: pk, Value: encoded[i]}
		if temporalPrimary {
			secRows[i] = kvstore.KV{Key: codec.SecondaryKey(shard, codec.AppendUint64(nil, spVals[i]), t.TID), Value: pk}
		} else {
			secRows[i] = kvstore.KV{Key: codec.SecondaryKey(shard, codec.AppendUint64(nil, trVals[i]), t.TID), Value: pk}
		}
		idtRows[i] = kvstore.KV{Key: codec.SecondaryKey(shard, idt.Key(t.OID, trVals[i]), t.TID), Value: pk}
		stRows[i] = kvstore.KV{Key: codec.SecondaryKey(shard, st.Key(trVals[i], spVals[i]), t.TID), Value: pk}
	}
	e.primary.MultiPut(primaryRows)
	if temporalPrimary {
		e.spTable.MultiPut(secRows)
	} else {
		e.trTable.MultiPut(secRows)
	}
	e.idtTable.MultiPut(idtRows)
	e.stTable.MultiPut(stRows)

	e.rows.Add(int64(len(ts)))
	for _, v := range trVals {
		e.observeTR(v)
	}
	return nil
}

// resolveBatchSpatial computes the spatial index value of every (already
// validated) trajectory. With TShape and the index cache on, rows group by
// enlarged element so buffer adds and the potential re-encode of a group
// happen once, before any of the batch's rows are written; re-encodes are
// per-element, so resolving all groups before writing is equivalent to the
// sequential group-by-group protocol.
func (e *Engine) resolveBatchSpatial(ts []*model.Trajectory) ([]uint64, error) {
	spVals := make([]uint64, len(ts))
	if e.icache == nil || e.cfg.Spatial != KindTShape {
		for i, t := range ts {
			spVals[i] = e.spatialValue(t)
		}
		return spVals, nil
	}
	type pending struct {
		idx  int
		bits uint64
	}
	groups := make(map[uint64][]pending)
	var order []uint64
	for i, t := range ts {
		elem, bits := e.tsIdx.EncodeRaw(t)
		if _, seen := groups[elem]; !seen {
			order = append(order, elem)
		}
		groups[elem] = append(groups[elem], pending{idx: i, bits: bits})
	}
	for _, elem := range order {
		items := groups[elem]
		// Resolve every distinct shape of the group first (buffer adds and
		// the potential re-encode happen before this group's codes settle).
		codes := make(map[uint64]uint64)
		for _, it := range items {
			if _, done := codes[it.bits]; !done {
				codes[it.bits] = e.resolveShapeCode(elem, it.bits)
			}
		}
		// A re-encode triggered by a later shape renumbers earlier ones;
		// re-read the final codes now that the group's directory is stable.
		known := make(map[uint64]uint64)
		for _, s := range e.icache.Shapes(elem) {
			known[s.Bits] = s.Code
		}
		for bits := range codes {
			if code, ok := known[bits]; ok {
				codes[bits] = code
			} else {
				codes[bits] = bits // still buffered: raw code
			}
		}
		for _, it := range items {
			spVals[it.idx] = e.tsIdx.Pack(elem, codes[it.bits])
		}
	}
	return spVals, nil
}

// encodeBatchRows serializes every row value, fanning the CPU-bound encode
// (DP-Feature extraction + point compression) across GOMAXPROCS goroutines
// in fixed chunks. Results are positional, so output order is exactly input
// order regardless of scheduling.
func (e *Engine) encodeBatchRows(ts []*model.Trajectory, trVals []uint64) [][]byte {
	encoded := make([][]byte, len(ts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ts) {
		workers = len(ts)
	}
	if workers <= 1 {
		for i, t := range ts {
			encoded[i] = encodeRow(t, trVals[i], e.normalizedFeatures(t))
		}
		return encoded
	}
	const chunk = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(ts) {
					return
				}
				hi := lo + chunk
				if hi > len(ts) {
					hi = len(ts)
				}
				for i := lo; i < hi; i++ {
					encoded[i] = encodeRow(ts[i], trVals[i], e.normalizedFeatures(ts[i]))
				}
			}
		}()
	}
	wg.Wait()
	return encoded
}

// Delete removes a trajectory given its oid, tid and (exact) stored time
// range and geometry — callers usually pass a trajectory previously read
// from the engine.
func (e *Engine) Delete(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	trValue := e.temporalValue(t.TimeRange())
	spatial := e.spatialValue(t)
	shard := codec.ShardOf(t.TID, e.cfg.Shards)
	primaryVal := spatial
	if e.cfg.primaryIsTemporal() {
		primaryVal = trValue
	}
	pk := codec.PrimaryKey(shard, primaryVal, t.TID)
	if _, ok := e.primary.Get(pk); !ok {
		return nil // idempotent: nothing stored under this identity
	}
	e.primary.Delete(pk)
	if e.cfg.primaryIsTemporal() {
		e.spTable.Delete(codec.SecondaryKey(shard, codec.AppendUint64(nil, spatial), t.TID))
	} else {
		e.trTable.Delete(codec.SecondaryKey(shard, codec.AppendUint64(nil, trValue), t.TID))
	}
	e.idtTable.Delete(codec.SecondaryKey(shard, idt.Key(t.OID, trValue), t.TID))
	e.stTable.Delete(codec.SecondaryKey(shard, st.Key(trValue, spatial), t.TID))
	e.rows.Add(-1)
	return nil
}

// normalizedFeatures extracts the DP-Features sketch in normalized
// coordinates.
func (e *Engine) normalizedFeatures(t *model.Trajectory) model.DPFeatures {
	norm := &model.Trajectory{OID: t.OID, TID: t.TID, Points: make([]model.Point, len(t.Points))}
	for i, p := range t.Points {
		x, y := e.space.Normalize(p.X, p.Y)
		norm.Points[i] = model.Point{X: x, Y: y, T: p.T}
	}
	return model.ExtractDPFeatures(norm, e.cfg.DPEpsilon, e.cfg.DPMaxRep)
}

func (e *Engine) observeTR(v uint64) {
	iv := int64(v)
	if !e.trSeen.Swap(true) {
		e.minTR.Store(iv)
		e.maxTR.Store(iv)
		return
	}
	for {
		cur := e.minTR.Load()
		if iv >= cur || e.minTR.CompareAndSwap(cur, iv) {
			break
		}
	}
	for {
		cur := e.maxTR.Load()
		if iv <= cur || e.maxTR.CompareAndSwap(cur, iv) {
			break
		}
	}
}

// reencodeElement implements the re-encode pass of Section IV-C: gather all
// known shapes of the element (directory + buffer), compute an optimized
// order, persist the new directory, and rewrite rows whose index value
// changed.
func (e *Engine) reencodeElement(elem uint64) {
	e.reencodeMu.Lock()
	defer e.reencodeMu.Unlock()

	buffered := e.buffer.Take(elem)
	// Drop the persisted buffer entries: the directory will own these
	// shapes once the re-encode below completes.
	for _, bits := range buffered {
		e.bufTable.Delete(bufShapeKey(elem, bits))
	}
	existing := e.icache.Shapes(elem)
	seen := make(map[uint64]struct{}, len(existing)+len(buffered))
	all := make([]uint64, 0, len(existing)+len(buffered))
	for _, s := range existing {
		if _, dup := seen[s.Bits]; !dup {
			seen[s.Bits] = struct{}{}
			all = append(all, s.Bits)
		}
	}
	for _, b := range buffered {
		if _, dup := seen[b]; !dup {
			seen[b] = struct{}{}
			all = append(all, b)
		}
	}
	if len(all) == 0 {
		return
	}
	ordered := tshape.OptimizeOrder(all, e.cfg.Encoding, int64(elem))
	shapes := make([]cache.Shape, len(ordered))
	newCode := make(map[uint64]uint64, len(ordered))
	for i, bits := range ordered {
		shapes[i] = cache.Shape{Bits: bits, Code: uint64(i)}
		newCode[bits] = uint64(i)
	}
	if err := e.icache.Update(elem, shapes); err != nil {
		return
	}
	// Final codes just changed: plans generated against the old directory
	// would scan dead index values and miss the rewritten rows.
	e.bumpPlanEpoch()
	e.reencodes.Add(1)
	e.rewriteElementRows(elem, newCode)
	e.bumpPlanEpoch()
}

// rewriteElementRows migrates stored rows of an element to their new shape
// codes: primary keys move when the primary table is spatial; otherwise the
// spatial secondary and ST mappings are rewritten in place.
func (e *Engine) rewriteElementRows(elem uint64, newCode map[uint64]uint64) {
	if e.cfg.primaryIsTemporal() {
		e.rewriteElementSecondary(elem, newCode)
		return
	}
	anchor := e.tsIdx.AnchorFromExtCode(elem)
	for s := 0; s < e.cfg.Shards; s++ {
		lo := e.tsIdx.Pack(elem, 0)
		hi := e.tsIdx.Pack(elem, 1<<e.tsIdx.ShapeBitsWidth()-1)
		start, end := codec.RangeForIndexValues(byte(s), lo, hi)
		rows := e.primary.Scan(start, end, nil, 0)
		for _, kv := range rows {
			_, oldVal, tid, err := codec.SplitPrimaryKey(kv.Key)
			if err != nil {
				continue
			}
			row, err := decodeRow(kv.Value)
			if err != nil {
				continue
			}
			traj, err := row.Trajectory()
			if err != nil {
				continue
			}
			bits := e.tsIdx.ShapeBits(traj, anchor)
			code, ok := newCode[bits]
			if !ok {
				continue // shape unknown (should not happen); keep as is
			}
			newVal := e.tsIdx.Pack(elem, code)
			if newVal == oldVal {
				continue
			}
			newKey := codec.PrimaryKey(byte(s), newVal, tid)
			e.primary.Delete(kv.Key)
			e.primary.Put(newKey, kv.Value)
			// Refresh secondary mappings that embed the primary key or the
			// spatial value.
			shard := byte(s)
			e.trTable.Put(codec.SecondaryKey(shard, codec.AppendUint64(nil, row.TRValue), tid), newKey)
			e.idtTable.Put(codec.SecondaryKey(shard, idt.Key(row.OID, row.TRValue), tid), newKey)
			e.stTable.Delete(codec.SecondaryKey(shard, st.Key(row.TRValue, oldVal), tid))
			e.stTable.Put(codec.SecondaryKey(shard, st.Key(row.TRValue, newVal), tid), newKey)
		}
	}
}

// rewriteElementSecondary re-keys the spatial secondary and ST mappings of
// an element when the primary table is temporal (primary rows stay put).
func (e *Engine) rewriteElementSecondary(elem uint64, newCode map[uint64]uint64) {
	anchor := e.tsIdx.AnchorFromExtCode(elem)
	for s := 0; s < e.cfg.Shards; s++ {
		lo := e.tsIdx.Pack(elem, 0)
		hi := e.tsIdx.Pack(elem, 1<<e.tsIdx.ShapeBitsWidth()-1)
		start := append([]byte{byte(s)}, codec.AppendUint64(nil, lo)...)
		var end []byte
		if hi == ^uint64(0) {
			end = []byte{byte(s) + 1}
		} else {
			end = append([]byte{byte(s)}, codec.AppendUint64(nil, hi+1)...)
		}
		entries := e.spTable.Scan(start, end, nil, 0)
		for _, kv := range entries {
			// Secondary key layout: shard(1) :: value(8) :: 0x00 :: tid.
			if len(kv.Key) < 10 {
				continue
			}
			oldVal, _ := codec.Uint64(kv.Key[1:])
			tid := string(kv.Key[10:])
			pk := kv.Value
			value, ok := e.primary.Get(pk)
			if !ok {
				continue
			}
			row, err := decodeRow(value)
			if err != nil {
				continue
			}
			traj, err := row.Trajectory()
			if err != nil {
				continue
			}
			bits := e.tsIdx.ShapeBits(traj, anchor)
			code, okCode := newCode[bits]
			if !okCode {
				continue
			}
			newVal := e.tsIdx.Pack(elem, code)
			if newVal == oldVal {
				continue
			}
			shard := byte(s)
			e.spTable.Delete(kv.Key)
			e.spTable.Put(codec.SecondaryKey(shard, codec.AppendUint64(nil, newVal), tid), pk)
			e.stTable.Delete(codec.SecondaryKey(shard, st.Key(row.TRValue, oldVal), tid))
			e.stTable.Put(codec.SecondaryKey(shard, st.Key(row.TRValue, newVal), tid), pk)
		}
	}
}

// shapeProvider merges the persistent directory with shapes still waiting
// in the buffer cache, so queries see trajectories stored under raw codes.
type shapeProvider struct {
	e *Engine
}

// Shapes implements tshape.ShapeProvider.
func (p shapeProvider) Shapes(elem uint64) []tshape.Shape {
	var out []tshape.Shape
	known := map[uint64]struct{}{}
	for _, s := range p.e.icache.Shapes(elem) {
		out = append(out, tshape.Shape{Bits: s.Bits, Code: s.Code})
		known[s.Bits] = struct{}{}
	}
	for _, bits := range p.e.buffer.Shapes(elem) {
		if _, dup := known[bits]; !dup {
			out = append(out, tshape.Shape{Bits: bits, Code: bits})
		}
	}
	return out
}

// provider returns the ShapeProvider queries should use (nil when the index
// cache is disabled — the full-shape-range fallback).
func (e *Engine) provider() tshape.ShapeProvider {
	if e.icache == nil {
		return nil
	}
	return shapeProvider{e: e}
}
