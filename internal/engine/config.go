// Package engine implements the TMan storage and query engine: the storage
// schema of paper Section IV-B (primary + secondary tables, index cache,
// metadata), the update protocol of Section IV-C, and the query processing
// layer of Section V (RBO/CBO planning, query-window generation, push-down
// filter chains, parallel execution).
package engine

import (
	"fmt"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/kvstore"
)

// IndexKind identifies an index type usable as a primary or secondary
// index.
type IndexKind int

const (
	// KindTShape is TMan's shape index (default primary).
	KindTShape IndexKind = iota
	// KindXZ2 is plain XZ-ordering (the TMan-XZ ablation).
	KindXZ2
	// KindTR is TMan's temporal range index.
	KindTR
	// KindXZT is TrajMesa's temporal index (the TMan-XZT ablation).
	KindXZT
	// KindIDT is the object-id + TR composite.
	KindIDT
	// KindST is the TR + TShape composite.
	KindST
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case KindTShape:
		return "tshape"
	case KindXZ2:
		return "xz2"
	case KindTR:
		return "tr"
	case KindXZT:
		return "xzt"
	case KindIDT:
		return "idt"
	case KindST:
		return "st"
	default:
		return "unknown"
	}
}

// Config configures an Engine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Boundary is the dataset's spatial extent (e.g. (110,35,125,45) for
	// TDrive).
	Boundary geo.Rect

	// PeriodMillis is the TR index time-period length; N is the maximum
	// periods per time bin (paper defaults: 1 hour and 48).
	PeriodMillis int64
	N            int

	// Alpha, Beta, G parameterize the TShape index.
	Alpha, Beta, G int

	// Spatial selects the spatial index family (KindTShape or KindXZ2).
	Spatial IndexKind
	// Temporal selects the temporal index family (KindTR or KindXZT).
	Temporal IndexKind
	// Primary selects which index keys the primary table (paper
	// Section IV-B: "users can create primary tables for query scenarios
	// that require high efficiency"). A spatial kind (the default) makes
	// spatial range queries primary-direct and temporal queries go through
	// the TR secondary; a temporal kind flips that. The value must belong
	// to the family configured in Spatial/Temporal.
	Primary IndexKind

	// XZTPeriodMillis and XZTG parameterize the XZT ablation index.
	XZTPeriodMillis int64
	XZTG            int

	// Shards spreads rows over this many hash shards to avoid hot-spotting.
	Shards int

	// Encoding selects the shape-code optimization (bitmap/greedy/genetic).
	Encoding tshape.Encoding
	// UseIndexCache enables the shape directory + LFU cache. When false,
	// trajectories are stored under raw shape bitmaps and queries cover the
	// full shape range of intersecting elements (Fig. 16(b)'s "no cache").
	UseIndexCache bool
	// CacheCapacity is the LFU capacity in element directories.
	CacheCapacity int
	// CacheShards splits the LFU into independently locked shards so
	// concurrent queries do not serialize on one mutex (0 → 16; 1 keeps the
	// single-lock layout, for ablations and equivalence tests).
	CacheShards int
	// PlanCacheSize bounds the query-plan cache, which memoizes generated
	// index value ranges per exact query window (0 → 1024; negative
	// disables plan caching).
	PlanCacheSize int
	// BufferThreshold triggers per-element re-encoding after this many new
	// unoptimized shapes (Section IV-C).
	BufferThreshold int

	// DPEpsilon and DPMaxRep control the DP-Features sketch stored with
	// every row (normalized units; rep point budget).
	DPEpsilon float64
	DPMaxRep  int

	// PushDown enables store-side filter evaluation. Disabling it emulates
	// client-side filtering systems (the TrajMesa comparison).
	PushDown bool

	// WindowBudget caps the number of generated ST query windows.
	WindowBudget int

	// TraceSampleRate is the fraction of queries (0..1) that get a full
	// trace-span tree recorded into the engine's trace ring. 0 disables
	// sampling entirely: untraced queries pay one context lookup and no
	// allocations. Queries whose context already carries a span (the /trace
	// endpoint) are always traced regardless of the rate.
	TraceSampleRate float64

	// SLOTargetMillis is the per-query latency objective every query type is
	// tracked against: a query finishing within it counts "good", over it
	// counts "late", and the windowed burn-rate gauges report late-fraction
	// over the error budget. 0 takes the 250ms default; negative disables
	// SLO tracking (the series still exist and stay at zero).
	SLOTargetMillis int
	// SLOBudget is the allowed late fraction of the objective (0 → 0.01,
	// i.e. a p99 objective).
	SLOBudget float64

	// KV configures the underlying key-value store (including scan
	// parallelism and the cluster cost model).
	KV kvstore.Options

	// DataDir, when set, makes the store durable: mutations are written to
	// a WAL under this directory and the engine recovers its state on New.
	DataDir string
}

// DefaultConfig returns the paper's default parameterization over the given
// spatial boundary.
func DefaultConfig(boundary geo.Rect) Config {
	return Config{
		Boundary:        boundary,
		PeriodMillis:    3600_000, // 1 hour
		N:               48,
		Alpha:           3,
		Beta:            3,
		G:               16,
		Spatial:         KindTShape,
		Temporal:        KindTR,
		Primary:         KindTShape,
		XZTPeriodMillis: 14 * 24 * 3600_000, // two weeks, as TrajMesa
		XZTG:            16,
		Shards:          4,
		Encoding:        tshape.EncodingGreedy,
		UseIndexCache:   true,
		CacheCapacity:   4096,
		CacheShards:     16,
		PlanCacheSize:   1024,
		BufferThreshold: 32,
		DPEpsilon:       0.002,
		DPMaxRep:        16,
		PushDown:        true,
		WindowBudget:    4096,
		KV:              kvstore.DefaultOptions(),
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if !c.Boundary.Valid() || c.Boundary.Width() <= 0 || c.Boundary.Height() <= 0 {
		return fmt.Errorf("engine: invalid boundary %v", c.Boundary)
	}
	if c.PeriodMillis <= 0 || c.N <= 0 {
		return fmt.Errorf("engine: invalid TR parameters period=%d N=%d", c.PeriodMillis, c.N)
	}
	if err := (tshape.Params{Alpha: c.Alpha, Beta: c.Beta, G: c.G}).Validate(); err != nil {
		return err
	}
	if c.Spatial != KindTShape && c.Spatial != KindXZ2 {
		return fmt.Errorf("engine: spatial index must be tshape or xz2, got %v", c.Spatial)
	}
	if c.Temporal != KindTR && c.Temporal != KindXZT {
		return fmt.Errorf("engine: temporal index must be tr or xzt, got %v", c.Temporal)
	}
	// Primary selects a family; coerce it to the concrete index configured
	// for that family so ablations (e.g. Spatial = XZ2) keep working
	// without repeating themselves.
	switch c.Primary {
	case KindTShape, KindXZ2:
		c.Primary = c.Spatial
	case KindTR, KindXZT:
		c.Primary = c.Temporal
	default:
		return fmt.Errorf("engine: primary must be a spatial or temporal kind, got %v", c.Primary)
	}
	if c.Temporal == KindXZT && (c.XZTPeriodMillis <= 0 || c.XZTG <= 0) {
		return fmt.Errorf("engine: invalid XZT parameters")
	}
	if c.Shards < 1 || c.Shards > 256 {
		return fmt.Errorf("engine: shards must be in [1,256], got %d", c.Shards)
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 4096
	}
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.CacheShards < 0 {
		return fmt.Errorf("engine: cache shards must be positive, got %d", c.CacheShards)
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 1024
	}
	if c.BufferThreshold <= 0 {
		c.BufferThreshold = 32
	}
	if c.DPMaxRep <= 0 {
		c.DPMaxRep = 16
	}
	if c.DPEpsilon <= 0 {
		c.DPEpsilon = 0.002
	}
	if c.WindowBudget <= 0 {
		c.WindowBudget = 4096
	}
	if c.TraceSampleRate < 0 || c.TraceSampleRate > 1 {
		return fmt.Errorf("engine: trace sample rate must be in [0,1], got %g", c.TraceSampleRate)
	}
	if c.SLOTargetMillis == 0 {
		c.SLOTargetMillis = 250
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOBudget > 1 {
		return fmt.Errorf("engine: SLO budget must be in (0,1], got %g", c.SLOBudget)
	}
	return nil
}

// primaryIsTemporal reports whether the primary table is keyed by the
// temporal index.
func (c *Config) primaryIsTemporal() bool {
	return c.Primary == KindTR || c.Primary == KindXZT
}
