package engine

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// planCache memoizes query-range generation — the sorted []valueRange that
// spatialRanges (XZ2 / TShape Algorithm 2) and temporalRanges (TR / XZT)
// produce for a window. Under a concurrent workload the same windows recur
// constantly, and for TShape the enumeration walks thousands of elements
// through the index cache per query; replaying the memoized plan turns
// that into one map lookup.
//
// Keys are the exact bit patterns of the window (float64 bits for rects,
// the raw int64s for time ranges) — already quantized inputs, never a
// lossy rounding of the window itself, so a cached plan is only ever
// replayed for a byte-identical window and results stay exactly equal to
// the uncached path.
//
// Correctness under writes: spatial TShape plans depend on the shape state
// (directory + buffer). Every shape-state mutation — a buffered raw shape,
// a re-encode rewriting final codes — bumps the engine's plan epoch, and a
// spatial entry is only valid while its recorded epoch matches. Entries
// record the epoch read *before* range generation ran, so a plan computed
// concurrently with a mutation self-invalidates rather than serving the
// pre-mutation view forever. Temporal plans are pure functions of static
// index parameters and never expire.
type planCache struct {
	cap   int
	epoch atomic.Int64 // shape-state version (see Engine.bumpPlanEpoch)

	mu       sync.RWMutex
	spatial  map[spatialPlanKey]spatialPlanEntry
	temporal map[temporalPlanKey][]valueRange

	hits, misses atomic.Int64
}

type spatialPlanKey [4]uint64

type temporalPlanKey [2]int64

type spatialPlanEntry struct {
	epoch  int64
	ranges []valueRange
}

// PlanCacheStats reports plan-cache effectiveness counters.
type PlanCacheStats struct {
	Hits, Misses int64
	Entries      int
}

// newPlanCache builds a cache bounded to roughly cap entries per kind.
func newPlanCache(cap int) *planCache {
	return &planCache{
		cap:      cap,
		spatial:  make(map[spatialPlanKey]spatialPlanEntry),
		temporal: make(map[temporalPlanKey][]valueRange),
	}
}

func spatialKey(nsr geo.Rect) spatialPlanKey {
	return spatialPlanKey{
		math.Float64bits(nsr.MinX), math.Float64bits(nsr.MinY),
		math.Float64bits(nsr.MaxX), math.Float64bits(nsr.MaxY),
	}
}

// spatialGet returns the memoized ranges for a window when they are still
// current. The returned slice is shared read-only plan state.
func (pc *planCache) spatialGet(nsr geo.Rect) ([]valueRange, bool) {
	key := spatialKey(nsr)
	pc.mu.RLock()
	e, ok := pc.spatial[key]
	pc.mu.RUnlock()
	if !ok || e.epoch != pc.epoch.Load() {
		pc.misses.Add(1)
		return nil, false
	}
	pc.hits.Add(1)
	return e.ranges, true
}

// spatialPut memoizes ranges computed while the epoch read beforehand was
// `epoch`. A stale epoch is stored as-is: the entry simply never validates,
// and the next lookup recomputes.
func (pc *planCache) spatialPut(nsr geo.Rect, epoch int64, ranges []valueRange) {
	key := spatialKey(nsr)
	pc.mu.Lock()
	if len(pc.spatial) >= pc.cap {
		pc.evictSpatialLocked()
	}
	pc.spatial[key] = spatialPlanEntry{epoch: epoch, ranges: ranges}
	pc.mu.Unlock()
}

// evictSpatialLocked drops stale entries first (free wins), then falls back
// to evicting an arbitrary eighth of the map — crude, but plan entries are
// tiny and recomputable, and it keeps the write path O(cap) worst case
// instead of maintaining recency lists on the read path.
func (pc *planCache) evictSpatialLocked() {
	cur := pc.epoch.Load()
	for k, e := range pc.spatial {
		if e.epoch != cur {
			delete(pc.spatial, k)
		}
	}
	if len(pc.spatial) < pc.cap {
		return
	}
	drop := pc.cap/8 + 1
	for k := range pc.spatial {
		delete(pc.spatial, k)
		if drop--; drop <= 0 {
			break
		}
	}
}

func (pc *planCache) temporalGet(q model.TimeRange) ([]valueRange, bool) {
	key := temporalPlanKey{q.Start, q.End}
	pc.mu.RLock()
	rs, ok := pc.temporal[key]
	pc.mu.RUnlock()
	if !ok {
		pc.misses.Add(1)
		return nil, false
	}
	pc.hits.Add(1)
	return rs, true
}

func (pc *planCache) temporalPut(q model.TimeRange, ranges []valueRange) {
	key := temporalPlanKey{q.Start, q.End}
	pc.mu.Lock()
	if len(pc.temporal) >= pc.cap {
		drop := pc.cap/8 + 1
		for k := range pc.temporal {
			delete(pc.temporal, k)
			if drop--; drop <= 0 {
				break
			}
		}
	}
	pc.temporal[key] = ranges
	pc.mu.Unlock()
}

// bump advances the shape-state epoch, invalidating every spatial entry.
func (pc *planCache) bump() { pc.epoch.Add(1) }

// stats snapshots the counters.
func (pc *planCache) stats() PlanCacheStats {
	pc.mu.RLock()
	entries := len(pc.spatial) + len(pc.temporal)
	pc.mu.RUnlock()
	return PlanCacheStats{Hits: pc.hits.Load(), Misses: pc.misses.Load(), Entries: entries}
}

// resetStats clears the counters (entries survive).
func (pc *planCache) resetStats() {
	pc.hits.Store(0)
	pc.misses.Store(0)
}
