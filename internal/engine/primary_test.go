package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Temporal-primary configuration: all query types must still match brute
// force, with TRQ running against the primary table directly.
func TestTemporalPrimaryConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Primary = KindTR
	e, trajs := loadEngine(t, cfg, 300, 101)

	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 15; iter++ {
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(12*3600_000)}
		got, rep, err := e.TemporalRangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Plan != "primary:tr" {
			t.Fatalf("TRQ plan = %q, want primary:tr", rep.Plan)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("temporal-primary TRQ iter %d", iter), tids(got), tids(want))

		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}
		gotS, repS, err := e.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		if repS.Plan != "secondary:tshape" {
			t.Fatalf("SRQ plan = %q, want secondary:tshape", repS.Plan)
		}
		var wantS []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				wantS = append(wantS, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("temporal-primary SRQ iter %d", iter), tids(gotS), tids(wantS))

		gotST, _, err := e.SpatioTemporalQuery(sr, q)
		if err != nil {
			t.Fatal(err)
		}
		var wantST []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) && tr.TimeRange().Intersects(q) {
				wantST = append(wantST, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("temporal-primary STRQ iter %d", iter), tids(gotST), tids(wantST))
	}
}

// Re-encoding with a temporal primary rewrites the spatial secondary in
// place; spatial queries must stay exact.
func TestTemporalPrimaryReencode(t *testing.T) {
	cfg := testConfig()
	cfg.Primary = KindTR
	cfg.BufferThreshold = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(107))
	trajs := make([]*model.Trajectory, 0, 200)
	for i := 0; i < 200; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%10), fmt.Sprintf("traj-%05d", i))
		for j := range tr.Points {
			tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.4)
			tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
		}
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	if e.Reencodes() == 0 {
		t.Fatal("expected re-encodes on clustered data")
	}
	for iter := 0; iter < 10; iter++ {
		cx := 116 + rng.Float64()*0.4
		cy := 39.5 + rng.Float64()*0.3
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.1, MaxY: cy + 0.1}
		got, _, err := e.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("reencoded SRQ iter %d", iter), tids(got), tids(want))
	}
}

func TestPrimaryMismatchRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Primary = IndexKind(99)
	if _, err := New(cfg); err == nil {
		t.Error("bogus primary kind accepted")
	}
}
