package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

func TestNearestQueryMatchesBruteForce(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 300, 421)
	rng := rand.New(rand.NewSource(431))
	for iter := 0; iter < 15; iter++ {
		x := testBoundary.MinX + rng.Float64()*testBoundary.Width()
		y := testBoundary.MinY + rng.Float64()*testBoundary.Height()
		k := 3 + rng.Intn(8)
		got, rep, err := e.NearestQuery(x, y, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("iter %d: got %d results, want %d", iter, len(got), k)
		}
		// Brute force kth distance.
		nx, ny := e.space.Normalize(x, y)
		dists := make([]float64, 0, len(trajs))
		for _, tr := range trajs {
			dists = append(dists, e.pointToTrajectory(nx, ny, tr.Points))
		}
		sort.Float64s(dists)
		kth := dists[k-1]
		for i, g := range got {
			d := e.pointToTrajectory(nx, ny, g.Points)
			if d > kth+1e-6 {
				t.Fatalf("iter %d: result %d dist %g exceeds true kth %g", iter, i, d, kth)
			}
		}
		if rep.Candidates == 0 {
			t.Error("candidates not counted")
		}
		if rep.Plan != "knn:tshape" {
			t.Errorf("plan = %q", rep.Plan)
		}
	}
}

func TestNearestQueryEdgeCases(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 10, 433)
	if got, _, _ := e.NearestQuery(116, 40, 0); len(got) != 0 {
		t.Error("k=0 returned results")
	}
	// k larger than the corpus returns everything.
	got, _, err := e.NearestQuery(116, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trajs) {
		t.Errorf("k > corpus returned %d of %d", len(got), len(trajs))
	}
}

// Concurrent writers and readers on one engine: correctness under race.
func TestEngineConcurrentPutAndQuery(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(437 + w)))
			for i := 0; i < 150; i++ {
				tr := genTrajectory(rng, fmt.Sprintf("o%d", w), fmt.Sprintf("w%d-t%04d", w, i))
				for j := range tr.Points {
					tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.3)
					tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
				}
				if err := e.Put(tr); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 2; r++ {
		go func(r int) {
			rng := rand.New(rand.NewSource(int64(443 + r)))
			for i := 0; i < 30; i++ {
				cx := 116 + rng.Float64()*0.3
				cy := 39.5 + rng.Float64()*0.3
				if _, _, err := e.SpatialRangeQuery(geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.1, MaxY: cy + 0.1}); err != nil {
					done <- err
					return
				}
				qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
				if _, _, err := e.TemporalRangeQuery(model.TimeRange{Start: qs, End: qs + 3600_000}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(r)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if e.Rows() != 300 {
		t.Fatalf("Rows = %d, want 300", e.Rows())
	}
	// Final consistency: a full-space query sees everything.
	all, _, err := e.SpatialRangeQuery(testBoundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 300 {
		t.Errorf("final query found %d of 300", len(all))
	}
}

// BatchPut and sequential Put must produce identical query results.
func TestBatchPutMatchesSequentialPut(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 3
	rng := rand.New(rand.NewSource(449))
	var trajs []*model.Trajectory
	for i := 0; i < 200; i++ {
		tr := genTrajectory(rng, "o", fmt.Sprintf("t%04d", i))
		for j := range tr.Points {
			tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.4)
			tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
		}
		trajs = append(trajs, tr)
	}
	eSeq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		if err := eSeq.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	eBatch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eBatch.BatchPut(trajs); err != nil {
		t.Fatal(err)
	}
	if eSeq.Rows() != eBatch.Rows() {
		t.Fatalf("row counts differ: %d vs %d", eSeq.Rows(), eBatch.Rows())
	}
	for iter := 0; iter < 10; iter++ {
		cx := 116 + rng.Float64()*0.4
		cy := 39.5 + rng.Float64()*0.3
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.1, MaxY: cy + 0.1}
		a, _, _ := eSeq.SpatialRangeQuery(sr)
		b, _, _ := eBatch.SpatialRangeQuery(sr)
		sameTIDs(t, fmt.Sprintf("batch-vs-seq iter %d", iter), tids(b), tids(a))
	}
	// Grouped resolution should not re-encode more often than sequential.
	if eBatch.Reencodes() > eSeq.Reencodes() {
		t.Errorf("batch re-encodes %d > sequential %d", eBatch.Reencodes(), eSeq.Reencodes())
	}
}
