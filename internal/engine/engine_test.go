package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

var testBoundary = geo.Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45}

func testConfig() Config {
	cfg := DefaultConfig(testBoundary)
	cfg.G = 12
	cfg.CacheCapacity = 256
	cfg.BufferThreshold = 8
	return cfg
}

// genTrajectory produces a random-walk trajectory inside the boundary.
func genTrajectory(rng *rand.Rand, oid, tid string) *model.Trajectory {
	n := 5 + rng.Intn(60)
	pts := make([]model.Point, n)
	x := testBoundary.MinX + rng.Float64()*testBoundary.Width()
	y := testBoundary.MinY + rng.Float64()*testBoundary.Height()
	ts := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.02
		y += (rng.Float64() - 0.5) * 0.02
		x = math.Max(testBoundary.MinX, math.Min(testBoundary.MaxX, x))
		y = math.Max(testBoundary.MinY, math.Min(testBoundary.MaxY, y))
		ts += 30_000 + rng.Int63n(120_000)
		pts[i] = model.Point{X: x, Y: y, T: ts}
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}
}

func loadEngine(t *testing.T, cfg Config, n int, seed int64) (*Engine, []*model.Trajectory) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]*model.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%25), fmt.Sprintf("traj-%05d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return e, trajs
}

func tids(ts []*model.Trajectory) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.TID
	}
	sort.Strings(out)
	return out
}

func sameTIDs(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestEngineNewValidatesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid shards accepted")
	}
	cfg = testConfig()
	cfg.Boundary = geo.Rect{}
	if _, err := New(cfg); err == nil {
		t.Error("invalid boundary accepted")
	}
}

func TestEngineMetaRecorded(t *testing.T) {
	e, _ := loadEngine(t, testConfig(), 1, 1)
	if v, ok := e.Meta("alpha"); !ok || v != "3" {
		t.Errorf("meta alpha = %q, %v", v, ok)
	}
	if v, ok := e.Meta("spatial"); !ok || v != "tshape" {
		t.Errorf("meta spatial = %q", v)
	}
}

func TestTemporalRangeQueryMatchesBruteForce(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 400, 7)
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 25; iter++ {
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(12*3600_000)}
		got, report, err := e.TemporalRangeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("TRQ iter %d", iter), tids(got), tids(want))
		if len(want) > 0 && report.Candidates < int64(len(want)) {
			t.Errorf("iter %d: candidates %d < results %d", iter, report.Candidates, len(want))
		}
	}
}

func TestSpatialRangeQueryMatchesBruteForce(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 400, 9)
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 25; iter++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + rng.Float64()*0.5, MaxY: cy + rng.Float64()*0.5}
		got, _, err := e.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("SRQ iter %d", iter), tids(got), tids(want))
	}
}

func TestIDTemporalQueryMatchesBruteForce(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 300, 11)
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		oid := fmt.Sprintf("obj-%d", rng.Intn(25))
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(24*3600_000)}
		got, _, err := e.IDTemporalQuery(oid, q)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.OID == oid && tr.TimeRange().Intersects(q) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("IDT iter %d (%s)", iter, oid), tids(got), tids(want))
	}
}

func TestSpatioTemporalQueryMatchesBruteForceAllPlans(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 400, 13)
	rng := rand.New(rand.NewSource(29))
	plansSeen := map[string]bool{}
	for iter := 0; iter < 40; iter++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		// Vary window sizes wildly so the CBO exercises different plans.
		sw := rng.Float64() * rng.Float64() * 4
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + sw, MaxY: cy + sw}
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(48*3600_000)}
		got, report, err := e.SpatioTemporalQuery(sr, q)
		if err != nil {
			t.Fatal(err)
		}
		plansSeen[report.Plan] = true
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) && tr.IntersectsRect(sr) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("STRQ iter %d plan %s", iter, report.Plan), tids(got), tids(want))
	}
	if len(plansSeen) < 2 {
		t.Logf("CBO only exercised plans: %v", plansSeen)
	}
}

func TestSimilarityThresholdMatchesBruteForce(t *testing.T) {
	cfg := testConfig()
	e, trajs := loadEngine(t, cfg, 250, 31)
	rng := rand.New(rand.NewSource(37))
	for _, m := range []similarity.Measure{similarity.Frechet, similarity.DTW, similarity.Hausdorff} {
		for iter := 0; iter < 5; iter++ {
			query := trajs[rng.Intn(len(trajs))]
			theta := 0.015
			if m == similarity.DTW {
				theta = 0.25 // DTW sums distances; use a larger budget
			}
			got, _, err := e.SimilarityThresholdQuery(query, m, theta)
			if err != nil {
				t.Fatal(err)
			}
			nq := e.normalizePoints(query.Points)
			var want []*model.Trajectory
			for _, tr := range trajs {
				d := similarity.Distance(m, nq, e.normalizePoints(tr.Points))
				if d <= theta {
					want = append(want, tr)
				}
			}
			sameTIDs(t, fmt.Sprintf("threshold %v iter %d", m, iter), tids(got), tids(want))
		}
	}
}

func TestSimilarityTopKMatchesBruteForce(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 250, 41)
	rng := rand.New(rand.NewSource(43))
	for _, m := range []similarity.Measure{similarity.Frechet, similarity.Hausdorff} {
		for iter := 0; iter < 4; iter++ {
			query := trajs[rng.Intn(len(trajs))]
			k := 5 + rng.Intn(10)
			got, _, err := e.SimilarityTopKQuery(query, m, k)
			if err != nil {
				t.Fatal(err)
			}
			// Brute-force k nearest (excluding the query itself).
			nq := e.normalizePoints(query.Points)
			type dt struct {
				d  float64
				id string
			}
			var all []dt
			for _, tr := range trajs {
				if tr.TID == query.TID {
					continue
				}
				all = append(all, dt{d: similarity.Distance(m, nq, e.normalizePoints(tr.Points)), id: tr.TID})
			}
			sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
			if len(got) != k {
				t.Fatalf("topk %v iter %d: got %d results, want %d", m, iter, len(got), k)
			}
			// Compare distance multiset (ties make TID comparison flaky).
			kth := all[k-1].d
			for i, g := range got {
				gd := similarity.Distance(m, nq, e.normalizePoints(g.Points))
				// Stored coordinates are fixed-point quantized at 1e-7
				// degrees; allow the corresponding normalized slack.
				if gd > kth+1e-6 {
					t.Fatalf("topk %v iter %d: result %d dist %g exceeds true kth %g", m, iter, i, gd, kth)
				}
			}
		}
	}
}

func TestDeleteRemovesFromAllIndexes(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 50, 47)
	victim := trajs[7]
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	q := victim.TimeRange()
	got, _, _ := e.TemporalRangeQuery(q)
	for _, g := range got {
		if g.TID == victim.TID {
			t.Error("deleted trajectory still in temporal results")
		}
	}
	got, _, _ = e.SpatialRangeQuery(victim.MBR())
	for _, g := range got {
		if g.TID == victim.TID {
			t.Error("deleted trajectory still in spatial results")
		}
	}
	got, _, _ = e.IDTemporalQuery(victim.OID, q)
	for _, g := range got {
		if g.TID == victim.TID {
			t.Error("deleted trajectory still in IDT results")
		}
	}
	if e.Rows() != 49 {
		t.Errorf("Rows = %d, want 49", e.Rows())
	}
}

// Re-encode correctness: with a tiny buffer threshold, elements re-encode
// aggressively during ingest; no trajectory may be lost and query results
// must stay identical to brute force.
func TestReencodePreservesQueryability(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 2 // re-encode every 2 new shapes
	cfg.Encoding = tshape.EncodingGenetic
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster trajectories in a small urban core so enlarged elements are
	// shared and the buffer threshold actually fires (spread-out data never
	// reuses elements, which is exactly why the cache pays off on real
	// city-scale datasets).
	rng := rand.New(rand.NewSource(53))
	trajs := make([]*model.Trajectory, 0, 300)
	for i := 0; i < 300; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%25), fmt.Sprintf("traj-%05d", i))
		for j := range tr.Points {
			tr.Points[j].X = 116 + math.Mod(tr.Points[j].X, 0.4)
			tr.Points[j].Y = 39.5 + math.Mod(tr.Points[j].Y, 0.3)
		}
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	if e.Reencodes() == 0 {
		t.Fatal("expected re-encode passes with threshold 2 on clustered data")
	}
	rng = rand.New(rand.NewSource(59))
	for iter := 0; iter < 15; iter++ {
		// Query windows over the clustered core.
		cx := 116 + rng.Float64()*0.4
		cy := 39.5 + rng.Float64()*0.3
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.1, MaxY: cy + 0.1}
		got, _, err := e.SpatialRangeQuery(sr)
		if err != nil {
			t.Fatal(err)
		}
		var want []*model.Trajectory
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				want = append(want, tr)
			}
		}
		sameTIDs(t, fmt.Sprintf("post-reencode SRQ iter %d", iter), tids(got), tids(want))
	}
	// All rows still present.
	all, _, _ := e.SpatialRangeQuery(testBoundary)
	if len(all) != 300 {
		t.Errorf("full-space query found %d rows, want 300", len(all))
	}
}

// Ablations must return identical result sets.
func TestAblationConfigsAgree(t *testing.T) {
	base := testConfig()

	xz := testConfig()
	xz.Spatial = KindXZ2

	xzt := testConfig()
	xzt.Temporal = KindXZT

	nocache := testConfig()
	nocache.UseIndexCache = false

	nopush := testConfig()
	nopush.PushDown = false

	bitmap := testConfig()
	bitmap.Encoding = tshape.EncodingBitmap

	genetic := testConfig()
	genetic.Encoding = tshape.EncodingGenetic

	configs := map[string]Config{
		"xz2": xz, "xzt": xzt, "nocache": nocache, "nopush": nopush,
		"bitmap": bitmap, "genetic": genetic,
	}

	eBase, trajs := loadEngine(t, base, 250, 61)
	rng := rand.New(rand.NewSource(67))
	type window struct {
		sr geo.Rect
		q  model.TimeRange
	}
	var windows []window
	for i := 0; i < 8; i++ {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		qs := int64(1_500_000_000_000) + rng.Int63n(30*24*3600_000)
		windows = append(windows, window{
			sr: geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5},
			q:  model.TimeRange{Start: qs, End: qs + 6*3600_000},
		})
	}
	baseline := make([][]string, 0)
	for _, w := range windows {
		gotS, _, _ := eBase.SpatialRangeQuery(w.sr)
		gotT, _, _ := eBase.TemporalRangeQuery(w.q)
		gotST, _, _ := eBase.SpatioTemporalQuery(w.sr, w.q)
		baseline = append(baseline, tids(gotS), tids(gotT), tids(gotST))
	}

	for name, cfg := range configs {
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tr := range trajs {
			if err := e.Put(tr); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		i := 0
		for _, w := range windows {
			gotS, _, _ := e.SpatialRangeQuery(w.sr)
			sameTIDs(t, name+" SRQ", tids(gotS), baseline[i])
			gotT, _, _ := e.TemporalRangeQuery(w.q)
			sameTIDs(t, name+" TRQ", tids(gotT), baseline[i+1])
			gotST, _, _ := e.SpatioTemporalQuery(w.sr, w.q)
			sameTIDs(t, name+" STRQ", tids(gotST), baseline[i+2])
			i += 3
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	e, _ := loadEngine(t, testConfig(), 1, 73)
	for iter := 0; iter < 50; iter++ {
		tr := genTrajectory(rng, "o", fmt.Sprintf("t%d", iter))
		feat := e.normalizedFeatures(tr)
		val := encodeRow(tr, 42, feat)
		row, err := decodeRow(val)
		if err != nil {
			t.Fatal(err)
		}
		if row.OID != tr.OID || row.TID != tr.TID || row.TRValue != 42 {
			t.Fatalf("header mismatch: %+v", row)
		}
		if row.TimeRange != tr.TimeRange() {
			t.Fatalf("time range mismatch")
		}
		if len(row.Features.Rep) != len(feat.Rep) || len(row.Features.Boxes) != len(feat.Boxes) {
			t.Fatalf("features shape mismatch")
		}
		pts, err := row.Points()
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(tr.Points) {
			t.Fatalf("points count mismatch")
		}
		for i := range pts {
			if pts[i].T != tr.Points[i].T {
				t.Fatalf("timestamp mismatch at %d", i)
			}
			if math.Abs(pts[i].X-tr.Points[i].X) > 1e-6 {
				t.Fatalf("X error at %d", i)
			}
		}
	}
}

func TestRowDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {}, {99}, {1}, {1, 200}, {1, 3, 'a', 'b'}}
	for i, c := range cases {
		if _, err := decodeRow(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestPutValidatesTrajectory(t *testing.T) {
	e, _ := loadEngine(t, testConfig(), 1, 79)
	if err := e.Put(&model.Trajectory{TID: "x"}); err == nil {
		t.Error("empty trajectory accepted")
	}
	if err := e.Put(&model.Trajectory{OID: "o", Points: []model.Point{{X: 1, Y: 1, T: 1}}}); err == nil {
		t.Error("missing TID accepted")
	}
}

func TestInvalidQueriesReturnEmpty(t *testing.T) {
	e, _ := loadEngine(t, testConfig(), 10, 83)
	if got, _, _ := e.TemporalRangeQuery(model.TimeRange{Start: 5, End: 1}); len(got) != 0 {
		t.Error("inverted temporal query returned rows")
	}
	if got, _, _ := e.SpatialRangeQuery(geo.Rect{MinX: 2, MinY: 2, MaxX: 1, MaxY: 1}); len(got) != 0 {
		t.Error("inverted spatial query returned rows")
	}
	if got, _, _ := e.IDTemporalQuery("", model.TimeRange{Start: 0, End: 1}); len(got) != 0 {
		t.Error("empty oid query returned rows")
	}
	if got, _, _ := e.SimilarityTopKQuery(&model.Trajectory{OID: "o", TID: "q", Points: []model.Point{{X: 112, Y: 40, T: 1}}}, similarity.Frechet, 0); len(got) != 0 {
		t.Error("k=0 returned rows")
	}
}
