package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Property-based end-to-end check: for an arbitrary (seeded) corpus and
// arbitrary query windows, every query type agrees with brute force. This
// complements the loop-based oracle tests with quick.Check's shrinking
// input generation over window geometry.
func TestEngineQueriesQuickCheck(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 250, 467)

	prop := func(cxRaw, cyRaw, sideRaw uint16, startRaw uint32, durRaw uint16) bool {
		cx := testBoundary.MinX + float64(cxRaw)/65535*testBoundary.Width()
		cy := testBoundary.MinY + float64(cyRaw)/65535*testBoundary.Height()
		side := 0.01 + float64(sideRaw)/65535*2
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + side, MaxY: cy + side}
		qs := int64(1_500_000_000_000) + int64(startRaw)%(30*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + int64(durRaw)%(24*3600_000) + 1}

		gotS, _, err := e.SpatialRangeQuery(sr)
		if err != nil {
			return false
		}
		wantS := map[string]bool{}
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				wantS[tr.TID] = true
			}
		}
		if len(gotS) != len(wantS) {
			return false
		}
		for _, g := range gotS {
			if !wantS[g.TID] {
				return false
			}
		}

		gotT, _, err := e.TemporalRangeQuery(q)
		if err != nil {
			return false
		}
		wantT := map[string]bool{}
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				wantT[tr.TID] = true
			}
		}
		if len(gotT) != len(wantT) {
			return false
		}
		for _, g := range gotT {
			if !wantT[g.TID] {
				return false
			}
		}

		gotST, _, err := e.SpatioTemporalQuery(sr, q)
		if err != nil {
			return false
		}
		count := 0
		for _, tr := range trajs {
			if wantS[tr.TID] && wantT[tr.TID] {
				count++
			}
		}
		if len(gotST) != count {
			return false
		}
		for _, g := range gotST {
			if !wantS[g.TID] || !wantT[g.TID] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(479))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Put then Delete is an identity for every query type.
func TestPutDeleteIdentityQuickCheck(t *testing.T) {
	e, trajs := loadEngine(t, testConfig(), 80, 487)
	baseline := map[string][]string{}
	windows := make([]geo.Rect, 5)
	rng := rand.New(rand.NewSource(491))
	for i := range windows {
		cx := testBoundary.MinX + rng.Float64()*testBoundary.Width()*0.9
		cy := testBoundary.MinY + rng.Float64()*testBoundary.Height()*0.9
		windows[i] = geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.8, MaxY: cy + 0.8}
		got, _, _ := e.SpatialRangeQuery(windows[i])
		baseline[fmt.Sprint(i)] = tids(got)
	}
	// Insert and remove a churn set.
	for round := 0; round < 3; round++ {
		var churn []*model.Trajectory
		for i := 0; i < 30; i++ {
			tr := genTrajectory(rng, "churn", fmt.Sprintf("churn-%d-%d", round, i))
			churn = append(churn, tr)
			if err := e.Put(tr); err != nil {
				t.Fatal(err)
			}
		}
		for _, tr := range churn {
			if err := e.Delete(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.Rows() != int64(len(trajs)) {
		t.Fatalf("Rows = %d after churn, want %d", e.Rows(), len(trajs))
	}
	for i, w := range windows {
		got, _, _ := e.SpatialRangeQuery(w)
		sameTIDs(t, fmt.Sprintf("post-churn window %d", i), tids(got), baseline[fmt.Sprint(i)])
	}
}
