package engine

import (
	"sync"

	"github.com/tman-db/tman/internal/compress"
)

// scratchRowPool recycles Rows for decode-inspect-discard call sites: the
// push-down filters decode one row per candidate, evaluate a predicate, and
// drop it. Pooled rows keep their feature slices across uses and borrow a
// point buffer from the shared compress pool, so a steady query stream
// stops allocating per candidate row.
//
// Ownership rule: a scratch row (and anything aliasing its slices — Points
// results, Features) must never escape the filter callback it was fetched
// for. Rows that outlive the call, e.g. anything that reaches
// materialize(), must come from decodeRow, which allocates fresh.
var scratchRowPool = sync.Pool{New: func() any { return new(Row) }}

func getScratchRow() *Row {
	r := scratchRowPool.Get().(*Row)
	r.points = compress.GetPointBuf()
	return r
}

func putScratchRow(r *Row) {
	compress.PutPointBuf(r.points)
	r.points = nil
	r.decoded = false
	// Drop references into the scanned value so pooled rows never pin
	// region memory; capacities of the feature slices are retained.
	r.OID, r.TID = "", ""
	r.pointsBlob = nil
	r.Features.Rep = r.Features.Rep[:0]
	r.Features.Boxes = r.Features.Boxes[:0]
	scratchRowPool.Put(r)
}
