package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// TestBatchPutConcurrentWithQueries hammers the batched write path the way a
// loaded server does: several goroutines issuing BatchPut while others run
// range queries, with region thresholds tuned so splits and background
// flushes fire mid-batch. Run under -race by `make race` and the dedicated
// CI job; correctness assertions are that queries never error, never return
// a torn row (every TID seen must decode to its full trajectory), and that
// once the writers join, every batch is fully visible.
func TestBatchPutConcurrentWithQueries(t *testing.T) {
	cfg := testConfig()
	cfg.BufferThreshold = 4
	cfg.KV.RegionMaxBytes = 32 << 10
	cfg.KV.MemtableFlushBytes = 4 << 10
	cfg.KV.MaxRunsPerRegion = 3
	cfg.KV.Parallelism = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers, batches, perBatch = 3, 6, 60
	// Pre-generate every writer's batches on one goroutine so generation is
	// deterministic and the workers only exercise BatchPut itself.
	all := make([][][]*model.Trajectory, writers)
	rng := rand.New(rand.NewSource(1234))
	for w := 0; w < writers; w++ {
		all[w] = make([][]*model.Trajectory, batches)
		for b := 0; b < batches; b++ {
			batch := make([]*model.Trajectory, perBatch)
			for i := range batch {
				batch[i] = genTrajectory(rng, fmt.Sprintf("o%d", w),
					fmt.Sprintf("w%d-b%02d-t%03d", w, b, i))
			}
			all[w][b] = batch
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, batch := range all[w] {
				if err := e.BatchPut(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for q := 0; q < 4; q++ {
		q := q
		wg.Add(1)
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(100 + q)))
			for iter := 0; iter < 20; iter++ {
				switch iter % 3 {
				case 0:
					cx := testBoundary.MinX + qrng.Float64()*testBoundary.Width()*0.8
					cy := testBoundary.MinY + qrng.Float64()*testBoundary.Height()*0.8
					got, _, err := e.SpatialRangeQuery(geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 5, MaxY: cy + 5})
					if err != nil {
						t.Errorf("reader %d: spatial: %v", q, err)
						return
					}
					for _, tr := range got {
						if tr.TID == "" || len(tr.Points) == 0 {
							t.Errorf("reader %d: torn row %+v", q, tr)
							return
						}
					}
				case 1:
					start := int64(1_500_000_000_000) + qrng.Int63n(15*24*3600_000)
					if _, _, err := e.TemporalRangeQuery(model.TimeRange{Start: start, End: start + 24*3600_000}); err != nil {
						t.Errorf("reader %d: temporal: %v", q, err)
						return
					}
				default:
					if _, _, err := e.IDTemporalQuery(fmt.Sprintf("o%d", iter%writers),
						model.TimeRange{Start: 1_500_000_000_000, End: 1_600_000_000_000}); err != nil {
						t.Errorf("reader %d: idt: %v", q, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if want := int64(writers * batches * perBatch); e.Rows() != want {
		t.Fatalf("Rows = %d, want %d", e.Rows(), want)
	}
	// Every stored trajectory must be reachable by ID once writers settle.
	for w := 0; w < writers; w++ {
		got, _, err := e.IDTemporalQuery(fmt.Sprintf("o%d", w),
			model.TimeRange{Start: 1_400_000_000_000, End: 1_700_000_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != batches*perBatch {
			t.Errorf("object o%d: %d trajectories visible, want %d", w, len(got), batches*perBatch)
		}
	}
}
