package engine

import (
	"math"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/index/quad"
	"github.com/tman-db/tman/internal/kvstore"
)

// rowFence summarizes one encoded primary row for the block fences of the
// store: the row's exact closed time range and the bounding box of its
// DP-Features sketch in normalized space — precisely the two quantities
// the engine's push-down filters test, so fence verdicts agree with
// row-by-row filtering by construction. A row that fails to decode or
// carries an empty sketch yields no fence, which poisons its block (the
// block is always inspected row-by-row) rather than risking a wrong skip.
func rowFence(_, value []byte) (kvstore.Fence, bool) {
	row := getScratchRow()
	defer putScratchRow(row)
	// Identities are irrelevant to fences; skip the OID/TID string allocs.
	if err := decodeRowInto(row, value, false); err != nil {
		return kvstore.Fence{}, false
	}
	if len(row.Features.Boxes) == 0 && len(row.Features.Rep) == 0 {
		// An empty sketch has no meaningful bbox (MBR() returns the zero
		// rect, which is *not* a superset of the trajectory).
		return kvstore.Fence{}, false
	}
	mbr := row.Features.MBR()
	return kvstore.Fence{
		MinT: row.TimeRange.Start, MaxT: row.TimeRange.End,
		MinX: mbr.MinX, MinY: mbr.MinY, MaxX: mbr.MaxX, MaxY: mbr.MaxY,
	}, true
}

// stIndexFence summarizes an ST index entry from its key alone: the TR
// bin's timestamp interval and the enlarged element's rectangle (both
// decoded from the 16-byte index component) each cover the indexed
// trajectory's true extent, so fences unioned from them are sound against
// the exact query predicate even though the entry stores only a primary
// key. Two conservative widenings keep that guarantee airtight: a bin
// spanning the maximum N periods may have been clamped at encode time
// (the trajectory can outlive the bin), so its MaxT becomes +inf; and a
// malformed key yields no fence, poisoning the block to always-Inspect.
func (e *Engine) stIndexFence(key, _ []byte) (kvstore.Fence, bool) {
	if len(key) < 1+16 {
		return kvstore.Fence{}, false
	}
	trVal, err := codec.Uint64(key[1:])
	if err != nil {
		return kvstore.Fence{}, false
	}
	tsVal, err := codec.Uint64(key[9:])
	if err != nil {
		return kvstore.Fence{}, false
	}
	bin := e.trIdx.BinRange(trVal)
	maxT := bin.End
	if trVal%uint64(e.trIdx.N()) == uint64(e.trIdx.N()-1) {
		maxT = math.MaxInt64
	}
	if bin.Start > maxT {
		return kvstore.Fence{}, false
	}
	elem, _ := e.tsIdx.Unpack(tsVal)
	if elem >= quad.TotalExtCodes(e.tsIdx.Params().G) {
		return kvstore.Fence{}, false
	}
	rect := e.tsIdx.ElementRect(e.tsIdx.AnchorFromExtCode(elem))
	return kvstore.Fence{
		MinT: bin.Start, MaxT: maxT,
		MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY,
	}, true
}
