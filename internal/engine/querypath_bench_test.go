package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tman-db/tman/internal/model"
)

// qpBenchState is built once per knob pair and shared across client-count
// sub-benchmarks so the (expensive) data load does not repeat.
type qpBenchState struct {
	engine  *Engine
	queries []qpWorkloadQuery
}

var qpBenchStates sync.Map // "shards/plan" -> *qpBenchState

// qpBenchSetup loads 3000 trajectories and a 256-query mixed workload
// (spatial / temporal / spatio-temporal / id-temporal) into an engine with
// the given cache knobs. The simulated cluster network is zeroed out (as in
// BenchmarkSRQHot) so the measurement is the in-process query-serving path:
// cache locking, plan generation, scan + decode.
func qpBenchSetup(b *testing.B, cacheShards, planCacheSize int) *qpBenchState {
	b.Helper()
	key := fmt.Sprintf("%d/%d", cacheShards, planCacheSize)
	if st, ok := qpBenchStates.Load(key); ok {
		return st.(*qpBenchState)
	}
	cfg := testConfig()
	cfg.CacheShards = cacheShards
	cfg.PlanCacheSize = planCacheSize
	cfg.KV.RPCLatencyMicros = 0
	cfg.KV.TransferMBps = 0
	cfg.KV.DiskMBps = 0
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	trajs := make([]*model.Trajectory, 0, 3000)
	for i := 0; i < 3000; i++ {
		tr := genTrajectory(rng, fmt.Sprintf("obj-%d", i%50), fmt.Sprintf("traj-%05d", i))
		trajs = append(trajs, tr)
		if err := e.Put(tr); err != nil {
			b.Fatal(err)
		}
	}
	queries := genQueryMixShaped(rand.New(rand.NewSource(6)), trajs, 256, qpHotMix)
	// Warm every query once: the contract under test is the steady-state
	// cached workload (LFU populated, plans memoized where enabled).
	for _, q := range queries {
		if _, _, err := runWorkloadQuery(e, q); err != nil {
			b.Fatal(err)
		}
	}
	st := &qpBenchState{engine: e, queries: queries}
	qpBenchStates.Store(key, st)
	return st
}

// benchClients drains b.N queries of the mixed workload through n
// concurrent client goroutines and reports aggregate throughput plus
// client-observed latency quantiles.
func benchClients(b *testing.B, st *qpBenchState, clients int) {
	b.Helper()
	e, queries := st.engine, st.queries
	e.ResetQueryPathStats()
	var next int64
	lat := make([][]time.Duration, clients)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, b.N/clients+1)
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for {
				n := int(atomic.AddInt64(&next, 1)) - 1
				if n >= b.N {
					break
				}
				q := queries[rng.Intn(len(queries))]
				t0 := time.Now()
				if _, _, err := runWorkloadQuery(e, q); err != nil {
					b.Error(err)
					break
				}
				mine = append(mine, time.Since(t0))
			}
			lat[id] = mine
		}(c)
	}
	wg.Wait()
	elapsed := b.Elapsed()
	b.StopTimer()

	all := make([]time.Duration, 0, b.N)
	for _, m := range lat {
		all = append(all, m...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 && elapsed > 0 {
		b.ReportMetric(float64(len(all))/elapsed.Seconds(), "qps")
		b.ReportMetric(float64(all[len(all)/2].Microseconds()), "p50_us")
		b.ReportMetric(float64(all[(len(all)-1)*99/100].Microseconds()), "p99_us")
	}
	if s := e.CacheStats(); s.Hits+s.Misses > 0 {
		b.ReportMetric(float64(s.Hits)/float64(s.Hits+s.Misses), "cache_hit_ratio")
	}
}

// BenchmarkQueryPathConcurrent measures the tuned query-serving path
// (sharded LFU + singleflight + plan cache + parallel enumeration) under
// 1/4/8 concurrent clients.
func BenchmarkQueryPathConcurrent(b *testing.B) {
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			st := qpBenchSetup(b, 16, 1024)
			benchClients(b, st, clients)
		})
	}
}

// BenchmarkQueryPathBaseline is the pre-PR configuration — single-mutex
// LFU, no plan cache — on the identical workload, for the speedup ratio in
// EXPERIMENTS.md.
func BenchmarkQueryPathBaseline(b *testing.B) {
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			st := qpBenchSetup(b, 1, -1)
			benchClients(b, st, clients)
		})
	}
}
