package engine

import (
	"container/heap"
	"context"
	"math"
	"time"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// NearestQuery returns the k trajectories whose geometry passes closest to
// the point (x, y) in dataset coordinates — the "more query types" the
// paper lists as future work, built on the same expanding-window TShape
// machinery as top-k similarity.
//
// Distance is the minimum Euclidean distance (in normalized units) between
// the point and any segment of a trajectory; the returned report counts
// scanned candidates.
func (e *Engine) NearestQuery(x, y float64, k int) ([]*model.Trajectory, QueryReport, error) {
	return e.NearestQueryCtx(context.Background(), x, y, k)
}

// NearestQueryCtx is NearestQuery under a context. On deadline expiry the
// expanding-window loop stops early and returns the best neighbours found
// so far with Partial set; cancellation aborts with an error.
func (e *Engine) NearestQueryCtx(ctx context.Context, x, y float64, k int) ([]*model.Trajectory, QueryReport, error) {
	started := time.Now()
	ctx = kvstore.WithQueryBudget(ctx)
	before := e.store.Stats().Snapshot()
	report := QueryReport{Plan: "knn:tshape"}
	ctx, qspan, sampled := e.beginQuery(ctx, qNearest)
	defer func() { e.endQuery(qNearest, qspan, sampled, &report) }()
	if k <= 0 {
		return nil, report, nil
	}
	nx, ny := e.space.Normalize(x, y)

	h := &topkHeap{}
	heap.Init(h)
	seen := map[string]struct{}{}
	radius := 0.005
	for {
		if kvstore.DeadlineExceeded(ctx) {
			report.Partial = true
			break
		}
		window := geo.Rect{MinX: nx - radius, MinY: ny - radius, MaxX: nx + radius, MaxY: ny + radius}
		rows, err := e.candidateRows(ctx, window, &report, func(row *Row) bool {
			return row.Features.MinDistToPoint(nx, ny) <= radius
		})
		if err != nil {
			return nil, report, err
		}
		for _, row := range rows {
			if _, dup := seen[row.TID]; dup {
				continue
			}
			bound := math.Inf(1)
			if h.Len() == k {
				bound = (*h)[0].dist
			}
			// The sketch lower-bounds the true point-to-trajectory distance.
			if row.Features.MinDistToPoint(nx, ny) > bound {
				continue
			}
			pts, err := row.Points()
			if err != nil {
				continue
			}
			seen[row.TID] = struct{}{}
			d := e.pointToTrajectory(nx, ny, pts)
			if h.Len() < k {
				heap.Push(h, topkEntry{dist: d, row: row})
			} else if d < (*h)[0].dist {
				(*h)[0] = topkEntry{dist: d, row: row}
				heap.Fix(h, 0)
			}
		}
		if h.Len() == k && (*h)[0].dist <= radius {
			break
		}
		if window.Contains(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
			break
		}
		radius *= 2
	}

	out := make([]*model.Trajectory, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		ent := heap.Pop(h).(topkEntry)
		pts, err := ent.row.Points()
		if err != nil {
			continue
		}
		out[i] = &model.Trajectory{OID: ent.row.OID, TID: ent.row.TID, Points: pts}
	}
	report.Results = len(out)
	report.Store = kvstore.Diff(before, e.store.Stats().Snapshot())
	report.Elapsed = time.Since(started) + time.Duration(report.Store.SimIONanos)
	return out, report, nil
}

// pointToTrajectory computes the exact minimum distance from a normalized
// point to the trajectory's segments (points given in dataset coordinates).
func (e *Engine) pointToTrajectory(nx, ny float64, pts []model.Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	px, py := e.space.Normalize(pts[0].X, pts[0].Y)
	if len(pts) == 1 {
		return math.Hypot(nx-px, ny-py)
	}
	best := math.Inf(1)
	for i := 1; i < len(pts); i++ {
		qx, qy := e.space.Normalize(pts[i].X, pts[i].Y)
		d := geo.PointSegmentDist(nx, ny, geo.Segment{X1: px, Y1: py, X2: qx, Y2: qy})
		if d < best {
			best = d
		}
		px, py = qx, qy
	}
	return best
}
