package chaos

import (
	"context"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/engine"
)

// noFences disables block fences: runs carry no zone maps and every scan
// inspects every overlapping block, giving the chaos suite a live A/B of
// the pruned and unpruned scan paths over the same block format.
func noFences() tman.Option {
	return func(c *engine.Config) { c.KV.DisableBlockFences = true }
}

// TestFencePruneEquivalenceUnderFaults is the fence-pruning acceptance
// probe: two clusters holding identical data — one pruning blocks through
// per-block fences (tiny blocks, so fences actually gate many blocks), one
// with fences disabled — each with the same transient fault injection,
// must answer all six of the paper's query types bit-identically. A fence
// verdict that wrongly skips a block under retried, partially-failing RPCs
// would surface here as a fingerprint divergence.
func TestFencePruneEquivalenceUnderFaults(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "fence-vs-inspect-faulted"}

	faults := tman.WithFaultInjection(tman.FaultConfig{
		Seed:                      99,
		PFailRPC:                  0.05,
		UnavailableRPCsAfterSplit: 1,
	})
	retries := tman.WithRetryPolicy(tman.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  10 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	})
	fenced, err := NewCluster(800, dataSeed, tinyBlocks(), faults, retries)
	run.Assert(t, err == nil, "fenced cluster: %v", err)
	plain, err := NewCluster(800, dataSeed, tinyBlocks(), noFences(), faults, retries)
	run.Assert(t, err == nil, "fence-disabled cluster: %v", err)

	ctx := context.Background()
	got, err := fenced.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "fenced queries: %v", err)
	want, err := plain.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "fence-disabled queries: %v", err)
	run.Assert(t, len(got) == len(want), "query counts differ: %d vs %d", len(got), len(want))
	for i := range got {
		gfp, wfp := Fingerprint(got[i].Rows), Fingerprint(want[i].Rows)
		run.Assert(t, gfp == wfp, "query %s diverges between fenced and inspect-all scans:\n fenced: %s\nunfenced: %s",
			got[i].Name, gfp, wfp)
	}

	// The fenced cluster must actually have pruned; the disabled one must
	// not have touched the fence machinery at all.
	fs := fenced.DB.Engine().Store().Stats().Snapshot()
	run.Assert(t, fs.BlocksSkipped > 0, "fenced cluster skipped no blocks")
	run.Assert(t, fs.FenceBytesRead > 0, "fenced cluster consulted no fence bytes")
	ps := plain.DB.Engine().Store().Stats().Snapshot()
	run.Assert(t, ps.BlocksSkipped == 0 && ps.FenceBytesRead == 0,
		"fence-disabled cluster pruned: skipped=%d fenceBytes=%d", ps.BlocksSkipped, ps.FenceBytesRead)
}

// TestFencePruneEquivalenceUnderFailover runs the RF=3 leader-kill
// rotation on a fenced cluster and a fence-disabled cluster, with
// identical mid-outage writes, and demands bit-identical six-query answers
// afterwards — fences rebuilt by follower catch-up and post-failover
// compactions must prune exactly what row-by-row inspection would have
// discarded.
func TestFencePruneEquivalenceUnderFailover(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "fence-vs-inspect-rf3-failover"}

	fenced, err := NewCluster(800, dataSeed, tinyBlocks(), tman.WithReplication(3))
	run.Assert(t, err == nil, "fenced cluster: %v", err)
	plain, err := NewCluster(800, dataSeed, tinyBlocks(), noFences(), tman.WithReplication(3))
	run.Assert(t, err == nil, "fence-disabled cluster: %v", err)

	ctx := context.Background()
	extra := extraTrajectories(120, dataSeed+2000)
	const cycles = 3
	chunk := len(extra) / cycles
	for cycle := 0; cycle < cycles; cycle++ {
		for _, c := range []*Cluster{fenced, plain} {
			store := c.DB.Engine().Store()
			node := cycle % store.Nodes()
			store.KillNode(node)
			err := c.DB.PutBatch(extra[cycle*chunk : (cycle+1)*chunk])
			run.Assert(t, err == nil, "cycle %d: write during outage: %v", cycle, err)
			store.ReviveNode(node)
		}
	}
	for _, c := range []*Cluster{fenced, plain} {
		st := c.DB.Engine().Store().Stats().Snapshot()
		run.Assert(t, st.Failovers > 0, "no failovers happened")
	}

	got, err := fenced.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "fenced queries: %v", err)
	want, err := plain.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "fence-disabled queries: %v", err)
	for i := range got {
		run.Assert(t, Fingerprint(got[i].Rows) == Fingerprint(want[i].Rows),
			"query %s diverges between fenced and inspect-all scans after failover", got[i].Name)
	}
	run.Assert(t, fenced.DB.Engine().Store().Stats().Snapshot().BlocksSkipped > 0,
		"fenced cluster skipped no blocks across the failover workload")
}
