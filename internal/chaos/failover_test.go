package chaos

import (
	"context"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/workload"
)

// extraTrajectories generates fresh trajectories for mid-chaos writes, with
// ids renamed out of the base dataset's namespace so they never collide.
func extraTrajectories(n int, seed int64) []*tman.Trajectory {
	ds := workload.TDriveSim(n, seed)
	for _, tr := range ds.Trajs {
		tr.OID = "x-" + tr.OID
		tr.TID = "x-" + tr.TID
	}
	return ds.Trajs
}

// TestFailoverConvergence is the acceptance scenario for replicated regions:
// an RF=3 cluster survives a rotation of leader kills and node restarts with
// writes landing between every kill, and afterwards answers all six query
// types bit-identically to an unreplicated cluster that saw the same data
// with no faults at all — zero acked-write loss, no divergence.
func TestFailoverConvergence(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "rf3-leader-kill-rotation"}

	healthy, err := NewCluster(datasetSize, dataSeed)
	run.Assert(t, err == nil, "healthy cluster: %v", err)
	replicated, err := NewCluster(datasetSize, dataSeed, tman.WithReplication(3))
	run.Assert(t, err == nil, "replicated cluster: %v", err)
	ctx := context.Background()
	store := replicated.DB.Engine().Store()
	run.Assert(t, store.Replicas() == 3, "replicas = %d, want 3", store.Replicas())

	// Rolling outages: kill a node (promoting every leader it hosted),
	// write a fresh slice of trajectories into BOTH clusters while it is
	// down, prove the replicated cluster still answers queries mid-outage,
	// then restart the node (follower catch-up) and move to the next.
	extra := extraTrajectories(200, dataSeed+1000)
	const cycles = 5
	chunk := len(extra) / cycles
	for cycle := 0; cycle < cycles; cycle++ {
		node := cycle % store.Nodes()
		store.KillNode(node)

		part := extra[cycle*chunk : (cycle+1)*chunk]
		err = replicated.DB.PutBatch(part)
		run.Assert(t, err == nil, "cycle %d: replicated write during outage: %v", cycle, err)
		err = healthy.DB.PutBatch(part)
		run.Assert(t, err == nil, "cycle %d: healthy write: %v", cycle, err)

		mid, err := replicated.SixQueries(ctx, querySeed+int64(cycle), 1)
		run.Assert(t, err == nil, "cycle %d: queries during outage: %v", cycle, err)
		run.Assert(t, !AnyPartial(mid), "cycle %d: partial results during single-node outage", cycle)

		store.ReviveNode(node)
	}

	st := store.Stats().Snapshot()
	run.Assert(t, st.Failovers > 0, "no failovers happened — scenario never killed a leader")
	run.Assert(t, st.ShipRejects == 0, "ShipRejects = %d, want 0 (no frame should ever be rejected here)", st.ShipRejects)

	// Convergence: all six query types, multiple rounds, bit-identical
	// between the chaos-ridden replicated cluster and the never-faulted one.
	want, err := healthy.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "healthy queries: %v", err)
	got, err := replicated.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "replicated queries: %v", err)
	run.Assert(t, len(got) == len(want), "query count mismatch: %d vs %d", len(got), len(want))
	for i := range want {
		run.Assert(t, got[i].Name == want[i].Name, "query order diverged at %d: %s vs %s", i, got[i].Name, want[i].Name)
		gfp, wfp := Fingerprint(got[i].Rows), Fingerprint(want[i].Rows)
		run.Assert(t, gfp == wfp, "query %s diverged after convergence:\n got %s\nwant %s", got[i].Name, gfp, wfp)
	}

	// The mid-outage writes were acknowledged; none may be lost.
	for i, tr := range extra {
		got, rep, err := replicated.DB.QueryObjectCtx(ctx, tr.OID, tman.TimeRange{Start: tr.Points[0].T, End: tr.Points[len(tr.Points)-1].T})
		run.Assert(t, err == nil && !rep.Partial, "acked trajectory %d: query failed: %v partial=%v", i, err, rep.Partial)
		found := false
		for _, g := range got {
			if g.TID == tr.TID {
				found = true
				break
			}
		}
		run.Assert(t, found, "acked-write loss: trajectory %s (written during cycle %d) missing", tr.TID, i/chunk)
	}

	// Bounded-staleness follower reads after convergence must equal the
	// healthy answers too: every replica holds committed history only.
	fctx := tman.WithMaxStaleness(ctx, 0)
	fgot, err := replicated.SixQueries(fctx, querySeed, rounds)
	run.Assert(t, err == nil, "follower-read queries: %v", err)
	var followerReads int64
	for i := range want {
		run.Assert(t, Fingerprint(fgot[i].Rows) == Fingerprint(want[i].Rows),
			"follower-read query %s diverged from healthy answer", fgot[i].Name)
		followerReads += fgot[i].Report.FollowerReads
	}
	run.Assert(t, followerReads > 0, "staleness-bounded pass never touched a follower")
}

// TestFollowerReadsRouteAroundSlowNodes: with a slow-node fault and a
// staleness bound, reads prefer replicas on fast nodes — follower reads
// happen and results stay exact.
func TestFollowerReadsRouteAroundSlowNodes(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "slow-node-follower-routing"}
	healthy, err := NewCluster(datasetSize, dataSeed)
	run.Assert(t, err == nil, "healthy cluster: %v", err)
	replicated, err := NewCluster(datasetSize, dataSeed,
		tman.WithReplication(3),
		tman.WithFaultInjection(tman.FaultConfig{
			Seed:      99,
			SlowNodes: map[int]float64{0: 8, 1: 8},
		}),
	)
	run.Assert(t, err == nil, "replicated cluster: %v", err)

	ctx := tman.WithMaxStaleness(context.Background(), 50*time.Millisecond)
	want, err := healthy.SixQueries(context.Background(), querySeed, rounds)
	run.Assert(t, err == nil, "healthy queries: %v", err)
	got, err := replicated.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "bounded queries: %v", err)
	var followerReads int64
	for i := range want {
		run.Assert(t, Fingerprint(got[i].Rows) == Fingerprint(want[i].Rows),
			"query %s diverged under follower routing", got[i].Name)
		followerReads += got[i].Report.FollowerReads
	}
	run.Assert(t, followerReads > 0, "no follower reads under a 50ms bound on a caught-up cluster")
}
