package chaos

import (
	"context"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/engine"
)

// legacyRuns reverts the kvstore to the pre-block decoded-slice run format,
// giving the chaos suite a live A/B of the two storage formats.
func legacyRuns() tman.Option {
	return func(c *engine.Config) { c.KV.DisableBlockFormat = true }
}

// tinyBlocks shrinks blocks and the cache so even the small chaos datasets
// span many blocks per run and actually evict — the interesting regime.
func tinyBlocks() tman.Option {
	return func(c *engine.Config) {
		c.KV.BlockSizeBytes = 512
		c.KV.BlockCacheBytes = 64 << 10
	}
}

// TestBlockFormatEquivalenceUnderFaults is the storage-format acceptance
// probe: two clusters holding identical data — one on block-based runs
// (tiny blocks, an undersized evicting cache), one on the legacy format —
// each with the same transient fault injection, must answer all six of the
// paper's query types bit-identically.
func TestBlockFormatEquivalenceUnderFaults(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "block-vs-legacy-faulted"}

	faults := tman.WithFaultInjection(tman.FaultConfig{
		Seed:                      99,
		PFailRPC:                  0.05,
		UnavailableRPCsAfterSplit: 1,
	})
	retries := tman.WithRetryPolicy(tman.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  10 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	})
	blocks, err := NewCluster(800, dataSeed, tinyBlocks(), faults, retries)
	run.Assert(t, err == nil, "block cluster: %v", err)
	legacy, err := NewCluster(800, dataSeed, legacyRuns(), faults, retries)
	run.Assert(t, err == nil, "legacy cluster: %v", err)

	ctx := context.Background()
	got, err := blocks.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "block queries: %v", err)
	want, err := legacy.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "legacy queries: %v", err)
	run.Assert(t, len(got) == len(want), "query counts differ: %d vs %d", len(got), len(want))
	for i := range got {
		gfp, wfp := Fingerprint(got[i].Rows), Fingerprint(want[i].Rows)
		run.Assert(t, gfp == wfp, "query %s diverges between formats:\n block: %s\nlegacy: %s",
			got[i].Name, gfp, wfp)
	}

	// The block cluster must actually have exercised the block machinery.
	st := blocks.DB.Engine().Store().BlockCacheStats()
	run.Assert(t, st.Misses > 0, "block cluster recorded no cache loads")
	run.Assert(t, st.Evictions > 0, "undersized cache never evicted — blocks too coarse for the dataset")
}

// TestBlockFormatEquivalenceUnderFailover runs the RF=3 leader-kill
// rotation on a block-format cluster and on a legacy-format cluster, with
// identical mid-outage writes, and demands bit-identical six-query answers
// afterwards — follower catch-up (snapshot rebuild into block runs) and
// epoch-fenced failover must be format-invariant.
func TestBlockFormatEquivalenceUnderFailover(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "block-vs-legacy-rf3-failover"}

	blocks, err := NewCluster(800, dataSeed, tinyBlocks(), tman.WithReplication(3))
	run.Assert(t, err == nil, "block cluster: %v", err)
	legacy, err := NewCluster(800, dataSeed, legacyRuns(), tman.WithReplication(3))
	run.Assert(t, err == nil, "legacy cluster: %v", err)

	ctx := context.Background()
	extra := extraTrajectories(120, dataSeed+2000)
	const cycles = 3
	chunk := len(extra) / cycles
	for cycle := 0; cycle < cycles; cycle++ {
		for _, c := range []*Cluster{blocks, legacy} {
			store := c.DB.Engine().Store()
			node := cycle % store.Nodes()
			store.KillNode(node)
			err := c.DB.PutBatch(extra[cycle*chunk : (cycle+1)*chunk])
			run.Assert(t, err == nil, "cycle %d: write during outage: %v", cycle, err)
			store.ReviveNode(node)
		}
	}
	for _, c := range []*Cluster{blocks, legacy} {
		st := c.DB.Engine().Store().Stats().Snapshot()
		run.Assert(t, st.Failovers > 0, "no failovers happened")
	}

	got, err := blocks.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "block queries: %v", err)
	want, err := legacy.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "legacy queries: %v", err)
	for i := range got {
		run.Assert(t, Fingerprint(got[i].Rows) == Fingerprint(want[i].Rows),
			"query %s diverges between formats after failover", got[i].Name)
	}
}
