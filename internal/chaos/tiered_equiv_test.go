package chaos

import (
	"context"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/engine"
)

// monolithicCompaction reverts the kvstore to the pre-tiered policy that
// rewrites every run in a region on each maxRuns crossing, giving the chaos
// suite a live A/B of the two compaction schedulers.
func monolithicCompaction() tman.Option {
	return func(c *engine.Config) { c.KV.MonolithicCompaction = true }
}

// churnCompaction tunes the tiered scheduler into its busiest regime for the
// small chaos datasets: minimum fan-in and maximum sub-range partitioning,
// so merges fire often and fan out across the flusher pool.
func churnCompaction() tman.Option {
	return func(c *engine.Config) {
		c.KV.CompactFanIn = 2
		c.KV.CompactSubRanges = 8
	}
}

// TestTieredEquivalenceUnderFaults is the compaction-policy acceptance
// probe: two clusters holding identical data — one on the tiered parallel
// scheduler at its churniest settings, one on the legacy monolithic
// rewrite — each with the same transient fault injection, must answer all
// six of the paper's query types bit-identically. Compaction reorganizes
// bytes, never answers.
func TestTieredEquivalenceUnderFaults(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "tiered-vs-monolithic-faulted"}

	faults := tman.WithFaultInjection(tman.FaultConfig{
		Seed:                      99,
		PFailRPC:                  0.05,
		UnavailableRPCsAfterSplit: 1,
	})
	retries := tman.WithRetryPolicy(tman.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 500 * time.Millisecond,
		MaxBackoff:  10 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	})
	tiered, err := NewCluster(800, dataSeed, churnCompaction(), faults, retries)
	run.Assert(t, err == nil, "tiered cluster: %v", err)
	mono, err := NewCluster(800, dataSeed, monolithicCompaction(), faults, retries)
	run.Assert(t, err == nil, "monolithic cluster: %v", err)

	ctx := context.Background()
	got, err := tiered.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "tiered queries: %v", err)
	want, err := mono.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "monolithic queries: %v", err)
	run.Assert(t, len(got) == len(want), "query counts differ: %d vs %d", len(got), len(want))
	for i := range got {
		gfp, wfp := Fingerprint(got[i].Rows), Fingerprint(want[i].Rows)
		run.Assert(t, gfp == wfp, "query %s diverges between policies:\n     tiered: %s\n monolithic: %s",
			got[i].Name, gfp, wfp)
	}

	// The tiered cluster must actually have exercised the tiered machinery.
	st := tiered.DB.Engine().Store().Stats().Snapshot()
	run.Assert(t, st.Compactions > 0, "tiered cluster never compacted")
	mst := mono.DB.Engine().Store().Stats().Snapshot()
	run.Assert(t, st.BytesCompacted < mst.BytesCompacted,
		"tiered rewrote %d bytes >= monolithic %d — no write-amp win on the chaos dataset",
		st.BytesCompacted, mst.BytesCompacted)
}

// TestTieredEquivalenceUnderFailover runs the RF=3 leader-kill rotation on a
// tiered cluster and on a monolithic cluster, with identical mid-outage
// writes, and demands bit-identical six-query answers afterwards — follower
// catch-up and epoch-fenced failover must be policy-invariant even while
// sub-compactions are churning the leader's run sets.
func TestTieredEquivalenceUnderFailover(t *testing.T) {
	run := Run{Seed: dataSeed, Scenario: "tiered-vs-monolithic-rf3-failover"}

	tiered, err := NewCluster(800, dataSeed, churnCompaction(), tman.WithReplication(3))
	run.Assert(t, err == nil, "tiered cluster: %v", err)
	mono, err := NewCluster(800, dataSeed, monolithicCompaction(), tman.WithReplication(3))
	run.Assert(t, err == nil, "monolithic cluster: %v", err)

	ctx := context.Background()
	extra := extraTrajectories(120, dataSeed+2000)
	const cycles = 3
	chunk := len(extra) / cycles
	for cycle := 0; cycle < cycles; cycle++ {
		for _, c := range []*Cluster{tiered, mono} {
			store := c.DB.Engine().Store()
			node := cycle % store.Nodes()
			store.KillNode(node)
			err := c.DB.PutBatch(extra[cycle*chunk : (cycle+1)*chunk])
			run.Assert(t, err == nil, "cycle %d: write during outage: %v", cycle, err)
			store.ReviveNode(node)
		}
	}
	for _, c := range []*Cluster{tiered, mono} {
		st := c.DB.Engine().Store().Stats().Snapshot()
		run.Assert(t, st.Failovers > 0, "no failovers happened")
	}

	got, err := tiered.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "tiered queries: %v", err)
	want, err := mono.SixQueries(ctx, querySeed, rounds)
	run.Assert(t, err == nil, "monolithic queries: %v", err)
	for i := range got {
		run.Assert(t, Fingerprint(got[i].Rows) == Fingerprint(want[i].Rows),
			"query %s diverges between policies after failover", got[i].Name)
	}
}
