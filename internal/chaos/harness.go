// Package chaos is a fault-injection test harness for the simulated
// cluster: it loads identical workloads into fault-free and faulted
// database instances, replays identical seeded query mixes against both,
// and provides comparators to assert that retried queries converge to the
// fault-free answer (or degrade to a correct subset under deadlines).
package chaos

import (
	"context"
	"fmt"
	"sort"

	tman "github.com/tman-db/tman"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/similarity"
	"github.com/tman-db/tman/internal/workload"
)

// Failer is the slice of testing.TB the harness needs to report a failure —
// kept as an interface so harness.go does not import the testing package.
type Failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Run names one chaos scenario and the RNG seed that drives it. Every
// assertion routed through it prints both on failure, so a red run in CI is
// reproducible verbatim: re-run the test with the printed seed.
type Run struct {
	Seed     int64
	Scenario string
}

// Fatalf fails the test with the scenario name and seed prepended.
func (r Run) Fatalf(t Failer, format string, args ...any) {
	t.Helper()
	t.Fatalf("chaos scenario %q (seed %d): %s", r.Scenario, r.Seed, fmt.Sprintf(format, args...))
}

// Assert fails via Fatalf when ok is false.
func (r Run) Assert(t Failer, ok bool, format string, args ...any) {
	t.Helper()
	if !ok {
		r.Fatalf(t, format, args...)
	}
}

// Cluster pairs a database with the dataset loaded into it.
type Cluster struct {
	DB *tman.DB
	DS *workload.Dataset
}

// SmallRegions shrinks region and memtable thresholds so even modest
// datasets split into many regions across several nodes — the interesting
// regime for fault injection, where a query fans out to many region scans.
func SmallRegions() tman.Option {
	return func(c *engine.Config) {
		c.KV.RegionMaxBytes = 32 << 10
		c.KV.MemtableFlushBytes = 8 << 10
	}
}

// NewCluster loads n TDrive-like trajectories (deterministic in seed) into
// a fresh database. Two clusters built with the same (n, seed) hold
// identical data, so their query answers are directly comparable.
func NewCluster(n int, seed int64, opts ...tman.Option) (*Cluster, error) {
	ds := workload.TDriveSim(n, seed)
	db, err := tman.Open(ds.Boundary, append([]tman.Option{SmallRegions()}, opts...)...)
	if err != nil {
		return nil, err
	}
	if err := db.PutBatch(ds.Trajs); err != nil {
		return nil, err
	}
	return &Cluster{DB: db, DS: ds}, nil
}

// QueryResult is one query's outcome on one cluster.
type QueryResult struct {
	Name   string
	Rows   []*tman.Trajectory
	Report tman.Report
}

// StandardQueries replays a deterministic mixed workload — temporal,
// spatial, ID-temporal and spatio-temporal windows drawn by a seeded
// sampler — under ctx. The same (seed, rounds) against clusters holding the
// same dataset issues byte-identical queries, so results line up pairwise.
func (c *Cluster) StandardQueries(ctx context.Context, seed int64, rounds int) ([]QueryResult, error) {
	const hour = int64(3600_000)
	s := workload.NewQuerySampler(c.DS, seed)
	out := make([]QueryResult, 0, rounds*4)
	for i := 0; i < rounds; i++ {
		tw := s.TimeWindow(2 * hour)
		rows, rep, err := c.DB.QueryTimeRangeCtx(ctx, tw)
		if err != nil {
			return out, fmt.Errorf("time query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("time-%d", i), Rows: rows, Report: rep})

		sw := s.SpaceWindow(20)
		rows, rep, err = c.DB.QuerySpaceCtx(ctx, sw)
		if err != nil {
			return out, fmt.Errorf("space query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("space-%d", i), Rows: rows, Report: rep})

		oid, ow := s.ObjectWindow(6 * hour)
		rows, rep, err = c.DB.QueryObjectCtx(ctx, oid, ow)
		if err != nil {
			return out, fmt.Errorf("object query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("object-%d", i), Rows: rows, Report: rep})

		sw2 := s.SpaceWindow(40)
		tw2 := s.TimeWindow(6 * hour)
		rows, rep, err = c.DB.QuerySpaceTimeCtx(ctx, sw2, tw2)
		if err != nil {
			return out, fmt.Errorf("spacetime query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("spacetime-%d", i), Rows: rows, Report: rep})
	}
	return out, nil
}

// SixQueries replays all six of the paper's query types — the four windows
// of StandardQueries plus similarity-threshold and k-nearest — from one
// seeded sampler. Identical (seed, rounds) against clusters holding the same
// dataset issue identical queries; the failover suite uses this as its
// bit-identical convergence probe.
func (c *Cluster) SixQueries(ctx context.Context, seed int64, rounds int) ([]QueryResult, error) {
	const hour = int64(3600_000)
	s := workload.NewQuerySampler(c.DS, seed)
	out := make([]QueryResult, 0, rounds*6)
	for i := 0; i < rounds; i++ {
		tw := s.TimeWindow(2 * hour)
		rows, rep, err := c.DB.QueryTimeRangeCtx(ctx, tw)
		if err != nil {
			return out, fmt.Errorf("time query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("time-%d", i), Rows: rows, Report: rep})

		sw := s.SpaceWindow(20)
		rows, rep, err = c.DB.QuerySpaceCtx(ctx, sw)
		if err != nil {
			return out, fmt.Errorf("space query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("space-%d", i), Rows: rows, Report: rep})

		oid, ow := s.ObjectWindow(6 * hour)
		rows, rep, err = c.DB.QueryObjectCtx(ctx, oid, ow)
		if err != nil {
			return out, fmt.Errorf("object query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("object-%d", i), Rows: rows, Report: rep})

		sw2 := s.SpaceWindow(40)
		tw2 := s.TimeWindow(6 * hour)
		rows, rep, err = c.DB.QuerySpaceTimeCtx(ctx, sw2, tw2)
		if err != nil {
			return out, fmt.Errorf("spacetime query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("spacetime-%d", i), Rows: rows, Report: rep})

		qt := s.QueryTrajectory()
		rows, rep, err = c.DB.QuerySimilarThresholdCtx(ctx, qt, similarity.Frechet, 0.05)
		if err != nil {
			return out, fmt.Errorf("similar query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("similar-%d", i), Rows: rows, Report: rep})

		nt := s.QueryTrajectory()
		p := nt.Points[len(nt.Points)/2]
		rows, rep, err = c.DB.QueryNearestCtx(ctx, p.X, p.Y, 5)
		if err != nil {
			return out, fmt.Errorf("nearest query %d: %w", i, err)
		}
		out = append(out, QueryResult{Name: fmt.Sprintf("nearest-%d", i), Rows: rows, Report: rep})
	}
	return out, nil
}

// Fingerprint reduces a result set to a deterministic string — sorted TIDs,
// each with its point count and first/last point — so two clusters' answers
// can be compared bit-for-bit, not just by id set.
func Fingerprint(ts []*tman.Trajectory) string {
	lines := make([]string, len(ts))
	for i, t := range ts {
		var first, last tman.Point
		if len(t.Points) > 0 {
			first, last = t.Points[0], t.Points[len(t.Points)-1]
		}
		lines[i] = fmt.Sprintf("%s/%s:%d:%v:%v", t.OID, t.TID, len(t.Points), first, last)
	}
	sort.Strings(lines)
	return fmt.Sprint(lines)
}

// TIDs returns the sorted trajectory ids of a result set.
func TIDs(ts []*tman.Trajectory) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.TID
	}
	sort.Strings(out)
	return out
}

// SameTIDs reports whether two result sets contain exactly the same
// trajectories (order-insensitive).
func SameTIDs(a, b []*tman.Trajectory) bool {
	as, bs := TIDs(a), TIDs(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// SubsetTIDs reports whether every trajectory in a also appears in b.
func SubsetTIDs(a, b []*tman.Trajectory) bool {
	have := make(map[string]struct{}, len(b))
	for _, t := range b {
		have[t.TID] = struct{}{}
	}
	for _, t := range a {
		if _, ok := have[t.TID]; !ok {
			return false
		}
	}
	return true
}

// TotalRetries sums client RPC retries across a result set's reports.
func TotalRetries(rs []QueryResult) int64 {
	var n int64
	for _, r := range rs {
		n += r.Report.RetriedRPCs
	}
	return n
}

// AnyPartial reports whether any query in the set degraded.
func AnyPartial(rs []QueryResult) bool {
	for _, r := range rs {
		if r.Report.Partial {
			return true
		}
	}
	return false
}
