package chaos

import (
	"context"
	"testing"
	"time"

	tman "github.com/tman-db/tman"
)

const (
	datasetSize = 1500
	dataSeed    = 7
	querySeed   = 21
	rounds      = 4
)

// TestFaultedClusterConvergesToFaultFree is the headline chaos property:
// with transient per-RPC failures, a slow node and short unavailability
// windows after splits, every query against the faulted cluster must return
// exactly the fault-free answer as long as retries can eventually succeed —
// and must actually have retried, without sleeping for real backoff time.
func TestFaultedClusterConvergesToFaultFree(t *testing.T) {
	healthy, err := NewCluster(datasetSize, dataSeed)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := NewCluster(datasetSize, dataSeed,
		tman.WithFaultInjection(tman.FaultConfig{
			Seed:                      99,
			PFailRPC:                  0.05,
			SlowNodes:                 map[int]float64{0: 4},
			UnavailableRPCsAfterSplit: 1,
		}),
		tman.WithRetryPolicy(tman.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 500 * time.Millisecond, // sleeping for real would blow the wall-clock bound
			MaxBackoff:  10 * time.Second,
			Multiplier:  2,
			JitterFrac:  0.2,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	want, err := healthy.StandardQueries(context.Background(), querySeed, rounds)
	if err != nil {
		t.Fatal(err)
	}
	started := time.Now()
	got, err := faulted.StandardQueries(context.Background(), querySeed, rounds)
	elapsed := time.Since(started)
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("query count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Report.Partial {
			t.Fatalf("%s: degraded despite winnable retries: %+v", got[i].Name, got[i].Report)
		}
		if !SameTIDs(got[i].Rows, want[i].Rows) {
			t.Fatalf("%s: faulted answer diverged: %d rows vs %d\nfaulted:  %v\nhealthy: %v",
				got[i].Name, len(got[i].Rows), len(want[i].Rows), TIDs(got[i].Rows), TIDs(want[i].Rows))
		}
	}
	retries := TotalRetries(got)
	if retries == 0 {
		t.Fatal("a 5% fault rate plus post-split unavailability must cause retries")
	}
	// Backoff is analytic: with a 500ms base, really sleeping for `retries`
	// backoffs would take many seconds at least.
	if elapsed > 5*time.Second {
		t.Fatalf("workload took %v for %d retries — backoff appears to sleep for real", elapsed, retries)
	}
	if AnyPartial(want) || TotalRetries(want) != 0 {
		t.Fatal("fault-free cluster must not retry or degrade")
	}
}

// TestFaultScheduleIsDeterministic: the same seeds must reproduce the exact
// same retry counts, not just the same answers.
func TestFaultScheduleIsDeterministic(t *testing.T) {
	run := func() []QueryResult {
		c, err := NewCluster(800, dataSeed,
			tman.WithFaultInjection(tman.FaultConfig{Seed: 5, PFailRPC: 0.1}),
		)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := c.StandardQueries(context.Background(), querySeed, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Report.RetriedRPCs != b[i].Report.RetriedRPCs {
			t.Fatalf("%s: retry schedule not deterministic: %d vs %d",
				a[i].Name, a[i].Report.RetriedRPCs, b[i].Report.RetriedRPCs)
		}
	}
	if TotalRetries(a) == 0 {
		t.Fatal("expected retries at a 10% fault rate")
	}
}

// TestTightDeadlineYieldsGracefulPartialResults: aggressive faults plus a
// deadline shorter than one backoff force some region scans to be
// abandoned. The query must not fail: it returns the rows it could collect,
// flags Partial, and the partial answer is a strict, correct subset of the
// fault-free answer.
func TestTightDeadlineYieldsGracefulPartialResults(t *testing.T) {
	healthy, err := NewCluster(datasetSize, dataSeed)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := NewCluster(datasetSize, dataSeed,
		tman.WithFaultInjection(tman.FaultConfig{Seed: 13, PFailRPC: 0.5}),
		tman.WithRetryPolicy(tman.RetryPolicy{
			MaxAttempts: 6,
			BaseBackoff: 300 * time.Millisecond,
			MaxBackoff:  10 * time.Second,
			Multiplier:  2,
			JitterFrac:  0.2,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Whole-dataset spatial query: every region contributes, so healthy
	// regions keep answering while faulted ones run out of deadline.
	window := healthy.DS.Boundary
	full, _, err := healthy.DB.QuerySpace(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("healthy full scan returned nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	started := time.Now()
	rows, rep, err := faulted.DB.QuerySpaceCtx(ctx, window)
	if err != nil {
		t.Fatalf("deadline must degrade, not error: %v", err)
	}
	if time.Since(started) > 2*time.Second {
		t.Fatal("deadline handling slept for real backoff time")
	}
	if !rep.Partial {
		t.Fatalf("expected a partial result under 50%% faults and a 50ms deadline: %+v", rep)
	}
	if len(rows) == 0 {
		t.Fatal("partial result must keep rows from healthy regions")
	}
	if len(rows) >= len(full) {
		t.Fatalf("partial result should be missing rows: %d vs full %d", len(rows), len(full))
	}
	if !SubsetTIDs(rows, full) {
		t.Fatal("partial result contains trajectories absent from the fault-free answer")
	}
	if rep.FailedRegions == 0 {
		t.Fatalf("partial report must count failed regions: %+v", rep)
	}
}

// TestCancelAbortsQueries: explicit cancellation is an error, not a partial
// result — callers who gave up must be able to tell.
func TestCancelAbortsQueries(t *testing.T) {
	c, err := NewCluster(400, dataSeed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.DB.QuerySpaceCtx(ctx, c.DS.Boundary); err == nil {
		t.Fatal("cancelled query must return an error")
	}
}
