package similarity_test

import (
	"fmt"

	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

// Fréchet respects traversal order while Hausdorff does not: the same road
// driven in opposite directions is Hausdorff-identical but Fréchet-distant.
func ExampleDistance() {
	forward := []model.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	backward := []model.Point{{X: 2, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0}}

	fmt.Printf("hausdorff: %.0f\n", similarity.Distance(similarity.Hausdorff, forward, backward))
	fmt.Printf("frechet:   %.0f\n", similarity.Distance(similarity.Frechet, forward, backward))
	// Output:
	// hausdorff: 0
	// frechet:   2
}
