package similarity

import (
	"math/rand"
	"testing"
)

func BenchmarkFrechet100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randTraj(rng, 100)
	q := randTraj(rng, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FrechetDistance(p, q)
	}
}

func BenchmarkDTW100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randTraj(rng, 100)
	q := randTraj(rng, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DTWDistance(p, q)
	}
}

func BenchmarkHausdorff100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := randTraj(rng, 100)
	q := randTraj(rng, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HausdorffDistance(p, q)
	}
}
