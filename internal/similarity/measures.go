// Package similarity implements the trajectory distance measures TMan's
// similarity queries support (paper Section V-F / VI-E): discrete Fréchet,
// Dynamic Time Warping, and Hausdorff distance, together with cheap lower
// bounds derived from MBRs and DP-Features that make TraSS-style global
// pruning and local filtering possible.
//
// All measures operate on point sequences in a common planar coordinate
// system (TMan normalizes to the unit square before comparing, so
// thresholds like the paper's θ = 0.015 are fractions of the space).
package similarity

import (
	"math"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Measure identifies a trajectory distance function.
type Measure int

const (
	// Frechet is the discrete Fréchet distance.
	Frechet Measure = iota
	// DTW is dynamic time warping with Euclidean ground distance.
	DTW
	// Hausdorff is the symmetric Hausdorff distance.
	Hausdorff
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Frechet:
		return "frechet"
	case DTW:
		return "dtw"
	case Hausdorff:
		return "hausdorff"
	default:
		return "unknown"
	}
}

// Distance computes the chosen measure between two point sequences. Both
// must be non-empty; it returns +Inf otherwise.
func Distance(m Measure, a, b []model.Point) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	switch m {
	case Frechet:
		return FrechetDistance(a, b)
	case DTW:
		return DTWDistance(a, b)
	case Hausdorff:
		return HausdorffDistance(a, b)
	default:
		return math.Inf(1)
	}
}

func euclid(p, q model.Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// FrechetDistance computes the discrete Fréchet distance with the classic
// O(n·m) dynamic program, using a rolling row (O(m) memory).
func FrechetDistance(a, b []model.Point) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	for j := 0; j < m; j++ {
		d := euclid(a[0], b[j])
		if j == 0 {
			prev[0] = d
		} else {
			prev[j] = math.Max(prev[j-1], d)
		}
	}
	for i := 1; i < n; i++ {
		cur[0] = math.Max(prev[0], euclid(a[i], b[0]))
		for j := 1; j < m; j++ {
			best := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			cur[j] = math.Max(best, euclid(a[i], b[j]))
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// DTWDistance computes dynamic time warping (sum of matched pair distances,
// no warping window) with O(m) memory.
func DTWDistance(a, b []model.Point) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	prev[0] = euclid(a[0], b[0])
	for j := 1; j < m; j++ {
		prev[j] = prev[j-1] + euclid(a[0], b[j])
	}
	for i := 1; i < n; i++ {
		cur[0] = prev[0] + euclid(a[i], b[0])
		for j := 1; j < m; j++ {
			best := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			cur[j] = best + euclid(a[i], b[j])
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// HausdorffDistance computes the symmetric Hausdorff distance between the
// two point sets.
func HausdorffDistance(a, b []model.Point) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b []model.Point) float64 {
	var worst float64
	for _, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			if d := euclid(p, q); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// MBRLowerBound returns a lower bound on Fréchet and Hausdorff distances
// between trajectories given only their MBRs: the minimum distance between
// the rectangles. (For DTW it bounds the per-pair ground distance, so
// DTW >= MBRLowerBound as well since DTW sums at least one pair.)
func MBRLowerBound(a, b geo.Rect) float64 {
	return a.MinDist(b)
}

// EndpointLowerBound returns a lower bound valid for alignment-constrained
// measures: discrete Fréchet and DTW both match the first points together
// and the last points together, so
//
//	d >= max( dist(a_first, b_first), dist(a_last, b_last) ).
//
// The bound does not hold for Hausdorff (alignment-free) and returns 0
// there. rep may be a sparse representative-point sketch as long as it
// preserves the true endpoints (DP-Features does).
func EndpointLowerBound(m Measure, query, rep []model.Point) float64 {
	if m == Hausdorff || len(query) == 0 || len(rep) == 0 {
		return 0
	}
	dFirst := euclid(query[0], rep[0])
	dLast := euclid(query[len(query)-1], rep[len(rep)-1])
	return math.Max(dFirst, dLast)
}

// FeatureLowerBound returns a lower bound on the Fréchet and Hausdorff
// distances between a query point sequence and a stored trajectory known
// only through its DP-Features sketch.
//
// Both measures are at least max over query endpoints' matched-pair
// distance? No single-point bound is valid for interior points under
// Fréchet (alignment is flexible), but every point of the *stored*
// trajectory lies in some feature box and every query point must match some
// stored point, so
//
//	d >= max_i min_box dist(q_i, box)      for Fréchet
//	d >= max_i min_box dist(q_i, box)      for Hausdorff (directed)
//
// For DTW the same quantity bounds the largest single matched pair and thus
// the total sum.
func FeatureLowerBound(query []model.Point, f model.DPFeatures) float64 {
	var worst float64
	for _, p := range query {
		d := f.MinDistToPoint(p.X, p.Y)
		if d > worst {
			worst = d
		}
	}
	return worst
}
