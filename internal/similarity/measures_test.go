package similarity

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

func pts(xy ...float64) []model.Point {
	out := make([]model.Point, len(xy)/2)
	for i := range out {
		out[i] = model.Point{X: xy[2*i], Y: xy[2*i+1], T: int64(i)}
	}
	return out
}

func TestFrechetKnownValues(t *testing.T) {
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(0, 1, 1, 1, 2, 1)
	// Parallel lines distance 1 apart: Fréchet = 1.
	if d := FrechetDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("parallel lines = %g, want 1", d)
	}
	// Identical sequences: 0.
	if d := FrechetDistance(a, a); d != 0 {
		t.Errorf("identical = %g", d)
	}
	// Single points.
	if d := FrechetDistance(pts(0, 0), pts(3, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("points = %g, want 5", d)
	}
}

func TestFrechetRequiresOrderPreservation(t *testing.T) {
	// A goes left-to-right; B right-to-left along the same path: Hausdorff
	// is 0-ish but Fréchet must pay the full traversal.
	a := pts(0, 0, 1, 0, 2, 0)
	b := pts(2, 0, 1, 0, 0, 0)
	f := FrechetDistance(a, b)
	h := HausdorffDistance(a, b)
	if h != 0 {
		t.Errorf("Hausdorff of same point set = %g, want 0", h)
	}
	if f < 2-1e-12 {
		t.Errorf("reversed Fréchet = %g, want >= 2", f)
	}
}

func TestDTWKnownValues(t *testing.T) {
	a := pts(0, 0, 1, 0)
	b := pts(0, 0, 1, 0)
	if d := DTWDistance(a, b); d != 0 {
		t.Errorf("identical DTW = %g", d)
	}
	// One-point vs two-point: both b points match the single a point.
	d := DTWDistance(pts(0, 0), pts(0, 1, 0, 2))
	if math.Abs(d-3) > 1e-12 {
		t.Errorf("DTW = %g, want 1+2 = 3", d)
	}
}

func TestDTWAtLeastFrechetStyleBound(t *testing.T) {
	// DTW (a sum) is always >= the largest single matched distance and
	// >= MBR min distance.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		a := randTraj(rng, 2+rng.Intn(20))
		b := randTraj(rng, 2+rng.Intn(20))
		dtw := DTWDistance(a, b)
		lb := MBRLowerBound(boundsOf(a), boundsOf(b))
		if dtw < lb-1e-9 {
			t.Fatalf("iter %d: DTW %g < MBR lower bound %g", iter, dtw, lb)
		}
	}
}

func TestHausdorffKnownValues(t *testing.T) {
	a := pts(0, 0, 1, 0)
	b := pts(0, 0, 1, 0, 1, 2)
	// Directed a->b = 0; b->a = 2 (point (1,2) to (1,0)).
	if d := HausdorffDistance(a, b); math.Abs(d-2) > 1e-12 {
		t.Errorf("Hausdorff = %g, want 2", d)
	}
	if d := HausdorffDistance(a, a); d != 0 {
		t.Errorf("identical Hausdorff = %g", d)
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, m := range []Measure{Frechet, DTW, Hausdorff} {
		if d := Distance(m, nil, pts(0, 0)); !math.IsInf(d, 1) {
			t.Errorf("%v with empty input = %g, want +Inf", m, d)
		}
	}
	if !math.IsInf(FrechetDistance(nil, nil), 1) ||
		!math.IsInf(DTWDistance(pts(1, 1), nil), 1) ||
		!math.IsInf(HausdorffDistance(nil, pts(1, 1)), 1) {
		t.Error("direct calls with empty inputs should return +Inf")
	}
	if d := Distance(Measure(99), pts(0, 0), pts(0, 0)); !math.IsInf(d, 1) {
		t.Error("unknown measure should return +Inf")
	}
}

func randTraj(rng *rand.Rand, n int) []model.Point {
	out := make([]model.Point, n)
	x, y := rng.Float64(), rng.Float64()
	for i := range out {
		x += (rng.Float64() - 0.5) * 0.05
		y += (rng.Float64() - 0.5) * 0.05
		out[i] = model.Point{X: x, Y: y, T: int64(i)}
	}
	return out
}

func boundsOf(p []model.Point) geo.Rect {
	r := geo.Rect{MinX: p[0].X, MinY: p[0].Y, MaxX: p[0].X, MaxY: p[0].Y}
	for _, q := range p[1:] {
		if q.X < r.MinX {
			r.MinX = q.X
		}
		if q.X > r.MaxX {
			r.MaxX = q.X
		}
		if q.Y < r.MinY {
			r.MinY = q.Y
		}
		if q.Y > r.MaxY {
			r.MaxY = q.Y
		}
	}
	return r
}

// Metric-style properties on random data: symmetry and identity for
// Fréchet and Hausdorff; all measures non-negative; MBR and feature lower
// bounds never exceed the exact distances.
func TestMeasureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		a := randTraj(rng, 2+rng.Intn(30))
		b := randTraj(rng, 2+rng.Intn(30))
		f1, f2 := FrechetDistance(a, b), FrechetDistance(b, a)
		if math.Abs(f1-f2) > 1e-9 {
			t.Fatalf("Fréchet not symmetric: %g vs %g", f1, f2)
		}
		h1, h2 := HausdorffDistance(a, b), HausdorffDistance(b, a)
		if math.Abs(h1-h2) > 1e-9 {
			t.Fatalf("Hausdorff not symmetric: %g vs %g", h1, h2)
		}
		if f1 < 0 || h1 < 0 || DTWDistance(a, b) < 0 {
			t.Fatal("distances must be non-negative")
		}
		// Hausdorff <= Fréchet always (Fréchet is a matching constrained
		// harder than nearest-neighbor).
		if h1 > f1+1e-9 {
			t.Fatalf("Hausdorff %g > Fréchet %g", h1, f1)
		}
		// Lower bounds.
		lb := MBRLowerBound(boundsOf(a), boundsOf(b))
		if lb > f1+1e-9 || lb > h1+1e-9 {
			t.Fatalf("MBR bound %g exceeds exact (f=%g h=%g)", lb, f1, h1)
		}
		trB := &model.Trajectory{OID: "o", TID: "b", Points: b}
		feat := model.ExtractDPFeatures(trB, 0.01, 8)
		flb := FeatureLowerBound(a, feat)
		if flb > f1+1e-9 {
			t.Fatalf("feature bound %g exceeds Fréchet %g", flb, f1)
		}
		if flb > h1+1e-9 {
			t.Fatalf("feature bound %g exceeds Hausdorff %g", flb, h1)
		}
		if flb > DTWDistance(a, b)+1e-9 {
			t.Fatalf("feature bound %g exceeds DTW", flb)
		}
	}
}

func TestMeasureString(t *testing.T) {
	if Frechet.String() != "frechet" || DTW.String() != "dtw" ||
		Hausdorff.String() != "hausdorff" || Measure(9).String() != "unknown" {
		t.Error("Measure.String labels wrong")
	}
}
