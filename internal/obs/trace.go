package obs

import (
	"context"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed node of a query trace. Spans carry wall time plus
// analytic cost-model charges (RPC counts, rows visited/passed, simulated
// I/O nanoseconds) as integer attributes, so a single trace reproduces the
// paper's candidates/retrievals decomposition for one live query.
//
// All methods are safe on a nil receiver and do nothing — code under trace
// instrumentation never branches on "is tracing on": an untraced context
// yields nil spans and every call through them is a no-op. Child creation
// and attribute updates take the span's own mutex; the hot path of an
// untraced query touches no locks at all.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	attrs    map[string]int64
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild creates and returns a running child span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Child attaches an already-completed child span with an explicit duration —
// used to record per-region task timings after a parallel fan-out finishes,
// without sharing a running span across workers.
func (s *Span) Child(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), dur: d}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Attach grafts an already-built span (and its subtree) onto this span as a
// child — used to attach side-band trees like background-job snapshots to a
// query trace after the fact.
func (s *Span) Attach(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span with its wall-clock duration (idempotent: the first
// close wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// EndWith closes the span with an explicit duration — query roots use the
// report's elapsed time (wall + analytic I/O) so the trace agrees with the
// cost model rather than the host's scheduler.
func (s *Span) EndWith(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
}

// Add accumulates an integer attribute on the span.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 8)
	}
	s.attrs[key] += delta
	s.mu.Unlock()
}

// Attr reads one attribute (0 when absent or nil span).
func (s *Span) Attr(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Duration returns the span duration (0 while running or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		c.Walk(fn)
	}
}

// SumAttr totals an attribute over the span tree.
func (s *Span) SumAttr(key string) int64 {
	var total int64
	s.Walk(func(sp *Span) { total += sp.Attr(key) })
	return total
}

// SpanJSON is the wire form of a span tree (the /trace endpoint payload).
type SpanJSON struct {
	Name       string           `json:"name"`
	DurationUS float64          `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []SpanJSON       `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		DurationUS: float64(s.dur.Nanoseconds()) / 1e3,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// ----------------------------------------------------- context plumbing ---

type spanKey struct{}

// ContextWithSpan returns ctx carrying span as the active span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFrom returns the active span, or nil when the context is untraced.
// This is the only per-operation cost tracing adds to an untraced query: one
// context value lookup.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a context
// carrying it. On an untraced context it returns (ctx, nil) without
// allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

type ridKey struct{}

// WithRequestID returns ctx carrying a request ID (httpapi's X-Request-Id).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the request ID, or "" when absent.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// NewRequestID generates a short unique request ID: a process-scoped counter
// mixed through splitmix64 so IDs are unique, non-sequential-looking and
// need no entropy syscalls on the request path.
func NewRequestID() string {
	x := uint64(ridSeq.Add(1)) + ridSeed
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	var b [8]byte
	for i := range b {
		b[i] = byte(x >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

var (
	ridSeq  atomic.Int64
	ridSeed = uint64(time.Now().UnixNano())
)

// ---------------------------------------------------------------- sampler ---

// Sampler decides which operations get a trace. Sampling is deterministic —
// every Nth operation where N ≈ 1/rate — so load tests produce a stable
// trace volume. A nil sampler never samples; rate <= 0 builds a nil sampler,
// keeping the disabled path branch-free at the call site.
type Sampler struct {
	every int64
	seq   atomic.Int64
}

// NewSampler builds a sampler for the given rate in [0,1]. rate <= 0 returns
// nil (never sample); rate >= 1 samples everything.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	if rate >= 1 {
		return &Sampler{every: 1}
	}
	return &Sampler{every: int64(math.Round(1 / rate))}
}

// Sample reports whether this operation should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.seq.Add(1)%s.every == 0
}

// -------------------------------------------------------------- trace ring ---

// TraceRing keeps the most recent completed traces for the debug endpoints.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Span
	next int
}

// NewTraceRing builds a ring holding up to n traces (n <= 0 → 16).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 16
	}
	return &TraceRing{buf: make([]*Span, 0, n)}
}

// Add records a completed trace root.
func (r *TraceRing) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.mu.Unlock()
}

// Last returns the most recently added trace (nil when empty).
func (r *TraceRing) Last() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return nil
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.buf) - 1
	}
	return r.buf[i]
}

// Snapshot returns the stored traces, oldest first.
func (r *TraceRing) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out
}
