package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestJobNilSafety exercises every job/recorder method through nil receivers
// — instrumented store paths run with a nil recorder in unit fixtures and
// must never branch or panic.
func TestJobNilSafety(t *testing.T) {
	var r *JobRecorder
	j := r.Begin("flush", "primary", 1)
	if j != nil {
		t.Fatal("nil recorder produced a job")
	}
	j.AddBytesRead(10)
	j.AddBytesWritten(10)
	j.AddItems(1)
	j.AddStall(time.Second)
	if j.Running() || j.Duration() != 0 {
		t.Fatal("nil job leaked state")
	}
	r.End(j)
	if r.RunningCount() != 0 {
		t.Fatal("nil recorder counted jobs")
	}
	if s := r.KindStats("flush"); s != (JobKindStats{}) {
		t.Fatal("nil recorder returned stats")
	}
	if run, rec := r.Snapshot(0); run != nil || rec != nil {
		t.Fatal("nil recorder snapshotted")
	}
	if r.Overlapping(time.Time{}, time.Now()) != nil {
		t.Fatal("nil recorder overlapped")
	}
}

// TestJobRecorderLifecycle pins Begin/End accounting: running counts, ledger
// sums, per-kind aggregates, and End idempotence.
func TestJobRecorderLifecycle(t *testing.T) {
	r := NewJobRecorder(8)
	j := r.Begin("compact", "primary", 7)
	if !j.Running() || r.RunningCount() != 1 {
		t.Fatal("job not running after Begin")
	}
	j.AddBytesRead(100)
	j.AddBytesWritten(60)
	j.AddItems(3)
	j.AddStall(2 * time.Millisecond)
	r.End(j)
	r.End(j) // idempotent
	if j.Running() || r.RunningCount() != 0 {
		t.Fatal("job still running after End")
	}
	s := r.KindStats("compact")
	if s.Jobs != 1 || s.BytesRead != 100 || s.BytesWritten != 60 || s.Items != 3 ||
		s.StallNanos != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("kind stats = %+v", s)
	}
	if s.TotalNanos <= 0 {
		t.Fatal("completed job has no duration")
	}
	if got := r.KindStats("flush"); got != (JobKindStats{}) {
		t.Fatalf("unused kind has stats %+v", got)
	}
}

// TestJobRecorderRing checks the completed ring stays bounded and Snapshot
// returns newest-first.
func TestJobRecorderRing(t *testing.T) {
	r := NewJobRecorder(4)
	for i := 0; i < 10; i++ {
		r.End(r.Begin("flush", "primary", int64(i)))
	}
	_, recent := r.Snapshot(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, js := range recent {
		if want := int64(10 - i); js.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (newest first)", i, js.ID, want)
		}
	}
	_, limited := r.Snapshot(2)
	if len(limited) != 2 || limited[0].ID != 10 {
		t.Fatalf("limited snapshot = %+v", limited)
	}
	running := r.Begin("compact", "primary", 1)
	run, _ := r.Snapshot(0)
	if len(run) != 1 || !run[0].Running {
		t.Fatalf("running snapshot = %+v", run)
	}
	r.End(running)
}

// TestJobOverlapping pins the window-intersection semantics /trace relies on
// to attach background interference to a query.
func TestJobOverlapping(t *testing.T) {
	r := NewJobRecorder(8)
	before := r.Begin("flush", "primary", 1)
	r.End(before)
	time.Sleep(2 * time.Millisecond)

	qStart := time.Now()
	during := r.Begin("compact", "primary", 2)
	during.AddBytesRead(42)
	r.End(during)
	still := r.Begin("catchup", "primary", 3)
	qEnd := time.Now()

	got := r.Overlapping(qStart, qEnd)
	kinds := make(map[string]bool, len(got))
	for _, js := range got {
		kinds[js.Kind] = true
	}
	if kinds["flush"] {
		t.Fatalf("job that ended before the window was attached: %+v", got)
	}
	if !kinds["compact"] || !kinds["catchup"] {
		t.Fatalf("overlapping jobs missing: %+v", got)
	}
	r.End(still)

	// A completed job spanning the whole window still overlaps.
	got = r.Overlapping(qStart, qEnd)
	if len(got) < 2 {
		t.Fatalf("completed overlapping jobs lost: %+v", got)
	}
}

// TestJobSnapshotSpan checks the trace-attachment conversion carries the
// ledger as span attributes.
func TestJobSnapshotSpan(t *testing.T) {
	r := NewJobRecorder(2)
	j := r.Begin("compact", "primary", 5)
	j.AddBytesRead(1000)
	j.AddStall(time.Millisecond)
	r.End(j)
	_, recent := r.Snapshot(1)
	sp := recent[0].Span()
	if sp.Name() != "compact:primary" {
		t.Fatalf("span name = %q", sp.Name())
	}
	if sp.Attr("bytes_read") != 1000 || sp.Attr("region") != 5 || sp.Attr("stall_ns") != time.Millisecond.Nanoseconds() {
		t.Fatalf("span attrs wrong: %+v", sp.JSON())
	}
}

// TestJobRecorderConcurrent hammers the recorder from many goroutines —
// run under -race, this is the ring's data-race test.
func TestJobRecorderConcurrent(t *testing.T) {
	r := NewJobRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := r.Begin("flush", fmt.Sprintf("t%d", g), int64(i))
				j.AddBytesRead(1)
				j.AddItems(1)
				r.End(j)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot(8)
			r.Overlapping(time.Now().Add(-time.Second), time.Now())
			r.KindStats("flush")
		}
	}()
	wg.Wait()
	<-done
	if r.RunningCount() != 0 {
		t.Fatalf("running count = %d after all jobs ended", r.RunningCount())
	}
	if s := r.KindStats("flush"); s.Jobs != 1600 || s.BytesRead != 1600 {
		t.Fatalf("aggregates lost updates: %+v", s)
	}
}
