package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantileGolden pins the quantile estimator against hand-
// computed values: 100 observations land one per unit in (0,100] over
// bounds {10,20,...,100}, so every bucket holds exactly 10 and the
// interpolated quantiles are exact.
func TestHistogramQuantileGolden(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := newHistogram(bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := 5050.0; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	golden := []struct {
		q, want float64
	}{
		{0.50, 50},
		{0.95, 95},
		{0.99, 99},
		{0.10, 10},
		{1.00, 100},
	}
	for _, g := range golden {
		if got := s.Quantile(g.q); math.Abs(got-g.want) > 1e-9 {
			t.Errorf("quantile(%g) = %g, want %g", g.q, got, g.want)
		}
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("snapshot quantiles = %g/%g/%g, want 50/95/99", s.P50, s.P95, s.P99)
	}
}

// TestHistogramQuantileEdges covers the boundary semantics: empty histogram,
// everything in the first bucket, and observations beyond the last bound
// (+Inf bucket clamps to the highest finite bound).
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h.Observe(0.5)
	h.Observe(0.5)
	s := h.Snapshot()
	// Two observations in bucket (0,1]: p50 rank=1 interpolates to 0.5.
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("first-bucket p50 = %g, want 0.5", got)
	}
	h.Observe(1000) // +Inf bucket
	s = h.Snapshot()
	if got := s.Quantile(1.0); got != 4 {
		t.Fatalf("+Inf quantile = %g, want highest bound 4", got)
	}
	if s.MaxSeen != 4 {
		t.Fatalf("MaxSeen = %g, want 4", s.MaxSeen)
	}
}

// TestHistogramBucketEdges pins the le semantics: a value equal to a bound
// lands in that bound's bucket (cumulative le counting).
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	s := h.Snapshot()
	want := []int64{1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — mixed
// registration (idempotent re-register), observation, and exposition — and
// then checks totals. Run under -race this is the registry's thread-safety
// proof.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("test_ops_total", "ops").Inc()
				reg.Gauge("test_level", "level").Set(int64(i))
				reg.Histogram("test_latency_seconds", "lat", DefBuckets).Observe(0.001)
				if i%100 == 0 {
					var sb strings.Builder
					reg.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("test_ops_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := reg.Histogram("test_latency_seconds", "", nil).Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	if math.Abs(s.Sum-float64(workers*perWorker)*0.001) > 1e-6 {
		t.Fatalf("histogram sum = %g", s.Sum)
	}
}

// TestWritePrometheusFormat checks the exposition shape: HELP/TYPE per
// family, labeled series merged under one family, histograms expanded into
// cumulative buckets with +Inf, _sum and _count.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`q_total{type="a"}`, "queries").Add(3)
	reg.Counter(`q_total{type="b"}`, "queries").Add(4)
	reg.GaugeFunc("g_now", "gauge", func() float64 { return 2.5 })
	h := reg.Histogram("lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE q_total counter\n",
		`q_total{type="a"} 3` + "\n",
		`q_total{type="b"} 4` + "\n",
		"# TYPE g_now gauge\n",
		"g_now 2.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1"} 1` + "\n",
		`lat_seconds_bucket{le="2"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 11\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE q_total"); got != 1 {
		t.Errorf("TYPE q_total emitted %d times, want once", got)
	}
}

// TestSeriesCount checks histogram expansion in the series accounting.
func TestSeriesCount(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "")
	reg.Gauge("b", "")
	reg.Histogram("h_seconds", "", []float64{1, 2, 3})
	// counter + gauge + (3 buckets + Inf + sum + count)
	if got := reg.SeriesCount(); got != 2+6 {
		t.Fatalf("SeriesCount = %d, want 8", got)
	}
}
