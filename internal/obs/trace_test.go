package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanNilSafety exercises every Span method on a nil receiver — the
// untraced hot path must never panic or allocate observable state.
func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.EndWith(time.Second)
	s.Add("k", 1)
	if s.Attr("k") != 0 || s.Name() != "" || s.Duration() != 0 {
		t.Fatal("nil span leaked state")
	}
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if c := s.Child("x", time.Second); c != nil {
		t.Fatal("nil span produced a completed child")
	}
	s.Walk(func(*Span) { t.Fatal("nil span walked") })
	if s.SumAttr("k") != 0 {
		t.Fatal("nil span summed")
	}
	if j := s.JSON(); j.Name != "" {
		t.Fatal("nil span serialized")
	}
}

// TestSpanTree builds a small trace and checks attribute summing and the
// JSON wire form.
func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	scan := root.StartChild("scan")
	scan.Add("rows_visited", 70)
	scan.Child("region:1", 2*time.Millisecond).Add("rows", 30)
	scan.Child("region:2", 3*time.Millisecond).Add("rows", 40)
	scan.End()
	root.Add("rows_visited", 30)
	root.EndWith(10 * time.Millisecond)

	if got := root.SumAttr("rows_visited"); got != 100 {
		t.Fatalf("SumAttr(rows_visited) = %d, want 100", got)
	}
	if got := root.SumAttr("rows"); got != 70 {
		t.Fatalf("SumAttr(rows) = %d, want 70", got)
	}
	j := root.JSON()
	if j.Name != "query" || j.DurationUS != 10000 {
		t.Fatalf("root JSON = %+v", j)
	}
	if len(j.Children) != 1 || len(j.Children[0].Children) != 2 {
		t.Fatalf("tree shape wrong: %+v", j)
	}
	if j.Children[0].Children[1].Attrs["rows"] != 40 {
		t.Fatalf("region attrs wrong: %+v", j.Children[0].Children[1])
	}
}

// TestContextPlumbing checks span and request-ID propagation through
// context, including the untraced fast path.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context carried a span")
	}
	if c2, sp := StartSpan(ctx, "x"); sp != nil || c2 != ctx {
		t.Fatal("StartSpan on untraced context should be a no-op")
	}
	root := NewSpan("root")
	ctx = ContextWithSpan(ctx, root)
	c2, child := StartSpan(ctx, "child")
	if child == nil || SpanFrom(c2) != child {
		t.Fatal("StartSpan did not attach the child")
	}

	if RequestIDFrom(ctx) != "" {
		t.Fatal("unexpected request id")
	}
	ctx = WithRequestID(ctx, "abc123")
	if RequestIDFrom(ctx) != "abc123" {
		t.Fatal("request id lost")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("request ids not unique/sized: %q %q", a, b)
	}
}

// TestSampler pins the deterministic sampling contract.
func TestSampler(t *testing.T) {
	if s := NewSampler(0); s.Sample() {
		t.Fatal("rate 0 sampled")
	}
	if s := NewSampler(-1); s != nil {
		t.Fatal("negative rate should build a nil sampler")
	}
	always := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 skipped an operation")
		}
	}
	tenth := NewSampler(0.1)
	hits := 0
	for i := 0; i < 1000; i++ {
		if tenth.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("rate 0.1 sampled %d of 1000, want exactly 100 (deterministic)", hits)
	}
}

// TestSpanAttach checks grafting a pre-built span tree (the background-job
// attachment path) onto a parent, including nil safety on both sides.
func TestSpanAttach(t *testing.T) {
	var nilSpan *Span
	nilSpan.Attach(NewSpan("x")) // must not panic
	root := NewSpan("request")
	root.Attach(nil)
	job := &Span{name: "compact:primary", start: time.Now(), dur: 3 * time.Millisecond}
	job.Add("bytes_read", 77)
	bg := root.Child("background", 0)
	bg.Attach(job)
	if got := root.SumAttr("bytes_read"); got != 77 {
		t.Fatalf("SumAttr over attached tree = %d, want 77", got)
	}
	j := root.JSON()
	if len(j.Children) != 1 || len(j.Children[0].Children) != 1 ||
		j.Children[0].Children[0].Name != "compact:primary" {
		t.Fatalf("attached tree shape wrong: %+v", j)
	}
}

// TestTraceRingConcurrent races many writers against readers; under -race
// this pins the ring's synchronization, and afterwards every retained trace
// must be one of the spans actually added (no torn slots).
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	valid := sync.Map{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := NewSpan(fmt.Sprintf("w%d-%d", g, i))
				valid.Store(s, true)
				r.Add(s)
				if i%10 == 0 {
					r.Last()
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("ring holds %d traces, want 8", len(snap))
	}
	for _, s := range snap {
		if _, ok := valid.Load(s); !ok {
			t.Fatalf("ring retained a span that was never added: %v", s.Name())
		}
	}
}

// TestSamplerDeterministicAcrossRestarts pins that two samplers built with
// the same rate make identical decisions for the same operation sequence —
// a process restart must not change which queries get traced.
func TestSamplerDeterministicAcrossRestarts(t *testing.T) {
	a, b := NewSampler(0.25), NewSampler(0.25)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatalf("samplers diverged at operation %d", i)
		}
	}
	// The decision sequence is a pure function of the rate: every 4th
	// operation for rate 0.25, starting at the 4th.
	c := NewSampler(0.25)
	for i := 1; i <= 12; i++ {
		want := i%4 == 0
		if got := c.Sample(); got != want {
			t.Fatalf("operation %d sampled=%v, want %v", i, got, want)
		}
	}
}

// TestTraceRing checks capacity, ordering and Last.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Last() != nil {
		t.Fatal("empty ring returned a trace")
	}
	spans := []*Span{NewSpan("a"), NewSpan("b"), NewSpan("c"), NewSpan("d")}
	for _, s := range spans {
		r.Add(s)
	}
	if got := r.Last(); got != spans[3] {
		t.Fatalf("Last = %v, want d", got.Name())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name() != "b" || snap[2].Name() != "d" {
		names := make([]string, len(snap))
		for i, s := range snap {
			names[i] = s.Name()
		}
		t.Fatalf("snapshot = %v, want [b c d]", names)
	}
}
