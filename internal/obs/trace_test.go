package obs

import (
	"context"
	"testing"
	"time"
)

// TestSpanNilSafety exercises every Span method on a nil receiver — the
// untraced hot path must never panic or allocate observable state.
func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.EndWith(time.Second)
	s.Add("k", 1)
	if s.Attr("k") != 0 || s.Name() != "" || s.Duration() != 0 {
		t.Fatal("nil span leaked state")
	}
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if c := s.Child("x", time.Second); c != nil {
		t.Fatal("nil span produced a completed child")
	}
	s.Walk(func(*Span) { t.Fatal("nil span walked") })
	if s.SumAttr("k") != 0 {
		t.Fatal("nil span summed")
	}
	if j := s.JSON(); j.Name != "" {
		t.Fatal("nil span serialized")
	}
}

// TestSpanTree builds a small trace and checks attribute summing and the
// JSON wire form.
func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	scan := root.StartChild("scan")
	scan.Add("rows_visited", 70)
	scan.Child("region:1", 2*time.Millisecond).Add("rows", 30)
	scan.Child("region:2", 3*time.Millisecond).Add("rows", 40)
	scan.End()
	root.Add("rows_visited", 30)
	root.EndWith(10 * time.Millisecond)

	if got := root.SumAttr("rows_visited"); got != 100 {
		t.Fatalf("SumAttr(rows_visited) = %d, want 100", got)
	}
	if got := root.SumAttr("rows"); got != 70 {
		t.Fatalf("SumAttr(rows) = %d, want 70", got)
	}
	j := root.JSON()
	if j.Name != "query" || j.DurationUS != 10000 {
		t.Fatalf("root JSON = %+v", j)
	}
	if len(j.Children) != 1 || len(j.Children[0].Children) != 2 {
		t.Fatalf("tree shape wrong: %+v", j)
	}
	if j.Children[0].Children[1].Attrs["rows"] != 40 {
		t.Fatalf("region attrs wrong: %+v", j.Children[0].Children[1])
	}
}

// TestContextPlumbing checks span and request-ID propagation through
// context, including the untraced fast path.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context carried a span")
	}
	if c2, sp := StartSpan(ctx, "x"); sp != nil || c2 != ctx {
		t.Fatal("StartSpan on untraced context should be a no-op")
	}
	root := NewSpan("root")
	ctx = ContextWithSpan(ctx, root)
	c2, child := StartSpan(ctx, "child")
	if child == nil || SpanFrom(c2) != child {
		t.Fatal("StartSpan did not attach the child")
	}

	if RequestIDFrom(ctx) != "" {
		t.Fatal("unexpected request id")
	}
	ctx = WithRequestID(ctx, "abc123")
	if RequestIDFrom(ctx) != "abc123" {
		t.Fatal("request id lost")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("request ids not unique/sized: %q %q", a, b)
	}
}

// TestSampler pins the deterministic sampling contract.
func TestSampler(t *testing.T) {
	if s := NewSampler(0); s.Sample() {
		t.Fatal("rate 0 sampled")
	}
	if s := NewSampler(-1); s != nil {
		t.Fatal("negative rate should build a nil sampler")
	}
	always := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 skipped an operation")
		}
	}
	tenth := NewSampler(0.1)
	hits := 0
	for i := 0; i < 1000; i++ {
		if tenth.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("rate 0.1 sampled %d of 1000, want exactly 100 (deterministic)", hits)
	}
}

// TestTraceRing checks capacity, ordering and Last.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if r.Last() != nil {
		t.Fatal("empty ring returned a trace")
	}
	spans := []*Span{NewSpan("a"), NewSpan("b"), NewSpan("c"), NewSpan("d")}
	for _, s := range spans {
		r.Add(s)
	}
	if got := r.Last(); got != spans[3] {
		t.Fatalf("Last = %v, want d", got.Name())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name() != "b" || snap[2].Name() != "d" {
		names := make([]string, len(snap))
		for i, s := range snap {
			names[i] = s.Name()
		}
		t.Fatalf("snapshot = %v, want [b c d]", names)
	}
}
