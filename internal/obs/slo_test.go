package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSLONilSafety: a disabled SLO (nil tracker) must be a total no-op that
// classifies everything as good.
func TestSLONilSafety(t *testing.T) {
	var tr *SLOTracker
	if !tr.Observe(time.Hour) {
		t.Fatal("nil tracker classified late")
	}
	if g, l := tr.Totals(); g != 0 || l != 0 {
		t.Fatal("nil tracker counted")
	}
	if g, l := tr.Window(time.Minute); g != 0 || l != 0 {
		t.Fatal("nil tracker windowed")
	}
	if tr.BurnRate(time.Minute) != 0 || tr.Objective() != 0 || tr.Budget() != 0 {
		t.Fatal("nil tracker leaked state")
	}
	if NewSLOTracker(0, 0.01, 0, 0) != nil {
		t.Fatal("zero objective should build a nil tracker")
	}
}

// TestSLOClassification pins good/late against the objective and the
// cumulative totals.
func TestSLOClassification(t *testing.T) {
	tr := NewSLOTracker(100*time.Millisecond, 0.01, time.Second, 10)
	if !tr.Observe(50 * time.Millisecond) {
		t.Fatal("under-objective classified late")
	}
	if !tr.Observe(100 * time.Millisecond) {
		t.Fatal("exactly-at-objective classified late")
	}
	if tr.Observe(101 * time.Millisecond) {
		t.Fatal("over-objective classified good")
	}
	if g, l := tr.Totals(); g != 2 || l != 1 {
		t.Fatalf("totals = (%d, %d), want (2, 1)", g, l)
	}
}

// TestSLOWindowAndBurnRate drives the bucket ring with explicit clocks: the
// trailing window must include only in-range buckets and the burn rate must
// be late-fraction over budget.
func TestSLOWindowAndBurnRate(t *testing.T) {
	bucket := time.Second
	tr := NewSLOTracker(100*time.Millisecond, 0.01, bucket, 10)
	t0 := int64(1000 * time.Second) // arbitrary absolute origin

	// Three buckets: 4 good at t0, 1 good + 1 late at t0+1s, 2 late at t0+2s.
	for i := 0; i < 4; i++ {
		tr.observeAt(time.Millisecond, t0)
	}
	tr.observeAt(time.Millisecond, t0+int64(bucket))
	tr.observeAt(time.Second, t0+int64(bucket))
	tr.observeAt(time.Second, t0+2*int64(bucket))
	tr.observeAt(time.Second, t0+2*int64(bucket))

	now := t0 + 2*int64(bucket)
	if g, l := tr.windowAt(2*bucket, now); g != 1 || l != 3 {
		t.Fatalf("2-bucket window = (%d, %d), want (1, 3)", g, l)
	}
	if g, l := tr.windowAt(10*bucket, now); g != 5 || l != 3 {
		t.Fatalf("full window = (%d, %d), want (5, 3)", g, l)
	}
	// Burn rate over the last 2 buckets: 3 late of 4 total over budget 0.01.
	want := (3.0 / 4.0) / 0.01
	if got := tr.burnRateAt(2*bucket, now); got != want {
		t.Fatalf("burn rate = %g, want %g", got, want)
	}
	// Empty window: nothing observed that far ahead.
	if got := tr.burnRateAt(bucket, now+100*int64(bucket)); got != 0 {
		t.Fatalf("burn rate of empty window = %g, want 0", got)
	}
}

// TestSLOBucketLazyReset checks a slot is zeroed when its period comes
// around again (ring reuse), not accumulated across laps.
func TestSLOBucketLazyReset(t *testing.T) {
	bucket := time.Second
	tr := NewSLOTracker(100*time.Millisecond, 0.01, bucket, 4)
	t0 := int64(5000 * time.Second)
	tr.observeAt(time.Second, t0) // late, slot 0
	// One full lap later the same slot holds a new period.
	lap := t0 + 4*int64(bucket)
	tr.observeAt(time.Millisecond, lap) // good, same slot
	if g, l := tr.windowAt(bucket, lap); g != 1 || l != 0 {
		t.Fatalf("relapped bucket = (%d, %d), want (1, 0)", g, l)
	}
	// Cumulative totals keep both.
	if g, l := tr.Totals(); g != 1 || l != 1 {
		t.Fatalf("totals = (%d, %d), want (1, 1)", g, l)
	}
}

// TestSLOConcurrent hammers Observe from many goroutines (run under -race)
// and checks no observation is lost from the cumulative totals.
func TestSLOConcurrent(t *testing.T) {
	tr := NewSLOTracker(time.Millisecond, 0.01, 10*time.Millisecond, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(time.Duration(i%2) * time.Second)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Window(time.Minute)
			tr.BurnRate(time.Minute)
		}
	}()
	wg.Wait()
	<-done
	if g, l := tr.Totals(); g+l != 4000 {
		t.Fatalf("totals lost observations: %d + %d != 4000", g, l)
	}
}
