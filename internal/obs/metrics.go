// Package obs is TMan's observability layer: a lock-cheap metrics registry
// (atomic counters, gauges, fixed-boundary histograms with quantile
// snapshots), per-query trace spans threaded through context.Context, and
// Prometheus-text exposition. It depends only on the standard library and is
// imported by every other layer (kvstore, engine, httpapi), so it must not
// import any tman package.
//
// Design notes:
//
//   - Hot-path operations are single atomic adds. Counter.Add and
//     Histogram.Observe take no locks; Registry locking happens only at
//     registration and exposition time.
//   - Existing subsystems keep their own atomic counters (kvstore.Stats,
//     cache.CacheStats, plan-cache counters); the registry mirrors them as
//     *Func metrics that read the source of truth at scrape time, so no
//     counter is ever maintained twice.
//   - Series names carry Prometheus labels inline ("name{k=\"v\"}"); the
//     exposition writer groups series into families and emits HELP/TYPE
//     once per family, with histogram series expanded into _bucket/_sum/
//     _count samples.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a registered series.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored — counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (either direction).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary histogram: observations land in the first
// bucket whose upper bound is >= the value, mirroring Prometheus cumulative
// `le` semantics at exposition time. Observe is lock-free: one atomic add
// into the bucket, one into the count, and a CAS loop on the float sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram validates and copies the boundaries.
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds given nanoseconds.
func (h *Histogram) ObserveDuration(nanos int64) { h.Observe(float64(nanos) / 1e9) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds  []float64 // upper bounds, ascending (no +Inf entry)
	Counts  []int64   // len(Bounds)+1; last is the +Inf bucket
	Count   int64
	Sum     float64
	P50     float64
	P95     float64
	P99     float64
	MaxSeen float64 // upper bound of the highest non-empty bucket (+Inf → last bound)
}

// Snapshot copies the histogram state and computes the standard quantiles.
// Concurrent observers may land between the bucket reads; the snapshot is a
// consistent-enough view for monitoring (never torn per bucket).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			if i < len(s.Bounds) {
				s.MaxSeen = s.Bounds[i]
			} else if len(s.Bounds) > 0 {
				s.MaxSeen = s.Bounds[len(s.Bounds)-1]
			}
			break
		}
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank — the same estimator Prometheus'
// histogram_quantile uses. The lower edge of the first bucket is zero; ranks
// landing in the +Inf bucket return the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DefBuckets is the default latency boundary set, in seconds: 100µs to 10s,
// roughly 1-2.5-5 per decade. Matches the range of TMan query latencies
// (hot cached queries land in the first buckets, faulted/slow queries at the
// top).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is a power-of-4 boundary set for counts and byte sizes.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// metricEntry is one registered series.
type metricEntry struct {
	name string // full series name, labels inline
	kind Kind
	help string

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64 // counter/gauge func; read at scrape time
}

// Registry holds named series and renders them in Prometheus text format.
// Registration is idempotent by full series name: re-registering returns the
// existing collector, so independent subsystems can share one registry
// without coordination.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*metricEntry
	order   []string // registration order, for stable exposition
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// lookupOrAdd returns the entry for name, adding it via build() when absent.
func (r *Registry) lookupOrAdd(name string, build func() *metricEntry) *metricEntry {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e
	}
	e = build()
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookupOrAdd(name, func() *metricEntry {
		return &metricEntry{name: name, kind: KindCounter, help: help, c: &Counter{}}
	})
	return e.c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookupOrAdd(name, func() *metricEntry {
		return &metricEntry{name: name, kind: KindGauge, help: help, g: &Gauge{}}
	})
	return e.g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for subsystems that already maintain their own
// atomic counters (kvstore.Stats, cache stats).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.lookupOrAdd(name, func() *metricEntry {
		return &metricEntry{name: name, kind: KindCounter, help: help, fn: fn}
	})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookupOrAdd(name, func() *metricEntry {
		return &metricEntry{name: name, kind: KindGauge, help: help, fn: fn}
	})
}

// Histogram registers (or fetches) a histogram series with the given upper
// bounds (nil → DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	e := r.lookupOrAdd(name, func() *metricEntry {
		return &metricEntry{name: name, kind: KindHistogram, help: help, h: newHistogram(bounds)}
	})
	return e.h
}

// SeriesCount returns the number of exposition samples the registry would
// emit (histograms count their _bucket/_sum/_count samples).
func (r *Registry) SeriesCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if e.kind == KindHistogram {
			n += len(e.h.bounds) + 1 + 2 // buckets + +Inf + sum + count
		} else {
			n++
		}
	}
	return n
}

// splitSeries separates "base{labels}" into base and the label body (without
// braces; empty when unlabeled).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels merges an existing label body with one extra label pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

// writeSample emits one exposition line.
func writeSample(w io.Writer, base, labels string, v float64) {
	name := base
	if labels != "" {
		name = base + "{" + labels + "}"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		fmt.Fprintf(w, "%s %d\n", name, int64(v))
		return
	}
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// formatBound renders a histogram upper bound the way Prometheus clients do.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Families are emitted in registration
// order of their first series; HELP/TYPE appear once per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	order := make([]string, len(r.order))
	copy(order, r.order)
	entries := make(map[string]*metricEntry, len(r.entries))
	for k, v := range r.entries {
		entries[k] = v
	}
	r.mu.RUnlock()

	seenFamily := make(map[string]bool)
	for _, name := range order {
		e := entries[name]
		base, labels := splitSeries(e.name)
		if !seenFamily[base] {
			seenFamily[base] = true
			if e.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", base, e.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind)
		}
		switch e.kind {
		case KindHistogram:
			s := e.h.Snapshot()
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				writeSample(w, base+"_bucket", joinLabels(labels, `le="`+formatBound(b)+`"`), float64(cum))
			}
			cum += s.Counts[len(s.Counts)-1]
			writeSample(w, base+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
			writeSample(w, base+"_sum", labels, s.Sum)
			writeSample(w, base+"_count", labels, float64(s.Count))
		default:
			var v float64
			switch {
			case e.c != nil:
				v = float64(e.c.Value())
			case e.g != nil:
				v = float64(e.g.Value())
			case e.fn != nil:
				v = e.fn()
			}
			writeSample(w, base, labels, v)
		}
	}
}
