package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one background maintenance unit of work — a flush, a compaction, a
// replica catch-up, a split, a failover — with a resource ledger attached.
// Jobs are the background counterpart of query spans: always on, charged with
// wall time plus the analytic byte volumes the work moved, so tail-latency
// interference from maintenance is attributable after the fact.
//
// Ledger fields are atomics and every method is safe on a nil receiver, so
// instrumented paths never branch on "is job recording on" — a store without
// a recorder hands out nil jobs and all charges are no-ops. Job recording is
// strictly side-band: it never feeds the deterministic Stats counters, so
// golden-counter tests are unaffected by wall-clock scheduling.
type Job struct {
	ID     int64  `json:"id"`
	Kind   string `json:"kind"`
	Table  string `json:"table,omitempty"`
	Region int64  `json:"region"`

	start    time.Time
	endNanos atomic.Int64 // 0 while running; monotonic-derived wall duration at End

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	items        atomic.Int64
	stallNanos   atomic.Int64
}

// AddBytesRead charges input bytes (run bytes merged, frames replayed).
func (j *Job) AddBytesRead(n int64) {
	if j != nil && n > 0 {
		j.bytesRead.Add(n)
	}
}

// AddBytesWritten charges output bytes (run bytes produced, snapshot volume).
func (j *Job) AddBytesWritten(n int64) {
	if j != nil && n > 0 {
		j.bytesWritten.Add(n)
	}
}

// AddItems charges a unit count (runs merged, frames shipped, rows moved).
func (j *Job) AddItems(n int64) {
	if j != nil && n > 0 {
		j.items.Add(n)
	}
}

// AddStall charges time the job spent holding locks other work waited on.
func (j *Job) AddStall(d time.Duration) {
	if j != nil && d > 0 {
		j.stallNanos.Add(d.Nanoseconds())
	}
}

// Running reports whether the job has not ended yet (false on nil).
func (j *Job) Running() bool { return j != nil && j.endNanos.Load() == 0 }

// Duration returns elapsed wall time: running jobs report time so far.
func (j *Job) Duration() time.Duration {
	if j == nil {
		return 0
	}
	if e := j.endNanos.Load(); e != 0 {
		return time.Duration(e)
	}
	return time.Since(j.start)
}

// JobSnapshot is the wire form of one job for /debug/jobs and for attaching
// background interference to a query trace.
type JobSnapshot struct {
	ID           int64   `json:"id"`
	Kind         string  `json:"kind"`
	Table        string  `json:"table,omitempty"`
	Region       int64   `json:"region"`
	StartUnixMS  int64   `json:"start_unix_ms"`
	DurationMS   float64 `json:"duration_ms"`
	Running      bool    `json:"running"`
	BytesRead    int64   `json:"bytes_read"`
	BytesWritten int64   `json:"bytes_written"`
	Items        int64   `json:"items"`
	StallNanos   int64   `json:"stall_ns"`
}

func (j *Job) snapshot() JobSnapshot {
	return JobSnapshot{
		ID:           j.ID,
		Kind:         j.Kind,
		Table:        j.Table,
		Region:       j.Region,
		StartUnixMS:  j.start.UnixMilli(),
		DurationMS:   float64(j.Duration().Nanoseconds()) / 1e6,
		Running:      j.Running(),
		BytesRead:    j.bytesRead.Load(),
		BytesWritten: j.bytesWritten.Load(),
		Items:        j.items.Load(),
		StallNanos:   j.stallNanos.Load(),
	}
}

// Span converts a job snapshot into a completed span for trace attachment.
func (s JobSnapshot) Span() *Span {
	sp := &Span{name: s.Kind + ":" + s.Table, start: time.Now(), dur: time.Duration(s.DurationMS * 1e6)}
	sp.Add("job_id", s.ID)
	sp.Add("region", s.Region)
	sp.Add("bytes_read", s.BytesRead)
	sp.Add("bytes_written", s.BytesWritten)
	sp.Add("items", s.Items)
	sp.Add("stall_ns", s.StallNanos)
	if s.Running {
		sp.Add("running", 1)
	}
	return sp
}

// JobKindStats are the cumulative per-kind aggregates a completed job folds
// into — the backing store for the tman_bg_* counter families.
type JobKindStats struct {
	Jobs         int64
	BytesRead    int64
	BytesWritten int64
	Items        int64
	StallNanos   int64
	TotalNanos   int64
}

type jobAgg struct {
	jobs         atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	items        atomic.Int64
	stallNanos   atomic.Int64
	totalNanos   atomic.Int64
}

// JobRecorder tracks in-flight background jobs and retains a bounded ring of
// completed ones, with cumulative per-kind aggregates for scrape-time
// mirroring into counters. All methods are nil-safe.
type JobRecorder struct {
	mu      sync.Mutex
	seq     int64
	active  map[int64]*Job
	ring    []*Job // completed jobs, ring buffer
	next    int
	aggs    map[string]*jobAgg
	running atomic.Int64
}

// NewJobRecorder builds a recorder retaining up to n completed jobs
// (n <= 0 → 256).
func NewJobRecorder(n int) *JobRecorder {
	if n <= 0 {
		n = 256
	}
	return &JobRecorder{
		active: make(map[int64]*Job),
		ring:   make([]*Job, 0, n),
		aggs:   make(map[string]*jobAgg),
	}
}

// Begin opens a job. Returns nil (a no-op job) on a nil recorder.
func (r *JobRecorder) Begin(kind, table string, region int64) *Job {
	if r == nil {
		return nil
	}
	j := &Job{Kind: kind, Table: table, Region: region, start: time.Now()}
	r.mu.Lock()
	r.seq++
	j.ID = r.seq
	r.active[j.ID] = j
	r.mu.Unlock()
	r.running.Add(1)
	return j
}

// End closes a job and folds it into the ring and the per-kind aggregates.
// Safe on a nil recorder or nil job; idempotent per job.
func (r *JobRecorder) End(j *Job) {
	if r == nil || j == nil {
		return
	}
	if !j.endNanos.CompareAndSwap(0, time.Since(j.start).Nanoseconds()) {
		return
	}
	r.running.Add(-1)
	r.mu.Lock()
	delete(r.active, j.ID)
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, j)
	} else {
		r.ring[r.next] = j
		r.next = (r.next + 1) % cap(r.ring)
	}
	agg := r.aggs[j.Kind]
	if agg == nil {
		agg = &jobAgg{}
		r.aggs[j.Kind] = agg
	}
	r.mu.Unlock()
	agg.jobs.Add(1)
	agg.bytesRead.Add(j.bytesRead.Load())
	agg.bytesWritten.Add(j.bytesWritten.Load())
	agg.items.Add(j.items.Load())
	agg.stallNanos.Add(j.stallNanos.Load())
	agg.totalNanos.Add(j.endNanos.Load())
}

// RunningCount returns the number of in-flight jobs (0 on nil).
func (r *JobRecorder) RunningCount() int64 {
	if r == nil {
		return 0
	}
	return r.running.Load()
}

// KindStats returns the cumulative aggregates for one job kind. Kinds that
// have never completed a job return zeros, so scrape-time mirrors can
// register a fixed kind list up front.
func (r *JobRecorder) KindStats(kind string) JobKindStats {
	if r == nil {
		return JobKindStats{}
	}
	r.mu.Lock()
	agg := r.aggs[kind]
	r.mu.Unlock()
	if agg == nil {
		return JobKindStats{}
	}
	return JobKindStats{
		Jobs:         agg.jobs.Load(),
		BytesRead:    agg.bytesRead.Load(),
		BytesWritten: agg.bytesWritten.Load(),
		Items:        agg.items.Load(),
		StallNanos:   agg.stallNanos.Load(),
		TotalNanos:   agg.totalNanos.Load(),
	}
}

// Snapshot returns the in-flight jobs plus up to limit recently completed
// jobs, newest first (limit <= 0 → all retained).
func (r *JobRecorder) Snapshot(limit int) (running, recent []JobSnapshot) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	for _, j := range r.active {
		running = append(running, j.snapshot())
	}
	n := len(r.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		// Newest first: walk backwards from the slot before next.
		idx := (r.next - 1 - i + 2*len(r.ring)) % len(r.ring)
		recent = append(recent, r.ring[idx].snapshot())
	}
	r.mu.Unlock()
	sort.Slice(running, func(a, b int) bool { return running[a].ID > running[b].ID })
	return running, recent
}

// Overlapping returns jobs whose lifetime intersects [since, until]: every
// in-flight job that started before until, plus completed jobs that were
// still running at since. This is how a forced query trace picks up the
// compactions and flushes that interfered with it.
func (r *JobRecorder) Overlapping(since, until time.Time) []JobSnapshot {
	if r == nil {
		return nil
	}
	var out []JobSnapshot
	r.mu.Lock()
	for _, j := range r.active {
		if j.start.Before(until) {
			out = append(out, j.snapshot())
		}
	}
	for _, j := range r.ring {
		if !j.start.Before(until) {
			continue
		}
		end := j.start.Add(time.Duration(j.endNanos.Load()))
		if end.After(since) {
			out = append(out, j.snapshot())
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
