package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SLOTracker classifies completed operations against a latency objective and
// maintains windowed burn-rate state. An operation finishing within the
// objective is "good"; over it is "late". The error budget is the fraction of
// operations allowed to be late (e.g. 0.01 for a 99th-percentile objective);
// burn rate is the observed late fraction divided by that budget, so a burn
// rate of 1.0 consumes the budget exactly as fast as it refills and anything
// sustained above 1.0 means the SLO will be violated.
//
// The window is a ring of fixed-width time buckets with lazy reset: Observe
// is two atomic adds on the hot path, plus a mutex only on the first
// observation of a new bucket period. All methods are nil-safe so the
// disabled path stays branch-free at call sites.
type SLOTracker struct {
	objective time.Duration
	budget    float64

	good atomic.Int64 // cumulative
	late atomic.Int64 // cumulative

	bucketNanos int64
	buckets     []sloBucket
	resetMu     sync.Mutex
}

type sloBucket struct {
	period atomic.Int64 // which absolute bucket period this slot holds
	good   atomic.Int64
	late   atomic.Int64
}

// NewSLOTracker builds a tracker for one latency objective. budget is the
// allowed late fraction (clamped to a minimum of 0.0001); the window ring
// holds `buckets` slots of `bucketWidth` each (defaults: 30 × 10s).
func NewSLOTracker(objective time.Duration, budget float64, bucketWidth time.Duration, buckets int) *SLOTracker {
	if objective <= 0 {
		return nil
	}
	if budget < 0.0001 {
		budget = 0.0001
	}
	if bucketWidth <= 0 {
		bucketWidth = 10 * time.Second
	}
	if buckets <= 0 {
		buckets = 30
	}
	return &SLOTracker{
		objective:   objective,
		budget:      budget,
		bucketNanos: bucketWidth.Nanoseconds(),
		buckets:     make([]sloBucket, buckets),
	}
}

// Objective returns the latency objective (0 on nil).
func (t *SLOTracker) Objective() time.Duration {
	if t == nil {
		return 0
	}
	return t.objective
}

// Budget returns the allowed late fraction (0 on nil).
func (t *SLOTracker) Budget() float64 {
	if t == nil {
		return 0
	}
	return t.budget
}

// Observe classifies one completed operation. Returns true when it met the
// objective ("good"), false when late. Nil trackers report true.
func (t *SLOTracker) Observe(latency time.Duration) bool {
	return t.observeAt(latency, time.Now().UnixNano())
}

func (t *SLOTracker) observeAt(latency time.Duration, nowNanos int64) bool {
	if t == nil {
		return true
	}
	good := latency <= t.objective
	period := nowNanos / t.bucketNanos
	b := &t.buckets[int(period%int64(len(t.buckets)))]
	if b.period.Load() != period {
		// First observation of a new period for this slot: zero it under the
		// reset mutex. Counts racing in under the stale period are dropped
		// with it — the window is an estimator, not an invoice.
		t.resetMu.Lock()
		if b.period.Load() != period {
			b.good.Store(0)
			b.late.Store(0)
			b.period.Store(period)
		}
		t.resetMu.Unlock()
	}
	if good {
		t.good.Add(1)
		b.good.Add(1)
	} else {
		t.late.Add(1)
		b.late.Add(1)
	}
	return good
}

// Totals returns the cumulative good/late counts.
func (t *SLOTracker) Totals() (good, late int64) {
	if t == nil {
		return 0, 0
	}
	return t.good.Load(), t.late.Load()
}

// Window sums the good/late counts over the trailing window duration
// (clamped to the ring's span).
func (t *SLOTracker) Window(window time.Duration) (good, late int64) {
	return t.windowAt(window, time.Now().UnixNano())
}

func (t *SLOTracker) windowAt(window time.Duration, nowNanos int64) (good, late int64) {
	if t == nil {
		return 0, 0
	}
	periods := int(window.Nanoseconds() / t.bucketNanos)
	if periods < 1 {
		periods = 1
	}
	if periods > len(t.buckets) {
		periods = len(t.buckets)
	}
	cur := nowNanos / t.bucketNanos
	for i := 0; i < periods; i++ {
		p := cur - int64(i)
		b := &t.buckets[int(((p%int64(len(t.buckets)))+int64(len(t.buckets)))%int64(len(t.buckets)))]
		if b.period.Load() != p {
			continue // slot holds another (older) period: nothing in-window
		}
		good += b.good.Load()
		late += b.late.Load()
	}
	return good, late
}

// BurnRate returns the trailing-window burn rate: late fraction divided by
// the error budget. 0 when the window is empty or the tracker is nil.
func (t *SLOTracker) BurnRate(window time.Duration) float64 {
	return t.burnRateAt(window, time.Now().UnixNano())
}

func (t *SLOTracker) burnRateAt(window time.Duration, nowNanos int64) float64 {
	if t == nil {
		return 0
	}
	good, late := t.windowAt(window, nowNanos)
	total := good + late
	if total == 0 {
		return 0
	}
	return (float64(late) / float64(total)) / t.budget
}
