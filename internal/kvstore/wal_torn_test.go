package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildWAL writes n fully-synced records and returns the log bytes plus the
// offset where the final record begins.
func buildWAL(t *testing.T, dir string, n int) (data []byte, lastRecOff int) {
	t.Helper()
	path := filepath.Join(dir, walFileName)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := w.append(opPut, "t", []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	lastRecOff = int(fi.Size())
	if err := w.append(opPut, "t", []byte(fmt.Sprintf("k%03d", n-1)), []byte(fmt.Sprintf("v%03d", n-1))); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, lastRecOff
}

// replayCount replays a WAL image and returns how many records were applied;
// it fails the test if any replayed record is not an intact prefix record.
func replayCount(t *testing.T, data []byte) int {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "w.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	applied := 0
	err := replayWAL(path, func(rec walRecord) {
		if rec.op != opPut || rec.table != "t" {
			t.Fatalf("replayed corrupt record: op=%d table=%q", rec.op, rec.table)
		}
		want := fmt.Sprintf("k%03d", applied)
		if string(rec.key) != want {
			t.Fatalf("record %d has key %q, want %q", applied, rec.key, want)
		}
		applied++
	})
	if err != nil {
		t.Fatalf("replayWAL must never error on torn tails: %v", err)
	}
	return applied
}

// TestWALTornWriteEveryOffset truncates the log at every byte offset of the
// final record and asserts replay recovers exactly the fully-synced prefix,
// never panicking and never inventing records.
func TestWALTornWriteEveryOffset(t *testing.T) {
	const records = 8
	data, lastOff := buildWAL(t, t.TempDir(), records)
	for cut := lastOff; cut <= len(data); cut++ {
		got := replayCount(t, data[:cut])
		want := records - 1
		if cut == len(data) {
			want = records
		}
		if got != want {
			t.Fatalf("truncated at %d/%d: replayed %d records, want %d", cut, len(data), got, want)
		}
	}
	// Torn inside the synced prefix too: every offset of the whole file must
	// replay some prefix without panicking.
	for cut := 0; cut < lastOff; cut += 7 {
		if got := replayCount(t, data[:cut]); got > records-1 {
			t.Fatalf("truncated at %d: replayed %d records from a %d-record prefix", cut, got, records-1)
		}
	}
}

// TestWALBitFlipFinalRecord flips every bit of every byte of the final
// record and asserts replay never panics and always recovers the fully
// synced prefix (the flipped record must be rejected; a flipped length field
// must not cause a huge allocation or an invented record).
func TestWALBitFlipFinalRecord(t *testing.T) {
	const records = 8
	data, lastOff := buildWAL(t, t.TempDir(), records)
	for off := lastOff; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			got := replayCount(t, mut)
			// CRC catches any single-bit flip in the final record, so the
			// synced prefix — and nothing more — must survive.
			if got != records-1 {
				t.Fatalf("flip byte %d bit %d: replayed %d records, want %d", off, bit, got, records-1)
			}
		}
	}
}

// TestWALBitFlipMidLog flips bytes inside the synced prefix: replay must
// stop at the corrupt record (recovering only earlier records) and never
// panic.
func TestWALBitFlipMidLog(t *testing.T) {
	const records = 8
	data, _ := buildWAL(t, t.TempDir(), records)
	for off := 0; off < len(data); off += 5 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		got := replayCount(t, mut)
		if got > records {
			t.Fatalf("flip at %d: replayed %d records from a %d-record log", off, got, records)
		}
	}
}

// buildBatchWAL writes `singles` synced single-put records followed by one
// group-commit batch record of batchRows rows, returning the log bytes and
// the offset where the batch record begins.
func buildBatchWAL(t *testing.T, dir string, singles, batchRows int) (data []byte, batchOff int) {
	t.Helper()
	path := filepath.Join(dir, walFileName)
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < singles; i++ {
		if err := w.append(opPut, "t", []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	batchOff = int(fi.Size())
	rows := make([]KV, batchRows)
	for i := range rows {
		rows[i] = KV{Key: []byte(fmt.Sprintf("b%03d", i)), Value: []byte(fmt.Sprintf("w%03d", i))}
	}
	if err := w.appendBatch("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, batchOff
}

// replayBatchCount replays a WAL image holding single puts plus at most one
// batch record, returning (singles applied, batch rows applied). The batch
// must be all-or-nothing: a partial batch row set fails the test.
func replayBatchCount(t *testing.T, data []byte, batchRows int) (singles, rows int) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "w.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err := replayWAL(path, func(rec walRecord) {
		switch rec.op {
		case opPut:
			singles++
		case opBatch:
			if len(rec.rows) != batchRows {
				t.Fatalf("partial batch replayed: %d rows, want %d or nothing", len(rec.rows), batchRows)
			}
			for i, kv := range rec.rows {
				if want := fmt.Sprintf("b%03d", i); string(kv.Key) != want {
					t.Fatalf("batch row %d has key %q, want %q", i, kv.Key, want)
				}
			}
			rows += len(rec.rows)
		default:
			t.Fatalf("replayed corrupt record: op=%d", rec.op)
		}
	})
	if err != nil {
		t.Fatalf("replayWAL must never error on torn tails: %v", err)
	}
	return singles, rows
}

// TestWALTornBatchEveryOffset truncates the log at every byte offset of a
// trailing batch record: replay must recover exactly the synced single-put
// prefix and never a partial batch — the batch lands all-or-nothing.
func TestWALTornBatchEveryOffset(t *testing.T) {
	const singlesN, batchN = 5, 12
	data, batchOff := buildBatchWAL(t, t.TempDir(), singlesN, batchN)
	for cut := batchOff; cut <= len(data); cut++ {
		gotSingles, gotRows := replayBatchCount(t, data[:cut], batchN)
		if gotSingles != singlesN {
			t.Fatalf("truncated at %d: replayed %d singles, want %d", cut, gotSingles, singlesN)
		}
		wantRows := 0
		if cut == len(data) {
			wantRows = batchN
		}
		if gotRows != wantRows {
			t.Fatalf("truncated at %d/%d: replayed %d batch rows, want %d", cut, len(data), gotRows, wantRows)
		}
	}
}

// TestWALBitFlipInBatch flips every bit of every byte of the batch record:
// CRC must reject the whole batch (no partial rows, no invented records, no
// huge allocations from a flipped count or length field) while the synced
// prefix survives.
func TestWALBitFlipInBatch(t *testing.T) {
	const singlesN, batchN = 5, 12
	data, batchOff := buildBatchWAL(t, t.TempDir(), singlesN, batchN)
	for off := batchOff; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			gotSingles, gotRows := replayBatchCount(t, mut, batchN)
			if gotSingles != singlesN || gotRows != 0 {
				t.Fatalf("flip byte %d bit %d: replayed %d singles + %d batch rows, want %d + 0",
					off, bit, gotSingles, gotRows, singlesN)
			}
		}
	}
}
