package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// equivWorkload drives an identical deterministic write mix — puts across a
// shared-prefix keyspace, overwrites, deletes — into a store, forcing
// flushes, compactions and splits along the way.
func equivWorkload(tbl *Table, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 6000; i++ {
		k := []byte(fmt.Sprintf("traj/%03d/%08d", rng.Intn(40), rng.Intn(5000)))
		v := make([]byte, 20+rng.Intn(180))
		rng.Read(v)
		tbl.Put(k, v)
		if i%17 == 0 {
			tbl.Delete([]byte(fmt.Sprintf("traj/%03d/%08d", rng.Intn(40), rng.Intn(5000))))
		}
	}
}

func equivStores(t *testing.T) (blockTbl, legacyTbl *Table, blockStore, legacyStore *Store) {
	t.Helper()
	mk := func(disable bool) (*Store, *Table) {
		o := DefaultOptions()
		o.MemtableFlushBytes = 16 << 10
		o.RegionMaxBytes = 256 << 10
		o.DisableBlockFormat = disable
		s := Open(o)
		tbl, err := s.CreateTable("t")
		if err != nil {
			t.Fatal(err)
		}
		equivWorkload(tbl, 1234)
		s.Quiesce()
		return s, tbl
	}
	blockStore, blockTbl = mk(false)
	legacyStore, legacyTbl = mk(true)
	return blockTbl, legacyTbl, blockStore, legacyStore
}

// TestBlockLegacyEquivalence pins the tentpole invariant: the block format
// is a pure storage-layer change, so every scan and get — full scans,
// bounded windows, filtered scans, limits, point hits and misses — returns
// byte-identical results, and the row-visit counters the paper's cost model
// reports (RowsScanned, RowsReturned, Seeks) agree exactly.
func TestBlockLegacyEquivalence(t *testing.T) {
	blockTbl, legacyTbl, bs, ls := equivStores(t)

	sameKVs := func(name string, a, b []KV) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows (block) vs %d (legacy)", name, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
				t.Fatalf("%s: row %d differs: %q vs %q", name, i, a[i].Key, b[i].Key)
			}
		}
	}

	bBefore, lBefore := bs.Stats().Snapshot(), ls.Stats().Snapshot()
	sameKVs("full scan", blockTbl.Scan(nil, nil, nil, 0), legacyTbl.Scan(nil, nil, nil, 0))
	for i := 0; i < 50; i++ {
		lo := []byte(fmt.Sprintf("traj/%03d/", i*7%40))
		hi := []byte(fmt.Sprintf("traj/%03d/%08d", i*7%40, 2500))
		sameKVs("window", blockTbl.Scan(lo, hi, nil, 0), legacyTbl.Scan(lo, hi, nil, 0))
		sameKVs("limited", blockTbl.Scan(lo, nil, nil, 25), legacyTbl.Scan(lo, nil, nil, 25))
	}
	f := FilterFunc(func(k, v []byte) bool { return len(v) > 100 })
	sameKVs("filtered", blockTbl.Scan(nil, nil, f, 0), legacyTbl.Scan(nil, nil, f, 0))

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("traj/%03d/%08d", rng.Intn(50), rng.Intn(6000)))
		bv, bok := blockTbl.Get(k)
		lv, lok := legacyTbl.Get(k)
		if bok != lok || !bytes.Equal(bv, lv) {
			t.Fatalf("get %q: block (%q, %v) vs legacy (%q, %v)", k, bv, bok, lv, lok)
		}
	}

	bd, ld := Diff(bBefore, bs.Stats().Snapshot()), Diff(lBefore, ls.Stats().Snapshot())
	if bd.RowsScanned != ld.RowsScanned || bd.RowsReturned != ld.RowsReturned ||
		bd.Seeks != ld.Seeks || bd.BytesReturned != ld.BytesReturned {
		t.Fatalf("cost counters diverge: block {scanned %d returned %d seeks %d bytes %d} vs legacy {%d %d %d %d}",
			bd.RowsScanned, bd.RowsReturned, bd.Seeks, bd.BytesReturned,
			ld.RowsScanned, ld.RowsReturned, ld.Seeks, ld.BytesReturned)
	}
}

// TestBlockCacheWarmScanCheaper is the headline perf property: repeating a
// scan with a warm block cache charges strictly less simulated disk I/O
// than the cold pass, because resident decoded blocks cost nothing.
func TestBlockCacheWarmScanCheaper(t *testing.T) {
	blockTbl, _, bs, _ := equivStores(t)

	cold := bs.Stats().Snapshot()
	blockTbl.Scan(nil, nil, nil, 0)
	coldDiff := Diff(cold, bs.Stats().Snapshot())

	warm := bs.Stats().Snapshot()
	blockTbl.Scan(nil, nil, nil, 0)
	warmDiff := Diff(warm, bs.Stats().Snapshot())

	if coldDiff.BlockCacheMisses == 0 {
		t.Fatal("cold scan fetched no blocks — workload never flushed?")
	}
	if warmDiff.BlockCacheHits == 0 {
		t.Fatal("warm scan hit no cached blocks")
	}
	if warmDiff.BlockReadBytes >= coldDiff.BlockReadBytes {
		t.Fatalf("warm scan read %d encoded bytes, cold read %d — cache bought nothing",
			warmDiff.BlockReadBytes, coldDiff.BlockReadBytes)
	}
	if warmDiff.SimIONanos >= coldDiff.SimIONanos {
		t.Fatalf("warm scan charged %dns, cold charged %dns — warm must be cheaper",
			warmDiff.SimIONanos, coldDiff.SimIONanos)
	}
}

// TestBloomSkipsPointLookups: gets for keys that miss every run must be
// answered mostly by bloom negatives, without touching blocks.
func TestBloomSkipsPointLookups(t *testing.T) {
	blockTbl, _, bs, _ := equivStores(t)

	before := bs.Stats().Snapshot()
	const probes = 3000
	for i := 0; i < probes; i++ {
		if _, ok := blockTbl.Get([]byte(fmt.Sprintf("absent/%08d", i))); ok {
			t.Fatalf("absent key %d found", i)
		}
	}
	d := Diff(before, bs.Stats().Snapshot())
	if d.BloomChecks == 0 {
		t.Fatal("no bloom checks recorded")
	}
	// Absent keys should be rejected by the filter almost always; block
	// fetches happen only on the ~1% false positives.
	if d.BloomNegatives < d.BloomChecks*9/10 {
		t.Fatalf("bloom rejected %d of %d checks — filter ineffective", d.BloomNegatives, d.BloomChecks)
	}
	if d.BloomFalsePositives > d.BloomChecks/10 {
		t.Fatalf("%d false positives in %d checks", d.BloomFalsePositives, d.BloomChecks)
	}
	if d.BlockCacheMisses+d.BlockCacheHits > d.BloomFalsePositives {
		t.Fatalf("%d block fetches for %d false positives — gets bypassing the filter",
			d.BlockCacheMisses+d.BlockCacheHits, d.BloomFalsePositives)
	}
}

// TestBlockResidentBytesSmaller: the block format's resident footprint
// (encoded blocks + index + filter) must undercut the legacy decoded rows
// for the same data — the RSS half of the acceptance criteria.
func TestBlockResidentBytesSmaller(t *testing.T) {
	_, _, bs, ls := equivStores(t)
	br, lr := bs.ResidentRunBytes(), ls.ResidentRunBytes()
	if br == 0 || lr == 0 {
		t.Fatalf("resident bytes: block %d, legacy %d — no runs?", br, lr)
	}
	if br >= lr {
		t.Fatalf("block runs resident %d bytes >= legacy %d — compression bought nothing", br, lr)
	}
	t.Logf("resident run bytes: block=%d legacy=%d (%.1f%%)", br, lr, 100*float64(br)/float64(lr))
}
