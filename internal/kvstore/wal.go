package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Durability: when Options.Dir is set, every mutation is appended to a
// write-ahead log and Open replays the log on startup, restoring all
// tables. Checkpoint writes a compact snapshot and truncates the log.
//
// Record layout (all little-endian):
//
//	u32 crc  (castagnoli, over everything after this field)
//	u8  op   (1 = put, 2 = delete, 3 = batch put)
//	u16 tableLen | table bytes
//	u32 keyLen   | key bytes        (op = put/delete)
//	u32 valLen   | value bytes      (op = put only)
//
// A batch record (op = 3) replaces the key/value section with
//
//	u32 rowCount | rowCount × (u32 keyLen | key | u32 valLen | value)
//
// so a whole MultiPut commits as one CRC-framed group: one lock
// acquisition, one checksum, one buffered flush. A torn record (crash
// mid-write) is detected by CRC/length and cleanly ignored, as in any LSM
// WAL — for a batch that means all-or-nothing: replay never applies a
// partial batch.

const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.db"

	opPut    = 1
	opDelete = 2
	opBatch  = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptSnapshot is returned when a snapshot file fails validation.
var ErrCorruptSnapshot = errors.New("kvstore: corrupt snapshot")

// wal is the append-side of the log.
type wal struct {
	mu      sync.Mutex
	f       *os.File
	buf     *bufio.Writer
	scratch []byte // reusable batch-payload buffer, guarded by mu
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// append writes one record and pushes it to the OS before returning, so an
// acknowledged mutation survives a process crash (though not a power loss —
// fsync is deferred to Sync/Checkpoint). Value is ignored for deletes. This
// per-record flush is exactly the cost group commit amortizes: a MultiPut
// batch pays one flush for the whole batch via appendBatch.
func (w *wal) append(op byte, table string, key, value []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := encodeWALPayload(op, table, key, value)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(payload, crcTable))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(payload); err != nil {
		return err
	}
	return w.buf.Flush()
}

// appendBatch writes one batch record covering every row — the group-commit
// path of MultiPut. The whole batch is framed by a single CRC under a single
// lock acquisition and pushed to the OS with one buffered flush, so the
// per-row WAL cost (mutex, payload allocation, checksum setup) is amortized
// across the batch. The payload scratch buffer is reused across batches.
func (w *wal) appendBatch(table string, rows []KV) error {
	n := 1 + 2 + len(table) + 4
	for i := range rows {
		n += 8 + len(rows[i].Key) + len(rows[i].Value)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cap(w.scratch) < n {
		w.scratch = make([]byte, 0, n)
	}
	out := appendBatchPayload(w.scratch[:0], table, rows)
	w.scratch = out
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(out, crcTable))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	// Feed the payload through the buffered writer in buffer-sized chunks.
	// A single Write of a payload larger than the buffer would bypass
	// buffering and issue one huge write(2); keeping every syscall at the
	// buffer size is markedly faster on hosts where large writes stall on
	// page allocation.
	const chunk = 32 << 10
	for off := 0; off < len(out); off += chunk {
		end := off + chunk
		if end > len(out) {
			end = len(out)
		}
		if _, err := w.buf.Write(out[off:end]); err != nil {
			return err
		}
	}
	return w.buf.Flush()
}

func encodeWALPayload(op byte, table string, key, value []byte) []byte {
	n := 1 + 2 + len(table) + 4 + len(key) + 4 + len(value)
	out := make([]byte, 0, n)
	out = append(out, op)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(table)))
	out = append(out, table...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = append(out, key...)
	if op == opPut {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(value)))
		out = append(out, value...)
	}
	return out
}

// sync flushes buffered records to the OS.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// walRecord is one replayed mutation. A batch record carries rows instead
// of key/value.
type walRecord struct {
	op    byte
	table string
	key   []byte
	value []byte
	rows  []KV
}

// replayWAL streams records from the log, stopping cleanly at a torn tail.
// Record lengths are validated against the bytes actually remaining in the
// file, so a bit-flipped length field can never trigger a huge allocation.
func replayWAL(path string, apply func(walRecord)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	remaining := fi.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop
		}
		remaining -= 4
		wantCRC := binary.LittleEndian.Uint32(hdr[:])
		rec, payload, err := readWALPayload(r, remaining)
		if err != nil {
			return nil // torn record
		}
		remaining -= int64(len(payload))
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil // corrupt tail
		}
		apply(rec)
	}
}

// readWALPayload decodes one record body. remaining bounds every length
// field: a declared length beyond the bytes left in the file is a torn or
// corrupt record, reported before any allocation happens.
func readWALPayload(r *bufio.Reader, remaining int64) (walRecord, []byte, error) {
	var rec walRecord
	op, err := r.ReadByte()
	if err != nil {
		return rec, nil, err
	}
	rec.op = op
	payload := []byte{op}
	remaining--

	readN := func(n int) ([]byte, error) {
		if n < 0 || int64(n) > remaining {
			return nil, fmt.Errorf("kvstore: implausible wal length %d (%d bytes left)", n, remaining)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		remaining -= int64(n)
		payload = append(payload, b...)
		return b, nil
	}

	var l2 [2]byte
	if _, err := io.ReadFull(r, l2[:]); err != nil {
		return rec, nil, err
	}
	remaining -= 2
	payload = append(payload, l2[:]...)
	table, err := readN(int(binary.LittleEndian.Uint16(l2[:])))
	if err != nil {
		return rec, nil, err
	}
	rec.table = string(table)

	var l4 [4]byte
	readLen := func() (int, error) {
		if _, err := io.ReadFull(r, l4[:]); err != nil {
			return 0, err
		}
		remaining -= 4
		payload = append(payload, l4[:]...)
		return int(binary.LittleEndian.Uint32(l4[:])), nil
	}

	if op == opBatch {
		count, err := readLen()
		if err != nil {
			return rec, nil, err
		}
		// Every row needs at least its two length prefixes, which bounds a
		// bit-flipped count before any allocation happens.
		if count < 0 || int64(count)*8 > remaining {
			return rec, nil, fmt.Errorf("kvstore: implausible wal batch count %d (%d bytes left)", count, remaining)
		}
		rec.rows = make([]KV, 0, count)
		for i := 0; i < count; i++ {
			kl, err := readLen()
			if err != nil {
				return rec, nil, err
			}
			key, err := readN(kl)
			if err != nil {
				return rec, nil, err
			}
			vl, err := readLen()
			if err != nil {
				return rec, nil, err
			}
			val, err := readN(vl)
			if err != nil {
				return rec, nil, err
			}
			rec.rows = append(rec.rows, KV{Key: key, Value: val})
		}
		return rec, payload, nil
	}

	kl, err := readLen()
	if err != nil {
		return rec, nil, err
	}
	rec.key, err = readN(kl)
	if err != nil {
		return rec, nil, err
	}

	if op == opPut {
		vl, err := readLen()
		if err != nil {
			return rec, nil, err
		}
		rec.value, err = readN(vl)
		if err != nil {
			return rec, nil, err
		}
	}
	return rec, payload, nil
}

// ------------------------------------------------------------ snapshot ---

// writeSnapshot dumps every live row of every table:
//
//	u32 magic | u32 tableCount
//	per table: u16 nameLen | name | u64 rowCount | rows (u32 k | k | u32 v | v)
//	u32 crc over everything before it
const snapMagic = 0x744d414e // "tMAN"

func (s *Store) writeSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	names := s.TableNames()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(names)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, name := range names {
		rows := s.Table(name).Scan(nil, nil, nil, 0)
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
		w.Write(nl[:])
		w.WriteString(name)
		var rc [8]byte
		binary.LittleEndian.PutUint64(rc[:], uint64(len(rows)))
		w.Write(rc[:])
		var l4 [4]byte
		for _, kv := range rows {
			binary.LittleEndian.PutUint32(l4[:], uint32(len(kv.Key)))
			w.Write(l4[:])
			w.Write(kv.Key)
			binary.LittleEndian.PutUint32(l4[:], uint32(len(kv.Value)))
			w.Write(l4[:])
			w.Write(kv.Value)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := f.Write(tail[:]); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (s *Store) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < 12 {
		return ErrCorruptSnapshot
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return ErrCorruptSnapshot
	}
	if binary.LittleEndian.Uint32(body[:4]) != snapMagic {
		return ErrCorruptSnapshot
	}
	tableCount := int(binary.LittleEndian.Uint32(body[4:8]))
	p := 8
	read := func(n int) ([]byte, error) {
		if p+n > len(body) {
			return nil, ErrCorruptSnapshot
		}
		b := body[p : p+n]
		p += n
		return b, nil
	}
	for t := 0; t < tableCount; t++ {
		nl, err := read(2)
		if err != nil {
			return err
		}
		nameB, err := read(int(binary.LittleEndian.Uint16(nl)))
		if err != nil {
			return err
		}
		rc, err := read(8)
		if err != nil {
			return err
		}
		tbl := s.OpenTable(string(nameB))
		rows := binary.LittleEndian.Uint64(rc)
		for i := uint64(0); i < rows; i++ {
			kl, err := read(4)
			if err != nil {
				return err
			}
			k, err := read(int(binary.LittleEndian.Uint32(kl)))
			if err != nil {
				return err
			}
			vl, err := read(4)
			if err != nil {
				return err
			}
			v, err := read(int(binary.LittleEndian.Uint32(vl)))
			if err != nil {
				return err
			}
			key := make([]byte, len(k))
			copy(key, k)
			val := make([]byte, len(v))
			copy(val, v)
			tbl.Put(key, val)
		}
	}
	return nil
}

// ---------------------------------------------------------- store hooks ---

// OpenDir opens (or recovers) a durable store rooted at dir: the snapshot
// is loaded first, then the WAL replayed on top.
func OpenDir(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := Open(opts)
	s.dir = dir
	if err := s.loadSnapshot(filepath.Join(dir, snapFileName)); err != nil {
		return nil, err
	}
	err := replayWAL(filepath.Join(dir, walFileName), func(rec walRecord) {
		tbl := s.OpenTable(rec.table)
		switch rec.op {
		case opPut:
			tbl.Put(rec.key, rec.value)
		case opDelete:
			tbl.Delete(rec.key)
		case opBatch:
			// s.wal is still nil during replay, so this cannot re-log.
			tbl.MultiPut(rec.rows)
		}
	})
	if err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// Checkpoint writes a snapshot of all tables and truncates the WAL. Safe to
// call at any quiesced point (no concurrent writers).
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return errors.New("kvstore: store is not durable (no dir)")
	}
	s.stats.WALSyncs.Add(1)
	if err := s.wal.sync(); err != nil {
		return err
	}
	if err := s.writeSnapshot(filepath.Join(s.dir, snapFileName)); err != nil {
		return err
	}
	// Truncate the log: everything it held is in the snapshot.
	if err := s.wal.close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.dir, walFileName), 0); err != nil {
		return err
	}
	w, err := openWAL(filepath.Join(s.dir, walFileName))
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

// Sync flushes the WAL to stable storage.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	s.stats.WALSyncs.Add(1)
	return s.wal.sync()
}

// Quiesce blocks until every background flush and compaction scheduled so
// far has completed — tests and checkpoints call this to observe a settled
// LSM state and deterministic Flushes/Compactions counters.
func (s *Store) Quiesce() {
	s.fl.drain()
}

// Close drains the background flusher, stops the worker pool, and flushes
// and closes the WAL (which in-memory stores don't have). Scans issued
// after Close still work; their tasks fall back to plain goroutines.
func (s *Store) Close() error {
	s.fl.close()
	s.pool.close()
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// logMutation appends to the WAL when durability is enabled.
func (s *Store) logMutation(op byte, table string, key, value []byte) {
	if s.wal != nil {
		// WAL errors are surfaced on Sync/Close; the in-memory state is
		// already updated, matching the fire-and-forget semantics of an
		// async WAL.
		_ = s.wal.append(op, table, key, value)
		s.stats.WALAppends.Add(1)
	}
}

// logBatch appends one group-commit batch record when durability is enabled.
func (s *Store) logBatch(table string, rows []KV) {
	if s.wal != nil && len(rows) > 0 {
		_ = s.wal.appendBatch(table, rows)
		s.stats.WALAppends.Add(1)
	}
}
