package kvstore

// Filter is a push-down predicate evaluated inside region scans, the
// store-side analogue of an HBase filter chain. Returning false drops the
// row before it is "transferred" to the client; the row still counts toward
// RowsScanned, so filter selectivity is visible in scan statistics.
//
// Implementations must be safe for concurrent use: a single Filter value is
// shared by the parallel per-region scanners of one query.
type Filter interface {
	Accept(key, value []byte) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(key, value []byte) bool

// Accept implements Filter.
func (f FilterFunc) Accept(key, value []byte) bool { return f(key, value) }

// Chain combines filters with AND semantics, mirroring TMan's filter chain
// (temporal + spatial + similarity filters pushed down together). A nil or
// empty chain accepts everything.
func Chain(filters ...Filter) Filter {
	compact := make([]Filter, 0, len(filters))
	for _, f := range filters {
		if f != nil {
			compact = append(compact, f)
		}
	}
	switch len(compact) {
	case 0:
		return nil
	case 1:
		return compact[0]
	}
	return chainFilter(compact)
}

type chainFilter []Filter

func (c chainFilter) Accept(key, value []byte) bool {
	for _, f := range c {
		if !f.Accept(key, value) {
			return false
		}
	}
	return true
}

// FenceVerdict composes member verdicts under AND semantics: any member
// that can prove no row passes proves it for the chain (Skip wins
// immediately), AcceptAll survives only if every member asserts it, and a
// member without fence support caps the chain at Inspect — it still has to
// see every row.
func (c chainFilter) FenceVerdict(f Fence) BlockVerdict {
	out := VerdictAcceptAll
	for _, m := range c {
		ff, ok := m.(FenceFilter)
		if !ok {
			out = VerdictInspect
			continue
		}
		switch ff.FenceVerdict(f) {
		case VerdictSkip:
			return VerdictSkip
		case VerdictInspect:
			out = VerdictInspect
		}
	}
	return out
}
