package kvstore

import (
	"bytes"
	"sort"
)

// sortedRun is an immutable, key-ordered array of entries produced by a
// memtable flush or a compaction. Newer runs shadow older ones.
type sortedRun struct {
	entries []entry
	bytes   int
}

func newSortedRun(entries []entry) *sortedRun {
	b := 0
	for _, e := range entries {
		b += len(e.key) + len(e.value)
	}
	return &sortedRun{entries: entries, bytes: b}
}

// seek returns the index of the first entry with key >= target.
func (r *sortedRun) seek(target []byte) int {
	return sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, target) >= 0
	})
}

// get performs a point lookup.
func (r *sortedRun) get(key []byte) (value []byte, tomb, found bool) {
	i := r.seek(key)
	if i < len(r.entries) && bytes.Equal(r.entries[i].key, key) {
		return r.entries[i].value, r.entries[i].tomb, true
	}
	return nil, false, false
}

// mergeRuns merges newest-to-oldest ordered sources into a single run,
// dropping shadowed versions. If dropTombs is true, tombstones are removed
// (full compaction); otherwise they are preserved so they keep shadowing
// older data that may live elsewhere.
func mergeRuns(sources [][]entry, dropTombs bool) []entry {
	type cursor struct {
		src []entry
		pos int
		pri int // lower = newer
	}
	cursors := make([]*cursor, 0, len(sources))
	total := 0
	for pri, src := range sources {
		if len(src) > 0 {
			cursors = append(cursors, &cursor{src: src, pri: pri})
			total += len(src)
		}
	}
	out := make([]entry, 0, total)
	for {
		// Find smallest key among cursors; ties resolved by priority.
		var best *cursor
		for _, c := range cursors {
			if c.pos >= len(c.src) {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			cmp := bytes.Compare(c.src[c.pos].key, best.src[best.pos].key)
			if cmp < 0 || (cmp == 0 && c.pri < best.pri) {
				best = c
			}
		}
		if best == nil {
			return out
		}
		e := best.src[best.pos]
		// Advance every cursor past this key (shadowed versions).
		for _, c := range cursors {
			for c.pos < len(c.src) && bytes.Equal(c.src[c.pos].key, e.key) {
				c.pos++
			}
		}
		if e.tomb && dropTombs {
			continue
		}
		out = append(out, e)
	}
}
