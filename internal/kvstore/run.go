package kvstore

import (
	"bytes"
	"sort"
)

// sortedRun is an immutable, key-ordered array of entries produced by a
// memtable flush or a compaction. Newer runs shadow older ones.
type sortedRun struct {
	entries []entry
	bytes   int
}

func newSortedRun(entries []entry) *sortedRun {
	b := 0
	for _, e := range entries {
		b += len(e.key) + len(e.value)
	}
	return &sortedRun{entries: entries, bytes: b}
}

// seek returns the index of the first entry with key >= target.
func (r *sortedRun) seek(target []byte) int {
	return sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, target) >= 0
	})
}

// get performs a point lookup.
func (r *sortedRun) get(key []byte) (value []byte, tomb, found bool) {
	i := r.seek(key)
	if i < len(r.entries) && bytes.Equal(r.entries[i].key, key) {
		return r.entries[i].value, r.entries[i].tomb, true
	}
	return nil, false, false
}

// mergeRuns merges newest-to-oldest ordered sources into a single run,
// dropping shadowed versions via a k-way heap merge (O(N log K) instead of
// the O(N·K) per-entry linear minimum search). If dropTombs is true,
// tombstones are removed (full compaction); otherwise they are preserved so
// they keep shadowing older data that may live elsewhere.
func mergeRuns(sources [][]entry, dropTombs bool) []entry {
	sc := getScanScratch(len(sources))
	defer sc.release()
	total := 0
	for pri, src := range sources {
		if len(src) > 0 {
			var c mergeCursor
			c.initSlice(src, pri)
			sc.cursors = append(sc.cursors, c)
			total += len(src)
		}
	}
	it := sc.start()
	return it.appendTo(make([]entry, 0, total), dropTombs)
}
