package kvstore

import (
	"bytes"
	"sort"
)

// sortedRun is an immutable, key-ordered run produced by a memtable flush
// or a compaction. Newer runs shadow older ones. Two storage modes share
// the type: the block format (br != nil — encoded blocks, sparse index,
// bloom filter; the default) and the legacy decoded slice (entries — kept
// for equivalence testing and unit fixtures). bytes is the raw key+value
// total in both modes, so region sizing and split geometry are identical
// across formats.
type sortedRun struct {
	entries []entry   // legacy mode; nil in block mode
	br      *blockRun // block mode; nil in legacy mode
	bytes   int

	// group links the key-disjoint fragments of one partitioned compaction:
	// consecutive runs sharing a nonzero group id are one logical run to the
	// tier policy (see compaction.go). 0 = ungrouped.
	group uint64
}

// newRunFromEntries builds a run in the mode bcfg selects (nil = legacy).
// rawBytes is the known key+value total; pass a negative value to have it
// counted here — every steady-state producer (flush, merge, split) already
// knows it and threads it through instead.
func newRunFromEntries(bcfg *blockConfig, entries []entry, rawBytes int) *sortedRun {
	if bcfg != nil {
		// The builder counts raw bytes in its one encoding pass.
		b := newBlockBuilder(bcfg)
		for i := range entries {
			b.add(entries[i].key, entries[i].value, entries[i].tomb)
		}
		br := b.finish()
		return &sortedRun{br: br, bytes: br.rawBytes}
	}
	if rawBytes < 0 {
		rawBytes = 0
		for i := range entries {
			rawBytes += len(entries[i].key) + len(entries[i].value)
		}
	}
	return &sortedRun{entries: entries, bytes: rawBytes}
}

// numEntries returns the run's entry count.
func (r *sortedRun) numEntries() int {
	if r.br != nil {
		return r.br.count
	}
	return len(r.entries)
}

// residentBytes is the run's actual memory footprint: encoded blocks plus
// index and filter in block mode, decoded rows in legacy mode.
func (r *sortedRun) residentBytes() int {
	if r.br == nil {
		return r.bytes
	}
	n := r.br.encBytes + r.br.filter.sizeBytes()
	for i := range r.br.index {
		n += len(r.br.index[i].firstKey) + 16
	}
	return n
}

// materialize returns the run's full decoded entry slice. Legacy runs
// return their backing slice (callers treat runs as immutable); block runs
// decode every block once, bypassing the cache.
func (r *sortedRun) materialize() []entry {
	if r.br != nil {
		return r.br.materialize()
	}
	return r.entries
}

// seek returns the index of the first entry with key >= target (legacy
// slice mode only; block-mode reads go through blockRun).
func (r *sortedRun) seek(target []byte) int {
	return sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, target) >= 0
	})
}

// get performs a point lookup. missBytes is the encoded bytes physically
// read to answer it (block mode; always zero for legacy slices).
func (r *sortedRun) get(key []byte) (value []byte, tomb, found bool, missBytes int64) {
	if r.br != nil {
		return r.br.get(key)
	}
	i := r.seek(key)
	if i < len(r.entries) && bytes.Equal(r.entries[i].key, key) {
		return r.entries[i].value, r.entries[i].tomb, true, 0
	}
	return nil, false, false, 0
}

// mergeRuns merges newest-to-oldest ordered sources into a single entry
// slice, dropping shadowed versions via a k-way heap merge (O(N log K)
// instead of the O(N·K) per-entry linear minimum search). If dropTombs is
// true, tombstones are removed (full compaction); otherwise they are
// preserved so they keep shadowing older data that may live elsewhere.
// The second result is the merged raw key+value byte total, counted while
// the output is appended so no caller recounts it.
func mergeRuns(sources [][]entry, dropTombs bool) ([]entry, int) {
	sc := getScanScratch(len(sources))
	defer sc.release()
	total := 0
	for pri, src := range sources {
		if len(src) > 0 {
			var c mergeCursor
			c.initSlice(src, pri)
			sc.cursors = append(sc.cursors, c)
			total += len(src)
		}
	}
	it := sc.start()
	return it.appendTo(make([]entry, 0, total), dropTombs)
}

// mergeRunSlice merges oldest-first runs into one tombstone-free run (a
// region owns its whole key range, so nothing older can resurface).
func mergeRunSlice(bcfg *blockConfig, runs []*sortedRun) *sortedRun {
	return mergeRunWindow(bcfg, runs, nil, nil, true)
}

// mergeRunWindow merges the [lo, hi) key window of oldest-first runs into
// one run — the unit of a key-range-partitioned sub-compaction (nil bounds
// merge everything: a full compaction). If dropTombs is false, tombstones
// are preserved in the output so they keep shadowing older runs below the
// merge window. In block mode the sources stream block-by-block through
// cursors into a new block builder — the decoded working set is one block
// per source, never the whole window — and the merge bypasses the block
// cache so compactions don't evict the read path's working set.
func mergeRunWindow(bcfg *blockConfig, runs []*sortedRun, lo, hi []byte, dropTombs bool) *sortedRun {
	if bcfg == nil {
		sources := make([][]entry, len(runs))
		for i, run := range runs {
			es := run.entries
			i0, j0 := 0, len(es)
			if lo != nil {
				i0 = run.seek(lo)
			}
			if hi != nil {
				j0 = run.seek(hi)
			}
			if j0 < i0 {
				j0 = i0
			}
			sources[len(runs)-1-i] = es[i0:j0]
		}
		entries, rawBytes := mergeRuns(sources, dropTombs)
		return &sortedRun{entries: entries, bytes: rawBytes}
	}
	sc := getScanScratch(len(runs))
	defer sc.release()
	for i := len(runs) - 1; i >= 0; i-- { // newest first = lowest priority
		run := runs[i]
		sc.cursors = append(sc.cursors, mergeCursor{})
		c := &sc.cursors[len(sc.cursors)-1]
		if run.br != nil {
			// Compaction merges carry no filter: every surviving row must be
			// rewritten, so no fence pruning applies (fences for the output
			// run are recomputed by the builder below).
			c.initBlock(run.br, lo, hi, len(runs)-1-i, true, nil, false, nil)
		} else {
			es := run.entries
			i0, j0 := 0, len(es)
			if lo != nil {
				i0 = run.seek(lo)
			}
			if hi != nil {
				j0 = run.seek(hi)
			}
			if j0 < i0 {
				j0 = i0
			}
			c.initSlice(es[i0:j0], len(runs)-1-i)
		}
	}
	it := sc.start()
	b := newBlockBuilder(bcfg)
	for {
		e, _, ok := it.next()
		if !ok {
			break
		}
		if e.tomb && dropTombs {
			continue
		}
		b.add(e.key, e.value, e.tomb)
	}
	br := b.finish()
	return &sortedRun{br: br, bytes: br.rawBytes}
}
