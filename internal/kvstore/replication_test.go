package kvstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func replicatedStore(t *testing.T, replicas int, mutate func(*Options)) (*Store, *Table) {
	t.Helper()
	opts := NoNetworkOptions()
	opts.Replicas = replicas
	if mutate != nil {
		mutate(&opts)
	}
	s := Open(opts)
	t.Cleanup(func() { s.Close() })
	tbl, err := s.CreateTable("traj")
	if err != nil {
		t.Fatal(err)
	}
	return s, tbl
}

// firstGroup returns the replication group of the table's first region.
func firstGroup(t testing.TB, tbl *Table) *replGroup {
	t.Helper()
	regs := tbl.regionSnapshot()
	if len(regs) == 0 || regs[0].rep == nil {
		t.Fatal("no replicated region")
	}
	return regs[0].rep
}

func kvKey(i int) []byte   { return fmt.Appendf(nil, "key-%05d", i) }
func kvValue(i int) []byte { return fmt.Appendf(nil, "value-%05d", i) }

// assertReplicaConvergence checks that every follower of every group holds
// exactly the leader's live rows and sits at the group's sequence.
func assertReplicaConvergence(t *testing.T, s *Store) {
	t.Helper()
	for _, tbl := range s.tablesSnapshot() {
		for _, r := range tbl.regionSnapshot() {
			g := r.rep
			if g == nil {
				continue
			}
			g.lock()
			want, _, _ := g.leader.scan(nil, nil, nil, 0, nil, nil, nil)
			for _, f := range g.followers {
				if f.down {
					t.Errorf("region %d: follower on node %d still down", r.id, f.node)
					continue
				}
				if f.seq != g.seq || f.epoch != g.epoch {
					t.Errorf("region %d: follower on node %d at epoch %d seq %d, group at %d/%d",
						r.id, f.node, f.epoch, f.seq, g.epoch, g.seq)
				}
				got, _, _ := f.reg.scan(nil, nil, nil, 0, nil, nil, nil)
				if len(got) != len(want) {
					t.Errorf("region %d: follower on node %d has %d rows, leader %d",
						r.id, f.node, len(got), len(want))
					continue
				}
				for i := range want {
					if string(got[i].Key) != string(want[i].Key) || string(got[i].Value) != string(want[i].Value) {
						t.Errorf("region %d: follower on node %d diverges at row %d: %q=%q vs %q=%q",
							r.id, f.node, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
						break
					}
				}
			}
			g.unlock()
		}
	}
}

// TestReplicationShipsAllOps drives every mutation shape through a
// replicated region — single puts, a group-commit batch, deletes and an
// overwrite — and checks the followers converge to the leader bit for bit.
func TestReplicationShipsAllOps(t *testing.T) {
	s, tbl := replicatedStore(t, 3, nil)
	for i := 0; i < 50; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	batch := make([]KV, 40)
	for i := range batch {
		batch[i] = KV{Key: kvKey(100 + i), Value: kvValue(100 + i)}
	}
	tbl.MultiPut(batch)
	for i := 0; i < 10; i++ {
		tbl.Delete(kvKey(i * 3))
	}
	tbl.Put(kvKey(1), []byte("overwritten"))

	assertReplicaConvergence(t, s)
	st := s.Stats().Snapshot()
	// 50 puts + 1 batch + 10 deletes + 1 overwrite = 62 commits, each one frame.
	if st.ShipFrames != 62 {
		t.Fatalf("ShipFrames = %d, want 62", st.ShipFrames)
	}
	if st.ShipRejects != 0 || st.Failovers != 0 {
		t.Fatalf("unexpected rejects/failovers: %+v", st)
	}
	g := firstGroup(t, tbl)
	if len(g.followers) != 2 {
		t.Fatalf("followers = %d, want 2", len(g.followers))
	}
	seen := map[int]bool{g.leader.nodeID(): true}
	for _, f := range g.followers {
		if seen[f.node] {
			t.Fatalf("replica placement reuses node %d", f.node)
		}
		seen[f.node] = true
	}
}

// TestFailoverPromotesDeterministically kills the leader's node and checks
// the promotion contract: the best live follower (max sequence, lowest node
// id on ties) takes over in place, the epoch advances, reads and writes keep
// working, and a second leader kill still leaves the data intact with RF=3.
func TestFailoverPromotesDeterministically(t *testing.T) {
	s, tbl := replicatedStore(t, 3, nil)
	for i := 0; i < 200; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	g := firstGroup(t, tbl)
	oldLeaderNode := g.leader.nodeID()
	// Both followers are caught up, so the tie-break must pick the lowest
	// follower node id.
	wantNode := g.followers[0].node
	for _, f := range g.followers {
		if f.node < wantNode {
			wantNode = f.node
		}
	}

	s.KillNode(oldLeaderNode)
	if got := g.leader.nodeID(); got != wantNode {
		t.Fatalf("promoted node %d, want %d", got, wantNode)
	}
	if g.epoch != 1 {
		t.Fatalf("epoch after failover = %d, want 1", g.epoch)
	}
	if st := s.Stats().Snapshot(); st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
	for i := 0; i < 200; i++ {
		v, ok := tbl.Get(kvKey(i))
		if !ok || string(v) != string(kvValue(i)) {
			t.Fatalf("after failover: key %d = %q %v", i, v, ok)
		}
	}
	// Writes keep flowing on the promoted leader and ship to the remaining
	// live follower.
	for i := 200; i < 260; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	// Second leader kill: the last live follower must take over.
	s.KillNode(g.leader.nodeID())
	if g.epoch != 2 {
		t.Fatalf("epoch after second failover = %d, want 2", g.epoch)
	}
	rows := tbl.Scan(nil, nil, nil, 0)
	if len(rows) != 260 {
		t.Fatalf("rows after two failovers = %d, want 260", len(rows))
	}
}

// TestKillReviveNoAckedWriteLoss cycles leader kills, post-failover writes
// and node revivals, then checks that every acknowledged write survives and
// all replicas converge — the invariant synchronous shipping buys.
func TestKillReviveNoAckedWriteLoss(t *testing.T) {
	s, tbl := replicatedStore(t, 3, nil)
	g := firstGroup(t, tbl)
	next := 0
	write := func(n int) {
		for i := 0; i < n; i++ {
			tbl.Put(kvKey(next), kvValue(next))
			next++
		}
	}
	write(50)
	for cycle := 0; cycle < 6; cycle++ {
		dead := g.leader.nodeID()
		s.KillNode(dead)
		write(30) // acked while one node is down
		s.ReviveNode(dead)
		write(20) // acked after the demoted copy rejoined
	}
	if st := s.Stats().Snapshot(); st.Failovers != 6 {
		t.Fatalf("Failovers = %d, want 6", st.Failovers)
	}
	rows := tbl.Scan(nil, nil, nil, 0)
	if len(rows) != next {
		t.Fatalf("acked-write loss: %d rows, want %d", len(rows), next)
	}
	for i := 0; i < next; i++ {
		if string(rows[i].Key) != string(kvKey(i)) || string(rows[i].Value) != string(kvValue(i)) {
			t.Fatalf("row %d = %q=%q, want %q=%q", i, rows[i].Key, rows[i].Value, kvKey(i), kvValue(i))
		}
	}
	assertReplicaConvergence(t, s)
}

// TestStaleLeaderFencedOnRevive makes sure a deposed leader's unshipped
// state is discarded: after its node revives it rejoins as a follower,
// rebuilt by snapshot under the new epoch, identical to the new leader.
func TestStaleLeaderFencedOnRevive(t *testing.T) {
	s, tbl := replicatedStore(t, 3, nil)
	g := firstGroup(t, tbl)
	tbl.Put([]byte("k"), []byte("old"))
	dead := g.leader.nodeID()
	s.KillNode(dead)
	tbl.Put([]byte("k"), []byte("new")) // committed under the new epoch
	base := s.Stats().Snapshot()
	s.ReviveNode(dead)
	if d := s.Stats().Snapshot().CatchupSnapshots - base.CatchupSnapshots; d != 1 {
		t.Fatalf("CatchupSnapshots delta = %d, want 1 (stale copy must rebuild)", d)
	}
	g.lock()
	for _, f := range g.followers {
		if f.stale || f.down {
			t.Fatalf("follower on node %d still stale/down after revive", f.node)
		}
		v, ok := f.reg.get([]byte("k"))
		if !ok || string(v) != "new" {
			t.Fatalf("follower on node %d sees k=%q %v, want \"new\"", f.node, v, ok)
		}
	}
	g.unlock()
	assertReplicaConvergence(t, s)
}

// TestFollowerReadStalenessBound pins the staleness contract: a caught-up
// follower serves bounded reads; a follower lagging beyond the bound is
// routed around (the leader serves, so results are fresh); a lagging
// follower inside a loose bound may serve, returning data no staler than
// its last applied commit; catch-up restores eligibility at bound zero.
func TestFollowerReadStalenessBound(t *testing.T) {
	s, tbl := replicatedStore(t, 2, nil)
	g := firstGroup(t, tbl)
	f := g.followers[0]
	for i := 0; i < 20; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}

	scan := func(boundMS int64) ([]KV, ScanStatus) {
		ctx := WithReadPref(context.Background(), ReadPref{MaxStalenessMS: boundMS})
		rows, status, err := tbl.ScanCtx(ctx, nil, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rows, status
	}

	// Caught-up follower serves under any non-negative bound, including 0.
	rows, status := scan(0)
	if status.FollowerReads != 1 {
		t.Fatalf("caught-up bound 0: FollowerReads = %d, want 1", status.FollowerReads)
	}
	if len(rows) != 20 {
		t.Fatalf("caught-up bound 0: %d rows, want 20", len(rows))
	}
	// Negative bound pins the read to the leader.
	if _, status = scan(-1); status.FollowerReads != 0 {
		t.Fatalf("negative bound: FollowerReads = %d, want 0", status.FollowerReads)
	}
	// No preference at all never touches a follower.
	if _, st2, err := tbl.ScanCtx(context.Background(), nil, nil, nil, 0); err != nil || st2.FollowerReads != 0 {
		t.Fatalf("no pref: FollowerReads = %d err %v, want 0", st2.FollowerReads, err)
	}

	// Hold the follower back: mark it down, commit a write it won't see,
	// then bring it back with a 10-second-old applied timestamp.
	g.lock()
	f.down = true
	g.unlock()
	tbl.Put(kvKey(20), kvValue(20))
	g.lock()
	f.down = false
	f.appliedCommitNanos = time.Now().Add(-10 * time.Second).UnixNano()
	g.unlock()

	// Lag (~10s) exceeds a 100ms bound: the leader must serve, and the
	// result includes the write the follower is missing.
	rows, status = scan(100)
	if status.FollowerReads != 0 {
		t.Fatalf("tight bound on lagging follower: FollowerReads = %d, want 0", status.FollowerReads)
	}
	if len(rows) != 21 {
		t.Fatalf("tight bound: %d rows, want 21 (leader-fresh)", len(rows))
	}
	// A loose bound admits the lagging follower; the rows it returns are
	// its consistent-but-stale state — never fresher claims than it holds.
	rows, status = scan(60_000)
	if status.FollowerReads != 1 {
		t.Fatalf("loose bound: FollowerReads = %d, want 1", status.FollowerReads)
	}
	if len(rows) != 20 {
		t.Fatalf("loose bound: %d rows, want the follower's 20", len(rows))
	}

	// Catch-up restores bound-0 eligibility with the fresh row visible.
	g.lock()
	g.catchUpLocked(f)
	g.unlock()
	rows, status = scan(0)
	if status.FollowerReads != 1 || len(rows) != 21 {
		t.Fatalf("after catch-up: FollowerReads=%d rows=%d, want 1/21", status.FollowerReads, len(rows))
	}
	if fr := s.Stats().Snapshot().FollowerReads; fr != 3 {
		t.Fatalf("store FollowerReads counter = %d, want 3", fr)
	}
}

// TestCatchupTailThenSnapshot exercises both catch-up gears through the
// public kill/revive API: a short outage replays the retained tail, an
// outage longer than the tail forces a snapshot rebuild.
func TestCatchupTailThenSnapshot(t *testing.T) {
	s, tbl := replicatedStore(t, 2, func(o *Options) { o.ReplicaTailFrames = 4 })
	g := firstGroup(t, tbl)
	fnode := g.followers[0].node
	tbl.Put(kvKey(0), kvValue(0))

	// Outage shorter than the tail: 3 missed commits, tail holds 4.
	s.KillNode(fnode)
	for i := 1; i <= 3; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	base := s.Stats().Snapshot()
	s.ReviveNode(fnode)
	st := s.Stats().Snapshot()
	if st.CatchupTail-base.CatchupTail != 1 || st.CatchupSnapshots != base.CatchupSnapshots {
		t.Fatalf("short outage: tail %d→%d snapshots %d→%d, want one tail replay",
			base.CatchupTail, st.CatchupTail, base.CatchupSnapshots, st.CatchupSnapshots)
	}
	assertReplicaConvergence(t, s)

	// Outage longer than the tail: 10 missed commits fall off a 4-frame
	// tail, so catch-up must rebuild from a snapshot.
	s.KillNode(fnode)
	for i := 4; i < 14; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	base = s.Stats().Snapshot()
	s.ReviveNode(fnode)
	st = s.Stats().Snapshot()
	if st.CatchupSnapshots-base.CatchupSnapshots != 1 || st.CatchupTail != base.CatchupTail {
		t.Fatalf("long outage: tail %d→%d snapshots %d→%d, want one snapshot rebuild",
			base.CatchupTail, st.CatchupTail, base.CatchupSnapshots, st.CatchupSnapshots)
	}
	assertReplicaConvergence(t, s)
}

// TestSplitCreatesReplicatedChildren: a region split under replication gives
// each child its own follower set seeded with the child's half of the data.
func TestSplitCreatesReplicatedChildren(t *testing.T) {
	s, tbl := replicatedStore(t, 3, func(o *Options) {
		o.RegionMaxBytes = 32 << 10
		o.MemtableFlushBytes = 8 << 10
	})
	val := make([]byte, 128)
	for i := 0; i < 1000; i++ {
		tbl.Put(kvKey(i), val)
	}
	s.Quiesce()
	if tbl.RegionCount() < 2 {
		t.Fatalf("expected a split, still %d region(s)", tbl.RegionCount())
	}
	for _, r := range tbl.regionSnapshot() {
		if r.rep == nil {
			t.Fatalf("post-split region %d has no replication group", r.id)
		}
		if n := len(r.rep.followers); n != 2 {
			t.Fatalf("post-split region %d has %d followers, want 2", r.id, n)
		}
	}
	assertReplicaConvergence(t, s)
}

// TestReplicationRaceStress runs writers, bounded follower readers and a
// kill/revive chaos loop concurrently — the test the CI replication job pins
// under the race detector — then checks full convergence and zero acked-
// write loss once the dust settles.
func TestReplicationRaceStress(t *testing.T) {
	s, tbl := replicatedStore(t, 3, nil)
	const writers, perWriter = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Appendf(nil, "w%d-%05d", w, i)
				if i%10 == 9 {
					batch := []KV{{Key: key, Value: kvValue(i)}}
					tbl.MultiPut(batch)
				} else {
					tbl.Put(key, kvValue(i))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // chaos: rolling single-node outages
		defer wg.Done()
		for i := 0; i < 25; i++ {
			node := i % s.Nodes()
			s.KillNode(node)
			s.ReviveNode(node)
		}
	}()
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func(bound int64) {
			defer wg.Done()
			ctx := WithReadPref(context.Background(), ReadPref{MaxStalenessMS: bound})
			for i := 0; i < 60; i++ {
				if _, _, err := tbl.ScanCtx(ctx, nil, nil, nil, 0); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(int64(rdr * 50))
	}
	wg.Wait()
	for n := 0; n < s.Nodes(); n++ {
		s.ReviveNode(n)
	}
	rows := tbl.Scan(nil, nil, nil, 0)
	if want := writers * perWriter; len(rows) != want {
		t.Fatalf("acked-write loss under chaos: %d rows, want %d", len(rows), want)
	}
	assertReplicaConvergence(t, s)
}

// BenchmarkFollowerReadScaling measures bounded-staleness reads as replicas
// are added, on a cluster where two of five nodes are 8x slow. The cost
// model charges analytic I/O per scan (nothing sleeps), so the replica win
// shows up in the reported sim-io-ns/op: with RF=1 a region homed on a slow
// node pays the multiplier on every read, with RF>=2 reads route to a fast
// replica. CPU ns/op stays roughly flat — follower routing itself is cheap.
func BenchmarkFollowerReadScaling(b *testing.B) {
	for _, rf := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("rf=%d", rf), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Replicas = rf
			opts.Fault = FaultConfig{Seed: 1, SlowNodes: map[int]float64{0: 8, 1: 8}}
			s := Open(opts)
			defer s.Close()
			tbl, err := s.CreateTable("bench")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				tbl.Put(kvKey(i), kvValue(i))
			}
			ctx := WithReadPref(context.Background(), ReadPref{MaxStalenessMS: 100})
			base := s.Stats().Snapshot().SimIONanos
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tbl.ScanCtx(ctx, kvKey(500), kvKey(600), nil, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			simIO := s.Stats().Snapshot().SimIONanos - base
			b.ReportMetric(float64(simIO)/float64(b.N), "sim-io-ns/op")
		})
	}
}

// BenchmarkFailover measures recovery: each iteration kills the current
// leader's node (promoting a follower for every group led there) and then
// revives it (snapshot catch-up of the demoted copy), on a 5000-row region
// at RF=3. The kill half alone is the paper-facing "recovery time after
// leader kill"; the cycle bounds it from above.
func BenchmarkFailover(b *testing.B) {
	opts := NoNetworkOptions()
	opts.Replicas = 3
	s := Open(opts)
	defer s.Close()
	tbl, err := s.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tbl.Put(kvKey(i), kvValue(i))
	}
	g := firstGroup(b, tbl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dead := g.leader.nodeID()
		s.KillNode(dead)
		s.ReviveNode(dead)
	}
}
