package kvstore

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Fault model: the simulated cluster can be configured to misbehave the way
// the paper's five-node HBase deployment does in practice — transient RPC
// failures, slow region servers, and regions that go briefly unavailable
// around splits and compactions. Faults apply only to the client-facing
// context-aware operations (ScanCtx, ScanRangesCtx, GetCtx, PutCtx); the
// plain methods model trusted in-process access (WAL replay, snapshotting,
// index rewrites) and stay infallible.
//
// Every fault decision is a pure function of (Seed, region id, per-region
// attempt sequence), so a single-threaded test replays the exact same fault
// schedule on every run regardless of goroutine scheduling.

// Typed retryable errors surfaced by the fault layer.
var (
	// ErrTransientRPC is an injected per-attempt RPC failure (network blip,
	// dropped connection). Always retryable.
	ErrTransientRPC = errors.New("kvstore: transient rpc failure")
	// ErrRegionUnavailable is returned while a region is inside its
	// post-split/post-compaction unavailability window. Retryable: the
	// window drains by a fixed number of client RPCs.
	ErrRegionUnavailable = errors.New("kvstore: region temporarily unavailable")
	// ErrRetriesExhausted wraps a retryable error once the retry policy has
	// given up on an operation.
	ErrRetriesExhausted = errors.New("kvstore: retries exhausted")
)

// IsRetryable reports whether err is a transient fault worth retrying.
// ErrNodeDead counts: a retry may land after failover re-homes the region.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrTransientRPC) || errors.Is(err, ErrRegionUnavailable) || errors.Is(err, ErrNodeDead)
}

// FaultConfig configures deterministic fault injection for a Store. The zero
// value disables injection entirely.
type FaultConfig struct {
	// Seed drives every fault decision; two stores with the same seed, data
	// and (single-threaded) operation order inject identical faults.
	Seed int64
	// PFailRPC is the probability that one client RPC attempt fails with
	// ErrTransientRPC.
	PFailRPC float64
	// SlowNodes maps a node id to a latency multiplier (> 1 slows every
	// region hosted on that node); it scales the simulated per-task cost.
	SlowNodes map[int]float64
	// UnavailableRPCsAfterSplit makes each region produced by a split (and
	// each region of a table-level compaction) fail its next N client RPC
	// attempts with ErrRegionUnavailable — the brief unavailability HBase
	// clients observe around region moves.
	UnavailableRPCsAfterSplit int
}

// Enabled reports whether any fault dimension is active.
func (f FaultConfig) Enabled() bool {
	return f.PFailRPC > 0 || len(f.SlowNodes) > 0 || f.UnavailableRPCsAfterSplit > 0
}

// RetryPolicy is the client-side retry schedule for retryable faults.
// Backoff is charged analytically (no sleeping) into the simulated I/O
// makespan so the cost model stays precise and tests stay fast.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per RPC (first try
	// included). <= 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// JitterFrac scales deterministic jitter: each delay is multiplied by
	// 1 + JitterFrac*(u-0.5) with u uniform in [0,1).
	JitterFrac float64
}

// DefaultRetryPolicy mirrors a conservative HBase client: 4 attempts,
// 10ms → 2s exponential backoff with 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
}

func (p *RetryPolicy) sanitize() {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.JitterFrac < 0 || p.JitterFrac > 1 {
		p.JitterFrac = def.JitterFrac
	}
}

// backoff returns the analytic delay before retry number `retry` (1-based),
// jittered by a deterministic unit sample.
func (p RetryPolicy) backoff(retry int, unit float64) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	d *= 1 + p.JitterFrac*(unit-0.5)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// faultInjector evaluates the fault schedule. It is stateless beyond its
// config: randomness comes from hashing (seed, region id, attempt seq).
type faultInjector struct {
	cfg FaultConfig
}

func newFaultInjector(cfg FaultConfig) *faultInjector {
	if !cfg.Enabled() {
		return nil
	}
	return &faultInjector{cfg: cfg}
}

// splitmix64 is a strong 64-bit finalizer (Steele et al.), used as a
// counter-based PRNG so fault decisions are order-independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit returns a deterministic uniform sample in [0,1) for one (region,
// sequence) pair.
func (in *faultInjector) unit(regionID, seq int64) float64 {
	h := splitmix64(uint64(in.cfg.Seed)<<1 ^ splitmix64(uint64(regionID)<<17^uint64(seq)))
	return float64(h>>11) / float64(1<<53)
}

// attempt evaluates one client RPC attempt against a region: nil means the
// RPC goes through; otherwise a typed retryable error. stats counters record
// every injected fault.
func (in *faultInjector) attempt(r *region, stats *Stats) error {
	if in == nil {
		return nil
	}
	if in.cfg.UnavailableRPCsAfterSplit > 0 && r.takeUnavailable() {
		if stats != nil {
			stats.FailedRPCs.Add(1)
		}
		return ErrRegionUnavailable
	}
	if in.cfg.PFailRPC > 0 {
		seq := r.faultSeq.Add(1)
		if in.unit(r.id, seq) < in.cfg.PFailRPC {
			if stats != nil {
				stats.FailedRPCs.Add(1)
			}
			return ErrTransientRPC
		}
	}
	return nil
}

// latencyScale returns the slow-node multiplier for a node (1 when healthy).
func (in *faultInjector) latencyScale(node int) float64 {
	if in == nil || len(in.cfg.SlowNodes) == 0 {
		return 1
	}
	if m, ok := in.cfg.SlowNodes[node]; ok && m > 0 {
		return m
	}
	return 1
}

// markUnavailable opens a full unavailability window on a region (splits:
// the whole region moved).
func (in *faultInjector) markUnavailable(r *region) {
	if in == nil || in.cfg.UnavailableRPCsAfterSplit <= 0 {
		return
	}
	r.unavail.Store(int64(in.cfg.UnavailableRPCsAfterSplit))
}

// markUnavailableBytes opens an unavailability window scaled to the
// fraction of the region's bytes the operation actually rewrote (ceiling,
// minimum one RPC when anything moved): the post-compaction blip is bounded
// to the swapped tier instead of the whole region, so the tiered policy's
// more frequent — but much smaller — merges don't inflate injected
// unavailability over the legacy monolithic policy. Deterministic: both
// arguments are pure functions of the write sequence.
func (in *faultInjector) markUnavailableBytes(r *region, swapped, total int) {
	if in == nil || in.cfg.UnavailableRPCsAfterSplit <= 0 || swapped <= 0 {
		return
	}
	n := in.cfg.UnavailableRPCsAfterSplit
	if total > swapped {
		n = (n*swapped + total - 1) / total
		if n < 1 {
			n = 1
		}
	}
	r.unavail.Store(int64(n))
}

// ------------------------------------------------------- query budget ---

// QueryBudget accumulates the simulated (analytic) time a query has spent —
// backoff delays and cluster-side I/O makespans that were charged without
// sleeping. Deadline checks compare now + simulated time against the context
// deadline, so a query with a 50ms deadline and 100ms of analytic backoff
// expires exactly as a real cluster client would, with no test ever
// sleeping.
type QueryBudget struct {
	sim atomic.Int64 // nanoseconds of analytic time consumed
}

type queryBudgetKey struct{}

// WithQueryBudget attaches a fresh analytic-time budget to ctx. Query entry
// points call this once so every storage operation underneath shares one
// clock.
func WithQueryBudget(ctx context.Context) context.Context {
	return context.WithValue(ctx, queryBudgetKey{}, &QueryBudget{})
}

func budgetFrom(ctx context.Context) *QueryBudget {
	b, _ := ctx.Value(queryBudgetKey{}).(*QueryBudget)
	return b
}

// Charge adds analytic time to the budget (no-op on a nil budget).
func (b *QueryBudget) Charge(d time.Duration) {
	if b != nil && d > 0 {
		b.sim.Add(int64(d))
	}
}

// SimElapsed returns the analytic time consumed so far.
func (b *QueryBudget) SimElapsed() time.Duration {
	if b == nil {
		return 0
	}
	return time.Duration(b.sim.Load())
}

// DeadlineExceeded reports whether ctx's deadline has passed once analytic
// time is added to the real clock, or ctx is otherwise done.
func DeadlineExceeded(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return false
	}
	return !time.Now().Add(budgetFrom(ctx).SimElapsed()).Before(dl)
}

// ScanStatus reports the fault/retry outcome of one context-aware scan.
type ScanStatus struct {
	// Partial is true when at least one region task was skipped or gave up
	// (deadline expired or retries exhausted): the returned rows are a
	// correct subset of the full answer.
	Partial bool
	// RetriedRPCs counts retry attempts performed.
	RetriedRPCs int64
	// FailedRegions counts region tasks that contributed no rows.
	FailedRegions int
	// FollowerReads counts region tasks served by a follower replica under
	// the query's staleness bound instead of the leader.
	FollowerReads int64
}

func (s *ScanStatus) merge(o ScanStatus) {
	s.Partial = s.Partial || o.Partial
	s.RetriedRPCs += o.RetriedRPCs
	s.FailedRegions += o.FailedRegions
	s.FollowerReads += o.FollowerReads
}
