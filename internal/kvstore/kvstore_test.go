package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestSkiplistSetGet(t *testing.T) {
	s := newSkiplist(1)
	s.set([]byte("b"), []byte("2"), false)
	s.set([]byte("a"), []byte("1"), false)
	s.set([]byte("c"), []byte("3"), false)
	v, tomb, found := s.get([]byte("b"))
	if !found || tomb || string(v) != "2" {
		t.Fatalf("get b = %q tomb=%v found=%v", v, tomb, found)
	}
	if _, _, found := s.get([]byte("zz")); found {
		t.Error("missing key reported found")
	}
	// Replace.
	s.set([]byte("b"), []byte("22"), false)
	v, _, _ = s.get([]byte("b"))
	if string(v) != "22" {
		t.Errorf("replace failed: %q", v)
	}
	if s.size != 3 {
		t.Errorf("size = %d, want 3 (replace must not grow)", s.size)
	}
	// Tombstone.
	s.set([]byte("a"), nil, true)
	_, tomb, found = s.get([]byte("a"))
	if !found || !tomb {
		t.Error("tombstone not recorded")
	}
}

func TestSkiplistOrderAndSeek(t *testing.T) {
	s := newSkiplist(2)
	rng := rand.New(rand.NewSource(3))
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", rng.Intn(100000))
		s.set([]byte(keys[i]), []byte("v"), false)
	}
	var prev []byte
	count := 0
	for n := s.first(); n != nil; n = n.next[0] {
		if prev != nil && bytes.Compare(prev, n.key) >= 0 {
			t.Fatalf("order violated: %q then %q", prev, n.key)
		}
		prev = n.key
		count++
	}
	uniq := map[string]bool{}
	for _, k := range keys {
		uniq[k] = true
	}
	if count != len(uniq) {
		t.Errorf("iterated %d, want %d unique", count, len(uniq))
	}
	// Seek semantics.
	n := s.seek([]byte("key-"))
	if n == nil || bytes.Compare(n.key, []byte("key-")) < 0 {
		t.Error("seek returned key before target")
	}
	if s.seek([]byte("zzz")) != nil {
		t.Error("seek past end should be nil")
	}
}

func TestMergeRunsShadowing(t *testing.T) {
	newer := []entry{{key: []byte("a"), value: []byte("new")}, {key: []byte("c"), tomb: true}}
	older := []entry{{key: []byte("a"), value: []byte("old")}, {key: []byte("b"), value: []byte("1")}, {key: []byte("c"), value: []byte("dead")}}
	got, _ := mergeRuns([][]entry{newer, older}, true)
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(got), got)
	}
	if string(got[0].key) != "a" || string(got[0].value) != "new" {
		t.Errorf("newest version should win: %+v", got[0])
	}
	if string(got[1].key) != "b" {
		t.Errorf("entry b missing: %+v", got[1])
	}
	// Tombstones preserved when not dropping.
	got, _ = mergeRuns([][]entry{newer, older}, false)
	if len(got) != 3 || !got[2].tomb {
		t.Errorf("tombstone should be preserved: %+v", got)
	}
}

func TestTablePutGetDelete(t *testing.T) {
	s := Open(Options{})
	tbl, err := s.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Put([]byte("k1"), []byte("v1"))
	if v, ok := tbl.Get([]byte("k1")); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	tbl.Delete([]byte("k1"))
	if _, ok := tbl.Get([]byte("k1")); ok {
		t.Error("deleted key still visible")
	}
	// Reinsert after delete.
	tbl.Put([]byte("k1"), []byte("v2"))
	if v, ok := tbl.Get([]byte("k1")); !ok || string(v) != "v2" {
		t.Errorf("reinsert = %q, %v", v, ok)
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	s := Open(Options{})
	if _, err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t"); err == nil {
		t.Error("duplicate table name should error")
	}
	if s.Table("missing") != nil {
		t.Error("missing table should be nil")
	}
	if s.OpenTable("t") == nil || s.OpenTable("u") == nil {
		t.Error("OpenTable should always return a table")
	}
}

func TestScanOrderedAndFiltered(t *testing.T) {
	s := Open(Options{})
	tbl, _ := s.CreateTable("t")
	rng := rand.New(rand.NewSource(9))
	want := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("row-%05d", rng.Intn(10000))
		v := fmt.Sprintf("val-%d", i)
		want[k] = v
		tbl.Put([]byte(k), []byte(v))
	}
	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != len(want) {
		t.Fatalf("scan returned %d rows, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("scan order violated at %d", i)
		}
	}
	for _, kv := range got {
		if want[string(kv.Key)] != string(kv.Value) {
			t.Fatalf("row %q = %q, want %q", kv.Key, kv.Value, want[string(kv.Key)])
		}
	}

	// Bounded range.
	lo, hi := []byte("row-02000"), []byte("row-03000")
	ranged := tbl.Scan(lo, hi, nil, 0)
	for _, kv := range ranged {
		if bytes.Compare(kv.Key, lo) < 0 || bytes.Compare(kv.Key, hi) >= 0 {
			t.Fatalf("row %q outside range", kv.Key)
		}
	}
	wantCount := 0
	for k := range want {
		if k >= "row-02000" && k < "row-03000" {
			wantCount++
		}
	}
	if len(ranged) != wantCount {
		t.Errorf("ranged scan = %d rows, want %d", len(ranged), wantCount)
	}

	// Push-down filter: only even-suffix values.
	before := s.Stats().Snapshot()
	filtered := tbl.Scan(nil, nil, FilterFunc(func(k, v []byte) bool {
		return len(v) > 0 && (v[len(v)-1]-'0')%2 == 0
	}), 0)
	d := Diff(before, s.Stats().Snapshot())
	if d.RowsScanned != int64(len(want)) {
		t.Errorf("RowsScanned = %d, want %d", d.RowsScanned, len(want))
	}
	if d.RowsReturned != int64(len(filtered)) {
		t.Errorf("RowsReturned = %d, want %d", d.RowsReturned, len(filtered))
	}
	if len(filtered) == 0 || len(filtered) == len(want) {
		t.Errorf("filter had no effect: %d of %d", len(filtered), len(want))
	}
}

func TestScanLimit(t *testing.T) {
	s := Open(Options{})
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	got := tbl.Scan(nil, nil, nil, 7)
	if len(got) != 7 {
		t.Errorf("limit scan = %d rows, want 7", len(got))
	}
	if string(got[0].Key) != "k000" {
		t.Errorf("limited scan should return smallest keys first, got %q", got[0].Key)
	}
}

func TestRegionSplitPreservesData(t *testing.T) {
	s := Open(Options{RegionMaxBytes: 64 << 10, MemtableFlushBytes: 8 << 10})
	tbl, _ := s.CreateTable("t")
	const n = 5000
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < n; i++ {
		tbl.Put([]byte(fmt.Sprintf("key-%08d", i)), val)
	}
	if tbl.RegionCount() < 2 {
		t.Fatalf("expected splits, still %d region(s)", tbl.RegionCount())
	}
	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != n {
		t.Fatalf("after splits scan returned %d rows, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("order violated after splits at %d", i)
		}
	}
	// Point lookups still work across regions.
	for _, i := range []int{0, 1, n / 3, n / 2, n - 1} {
		if _, ok := tbl.Get([]byte(fmt.Sprintf("key-%08d", i))); !ok {
			t.Fatalf("key %d lost after split", i)
		}
	}
	if s.Stats().Snapshot().RegionSplits == 0 {
		t.Error("split counter not incremented")
	}
}

func TestScanRangesMultiWindow(t *testing.T) {
	s := Open(Options{})
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 1000; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%04d", i)), []byte{byte(i)})
	}
	ranges := []KeyRange{
		{Start: []byte("k0100"), End: []byte("k0110")},
		{Start: []byte("k0500"), End: []byte("k0505")},
		{Start: []byte("k0990"), End: nil},
	}
	got := tbl.ScanRanges(ranges, nil, 0)
	if len(got) != 10+5+10 {
		t.Fatalf("multi-range scan = %d rows, want 25", len(got))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("multi-range order violated at %d", i)
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := Open(Options{RegionMaxBytes: 32 << 10, MemtableFlushBytes: 4 << 10})
	tbl, _ := s.CreateTable("t")
	var wg sync.WaitGroup
	const writers, rows = 4, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rows; i++ {
				tbl.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), []byte("value-payload"))
			}
		}(w)
	}
	// Concurrent scanners.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				out := tbl.Scan(nil, nil, nil, 0)
				for j := 1; j < len(out); j++ {
					if bytes.Compare(out[j-1].Key, out[j].Key) >= 0 {
						t.Error("concurrent scan order violated")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != writers*rows {
		t.Fatalf("final row count = %d, want %d", len(got), writers*rows)
	}
}

func TestDeleteAcrossFlushes(t *testing.T) {
	s := Open(Options{MemtableFlushBytes: 1 << 10, RegionMaxBytes: 1 << 30})
	tbl, _ := s.CreateTable("t")
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < 100; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%03d", i)), val)
	}
	// Delete half after the data has been flushed into runs.
	for i := 0; i < 100; i += 2 {
		tbl.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != 50 {
		t.Fatalf("after deletes scan = %d rows, want 50", len(got))
	}
	for _, kv := range got {
		var i int
		fmt.Sscanf(string(kv.Key), "k%03d", &i)
		if i%2 == 0 {
			t.Fatalf("deleted key %q still present", kv.Key)
		}
	}
}

func TestChainFilter(t *testing.T) {
	f1 := FilterFunc(func(k, v []byte) bool { return len(k) > 1 })
	f2 := FilterFunc(func(k, v []byte) bool { return k[0] == 'a' })
	c := Chain(f1, nil, f2)
	if !c.Accept([]byte("ab"), nil) {
		t.Error("chain should accept when all pass")
	}
	if c.Accept([]byte("bb"), nil) || c.Accept([]byte("a"), nil) {
		t.Error("chain should reject when any fails")
	}
	if Chain() != nil || Chain(nil) != nil {
		t.Error("empty chain should be nil")
	}
	if Chain(f1) == nil {
		t.Error("single-filter chain should pass through")
	}
}

func TestScanMatchesSortedOracle(t *testing.T) {
	s := Open(Options{MemtableFlushBytes: 2 << 10, RegionMaxBytes: 16 << 10})
	tbl, _ := s.CreateTable("t")
	rng := rand.New(rand.NewSource(77))
	oracle := map[string]string{}
	for op := 0; op < 10000; op++ {
		k := fmt.Sprintf("%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("%d", op)
			oracle[k] = v
			tbl.Put([]byte(k), []byte(v))
		case 2:
			delete(oracle, k)
			tbl.Delete([]byte(k))
		}
	}
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != len(keys) {
		t.Fatalf("scan = %d rows, oracle = %d", len(got), len(keys))
	}
	for i, k := range keys {
		if string(got[i].Key) != k || string(got[i].Value) != oracle[k] {
			t.Fatalf("row %d: got %q=%q, want %q=%q", i, got[i].Key, got[i].Value, k, oracle[k])
		}
	}
}
