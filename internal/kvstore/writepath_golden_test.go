package kvstore

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestWritePathStatsGolden pins the Stats counters of a fixed batched-ingest
// workload to exact values, the write-path twin of TestReadPathStatsGolden.
// The pinned counters are exactly the knobs the batched write path is allowed
// to move — one RPC per region batch, seals decided by ingest volume, flushes
// and compactions drained in the background — so any drift means the pipeline
// changed how often it seals, flushes, compacts, splits, or talks to regions
// for the same logical write sequence.
//
// Determinism: rows come from a seeded PRNG on one goroutine; region batches
// execute in parallel but fault decisions are a pure function of (seed,
// region id, per-region attempt sequence) and every counter is summed over
// regions, so scheduling order cannot move totals. Quiesce drains the
// background flusher before the snapshot is read.
func TestWritePathStatsGolden(t *testing.T) {
	opts := DefaultOptions()
	opts.RegionMaxBytes = 64 << 10
	opts.MemtableFlushBytes = 8 << 10
	opts.MaxRunsPerRegion = 4
	opts.Parallelism = 4
	opts.Fault = FaultConfig{Seed: 19, PFailRPC: 0.3}
	opts.Retry = RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	s := Open(opts)
	defer s.Close()
	tbl, err := s.CreateTable("golden-write")
	if err != nil {
		t.Fatal(err)
	}

	const rows, batch = 6000, 500
	rng := rand.New(rand.NewSource(23))
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	perm := rng.Perm(rows)
	// Bulk load through the trusted batched path, shuffled batches spanning
	// the whole keyspace so splits happen mid-ingest.
	for off := 0; off < rows; off += batch {
		kvs := make([]KV, 0, batch)
		for _, i := range perm[off : off+batch] {
			val := strings.Repeat("w", 16+i%48) + fmt.Sprintf("#%06d", i)
			kvs = append(kvs, KV{Key: key(i), Value: []byte(val)})
		}
		tbl.MultiPut(kvs)
	}
	// Deletes and single-row rewrites interleave the batched and row paths.
	for i := 0; i < rows; i += 19 {
		tbl.Delete(key(i))
	}
	// Fallible batched overwrites exercise per-region retry accounting.
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		var kvs []KV
		for i := round; i < rows; i += 7 {
			kvs = append(kvs, KV{Key: key(i), Value: []byte(fmt.Sprintf("ctx-%d-%06d", round, i))})
		}
		if _, err := tbl.MultiPutCtx(WithQueryBudget(ctx), kvs); err != nil {
			t.Fatalf("MultiPutCtx round %d: %v", round, err)
		}
	}
	s.Quiesce()

	got := s.Stats().Snapshot()
	check := func(name string, got, want int64) {
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("Puts", got.Puts, pinWritePuts)
	check("Deletes", got.Deletes, pinWriteDeletes)
	check("Flushes", got.Flushes, pinWriteFlushes)
	check("Compactions", got.Compactions, pinWriteCompactions)
	check("RegionSplits", got.RegionSplits, pinWriteSplits)
	check("RPCs", got.RPCs, pinWriteRPCs)
	check("RetriedRPCs", got.RetriedRPCs, pinWriteRetried)
	check("FailedRPCs", got.FailedRPCs, pinWriteFailedRPCs)
	check("FailedRegions", got.FailedRegions, pinWriteFailedRegions)
	if t.Failed() {
		t.Logf("full snapshot: %+v", got)
	}
}

// Pinned counter values for TestWritePathStatsGolden's workload.
const (
	pinWritePuts          = 9318
	pinWriteDeletes       = 316
	pinWriteFlushes       = 90
	pinWriteCompactions   = 10
	pinWriteSplits        = 15
	pinWriteRPCs          = 137
	pinWriteRetried       = 21
	pinWriteFailedRPCs    = 23
	pinWriteFailedRegions = 2
)
