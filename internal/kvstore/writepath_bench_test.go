package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the batched write path: per-region MultiPut with sorted
// finger insertion and WAL group commit versus one-row-at-a-time Put. Run
// via `make bench-write` to regenerate BENCH_writepath.json.
//
// Each iteration ingests the same ingestRows-row working set into a durable
// (WAL-backed) store, so the numbers include the full put path: table
// routing, region locking, memtable insertion, cost-model accounting, and
// the WAL append+flush — exactly what separates group commit from per-row
// commit. After the first iteration the rows are replacements, keeping the
// store size and flush activity in steady state.

const ingestRows = 4096

// buildIngestRows returns a shuffled working set so the batched path pays
// its sort every iteration and the sequential path sees random-order keys.
func buildIngestRows() []KV {
	rows := make([]KV, ingestRows)
	for i := range rows {
		rows[i] = KV{
			Key:   []byte(fmt.Sprintf("key-%08d", i)),
			Value: []byte(fmt.Sprintf("value-payload-%08d-padding-padding-padding-padding-padding-padding", i)),
		}
	}
	rng := rand.New(rand.NewSource(77))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return rows
}

func benchmarkIngest(b *testing.B, regions int, batched bool) {
	opts := DefaultOptions()
	opts.RegionMaxBytes = 1 << 30 // geometry fixed by pre-split, no auto splits
	opts.MemtableFlushBytes = 256 << 10
	s, err := OpenDir(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tbl := s.OpenTable("bench")
	if regions > 1 {
		var keys [][]byte
		for i := 1; i < regions; i++ {
			keys = append(keys, []byte(fmt.Sprintf("key-%08d", i*ingestRows/regions)))
		}
		if err := tbl.PreSplit(keys); err != nil {
			b.Fatal(err)
		}
	}
	shuffled := buildIngestRows()
	scratch := make([]KV, len(shuffled))
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if batched {
			// MultiPut sorts its input in place; hand it a fresh copy of the
			// shuffled order so every iteration pays the real sort.
			copy(scratch, shuffled)
			tbl.MultiPut(scratch)
		} else {
			for _, kv := range shuffled {
				tbl.Put(kv.Key, kv.Value)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ingestRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	if rc := tbl.RegionCount(); rc != regions {
		b.Fatalf("region count drifted: %d, want %d", rc, regions)
	}
}

func BenchmarkWriteSequential1Region(b *testing.B)   { benchmarkIngest(b, 1, false) }
func BenchmarkWriteSequential4Regions(b *testing.B)  { benchmarkIngest(b, 4, false) }
func BenchmarkWriteSequential16Regions(b *testing.B) { benchmarkIngest(b, 16, false) }
func BenchmarkWriteBatched1Region(b *testing.B)      { benchmarkIngest(b, 1, true) }
func BenchmarkWriteBatched4Regions(b *testing.B)     { benchmarkIngest(b, 4, true) }
func BenchmarkWriteBatched16Regions(b *testing.B)    { benchmarkIngest(b, 16, true) }
