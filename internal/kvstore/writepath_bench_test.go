package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Benchmarks for the batched write path: per-region MultiPut with sorted
// finger insertion and WAL group commit versus one-row-at-a-time Put. Run
// via `make bench-write` to regenerate BENCH_writepath.json.
//
// Each iteration ingests the same ingestRows-row working set into a durable
// (WAL-backed) store, so the numbers include the full put path: table
// routing, region locking, memtable insertion, cost-model accounting, and
// the WAL append+flush — exactly what separates group commit from per-row
// commit. After the first iteration the rows are replacements, keeping the
// store size and flush activity in steady state.

const ingestRows = 4096

// buildIngestRows returns a shuffled working set so the batched path pays
// its sort every iteration and the sequential path sees random-order keys.
func buildIngestRows() []KV {
	rows := make([]KV, ingestRows)
	for i := range rows {
		rows[i] = KV{
			Key:   []byte(fmt.Sprintf("key-%08d", i)),
			Value: []byte(fmt.Sprintf("value-payload-%08d-padding-padding-padding-padding-padding-padding", i)),
		}
	}
	rng := rand.New(rand.NewSource(77))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return rows
}

func benchmarkIngest(b *testing.B, regions int, batched bool) {
	opts := DefaultOptions()
	opts.RegionMaxBytes = 1 << 30 // geometry fixed by pre-split, no auto splits
	opts.MemtableFlushBytes = 256 << 10
	s, err := OpenDir(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tbl := s.OpenTable("bench")
	if regions > 1 {
		var keys [][]byte
		for i := 1; i < regions; i++ {
			keys = append(keys, []byte(fmt.Sprintf("key-%08d", i*ingestRows/regions)))
		}
		if err := tbl.PreSplit(keys); err != nil {
			b.Fatal(err)
		}
	}
	shuffled := buildIngestRows()
	scratch := make([]KV, len(shuffled))
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if batched {
			// MultiPut sorts its input in place; hand it a fresh copy of the
			// shuffled order so every iteration pays the real sort.
			copy(scratch, shuffled)
			tbl.MultiPut(scratch)
		} else {
			for _, kv := range shuffled {
				tbl.Put(kv.Key, kv.Value)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ingestRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	if rc := tbl.RegionCount(); rc != regions {
		b.Fatalf("region count drifted: %d, want %d", rc, regions)
	}
}

// benchmarkSustainedIngest pushes a fixed multi-run volume (~64 MiB of
// ~1 KiB rows) through one table and reports the two numbers the tiered
// scheduler exists to move: write amplification (bytes compaction rewrote
// per byte flushed) and p99 batch-put latency (compaction stalls surface as
// tail latency on the write path). In-memory store: WAL fsync noise would
// drown the rewrite signal this benchmark isolates.
func benchmarkSustainedIngest(b *testing.B, monolithic bool) {
	const (
		rows      = 64 << 10 // x ~1 KiB values = ~64 MiB raw ingest
		batchSize = 256
	)
	var lats []time.Duration
	var writeAmp float64
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		opts := DefaultOptions()
		opts.RegionMaxBytes = 32 << 20
		opts.MemtableFlushBytes = 512 << 10
		opts.MonolithicCompaction = monolithic
		s := Open(opts)
		tbl, err := s.CreateTable("sustained")
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		val := make([]byte, 1024)
		rng.Read(val)
		batch := make([]KV, 0, batchSize)
		b.StartTimer()
		for i := 0; i < rows; i++ {
			batch = append(batch, KV{
				Key:   []byte(fmt.Sprintf("traj/%04d/%08d", rng.Intn(512), i)),
				Value: val,
			})
			if len(batch) == batchSize {
				t0 := time.Now()
				tbl.MultiPut(batch)
				lats = append(lats, time.Since(t0))
				batch = batch[:0]
			}
		}
		s.Quiesce()
		b.StopTimer()
		snap := s.Stats().Snapshot()
		if snap.BytesFlushed == 0 {
			b.Fatal("nothing flushed — thresholds too high for the workload")
		}
		// The workload is deterministic, so the ratio is identical every
		// iteration; latencies aggregate across iterations for a stable p99.
		writeAmp = float64(snap.BytesCompacted) / float64(snap.BytesFlushed)
		s.Close()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	b.ReportMetric(writeAmp, "write-amp")
	b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds()), "p99-batch-us")
	// The max batch is the one that paid a region split (t.mu held for the
	// materialize); it bounds the worst write stall either policy causes.
	b.ReportMetric(float64(lats[len(lats)-1].Microseconds())/1000, "max-batch-ms")
	b.ReportMetric(float64(rows)*1024*float64(b.N)/b.Elapsed().Seconds()/(1<<20), "MiB/s")
}

func BenchmarkSustainedIngestTiered(b *testing.B)     { benchmarkSustainedIngest(b, false) }
func BenchmarkSustainedIngestMonolithic(b *testing.B) { benchmarkSustainedIngest(b, true) }

func BenchmarkWriteSequential1Region(b *testing.B)   { benchmarkIngest(b, 1, false) }
func BenchmarkWriteSequential4Regions(b *testing.B)  { benchmarkIngest(b, 4, false) }
func BenchmarkWriteSequential16Regions(b *testing.B) { benchmarkIngest(b, 16, false) }
func BenchmarkWriteBatched1Region(b *testing.B)      { benchmarkIngest(b, 1, true) }
func BenchmarkWriteBatched4Regions(b *testing.B)     { benchmarkIngest(b, 4, true) }
func BenchmarkWriteBatched16Regions(b *testing.B)    { benchmarkIngest(b, 16, true) }
