package kvstore

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Tiered parallel compaction.
//
// The legacy policy merged every run into one whenever the run count crossed
// maxRuns, so a region ingesting N bytes rewrote O(N²/flushBytes) bytes over
// its lifetime. The tiered policy groups runs into power-of-two size tiers
// and merges a bounded fan-in of same-tier neighbours, leaving larger tiers
// untouched: each byte is rewritten once per tier it climbs, O(log(size))
// times total.
//
// Correctness invariants:
//
//   - Age order is the only shadowing mechanism (runs carry no sequence
//     numbers; newer runs simply sit later in region.runs), so a merge may
//     only combine an AGE-CONTIGUOUS window of runs. The merged output takes
//     the window's position, which preserves newest-shadows-oldest exactly.
//   - Tombstones drop only when the merge window includes runs[0]: a region
//     owns its whole key range, so nothing older than its oldest run can
//     resurface — but a tombstone merged anywhere above the bottom must keep
//     shadowing versions that still live below it.
//   - Large merges split by key range into sub-compactions. The fragments a
//     partitioned merge produces are key-disjoint and jointly equivalent to
//     the unpartitioned output, so they can all sit at the window's position
//     in any internal order. Fragments share a group id and the policy
//     treats consecutive same-group runs as ONE logical run, so a freshly
//     partitioned output is never immediately re-merged with itself.
//   - Counters stay a pure function of the write sequence: the policy
//     decides off run byte sizes (deterministic for a fixed workload), and
//     both the background path (maintainRuns, flushMu held) and the
//     foreground paths (maintainRunsLocked inside splits and CompactAll,
//     both locks held) charge one Compactions per merge window and one
//     SubCompactions per executed sub-range — whichever gets there first
//     produces identical totals, exactly as drainImmsLocked always promised
//     for Flushes.

// compactPolicy is the per-region compaction tuning, copied from Options at
// region construction so every run-set mutator sees one consistent policy.
type compactPolicy struct {
	fanIn      int  // same-tier runs merged per compaction (>= 2)
	subRanges  int  // max key-range partitions of one merge (>= 1)
	monolithic bool // legacy policy: merge all runs on every maxRuns crossing
}

// subCompactMinBytes is the smallest merge input worth partitioning: below
// this the fixed cost of extra cursors and fragment runs outweighs the
// parallelism.
const subCompactMinBytes = 4 << 20

// runGroupSeq issues fragment group ids. Ids only need to be unique while
// any run carrying them is alive; equality over consecutive runs is the only
// thing the policy reads, so the ids themselves need not be deterministic.
var runGroupSeq atomic.Uint64

// logicalRun is the policy's unit: a maximal window of consecutive runs
// sharing a nonzero group id (the fragments of one partitioned merge), or a
// single ungrouped run. [start, end) are physical indices into region.runs.
type logicalRun struct {
	start, end int
	bytes      int
}

// logicalRuns coalesces the physical run list into policy units, oldest
// first.
func logicalRuns(runs []*sortedRun) []logicalRun {
	ls := make([]logicalRun, 0, len(runs))
	for i := 0; i < len(runs); {
		j := i + 1
		b := runs[i].bytes
		if g := runs[i].group; g != 0 {
			for j < len(runs) && runs[j].group == g {
				b += runs[j].bytes
				j++
			}
		}
		ls = append(ls, logicalRun{start: i, end: j, bytes: b})
		i = j
	}
	return ls
}

// runTier buckets a logical run by power-of-two size: floor(log2(bytes))+1,
// with empty runs in tier 0.
func runTier(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return bits.Len(uint(bytes))
}

// pickCompaction chooses the next merge window over the physical run list,
// or ok=false when the region is at its policy fixpoint. Deterministic: a
// pure function of the run byte sizes and grouping.
//
// Preference order: (1) the smallest tier holding a streak of >= fanIn
// consecutive same-tier logical runs — merge the oldest fanIn of them;
// (2) when the logical run count still exceeds maxRuns, the adjacent pair
// with the smallest combined bytes (cheapest way to bound read
// amplification). Larger tiers are never touched just because small ones
// churn — that is the whole write-amplification win.
func pickCompaction(runs []*sortedRun, pol compactPolicy, maxRuns int) (lo, hi int, ok bool) {
	ls := logicalRuns(runs)
	if len(ls) < 2 {
		return 0, 0, false
	}
	bestTier, bestAt := -1, -1
	for i := 0; i < len(ls); {
		t := runTier(ls[i].bytes)
		j := i + 1
		for j < len(ls) && runTier(ls[j].bytes) == t {
			j++
		}
		if j-i >= pol.fanIn && (bestTier < 0 || t < bestTier) {
			bestTier, bestAt = t, i
		}
		i = j
	}
	if bestAt >= 0 {
		return ls[bestAt].start, ls[bestAt+pol.fanIn-1].end, true
	}
	if len(ls) > maxRuns {
		bi := 0
		bb := ls[0].bytes + ls[1].bytes
		for k := 1; k+1 < len(ls); k++ {
			if b := ls[k].bytes + ls[k+1].bytes; b < bb {
				bi, bb = k, b
			}
		}
		return ls[bi].start, ls[bi+1].end, true
	}
	return 0, 0, false
}

// subRangeBounds picks up to subRanges-1 ascending split keys partitioning a
// merge window into independent key ranges, or nil to run unpartitioned.
// Split points come from the largest input run — its sparse block index in
// block mode (free: the index is resident), its entry slice in legacy mode —
// so sub-ranges are roughly byte-balanced. A pure function of the window.
func subRangeBounds(group []*sortedRun, pol compactPolicy, inputBytes int64) [][]byte {
	if pol.subRanges <= 1 || inputBytes < subCompactMinBytes {
		return nil
	}
	big := group[0]
	for _, run := range group[1:] {
		if run.bytes > big.bytes {
			big = run
		}
	}
	var keys [][]byte
	pick := func(k []byte) {
		if len(keys) > 0 && string(keys[len(keys)-1]) >= string(k) {
			return // duplicate or non-ascending stride point: skip
		}
		keys = append(keys, k)
	}
	if big.br != nil {
		idx := big.br.index
		if len(idx) < 2 {
			return nil
		}
		for s := 1; s < pol.subRanges; s++ {
			if i := s * len(idx) / pol.subRanges; i > 0 {
				pick(idx[i].firstKey)
			}
		}
	} else {
		es := big.entries
		if len(es) < 2 {
			return nil
		}
		for s := 1; s < pol.subRanges; s++ {
			if i := s * len(es) / pol.subRanges; i > 0 {
				pick(es[i].key)
			}
		}
	}
	return keys
}

// compactGroup merges the age-contiguous window runs[lo:hi) into its
// replacement fragments (possibly empty when every surviving entry was a
// dropped tombstone). Tombstones drop only when the window includes runs[0].
// Large windows are partitioned by key range; with parallel set, sub-range
// merges run on the flusher's helper pool (the caller participates, so
// progress never depends on idle workers), otherwise they run inline —
// either way the fragments and every charged counter are identical.
//
// The caller must hold flushMu (freezing the run set); region.mu is not
// required: sub-merges read only the immutable snapshot.
func (r *region) compactGroup(runs []*sortedRun, lo, hi int, stats *Stats, parallel bool) []*sortedRun {
	group := runs[lo:hi]
	dropTombs := lo == 0
	var input int64
	for _, run := range group {
		input += int64(run.bytes)
	}
	// Side-band job record: wall-clock only, never feeds the deterministic
	// counters below, so charging stays a pure function of the write
	// sequence regardless of which path (background or foreground) merged.
	job := r.jobs.Begin("compact", r.tname, r.id)
	start := time.Now()
	bounds := subRangeBounds(group, r.cpol, input)

	var frags []*sortedRun
	if len(bounds) == 0 {
		if out := mergeRunWindow(r.bcfg, group, nil, nil, dropTombs); out.numEntries() > 0 {
			frags = []*sortedRun{out}
		}
	} else {
		outs := make([]*sortedRun, len(bounds)+1)
		tasks := make([]func(), len(outs))
		for s := range outs {
			s := s
			var blo, bhi []byte
			if s > 0 {
				blo = bounds[s-1]
			}
			if s < len(bounds) {
				bhi = bounds[s]
			}
			tasks[s] = func() {
				outs[s] = mergeRunWindow(r.bcfg, group, blo, bhi, dropTombs)
			}
		}
		if parallel && r.fl != nil {
			r.fl.runSubTasks(tasks)
		} else {
			for _, task := range tasks {
				task()
			}
		}
		for _, out := range outs {
			if out.numEntries() > 0 {
				frags = append(frags, out)
			}
		}
		if len(frags) > 1 {
			gid := runGroupSeq.Add(1)
			for _, f := range frags {
				f.group = gid
			}
		}
		stats.SubCompactions.Add(int64(len(tasks)))
	}
	stats.Compactions.Add(1)
	stats.BytesCompacted.Add(input)
	stats.CompactStallNanos.Add(time.Since(start).Nanoseconds())
	var output int64
	for _, f := range frags {
		output += int64(f.bytes)
	}
	job.AddBytesRead(input)
	job.AddBytesWritten(output)
	job.AddItems(int64(hi - lo))
	job.AddStall(time.Since(start))
	r.jobs.End(job)
	return frags
}

// spliceRuns replaces runs[lo:hi) with frags in a fresh slice.
func spliceRuns(runs []*sortedRun, lo, hi int, frags []*sortedRun) []*sortedRun {
	out := make([]*sortedRun, 0, lo+len(frags)+len(runs)-hi)
	out = append(out, runs[:lo]...)
	out = append(out, frags...)
	out = append(out, runs[hi:]...)
	return out
}

// maintainRuns drives the policy to its fixpoint after a background flush.
// Caller holds flushMu (not mu): the run set is frozen for every merge, so
// each swap under a brief mu critical section is exact, and readers keep
// scanning the pre-merge runs until the atomic splice.
func (r *region) maintainRuns(stats *Stats) {
	if r.cpol.monolithic {
		r.mu.RLock()
		over := len(r.runs) > r.maxRuns
		r.mu.RUnlock()
		if over {
			r.compactOutOfLine(stats)
		}
		return
	}
	for {
		r.mu.RLock()
		snap := append([]*sortedRun(nil), r.runs...)
		r.mu.RUnlock()
		lo, hi, ok := pickCompaction(snap, r.cpol, r.maxRuns)
		if !ok {
			return
		}
		frags := r.compactGroup(snap, lo, hi, stats, true)
		r.mu.Lock()
		r.runs = spliceRuns(r.runs, lo, hi, frags)
		r.mu.Unlock()
	}
}

// maintainRunsLocked is maintainRuns for callers already holding both
// flushMu and mu (splits, CompactAll): merges run inline on the caller, with
// counting identical to the background path.
func (r *region) maintainRunsLocked(stats *Stats) {
	if r.cpol.monolithic {
		if len(r.runs) > r.maxRuns {
			var input int64
			for _, run := range r.runs {
				input += int64(run.bytes)
			}
			job := r.jobs.Begin("compact", r.tname, r.id)
			nRuns := int64(len(r.runs))
			start := time.Now()
			r.runs = []*sortedRun{mergeRunSlice(r.bcfg, r.runs)}
			stats.Compactions.Add(1)
			stats.BytesCompacted.Add(input)
			stats.CompactStallNanos.Add(time.Since(start).Nanoseconds())
			job.AddBytesRead(input)
			job.AddBytesWritten(int64(r.runs[0].bytes))
			job.AddItems(nRuns)
			job.AddStall(time.Since(start))
			r.jobs.End(job)
		}
		return
	}
	for {
		lo, hi, ok := pickCompaction(r.runs, r.cpol, r.maxRuns)
		if !ok {
			return
		}
		frags := r.compactGroup(r.runs, lo, hi, stats, false)
		r.runs = spliceRuns(r.runs, lo, hi, frags)
	}
}
