package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.OpenTable("t")
	for i := 0; i < 500; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
	}
	for i := 0; i < 500; i += 3 {
		tbl.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the WAL alone.
	s2, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tbl2 := s2.Table("t")
	if tbl2 == nil {
		t.Fatal("recovered store lost table")
	}
	rows := tbl2.Scan(nil, nil, nil, 0)
	want := 0
	for i := 0; i < 500; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("recovered %d rows, want %d", len(rows), want)
	}
	if v, ok := tbl2.Get([]byte("k0001")); !ok || string(v) != "v0001" {
		t.Fatalf("Get k0001 = %q, %v", v, ok)
	}
	if _, ok := tbl2.Get([]byte("k0003")); ok {
		t.Error("deleted key survived recovery")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.OpenTable("t")
	for i := 0; i < 200; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 100))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	walInfo, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if walInfo.Size() != 0 {
		t.Errorf("WAL size after checkpoint = %d, want 0", walInfo.Size())
	}
	// More writes after the checkpoint land in the fresh WAL.
	tbl.Put([]byte("post-checkpoint"), []byte("x"))
	s.Close()

	s2, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rows := s2.Table("t").Scan(nil, nil, nil, 0)
	if len(rows) != 201 {
		t.Fatalf("recovered %d rows, want 201 (snapshot + post-checkpoint WAL)", len(rows))
	}
	if _, ok := s2.Table("t").Get([]byte("post-checkpoint")); !ok {
		t.Error("post-checkpoint write lost")
	}
}

func TestTornWALTailIsIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.OpenTable("t")
	for i := 0; i < 50; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("value"))
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the end of the log.
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatalf("recovery after torn tail failed: %v", err)
	}
	defer s2.Close()
	rows := s2.Table("t").Scan(nil, nil, nil, 0)
	if len(rows) != 49 {
		t.Fatalf("recovered %d rows, want 49 (last record torn)", len(rows))
	}
}

func TestCorruptWALRecordStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDir(dir, NoNetworkOptions())
	tbl := s.OpenTable("t")
	tbl.Put([]byte("a"), []byte("1"))
	tbl.Put([]byte("b"), []byte("2"))
	s.Close()

	// Flip a byte in the middle of the log (second record's payload).
	walPath := filepath.Join(dir, walFileName)
	data, _ := os.ReadFile(walPath)
	data[len(data)-2] ^= 0xFF
	os.WriteFile(walPath, data, 0o644)

	s2, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// First record must survive; the corrupted one is dropped.
	if _, ok := s2.Table("t").Get([]byte("a")); !ok {
		t.Error("record before corruption lost")
	}
	if _, ok := s2.Table("t").Get([]byte("b")); ok {
		t.Error("corrupted record should not replay")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDir(dir, NoNetworkOptions())
	s.OpenTable("t").Put([]byte("k"), []byte("v"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snapPath := filepath.Join(dir, snapFileName)
	data, _ := os.ReadFile(snapPath)
	data[10] ^= 0xFF
	os.WriteFile(snapPath, data, 0o644)

	if _, err := OpenDir(dir, NoNetworkOptions()); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestCheckpointRequiresDurableStore(t *testing.T) {
	s := Open(NoNetworkOptions())
	if err := s.Checkpoint(); err == nil {
		t.Error("in-memory store accepted Checkpoint")
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on in-memory store should be a no-op, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on in-memory store should be a no-op, got %v", err)
	}
}

func TestDurableSurvivesManyTables(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDir(dir, NoNetworkOptions())
	for i := 0; i < 5; i++ {
		tbl := s.OpenTable(fmt.Sprintf("table-%d", i))
		for j := 0; j < 50; j++ {
			tbl.Put([]byte(fmt.Sprintf("k%03d", j)), []byte(fmt.Sprintf("t%d-%d", i, j)))
		}
	}
	s.Checkpoint()
	s.OpenTable("table-0").Put([]byte("extra"), []byte("1"))
	s.Close()

	s2, err := OpenDir(dir, NoNetworkOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 5; i++ {
		rows := s2.Table(fmt.Sprintf("table-%d", i)).Scan(nil, nil, nil, 0)
		want := 50
		if i == 0 {
			want = 51
		}
		if len(rows) != want {
			t.Errorf("table-%d recovered %d rows, want %d", i, len(rows), want)
		}
	}
}
