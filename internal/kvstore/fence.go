package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/tman-db/tman/internal/compress"
)

// Block fences: zone-map style per-block summaries (min/max timestamp plus
// a lat/lon bounding box in normalized space) computed at encode time and
// kept resident next to the sparse index. A FenceFilter consults them to
// classify whole blocks before any cache lookup or decode:
//
//	Skip       no row in the block can pass Accept — the block is never
//	           fetched and the cost model charges only the fence bytes
//	AcceptAll  every row in the block passes Accept — the block is decoded
//	           (merge/dedup still needs the rows) but per-row Accept calls
//	           are skipped
//	Inspect    no conclusion — today's behavior, row-by-row Accept
//
// Fences are advisory metadata, never a correctness dependency: a missing,
// truncated, tampered or otherwise unparseable fence blob degrades the run
// to Inspect for every block. Soundness of Skip additionally depends on
// shadowing (a skipped block must not un-hide older versions of its keys),
// which the region scan enforces by honoring Skip only on the oldest runs;
// see region.scan.

// Fence is the zone-map summary of one block: the closed time interval
// covering every row's time range and the bounding box (normalized
// coordinates) covering every row's DP-Features MBR.
type Fence struct {
	MinT, MaxT int64
	MinX, MinY float64
	MaxX, MaxY float64
}

// BlockVerdict is a FenceFilter's tri-state classification of a block.
type BlockVerdict uint8

const (
	// VerdictInspect draws no conclusion: the block is decoded and every
	// row goes through Accept. The zero value, and the fail-safe default.
	VerdictInspect BlockVerdict = iota
	// VerdictSkip asserts no row in the block can pass Accept.
	VerdictSkip
	// VerdictAcceptAll asserts every row in the block passes Accept.
	VerdictAcceptAll
)

// FenceFilter is a Filter that can additionally classify whole blocks from
// their fence. FenceVerdict must be consistent with Accept: Skip only when
// Accept would return false for every possible row summarized by the fence,
// AcceptAll only when Accept would return true for every such row. Like
// Accept, it must be safe for concurrent use.
type FenceFilter interface {
	Filter
	FenceVerdict(Fence) BlockVerdict
}

// FenceExtractor derives the fence summary of one row at encode time.
// Returning ok=false marks the enclosing block unfenced (always Inspect):
// the fail-safe for rows the extractor cannot parse.
type FenceExtractor func(key, value []byte) (Fence, bool)

// blockFence is a decoded per-block fence. invalid fences (tombstone-bearing
// blocks, extractor failures, undecodable blobs) always verdict Inspect.
type blockFence struct {
	f     Fence
	valid bool
}

// union widens the fence to cover o.
func (f *Fence) union(o Fence) {
	if o.MinT < f.MinT {
		f.MinT = o.MinT
	}
	if o.MaxT > f.MaxT {
		f.MaxT = o.MaxT
	}
	f.MinX = math.Min(f.MinX, o.MinX)
	f.MinY = math.Min(f.MinY, o.MinY)
	f.MaxX = math.Max(f.MaxX, o.MaxX)
	f.MaxY = math.Max(f.MaxY, o.MaxY)
}

// ErrFenceCorrupt is returned by decodeFences for any structurally invalid
// or checksum-failing fence blob. Callers treat it as "no fences", never as
// a read failure.
var ErrFenceCorrupt = errors.New("kvstore: corrupt fence blob")

const fenceFormatV1 = 1

func corruptFence(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFenceCorrupt, fmt.Sprintf(format, args...))
}

// Fence blob layout (checksummed like a block, resident like the index):
//
//	u32     crc32c over everything after it
//	u8      format version (fenceFormatV1)
//	uvarint block count
//	per block:
//	  u8    validity flag (0 = unfenced block)
//	  varint  MinT (signed)
//	  uvarint MaxT - MinT
//	  4 × u64 little-endian Float64bits: MinX, MinY, MaxX, MaxY
//
// Invalid blocks carry only the flag byte.

// encodeFences serializes per-block fences into a checksummed blob.
func encodeFences(fences []blockFence) []byte {
	out := make([]byte, 4, 4+1+binary.MaxVarintLen64+len(fences)*(1+2*binary.MaxVarintLen64+32))
	out = append(out, fenceFormatV1)
	out = compress.AppendUvarint(out, uint64(len(fences)))
	for i := range fences {
		if !fences[i].valid {
			out = append(out, 0)
			continue
		}
		f := fences[i].f
		out = append(out, 1)
		out = binary.AppendVarint(out, f.MinT)
		out = compress.AppendUvarint(out, uint64(f.MaxT-f.MinT))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.MinX))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.MinY))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.MaxX))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f.MaxY))
	}
	binary.LittleEndian.PutUint32(out[:4], crc32.Checksum(out[4:], crcTable))
	return out
}

// decodeFences validates and parses a fence blob. Every structural
// violation — bad checksum, truncation at any offset, implausible counts,
// non-finite or inverted bounds — returns ErrFenceCorrupt: a fence that
// fails here is dropped, and its run degrades to Inspect.
func decodeFences(blob []byte) ([]blockFence, error) {
	if len(blob) < 6 {
		return nil, corruptFence("short blob: %d bytes", len(blob))
	}
	if got, want := crc32.Checksum(blob[4:], crcTable), binary.LittleEndian.Uint32(blob[:4]); got != want {
		return nil, corruptFence("checksum mismatch: got %08x want %08x", got, want)
	}
	if blob[4] != fenceFormatV1 {
		return nil, corruptFence("unknown format %d", blob[4])
	}
	p := blob[5:]
	count64, n := compress.Uvarint(p)
	if n <= 0 {
		return nil, corruptFence("truncated block count")
	}
	p = p[n:]
	count := int(count64)
	// Every fence costs at least its flag byte, so the payload bounds count.
	if count < 0 || count > len(p) {
		return nil, corruptFence("implausible block count %d", count)
	}
	fences := make([]blockFence, count)
	for i := 0; i < count; i++ {
		if len(p) == 0 {
			return nil, corruptFence("truncated flag at fence %d", i)
		}
		flag := p[0]
		p = p[1:]
		if flag == 0 {
			continue
		}
		if flag != 1 {
			return nil, corruptFence("bad flag %d at fence %d", flag, i)
		}
		minT, n := binary.Varint(p)
		if n <= 0 {
			return nil, corruptFence("truncated MinT at fence %d", i)
		}
		p = p[n:]
		span, n := compress.Uvarint(p)
		if n <= 0 {
			return nil, corruptFence("truncated time span at fence %d", i)
		}
		p = p[n:]
		maxT := minT + int64(span)
		if maxT < minT {
			return nil, corruptFence("time span overflow at fence %d", i)
		}
		if len(p) < 32 {
			return nil, corruptFence("truncated bbox at fence %d", i)
		}
		f := Fence{
			MinT: minT,
			MaxT: maxT,
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(p[0:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
		}
		p = p[32:]
		// Non-finite or inverted bounds would make disjointness tests lie
		// (NaN compares false), turning a corrupt fence into a wrong Skip.
		if !finite(f.MinX) || !finite(f.MinY) || !finite(f.MaxX) || !finite(f.MaxY) {
			return nil, corruptFence("non-finite bbox at fence %d", i)
		}
		if f.MinX > f.MaxX || f.MinY > f.MaxY {
			return nil, corruptFence("inverted bbox at fence %d", i)
		}
		fences[i] = blockFence{f: f, valid: true}
	}
	if len(p) != 0 {
		return nil, corruptFence("%d trailing bytes", len(p))
	}
	return fences, nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
