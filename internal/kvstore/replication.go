package kvstore

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"time"
)

// Replication: with Options.Replicas > 1 every region is a replication
// group — one leader plus N-1 followers placed on distinct simulated nodes.
// Followers are kept in sync by shipping the same CRC-framed record bodies
// the WAL writes (op 1/2/3, group-commit batches included), wrapped in a
// ship frame that adds an epoch and a dense per-group sequence number:
//
//	u32 crc   (castagnoli, over everything after this field)
//	u64 epoch (promotion generation; fences stale leaders)
//	u64 seq   (dense per-group commit sequence)
//	payload   (a WAL record body: u8 op | u16 tableLen|table | ...)
//
// Shipping is synchronous under the group lock: a write is acknowledged only
// after every live follower applied its frame, so an acked write survives
// any single leader loss while at least one follower is up — the no-acked-
// write-loss invariant the chaos suite asserts. Followers verify CRC, epoch
// and sequence on every frame: corrupt frames and stale-epoch frames are
// rejected (the follower is marked down for catch-up), duplicates are
// ignored idempotently, and a gap forces catch-up before new frames apply.
//
// Catch-up has two gears, as in log-tail replication designs: a follower
// whose last applied sequence still falls inside the leader's retained frame
// tail replays just the missing tail; one that fell off the tail (or a brand
// new replica) is rebuilt from a leader snapshot (live rows, one sorted run)
// and resumes at the leader's current sequence.
//
// Failover: when a node is killed (Store.KillNode — the PR 1 fault model's
// hard version of a dead region server), every group led there promotes its
// best live follower — highest applied sequence, lowest node id as the
// deterministic tie-break — by swapping LSM state with the leader region
// object in place, so table routing never changes. Promotion bumps the
// group epoch; the demoted copy survives as a down follower and, because
// every post-promotion frame carries the new epoch, a stale leader's
// unshipped state can never be mistaken for committed data when the node
// revives — it is caught back up from the new leader instead.
//
// Lock order: replGroup.mu → region.flushMu → region.mu (leader before
// follower regions). Follower regions never have a rep group of their own,
// so applying a frame to one cannot re-enter the ship path.

// Replication errors. ErrNodeDead is retryable (the client retries and the
// scan path re-resolves a serving replica between attempts); the ship-stream
// errors are verdicts on a single frame, surfaced by tests and catch-up.
var (
	// ErrNodeDead is returned by client RPC attempts against a region whose
	// serving node was killed. Retryable: a retry may land after failover.
	ErrNodeDead = errors.New("kvstore: node dead")
	// ErrShipCorrupt means a shipped frame failed CRC or length validation.
	ErrShipCorrupt = errors.New("kvstore: corrupt replication frame")
	// ErrShipStaleEpoch means a frame carried an older epoch than the
	// follower has seen — a fenced stale leader.
	ErrShipStaleEpoch = errors.New("kvstore: stale replication epoch")
	// ErrShipGap means a frame skipped sequence numbers; the follower must
	// catch up before applying it.
	ErrShipGap = errors.New("kvstore: replication sequence gap")
)

// ReadPref lets a query opt into follower reads with a staleness bound.
type ReadPref struct {
	// MaxStalenessMS is the largest tolerable follower lag in milliseconds.
	// 0 accepts only fully caught-up followers; negative disables follower
	// reads (leader only).
	MaxStalenessMS int64
}

type readPrefKey struct{}

// WithReadPref attaches a follower-read preference to ctx. Scans under this
// context may be served by any follower whose replication lag is within the
// bound; writes and point gets always go to the leader.
func WithReadPref(ctx context.Context, p ReadPref) context.Context {
	return context.WithValue(ctx, readPrefKey{}, p)
}

// ReadPrefFrom extracts a follower-read preference, if any.
func ReadPrefFrom(ctx context.Context) (ReadPref, bool) {
	p, ok := ctx.Value(readPrefKey{}).(ReadPref)
	return p, ok
}

// shipEntry is one retained frame of the leader's log tail.
type shipEntry struct {
	seq         int64
	commitNanos int64 // wall-clock commit time; drives the lag/staleness bound
	frame       []byte
}

// follower is one replica of a group. All fields are guarded by the group
// mutex; reg itself has its own locks and rep == nil.
type follower struct {
	reg  *region
	node int
	// epoch/seq are the newest frame the follower accepted.
	epoch int64
	seq   int64
	// appliedCommitNanos is the commit time of the last applied frame — the
	// basis of the staleness bound (data is at least as fresh as this).
	appliedCommitNanos int64
	// down marks a follower that stopped applying frames (dead node,
	// rejected frame, demoted stale leader). Down followers are skipped by
	// shipping and reads until catch-up revives them.
	down bool
	// stale marks a copy whose local state diverged from committed history
	// (a demoted leader with unshipped writes): catch-up must rebuild it
	// from a snapshot, never replay the tail on top of it.
	stale bool
}

// replGroup is the replication state of one leader region.
type replGroup struct {
	store  *Store
	leader *region

	// mu orders every ship, catch-up, promotion and follower-pick against
	// each other. It is taken before any region lock (see the lock order
	// note above) and never held during a leader scan serving a client.
	mu sync.Mutex

	epoch           int64
	seq             int64
	lastCommitNanos int64
	followers       []*follower
	tail            []shipEntry // dense seq window, oldest first
	tailMax         int
	rr              int // round-robin rotation for follower picks
}

func (g *replGroup) lock()   { g.mu.Lock() }
func (g *replGroup) unlock() { g.mu.Unlock() }

// encodeShipFrame wraps one WAL record payload with epoch, sequence and CRC.
func encodeShipFrame(epoch, seq int64, payload []byte) []byte {
	out := make([]byte, shipHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(out[4:12], uint64(epoch))
	binary.LittleEndian.PutUint64(out[12:20], uint64(seq))
	copy(out[shipHeaderLen:], payload)
	binary.LittleEndian.PutUint32(out[:4], crc32.Checksum(out[4:], crcTable))
	return out
}

const shipHeaderLen = 4 + 8 + 8

// decodeShipFrame validates CRC and structure, returning the frame's epoch,
// sequence and decoded WAL record. Any truncation, bit flip, or implausible
// length yields ErrShipCorrupt without large allocations.
func decodeShipFrame(frame []byte) (epoch, seq int64, rec walRecord, err error) {
	if len(frame) < shipHeaderLen+1 {
		return 0, 0, rec, ErrShipCorrupt
	}
	if crc32.Checksum(frame[4:], crcTable) != binary.LittleEndian.Uint32(frame[:4]) {
		return 0, 0, rec, ErrShipCorrupt
	}
	epoch = int64(binary.LittleEndian.Uint64(frame[4:12]))
	seq = int64(binary.LittleEndian.Uint64(frame[12:20]))
	rec, err = decodeWALRecord(frame[shipHeaderLen:])
	if err != nil {
		return 0, 0, rec, err
	}
	return epoch, seq, rec, nil
}

// decodeWALRecord parses one in-memory WAL record body with the same length
// discipline as replayWAL: every declared length is bounded by the bytes
// actually present, and trailing garbage is corruption.
func decodeWALRecord(b []byte) (walRecord, error) {
	var rec walRecord
	p := 0
	take := func(n int) ([]byte, bool) {
		if n < 0 || p+n > len(b) {
			return nil, false
		}
		s := b[p : p+n]
		p += n
		return s, true
	}
	op, ok := take(1)
	if !ok {
		return rec, ErrShipCorrupt
	}
	rec.op = op[0]
	tl, ok := take(2)
	if !ok {
		return rec, ErrShipCorrupt
	}
	table, ok := take(int(binary.LittleEndian.Uint16(tl)))
	if !ok {
		return rec, ErrShipCorrupt
	}
	rec.table = string(table)
	readLen := func() (int, bool) {
		l, ok := take(4)
		if !ok {
			return 0, false
		}
		return int(binary.LittleEndian.Uint32(l)), true
	}
	switch rec.op {
	case opBatch:
		count, ok := readLen()
		if !ok {
			return rec, ErrShipCorrupt
		}
		// Every row needs at least its two length prefixes.
		if count < 0 || count > (len(b)-p)/8 {
			return rec, ErrShipCorrupt
		}
		rec.rows = make([]KV, 0, count)
		for i := 0; i < count; i++ {
			kl, ok := readLen()
			if !ok {
				return rec, ErrShipCorrupt
			}
			key, ok := take(kl)
			if !ok {
				return rec, ErrShipCorrupt
			}
			vl, ok := readLen()
			if !ok {
				return rec, ErrShipCorrupt
			}
			val, ok := take(vl)
			if !ok {
				return rec, ErrShipCorrupt
			}
			rec.rows = append(rec.rows, KV{Key: key, Value: val})
		}
	case opPut:
		kl, ok := readLen()
		if !ok {
			return rec, ErrShipCorrupt
		}
		if rec.key, ok = take(kl); !ok {
			return rec, ErrShipCorrupt
		}
		vl, ok := readLen()
		if !ok {
			return rec, ErrShipCorrupt
		}
		if rec.value, ok = take(vl); !ok {
			return rec, ErrShipCorrupt
		}
	case opDelete:
		kl, ok := readLen()
		if !ok {
			return rec, ErrShipCorrupt
		}
		if rec.key, ok = take(kl); !ok {
			return rec, ErrShipCorrupt
		}
	default:
		return rec, ErrShipCorrupt
	}
	if p != len(b) {
		return rec, ErrShipCorrupt
	}
	return rec, nil
}

// appendBatchPayload encodes the op=3 group-commit record body onto dst —
// shared by the WAL writer and the shipping path so followers replay the
// exact record format durability uses.
func appendBatchPayload(dst []byte, table string, rows []KV) []byte {
	dst = append(dst, opBatch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(table)))
	dst = append(dst, table...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	for i := range rows {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows[i].Key)))
		dst = append(dst, rows[i].Key...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows[i].Value)))
		dst = append(dst, rows[i].Value...)
	}
	return dst
}

// shipLocked commits one mutation to the group: assigns the next sequence,
// frames the payload, retains it on the tail, and applies it to every live
// follower before the write is acknowledged. Caller holds g.mu (and made the
// leader-local mutation under the same critical section, so leader apply and
// ship order agree across writers).
func (g *replGroup) shipLocked(op byte, key, value []byte, rows []KV) {
	var payload []byte
	if op == opBatch {
		payload = appendBatchPayload(nil, "", rows)
	} else {
		payload = encodeWALPayload(op, "", key, value)
	}
	g.seq++
	now := time.Now().UnixNano()
	g.lastCommitNanos = now
	frame := encodeShipFrame(g.epoch, g.seq, payload)
	g.tail = append(g.tail, shipEntry{seq: g.seq, commitNanos: now, frame: frame})
	if len(g.tail) > g.tailMax {
		// Copy down so dropped frames are actually released.
		keep := g.tail[len(g.tail)-g.tailMax:]
		g.tail = append(g.tail[:0:0], keep...)
	}
	g.store.stats.ShipFrames.Add(1)
	for _, f := range g.followers {
		if f.down {
			continue
		}
		if err := f.applyFrame(frame, now); err != nil {
			// A live follower rejecting a fresh frame means its state
			// diverged (test-injected corruption, demoted stale copy):
			// take it out of rotation until catch-up.
			f.down = true
			g.store.stats.ShipRejects.Add(1)
		}
	}
}

// applyFrame validates and applies one shipped frame. Caller holds the group
// mutex (or owns the follower exclusively, as the torn-stream tests do).
// Duplicate delivery is idempotent; stale epochs and gaps are rejected.
func (f *follower) applyFrame(frame []byte, commitNanos int64) error {
	epoch, seq, rec, err := decodeShipFrame(frame)
	if err != nil {
		return err
	}
	if epoch < f.epoch {
		return ErrShipStaleEpoch
	}
	if epoch == f.epoch && seq <= f.seq {
		return nil // duplicate delivery: already applied
	}
	if epoch == f.epoch && seq != f.seq+1 {
		return ErrShipGap
	}
	switch rec.op {
	case opPut:
		f.reg.put(rec.key, rec.value)
	case opDelete:
		f.reg.delete(rec.key)
	case opBatch:
		f.reg.putBatch(rec.rows)
	}
	f.epoch = epoch
	f.seq = seq
	f.appliedCommitNanos = commitNanos
	return nil
}

// lagMS is the follower's staleness in milliseconds at wall-clock time
// nowNanos: zero when fully caught up, otherwise the age of its last applied
// commit. Caller holds the group mutex.
func (g *replGroup) lagMS(f *follower, nowNanos int64) int64 {
	if f.seq >= g.seq {
		return 0
	}
	lag := (nowNanos - f.appliedCommitNanos) / int64(time.Millisecond)
	if lag < 0 {
		lag = 0
	}
	return lag
}

// pickFollower chooses a follower able to serve a read under the staleness
// bound, or nil to keep the read on the leader. Selection prefers the
// fastest serving node (slow-node multipliers route reads away from slow
// replicas) and rotates among ties so read traffic spreads with replica
// count.
func (g *replGroup) pickFollower(maxStalenessMS int64) *follower {
	if maxStalenessMS < 0 {
		return nil
	}
	now := time.Now().UnixNano()
	g.lock()
	defer g.unlock()
	var cands []*follower
	bestScale := 0.0
	for _, f := range g.followers {
		if f.down || !g.store.nodeAlive(f.node) {
			continue
		}
		if g.lagMS(f, now) > maxStalenessMS {
			continue
		}
		scale := g.store.injector.latencyScale(f.node)
		if cands == nil || scale < bestScale {
			cands = cands[:0]
			bestScale = scale
		}
		if scale == bestScale {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	g.rr++
	return cands[g.rr%len(cands)]
}

// catchUpLocked brings one follower back in sync: a tail replay when its
// last applied frame still falls inside the retained tail, otherwise a full
// snapshot rebuild from the leader's live rows. Caller holds g.mu.
func (g *replGroup) catchUpLocked(f *follower) {
	if f.stale {
		g.snapshotCatchUpLocked(f)
		return
	}
	if f.seq >= g.seq && f.epoch == g.epoch {
		return
	}
	if f.epoch == g.epoch && len(g.tail) > 0 && f.seq+1 >= g.tail[0].seq {
		job := g.store.jobs.Begin("catchup", g.leader.tname, g.leader.id)
		for _, e := range g.tail {
			if e.seq <= f.seq {
				continue
			}
			if err := f.applyFrame(e.frame, e.commitNanos); err != nil {
				g.store.jobs.End(job)
				g.snapshotCatchUpLocked(f)
				return
			}
			job.AddBytesRead(int64(len(e.frame)))
			job.AddItems(1)
		}
		g.store.stats.CatchupTail.Add(1)
		g.store.jobs.End(job)
		return
	}
	g.snapshotCatchUpLocked(f)
}

// snapshotCatchUpLocked rebuilds a follower from the leader's current live
// rows as one sorted run — the bulk gear of catch-up, used when the tail no
// longer reaches back far enough (or after a demotion, when the follower's
// own state cannot be trusted). Caller holds g.mu.
func (g *replGroup) snapshotCatchUpLocked(f *follower) {
	job := g.store.jobs.Begin("catchup", g.leader.tname, g.leader.id)
	defer g.store.jobs.End(job)
	rows, _, _ := g.leader.scan(nil, nil, nil, 0, nil, nil, nil)
	entries := make([]entry, len(rows))
	rawBytes := 0
	for i, kv := range rows {
		entries[i] = entry{key: kv.Key, value: kv.Value}
		rawBytes += len(kv.Key) + len(kv.Value)
	}
	job.AddBytesRead(int64(rawBytes))
	job.AddItems(int64(len(entries)))
	fr := f.reg
	fr.flushMu.Lock()
	fr.mu.Lock()
	fr.mem = newSkiplist(nextSkiplistSeed())
	fr.imm = nil
	if len(entries) > 0 {
		// In block mode the snapshot crosses the wire as the encoded run —
		// compressed blocks plus index and filter — not as decoded rows;
		// CatchupShipBytes records the transferred volume in either format.
		run := newRunFromEntries(fr.bcfg, entries, rawBytes)
		fr.runs = []*sortedRun{run}
		g.store.stats.CatchupShipBytes.Add(int64(run.residentBytes()))
		job.AddBytesWritten(int64(run.residentBytes()))
	} else {
		fr.runs = nil
	}
	fr.writeBytes.Store(entriesCharge(entries))
	fr.mu.Unlock()
	fr.flushMu.Unlock()
	f.epoch = g.epoch
	f.seq = g.seq
	f.appliedCommitNanos = g.lastCommitNanos
	f.stale = false
	g.store.stats.CatchupSnapshots.Add(1)
}

// failoverLocked promotes the best live follower after the leader's node
// died: highest applied sequence wins, lowest node id breaks ties, so every
// replica of the cluster makes the same choice. The promotion swaps LSM
// state between the leader region object and the follower's region, keeping
// table routing untouched, bumps the epoch to fence the stale copy, and
// leaves the demoted copy as a down follower for later catch-up. Returns
// false when no live follower exists (the region stays down until revival).
// Caller holds g.mu.
func (g *replGroup) failoverLocked() bool {
	var best *follower
	for _, f := range g.followers {
		if f.down || !g.store.nodeAlive(f.node) {
			continue
		}
		if best == nil || f.seq > best.seq || (f.seq == best.seq && f.node < best.node) {
			best = f
		}
	}
	if best == nil {
		return false
	}
	r, fr := g.leader, best.reg
	job := g.store.jobs.Begin("failover", r.tname, r.id)
	defer g.store.jobs.End(job)
	r.flushMu.Lock()
	r.mu.Lock()
	fr.flushMu.Lock()
	fr.mu.Lock()
	r.mem, fr.mem = fr.mem, r.mem
	r.imm, fr.imm = fr.imm, r.imm
	r.runs, fr.runs = fr.runs, r.runs
	rwb, fwb := r.writeBytes.Load(), fr.writeBytes.Load()
	r.writeBytes.Store(fwb)
	fr.writeBytes.Store(rwb)
	oldNode := int(r.node.Swap(int64(best.node)))
	fr.node.Store(int64(oldNode))
	fr.mu.Unlock()
	fr.flushMu.Unlock()
	r.mu.Unlock()
	r.flushMu.Unlock()
	// The promoted copy may trail the acked sequence only if every fresher
	// follower was also down — impossible while one follower stays live, the
	// invariant the chaos suite leans on. Adopt its sequence as the group's:
	// frames above it exist on no live replica.
	g.seq = best.seq
	g.epoch++
	// Retained frames carry the old epoch and may outrun the adopted
	// sequence; drop them so catch-up never replays fenced history.
	g.tail = nil
	best.node = oldNode
	best.seq = 0
	best.epoch = g.epoch
	best.down = true // demoted copy on the dead node
	best.stale = true
	// The swapped-in state may carry sealed memtables; let the background
	// flusher pick both regions up.
	if r.fl != nil {
		r.fl.enqueue(r)
	}
	if fr.fl != nil {
		fr.fl.enqueue(fr)
	}
	g.store.stats.Failovers.Add(1)
	return true
}

// replicaHealth is one group's health summary for ReplicaStats.
func (g *replGroup) health(nowNanos int64) (followers, down int, maxLagMS int64) {
	g.lock()
	defer g.unlock()
	for _, f := range g.followers {
		followers++
		if f.down {
			down++
			continue
		}
		if lag := g.lagMS(f, nowNanos); lag > maxLagMS {
			maxLagMS = lag
		}
	}
	return
}

// initReplication attaches a replication group to a freshly created leader
// region, placing followers on the next nodes round the ring and seeding
// them from the leader's current runs (split children hand their half to
// followers this way). No-op unless Options.Replicas > 1.
func (s *Store) initReplication(r *region) {
	rf := s.opts.Replicas
	if rf <= 1 {
		return
	}
	g := &replGroup{store: s, leader: r, tailMax: s.opts.ReplicaTailFrames}
	leaderNode := int(r.node.Load())
	r.mu.RLock()
	seedRuns := append([]*sortedRun(nil), r.runs...)
	seedBytes := r.writeBytes.Load()
	bcfg := r.bcfg // followers build runs exactly like their leader
	r.mu.RUnlock()
	now := time.Now().UnixNano()
	for i := 1; i < rf; i++ {
		node := (leaderNode + i) % s.opts.Nodes
		fr := newRegion(s.nextRegionID(), r.startKey, r.endKey, node, r.flushBytes, r.maxRuns, r.cpol, s.fl, bcfg)
		fr.tname, fr.jobs = r.tname, r.jobs
		fr.runs = append([]*sortedRun(nil), seedRuns...)
		fr.writeBytes.Store(seedBytes)
		g.followers = append(g.followers, &follower{
			reg:                fr,
			node:               node,
			appliedCommitNanos: now,
			down:               !s.nodeAlive(node),
		})
	}
	r.rep = g
	// A region can be born onto a dead node (a split while the rotation's
	// next node is down, or a leader killed between newRegion and here):
	// promote a live follower immediately so the region never starts dark.
	if !s.nodeAlive(leaderNode) {
		g.lock()
		g.failoverLocked()
		g.unlock()
	}
}

// setFollowerBlockConfig propagates a table-level block-config change (a
// fence extractor installed after open) to r's replication followers, so
// follower flushes and snapshot-catch-up rebuilds produce the same fenced
// runs as the leader. No-op for unreplicated regions.
func (s *Store) setFollowerBlockConfig(r *region, bcfg *blockConfig) {
	g := r.rep
	if g == nil {
		return
	}
	g.lock()
	defer g.unlock()
	for _, f := range g.followers {
		f.reg.mu.Lock()
		f.reg.bcfg = bcfg
		f.reg.mu.Unlock()
	}
}

// KillNode marks a simulated node dead: client RPCs against regions it
// serves fail with ErrNodeDead, its followers stop receiving frames, and
// every replication group led there immediately promotes a live follower
// (deterministically) with an epoch bump. Regions without replicas stay
// routed to the dead node and keep failing until ReviveNode.
func (s *Store) KillNode(node int) {
	s.nodeMu.Lock()
	if s.deadNodes == nil {
		s.deadNodes = make(map[int]bool)
	}
	s.deadNodes[node] = true
	s.anyDead.Store(true)
	s.nodeMu.Unlock()
	for _, t := range s.tablesSnapshot() {
		for _, r := range t.regionSnapshot() {
			g := r.rep
			if g == nil {
				continue
			}
			g.lock()
			for _, f := range g.followers {
				if f.node == node {
					f.down = true
				}
			}
			if int(r.node.Load()) == node {
				g.failoverLocked()
			}
			g.unlock()
		}
	}
}

// ReviveNode brings a killed node back: RPCs succeed again and every down
// follower hosted there is caught up (tail replay or snapshot) and rejoins
// its group. A revived stale leader comes back as a follower — its group
// moved on under a higher epoch — so its unshipped writes are discarded by
// the snapshot rebuild, exactly the fencing guarantee.
func (s *Store) ReviveNode(node int) {
	s.nodeMu.Lock()
	if s.deadNodes != nil {
		delete(s.deadNodes, node)
		if len(s.deadNodes) == 0 {
			s.anyDead.Store(false)
		}
	}
	s.nodeMu.Unlock()
	for _, t := range s.tablesSnapshot() {
		for _, r := range t.regionSnapshot() {
			g := r.rep
			if g == nil {
				continue
			}
			g.lock()
			for _, f := range g.followers {
				if f.node == node && f.down {
					g.catchUpLocked(f)
					f.down = false
				}
			}
			g.unlock()
		}
	}
}

// nodeAlive reports whether a simulated node is serving. The fast path is a
// single atomic load so the per-RPC cost is nil until the first KillNode.
func (s *Store) nodeAlive(node int) bool {
	if !s.anyDead.Load() {
		return true
	}
	s.nodeMu.RLock()
	dead := s.deadNodes[node]
	s.nodeMu.RUnlock()
	return !dead
}

// ReplicaStats summarizes replication health across every group.
type ReplicaStats struct {
	// Groups is the number of replicated regions (leaders with followers).
	Groups int
	// Followers and Down count replicas across all groups.
	Followers int
	Down      int
	// MaxLagMS is the worst live-follower staleness observed at call time.
	MaxLagMS int64
}

// ReplicaStats scans every replication group for the health gauges exported
// through /metrics and /stats.
func (s *Store) ReplicaStats() ReplicaStats {
	var rs ReplicaStats
	now := time.Now().UnixNano()
	for _, t := range s.tablesSnapshot() {
		for _, r := range t.regionSnapshot() {
			g := r.rep
			if g == nil {
				continue
			}
			rs.Groups++
			followers, down, lag := g.health(now)
			rs.Followers += followers
			rs.Down += down
			if lag > rs.MaxLagMS {
				rs.MaxLagMS = lag
			}
		}
	}
	return rs
}

// Replicas returns the configured copies per region (1 = unreplicated).
func (s *Store) Replicas() int {
	if s.opts.Replicas < 1 {
		return 1
	}
	return s.opts.Replicas
}

// tablesSnapshot copies the table list out from under the store lock.
func (s *Store) tablesSnapshot() []*Table {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	return tables
}

// regionSnapshot copies the region list out from under the table lock.
func (t *Table) regionSnapshot() []*region {
	t.mu.RLock()
	regs := append([]*region(nil), t.regions...)
	t.mu.RUnlock()
	return regs
}
