package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// region is one contiguous key range of a table: [startKey, endKey), where a
// nil startKey means -inf and a nil endKey means +inf. Each region is a tiny
// LSM tree owned by a simulated node.
type region struct {
	mu       sync.RWMutex
	startKey []byte // inclusive; nil = -inf
	endKey   []byte // exclusive; nil = +inf
	mem      *skiplist
	runs     []*sortedRun // oldest first: flushes append, so the newest run is last
	node     int          // owning node id
	id       int64        // store-unique id, stable for a deterministic load order

	flushBytes int
	maxRuns    int

	// Fault-model state: unavail counts down client RPC attempts that fail
	// with ErrRegionUnavailable (post-split/compaction window); faultSeq
	// numbers this region's RPC attempts so injected faults are a pure
	// function of (seed, region id, attempt).
	unavail  atomic.Int64
	faultSeq atomic.Int64
}

func newRegion(id int64, start, end []byte, node, flushBytes, maxRuns int) *region {
	return &region{
		id:         id,
		startKey:   start,
		endKey:     end,
		mem:        newSkiplist(nextSkiplistSeed()),
		node:       node,
		flushBytes: flushBytes,
		maxRuns:    maxRuns,
	}
}

// takeUnavailable consumes one RPC from the unavailability window, returning
// true while the window is open.
func (r *region) takeUnavailable() bool {
	for {
		v := r.unavail.Load()
		if v <= 0 {
			return false
		}
		if r.unavail.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// containsKey reports whether key falls inside this region's range.
func (r *region) containsKey(key []byte) bool {
	if r.startKey != nil && bytes.Compare(key, r.startKey) < 0 {
		return false
	}
	if r.endKey != nil && bytes.Compare(key, r.endKey) >= 0 {
		return false
	}
	return true
}

// overlapsRange reports whether [start, end) overlaps the region. nil end
// means +inf; nil start means -inf.
func (r *region) overlapsRange(start, end []byte) bool {
	if end != nil && r.startKey != nil && bytes.Compare(end, r.startKey) <= 0 {
		return false
	}
	if r.endKey != nil && start != nil && bytes.Compare(start, r.endKey) >= 0 {
		return false
	}
	return true
}

// put inserts or replaces a row, flushing the memtable if it grew past the
// threshold. Returns the region's approximate size so the table can decide
// whether to split.
func (r *region) put(key, value []byte, stats *Stats) (sizeBytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem.set(key, value, false)
	if r.mem.bytes >= r.flushBytes {
		r.flushLocked(stats)
	}
	return r.sizeLocked()
}

// delete writes a tombstone.
func (r *region) delete(key []byte, stats *Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem.set(key, nil, true)
	if r.mem.bytes >= r.flushBytes {
		r.flushLocked(stats)
	}
}

// flushLocked turns the memtable into a sorted run; caller holds mu. Runs
// are kept oldest-first so a flush is a plain append rather than a
// whole-slice reallocating prepend.
func (r *region) flushLocked(stats *Stats) {
	if r.mem.size == 0 {
		return
	}
	run := newSortedRun(r.mem.drain())
	r.runs = append(r.runs, run)
	r.mem = newSkiplist(nextSkiplistSeed())
	if stats != nil {
		stats.Flushes.Add(1)
	}
	if len(r.runs) > r.maxRuns {
		r.compactLocked(stats)
	}
}

// compactLocked merges all runs into one, dropping tombstones (a region owns
// its whole key range, so nothing older can resurface).
func (r *region) compactLocked(stats *Stats) {
	// mergeRuns wants sources newest first; runs are stored oldest first.
	sources := make([][]entry, len(r.runs))
	for i, run := range r.runs {
		sources[len(r.runs)-1-i] = run.entries
	}
	merged := mergeRuns(sources, true)
	r.runs = []*sortedRun{newSortedRun(merged)}
	if stats != nil {
		stats.Compactions.Add(1)
	}
}

// get performs a point lookup, newest version wins.
func (r *region) get(key []byte) (value []byte, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, tomb, found := r.mem.get(key); found {
		if tomb {
			return nil, false
		}
		return v, true
	}
	for i := len(r.runs) - 1; i >= 0; i-- {
		if v, tomb, found := r.runs[i].get(key); found {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// scan visits live rows with key in [start, end) ∩ region range in key
// order, applying the push-down filter and appending accepted rows to out.
// limit <= 0 means unlimited. Returns the extended slice, whether the limit
// was reached, and the bytes of rows visited (the simulated disk-read
// volume).
//
// The scan streams a heap merge over the live memtable and every run:
// each run is binary-search-seeked to the window once, cursors advance in
// lockstep, and a limit stops the merge without visiting (or copying) the
// rest of the window. No per-source sub-slices are materialized.
func (r *region) scan(start, end []byte, filter Filter, limit int, out []KV, stats *Stats) (result []KV, hitLimit bool, scannedBytes int64) {
	lo := maxKey(start, r.startKey)
	hi := minKey(end, r.endKey)

	r.mu.RLock()
	defer r.mu.RUnlock()
	if stats != nil {
		stats.Seeks.Add(1)
	}

	sc := getScanScratch(len(r.runs) + 1)
	defer sc.release()

	// Sources newest first: the live memtable (priority 0), then runs from
	// newest (last) to oldest. Priorities make the newest version win among
	// duplicate keys.
	{
		var n *skipNode
		if lo != nil {
			n = r.mem.seek(lo)
		} else {
			n = r.mem.first()
		}
		// A memtable cursor is self-referential; init it in its final slot.
		sc.cursors = append(sc.cursors, mergeCursor{})
		c := &sc.cursors[len(sc.cursors)-1]
		c.initMem(n, hi, 0)
		if !c.ok {
			sc.cursors = sc.cursors[:len(sc.cursors)-1]
		}
	}
	pri := 1
	windowTotal := 0
	for k := len(r.runs) - 1; k >= 0; k-- {
		run := r.runs[k]
		i := 0
		if lo != nil {
			i = run.seek(lo)
		}
		j := len(run.entries)
		if hi != nil {
			j = run.seek(hi)
		}
		if j > i {
			var c mergeCursor
			c.initSlice(run.entries[i:j], pri)
			sc.cursors = append(sc.cursors, c)
			pri++
			windowTotal += j - i
		}
	}

	// With no filter every deduped window entry is returned, so the run
	// windows bound the result size; grow out once instead of per-append.
	// (Duplicates and tombstones only make the bound generous.)
	if filter == nil && windowTotal > 0 {
		hint := windowTotal
		if limit > 0 && limit-len(out) < hint {
			hint = limit - len(out)
		}
		if need := len(out) + hint; need > cap(out) {
			grown := make([]KV, len(out), need)
			copy(grown, out)
			out = grown
		}
	}

	it := sc.start()
	for {
		e, ok := it.next()
		if !ok {
			break
		}
		if e.tomb {
			continue
		}
		scannedBytes += int64(len(e.key) + len(e.value))
		if stats != nil {
			stats.RowsScanned.Add(1)
		}
		if filter != nil && !filter.Accept(e.key, e.value) {
			continue
		}
		out = append(out, KV{Key: e.key, Value: e.value})
		if stats != nil {
			stats.RowsReturned.Add(1)
			stats.BytesReturned.Add(int64(len(e.value)))
		}
		if limit > 0 && len(out) >= limit {
			hitLimit = true
			break
		}
	}
	return out, hitLimit, scannedBytes
}

// size returns the approximate byte size of the region.
func (r *region) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sizeLocked()
}

func (r *region) sizeLocked() int {
	s := r.mem.bytes
	for _, run := range r.runs {
		s += run.bytes
	}
	return s
}

// splitEntries compacts the region and returns all live entries plus the
// median key for splitting. Caller must hold the table-level write lock to
// prevent concurrent access; the region's own lock is still taken.
func (r *region) splitEntries() (entries []entry, median []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked(nil)
	r.compactLocked(nil)
	if len(r.runs) == 0 || len(r.runs[0].entries) < 2 {
		return nil, nil
	}
	es := r.runs[0].entries
	return es, es[len(es)/2].key
}

func maxKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}
