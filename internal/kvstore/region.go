package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tman-db/tman/internal/obs"
)

// region is one contiguous key range of a table: [startKey, endKey), where a
// nil startKey means -inf and a nil endKey means +inf. Each region is a tiny
// LSM tree owned by a simulated node.
//
// Write pipeline: puts land in the live memtable (mem); when it crosses the
// flush threshold it is sealed onto the immutable list (imm) and the store's
// background flusher turns immutables into sorted runs and compacts when the
// run count crosses maxRuns — writers never block on flush or compaction.
//
// Lock order: table.mu → region.flushMu → region.mu. flushMu serializes
// every mutator of the run set (flusher, split, CompactAll), which lets
// compaction merge outside region.mu: the run set is frozen for the merge's
// duration, so the post-merge swap cannot lose a concurrent flush.
type region struct {
	mu       sync.RWMutex
	startKey []byte // inclusive; nil = -inf
	endKey   []byte // exclusive; nil = +inf
	mem      *skiplist
	imm      []*skiplist  // sealed memtables awaiting flush, oldest first
	runs     []*sortedRun // oldest first: flushes append, so the newest run is last
	id       int64        // store-unique id, stable for a deterministic load order

	// node is the owning node id. Atomic because failover re-homes the
	// region to the promoted follower's node while scans read it unlocked
	// for latency-scale accounting.
	node atomic.Int64

	// rep is the region's replication group (leader side); nil when the
	// store is unreplicated and always nil on follower regions, so applying
	// a shipped frame can never re-enter the ship path.
	rep *replGroup

	flushBytes int
	maxRuns    int
	cpol       compactPolicy // tiered/monolithic compaction tuning; see compaction.go
	fl         *flusher      // store's background flusher; nil only in unit fixtures

	// bcfg selects the run format: the store-wide block configuration
	// (block runs, shared cache, bloom filters), or nil for the legacy
	// decoded-slice format. All regions of a store share one value, so
	// every run a region ever holds is in one format.
	bcfg *blockConfig

	// flushMu serializes run-set mutators; see the lock-order note above.
	flushMu sync.Mutex

	// Background-job observability (side-band only: never feeds the
	// deterministic Stats counters). jobs is the store's recorder — nil in
	// unit fixtures — and tname names the owning table in job records.
	jobs  *obs.JobRecorder
	tname string

	// Hotness accounting for the per-region hotness gauges: lifetime scan
	// task count and rows visited, charged unconditionally (two atomic adds
	// per region scan).
	hotScans atomic.Int64
	hotRows  atomic.Int64

	// writeBytes is the split-decision metric: the monotonic ingest volume
	// charged per mutation at put time (key+value+overhead), independent of
	// replacements, flush progress, and tombstone drops — so split points
	// are a pure function of the write sequence no matter how the
	// background flusher is scheduled. It is re-seeded from actual content
	// when a region splits (or a split aborts), keeping it an honest
	// approximation of region size.
	writeBytes atomic.Int64

	// Fault-model state: unavail counts down client RPC attempts that fail
	// with ErrRegionUnavailable (post-split/compaction window); faultSeq
	// numbers this region's RPC attempts so injected faults are a pure
	// function of (seed, region id, attempt).
	unavail  atomic.Int64
	faultSeq atomic.Int64
}

func newRegion(id int64, start, end []byte, node, flushBytes, maxRuns int, cpol compactPolicy, fl *flusher, bcfg *blockConfig) *region {
	r := &region{
		id:         id,
		startKey:   start,
		endKey:     end,
		mem:        newSkiplist(nextSkiplistSeed()),
		flushBytes: flushBytes,
		maxRuns:    maxRuns,
		cpol:       cpol,
		fl:         fl,
		bcfg:       bcfg,
	}
	r.node.Store(int64(node))
	return r
}

// nodeID returns the region's current serving node.
func (r *region) nodeID() int { return int(r.node.Load()) }

// takeUnavailable consumes one RPC from the unavailability window, returning
// true while the window is open.
func (r *region) takeUnavailable() bool {
	for {
		v := r.unavail.Load()
		if v <= 0 {
			return false
		}
		if r.unavail.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// containsKey reports whether key falls inside this region's range.
func (r *region) containsKey(key []byte) bool {
	if r.startKey != nil && bytes.Compare(key, r.startKey) < 0 {
		return false
	}
	if r.endKey != nil && bytes.Compare(key, r.endKey) >= 0 {
		return false
	}
	return true
}

// overlapsRange reports whether [start, end) overlaps the region. nil end
// means +inf; nil start means -inf.
func (r *region) overlapsRange(start, end []byte) bool {
	if end != nil && r.startKey != nil && bytes.Compare(end, r.startKey) <= 0 {
		return false
	}
	if r.endKey != nil && start != nil && bytes.Compare(start, r.endKey) >= 0 {
		return false
	}
	return true
}

// ingestCharge is the writeBytes cost of one mutation.
func ingestCharge(key, value []byte) int64 {
	return int64(len(key) + len(value) + memEntryOverhead)
}

// put inserts or replaces a row, sealing the memtable for background flush
// if it grew past the threshold. Returns the region's monotonic ingest
// volume so the table can decide whether to split. On a replicated region
// the local apply and the follower ship happen under one group critical
// section, so the write is acknowledged only once every live follower has
// it and all writers agree on the commit order.
func (r *region) put(key, value []byte) (writeBytes int64) {
	if g := r.rep; g != nil {
		g.lock()
		wb := r.putLocal(key, value)
		g.shipLocked(opPut, key, value, nil)
		g.unlock()
		return wb
	}
	return r.putLocal(key, value)
}

func (r *region) putLocal(key, value []byte) (writeBytes int64) {
	r.mu.Lock()
	r.mem.set(key, value, false)
	wb := r.writeBytes.Add(ingestCharge(key, value))
	sealed := false
	if r.mem.bytes >= r.flushBytes {
		sealed = r.sealLocked()
	}
	r.mu.Unlock()
	if sealed {
		r.fl.enqueue(r)
	}
	return wb
}

// putBatch applies a key-ascending run of put rows under a single lock
// acquisition, sealing (possibly repeatedly) as the memtable fills. Rows
// must all fall inside the region's range. Returns the post-apply ingest
// volume for the split check. Replicated regions ship the whole batch as a
// single op=3 group-commit frame, mirroring the WAL.
func (r *region) putBatch(rows []KV) (writeBytes int64) {
	if g := r.rep; g != nil {
		g.lock()
		wb := r.putBatchLocal(rows)
		g.shipLocked(opBatch, nil, nil, rows)
		g.unlock()
		return wb
	}
	return r.putBatchLocal(rows)
}

func (r *region) putBatchLocal(rows []KV) (writeBytes int64) {
	var ingest int64
	for i := range rows {
		ingest += ingestCharge(rows[i].Key, rows[i].Value)
	}
	sealed := false
	r.mu.Lock()
	var ins batchInserter
	for len(rows) > 0 {
		n := r.mem.setSortedPuts(rows, r.flushBytes, &ins)
		rows = rows[n:]
		if r.mem.bytes >= r.flushBytes {
			if r.sealLocked() {
				sealed = true
			}
			ins = batchInserter{} // fingers pointed into the sealed memtable
		}
	}
	wb := r.writeBytes.Add(ingest)
	r.mu.Unlock()
	if sealed {
		r.fl.enqueue(r)
	}
	return wb
}

// delete writes a tombstone.
func (r *region) delete(key []byte) {
	if g := r.rep; g != nil {
		g.lock()
		r.deleteLocal(key)
		g.shipLocked(opDelete, key, nil, nil)
		g.unlock()
		return
	}
	r.deleteLocal(key)
}

func (r *region) deleteLocal(key []byte) {
	r.mu.Lock()
	r.mem.set(key, nil, true)
	r.writeBytes.Add(ingestCharge(key, nil))
	sealed := false
	if r.mem.bytes >= r.flushBytes {
		sealed = r.sealLocked()
	}
	r.mu.Unlock()
	if sealed {
		r.fl.enqueue(r)
	}
}

// sealLocked moves a non-empty live memtable onto the immutable list; caller
// holds mu. The actual flush to a sorted run happens on the background
// flusher.
func (r *region) sealLocked() bool {
	if r.mem.size == 0 {
		return false
	}
	r.imm = append(r.imm, r.mem)
	r.mem = newSkiplist(nextSkiplistSeed())
	return true
}

// flushOldestImm converts the oldest immutable memtable into a sorted run,
// then drives the compaction policy to its fixpoint out of line. Caller
// holds flushMu (not mu). Returns false when no immutable was pending.
//
// The drain happens outside region.mu: the sealed memtable is never written
// again and concurrent readers only read it, while flushMu excludes every
// other run-set mutator.
func (r *region) flushOldestImm(stats *Stats) bool {
	r.mu.RLock()
	if len(r.imm) == 0 {
		r.mu.RUnlock()
		return false
	}
	m := r.imm[0]
	r.mu.RUnlock()

	job := r.jobs.Begin("flush", r.tname, r.id)
	entries, rawBytes := m.drain()
	run := newRunFromEntries(r.bcfg, entries, rawBytes)
	r.mu.Lock()
	r.imm = r.imm[1:]
	r.runs = append(r.runs, run)
	r.mu.Unlock()
	stats.Flushes.Add(1)
	stats.BytesFlushed.Add(int64(run.bytes))
	job.AddBytesRead(int64(rawBytes))
	job.AddBytesWritten(int64(run.bytes))
	job.AddItems(int64(len(entries)))
	r.jobs.End(job)
	r.maintainRuns(stats)
	return true
}

// compactOutOfLine is the legacy monolithic compaction: merge all runs into
// one without holding region.mu for the merge. Caller holds flushMu, so the
// run set cannot change underneath the merge and the swap is exact.
func (r *region) compactOutOfLine(stats *Stats) {
	r.mu.RLock()
	snap := make([]*sortedRun, len(r.runs))
	copy(snap, r.runs)
	r.mu.RUnlock()
	var input int64
	for _, run := range snap {
		input += int64(run.bytes)
	}
	job := r.jobs.Begin("compact", r.tname, r.id)
	start := time.Now()
	merged := mergeRunSlice(r.bcfg, snap)
	r.mu.Lock()
	r.runs = []*sortedRun{merged}
	r.mu.Unlock()
	stats.Compactions.Add(1)
	stats.BytesCompacted.Add(input)
	stats.CompactStallNanos.Add(time.Since(start).Nanoseconds())
	job.AddBytesRead(input)
	job.AddBytesWritten(int64(merged.bytes))
	job.AddItems(int64(len(snap)))
	job.AddStall(time.Since(start))
	r.jobs.End(job)
}

// drainImmsLocked converts every pending immutable memtable into a run with
// exactly the counting the background flusher would have performed (one
// Flush per conversion, then the compaction policy driven to its fixpoint,
// one Compactions per merge window and one SubCompactions per sub-range) —
// so counter totals stay a pure function of the write sequence whether the
// flusher or a foreground path (split, CompactAll) got there first. Caller
// holds flushMu and mu.
func (r *region) drainImmsLocked(stats *Stats) {
	for _, m := range r.imm {
		if m.size == 0 {
			continue
		}
		entries, rawBytes := m.drain()
		run := newRunFromEntries(r.bcfg, entries, rawBytes)
		r.runs = append(r.runs, run)
		stats.Flushes.Add(1)
		stats.BytesFlushed.Add(int64(run.bytes))
		r.maintainRunsLocked(stats)
	}
	r.imm = nil
}

// get performs a point lookup, newest version wins.
func (r *region) get(key []byte) (value []byte, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, tomb, found := r.mem.get(key); found {
		if tomb {
			return nil, false
		}
		return v, true
	}
	for i := len(r.imm) - 1; i >= 0; i-- {
		if v, tomb, found := r.imm[i].get(key); found {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	for i := len(r.runs) - 1; i >= 0; i-- {
		if v, tomb, found, _ := r.runs[i].get(key); found {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// scanAcct is one region scan's resource account: the bytes of rows visited
// (the simulated disk-read volume), the rows visited, and — in block mode —
// the fence/cache traffic behind them. It flows back per scan task so a
// traced query can attribute cost per region instead of only to the global
// counters.
type scanAcct struct {
	ScannedBytes  int64
	RowsScanned   int64
	BlocksSkipped int64 // fence-pruned blocks (run- and block-level)
	CacheHits     int64 // block fetches served by the block cache
	CacheMisses   int64 // block fetches that decoded (and charged) the run
}

func (a *scanAcct) add(b scanAcct) {
	a.ScannedBytes += b.ScannedBytes
	a.RowsScanned += b.RowsScanned
	a.BlocksSkipped += b.BlocksSkipped
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
}

// scan visits live rows with key in [start, end) ∩ region range in key
// order, applying the push-down filter and appending accepted rows to out.
// limit <= 0 means unlimited. Returns the extended slice, whether the limit
// was reached, and the scan's resource account.
//
// The scan streams a heap merge over the live memtable, the sealed
// immutables, and every run: each run is binary-search-seeked to the window
// once, cursors advance in lockstep, and a limit stops the merge without
// visiting (or copying) the rest of the window. No per-source sub-slices are
// materialized.
func (r *region) scan(start, end []byte, filter Filter, limit int, out []KV, stats *Stats, fenceBudget map[*blockRun]int64) (result []KV, hitLimit bool, acct scanAcct) {
	lo := maxKey(start, r.startKey)
	hi := minKey(end, r.endKey)

	r.hotScans.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if stats != nil {
		stats.Seeks.Add(1)
	}

	sc := getScanScratch(len(r.runs) + len(r.imm) + 1)
	defer sc.release()

	// Sources newest first: the live memtable (priority 0), sealed
	// immutables newest (last) to oldest, then runs newest (last) to
	// oldest. Priorities make the newest version win among duplicate keys.
	addMem := func(m *skiplist, pri int) {
		var n *skipNode
		if lo != nil {
			n = m.seek(lo)
		} else {
			n = m.first()
		}
		// A memtable cursor is self-referential; init it in its final slot.
		sc.cursors = append(sc.cursors, mergeCursor{})
		c := &sc.cursors[len(sc.cursors)-1]
		c.initMem(n, hi, pri)
		if !c.ok {
			sc.cursors = sc.cursors[:len(sc.cursors)-1]
		}
	}
	addMem(r.mem, 0)
	pri := 1
	for k := len(r.imm) - 1; k >= 0; k-- {
		addMem(r.imm[k], pri)
		pri++
	}
	// Fence pruning: a FenceFilter can classify whole blocks. AcceptAll is
	// always sound (rows still stream through the merge, only per-row
	// Accept calls are elided), but Skip removes a block's versions from
	// the merge — sound only when nothing older could resurface underneath.
	// That holds exactly for the oldest group-prefix of the run stack:
	// runs[0], plus the consecutive runs sharing its nonzero group id
	// (fragments of one partitioned compaction are key-disjoint, so they
	// cannot shadow each other). Every newer run caps at AcceptAll/Inspect.
	ff, _ := filter.(FenceFilter)
	skipPrefix := 0
	if ff != nil && len(r.runs) > 0 {
		skipPrefix = 1
		if g := r.runs[0].group; g != 0 {
			for skipPrefix < len(r.runs) && r.runs[skipPrefix].group == g {
				skipPrefix++
			}
		}
	}
	windowTotal := 0
	for k := len(r.runs) - 1; k >= 0; k-- {
		run := r.runs[k]
		if run.br != nil {
			// Block mode: stream the window block-by-block through the
			// cache. Cursors whose window proves empty are kept so their
			// charged probe misses still reach the scan's disk total.
			sc.cursors = append(sc.cursors, mergeCursor{})
			c := &sc.cursors[len(sc.cursors)-1]
			c.initBlock(run.br, lo, hi, pri, false, ff, k < skipPrefix, fenceBudget)
			if c.ok {
				pri++
				windowTotal += run.br.windowCount(c.nextBlk-1, c.lastBlk)
			}
			continue
		}
		i := 0
		if lo != nil {
			i = run.seek(lo)
		}
		j := len(run.entries)
		if hi != nil {
			j = run.seek(hi)
		}
		if j > i {
			var c mergeCursor
			c.initSlice(run.entries[i:j], pri)
			sc.cursors = append(sc.cursors, c)
			pri++
			windowTotal += j - i
		}
	}

	// With no filter every deduped window entry is returned, so the run
	// windows bound the result size; grow out once instead of per-append.
	// (Duplicates and tombstones only make the bound generous.)
	if filter == nil && windowTotal > 0 {
		hint := windowTotal
		if limit > 0 && limit-len(out) < hint {
			hint = limit - len(out)
		}
		if need := len(out) + hint; need > cap(out) {
			grown := make([]KV, len(out), need)
			copy(grown, out)
			out = grown
		}
	}

	blockMode := r.bcfg != nil
	it := sc.start()
	for {
		e, pre, ok := it.next()
		if !ok {
			break
		}
		if e.tomb {
			continue
		}
		if !blockMode {
			acct.ScannedBytes += int64(len(e.key) + len(e.value))
		}
		acct.RowsScanned++
		if stats != nil {
			stats.RowsScanned.Add(1)
		}
		// pre marks rows from fence-pre-accepted blocks: the filter already
		// proved it accepts every row the block can hold.
		if filter != nil && !pre && !filter.Accept(e.key, e.value) {
			continue
		}
		out = append(out, KV{Key: e.key, Value: e.value})
		if stats != nil {
			stats.RowsReturned.Add(1)
			stats.BytesReturned.Add(int64(len(e.value)))
		}
		if limit > 0 && len(out) >= limit {
			hitLimit = true
			break
		}
	}
	if blockMode {
		// Per-block charging: a run's scan cost is the encoded bytes of
		// blocks actually fetched (cache misses charge, cache hits do not —
		// that is the point of the tier), while memtable and immutable rows
		// keep the per-row raw-byte charge accrued by their cursors.
		for i := range sc.cursors {
			c := &sc.cursors[i]
			acct.ScannedBytes += c.missBytes
			acct.BlocksSkipped += c.blocksSkipped
			acct.CacheHits += c.cacheHits
			acct.CacheMisses += c.cacheMisses
		}
	}
	r.hotRows.Add(acct.RowsScanned)
	return out, hitLimit, acct
}

// size returns the approximate byte size of the region.
func (r *region) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sizeLocked()
}

func (r *region) sizeLocked() int {
	s := r.mem.bytes
	for _, m := range r.imm {
		s += m.bytes
	}
	for _, run := range r.runs {
		s += run.bytes
	}
	return s
}

// splitEntries compacts the region and returns all live entries plus the
// median key for splitting. Caller must hold the table-level write lock to
// prevent concurrent table access; flushMu excludes an in-flight background
// flush. Pending immutables are converted with flusher-equivalent counting
// (see drainImmsLocked); the live memtable flush and the final merge are
// uncounted, as the inline split compaction always was.
func (r *region) splitEntries(stats *Stats) (entries []entry, median []byte) {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drainImmsLocked(stats)
	if r.mem.size > 0 {
		memEntries, memRaw := r.mem.drain()
		r.runs = append(r.runs, newRunFromEntries(r.bcfg, memEntries, memRaw))
		r.mem = newSkiplist(nextSkiplistSeed())
	}
	if len(r.runs) == 0 {
		return nil, nil
	}
	// Always re-merge: even a single run may carry tombstones from a plain
	// flush, and split children must start from live rows only.
	r.runs = []*sortedRun{mergeRunSlice(r.bcfg, r.runs)}
	es := r.runs[0].materialize()
	if len(es) < 2 {
		return nil, nil
	}
	return es, es[len(es)/2].key
}

// entriesCharge sums the ingest charge over a run of entries — used to
// re-seed writeBytes from actual content after a split.
func entriesCharge(es []entry) int64 {
	var c int64
	for i := range es {
		c += ingestCharge(es[i].key, es[i].value)
	}
	return c
}

func maxKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}
