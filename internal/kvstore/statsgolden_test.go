package kvstore

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestReadPathStatsGolden pins the externally observable Stats counters of a
// seeded workload to exact values. The counters (RowsScanned in particular)
// are the paper's "candidates / retrievals" metric and feed the analytic
// cost model, so read-path refactors must reproduce them byte for byte:
// any drift here means the new scan path visits different rows, dedups
// differently, or charges RPCs differently than the reference behavior.
//
// Everything in the workload is deterministic: writes are issued from a
// seeded PRNG on a single goroutine, fault decisions are a pure function of
// (seed, region id, attempt sequence), and no query carries a deadline (the
// only wall-clock-dependent path).
func TestReadPathStatsGolden(t *testing.T) {
	opts := DefaultOptions()
	opts.RegionMaxBytes = 64 << 10
	opts.MemtableFlushBytes = 8 << 10
	opts.MaxRunsPerRegion = 4
	opts.Parallelism = 4
	opts.Fault = FaultConfig{Seed: 7, PFailRPC: 0.35, UnavailableRPCsAfterSplit: 2}
	opts.Retry = RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	s := Open(opts)
	tbl, err := s.CreateTable("golden")
	if err != nil {
		t.Fatal(err)
	}

	const rows = 4000
	rng := rand.New(rand.NewSource(11))
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	for _, i := range rng.Perm(rows) {
		val := strings.Repeat("v", 20+i%40) + fmt.Sprintf("#%06d", i)
		tbl.Put(key(i), []byte(val))
	}
	for i := 0; i < rows; i += 17 {
		tbl.Delete(key(i))
	}
	for i := 0; i < rows; i += 13 {
		tbl.Put(key(i), []byte(fmt.Sprintf("rewritten-%06d", i)))
	}

	ctx := context.Background()
	for i := 0; i < rows; i += 97 {
		// Exhausted retries are an acceptable, deterministic outcome.
		_, _, _ = tbl.GetCtx(WithQueryBudget(ctx), key(i))
	}

	filter := FilterFunc(func(k, _ []byte) bool { return k[len(k)-1]%2 == 0 })
	_ = tbl.Scan(nil, nil, nil, 0)
	_ = tbl.Scan(key(500), key(2500), filter, 0)
	_ = tbl.Scan(key(100), key(3900), nil, 250)

	var ranges []KeyRange
	for i := 0; i < rows; i += 250 {
		ranges = append(ranges, KeyRange{Start: key(i), End: key(i + 40)})
	}
	_ = tbl.ScanRanges(ranges, nil, 0)
	_ = tbl.ScanRanges(ranges, filter, 120)
	for q := 0; q < 8; q++ {
		_, _, _ = tbl.ScanRangesCtx(WithQueryBudget(ctx), ranges, filter, 0)
	}
	_, _, _ = tbl.ScanCtx(WithQueryBudget(ctx), key(0), key(3999), nil, 300)
	s.CompactAll()
	_ = tbl.Scan(nil, nil, filter, 0)
	// CompactAll already absorbed every pending flush with deterministic
	// counting; Quiesce makes the settled state explicit before reading.
	s.Quiesce()

	got := s.Stats().Snapshot()
	check := func(name string, got, want int64) {
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("RowsScanned", got.RowsScanned, 19841)
	check("RowsReturned", got.RowsReturned, 14324)
	check("Seeks", got.Seeks, 215)
	check("RPCs", got.RPCs, 116)
	check("RetriedRPCs", got.RetriedRPCs, 79)
	check("FailedRPCs", got.FailedRPCs, 81)
	check("FailedRegions", got.FailedRegions, 1)
	check("PartialScans", got.PartialScans, 1)
	check("BytesReturned", got.BytesReturned, 626524)
	check("Puts", got.Puts, 4308)
	check("Deletes", got.Deletes, 236)
	check("Flushes", got.Flushes, 52)
	check("Compactions", got.Compactions, 12)
	check("RegionSplits", got.RegionSplits, 7)
	if t.Failed() {
		t.Logf("full snapshot: %+v", got)
	}
}
