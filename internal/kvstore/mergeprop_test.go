package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// referenceMerge is the pre-overhaul linear k-way merge, kept verbatim as
// the correctness oracle for the heap merge: per emitted entry it scans all
// cursors for the smallest key (ties resolved newest-first), then advances
// every cursor past that key so shadowed versions are skipped.
func referenceMerge(sources [][]entry, dropTombs bool) []entry {
	type cursor struct {
		src []entry
		pos int
		pri int // lower = newer
	}
	cursors := make([]*cursor, 0, len(sources))
	total := 0
	for pri, src := range sources {
		if len(src) > 0 {
			cursors = append(cursors, &cursor{src: src, pri: pri})
			total += len(src)
		}
	}
	out := make([]entry, 0, total)
	for {
		var best *cursor
		for _, c := range cursors {
			if c.pos >= len(c.src) {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			cmp := bytes.Compare(c.src[c.pos].key, best.src[best.pos].key)
			if cmp < 0 || (cmp == 0 && c.pri < best.pri) {
				best = c
			}
		}
		if best == nil {
			return out
		}
		e := best.src[best.pos]
		for _, c := range cursors {
			for c.pos < len(c.src) && bytes.Equal(c.src[c.pos].key, e.key) {
				c.pos++
			}
		}
		if e.tomb && dropTombs {
			continue
		}
		out = append(out, e)
	}
}

// randomMergeSources draws up to 6 sorted sources over a small key universe
// so cross-source duplicates (shadowing) are common; values vary per source
// so the winning version is observable, and tombstones appear throughout.
func randomMergeSources(rng *rand.Rand) [][]entry {
	k := rng.Intn(7)
	sources := make([][]entry, k)
	for s := range sources {
		n := rng.Intn(40)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(60)
		}
		// Sorted, possibly with duplicate keys inside one source: the merge
		// must dedup those too.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		src := make([]entry, n)
		for i, kv := range keys {
			e := entry{key: []byte(fmt.Sprintf("key-%02d", kv))}
			if rng.Intn(4) == 0 {
				e.tomb = true
			} else {
				e.value = []byte(fmt.Sprintf("val-%02d-src%d-%d", kv, s, rng.Intn(1000)))
			}
			src[i] = e
		}
		sources[s] = src
	}
	return sources
}

func entriesEqual(a, b []entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].key, b[i].key) || !bytes.Equal(a[i].value, b[i].value) || a[i].tomb != b[i].tomb {
			return false
		}
	}
	return true
}

// TestHeapMergeMatchesReference property-checks the heap merge against the
// old linear merge: identical keys, values, tombstone handling, and
// newest-wins shadowing on arbitrary sorted sources, with and without
// tombstone dropping.
func TestHeapMergeMatchesReference(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(randomMergeSources(rng))
			args[1] = reflect.ValueOf(rng.Intn(2) == 0)
		},
	}
	f := func(sources [][]entry, dropTombs bool) bool {
		got, _ := mergeRuns(sources, dropTombs)
		want := referenceMerge(sources, dropTombs)
		return entriesEqual(got, want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHeapMergeEdgeCases pins the shapes quick.Check may not hit: no
// sources, all-empty sources, and a single source with internal duplicates.
func TestHeapMergeEdgeCases(t *testing.T) {
	if got, _ := mergeRuns(nil, true); len(got) != 0 {
		t.Fatalf("merge of no sources = %v, want empty", got)
	}
	if got, _ := mergeRuns([][]entry{{}, {}, nil}, false); len(got) != 0 {
		t.Fatalf("merge of empty sources = %v, want empty", got)
	}
	single := [][]entry{{
		{key: []byte("a"), value: []byte("1")},
		{key: []byte("b"), value: []byte("2")},
		{key: []byte("b"), value: []byte("3")},
		{key: []byte("c"), tomb: true},
	}}
	got, _ := mergeRuns(single, false)
	want := referenceMerge(single, false)
	if !entriesEqual(got, want) {
		t.Fatalf("single-source merge = %v, want %v", got, want)
	}
	if len(got) != 3 || string(got[1].value) != "2" {
		t.Fatalf("single-source dedup kept %v", got)
	}
}
