package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tman-db/tman/internal/cache"
	"github.com/tman-db/tman/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Nodes is the number of simulated storage nodes regions are spread
	// over. It only affects region placement bookkeeping; all data is in
	// process memory.
	Nodes int
	// RegionMaxBytes triggers a region split when a region's approximate
	// size passes this threshold.
	RegionMaxBytes int
	// MemtableFlushBytes triggers a memtable flush into a sorted run.
	MemtableFlushBytes int
	// MaxRunsPerRegion bounds a region's logical run count: the tiered
	// policy falls back to cheapest-pair merges above it (and the legacy
	// monolithic policy compacts everything on crossing it).
	MaxRunsPerRegion int
	// CompactFanIn is how many consecutive same-size-tier runs one tiered
	// compaction merges (0 = 4, min 2). Larger fan-in lowers write
	// amplification but leaves more runs visible between merges.
	CompactFanIn int
	// CompactSubRanges is the maximum number of key-range partitions a
	// single large merge is split into for parallel sub-compactions on the
	// flusher pool (0 = 4; 1 disables partitioning). Merges under 4 MiB of
	// input never partition.
	CompactSubRanges int
	// MonolithicCompaction reverts to the legacy policy: merge every run
	// into one whenever the run count crosses MaxRunsPerRegion. Kept for
	// the tiered/monolithic equivalence tests and A/B write-amplification
	// measurement.
	MonolithicCompaction bool
	// Parallelism sizes the store's shared worker pool: the number of
	// region scan/write tasks that may run concurrently store-wide, and
	// therefore the parallelism ceiling of any single query or MultiPut.
	Parallelism int
	// FlushWorkers sizes the background flusher: how many regions can have
	// memtables flushed (and compactions run) concurrently. Flush work
	// happens off the put path, so writers never block on it.
	FlushWorkers int
	// RPCLatencyMicros models the round-trip cost of one region scan RPC
	// (the paper's five-node HBase deployment); each per-region scan task
	// sleeps this long. Zero disables the network model.
	RPCLatencyMicros int
	// TransferMBps models client<-regionserver bandwidth: rows that pass
	// the push-down filter are "transferred" and charged at this rate.
	// Zero disables the charge. Push-down savings become visible in wall
	// clock through this term.
	TransferMBps int
	// DiskMBps models regionserver storage bandwidth: every row a scanner
	// visits is charged at this rate whether or not it passes the filter —
	// the physical cost behind the paper's "candidates" metric. Zero
	// disables the charge.
	DiskMBps int
	// Replicas is the number of copies of each region, leader included.
	// <= 1 disables replication. Followers are placed on distinct nodes
	// (clamped to the node count) and kept in sync by synchronous WAL-frame
	// shipping; see replication.go.
	Replicas int
	// ReplicaTailFrames bounds the per-region log tail retained for
	// follower catch-up: a follower that fell further behind than this many
	// commits is rebuilt from a leader snapshot instead of a tail replay.
	ReplicaTailFrames int
	// Fault configures deterministic fault injection on the client RPC
	// paths (ScanCtx/ScanRangesCtx/GetCtx/PutCtx). The zero value disables
	// injection.
	Fault FaultConfig
	// Retry is the client-side retry schedule used by the context-aware
	// operations when a fault is injected. Zero-valued fields take
	// DefaultRetryPolicy values.
	Retry RetryPolicy

	// BlockSizeBytes is the target encoded size of one run block in the
	// block format (0 = 4KiB). Entries never split across blocks, so a
	// block may exceed the target by one oversized row.
	BlockSizeBytes int
	// BloomBitsPerKey sizes each run's bloom filter (0 = 10 bits/key,
	// roughly a 1% false-positive rate; negative disables the filters).
	BloomBitsPerKey int
	// BlockCacheBytes bounds the store-wide cache of decompressed blocks
	// by their decoded size (0 = 32MiB; negative disables the cache, so
	// every block read decodes — and is charged — from the encoded run).
	BlockCacheBytes int
	// DisableBlockFormat reverts runs to the legacy decoded-slice format:
	// no blocks, no filters, no cache, and the cost model charges per row
	// visited. Kept for the block/legacy equivalence tests.
	DisableBlockFormat bool
	// DisableBlockFences drops per-block fences (zone maps): runs carry no
	// fence metadata and every scan inspects every overlapping block, as
	// before fences existed. Kept as an escape hatch and for the
	// fence/no-fence equivalence tests.
	DisableBlockFences bool
}

// DefaultOptions mirrors the paper's five-node deployment at laptop scale.
func DefaultOptions() Options {
	return Options{
		Nodes:              5,
		RegionMaxBytes:     8 << 20,
		MemtableFlushBytes: 1 << 20,
		MaxRunsPerRegion:   6,
		CompactFanIn:       4,
		CompactSubRanges:   4,
		Parallelism:        8,
		FlushWorkers:       4,
		RPCLatencyMicros:   150,
		TransferMBps:       32,
		DiskMBps:           256,
		BlockSizeBytes:     4 << 10,
		BloomBitsPerKey:    10,
		BlockCacheBytes:    32 << 20,
	}
}

// NoNetworkOptions returns DefaultOptions with the simulated network model
// disabled — pure CPU measurement, useful for unit tests and
// microbenchmarks.
func NoNetworkOptions() Options {
	o := DefaultOptions()
	o.RPCLatencyMicros = 0
	o.TransferMBps = 0
	o.DiskMBps = 0
	return o
}

func (o *Options) sanitize() {
	def := DefaultOptions()
	if o.Nodes <= 0 {
		o.Nodes = def.Nodes
	}
	if o.RegionMaxBytes <= 0 {
		o.RegionMaxBytes = def.RegionMaxBytes
	}
	if o.MemtableFlushBytes <= 0 {
		o.MemtableFlushBytes = def.MemtableFlushBytes
	}
	if o.MemtableFlushBytes > o.RegionMaxBytes {
		o.MemtableFlushBytes = o.RegionMaxBytes
	}
	if o.MaxRunsPerRegion <= 0 {
		o.MaxRunsPerRegion = def.MaxRunsPerRegion
	}
	if o.CompactFanIn <= 0 {
		o.CompactFanIn = def.CompactFanIn
	}
	if o.CompactFanIn < 2 {
		o.CompactFanIn = 2
	}
	if o.CompactSubRanges <= 0 {
		o.CompactSubRanges = def.CompactSubRanges
	}
	if o.Parallelism <= 0 {
		o.Parallelism = def.Parallelism
	}
	if o.FlushWorkers <= 0 {
		o.FlushWorkers = def.FlushWorkers
	}
	if o.Replicas > o.Nodes {
		o.Replicas = o.Nodes
	}
	if o.ReplicaTailFrames <= 0 {
		o.ReplicaTailFrames = 1024
	}
	if o.BlockSizeBytes <= 0 {
		o.BlockSizeBytes = def.BlockSizeBytes
	}
	if o.BlockSizeBytes < 512 {
		o.BlockSizeBytes = 512
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = def.BloomBitsPerKey
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = def.BlockCacheBytes
	}
	o.Retry.sanitize()
}

// Store is an embedded, sharded, ordered key-value store: the substrate all
// of TMan's tables live in.
type Store struct {
	opts      Options
	mu        sync.RWMutex
	tables    map[string]*Table
	nodeSeq   atomic.Int64
	regionSeq atomic.Int64
	stats     Stats
	injector  *faultInjector // nil when fault injection is disabled
	pool      *workPool      // shared bounded executor for region scan/write tasks
	fl        *flusher       // background memtable flusher/compactor
	bcfg      *blockConfig   // block run format config; nil = legacy slice runs
	jobs      *obs.JobRecorder

	// Node liveness (KillNode/ReviveNode). anyDead keeps the per-RPC check
	// to one atomic load until the first kill.
	nodeMu    sync.RWMutex
	deadNodes map[int]bool
	anyDead   atomic.Bool

	// Durability (set by OpenDir; nil for in-memory stores).
	dir string
	wal *wal
}

// Open creates an empty store with the given options.
func Open(opts Options) *Store {
	opts.sanitize()
	s := &Store{
		opts:     opts,
		tables:   make(map[string]*Table),
		injector: newFaultInjector(opts.Fault),
		pool:     newWorkPool(opts.Parallelism),
		jobs:     obs.NewJobRecorder(256),
	}
	s.fl = newFlusher(&s.stats, opts.FlushWorkers)
	if !opts.DisableBlockFormat {
		s.bcfg = &blockConfig{
			blockBytes: opts.BlockSizeBytes,
			bloomBits:  opts.BloomBitsPerKey,
			stats:      &s.stats,
		}
		if opts.BlockCacheBytes > 0 {
			s.bcfg.cache = cache.NewBlockCache(int64(opts.BlockCacheBytes), 0)
		}
	}
	return s
}

// CreateTable creates a table, erroring if the name is taken.
func (s *Store) CreateTable(name string) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("kvstore: table %q already exists", name)
	}
	t := newTable(name, s)
	s.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil when absent.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// OpenTable returns the named table, creating it if needed.
func (s *Store) OpenTable(name string) *Table {
	if t := s.Table(name); t != nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[name]; ok {
		return t
	}
	t := newTable(name, s)
	s.tables[name] = t
	return t
}

// DropTable removes a table and all its data.
func (s *Store) DropTable(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, name)
}

// TableNames returns the names of all tables.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	return names
}

// Stats exposes the store's scan/write counters.
func (s *Store) Stats() *Stats { return &s.stats }

// BlockCacheStats reports the block cache tier's hit/miss/eviction
// counters; the zero value when the cache (or the block format) is off.
func (s *Store) BlockCacheStats() cache.CacheStats {
	if s.bcfg == nil || s.bcfg.cache == nil {
		return cache.CacheStats{}
	}
	return s.bcfg.cache.Stats()
}

// BlockCacheUsedBytes reports the decoded bytes resident in the block
// cache.
func (s *Store) BlockCacheUsedBytes() int64 {
	if s.bcfg == nil || s.bcfg.cache == nil {
		return 0
	}
	return s.bcfg.cache.UsedBytes()
}

// ResidentRunBytes sums the actual memory footprint of every run in the
// store: encoded blocks + index + filter in block mode, decoded rows in
// legacy mode. The before/after RSS metric of the block format.
func (s *Store) ResidentRunBytes() int64 {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	var n int64
	for _, t := range tables {
		t.mu.RLock()
		for _, r := range t.regions {
			r.mu.RLock()
			for _, run := range r.runs {
				n += int64(run.residentBytes())
			}
			r.mu.RUnlock()
		}
		t.mu.RUnlock()
	}
	return n
}

// TotalRegions returns the store-wide region count across all tables — the
// cluster-size gauge exported through the metrics registry.
func (s *Store) TotalRegions() int {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	n := 0
	for _, t := range tables {
		n += t.RegionCount()
	}
	return n
}

// Nodes returns the configured simulated node count.
func (s *Store) Nodes() int { return s.opts.Nodes }

// nextNode assigns the next region to a node round-robin, skipping nodes
// that are currently dead (a split during an outage must not home the new
// region on a node that cannot serve). With every node dead it falls back to
// the raw rotation — nothing can serve anyway.
func (s *Store) nextNode() int {
	n := int(s.nodeSeq.Add(1)-1) % s.opts.Nodes
	if s.nodeAlive(n) {
		return n
	}
	for i := 1; i < s.opts.Nodes; i++ {
		if cand := (n + i) % s.opts.Nodes; s.nodeAlive(cand) {
			return cand
		}
	}
	return n
}

// nextRegionID issues store-unique region ids; with a deterministic load
// order they are stable across runs, which keeps injected faults replayable.
func (s *Store) nextRegionID() int64 { return s.regionSeq.Add(1) }

// compactPol is the store-wide compaction policy every region is built with.
func (s *Store) compactPol() compactPolicy {
	return compactPolicy{
		fanIn:      s.opts.CompactFanIn,
		subRanges:  s.opts.CompactSubRanges,
		monolithic: s.opts.MonolithicCompaction,
	}
}

// RetryPolicy returns the sanitized client retry schedule.
func (s *Store) RetryPolicy() RetryPolicy { return s.opts.Retry }

// FaultsEnabled reports whether the store injects faults.
func (s *Store) FaultsEnabled() bool { return s.injector != nil }

// CompactQueueDepth reports the background backlog: regions queued for
// flush plus unclaimed sub-compaction tasks.
func (s *Store) CompactQueueDepth() int64 { return s.fl.depth() }

// ScanQueueDepth reports the shared scan/write executor's queued-but-
// unstarted task backlog.
func (s *Store) ScanQueueDepth() int64 { return s.pool.depth() }

// Jobs exposes the store's background-job recorder: every flush, compaction,
// catch-up, split and failover is recorded with a wall-clock resource ledger
// (side-band — never part of the deterministic Stats counters).
func (s *Store) Jobs() *obs.JobRecorder { return s.jobs }

// RegionHot is one region's lifetime scan-traffic summary for the hotness
// gauges and /debug/jobs.
type RegionHot struct {
	Table  string `json:"table"`
	Region int64  `json:"region"`
	Node   int    `json:"node"`
	Scans  int64  `json:"scans"`
	Rows   int64  `json:"rows_visited"`
}

// RegionHotness returns the top-k regions by rows visited, hottest first
// (k <= 0 → all). Two atomic loads per region; safe to poll from scrapes.
func (s *Store) RegionHotness(k int) []RegionHot {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	var out []RegionHot
	for _, t := range tables {
		t.mu.RLock()
		for _, r := range t.regions {
			out = append(out, RegionHot{
				Table:  t.name,
				Region: r.id,
				Node:   r.nodeID(),
				Scans:  r.hotScans.Load(),
				Rows:   r.hotRows.Load(),
			})
		}
		t.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Rows != out[b].Rows {
			return out[a].Rows > out[b].Rows
		}
		return out[a].Region < out[b].Region
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// TierRunHistogram counts the store's logical runs by size tier (index =
// runTier of the logical run's bytes; fragments of one partitioned merge
// count as a single logical run, matching the policy's view). The slice is
// dense from tier 0 to the largest occupied tier.
func (s *Store) TierRunHistogram() []int {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	var hist []int
	for _, t := range tables {
		t.mu.RLock()
		for _, r := range t.regions {
			r.mu.RLock()
			for _, lr := range logicalRuns(r.runs) {
				tier := runTier(lr.bytes)
				for len(hist) <= tier {
					hist = append(hist, 0)
				}
				hist[tier]++
			}
			r.mu.RUnlock()
		}
		t.mu.RUnlock()
	}
	return hist
}

// CompactAll flushes and compacts every region of every table — the
// analogue of a major compaction after bulk loading. Benchmarks call this
// so scans measure the steady state. Regions settle in parallel on the
// flusher's helper pool (the caller participates, so it completes even with
// every worker busy).
func (s *Store) CompactAll() {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		t.CompactAll()
	}
}
