package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestCompactAllCollapsesRuns(t *testing.T) {
	s := Open(Options{MemtableFlushBytes: 1 << 10, RegionMaxBytes: 1 << 30, MaxRunsPerRegion: 100})
	tbl, _ := s.CreateTable("t")
	val := bytes.Repeat([]byte("v"), 200)
	for i := 0; i < 200; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%04d", i)), val)
	}
	// Delete some, then compact: tombstones must be garbage-collected and
	// results unchanged.
	for i := 0; i < 200; i += 4 {
		tbl.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	before := tbl.Scan(nil, nil, nil, 0)
	s.CompactAll()
	after := tbl.Scan(nil, nil, nil, 0)
	if len(before) != len(after) || len(after) != 150 {
		t.Fatalf("compaction changed results: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if !bytes.Equal(before[i].Key, after[i].Key) {
			t.Fatalf("row %d key changed after compaction", i)
		}
	}
	if s.Stats().Snapshot().Compactions == 0 {
		t.Error("compaction not counted")
	}
}

func TestSimulatedIOAccounting(t *testing.T) {
	s := Open(Options{RPCLatencyMicros: 500, TransferMBps: 1, DiskMBps: 1})
	tbl, _ := s.CreateTable("t")
	val := bytes.Repeat([]byte("x"), 1<<14) // 16 KiB rows
	for i := 0; i < 64; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%02d", i)), val)
	}
	before := s.Stats().Snapshot()
	got := tbl.Scan(nil, nil, nil, 0)
	d := Diff(before, s.Stats().Snapshot())
	if len(got) != 64 {
		t.Fatalf("scan returned %d rows", len(got))
	}
	// 64 rows x 16KiB = 1 MiB visited and transferred at 1 MB/s each →
	// about 2 s of simulated cost plus RPC latency.
	if d.SimIONanos < 1_500_000_000 {
		t.Errorf("SimIONanos = %d, expected >= 1.5s of simulated I/O", d.SimIONanos)
	}
	if d.RPCs == 0 {
		t.Error("RPCs not counted")
	}

	// Disabled model accrues nothing.
	s2 := Open(NoNetworkOptions())
	tbl2, _ := s2.CreateTable("t")
	tbl2.Put([]byte("k"), []byte("v"))
	before2 := s2.Stats().Snapshot()
	tbl2.Scan(nil, nil, nil, 0)
	if d2 := Diff(before2, s2.Stats().Snapshot()); d2.SimIONanos != 0 {
		t.Errorf("NoNetworkOptions accrued %d simulated nanos", d2.SimIONanos)
	}
}

func TestPushDownReducesTransferredBytes(t *testing.T) {
	s := Open(NoNetworkOptions())
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 1000; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 100))
	}
	before := s.Stats().Snapshot()
	tbl.Scan(nil, nil, FilterFunc(func(k, v []byte) bool { return k[3] == '0' }), 0)
	d := Diff(before, s.Stats().Snapshot())
	if d.RowsScanned != 1000 {
		t.Fatalf("RowsScanned = %d", d.RowsScanned)
	}
	if d.RowsReturned >= 200 {
		t.Fatalf("RowsReturned = %d; filter should drop ~90%%", d.RowsReturned)
	}
	if d.BytesReturned != d.RowsReturned*100 {
		t.Errorf("BytesReturned = %d for %d rows", d.BytesReturned, d.RowsReturned)
	}
}

func TestScanLimitAcrossRanges(t *testing.T) {
	s := Open(NoNetworkOptions())
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	ranges := []KeyRange{
		{Start: []byte("k000"), End: []byte("k010")},
		{Start: []byte("k050"), End: []byte("k060")},
	}
	got := tbl.ScanRanges(ranges, nil, 15)
	if len(got) != 15 {
		t.Fatalf("limit scan across ranges = %d rows, want 15", len(got))
	}
}

func TestConcurrentSplitsAndRangeScans(t *testing.T) {
	s := Open(Options{
		RegionMaxBytes:     16 << 10,
		MemtableFlushBytes: 2 << 10,
		Parallelism:        4,
		RPCLatencyMicros:   0, TransferMBps: 0, DiskMBps: 0,
	})
	tbl, _ := s.CreateTable("t")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers force frequent splits.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("w%d-%06d", w, rng.Intn(100000))
				tbl.Put([]byte(k), bytes.Repeat([]byte("p"), 64))
			}
			if w == 0 {
				close(stop)
			}
		}(w)
	}
	// Scanners verify ordering invariants continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			out := tbl.ScanRanges([]KeyRange{
				{Start: []byte("w0-"), End: []byte("w0-~")},
				{Start: []byte("w1-"), End: []byte("w1-~")},
			}, nil, 0)
			for i := 1; i < len(out); i++ {
				if bytes.Compare(out[i-1].Key, out[i].Key) > 0 {
					t.Error("range scan order violated during splits")
					return
				}
			}
		}
	}()
	wg.Wait()
	if tbl.RegionCount() < 2 {
		t.Error("expected splits under write load")
	}
}

func TestDropAndReopenTable(t *testing.T) {
	s := Open(NoNetworkOptions())
	tbl, _ := s.CreateTable("t")
	tbl.Put([]byte("k"), []byte("v"))
	s.DropTable("t")
	if s.Table("t") != nil {
		t.Fatal("dropped table still visible")
	}
	fresh := s.OpenTable("t")
	if _, ok := fresh.Get([]byte("k")); ok {
		t.Error("reopened table kept old data")
	}
	names := s.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestStatsResetAndNodes(t *testing.T) {
	s := Open(Options{Nodes: 3})
	if s.Nodes() != 3 {
		t.Errorf("Nodes = %d", s.Nodes())
	}
	tbl, _ := s.CreateTable("t")
	tbl.Put([]byte("k"), []byte("v"))
	tbl.Scan(nil, nil, nil, 0)
	if s.Stats().Snapshot().Puts == 0 {
		t.Fatal("puts not counted")
	}
	s.Stats().Reset()
	snap := s.Stats().Snapshot()
	if snap.Puts != 0 || snap.RowsScanned != 0 || snap.SimIONanos != 0 {
		t.Errorf("Reset left counters: %+v", snap)
	}
}

// Overwriting a key repeatedly across flushes must always yield the newest
// value and exactly one row.
func TestOverwriteAcrossFlushes(t *testing.T) {
	s := Open(Options{MemtableFlushBytes: 512, RegionMaxBytes: 1 << 30})
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 500; i++ {
		tbl.Put([]byte("hot-key"), []byte(fmt.Sprintf("v%04d", i)))
		tbl.Put([]byte(fmt.Sprintf("filler-%04d", i)), bytes.Repeat([]byte("f"), 64))
	}
	v, ok := tbl.Get([]byte("hot-key"))
	if !ok || string(v) != "v0499" {
		t.Fatalf("Get hot-key = %q, %v", v, ok)
	}
	rows := tbl.Scan([]byte("hot-key"), []byte("hot-kez"), nil, 0)
	if len(rows) != 1 {
		t.Fatalf("hot-key appears %d times in scan", len(rows))
	}
}
