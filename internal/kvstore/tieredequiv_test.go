package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// tieredEquivStores builds two stores fed the identical deterministic
// workload, differing only in compaction policy: A runs the tiered
// partitioned scheduler, B the legacy monolithic rewrite.
func tieredEquivStores(t *testing.T) (tieredTbl, monoTbl *Table, tiered, mono *Store) {
	t.Helper()
	mk := func(monolithic bool) (*Store, *Table) {
		o := DefaultOptions()
		o.MemtableFlushBytes = 16 << 10
		o.RegionMaxBytes = 256 << 10
		o.MonolithicCompaction = monolithic
		s := Open(o)
		tbl, err := s.CreateTable("t")
		if err != nil {
			t.Fatal(err)
		}
		equivWorkload(tbl, 4321)
		s.Quiesce()
		return s, tbl
	}
	tiered, tieredTbl = mk(false)
	mono, monoTbl = mk(true)
	return tieredTbl, monoTbl, tiered, mono
}

// TestTieredMonolithicEquivalence pins the tentpole invariant: compaction
// policy is pure physical reorganization, so every externally observable
// result — full scans, bounded windows, filtered and limited scans, range
// batches, point gets — is byte-identical between the tiered and monolithic
// stores, and the cost-model counters the paper reports agree exactly.
func TestTieredMonolithicEquivalence(t *testing.T) {
	tieredTbl, monoTbl, ts, ms := tieredEquivStores(t)
	defer ts.Close()
	defer ms.Close()

	sameKVs := func(name string, a, b []KV) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows (tiered) vs %d (monolithic)", name, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
				t.Fatalf("%s: row %d differs: %q vs %q", name, i, a[i].Key, b[i].Key)
			}
		}
	}

	tBefore, mBefore := ts.Stats().Snapshot(), ms.Stats().Snapshot()

	// The six query fingerprints: full scan, bounded windows, limited scans,
	// filtered scan, multi-range batch, and point gets.
	sameKVs("full scan", tieredTbl.Scan(nil, nil, nil, 0), monoTbl.Scan(nil, nil, nil, 0))
	for i := 0; i < 50; i++ {
		lo := []byte(fmt.Sprintf("traj/%03d/", i*7%40))
		hi := []byte(fmt.Sprintf("traj/%03d/%08d", i*7%40, 2500))
		sameKVs("window", tieredTbl.Scan(lo, hi, nil, 0), monoTbl.Scan(lo, hi, nil, 0))
		sameKVs("limited", tieredTbl.Scan(lo, nil, nil, 25), monoTbl.Scan(lo, nil, nil, 25))
	}
	f := FilterFunc(func(k, v []byte) bool { return len(v) > 100 })
	sameKVs("filtered", tieredTbl.Scan(nil, nil, f, 0), monoTbl.Scan(nil, nil, f, 0))
	var ranges []KeyRange
	for i := 0; i < 40; i += 3 {
		ranges = append(ranges, KeyRange{
			Start: []byte(fmt.Sprintf("traj/%03d/", i)),
			End:   []byte(fmt.Sprintf("traj/%03d/%08d", i, 4000)),
		})
	}
	sameKVs("ranges", tieredTbl.ScanRanges(ranges, nil, 0), monoTbl.ScanRanges(ranges, nil, 0))
	sameKVs("ranges-filtered", tieredTbl.ScanRanges(ranges, f, 200), monoTbl.ScanRanges(ranges, f, 200))

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("traj/%03d/%08d", rng.Intn(50), rng.Intn(6000)))
		tv, tok := tieredTbl.Get(k)
		mv, mok := monoTbl.Get(k)
		if tok != mok || !bytes.Equal(tv, mv) {
			t.Fatalf("get %q: tiered (%q, %v) vs monolithic (%q, %v)", k, tv, tok, mv, mok)
		}
	}

	td, md := Diff(tBefore, ts.Stats().Snapshot()), Diff(mBefore, ms.Stats().Snapshot())
	if td.RowsReturned != md.RowsReturned || td.BytesReturned != md.BytesReturned ||
		td.Seeks != md.Seeks {
		t.Fatalf("cost counters diverge: tiered {returned %d bytes %d seeks %d} vs monolithic {%d %d %d}",
			td.RowsReturned, td.BytesReturned, td.Seeks,
			md.RowsReturned, md.BytesReturned, md.Seeks)
	}
}

// TestTieredRewritesLess pins the headline perf property at test scale: for
// the same ingest, the tiered policy compacts strictly fewer bytes than the
// monolithic one (the full-size ratio is measured by
// BenchmarkSustainedIngest).
func TestTieredRewritesLess(t *testing.T) {
	_, _, ts, ms := tieredEquivStores(t)
	defer ts.Close()
	defer ms.Close()
	tb := ts.Stats().BytesCompacted.Load()
	mb := ms.Stats().BytesCompacted.Load()
	if mb == 0 {
		t.Fatal("monolithic store never compacted — workload too small")
	}
	if tb >= mb {
		t.Fatalf("tiered compacted %d bytes, monolithic %d — no write-amp win", tb, mb)
	}
	t.Logf("bytes compacted: tiered=%d monolithic=%d (%.2fx less rewrite)",
		tb, mb, float64(mb)/float64(tb))
}

// TestPickCompaction exercises the policy function directly on synthetic
// run lists (pickCompaction reads only bytes and group).
func TestPickCompaction(t *testing.T) {
	mk := func(sizes ...int) []*sortedRun {
		rs := make([]*sortedRun, len(sizes))
		for i, b := range sizes {
			rs[i] = &sortedRun{bytes: b}
		}
		return rs
	}
	pol := compactPolicy{fanIn: 4, subRanges: 4}

	// Four same-tier runs (1100..1500 all sit in tier [1024,2048)): merge all four.
	if lo, hi, ok := pickCompaction(mk(1<<20, 1100, 1200, 1300, 1500), pol, 8); !ok || lo != 1 || hi != 5 {
		t.Fatalf("streak pick = [%d,%d) ok=%v, want [1,5) true", lo, hi, ok)
	}
	// Two streaks in different tiers: the smaller tier wins.
	if lo, hi, ok := pickCompaction(mk(1<<20, 1<<20, 1<<20, 1<<20, 100, 100, 100, 100), pol, 99); !ok || lo != 4 || hi != 8 {
		t.Fatalf("tier preference pick = [%d,%d) ok=%v, want [4,8) true", lo, hi, ok)
	}
	// Streak longer than fanIn: only the oldest fanIn runs merge.
	if lo, hi, ok := pickCompaction(mk(100, 100, 100, 100, 100, 100), pol, 99); !ok || lo != 0 || hi != 4 {
		t.Fatalf("fan-in bound pick = [%d,%d) ok=%v, want [0,4) true", lo, hi, ok)
	}
	// No streak, under maxRuns: fixpoint.
	if _, _, ok := pickCompaction(mk(1<<20, 1<<10, 1<<5), pol, 8); ok {
		t.Fatal("expected fixpoint for mixed tiers under maxRuns")
	}
	// No streak, over maxRuns: cheapest adjacent pair merges.
	if lo, hi, ok := pickCompaction(mk(1<<20, 1<<14, 1<<10, 1<<6), pol, 3); !ok || lo != 2 || hi != 4 {
		t.Fatalf("overflow pick = [%d,%d) ok=%v, want [2,4) true", lo, hi, ok)
	}
	// Fragments of one partitioned merge count as ONE logical run: a group of
	// four same-size fragments must not be re-merged with itself.
	frag := mk(100, 100, 100, 100)
	for _, r := range frag {
		r.group = 7
	}
	if _, _, ok := pickCompaction(frag, pol, 8); ok {
		t.Fatal("policy re-merged the fragments of one partitioned compaction")
	}
}

// TestTombstoneSurvivesMidTierMerge pins the tombstone rule: a delete whose
// run is merged ABOVE older data must keep shadowing it; only a bottom merge
// may drop tombstones.
func TestTombstoneSurvivesMidTierMerge(t *testing.T) {
	o := DefaultOptions()
	o.MemtableFlushBytes = 1 << 30 // keep the memtable out of the way; runs are installed by hand
	s := Open(o)
	defer s.Close()
	tbl, err := s.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	// Build runs by hand through the region internals: old value, then a
	// tombstone, then newer unrelated runs that merge above the bottom.
	r := tbl.regions[0]
	mkRun := func(k string, tomb bool, pad int) *sortedRun {
		e := entry{key: []byte(k), tomb: tomb}
		if !tomb {
			e.value = bytes.Repeat([]byte("v"), pad)
		}
		return newRunFromEntries(r.bcfg, []entry{e}, -1)
	}
	r.mu.Lock()
	r.runs = []*sortedRun{
		mkRun("key", false, 10), // oldest: the live value
		mkRun("key", true, 0),   // tombstone in a young run
		mkRun("other-a", false, 8),
		mkRun("other-b", false, 8),
	}
	// Merge the top three runs — a mid-tier window NOT touching runs[0].
	frags := r.compactGroup(r.runs, 1, 4, s.Stats(), false)
	r.runs = spliceRuns(r.runs, 1, 4, frags)
	r.mu.Unlock()

	if _, ok := tbl.Get([]byte("key")); ok {
		t.Fatal("tombstone dropped by a mid-tier merge: deleted key resurfaced")
	}
	// A bottom merge may (and does) drop it for good.
	r.mu.Lock()
	frags = r.compactGroup(r.runs, 0, len(r.runs), s.Stats(), false)
	r.runs = spliceRuns(r.runs, 0, len(r.runs), frags)
	total := 0
	for _, run := range r.runs {
		total += run.numEntries()
	}
	r.mu.Unlock()
	if _, ok := tbl.Get([]byte("key")); ok {
		t.Fatal("deleted key resurfaced after bottom merge")
	}
	if total != 2 {
		t.Fatalf("bottom merge kept %d entries, want 2 (tombstone and shadowed value gone)", total)
	}
}

// TestConcurrentSubCompactions hammers the flusher helper pool: many
// goroutines ingesting into many regions with tiny flush thresholds and
// aggressive sub-range partitioning, interleaved with table-wide compactions
// and scans. Run under -race this is the scheduler's data-race canary; the
// final full scan checks nothing was lost or duplicated.
func TestConcurrentSubCompactions(t *testing.T) {
	o := DefaultOptions()
	o.MemtableFlushBytes = 4 << 10
	o.RegionMaxBytes = 64 << 10
	o.CompactSubRanges = 8
	o.CompactFanIn = 2 // merge eagerly: maximum churn
	o.FlushWorkers = 4
	s := Open(o)
	defer s.Close()
	tbl, err := s.CreateTable("stress")
	if err != nil {
		t.Fatal(err)
	}

	const writers, rows = 8, 1500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var kvs []KV
			for i := 0; i < rows; i++ {
				k := []byte(fmt.Sprintf("w%02d/%08d", w, i))
				v := make([]byte, 30+rng.Intn(200))
				rng.Read(v)
				kvs = append(kvs, KV{Key: k, Value: v})
				if len(kvs) == 100 {
					tbl.MultiPut(kvs)
					kvs = kvs[:0]
				}
			}
			tbl.MultiPut(kvs)
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			s.CompactAll()
			_ = tbl.Scan(nil, nil, nil, 50)
		}
	}()
	wg.Wait()
	<-done
	s.Quiesce()

	got := tbl.Scan(nil, nil, nil, 0)
	if len(got) != writers*rows {
		t.Fatalf("scan returned %d rows, want %d", len(got), writers*rows)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("scan order violated at %d: %q >= %q", i, got[i-1].Key, got[i].Key)
		}
	}
}
