package kvstore

import "sync"

// flusher is the store's background flush/compaction service: a bounded set
// of workers that turn sealed memtables into sorted runs and trigger
// compactions when a region's run count crosses its threshold, so writers
// never block on flush or compaction.
//
// Counter totals (Flushes, Compactions) stay deterministic regardless of
// scheduling because every conversion site — here, splits, CompactAll —
// charges identically per immutable processed (see region.drainImmsLocked),
// and regions are processed FIFO under their flushMu.
type flusher struct {
	stats *Stats

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*region
	queued  map[*region]bool
	workers int
	max     int
	active  int
	closed  bool
}

func newFlusher(stats *Stats, workers int) *flusher {
	if workers < 1 {
		workers = 1
	}
	f := &flusher{stats: stats, queued: make(map[*region]bool), max: workers}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// enqueue schedules a region's pending immutables for flushing. Duplicate
// enqueues of an already-queued region coalesce. Never blocks. After close,
// enqueues are dropped: sealed memtables stay readable in place and any
// foreground path (split, CompactAll) still converts them with identical
// counting.
func (f *flusher) enqueue(r *region) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed || f.queued[r] {
		f.mu.Unlock()
		return
	}
	f.queued[r] = true
	f.queue = append(f.queue, r)
	if f.workers < f.max {
		f.workers++
		go f.worker()
	} else {
		// Broadcast, not Signal: drain waiters share the cond, and a
		// Signal landing on one of them would strand the queued region.
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

func (f *flusher) worker() {
	f.mu.Lock()
	for {
		for len(f.queue) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.queue) == 0 { // closed and drained
			f.workers--
			f.cond.Broadcast() // wake drain waiters
			f.mu.Unlock()
			return
		}
		r := f.queue[0]
		f.queue[0] = nil
		f.queue = f.queue[1:]
		// Deregister before processing: a seal that lands mid-flush
		// re-enqueues and the extra pass is a cheap no-op.
		delete(f.queued, r)
		f.active++
		f.mu.Unlock()

		r.flushMu.Lock()
		for r.flushOldestImm(f.stats) {
		}
		r.flushMu.Unlock()

		f.mu.Lock()
		f.active--
		if len(f.queue) == 0 && f.active == 0 {
			f.cond.Broadcast() // wake drain waiters
		}
	}
}

// drain blocks until every flush scheduled so far has completed (queue empty
// and no worker mid-region).
func (f *flusher) drain() {
	if f == nil {
		return
	}
	f.mu.Lock()
	for len(f.queue) > 0 || f.active > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// close drains pending work and stops the workers. Idempotent.
func (f *flusher) close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	for len(f.queue) > 0 || f.active > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}
