package kvstore

import "sync"

// flusher is the store's background flush/compaction service: a bounded set
// of workers that turn sealed memtables into sorted runs and drive the
// compaction policy when a region's run set needs merging, so writers never
// block on flush or compaction. The same workers double as a helper pool
// for key-range-partitioned sub-compactions (runSubTasks): a large merge is
// split into independent sub-range tasks that idle workers pick up, while
// the initiating owner always participates — so parallelism is opportunistic
// and progress never depends on a free worker.
//
// Counter totals (Flushes, Compactions, SubCompactions) stay deterministic
// regardless of scheduling because every conversion site — here, splits,
// CompactAll — charges identically per immutable processed (see
// region.drainImmsLocked), and regions are processed FIFO under their
// flushMu.
type flusher struct {
	stats *Stats

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*region
	queued  map[*region]bool
	help    []*compactSet // sub-compaction sets with unclaimed tasks
	workers int
	max     int
	active  int
	closed  bool
}

// compactSet is one partitioned merge's fan-out: tasks are claimed by index
// under flusher.mu (by helpers and by the owner alike), and the owner waits
// on wg so the set is fully executed before the run-set swap.
type compactSet struct {
	tasks []func()
	next  int
	wg    sync.WaitGroup
}

func newFlusher(stats *Stats, workers int) *flusher {
	if workers < 1 {
		workers = 1
	}
	f := &flusher{stats: stats, queued: make(map[*region]bool), max: workers}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// enqueue schedules a region's pending immutables for flushing. Duplicate
// enqueues of an already-queued region coalesce. Never blocks. After close,
// enqueues are dropped: sealed memtables stay readable in place and any
// foreground path (split, CompactAll) still converts them with identical
// counting.
func (f *flusher) enqueue(r *region) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed || f.queued[r] {
		f.mu.Unlock()
		return
	}
	f.queued[r] = true
	f.queue = append(f.queue, r)
	if f.workers < f.max {
		f.workers++
		go f.worker()
	} else {
		// Broadcast, not Signal: drain waiters share the cond, and a
		// Signal landing on one of them would strand the queued region.
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// claimHelp pops one sub-compaction task. Caller holds f.mu. Fully claimed
// sets are dropped from the front; a set with tasks remaining is rotated to
// the back, so concurrent compactions of different regions share the idle
// workers round-robin instead of the first set monopolizing them.
func (f *flusher) claimHelp() (*compactSet, func()) {
	for len(f.help) > 0 {
		set := f.help[0]
		if set.next >= len(set.tasks) {
			f.help = f.help[1:]
			continue
		}
		task := set.tasks[set.next]
		set.next++
		if set.next >= len(set.tasks) {
			f.help = f.help[1:]
		} else if len(f.help) > 1 {
			f.help = append(f.help[1:], set)
		}
		return set, task
	}
	return nil, nil
}

// runSubTasks executes a partitioned merge's sub-range tasks: they are
// published to the helper queue for idle workers, and the calling owner
// claims tasks too — the owner alone completes the set if every worker is
// busy, so a single-worker store (or a foreground caller holding region
// locks) never deadlocks. Returns only when every task has finished. A nil
// flusher runs the tasks inline.
func (f *flusher) runSubTasks(tasks []func()) {
	if f == nil || len(tasks) <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	set := &compactSet{tasks: tasks}
	set.wg.Add(len(tasks))
	f.mu.Lock()
	f.help = append(f.help, set)
	f.cond.Broadcast()
	f.mu.Unlock()
	for {
		f.mu.Lock()
		var task func()
		if set.next < len(set.tasks) {
			task = set.tasks[set.next]
			set.next++
		}
		f.mu.Unlock()
		if task == nil {
			break
		}
		task()
		set.wg.Done()
	}
	set.wg.Wait()
}

func (f *flusher) worker() {
	f.mu.Lock()
	for {
		for len(f.queue) == 0 && len(f.help) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.queue) == 0 && len(f.help) == 0 { // closed and drained
			f.workers--
			f.cond.Broadcast() // wake drain waiters
			f.mu.Unlock()
			return
		}
		// Flush queue first: keeping the put path unblocked beats merge
		// parallelism, and sub-compaction progress is guaranteed by the
		// owner regardless.
		if len(f.queue) > 0 {
			r := f.queue[0]
			f.queue[0] = nil
			f.queue = f.queue[1:]
			// Deregister before processing: a seal that lands mid-flush
			// re-enqueues and the extra pass is a cheap no-op.
			delete(f.queued, r)
			f.active++
			f.mu.Unlock()

			r.flushMu.Lock()
			for r.flushOldestImm(f.stats) {
			}
			r.flushMu.Unlock()

			f.mu.Lock()
			f.active--
			if len(f.queue) == 0 && f.active == 0 {
				f.cond.Broadcast() // wake drain waiters
			}
			continue
		}
		set, task := f.claimHelp()
		if task == nil {
			continue
		}
		f.active++
		f.mu.Unlock()
		task()
		set.wg.Done()
		f.mu.Lock()
		f.active--
		if len(f.queue) == 0 && f.active == 0 {
			f.cond.Broadcast() // wake drain waiters
		}
	}
}

// depth reports the queued work backlog: regions awaiting flush plus
// unclaimed sub-compaction tasks — the compaction queue depth gauge.
func (f *flusher) depth() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int64(len(f.queue))
	for _, set := range f.help {
		if rem := len(set.tasks) - set.next; rem > 0 {
			n += int64(rem)
		}
	}
	return n
}

// drain blocks until every flush scheduled so far has completed (queue empty
// and no worker mid-region).
func (f *flusher) drain() {
	if f == nil {
		return
	}
	f.mu.Lock()
	for len(f.queue) > 0 || f.active > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// close drains pending work and stops the workers. Idempotent.
func (f *flusher) close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	for len(f.queue) > 0 || f.active > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}
