package kvstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestWorkPoolBound submits far more tasks than the pool width and checks
// every task runs while the concurrency high-water mark stays within the
// bound — scan and write jobs mixed through the same pool.
func TestWorkPoolBound(t *testing.T) {
	const width, tasks = 3, 200
	p := newWorkPool(width)
	var wg sync.WaitGroup
	ranScan := make([]scanTask, tasks)
	ranWrite := make([]writeTask, tasks)
	scanRun := func(tk *scanTask) { tk.failed = true } // reuse a field as a "ran" marker
	writeRun := func(tk *writeTask) { tk.failed = true }
	wg.Add(2 * tasks)
	for i := range ranScan {
		p.submit(poolJob{scan: scanRun, st: &ranScan[i], wg: &wg})
		p.submit(poolJob{write: writeRun, wt: &ranWrite[i], wg: &wg})
	}
	wg.Wait()
	for i := range ranScan {
		if !ranScan[i].failed {
			t.Fatalf("scan task %d never ran", i)
		}
		if !ranWrite[i].failed {
			t.Fatalf("write task %d never ran", i)
		}
	}
	if got := p.maxObservedRunning(); got > width {
		t.Fatalf("maxObservedRunning = %d, want <= %d", got, width)
	}
	p.close()

	// Post-close submissions degrade to plain goroutines but still run.
	done := make(chan struct{})
	var wg2 sync.WaitGroup
	wg2.Add(1)
	p.submit(poolJob{scan: func(*scanTask) { close(done) }, st: new(scanTask), wg: &wg2})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-close task never ran")
	}
}

// TestScanPoolStress drives the shared executor the way a loaded server
// does: many tables on one store, concurrent queries with mixed deadlines
// and fault injection, writers running alongside. Run under -race by `make
// race`. It asserts that results never bleed across queries or tables (each
// row's value must be the one its key's table wrote) and that the
// store-wide Parallelism bound holds.
func TestScanPoolStress(t *testing.T) {
	opts := NoNetworkOptions()
	opts.Parallelism = 4
	opts.RegionMaxBytes = 16 << 10
	opts.MemtableFlushBytes = 2 << 10
	opts.MaxRunsPerRegion = 3
	opts.Fault = FaultConfig{Seed: 11, PFailRPC: 0.2, UnavailableRPCsAfterSplit: 1}
	opts.Retry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Multiplier: 2}
	store := Open(opts)
	defer store.Close()

	const numTables, rowsPerTable = 6, 1500
	tables := make([]*Table, numTables)
	for ti := range tables {
		tbl, err := store.CreateTable(fmt.Sprintf("stress-%d", ti))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rowsPerTable; i++ {
			tbl.Put(stressKey(ti, i), stressVal(ti, i))
		}
		tables[ti] = tbl
	}

	checkRows := func(ti int, kvs []KV) {
		t.Helper()
		prev := []byte(nil)
		for _, kv := range kvs {
			if prev != nil && string(kv.Key) < string(prev) {
				t.Errorf("table %d: keys out of order: %q after %q", ti, kv.Key, prev)
				return
			}
			prev = kv.Key
			var gotT, gotI int
			if _, err := fmt.Sscanf(string(kv.Key), "t%02d-key-%05d", &gotT, &gotI); err != nil || gotT != ti {
				t.Errorf("table %d: foreign key %q leaked into results", ti, kv.Key)
				return
			}
			if want := stressVal(ti, gotI); string(kv.Value) != string(want) {
				t.Errorf("table %d key %q: value %q, want %q", ti, kv.Key, kv.Value, want)
				return
			}
		}
	}

	var wg sync.WaitGroup
	// Writers rewrite existing rows with their unchanged values: real lock
	// contention and flush/compaction churn without perturbing what readers
	// must observe.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := w; i < rowsPerTable; i += 7 {
					tables[w].Put(stressKey(w, i), stressVal(w, i))
				}
			}
		}()
	}
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ti := g % numTables
			tbl := tables[ti]
			for iter := 0; iter < 25; iter++ {
				switch iter % 4 {
				case 0:
					// Trusted full scan: must be complete and exact.
					kvs := tbl.Scan(nil, nil, nil, 0)
					if len(kvs) != rowsPerTable {
						t.Errorf("table %d: full scan returned %d rows, want %d", ti, len(kvs), rowsPerTable)
					}
					checkRows(ti, kvs)
				case 1:
					// Fallible multi-range scan: may be partial under faults,
					// but every surviving row must be exact.
					// Sorted, non-overlapping windows (the ordering contract
					// of ScanRangesCtx).
					var ranges []KeyRange
					for r := 0; r < 8; r++ {
						lo := (iter*89)%150 + r*180
						ranges = append(ranges, KeyRange{Start: stressKey(ti, lo), End: stressKey(ti, lo+40)})
					}
					kvs, _, err := tbl.ScanRangesCtx(context.Background(), ranges, nil, 0)
					if err != nil {
						t.Errorf("table %d: ScanRangesCtx: %v", ti, err)
					}
					checkRows(ti, kvs)
				case 2:
					// Tight deadline: partial or empty results are fine, rows
					// must still be exact and the call must not wedge.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+g%3)*time.Millisecond)
					kvs, _, err := tbl.ScanCtx(ctx, nil, nil, nil, 200)
					cancel()
					if err != nil {
						t.Errorf("table %d: ScanCtx: %v", ti, err)
					}
					checkRows(ti, kvs)
				default:
					// Filtered + limited scan through the fallible path.
					filter := FilterFunc(func(key, _ []byte) bool { return key[len(key)-1]%2 == 0 })
					kvs, _, err := tbl.ScanRangesCtx(context.Background(),
						[]KeyRange{{Start: stressKey(ti, 0), End: stressKey(ti, rowsPerTable)}}, filter, 100)
					if err != nil {
						t.Errorf("table %d: filtered ScanRangesCtx: %v", ti, err)
					}
					if len(kvs) > 100 {
						t.Errorf("table %d: limit 100 returned %d rows", ti, len(kvs))
					}
					checkRows(ti, kvs)
				}
			}
		}()
	}
	wg.Wait()

	if got := store.pool.maxObservedRunning(); got > int64(opts.Parallelism) {
		t.Fatalf("work pool ran %d tasks concurrently, Parallelism = %d", got, opts.Parallelism)
	}
}

func stressKey(ti, i int) []byte { return []byte(fmt.Sprintf("t%02d-key-%05d", ti, i)) }

func stressVal(ti, i int) []byte { return []byte(fmt.Sprintf("value-%02d-%05d", ti, i)) }
