package kvstore

import (
	"fmt"
	"testing"
)

func benchTable(b *testing.B, rows int) *Table {
	b.Helper()
	s := Open(NoNetworkOptions())
	tbl, _ := s.CreateTable("t")
	for i := 0; i < rows; i++ {
		tbl.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("value-%08d", i)))
	}
	s.CompactAll()
	return tbl
}

func BenchmarkPut(b *testing.B) {
	s := Open(NoNetworkOptions())
	tbl, _ := s.CreateTable("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Put([]byte(fmt.Sprintf("key-%012d", i)), []byte("payload-payload-payload"))
	}
}

func BenchmarkGet(b *testing.B) {
	tbl := benchTable(b, 100_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i%100_000))
		if _, ok := tbl.Get(key); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkScan1k(b *testing.B) {
	tbl := benchTable(b, 100_000)
	start := []byte("key-00050000")
	end := []byte("key-00051000")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := tbl.Scan(start, end, nil, 0)
		if len(out) != 1000 {
			b.Fatalf("scan returned %d", len(out))
		}
	}
}

func BenchmarkScanRanges100Windows(b *testing.B) {
	tbl := benchTable(b, 100_000)
	ranges := make([]KeyRange, 100)
	for i := range ranges {
		lo := fmt.Sprintf("key-%08d", i*1000)
		hi := fmt.Sprintf("key-%08d", i*1000+10)
		ranges[i] = KeyRange{Start: []byte(lo), End: []byte(hi)}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := tbl.ScanRanges(ranges, nil, 0)
		if len(out) != 1000 {
			b.Fatalf("scan returned %d", len(out))
		}
	}
}

func BenchmarkScanFiltered(b *testing.B) {
	tbl := benchTable(b, 50_000)
	filter := FilterFunc(func(k, v []byte) bool { return k[len(k)-1] == '0' })
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tbl.Scan(nil, nil, filter, 0)
	}
}
