package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// faultedOptions returns a no-network option set with the given fault model
// and a fast deterministic retry policy.
func faultedOptions(fc FaultConfig) Options {
	o := NoNetworkOptions()
	o.Fault = fc
	o.Retry = RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		Multiplier:  2,
		JitterFrac:  0.2,
	}
	return o
}

func loadSequential(t *testing.T, s *Store, n int) *Table {
	t.Helper()
	tbl := s.OpenTable("t")
	for i := 0; i < n; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%06d", i)))
	}
	return tbl
}

func TestFaultInjectionDisabledByDefault(t *testing.T) {
	s := Open(NoNetworkOptions())
	if s.FaultsEnabled() {
		t.Fatal("zero FaultConfig must disable injection")
	}
	tbl := loadSequential(t, s, 100)
	rows, status, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0)
	if err != nil || status.Partial || status.RetriedRPCs != 0 {
		t.Fatalf("fault-free scan: err=%v status=%+v", err, status)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows, want 100", len(rows))
	}
}

func TestScanRetriesConvergeToFullResult(t *testing.T) {
	o := faultedOptions(FaultConfig{Seed: 42, PFailRPC: 0.3})
	o.Retry.MaxAttempts = 10   // 0.3^10: retries always win
	o.RegionMaxBytes = 4 << 10 // force many regions
	o.MemtableFlushBytes = 1 << 10
	s := Open(o)
	tbl := loadSequential(t, s, 3000)
	if tbl.RegionCount() < 2 {
		t.Fatalf("want several regions, got %d", tbl.RegionCount())
	}

	started := time.Now()
	rows, status, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0)
	elapsed := time.Since(started)
	if err != nil {
		t.Fatal(err)
	}
	if status.Partial {
		t.Fatalf("retries should mask a 30%% fault rate with 5 attempts: %+v", status)
	}
	if len(rows) != 3000 {
		t.Fatalf("got %d rows, want 3000", len(rows))
	}
	if status.RetriedRPCs == 0 {
		t.Fatal("expected at least one retry at a 30% fault rate")
	}
	// Backoff is analytic: dozens of 10ms+ backoffs must not cost real time.
	if elapsed > 2*time.Second {
		t.Fatalf("scan slept for real backoff time: %v", elapsed)
	}
	if got := s.Stats().Snapshot(); got.SimIONanos == 0 || got.RetriedRPCs != status.RetriedRPCs {
		t.Fatalf("backoff not charged into stats: %+v", got)
	}
}

func TestScanRetriesAreDeterministic(t *testing.T) {
	run := func() (int64, int) {
		o := faultedOptions(FaultConfig{Seed: 7, PFailRPC: 0.25})
		o.RegionMaxBytes = 4 << 10
		o.MemtableFlushBytes = 1 << 10
		s := Open(o)
		tbl := loadSequential(t, s, 2000)
		_, status, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return status.RetriedRPCs, status.FailedRegions
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 || f1 != f2 {
		t.Fatalf("same seed produced different fault schedules: (%d,%d) vs (%d,%d)", r1, f1, r2, f2)
	}
	if r1 == 0 {
		t.Fatal("expected retries at a 25% fault rate")
	}
}

func TestScanDeadlinePartialResults(t *testing.T) {
	// Aggressive faults + a deadline shorter than one backoff: failed
	// regions cannot recover in time, but healthy regions still answer.
	o := faultedOptions(FaultConfig{Seed: 3, PFailRPC: 0.5})
	o.Retry.BaseBackoff = 200 * time.Millisecond
	o.RegionMaxBytes = 4 << 10
	o.MemtableFlushBytes = 1 << 10
	s := Open(o)
	tbl := loadSequential(t, s, 3000)
	if tbl.RegionCount() < 4 {
		t.Fatalf("want >=4 regions, got %d", tbl.RegionCount())
	}

	ctx, cancel := context.WithTimeout(WithQueryBudget(context.Background()), 50*time.Millisecond)
	defer cancel()
	started := time.Now()
	rows, status, err := tbl.ScanRangesCtx(ctx, []KeyRange{{}}, nil, 0)
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not error: %v", err)
	}
	if time.Since(started) > time.Second {
		t.Fatal("deadline handling slept for real")
	}
	if !status.Partial {
		t.Fatalf("expected partial result, got %+v with %d rows", status, len(rows))
	}
	if len(rows) == 0 {
		t.Fatal("expected non-empty partial result: healthy regions should still answer")
	}
	if len(rows) >= 3000 {
		t.Fatal("partial result should be missing the failed regions' rows")
	}
	snap := s.Stats().Snapshot()
	if snap.PartialScans == 0 || snap.FailedRegions == 0 {
		t.Fatalf("partial scan not counted: %+v", snap)
	}
}

func TestScanExhaustedRetriesPartial(t *testing.T) {
	o := faultedOptions(FaultConfig{Seed: 11, PFailRPC: 1})
	o.Retry.MaxAttempts = 3
	s := Open(o)
	tbl := loadSequential(t, s, 50)
	rows, status, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Partial || status.FailedRegions == 0 {
		t.Fatalf("100%% fault rate with 3 attempts must fail the region: %+v (%d rows)", status, len(rows))
	}
}

func TestScanCancelReturnsError(t *testing.T) {
	s := Open(NoNetworkOptions())
	tbl := loadSequential(t, s, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := tbl.ScanRangesCtx(ctx, []KeyRange{{}}, nil, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRegionUnavailabilityAfterSplitIsRetried(t *testing.T) {
	o := faultedOptions(FaultConfig{Seed: 1, UnavailableRPCsAfterSplit: 2})
	o.RegionMaxBytes = 4 << 10
	o.MemtableFlushBytes = 1 << 10
	s := Open(o)
	tbl := loadSequential(t, s, 3000)
	if s.Stats().Snapshot().RegionSplits == 0 {
		t.Fatal("load should have split regions")
	}
	rows, status, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status.Partial {
		t.Fatalf("2-RPC unavailability window must drain within 5 attempts: %+v", status)
	}
	if len(rows) != 3000 {
		t.Fatalf("got %d rows, want 3000", len(rows))
	}
	if status.RetriedRPCs == 0 {
		t.Fatal("expected retries against freshly split regions")
	}
}

func TestGetPutCtxFallible(t *testing.T) {
	o := faultedOptions(FaultConfig{Seed: 5, PFailRPC: 0.999})
	o.Retry.MaxAttempts = 3
	s := Open(o)
	tbl := s.OpenTable("t")

	err := tbl.PutCtx(context.Background(), []byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("PutCtx should fail at 99.9% fault rate with 3 attempts")
	}
	if !errors.Is(err, ErrRetriesExhausted) || !IsRetryable(errors.Unwrap(err)) && !errors.Is(err, ErrTransientRPC) {
		t.Fatalf("want typed retryable exhaustion, got %v", err)
	}

	// The same store's trusted path still works, and GetCtx on a healthy
	// store succeeds.
	tbl.Put([]byte("k"), []byte("v"))
	s2 := Open(faultedOptions(FaultConfig{Seed: 5, PFailRPC: 0.2}))
	tbl2 := s2.OpenTable("t")
	tbl2.Put([]byte("a"), []byte("1"))
	v, ok, err := tbl2.GetCtx(context.Background(), []byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("GetCtx = %q ok=%v err=%v", v, ok, err)
	}
}

func TestGetCtxDeadline(t *testing.T) {
	o := faultedOptions(FaultConfig{Seed: 9, PFailRPC: 1})
	o.Retry.BaseBackoff = time.Hour // one backoff blows any deadline
	s := Open(o)
	tbl := s.OpenTable("t")
	tbl.Put([]byte("k"), []byte("v"))
	ctx, cancel := context.WithTimeout(WithQueryBudget(context.Background()), 100*time.Millisecond)
	defer cancel()
	started := time.Now()
	_, _, err := tbl.GetCtx(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(started) > time.Second {
		t.Fatal("analytic deadline must not sleep")
	}
}

func TestSlowNodeChargesMoreSimTime(t *testing.T) {
	run := func(slow map[int]float64) int64 {
		o := NoNetworkOptions()
		o.RPCLatencyMicros = 100
		o.Fault = FaultConfig{Seed: 2, SlowNodes: slow}
		s := Open(o)
		tbl := loadSequential(t, s, 200)
		before := s.Stats().Snapshot()
		if _, _, err := tbl.ScanRangesCtx(context.Background(), []KeyRange{{}}, nil, 0); err != nil {
			t.Fatal(err)
		}
		return Diff(before, s.Stats().Snapshot()).SimIONanos
	}
	healthy := run(map[int]float64{})
	// A single table starts with one region on node 0; slow it 10x.
	slowed := run(map[int]float64{0: 10})
	if slowed < healthy*5 {
		t.Fatalf("slow node not charged: healthy=%d slowed=%d", healthy, slowed)
	}
}

func TestRetryPolicyBackoffBoundsAndJitter(t *testing.T) {
	p := DefaultRetryPolicy()
	if d := p.backoff(1, 0.5); d != p.BaseBackoff {
		t.Fatalf("first backoff = %v, want base %v", d, p.BaseBackoff)
	}
	if d := p.backoff(50, 0.5); d != p.MaxBackoff {
		t.Fatalf("late backoff = %v, want cap %v", d, p.MaxBackoff)
	}
	lo := p.backoff(3, 0)
	hi := p.backoff(3, 0.999)
	if lo >= hi {
		t.Fatalf("jitter not applied: lo=%v hi=%v", lo, hi)
	}
}
