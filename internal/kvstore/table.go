package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tman-db/tman/internal/obs"
)

// KV is a key-value row returned by scans.
type KV struct {
	Key   []byte
	Value []byte
}

// KeyRange is a half-open scan range [Start, End). A nil Start means the
// beginning of the table; a nil End means the end of the table.
type KeyRange struct {
	Start, End []byte
}

// Table is a range-partitioned ordered map. Regions split automatically as
// the table grows; all rows live in exactly one region at a time.
type Table struct {
	name  string
	store *Store

	mu      sync.RWMutex
	regions []*region // ordered by startKey; regions[0].startKey == nil

	// bcfg is the block config every region of this table builds runs
	// with. It starts as the store-wide config and diverges only when
	// SetFenceExtractor installs a table-specific fence extractor; splits
	// and replication followers inherit it so fences survive topology
	// changes.
	bcfg *blockConfig
}

func newTable(name string, store *Store) *Table {
	t := &Table{name: name, store: store, bcfg: store.bcfg}
	t.regions = []*region{newRegion(store.nextRegionID(), nil, nil, store.nextNode(), store.opts.MemtableFlushBytes, store.opts.MaxRunsPerRegion, store.compactPol(), store.fl, t.bcfg)}
	t.adoptRegion(t.regions[0])
	store.initReplication(t.regions[0])
	return t
}

// adoptRegion stamps a freshly built region with this table's identity and
// the store's background-job recorder.
func (t *Table) adoptRegion(r *region) {
	r.tname = t.name
	r.jobs = t.store.jobs
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetFenceExtractor installs the per-block fence extractor for this table:
// from the next flush or compaction on, every run block carries a fence
// (time range + bounding box) summarizing its rows, and scans whose filter
// implements FenceFilter prune blocks against those fences before fetching
// or decoding them. Existing runs are untouched — they simply carry no
// fences and keep being inspected row-by-row until rewritten.
//
// The call is a no-op when the store runs the legacy run format or was
// opened with DisableBlockFences. It is intended for table setup, before
// concurrent load, and applies to all current and future regions
// (including replication followers and split children).
func (t *Table) SetFenceExtractor(f FenceExtractor) {
	if t.store.bcfg == nil || t.store.opts.DisableBlockFences || f == nil {
		return
	}
	cfg := *t.store.bcfg // shares cache and stats; diverges only in fence
	cfg.fence = f
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bcfg = &cfg
	for _, r := range t.regions {
		r.mu.Lock()
		r.bcfg = t.bcfg
		r.mu.Unlock()
		t.store.setFollowerBlockConfig(r, t.bcfg)
	}
}

// regionForKey returns the region owning key. Caller must hold t.mu (R or W).
func (t *Table) regionForKey(key []byte) *region {
	// Binary search: last region whose startKey <= key.
	i := sort.Search(len(t.regions), func(i int) bool {
		r := t.regions[i]
		return r.startKey != nil && bytes.Compare(r.startKey, key) > 0
	})
	return t.regions[i-1]
}

// PreSplit carves an empty table into len(keys)+1 regions at the given
// strictly ascending split keys — the bulk-load pre-split of an HBase
// deployment, letting a batched ingest fan out across regions from the
// first row instead of waiting for threshold-driven splits. It does not
// count toward the RegionSplits stat (nothing moved) and fails on a table
// that already holds data or was already split.
func (t *Table) PreSplit(keys [][]byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.regions) != 1 {
		return errors.New("kvstore: PreSplit on an already-split table")
	}
	if t.regions[0].size() != 0 {
		return errors.New("kvstore: PreSplit on a non-empty table")
	}
	for i, k := range keys {
		if len(k) == 0 {
			return errors.New("kvstore: PreSplit keys must be non-empty")
		}
		if i > 0 && bytes.Compare(keys[i-1], k) >= 0 {
			return errors.New("kvstore: PreSplit keys must be strictly ascending")
		}
	}
	if len(keys) == 0 {
		return nil
	}
	regions := make([]*region, 0, len(keys)+1)
	var start []byte
	for _, k := range keys {
		regions = append(regions, newRegion(t.store.nextRegionID(), start, k,
			t.store.nextNode(), t.store.opts.MemtableFlushBytes, t.store.opts.MaxRunsPerRegion, t.store.compactPol(), t.store.fl, t.bcfg))
		start = k
	}
	regions = append(regions, newRegion(t.store.nextRegionID(), start, nil,
		t.store.nextNode(), t.store.opts.MemtableFlushBytes, t.store.opts.MaxRunsPerRegion, t.store.compactPol(), t.store.fl, t.bcfg))
	for _, r := range regions {
		t.adoptRegion(r)
		t.store.initReplication(r)
	}
	t.regions = regions
	return nil
}

// Put inserts or replaces a row. Key and value are retained by the table;
// callers must not mutate them afterwards. Put models a trusted in-process
// write (WAL replay, snapshot load, index rewrites) and never fails; client
// writes that should observe cluster faults go through PutCtx.
func (t *Table) Put(key, value []byte) {
	t.store.logMutation(opPut, t.name, key, value)
	t.mu.RLock()
	r := t.regionForKey(key)
	wb := r.put(key, value)
	t.mu.RUnlock()
	t.store.stats.Puts.Add(1)
	if wb >= int64(t.store.opts.RegionMaxBytes) {
		t.maybeSplit(r)
	}
}

// PutCtx is the client-RPC form of Put: with fault injection enabled the
// write may be retried per the store's RetryPolicy and fails with a typed
// error once retries or the context deadline are exhausted. The region is
// resolved once and the retry loop and the write run under the same table
// lock acquisition, so the write cannot land on a different region than the
// one that served the RPC.
func (t *Table) PutCtx(ctx context.Context, key, value []byte) error {
	t.mu.RLock()
	r := t.regionForKey(key)
	if err := t.rpcWithRetry(ctx, r); err != nil {
		t.mu.RUnlock()
		return err
	}
	t.store.logMutation(opPut, t.name, key, value)
	wb := r.put(key, value)
	t.mu.RUnlock()
	t.store.stats.Puts.Add(1)
	if wb >= int64(t.store.opts.RegionMaxBytes) {
		t.maybeSplit(r)
	}
	return nil
}

// Delete removes a row (writes a tombstone).
func (t *Table) Delete(key []byte) {
	t.store.logMutation(opDelete, t.name, key, nil)
	t.mu.RLock()
	r := t.regionForKey(key)
	r.delete(key)
	t.mu.RUnlock()
	t.store.stats.Deletes.Add(1)
}

// Get returns the value stored under key (trusted in-process path).
func (t *Table) Get(key []byte) (value []byte, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.regionForKey(key).get(key)
}

// GetCtx is the client-RPC form of Get: fallible under fault injection,
// deadline-aware, retried per the store's RetryPolicy.
func (t *Table) GetCtx(ctx context.Context, key []byte) (value []byte, ok bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r := t.regionForKey(key)
	if err := t.rpcWithRetry(ctx, r); err != nil {
		return nil, false, err
	}
	v, ok := r.get(key)
	return v, ok, nil
}

// rpcWithRetry runs the client retry loop for one point RPC against a
// region: injected faults are retried with analytic exponential backoff
// (charged into SimIONanos and the query budget, never slept) until the
// policy or the context deadline gives up.
func (t *Table) rpcWithRetry(ctx context.Context, r *region) error {
	in := t.store.injector
	pol := t.store.opts.Retry
	budget := budgetFrom(ctx)
	deadline, hasDL := ctx.Deadline()
	var local time.Duration
	charge := func() {
		if local > 0 {
			t.store.stats.SimIONanos.Add(int64(local))
			budget.Charge(local)
		}
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			charge()
			return err
		}
		if hasDL && !time.Now().Add(budget.SimElapsed()+local).Before(deadline) {
			charge()
			return context.DeadlineExceeded
		}
		var err error
		if !t.store.nodeAlive(r.nodeID()) {
			t.store.stats.FailedRPCs.Add(1)
			err = ErrNodeDead
		} else {
			err = in.attempt(r, &t.store.stats)
		}
		if err == nil {
			charge()
			return nil
		}
		if attempt >= pol.MaxAttempts {
			charge()
			return fmt.Errorf("kvstore: %d attempts on table %q: %w", attempt, t.name, errors.Join(ErrRetriesExhausted, err))
		}
		b := pol.backoff(attempt, unitOrHalf(in, r))
		local += b
		t.store.stats.BackoffNanos.Add(int64(b))
		t.store.stats.RetriedRPCs.Add(1)
	}
}

// unitOrHalf samples the deterministic jitter unit, or the midpoint when no
// injector is configured (node kills can force retries without one).
func unitOrHalf(in *faultInjector, r *region) float64 {
	if in == nil {
		return 0.5
	}
	return in.unit(r.id, r.faultSeq.Add(1))
}

// maybeSplit splits region r in two if it is still oversized. The table
// write lock excludes scans and other writers for the duration. The split
// decision runs on the monotonic ingest metric (region.writeBytes), which is
// a pure function of the write sequence — never of background-flush timing —
// so region geometry is deterministic for a fixed workload.
func (t *Table) maybeSplit(r *region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Region may have been split by a racing writer; confirm it's still ours.
	idx := -1
	for i, cand := range t.regions {
		if cand == r {
			idx = i
			break
		}
	}
	if idx < 0 || r.writeBytes.Load() < int64(t.store.opts.RegionMaxBytes) {
		return
	}
	job := t.store.jobs.Begin("split", t.name, r.id)
	defer t.store.jobs.End(job)
	entries, median := r.splitEntries(&t.store.stats)
	if median == nil {
		// Nothing (or a single row) survives compaction; re-seed the ingest
		// metric from actual content so puts don't re-attempt every time.
		r.writeBytes.Store(int64(r.size()))
		return
	}
	cut := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, median) >= 0
	})
	if cut == 0 || cut == len(entries) {
		// Degenerate key distribution (everything on one side): same
		// re-seed so an overwrite-heavy region doesn't loop on splitting.
		r.writeBytes.Store(entriesCharge(entries))
		return
	}
	left := newRegion(t.store.nextRegionID(), r.startKey, median, r.nodeID(), r.flushBytes, r.maxRuns, r.cpol, t.store.fl, t.bcfg)
	right := newRegion(t.store.nextRegionID(), median, r.endKey, t.store.nextNode(), r.flushBytes, r.maxRuns, r.cpol, t.store.fl, t.bcfg)
	t.adoptRegion(left)
	t.adoptRegion(right)
	// entriesCharge walks each side once anyway; derive the raw byte
	// totals from it instead of recounting inside the run constructor.
	leftCharge, rightCharge := entriesCharge(entries[:cut]), entriesCharge(entries[cut:])
	left.runs = []*sortedRun{newRunFromEntries(t.bcfg, entries[:cut], int(leftCharge)-cut*memEntryOverhead)}
	right.runs = []*sortedRun{newRunFromEntries(t.bcfg, entries[cut:], int(rightCharge)-(len(entries)-cut)*memEntryOverhead)}
	left.writeBytes.Store(leftCharge)
	right.writeBytes.Store(rightCharge)
	job.AddBytesRead(leftCharge + rightCharge)
	job.AddBytesWritten(int64(left.runs[0].bytes + right.runs[0].bytes))
	job.AddItems(int64(len(entries)))
	// Children get fresh replication groups seeded from their runs; the
	// parent's group (and its followers) is dropped with the parent.
	t.store.initReplication(left)
	t.store.initReplication(right)
	// Freshly moved regions are briefly unavailable to clients, as in HBase.
	t.store.injector.markUnavailable(left)
	t.store.injector.markUnavailable(right)
	t.regions = append(t.regions[:idx], append([]*region{left, right}, t.regions[idx+1:]...)...)
	t.store.stats.RegionSplits.Add(1)
}

// writeTask is one region's share of a MultiPut: the contiguous key-sorted
// row sub-slice owned by that region, plus the slots the worker writes its
// outcome into. Tasks are held in a per-call slice, so each worker writes
// only to its own element and no synchronization beyond the WaitGroup is
// needed.
type writeTask struct {
	reg    *region
	rows   []KV
	wb     int64 // region ingest volume after apply (split check)
	cost   time.Duration
	failed bool
}

// runWriteTask applies one region batch and charges the analytic cost model
// one batch RPC — the HBase batch-mutate analogue: latency is paid once per
// region, transfer and disk once per byte.
func (t *Table) runWriteTask(tk *writeTask) {
	tk.wb = tk.reg.putBatch(tk.rows)
	t.store.stats.RPCs.Add(1)
	rpcLatency := time.Duration(t.store.opts.RPCLatencyMicros) * time.Microsecond
	io := rpcLatency
	if t.store.opts.TransferMBps > 0 || t.store.opts.DiskMBps > 0 {
		var bytes int
		for i := range tk.rows {
			bytes += len(tk.rows[i].Key) + len(tk.rows[i].Value)
		}
		if mbps := t.store.opts.TransferMBps; mbps > 0 {
			io += time.Duration(float64(bytes) / float64(mbps) * float64(time.Second) / (1 << 20))
		}
		if mbps := t.store.opts.DiskMBps; mbps > 0 {
			io += time.Duration(float64(bytes) / float64(mbps) * float64(time.Second) / (1 << 20))
		}
	}
	if scale := t.store.injector.latencyScale(tk.reg.nodeID()); scale != 1 {
		io = time.Duration(float64(io) * scale)
	}
	tk.cost += io
}

// sortRowsStable orders a batch by key, keeping input order among
// duplicates (later wins at apply time). An index array sorted with the
// unstable pdqsort and the original position as tie-breaker is equivalent
// to a stable sort of the rows, and profiles far cheaper than the rotation
// heavy in-place stable merge (or the reflection-based sort.SliceStable).
func sortRowsStable(rows []KV) {
	idx := make([]int32, len(rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if c := bytes.Compare(rows[a].Key, rows[b].Key); c != 0 {
			return c
		}
		return int(a - b)
	})
	out := make([]KV, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	copy(rows, out)
}

// groupWriteTasks carves key-sorted rows into per-region contiguous
// sub-slices. Caller must hold t.mu (R or W).
func (t *Table) groupWriteTasks(rows []KV) []writeTask {
	tasks := make([]writeTask, 0, 4)
	i := 0
	for i < len(rows) {
		r := t.regionForKey(rows[i].Key)
		j := len(rows)
		if r.endKey != nil {
			j = i + sort.Search(len(rows)-i, func(k int) bool {
				return bytes.Compare(rows[i+k].Key, r.endKey) >= 0
			})
		}
		tasks = append(tasks, writeTask{reg: r, rows: rows[i:j]})
		i = j
	}
	return tasks
}

// finishMultiPut runs the shared post-apply accounting: per-row Puts, the
// simulated I/O makespan over the region batches (parallel tasks overlap up
// to the parallelism bound), and the split checks for regions that crossed
// the threshold.
func (t *Table) finishMultiPut(tasks []writeTask, applied int, budget *QueryBudget) {
	t.store.stats.Puts.Add(int64(applied))
	var total, maxCost time.Duration
	for i := range tasks {
		c := tasks[i].cost
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	par := t.store.opts.Parallelism
	if par < 1 {
		par = 1
	}
	makespan := total / time.Duration(par)
	if maxCost > makespan {
		makespan = maxCost
	}
	t.store.stats.SimIONanos.Add(int64(makespan))
	budget.Charge(makespan)
	for i := range tasks {
		if !tasks[i].failed && tasks[i].wb >= int64(t.store.opts.RegionMaxBytes) {
			t.maybeSplit(tasks[i].reg)
		}
	}
}

// MultiPut inserts or replaces a batch of rows in one operation: rows are
// sorted and grouped into per-region contiguous batches, the WAL receives
// the whole batch as a single group-commit record, and the region batches
// apply in parallel on the store's shared worker pool, each charged one
// batch RPC by the cost model — the HBase batch-mutate shape. Rows are
// sorted in place; among duplicate keys the later row wins. Keys and values
// are retained by the table; callers must not mutate them afterwards.
//
// MultiPut models a trusted in-process write (WAL replay, bulk index
// rebuilds) and never fails; client batches that should observe cluster
// faults go through MultiPutCtx.
func (t *Table) MultiPut(rows []KV) {
	if len(rows) == 0 {
		return
	}
	sortRowsStable(rows)
	t.store.logBatch(t.name, rows)
	t.mu.RLock()
	tasks := t.groupWriteTasks(rows)
	if len(tasks) == 1 {
		// Single-region batch: apply inline, skipping the pool handoff.
		t.runWriteTask(&tasks[0])
	} else {
		var wg sync.WaitGroup
		run := func(tk *writeTask) { t.runWriteTask(tk) }
		wg.Add(len(tasks))
		for i := range tasks {
			t.store.pool.submit(poolJob{write: run, wt: &tasks[i], wg: &wg})
		}
		wg.Wait()
	}
	t.mu.RUnlock()
	t.finishMultiPut(tasks, len(rows), nil)
}

// MultiPutReport describes the per-region outcome of a MultiPutCtx.
type MultiPutReport struct {
	// Regions is the number of region batches the rows grouped into.
	Regions int
	// Applied and Failed count rows: Applied rows are durable and visible,
	// Failed rows (from regions whose retries or deadline ran out) were not
	// written at all — a region batch applies all-or-nothing.
	Applied int
	Failed  int
	// FailedRegions counts region batches that gave up.
	FailedRegions int
	// RetriedRPCs counts retry attempts performed across all batches.
	RetriedRPCs int64
	// Partial is true when at least one region batch failed: the write
	// landed on a strict subset of regions.
	Partial bool
	// FailedRanges lists the key ranges of the failed regions, so callers
	// can re-drive exactly the rows that were lost.
	FailedRanges []KeyRange
}

// MultiPutCtx is the client-RPC form of MultiPut, keeping the fault
// semantics of the other ...Ctx operations: each region batch runs the
// client retry loop with analytic backoff, gives up on exhausted retries or
// an expired deadline, and failed batches degrade the write gracefully —
// surviving regions still apply (all-or-nothing per region) and the report
// says which key ranges were lost. Only applied rows are logged to the WAL
// (one group-commit record). The returned error is non-nil only when ctx
// was canceled outright.
func (t *Table) MultiPutCtx(ctx context.Context, rows []KV) (MultiPutReport, error) {
	var rep MultiPutReport
	if len(rows) == 0 {
		return rep, nil
	}
	sortRowsStable(rows)

	injector := t.store.injector
	pol := t.store.opts.Retry
	budget := budgetFrom(ctx)
	deadline, hasDeadline := ctx.Deadline()
	expired := func(taskLocal time.Duration) bool {
		if ctx.Err() != nil {
			return true
		}
		if !hasDeadline {
			return false
		}
		return !time.Now().Add(budget.SimElapsed() + taskLocal).Before(deadline)
	}
	var retried atomic.Int64

	t.mu.RLock()
	tasks := t.groupWriteTasks(rows)
	var wg sync.WaitGroup
	run := func(tk *writeTask) {
		// Client retry loop: every injected fault costs one analytic
		// backoff; the batch gives up on deadline expiry or exhausted
		// attempts, failing only its own region (nothing applied there).
		for attempt := 1; ; attempt++ {
			if expired(tk.cost) {
				tk.failed = true
				return
			}
			var err error
			if !t.store.nodeAlive(tk.reg.nodeID()) {
				t.store.stats.FailedRPCs.Add(1)
				err = ErrNodeDead
			} else {
				err = injector.attempt(tk.reg, &t.store.stats)
			}
			if err == nil {
				break
			}
			if attempt >= pol.MaxAttempts {
				tk.failed = true
				return
			}
			b := pol.backoff(attempt, unitOrHalf(injector, tk.reg))
			tk.cost += b
			t.store.stats.BackoffNanos.Add(int64(b))
			retried.Add(1)
			t.store.stats.RetriedRPCs.Add(1)
		}
		t.runWriteTask(tk)
	}
	if len(tasks) == 1 {
		run(&tasks[0])
	} else {
		wg.Add(len(tasks))
		for i := range tasks {
			t.store.pool.submit(poolJob{write: run, wt: &tasks[i], wg: &wg})
		}
		wg.Wait()
	}

	rep.Regions = len(tasks)
	applied := 0
	for i := range tasks {
		if tasks[i].failed {
			rep.Partial = true
			rep.FailedRegions++
			rep.Failed += len(tasks[i].rows)
			rep.FailedRanges = append(rep.FailedRanges, KeyRange{Start: tasks[i].reg.startKey, End: tasks[i].reg.endKey})
			continue
		}
		applied += len(tasks[i].rows)
	}
	rep.Applied = applied
	// Log only the rows that actually landed, still as one batch record.
	if t.store.wal != nil && applied > 0 {
		if applied == len(rows) {
			t.store.logBatch(t.name, rows)
		} else {
			kept := make([]KV, 0, applied)
			for i := range tasks {
				if !tasks[i].failed {
					kept = append(kept, tasks[i].rows...)
				}
			}
			t.store.logBatch(t.name, kept)
		}
	}
	t.mu.RUnlock()

	rep.RetriedRPCs = retried.Load()
	if rep.FailedRegions > 0 {
		t.store.stats.FailedRegions.Add(int64(rep.FailedRegions))
	}
	t.finishMultiPut(tasks, applied, budget)

	var err error
	if cerr := ctx.Err(); cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
		err = cerr
	}
	return rep, err
}

// Scan returns all live rows with key in [start, end) that pass the
// push-down filter, in key order. limit <= 0 means unlimited. Regions are
// scanned in parallel (bounded by the store's Parallelism option) and
// results are concatenated in region order, which preserves global key
// order.
func (t *Table) Scan(start, end []byte, filter Filter, limit int) []KV {
	return t.ScanRanges([]KeyRange{{Start: start, End: end}}, filter, limit)
}

// ScanCtx is the client-RPC form of Scan: deadline-aware and fallible under
// fault injection, returning a ScanStatus describing retries and partial
// results.
func (t *Table) ScanCtx(ctx context.Context, start, end []byte, filter Filter, limit int) ([]KV, ScanStatus, error) {
	return t.ScanRangesCtx(ctx, []KeyRange{{Start: start, End: end}}, filter, limit)
}

// ScanRanges executes many scan ranges as one parallel operation: the query
// windows of TMan's query processor. This trusted in-process form never
// fails and bypasses fault injection; client reads go through ScanRangesCtx.
func (t *Table) ScanRanges(ranges []KeyRange, filter Filter, limit int) []KV {
	out, _, _ := t.scanRanges(context.Background(), ranges, filter, limit, false)
	return out
}

// ScanRangesCtx executes many scan ranges as one parallel client operation.
// Ranges touching the same region are grouped into one scan task — the
// analogue of HBase's multi-row-range filter executing many windows in a
// single region RPC. If the input ranges are sorted and non-overlapping, the
// output is globally key-ordered.
//
// Under fault injection each region task runs the client retry loop:
// injected faults are retried with analytic exponential backoff charged into
// SimIONanos (nothing sleeps). A task that exhausts its retries, or a
// context deadline that expires once analytic time is accounted, degrades
// the scan gracefully: rows from the surviving regions are returned with
// ScanStatus.Partial set instead of an error. The returned error is non-nil
// only when ctx was canceled outright.
func (t *Table) ScanRangesCtx(ctx context.Context, ranges []KeyRange, filter Filter, limit int) ([]KV, ScanStatus, error) {
	return t.scanRanges(ctx, ranges, filter, limit, true)
}

// scanTask is one region's share of a multi-range scan: which ranges to
// visit, plus the slots the worker writes its results into. Tasks are held
// in a per-query slice, so each worker writes only to its own element and
// no synchronization beyond the WaitGroup is needed.
type scanTask struct {
	reg       *region
	rangeIdxs []int
	out       []KV
	cost      time.Duration
	rows      int64    // live rows the region scanners visited (trace attribution)
	acct      scanAcct // disk bytes, fence skips, cache traffic (trace attribution)
	node      int      // node that served the scan (leader or routed follower)
	follower  bool     // served by a bounded-staleness follower
	failed    bool
}

// singleRangeIdx is the shared index slice for the common one-window scan,
// avoiding a per-task allocation.
var singleRangeIdx = []int{0}

// runScanTask executes one region task: the client retry loop under fault
// injection, then the region scans, then the analytic I/O cost accounting.
// Results land in tk; only the retry and follower-read counters are shared
// across tasks.
//
// With a follower-read preference the serving copy is re-resolved on every
// attempt: a follower within the staleness bound (on the fastest live node)
// serves the scan, otherwise the leader does — and a dead leader node fails
// the attempt so a retry can land on a promoted or revived replica.
func (t *Table) runScanTask(tk *scanTask, ranges []KeyRange, filter Filter, limit int, fallible bool, injector *faultInjector, pref *ReadPref, expired func(time.Duration) bool, retried, followerReads *atomic.Int64) {
	pol := t.store.opts.Retry
	rpcLatency := time.Duration(t.store.opts.RPCLatencyMicros) * time.Microsecond
	mbps := t.store.opts.TransferMBps
	diskMBps := t.store.opts.DiskMBps

	serveReg, serveNode := tk.reg, tk.reg.nodeID()
	resolve := func() {
		serveReg, serveNode = tk.reg, tk.reg.nodeID()
		if pref == nil {
			return
		}
		if g := tk.reg.rep; g != nil {
			if f := g.pickFollower(pref.MaxStalenessMS); f != nil {
				serveReg, serveNode = f.reg, f.node
			}
		}
	}

	var cost time.Duration
	// Client retry loop: every injected fault costs one analytic backoff;
	// the task gives up on deadline expiry or exhausted attempts, failing
	// only its own region.
	for attempt := 1; fallible; attempt++ {
		if expired(cost) {
			tk.failed = true
			tk.cost = cost
			return
		}
		resolve()
		var err error
		if !t.store.nodeAlive(serveNode) {
			t.store.stats.FailedRPCs.Add(1)
			err = ErrNodeDead
		} else {
			err = injector.attempt(tk.reg, &t.store.stats)
		}
		if err == nil {
			break
		}
		if attempt >= pol.MaxAttempts {
			tk.failed = true
			tk.cost = cost
			return
		}
		b := pol.backoff(attempt, unitOrHalf(injector, tk.reg))
		cost += b
		t.store.stats.BackoffNanos.Add(int64(b))
		retried.Add(1)
		t.store.stats.RetriedRPCs.Add(1)
	}
	if serveReg != tk.reg {
		followerReads.Add(1)
		tk.follower = true
	}
	tk.node = serveNode
	var out []KV
	// One fence-charge budget per task: the windows of a multi-range scan
	// consult the same resident fence blobs, so the cumulative charge per
	// run is capped at one read of its blob.
	var fenceBudget map[*blockRun]int64
	if _, ok := filter.(FenceFilter); ok && len(tk.rangeIdxs) > 1 {
		fenceBudget = make(map[*blockRun]int64)
	}
	for _, ri := range tk.rangeIdxs {
		kr := ranges[ri]
		var hit bool
		var acct scanAcct
		out, hit, acct = serveReg.scan(kr.Start, kr.End, filter, limit, out, &t.store.stats, fenceBudget)
		tk.acct.add(acct)
		tk.rows += acct.RowsScanned
		if hit {
			break
		}
	}
	scanned := tk.acct.ScannedBytes
	tk.out = out
	t.store.stats.RPCs.Add(1)
	io := rpcLatency
	if diskMBps > 0 {
		io += time.Duration(float64(scanned) / float64(diskMBps) * float64(time.Second) / (1 << 20))
	}
	if mbps > 0 {
		var bytes int
		for _, kv := range out {
			bytes += len(kv.Key) + len(kv.Value)
		}
		io += time.Duration(float64(bytes) / float64(mbps) * float64(time.Second) / (1 << 20))
	}
	if scale := injector.latencyScale(serveNode); scale != 1 {
		io = time.Duration(float64(io) * scale)
	}
	tk.cost = cost + io
}

// scanRanges is the shared scan core. fallible selects the client-RPC
// behavior (fault injection, retries, deadline accounting).
//
// When the store's network model is enabled, every region task is charged
// one RPC latency plus transfer time for the bytes that passed the filter,
// so push-down savings show up in wall-clock measurements; slow-node
// multipliers and retry backoff are charged the same way.
func (t *Table) scanRanges(ctx context.Context, ranges []KeyRange, filter Filter, limit int, fallible bool) ([]KV, ScanStatus, error) {
	// Tracing: an untraced context costs exactly one Value lookup here (the
	// name concat is behind the nil check, so nothing allocates); a traced
	// one gets a span per scan with per-region child spans carrying the
	// cost-model attribution (rows visited/passed, analytic I/O).
	var scanSpan *obs.Span
	if parent := obs.SpanFrom(ctx); parent != nil {
		scanSpan = parent.StartChild("scan:" + t.name)
	}
	t.mu.RLock()
	var tasks []scanTask
	if len(ranges) == 1 {
		// Common single-window case: no per-task index slices at all.
		tasks = make([]scanTask, 0, len(t.regions))
		for _, reg := range t.regions {
			if reg.overlapsRange(ranges[0].Start, ranges[0].End) {
				tasks = append(tasks, scanTask{reg: reg, rangeIdxs: singleRangeIdx})
			}
		}
	} else {
		// Two passes: size exactly, then carve every task's range-index
		// list out of one shared backing array — two allocations for the
		// whole query instead of append churn per region.
		nTasks, nIdxs := 0, 0
		for _, reg := range t.regions {
			c := 0
			for _, kr := range ranges {
				if reg.overlapsRange(kr.Start, kr.End) {
					c++
				}
			}
			if c > 0 {
				nTasks++
				nIdxs += c
			}
		}
		tasks = make([]scanTask, 0, nTasks)
		idxBuf := make([]int, 0, nIdxs)
		for _, reg := range t.regions {
			start := len(idxBuf)
			for ri, kr := range ranges {
				if reg.overlapsRange(kr.Start, kr.End) {
					idxBuf = append(idxBuf, ri)
				}
			}
			if len(idxBuf) > start {
				tasks = append(tasks, scanTask{reg: reg, rangeIdxs: idxBuf[start:len(idxBuf):len(idxBuf)]})
			}
		}
	}

	var retried atomic.Int64
	par := t.store.opts.Parallelism
	if par < 1 {
		par = 1
	}

	injector := t.store.injector
	if !fallible {
		injector = nil
	}
	// Follower reads are a client-path feature: the trusted in-process scans
	// (snapshots, index rebuilds) always read the leader.
	var pref *ReadPref
	if fallible && t.store.opts.Replicas > 1 {
		if p, ok := ReadPrefFrom(ctx); ok {
			pref = &p
		}
	}
	budget := budgetFrom(ctx)
	deadline, hasDeadline := time.Time{}, false
	if fallible {
		deadline, hasDeadline = ctx.Deadline()
	}
	// expired reports whether the query is out of time once the analytic
	// clock (shared budget + this task's serial backoff) is added to real
	// time, or ctx is done for another reason.
	expired := func(taskLocal time.Duration) bool {
		if !fallible {
			return false
		}
		if ctx.Err() != nil {
			return true
		}
		if !hasDeadline {
			return false
		}
		return !time.Now().Add(budget.SimElapsed() + taskLocal).Before(deadline)
	}

	// Region tasks run on the store's shared worker pool instead of fresh
	// per-query goroutines; the pool's width is the same Parallelism bound
	// the per-query semaphore used to enforce. One `run` closure is shared
	// by all of this query's tasks, and each task writes only into its own
	// scanTask slot, so queries never share result state.
	var followerReads atomic.Int64
	var wg sync.WaitGroup
	run := func(tk *scanTask) {
		t.runScanTask(tk, ranges, filter, limit, fallible, injector, pref, expired, &retried, &followerReads)
	}
	wg.Add(len(tasks))
	for i := range tasks {
		t.store.pool.submit(poolJob{scan: run, st: &tasks[i], wg: &wg})
	}
	wg.Wait()
	t.mu.RUnlock()

	// Account the simulated I/O makespan: parallel tasks overlap up to the
	// parallelism bound, so the cluster-side wall clock is at least the
	// largest single task and at least the total work divided by the
	// parallel width. The accounting is analytic (no sleeping) so that
	// measurements stay precise on any host.
	var total, maxCost time.Duration
	for i := range tasks {
		c := tasks[i].cost
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	makespan := total / time.Duration(par)
	if maxCost > makespan {
		makespan = maxCost
	}
	t.store.stats.SimIONanos.Add(int64(makespan))
	budget.Charge(makespan)

	status := ScanStatus{RetriedRPCs: retried.Load(), FollowerReads: followerReads.Load()}
	if status.FollowerReads > 0 {
		t.store.stats.FollowerReads.Add(status.FollowerReads)
	}
	totalOut := 0
	for i := range tasks {
		if tasks[i].failed {
			status.Partial = true
			status.FailedRegions++
			continue
		}
		totalOut += len(tasks[i].out)
	}
	if scanSpan != nil {
		t.recordScanSpan(scanSpan, tasks, totalOut, makespan, status)
	}
	var out []KV
	if totalOut > 0 {
		out = make([]KV, 0, totalOut)
		for i := range tasks {
			if !tasks[i].failed {
				out = append(out, tasks[i].out...)
			}
		}
	}
	if status.FailedRegions > 0 {
		t.store.stats.FailedRegions.Add(int64(status.FailedRegions))
	}
	if status.Partial {
		t.store.stats.PartialScans.Add(1)
	}
	if limit > 0 {
		// With a limit spanning several regions each task early-exits after
		// `limit` rows; sort the merged rows by key before truncating so the
		// kept subset is deterministic whatever the range/region geometry.
		if len(tasks) > 1 {
			sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
		}
		if len(out) > limit {
			out = out[:limit]
		}
	}
	var err error
	if cerr := ctx.Err(); fallible && cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
		err = cerr
	}
	return out, status, err
}

// maxRegionSpans caps the per-region children attached to one scan span, so
// a scan over hundreds of regions yields a readable trace: the hottest-path
// detail is in the first tasks and the remainder is aggregated into one
// "region:rest" child.
const maxRegionSpans = 32

// recordScanSpan finishes a traced scan's span: aggregate cost-model
// attribution on the scan span itself (rows_visited there is the paper's
// candidates metric for this scan) plus one child per region task, capped.
func (t *Table) recordScanSpan(span *obs.Span, tasks []scanTask, totalOut int, makespan time.Duration, status ScanStatus) {
	var rowsVisited int64
	for i := range tasks {
		rowsVisited += tasks[i].rows
	}
	span.Add("regions", int64(len(tasks)))
	span.Add("rows_visited", rowsVisited)
	span.Add("rows_passed", int64(totalOut))
	span.Add("rpcs", int64(len(tasks)-status.FailedRegions))
	span.Add("retried_rpcs", status.RetriedRPCs)
	span.Add("failed_regions", int64(status.FailedRegions))
	span.Add("follower_reads", status.FollowerReads)
	span.Add("sim_io_ns", int64(makespan))
	for i := range tasks {
		if i == maxRegionSpans {
			var restRows, restOut int64
			var restCost time.Duration
			var restAcct scanAcct
			for j := i; j < len(tasks); j++ {
				restRows += tasks[j].rows
				restOut += int64(len(tasks[j].out))
				restCost += tasks[j].cost
				restAcct.add(tasks[j].acct)
			}
			rest := span.Child(fmt.Sprintf("region:rest(%d)", len(tasks)-i), restCost)
			rest.Add("rows", restRows)
			rest.Add("rows_out", restOut)
			rest.Add("disk_bytes", restAcct.ScannedBytes)
			rest.Add("blocks_skipped", restAcct.BlocksSkipped)
			rest.Add("cache_hits", restAcct.CacheHits)
			rest.Add("cache_misses", restAcct.CacheMisses)
			break
		}
		tk := &tasks[i]
		c := span.Child(fmt.Sprintf("region:%d", tk.reg.id), tk.cost)
		c.Add("rows", tk.rows)
		c.Add("rows_out", int64(len(tk.out)))
		c.Add("node", int64(tk.node))
		c.Add("disk_bytes", tk.acct.ScannedBytes)
		c.Add("blocks_skipped", tk.acct.BlocksSkipped)
		c.Add("cache_hits", tk.acct.CacheHits)
		c.Add("cache_misses", tk.acct.CacheMisses)
		if tk.follower {
			c.Add("follower_read", 1)
		}
		if tk.failed {
			c.Add("failed", 1)
		}
	}
	span.End()
}

// RegionCount returns the number of regions (for tests and stats).
func (t *Table) RegionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

// ApproxSize returns the approximate byte size of the table.
func (t *Table) ApproxSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := 0
	for _, r := range t.regions {
		s += r.size()
	}
	return s
}

// CompactAll flushes memtables (sealed and live) and merges all runs of
// every region. Pending background flushes are absorbed with
// flusher-equivalent counting, so counter totals don't depend on how far
// the flusher got. Regions settle in parallel on the flusher's helper pool;
// per-region counting is unchanged by the fan-out, so totals stay
// deterministic.
func (t *Table) CompactAll() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tasks := make([]func(), len(t.regions))
	for i, r := range t.regions {
		r := r
		tasks[i] = func() { t.compactRegion(r) }
	}
	t.store.fl.runSubTasks(tasks)
}

// compactRegion is one region's share of a CompactAll: drain sealed and
// live memtables with flusher-equivalent counting, then major-compact the
// remaining runs into one.
func (t *Table) compactRegion(r *region) {
	st := &t.store.stats
	r.flushMu.Lock()
	r.mu.Lock()
	r.drainImmsLocked(st)
	if r.mem.size > 0 {
		job := r.jobs.Begin("flush", r.tname, r.id)
		memEntries, memRaw := r.mem.drain()
		run := newRunFromEntries(r.bcfg, memEntries, memRaw)
		r.runs = append(r.runs, run)
		r.mem = newSkiplist(nextSkiplistSeed())
		st.Flushes.Add(1)
		st.BytesFlushed.Add(int64(run.bytes))
		job.AddBytesRead(int64(memRaw))
		job.AddBytesWritten(int64(run.bytes))
		job.AddItems(int64(len(memEntries)))
		r.jobs.End(job)
		r.maintainRunsLocked(st)
	}
	if len(r.runs) > 1 {
		total, biggest := 0, 0
		for _, run := range r.runs {
			total += run.bytes
			if run.bytes > biggest {
				biggest = run.bytes
			}
		}
		job := r.jobs.Begin("compact", r.tname, r.id)
		nRuns := int64(len(r.runs))
		start := time.Now()
		r.runs = []*sortedRun{mergeRunSlice(r.bcfg, r.runs)}
		st.Compactions.Add(1)
		st.BytesCompacted.Add(int64(total))
		st.CompactStallNanos.Add(time.Since(start).Nanoseconds())
		job.AddBytesRead(int64(total))
		job.AddBytesWritten(int64(r.runs[0].bytes))
		job.AddItems(nRuns)
		job.AddStall(time.Since(start))
		r.jobs.End(job)
		// A major compaction briefly blocks client RPCs, as a region move
		// would — but only in proportion to the data actually migrated onto
		// the new run: the largest input is the stable base a tiered region
		// already had resident, so the window scales with the smaller tiers
		// folded into it rather than the whole region.
		t.store.injector.markUnavailableBytes(r, total-biggest, total)
	}
	r.mu.Unlock()
	r.flushMu.Unlock()
}
