package kvstore

import (
	"bytes"
	"sort"
	"sync"
	"time"
)

// KV is a key-value row returned by scans.
type KV struct {
	Key   []byte
	Value []byte
}

// KeyRange is a half-open scan range [Start, End). A nil Start means the
// beginning of the table; a nil End means the end of the table.
type KeyRange struct {
	Start, End []byte
}

// Table is a range-partitioned ordered map. Regions split automatically as
// the table grows; all rows live in exactly one region at a time.
type Table struct {
	name  string
	store *Store

	mu      sync.RWMutex
	regions []*region // ordered by startKey; regions[0].startKey == nil
}

func newTable(name string, store *Store) *Table {
	t := &Table{name: name, store: store}
	t.regions = []*region{newRegion(nil, nil, store.nextNode(), store.opts.MemtableFlushBytes, store.opts.MaxRunsPerRegion)}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// regionForKey returns the region owning key. Caller must hold t.mu (R or W).
func (t *Table) regionForKey(key []byte) *region {
	// Binary search: last region whose startKey <= key.
	i := sort.Search(len(t.regions), func(i int) bool {
		r := t.regions[i]
		return r.startKey != nil && bytes.Compare(r.startKey, key) > 0
	})
	return t.regions[i-1]
}

// Put inserts or replaces a row. Key and value are retained by the table;
// callers must not mutate them afterwards.
func (t *Table) Put(key, value []byte) {
	t.store.logMutation(opPut, t.name, key, value)
	t.mu.RLock()
	r := t.regionForKey(key)
	size := r.put(key, value, &t.store.stats)
	t.mu.RUnlock()
	t.store.stats.Puts.Add(1)
	if size >= t.store.opts.RegionMaxBytes {
		t.maybeSplit(r)
	}
}

// Delete removes a row (writes a tombstone).
func (t *Table) Delete(key []byte) {
	t.store.logMutation(opDelete, t.name, key, nil)
	t.mu.RLock()
	r := t.regionForKey(key)
	r.delete(key, &t.store.stats)
	t.mu.RUnlock()
	t.store.stats.Deletes.Add(1)
}

// Get returns the value stored under key.
func (t *Table) Get(key []byte) (value []byte, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.regionForKey(key).get(key)
}

// maybeSplit splits region r in two if it is still oversized. The table
// write lock excludes scans and other writers for the duration.
func (t *Table) maybeSplit(r *region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Region may have been split by a racing writer; confirm it's still ours.
	idx := -1
	for i, cand := range t.regions {
		if cand == r {
			idx = i
			break
		}
	}
	if idx < 0 || r.size() < t.store.opts.RegionMaxBytes {
		return
	}
	entries, median := r.splitEntries()
	if median == nil {
		return
	}
	cut := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, median) >= 0
	})
	if cut == 0 || cut == len(entries) {
		return
	}
	left := newRegion(r.startKey, median, r.node, r.flushBytes, r.maxRuns)
	right := newRegion(median, r.endKey, t.store.nextNode(), r.flushBytes, r.maxRuns)
	left.runs = []*sortedRun{newSortedRun(entries[:cut])}
	right.runs = []*sortedRun{newSortedRun(entries[cut:])}
	t.regions = append(t.regions[:idx], append([]*region{left, right}, t.regions[idx+1:]...)...)
	t.store.stats.RegionSplits.Add(1)
}

// Scan returns all live rows with key in [start, end) that pass the
// push-down filter, in key order. limit <= 0 means unlimited. Regions are
// scanned in parallel (bounded by the store's Parallelism option) and
// results are concatenated in region order, which preserves global key
// order.
func (t *Table) Scan(start, end []byte, filter Filter, limit int) []KV {
	return t.ScanRanges([]KeyRange{{Start: start, End: end}}, filter, limit)
}

// ScanRanges executes many scan ranges as one parallel operation: the query
// windows of TMan's query processor. Ranges touching the same region are
// grouped into one scan task — the analogue of HBase's multi-row-range
// filter executing many windows in a single region RPC. If the input ranges
// are sorted and non-overlapping, the output is globally key-ordered.
//
// When the store's network model is enabled, every region task is charged
// one RPC latency plus transfer time for the bytes that passed the filter,
// so push-down savings show up in wall-clock measurements.
func (t *Table) ScanRanges(ranges []KeyRange, filter Filter, limit int) []KV {
	type task struct {
		reg       *region
		rangeIdxs []int
	}
	t.mu.RLock()
	var tasks []task
	for _, reg := range t.regions {
		var idxs []int
		for ri, kr := range ranges {
			if reg.overlapsRange(kr.Start, kr.End) {
				idxs = append(idxs, ri)
			}
		}
		if idxs != nil {
			tasks = append(tasks, task{reg: reg, rangeIdxs: idxs})
		}
	}

	results := make([][]KV, len(tasks))
	taskCosts := make([]time.Duration, len(tasks))
	par := t.store.opts.Parallelism
	if par < 1 {
		par = 1
	}
	rpcLatency := time.Duration(t.store.opts.RPCLatencyMicros) * time.Microsecond
	mbps := t.store.opts.TransferMBps
	diskMBps := t.store.opts.DiskMBps
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, tk := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, tk task) {
			defer wg.Done()
			defer func() { <-sem }()
			var out []KV
			var scanned int64
			for _, ri := range tk.rangeIdxs {
				kr := ranges[ri]
				var hit bool
				var sb int64
				out, hit, sb = tk.reg.scan(kr.Start, kr.End, filter, limit, out, &t.store.stats)
				scanned += sb
				if hit {
					break
				}
			}
			results[i] = out
			t.store.stats.RPCs.Add(1)
			cost := rpcLatency
			if diskMBps > 0 {
				cost += time.Duration(float64(scanned) / float64(diskMBps) * float64(time.Second) / (1 << 20))
			}
			if mbps > 0 {
				var bytes int
				for _, kv := range out {
					bytes += len(kv.Key) + len(kv.Value)
				}
				cost += time.Duration(float64(bytes) / float64(mbps) * float64(time.Second) / (1 << 20))
			}
			taskCosts[i] = cost
		}(i, tk)
	}
	wg.Wait()
	t.mu.RUnlock()

	// Account the simulated I/O makespan: parallel tasks overlap up to the
	// parallelism bound, so the cluster-side wall clock is at least the
	// largest single task and at least the total work divided by the
	// parallel width. The accounting is analytic (no sleeping) so that
	// measurements stay precise on any host.
	var total, maxCost time.Duration
	for _, c := range taskCosts {
		total += c
		if c > maxCost {
			maxCost = c
		}
	}
	makespan := total / time.Duration(par)
	if maxCost > makespan {
		makespan = maxCost
	}
	t.store.stats.SimIONanos.Add(int64(makespan))

	var out []KV
	for _, rs := range results {
		out = append(out, rs...)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// RegionCount returns the number of regions (for tests and stats).
func (t *Table) RegionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

// ApproxSize returns the approximate byte size of the table.
func (t *Table) ApproxSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := 0
	for _, r := range t.regions {
		s += r.size()
	}
	return s
}

// CompactAll flushes memtables and merges all runs of every region.
func (t *Table) CompactAll() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.regions {
		r.mu.Lock()
		r.flushLocked(&t.store.stats)
		if len(r.runs) > 1 {
			r.compactLocked(&t.store.stats)
		}
		r.mu.Unlock()
	}
}
