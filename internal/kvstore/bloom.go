package kvstore

// bloom is a per-run bloom filter consulted by point gets before any block
// is touched: a negative answer proves the key is absent from the run, so
// the read path skips the block index, the cache, and the decode entirely.
// Scans never consult it — a range probe cannot be answered by a membership
// filter.
//
// Classic double hashing (Kirsch–Mitzenmatcher): k probe positions derived
// from one 64-bit key hash as h1 + i·h2, which measures within a fraction
// of a percent of k independent hashes at these sizes. Deterministic — no
// per-process seed — so replicas sharing a run agree on every probe.
type bloom struct {
	words []uint64
	nbits uint64
	k     uint32
}

// bloomHash is the single 64-bit key hash every probe derives from:
// FNV-1a, finished with a splitmix64 mix so short common-prefix keys (the
// dominant shape under TMan's composite row keys) still spread over the
// whole bit array.
func bloomHash(key []byte) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// newBloom builds a filter for the given key hashes at bitsPerKey bits per
// key. Returns nil when the filter is disabled or there is nothing to index.
func newBloom(hashes []uint64, bitsPerKey int) *bloom {
	if bitsPerKey <= 0 || len(hashes) == 0 {
		return nil
	}
	nbits := uint64(len(hashes) * bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	// k = bits/key · ln2 rounded, clamped to [1, 30].
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	f := &bloom{words: make([]uint64, (nbits+63)/64), k: k}
	f.nbits = uint64(len(f.words)) * 64
	for _, h := range hashes {
		f.add(h)
	}
	return f
}

func (f *bloom) add(h uint64) {
	h1, h2 := h, h>>33|h<<31
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.words[bit>>6] |= 1 << (bit & 63)
	}
}

// mayContain reports whether the key hashing to h might be in the run. A
// false return is definitive; true may be a false positive at roughly
// 0.6185^bitsPerKey probability.
func (f *bloom) mayContain(h uint64) bool {
	h1, h2 := h, h>>33|h<<31
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes is the filter's resident footprint.
func (f *bloom) sizeBytes() int {
	if f == nil {
		return 0
	}
	return len(f.words) * 8
}
