package kvstore

import (
	"sync"
	"sync/atomic"
)

// workPool is the store-level task executor: a bounded set of persistent
// worker goroutines that region scan and region write tasks are submitted
// to. It replaces the per-query semaphore + goroutine-spawn pattern, so an
// operation stream reuses the same workers instead of churning goroutines,
// while the Parallelism bound still caps how many region tasks run at once
// (and therefore the parallelism of any single operation).
//
// The queue is unbounded and submit never blocks, so operations waiting on
// their tasks can never deadlock against each other; tasks carry their own
// retry/deadline logic and simply run later when the pool is saturated.
type workPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []poolJob
	head    int
	workers int
	idle    int
	max     int
	closed  bool

	// running/maxRunning instrument the concurrency bound for tests.
	running    atomic.Int64
	maxRunning atomic.Int64
}

func newWorkPool(max int) *workPool {
	if max < 1 {
		max = 1
	}
	p := &workPool{max: max}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// poolJob is one queued unit of work — a region scan task or a region write
// task — followed by wg.Done(). The typed shape (instead of a bare func())
// lets an operation submit one shared closure for all its region tasks, so
// enqueueing N tasks costs zero per-task allocations — the queue slice is
// reused across operations. Exactly one of scan/write is set.
type poolJob struct {
	scan  func(*scanTask)
	st    *scanTask
	write func(*writeTask)
	wt    *writeTask
	wg    *sync.WaitGroup
}

func (j poolJob) execute() {
	defer j.wg.Done()
	if j.scan != nil {
		j.scan(j.st)
		return
	}
	j.write(j.wt)
}

// submit enqueues a job, waking an idle worker or (lazily, up to the
// bound) spawning a new one. Never blocks. After close, jobs degrade to a
// plain goroutine so late operations still complete.
func (p *workPool) submit(job poolJob) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go job.execute()
		return
	}
	p.queue = append(p.queue, job)
	if p.idle > 0 {
		p.cond.Signal()
	} else if p.workers < p.max {
		p.workers++
		go p.worker()
	}
	p.mu.Unlock()
}

func (p *workPool) worker() {
	p.mu.Lock()
	for {
		for p.head >= len(p.queue) && !p.closed {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		if p.head >= len(p.queue) { // closed and drained
			p.workers--
			p.mu.Unlock()
			return
		}
		job := p.queue[p.head]
		p.queue[p.head] = poolJob{}
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		} else if p.head > 1024 && p.head*2 > len(p.queue) {
			p.queue = append(p.queue[:0], p.queue[p.head:]...)
			p.head = 0
		}
		p.mu.Unlock()

		n := p.running.Add(1)
		for {
			max := p.maxRunning.Load()
			if n <= max || p.maxRunning.CompareAndSwap(max, n) {
				break
			}
		}
		job.execute()
		p.running.Add(-1)

		p.mu.Lock()
	}
}

// close drains nothing and stops nothing in flight: queued tasks still run,
// workers exit once the queue is empty. Idempotent.
func (p *workPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// maxObservedRunning reports the high-water mark of concurrently running
// tasks (test instrumentation for the Parallelism bound).
func (p *workPool) maxObservedRunning() int64 { return p.maxRunning.Load() }

// depth reports the queued-but-unstarted task backlog — the scan-executor
// queue depth gauge the admission-control layer watches.
func (p *workPool) depth() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.queue) - p.head)
}
