// Package kvstore implements the ordered key-value store substrate TMan
// runs on — an embedded stand-in for an HBase-style cluster.
//
// A Store holds named Tables. Each Table is range-partitioned into regions;
// regions are assigned round-robin to simulated nodes and split
// automatically when they grow past a threshold. Each region is a small
// LSM tree: a skiplist memtable plus immutable sorted runs produced by
// flushes and merged by compaction.
//
// Scans accept push-down Filters that are evaluated inside the region scan
// loop — the store-side analogue of HBase coprocessor filters — and
// statistics (rows scanned, rows returned, seeks) are recorded so that
// benchmarks can report the candidate counts the TMan paper uses as its
// I/O-cost metric.
package kvstore

import (
	"bytes"
	"math/rand"
	"sync"
)

const (
	skiplistMaxLevel = 24
	skiplistP        = 0.25
)

type skipNode struct {
	key   []byte
	value []byte // nil value + tombstone=true marks a delete
	tomb  bool
	next  []*skipNode
}

// skiplist is a single-writer-locked ordered map from []byte to []byte with
// tombstone support. It is not internally synchronized; the owning region
// serializes access.
type skiplist struct {
	head  *skipNode
	level int
	size  int // entries (including tombstones)
	bytes int // approximate payload bytes
	rng   *rand.Rand
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:  &skipNode{next: make([]*skipNode, skiplistMaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < skiplistMaxLevel && s.rng.Float64() < skiplistP {
		lvl++
	}
	return lvl
}

// findPredecessors fills prev with the rightmost node < key at every level.
func (s *skiplist) findPredecessors(key []byte, prev *[skiplistMaxLevel]*skipNode) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		prev[i] = x
	}
	return x.next[0]
}

// set inserts or replaces key. A nil value with tomb=true records a
// tombstone. Returns the change in approximate byte size.
func (s *skiplist) set(key, value []byte, tomb bool) int {
	var prev [skiplistMaxLevel]*skipNode
	next := s.findPredecessors(key, &prev)
	if next != nil && bytes.Equal(next.key, key) {
		delta := len(value) - len(next.value)
		next.value = value
		next.tomb = tomb
		s.bytes += delta
		return delta
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			prev[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, value: value, tomb: tomb, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	s.size++
	delta := len(key) + len(value) + memEntryOverhead
	s.bytes += delta
	return delta
}

// memEntryOverhead is the approximate per-entry bookkeeping cost added to
// key+value payload when charging memtable bytes and ingest volume.
const memEntryOverhead = 48

// batchInserter carries the per-level predecessor fingers of a sorted batch
// insertion. A batchInserter is bound to one skiplist: after the owning
// memtable is swapped the caller must reset it (ins = batchInserter{}) so
// the fingers are re-seeded against the fresh list.
type batchInserter struct {
	prev    [skiplistMaxLevel]*skipNode
	inited  bool
	lastKey []byte
}

// setSortedPuts inserts a key-ascending run of put rows (duplicates allowed;
// later rows win), reusing predecessor fingers across consecutive keys: each
// level's finger only ever moves forward, so inserting a dense sorted batch
// costs amortized O(1) comparisons per row instead of a full O(log n) search
// from the head. Insertion stops once s.bytes reaches limitBytes (<= 0 means
// no limit) so the owning region can seal the memtable mid-batch; at least
// one row is consumed per call. Returns the number of rows consumed.
func (s *skiplist) setSortedPuts(rows []KV, limitBytes int, ins *batchInserter) (consumed int) {
	if !ins.inited || (ins.lastKey != nil && len(rows) > 0 && bytes.Compare(rows[0].Key, ins.lastKey) < 0) {
		for i := range ins.prev {
			ins.prev[i] = s.head
		}
		ins.inited = true
	}
	// Node and next-pointer slabs, carved as rows insert. nextSlab holds the
	// expected total level count (mean 1/(1-p) per node) and grows by chunk
	// if the level draw runs hot.
	var nodeSlab []skipNode
	var nextSlab []*skipNode
	for ri := range rows {
		key, value := rows[ri].Key, rows[ri].Value
		// Advance the fingers: every prev[i] already satisfies key(prev[i]) <
		// key because the batch is ascending, so each level only scans
		// forward from where the previous row left it.
		for i := s.level - 1; i >= 0; i-- {
			x := ins.prev[i]
			for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
				x = x.next[i]
			}
			ins.prev[i] = x
		}
		ins.lastKey = key
		if n := ins.prev[0].next[0]; n != nil && bytes.Equal(n.key, key) {
			s.bytes += len(value) - len(n.value)
			n.value = value
			n.tomb = false
			consumed++
			if limitBytes > 0 && s.bytes >= limitBytes {
				break
			}
			continue
		}
		lvl := s.randomLevel()
		if lvl > s.level {
			for i := s.level; i < lvl; i++ {
				ins.prev[i] = s.head
			}
			s.level = lvl
		}
		if len(nodeSlab) == 0 {
			nodeSlab = make([]skipNode, len(rows)-ri)
		}
		n := &nodeSlab[0]
		nodeSlab = nodeSlab[1:]
		if len(nextSlab) < lvl {
			want := (len(rows) - ri) * 3 / 2
			if want < lvl {
				want = lvl
			}
			nextSlab = make([]*skipNode, want)
		}
		n.key, n.value, n.next = key, value, nextSlab[:lvl:lvl]
		nextSlab = nextSlab[lvl:]
		// Fingers deliberately stay on n's predecessors rather than moving
		// onto n: a later batch row with the same key must find n via
		// prev[0].next[0] to take the replacement branch.
		for i := 0; i < lvl; i++ {
			n.next[i] = ins.prev[i].next[i]
			ins.prev[i].next[i] = n
		}
		s.size++
		s.bytes += len(key) + len(value) + memEntryOverhead
		consumed++
		if limitBytes > 0 && s.bytes >= limitBytes {
			break
		}
	}
	return consumed
}

// get returns the value for key. found reports whether the key has an entry
// (possibly a tombstone, indicated by tomb).
func (s *skiplist) get(key []byte) (value []byte, tomb, found bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, n.tomb, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(target []byte) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// first returns the smallest node, or nil when empty.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// entry is a materialized key-value pair used by sorted runs and iterators.
type entry struct {
	key   []byte
	value []byte
	tomb  bool
}

// drain returns all entries in key order plus their raw key+value byte
// total, counted during the walk so flush never re-walks the output to
// size the run it builds.
func (s *skiplist) drain() ([]entry, int) {
	out := make([]entry, 0, s.size)
	rawBytes := 0
	for n := s.first(); n != nil; n = n.next[0] {
		out = append(out, entry{key: n.key, value: n.value, tomb: n.tomb})
		rawBytes += len(n.key) + len(n.value)
	}
	return out, rawBytes
}

var skiplistSeed int64 = 1

var skiplistSeedMu sync.Mutex

func nextSkiplistSeed() int64 {
	skiplistSeedMu.Lock()
	defer skiplistSeedMu.Unlock()
	skiplistSeed++
	return skiplistSeed
}
