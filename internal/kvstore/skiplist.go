// Package kvstore implements the ordered key-value store substrate TMan
// runs on — an embedded stand-in for an HBase-style cluster.
//
// A Store holds named Tables. Each Table is range-partitioned into regions;
// regions are assigned round-robin to simulated nodes and split
// automatically when they grow past a threshold. Each region is a small
// LSM tree: a skiplist memtable plus immutable sorted runs produced by
// flushes and merged by compaction.
//
// Scans accept push-down Filters that are evaluated inside the region scan
// loop — the store-side analogue of HBase coprocessor filters — and
// statistics (rows scanned, rows returned, seeks) are recorded so that
// benchmarks can report the candidate counts the TMan paper uses as its
// I/O-cost metric.
package kvstore

import (
	"bytes"
	"math/rand"
	"sync"
)

const (
	skiplistMaxLevel = 24
	skiplistP        = 0.25
)

type skipNode struct {
	key   []byte
	value []byte // nil value + tombstone=true marks a delete
	tomb  bool
	next  []*skipNode
}

// skiplist is a single-writer-locked ordered map from []byte to []byte with
// tombstone support. It is not internally synchronized; the owning region
// serializes access.
type skiplist struct {
	head  *skipNode
	level int
	size  int // entries (including tombstones)
	bytes int // approximate payload bytes
	rng   *rand.Rand
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:  &skipNode{next: make([]*skipNode, skiplistMaxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < skiplistMaxLevel && s.rng.Float64() < skiplistP {
		lvl++
	}
	return lvl
}

// findPredecessors fills prev with the rightmost node < key at every level.
func (s *skiplist) findPredecessors(key []byte, prev *[skiplistMaxLevel]*skipNode) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		prev[i] = x
	}
	return x.next[0]
}

// set inserts or replaces key. A nil value with tomb=true records a
// tombstone. Returns the change in approximate byte size.
func (s *skiplist) set(key, value []byte, tomb bool) int {
	var prev [skiplistMaxLevel]*skipNode
	next := s.findPredecessors(key, &prev)
	if next != nil && bytes.Equal(next.key, key) {
		delta := len(value) - len(next.value)
		next.value = value
		next.tomb = tomb
		s.bytes += delta
		return delta
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			prev[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, value: value, tomb: tomb, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	s.size++
	delta := len(key) + len(value) + 48 // rough node overhead
	s.bytes += delta
	return delta
}

// get returns the value for key. found reports whether the key has an entry
// (possibly a tombstone, indicated by tomb).
func (s *skiplist) get(key []byte) (value []byte, tomb, found bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, n.tomb, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(target []byte) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// first returns the smallest node, or nil when empty.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// entry is a materialized key-value pair used by sorted runs and iterators.
type entry struct {
	key   []byte
	value []byte
	tomb  bool
}

// drain returns all entries in key order (used by flush).
func (s *skiplist) drain() []entry {
	out := make([]entry, 0, s.size)
	for n := s.first(); n != nil; n = n.next[0] {
		out = append(out, entry{key: n.key, value: n.value, tomb: n.tomb})
	}
	return out
}

var skiplistSeed int64 = 1

var skiplistSeedMu sync.Mutex

func nextSkiplistSeed() int64 {
	skiplistSeedMu.Lock()
	defer skiplistSeedMu.Unlock()
	skiplistSeed++
	return skiplistSeed
}
