package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
)

// testFenceValue encodes the synthetic row format of the fence tests: an
// 8-byte big-endian timestamp followed by an arbitrary payload.
func testFenceValue(ts int64, payload []byte) []byte {
	v := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(v, uint64(ts))
	copy(v[8:], payload)
	return v
}

// testFenceExtractor summarizes a test row: point time interval, zero bbox.
func testFenceExtractor(_, value []byte) (Fence, bool) {
	if len(value) < 8 {
		return Fence{}, false
	}
	ts := int64(binary.BigEndian.Uint64(value))
	return Fence{MinT: ts, MaxT: ts}, true
}

// timeWindowFilter is a tri-state fence filter over the test row format.
type timeWindowFilter struct{ lo, hi int64 }

func (f timeWindowFilter) Accept(_, value []byte) bool {
	if len(value) < 8 {
		return false
	}
	ts := int64(binary.BigEndian.Uint64(value))
	return ts >= f.lo && ts <= f.hi
}

func (f timeWindowFilter) FenceVerdict(fc Fence) BlockVerdict {
	if fc.MaxT < f.lo || fc.MinT > f.hi {
		return VerdictSkip
	}
	if fc.MinT >= f.lo && fc.MaxT <= f.hi {
		return VerdictAcceptAll
	}
	return VerdictInspect
}

func randFences(rng *rand.Rand, n int) []blockFence {
	fences := make([]blockFence, n)
	for i := range fences {
		if rng.Intn(5) == 0 {
			continue // invalid
		}
		minT := rng.Int63n(1 << 40)
		x1, y1 := rng.Float64(), rng.Float64()
		fences[i] = blockFence{valid: true, f: Fence{
			MinT: minT, MaxT: minT + rng.Int63n(1<<20),
			MinX: x1, MinY: y1,
			MaxX: x1 + rng.Float64(), MaxY: y1 + rng.Float64(),
		}}
	}
	return fences
}

func TestFenceBlobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 300} {
		fences := randFences(rng, n)
		got, err := decodeFences(encodeFences(fences))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(got) != len(fences) {
			t.Fatalf("n=%d: decoded %d fences", n, len(got))
		}
		for i := range fences {
			if got[i] != fences[i] {
				t.Fatalf("n=%d: fence %d: got %+v want %+v", n, i, got[i], fences[i])
			}
		}
	}
}

// TestFenceBlobBitFlips: the checksum must reject every single-bit
// corruption of a fence blob — a flipped fence silently surviving decode
// could turn into a wrong Skip, which is a lost row.
func TestFenceBlobBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	blob := encodeFences(randFences(rng, 40))
	for bit := 0; bit < len(blob)*8; bit++ {
		tampered := append([]byte(nil), blob...)
		tampered[bit/8] ^= 1 << (bit % 8)
		if _, err := decodeFences(tampered); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", bit)
		}
	}
	for _, cut := range []int{0, 1, 4, 5, len(blob) / 2, len(blob) - 1} {
		if _, err := decodeFences(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}

// TestFenceRejectsHostileValues: blobs that pass the checksum but carry
// semantic poison (NaN/Inf/inverted bboxes, absurd counts) must fail
// decode — NaN comparisons would silently invert disjointness tests.
func TestFenceRejectsHostileValues(t *testing.T) {
	cases := map[string][]blockFence{
		"nan":      {{valid: true, f: Fence{MinX: math.NaN(), MaxX: 1, MaxY: 1}}},
		"inf":      {{valid: true, f: Fence{MaxX: math.Inf(1), MaxY: 1}}},
		"inverted": {{valid: true, f: Fence{MinX: 2, MaxX: 1, MaxY: 1}}},
	}
	for name, fences := range cases {
		if _, err := decodeFences(encodeFences(fences)); err == nil {
			t.Errorf("%s: hostile fence decoded cleanly", name)
		}
	}
	// A checksum-valid blob claiming more fences than bytes must be
	// rejected before allocation.
	blob := []byte{0, 0, 0, 0, fenceFormatV1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	binary.LittleEndian.PutUint32(blob[:4], crc32.Checksum(blob[4:], crcTable))
	if _, err := decodeFences(blob); err == nil {
		t.Error("implausible count decoded cleanly")
	}
}

// FuzzDecodeFences throws arbitrary bytes at the fence decoder. It must
// never panic, and any blob it accepts must yield only well-formed fences
// (finite, non-inverted bounds) that survive a semantic re-encode round
// trip — the properties the pruning verdicts rely on.
func FuzzDecodeFences(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	f.Add(encodeFences(nil))
	f.Add(encodeFences(randFences(rng, 5)))
	f.Add(encodeFences(randFences(rng, 64)))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, fenceFormatV1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fences, err := decodeFences(data)
		if err != nil {
			return
		}
		for i, bf := range fences {
			if !bf.valid {
				continue
			}
			fc := bf.f
			if fc.MinT > fc.MaxT {
				t.Fatalf("fence %d: accepted inverted time range %d..%d", i, fc.MinT, fc.MaxT)
			}
			if !finite(fc.MinX) || !finite(fc.MinY) || !finite(fc.MaxX) || !finite(fc.MaxY) {
				t.Fatalf("fence %d: accepted non-finite bbox %+v", i, fc)
			}
			if fc.MinX > fc.MaxX || fc.MinY > fc.MaxY {
				t.Fatalf("fence %d: accepted inverted bbox %+v", i, fc)
			}
		}
		again, err := decodeFences(encodeFences(fences))
		if err != nil {
			t.Fatalf("re-encode of accepted fences failed decode: %v", err)
		}
		if len(again) != len(fences) {
			t.Fatalf("re-encode changed count: %d vs %d", len(again), len(fences))
		}
		for i := range fences {
			if again[i] != fences[i] {
				t.Fatalf("fence %d changed across re-encode: %+v vs %+v", i, again[i], fences[i])
			}
		}
	})
}

// TestFenceTamperNeverSkips: a run whose fence blob is corrupted in flight
// must degrade to Inspect — never Skip — and keep answering scans exactly.
func TestFenceTamperNeverSkips(t *testing.T) {
	cfg := testBlockConfig(256, 10)
	cfg.fence = testFenceExtractor
	var es []entry
	for i := 0; i < 500; i++ {
		es = append(es, entry{
			key:   []byte(fmt.Sprintf("k/%06d", i)),
			value: testFenceValue(int64(i), bytes.Repeat([]byte{byte(i)}, 20)),
		})
	}
	br := buildRun(cfg, es)
	if br.fences == nil || !br.runFence.valid {
		t.Fatal("builder produced no fences")
	}

	ff := timeWindowFilter{lo: 100, hi: 199}
	if v := br.verdict(ff, 0, true); v != VerdictSkip {
		t.Fatalf("pre-tamper verdict on block 0 = %d, want Skip", v)
	}

	// Re-install a tampered blob: setFences must refuse it wholesale.
	tampered := append([]byte(nil), br.fenceBlob...)
	tampered[len(tampered)/2] ^= 0x40
	fresh := &blockRun{blocks: br.blocks}
	fresh.setFences(tampered)
	if fresh.fences != nil || fresh.runFence.valid {
		t.Fatal("tampered fence blob was installed")
	}
	for i := range fresh.blocks {
		if v := fresh.verdict(ff, i, true); v != VerdictInspect {
			t.Fatalf("block %d verdict after tamper = %d, want Inspect", i, v)
		}
	}
}

// TestFenceTombstonePoisonsBlock: a block containing any tombstone must
// carry no fence (skipping it could un-hide deleted keys in older runs).
func TestFenceTombstonePoisonsBlock(t *testing.T) {
	cfg := testBlockConfig(256, 10)
	cfg.fence = testFenceExtractor
	var es []entry
	for i := 0; i < 300; i++ {
		es = append(es, entry{
			key:   []byte(fmt.Sprintf("k/%06d", i)),
			value: testFenceValue(int64(i), bytes.Repeat([]byte{1}, 16)),
			tomb:  i == 150,
		})
	}
	br := buildRun(cfg, es)
	if br.runFence.valid {
		t.Fatal("run-level fence valid despite a tombstone-bearing block")
	}
	invalid := 0
	for _, bf := range br.fences {
		if !bf.valid {
			invalid++
		}
	}
	if invalid != 1 {
		t.Fatalf("%d unfenced blocks, want exactly the tombstone's", invalid)
	}
}

// fenceEquivStore loads a store whose table fences every run block with the
// synthetic time extractor: sequential writes (time correlated with key, so
// fences are tight), then overwrite waves that move rows' times in newer
// runs — the shadowing regime where an unsound Skip would resurface stale
// versions — plus deletes.
func fenceEquivStore(t *testing.T, disableFences bool) (*Store, *Table) {
	t.Helper()
	o := DefaultOptions()
	o.MemtableFlushBytes = 8 << 10
	o.RegionMaxBytes = 128 << 10
	o.BlockSizeBytes = 512
	o.DisableBlockFences = disableFences
	s := Open(o)
	tbl, err := s.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetFenceExtractor(testFenceExtractor)
	rng := rand.New(rand.NewSource(41))
	payload := func() []byte {
		p := make([]byte, 16+rng.Intn(64))
		rng.Read(p)
		return p
	}
	for i := 0; i < 4000; i++ {
		tbl.Put([]byte(fmt.Sprintf("k/%06d", i)), testFenceValue(int64(i), payload()))
	}
	// Overwrite waves: shift a third of the keys far outside their original
	// times, so old runs hold in-window versions that newer runs shadow.
	for i := 0; i < 4000; i += 3 {
		tbl.Put([]byte(fmt.Sprintf("k/%06d", i)), testFenceValue(int64(i)+1_000_000, payload()))
	}
	for i := 0; i < 4000; i += 11 {
		tbl.Delete([]byte(fmt.Sprintf("k/%06d", i)))
	}
	s.Quiesce()
	return s, tbl
}

// TestFenceScanEquivalence is the tentpole invariant at the store layer:
// for every window the fence-aware scan returns byte-identical rows to the
// same filter run without fence support — across the multi-run shadowing
// state and again after full compaction — while visiting no more rows.
func TestFenceScanEquivalence(t *testing.T) {
	s, tbl := fenceEquivStore(t, false)
	windows := []timeWindowFilter{
		{lo: 0, hi: 500},
		{lo: 1500, hi: 1600},
		{lo: 3990, hi: 999_000_000},
		{lo: 1_000_000, hi: 1_004_000},
		{lo: 5000, hi: 900_000}, // nothing lives here
	}
	check := func(stage string) {
		t.Helper()
		for wi, ff := range windows {
			before := s.Stats().Snapshot()
			fenced := tbl.Scan(nil, nil, ff, 0)
			mid := s.Stats().Snapshot()
			plain := tbl.Scan(nil, nil, FilterFunc(ff.Accept), 0)
			after := s.Stats().Snapshot()
			if len(fenced) != len(plain) {
				t.Fatalf("%s window %d: %d rows fenced vs %d plain", stage, wi, len(fenced), len(plain))
			}
			for i := range fenced {
				if !bytes.Equal(fenced[i].Key, plain[i].Key) || !bytes.Equal(fenced[i].Value, plain[i].Value) {
					t.Fatalf("%s window %d row %d: %q vs %q", stage, wi, i, fenced[i].Key, plain[i].Key)
				}
			}
			fd, pd := Diff(before, mid), Diff(mid, after)
			if fd.RowsReturned != pd.RowsReturned {
				t.Fatalf("%s window %d: returned %d fenced vs %d plain", stage, wi, fd.RowsReturned, pd.RowsReturned)
			}
			if fd.RowsScanned > pd.RowsScanned {
				t.Fatalf("%s window %d: fenced visited %d rows, plain %d — pruning made it worse",
					stage, wi, fd.RowsScanned, pd.RowsScanned)
			}
		}
	}

	before := s.Stats().Snapshot()
	check("multi-run")
	if d := Diff(before, s.Stats().Snapshot()); d.BlocksSkipped == 0 {
		t.Fatal("multi-run scans skipped no blocks")
	}

	s.CompactAll()
	before = s.Stats().Snapshot()
	check("compacted")
	d := Diff(before, s.Stats().Snapshot())
	if d.BlocksSkipped == 0 {
		t.Fatal("post-compaction scans skipped no blocks")
	}
	if d.FenceBytesRead == 0 {
		t.Fatal("fence pruning charged no fence bytes")
	}
	if d.BlocksAcceptedWhole == 0 {
		t.Fatal("no block was wholesale-accepted despite fully-covered windows")
	}
}

// TestFenceDisabledOption: DisableBlockFences must leave runs fenceless —
// the escape hatch — while returning identical scan results.
func TestFenceDisabledOption(t *testing.T) {
	s, tbl := fenceEquivStore(t, true)
	ff := timeWindowFilter{lo: 1500, hi: 1600}
	before := s.Stats().Snapshot()
	rows := tbl.Scan(nil, nil, ff, 0)
	d := Diff(before, s.Stats().Snapshot())
	if d.BlocksSkipped != 0 || d.FenceBytesRead != 0 {
		t.Fatalf("disabled fences still pruned: skipped=%d fenceBytes=%d", d.BlocksSkipped, d.FenceBytesRead)
	}
	se, te := fenceEquivStore(t, false)
	_ = se
	fenced := te.Scan(nil, nil, ff, 0)
	if len(rows) != len(fenced) {
		t.Fatalf("disabled %d rows vs fenced %d", len(rows), len(fenced))
	}
	for i := range rows {
		if !bytes.Equal(rows[i].Key, fenced[i].Key) || !bytes.Equal(rows[i].Value, fenced[i].Value) {
			t.Fatalf("row %d differs across the fence option", i)
		}
	}
}
