package kvstore

import (
	"errors"
	"fmt"
	"testing"
)

// The ship-stream torn tests mirror wal_torn_test.go for the replication
// path: every way a frame can arrive damaged — truncated mid-batch, a single
// flipped bit, delivered twice, from a fenced epoch, or past a sequence gap —
// must leave the follower's state untouched except for exact, idempotent
// duplicate delivery. A batch frame is all-or-nothing: there is no offset at
// which a prefix of its rows applies.

// shipFollower builds a standalone follower over an empty region, outside any
// group, so tests can drive applyFrame directly.
func shipFollower() *follower {
	return &follower{reg: newRegion(1, nil, nil, 0, 1<<20, 6, compactPolicy{fanIn: 4, subRanges: 1}, nil, nil)}
}

func followerRows(f *follower) []KV {
	rows, _, _ := f.reg.scan(nil, nil, nil, 0, nil, nil, nil)
	return rows
}

func shipBatchFrame(epoch, seq int64, n int) []byte {
	rows := make([]KV, n)
	for i := range rows {
		rows[i] = KV{
			Key:   fmt.Appendf(nil, "key-%04d", i),
			Value: fmt.Appendf(nil, "value-%04d", i),
		}
	}
	return encodeShipFrame(epoch, seq, appendBatchPayload(nil, "t", rows))
}

func TestShipFrameRoundTrip(t *testing.T) {
	f := shipFollower()
	frames := [][]byte{
		encodeShipFrame(0, 1, encodeWALPayload(opPut, "t", []byte("a"), []byte("1"))),
		shipBatchFrame(0, 2, 8),
		encodeShipFrame(0, 3, encodeWALPayload(opDelete, "t", []byte("key-0003"), nil)),
	}
	for i, fr := range frames {
		if err := f.applyFrame(fr, int64(i)); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	rows := followerRows(f)
	if len(rows) != 8 { // "a" + 8 batch rows - 1 delete
		t.Fatalf("rows after replay = %d, want 8", len(rows))
	}
	if f.seq != 3 || f.epoch != 0 {
		t.Fatalf("follower at epoch %d seq %d, want 0/3", f.epoch, f.seq)
	}
}

// TestShipFrameTruncation cuts a batch frame at every possible length. Every
// truncation must be rejected with ErrShipCorrupt and apply nothing: batch
// frames are all-or-nothing, unlike the durable WAL where a torn tail may
// legitimately hold a prefix of history.
func TestShipFrameTruncation(t *testing.T) {
	frame := shipBatchFrame(0, 1, 16)
	for cut := 0; cut < len(frame); cut++ {
		f := shipFollower()
		err := f.applyFrame(frame[:cut], 1)
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrShipCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrShipCorrupt", cut, err)
		}
		if got := followerRows(f); len(got) != 0 {
			t.Fatalf("truncation at %d applied %d rows", cut, len(got))
		}
		if f.seq != 0 {
			t.Fatalf("truncation at %d advanced seq to %d", cut, f.seq)
		}
	}
}

// TestShipFrameBitFlips flips every bit of a frame in turn. The CRC covers
// epoch, sequence and payload, so every flip — including flips inside the
// CRC field itself — must be rejected without applying anything.
func TestShipFrameBitFlips(t *testing.T) {
	frame := shipBatchFrame(0, 1, 4)
	for pos := 0; pos < len(frame); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 << bit
			f := shipFollower()
			err := f.applyFrame(mut, 1)
			if !errors.Is(err, ErrShipCorrupt) {
				t.Fatalf("flip byte %d bit %d: got %v, want ErrShipCorrupt", pos, bit, err)
			}
			if got := followerRows(f); len(got) != 0 {
				t.Fatalf("flip byte %d bit %d applied %d rows", pos, bit, len(got))
			}
		}
	}
}

// TestShipFrameDuplicateDelivery delivers the same frames twice (and an
// interior frame a third time). Redelivery must be an idempotent no-op: same
// rows, same follower position, nil error.
func TestShipFrameDuplicateDelivery(t *testing.T) {
	f := shipFollower()
	frames := [][]byte{
		encodeShipFrame(0, 1, encodeWALPayload(opPut, "t", []byte("a"), []byte("1"))),
		shipBatchFrame(0, 2, 4),
		encodeShipFrame(0, 3, encodeWALPayload(opPut, "t", []byte("a"), []byte("2"))),
	}
	for _, fr := range frames {
		if err := f.applyFrame(fr, 1); err != nil {
			t.Fatalf("first delivery: %v", err)
		}
	}
	want := len(followerRows(f))
	for _, fr := range frames {
		if err := f.applyFrame(fr, 2); err != nil {
			t.Fatalf("duplicate delivery: %v", err)
		}
	}
	if err := f.applyFrame(frames[1], 3); err != nil {
		t.Fatalf("triplicate delivery: %v", err)
	}
	rows := followerRows(f)
	if len(rows) != want {
		t.Fatalf("rows after redelivery = %d, want %d", len(rows), want)
	}
	if f.seq != 3 {
		t.Fatalf("seq after redelivery = %d, want 3", f.seq)
	}
	// The overwrite of "a" must not have been undone by redelivering seq 1.
	v, ok := f.reg.get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf(`get("a") = %q %v, want "2"`, v, ok)
	}
}

// TestShipFrameStaleEpoch fences a frame from a deposed leader: once the
// follower has seen epoch 2, epoch-1 frames are rejected no matter their
// sequence — the core promise that a stale leader cannot ack writes.
func TestShipFrameStaleEpoch(t *testing.T) {
	f := shipFollower()
	if err := f.applyFrame(encodeShipFrame(2, 1, encodeWALPayload(opPut, "t", []byte("a"), []byte("1"))), 1); err != nil {
		t.Fatalf("epoch-2 frame: %v", err)
	}
	for _, seq := range []int64{1, 2, 99} {
		err := f.applyFrame(encodeShipFrame(1, seq, encodeWALPayload(opPut, "t", []byte("b"), []byte("x"))), 2)
		if !errors.Is(err, ErrShipStaleEpoch) {
			t.Fatalf("stale epoch seq %d: got %v, want ErrShipStaleEpoch", seq, err)
		}
	}
	if rows := followerRows(f); len(rows) != 1 {
		t.Fatalf("stale frames changed state: %d rows", len(rows))
	}
}

// TestShipFrameSequenceGap rejects frames that skip ahead: a follower at seq
// 1 must refuse seq 3 (it would silently lose seq 2) and wait for catch-up.
func TestShipFrameSequenceGap(t *testing.T) {
	f := shipFollower()
	if err := f.applyFrame(encodeShipFrame(0, 1, encodeWALPayload(opPut, "t", []byte("a"), []byte("1"))), 1); err != nil {
		t.Fatalf("seq-1 frame: %v", err)
	}
	err := f.applyFrame(encodeShipFrame(0, 3, encodeWALPayload(opPut, "t", []byte("c"), []byte("3"))), 2)
	if !errors.Is(err, ErrShipGap) {
		t.Fatalf("gap: got %v, want ErrShipGap", err)
	}
	if f.seq != 1 {
		t.Fatalf("gap advanced seq to %d", f.seq)
	}
	// A newer epoch resets the sequence contract: promotion rebuilds
	// followers via catch-up, which adopts the new position wholesale.
	if err := f.applyFrame(encodeShipFrame(1, 7, encodeWALPayload(opPut, "t", []byte("d"), []byte("4"))), 3); err != nil {
		t.Fatalf("new-epoch frame: %v", err)
	}
	if f.epoch != 1 || f.seq != 7 {
		t.Fatalf("follower at epoch %d seq %d, want 1/7", f.epoch, f.seq)
	}
}

// TestDecodeWALRecordTrailingGarbage: extra bytes after a structurally valid
// record are corruption, not padding.
func TestDecodeWALRecordTrailingGarbage(t *testing.T) {
	payload := encodeWALPayload(opPut, "t", []byte("a"), []byte("1"))
	if _, err := decodeWALRecord(payload); err != nil {
		t.Fatalf("clean payload: %v", err)
	}
	if _, err := decodeWALRecord(append(append([]byte(nil), payload...), 0x00)); !errors.Is(err, ErrShipCorrupt) {
		t.Fatalf("trailing garbage accepted: %v", err)
	}
	if _, err := decodeWALRecord([]byte{77}); !errors.Is(err, ErrShipCorrupt) {
		t.Fatalf("unknown op accepted: %v", err)
	}
}

// TestDecodeWALRecordHostileLengths: declared lengths far beyond the bytes
// present must fail fast without huge allocations.
func TestDecodeWALRecordHostileLengths(t *testing.T) {
	// op=batch, empty table, rowCount=2^31-ish with a 10-byte body.
	b := []byte{opBatch, 0, 0, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3}
	if _, err := decodeWALRecord(b); !errors.Is(err, ErrShipCorrupt) {
		t.Fatalf("hostile row count accepted: %v", err)
	}
	// op=put, empty table, keyLen huge.
	b = []byte{opPut, 0, 0, 0xff, 0xff, 0xff, 0x7f}
	if _, err := decodeWALRecord(b); !errors.Is(err, ErrShipCorrupt) {
		t.Fatalf("hostile key length accepted: %v", err)
	}
}
