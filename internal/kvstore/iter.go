package kvstore

import (
	"bytes"
	"sort"
	"sync"
)

// K-way merge machinery shared by compaction (mergeRuns) and streaming
// region scans. Sources are ordered newest-to-oldest by priority; among
// entries with equal keys the lowest priority (newest) wins and the
// shadowed versions are skipped. A binary heap over the source cursors
// makes each emitted entry O(log K) instead of the O(K) per-entry linear
// minimum search the old merge performed.

// mergeCursor is one source of a k-way merge. Three backing modes share
// the struct: a key-sorted entry slice (a legacy run, or a pre-sliced
// window of one), a block run streamed one decoded block at a time (br is
// set; entries holds the current block and loadBlock refills it), or a
// live skiplist walk bounded by hi when entries is nil. cur always points
// at the current entry — into the slice/block, or at the cursor-owned
// memEnt staging slot in skiplist mode — so comparisons and advances never
// copy entries around.
type mergeCursor struct {
	// Slice mode; also the current decoded block in block mode.
	entries []entry
	pos     int
	// Block mode: the source run, the next and last block to stream, and
	// the exclusive upper bound applied to the final block. missBytes
	// accumulates this cursor's charged scan bytes: encoded bytes fetched
	// on cache misses for block runs, raw bytes of visited rows for
	// skiplist walks (memory-tier rows keep the legacy per-row charge).
	// nocache bypasses the block cache (compaction).
	br        *blockRun
	nextBlk   int
	lastBlk   int
	blkHi     []byte
	nocache   bool
	missBytes int64
	// Per-cursor attribution mirrors of the global fence/cache counters, so
	// a scan can report its own skip and cache traffic (they sum into the
	// scan's scanAcct; the global Stats keep their own charges).
	blocksSkipped int64
	cacheHits     int64
	cacheMisses   int64
	// Fence pruning (block mode, scans only): ff consults per-block fences
	// before each fetch; skipOK gates Skip verdicts (region scans grant it
	// only to the oldest group-prefix of runs — see region.scan); runAccept
	// blanket-accepts every block (run-level AcceptAll); accepted marks the
	// currently loaded block as pre-accepted, so the merge can tell callers
	// to skip per-row Accept.
	ff        FenceFilter
	skipOK    bool
	runAccept bool
	accepted  bool
	// Skiplist mode.
	node   *skipNode
	hi     []byte
	memEnt entry // staging for the current skiplist node

	pri int // lower = newer; tie-break for duplicate keys
	cur *entry
	ok  bool
}

// initSlice points the cursor at a key-sorted entry slice.
func (c *mergeCursor) initSlice(entries []entry, pri int) {
	*c = mergeCursor{entries: entries, pri: pri}
	if len(entries) > 0 {
		c.cur = &entries[0]
		c.ok = true
	}
}

// initMem points the cursor at a skiplist walk starting at start (already
// sought to the scan's lower bound) and stopping at hi (exclusive; nil =
// +inf). The cursor becomes self-referential (cur aims at its own memEnt
// slot), so it must be initialized in its final storage, never copied.
func (c *mergeCursor) initMem(start *skipNode, hi []byte, pri int) {
	*c = mergeCursor{node: start, hi: hi, pri: pri}
	c.loadNode()
}

func (c *mergeCursor) loadNode() {
	n := c.node
	if n == nil || (c.hi != nil && bytes.Compare(n.key, c.hi) >= 0) {
		c.ok = false
		return
	}
	c.memEnt = entry{key: n.key, value: n.value, tomb: n.tomb}
	c.cur = &c.memEnt
	c.ok = true
	c.missBytes += int64(len(n.key) + len(n.value))
}

// initBlock points the cursor at the [lo, hi) window of a block run. Only
// the window's blocks are ever fetched, one at a time, so a merge holds at
// most one decoded block per source. Charged misses accumulate in
// missBytes even when the window turns out empty.
//
// A non-nil ff engages fence pruning: the window's share of the run's
// fence blob is charged (it is resident metadata the scan consulted), the
// run-level fence may skip or blanket-accept the whole window, and
// loadBlock classifies each remaining block before fetching it. skipOK
// gates Skip verdicts; see region.scan for the shadowing rule that sets
// it. A non-nil fenceBudget caps the cumulative fence charge per run
// across the windows of one scan task at the blob size — a multi-window
// scan consults the same resident blob repeatedly but never pays for more
// than one read of it.
func (c *mergeCursor) initBlock(br *blockRun, lo, hi []byte, pri int, nocache bool, ff FenceFilter, skipOK bool, fenceBudget map[*blockRun]int64) {
	*c = mergeCursor{br: br, blkHi: hi, pri: pri, nocache: nocache}
	if br.count == 0 {
		return
	}
	first := 0
	if lo != nil {
		if first = br.seekBlock(lo); first < 0 {
			first = 0
		}
	}
	last := len(br.blocks) - 1
	if hi != nil {
		// Blocks after the one that could contain hi start at keys >= hi.
		if last = br.seekBlock(hi); last < 0 {
			return // hi precedes the whole run: empty window
		}
	}
	if first > last {
		return
	}
	if ff != nil && br.fences != nil {
		c.ff, c.skipOK = ff, skipOK
		// Consulting fences reads resident metadata. Charge the window's
		// share of the blob — the fence entries this cursor actually
		// examines — not the whole blob: a scan that probes one run through
		// many key windows consults each fence once per window, not the
		// entire run's metadata per window.
		fenceBytes := int64(len(br.fenceBlob)) * int64(last-first+1) / int64(len(br.fences))
		if fenceBudget != nil {
			rem, seen := fenceBudget[br]
			if !seen {
				rem = int64(len(br.fenceBlob))
			}
			if fenceBytes > rem {
				fenceBytes = rem
			}
			fenceBudget[br] = rem - fenceBytes
		}
		c.missBytes += fenceBytes
		if st := br.cfg.stats; st != nil {
			st.FenceBytesRead.Add(fenceBytes)
		}
		if br.runFence.valid {
			switch v := ff.FenceVerdict(br.runFence.f); {
			case v == VerdictSkip && skipOK:
				c.blocksSkipped += int64(last - first + 1)
				if st := br.cfg.stats; st != nil {
					st.BlocksSkipped.Add(int64(last - first + 1))
				}
				return // whole window skipped: cursor stays exhausted
			case v == VerdictAcceptAll:
				c.runAccept = true
			}
		}
	}
	c.nextBlk, c.lastBlk = first, last
	c.loadBlock()
	if c.ok && lo != nil && c.nextBlk-1 == first {
		// Position within the first block; later blocks start past lo.
		es := c.entries
		i := sort.Search(len(es), func(k int) bool { return bytes.Compare(es[k].key, lo) >= 0 })
		if i >= len(es) {
			c.loadBlock()
		} else {
			c.pos = i
			c.cur = &es[i]
		}
	}
}

// loadBlock decodes the next block of the window into entries, trimming
// the final block at the hi bound, and skips empty tails. With a fence
// filter attached, each block is classified before its fetch: Skip means no
// cache lookup, no decode, no charge — the 32-byte fence already proved the
// block irrelevant.
func (c *mergeCursor) loadBlock() {
	for c.nextBlk <= c.lastBlk {
		i := c.nextBlk
		c.nextBlk++
		c.accepted = c.runAccept
		if c.ff != nil && !c.runAccept {
			switch c.br.verdict(c.ff, i, c.skipOK) {
			case VerdictSkip:
				c.blocksSkipped++
				if st := c.br.cfg.stats; st != nil {
					st.BlocksSkipped.Add(1)
				}
				continue
			case VerdictAcceptAll:
				c.accepted = true
			}
		}
		db, miss := c.br.fetch(i, c.nocache)
		c.missBytes += miss
		if miss > 0 {
			c.cacheMisses++
		} else {
			c.cacheHits++
		}
		es := db.entries
		if c.blkHi != nil && i == c.lastBlk {
			j := sort.Search(len(es), func(k int) bool { return bytes.Compare(es[k].key, c.blkHi) >= 0 })
			es = es[:j]
		}
		if len(es) == 0 {
			continue
		}
		if c.accepted {
			if st := c.br.cfg.stats; st != nil {
				st.BlocksAcceptedWhole.Add(1)
			}
		}
		c.entries = es
		c.pos = 0
		c.cur = &es[0]
		c.ok = true
		return
	}
	c.ok = false
}

// advance moves to the next entry; the cursor must be ok.
func (c *mergeCursor) advance() {
	if c.entries != nil {
		c.pos++
		if c.pos < len(c.entries) {
			c.cur = &c.entries[c.pos]
			return
		}
		if c.br != nil {
			c.loadBlock()
			return
		}
		c.ok = false
		return
	}
	c.node = c.node.next[0]
	c.loadNode()
}

// mergeLess orders cursors by (current key, priority): the heap root is the
// smallest key, and among equal keys the newest version.
func mergeLess(a, b *mergeCursor) bool {
	cmp := bytes.Compare(a.cur.key, b.cur.key)
	if cmp != 0 {
		return cmp < 0
	}
	return a.pri < b.pri
}

// mergeIter streams the merged, deduplicated entry sequence of its cursors.
// Tombstones are emitted (newest version wins as for any key); callers
// decide whether to drop them.
//
// Three modes by live source count: exactly one source streams directly; up
// to linearMergeMax sources use a linear minimum search (fewer branches and
// no sift traffic beat O(log K) at small K); more use the binary heap.
type mergeIter struct {
	heap   []*mergeCursor // live cursors: min-heap, or unordered in linear mode
	single *mergeCursor   // fast path: exactly one live source, no heap ops
	linear bool
}

// linearMergeMax is the live-source count at or below which the linear
// minimum search replaces the heap.
const linearMergeMax = 4

// init takes ownership of cursors (filtered and reordered in place).
func (m *mergeIter) init(cursors []*mergeCursor) {
	live := cursors[:0]
	for _, c := range cursors {
		if c.ok {
			live = append(live, c)
		}
	}
	m.single = nil
	m.linear = false
	if len(live) == 1 {
		m.single = live[0]
		m.heap = nil
		return
	}
	m.heap = live
	if len(live) <= linearMergeMax {
		m.linear = true
		return
	}
	for i := len(live)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

// next returns the next live-or-tombstone entry in key order, newest
// version winning among duplicates, or ok=false when exhausted. accepted
// reports that the winning entry came from a fence-pre-accepted block: the
// caller's push-down filter is guaranteed to accept it, so the per-row
// Accept call can be skipped. The flag is read from the winning cursor
// before it advances (advancing may cross into a differently-classified
// block).
func (m *mergeIter) next() (e entry, accepted, ok bool) {
	if c := m.single; c != nil {
		if !c.ok {
			return entry{}, false, false
		}
		e = *c.cur
		accepted = c.accepted
		c.advance()
		// Runs normally hold unique keys, but dedup anyway so the merge
		// contract is the same in both modes.
		for c.ok && bytes.Equal(c.cur.key, e.key) {
			c.advance()
		}
		return e, accepted, true
	}
	if len(m.heap) == 0 {
		return entry{}, false, false
	}
	if m.linear {
		return m.nextLinear()
	}
	e = *m.heap[0].cur
	accepted = m.heap[0].accepted
	m.advanceRoot()
	// Skip shadowed versions of the emitted key in older sources.
	for len(m.heap) > 0 && bytes.Equal(m.heap[0].cur.key, e.key) {
		m.advanceRoot()
	}
	return e, accepted, true
}

// nextLinear is next for the small-K mode: find the (key, priority) minimum
// by scanning the live cursors, then advance every cursor past that key.
func (m *mergeIter) nextLinear() (entry, bool, bool) {
	best := m.heap[0]
	for _, c := range m.heap[1:] {
		if mergeLess(c, best) {
			best = c
		}
	}
	e := *best.cur
	accepted := best.accepted
	for i := len(m.heap) - 1; i >= 0; i-- {
		c := m.heap[i]
		for c.ok && bytes.Equal(c.cur.key, e.key) {
			c.advance()
		}
		if !c.ok {
			last := len(m.heap) - 1
			m.heap[i] = m.heap[last]
			m.heap[last] = nil
			m.heap = m.heap[:last]
		}
	}
	return e, accepted, true
}

// appendTo drains the iterator into out, optionally dropping tombstones —
// the batch form compaction uses. The flat per-mode loops avoid the
// per-entry call and copy overhead of next, which matters when merging
// whole runs. The second result is the raw key+value byte total of the
// appended entries, counted inline so no caller re-walks the output.
func (m *mergeIter) appendTo(out []entry, dropTombs bool) ([]entry, int) {
	rawBytes := 0
	if c := m.single; c != nil {
		for c.ok {
			e := *c.cur
			c.advance()
			for c.ok && bytes.Equal(c.cur.key, e.key) {
				c.advance()
			}
			if e.tomb && dropTombs {
				continue
			}
			out = append(out, e)
			rawBytes += len(e.key) + len(e.value)
		}
		return out, rawBytes
	}
	if m.linear {
		allSlices := true
		for _, c := range m.heap {
			if c.entries == nil || c.br != nil {
				allSlices = false
				break
			}
		}
		if allSlices {
			return m.appendLinearSlices(out, dropTombs)
		}
		for len(m.heap) > 0 {
			best := m.heap[0]
			for _, c := range m.heap[1:] {
				if mergeLess(c, best) {
					best = c
				}
			}
			e := *best.cur
			for i := len(m.heap) - 1; i >= 0; i-- {
				c := m.heap[i]
				for c.ok && bytes.Equal(c.cur.key, e.key) {
					c.advance()
				}
				if !c.ok {
					last := len(m.heap) - 1
					m.heap[i] = m.heap[last]
					m.heap[last] = nil
					m.heap = m.heap[:last]
				}
			}
			if e.tomb && dropTombs {
				continue
			}
			out = append(out, e)
			rawBytes += len(e.key) + len(e.value)
		}
		return out, rawBytes
	}
	for len(m.heap) > 0 {
		e := *m.heap[0].cur
		m.advanceRoot()
		for len(m.heap) > 0 && bytes.Equal(m.heap[0].cur.key, e.key) {
			m.advanceRoot()
		}
		if e.tomb && dropTombs {
			continue
		}
		out = append(out, e)
		rawBytes += len(e.key) + len(e.value)
	}
	return out, rawBytes
}

// appendLinearSlices is the linear-mode drain when every live source is an
// entry slice — the compaction shape. Working on raw slice positions keeps
// the per-entry cost to bare index arithmetic: no cur pointer maintenance
// and no advance calls. It consumes the cursors without updating cur/ok, so
// it must fully drain (it does; m.heap ends empty).
func (m *mergeIter) appendLinearSlices(out []entry, dropTombs bool) ([]entry, int) {
	live := m.heap
	rawBytes := 0
	for len(live) > 0 {
		best := live[0]
		bk := best.entries[best.pos].key
		for _, c := range live[1:] {
			ck := c.entries[c.pos].key
			cmp := bytes.Compare(ck, bk)
			if cmp < 0 || (cmp == 0 && c.pri < best.pri) {
				best, bk = c, ck
			}
		}
		e := best.entries[best.pos]
		for i := len(live) - 1; i >= 0; i-- {
			c := live[i]
			for c.pos < len(c.entries) && bytes.Equal(c.entries[c.pos].key, e.key) {
				c.pos++
			}
			if c.pos >= len(c.entries) {
				c.ok = false
				last := len(live) - 1
				live[i] = live[last]
				live[last] = nil
				live = live[:last]
			}
		}
		if e.tomb && dropTombs {
			continue
		}
		out = append(out, e)
		rawBytes += len(e.key) + len(e.value)
	}
	m.heap = live
	return out, rawBytes
}

// advanceRoot advances the root cursor and restores the heap invariant,
// dropping the cursor when it is exhausted.
func (m *mergeIter) advanceRoot() {
	c := m.heap[0]
	c.advance()
	if !c.ok {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap[last] = nil
		m.heap = m.heap[:last]
		if len(m.heap) == 0 {
			return
		}
	}
	m.siftDown(0)
}

func (m *mergeIter) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && mergeLess(h[r], h[l]) {
			small = r
		}
		if !mergeLess(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// scanScratch pools the per-scan merge state (cursor storage, heap slice,
// iterator) so steady-state scans and compactions allocate nothing for
// their merge plumbing. Ownership rule: a scratch is private to one
// scan/merge call; it must be released before returning and nothing taken
// from it may be retained (cursors alias run entries and skiplist nodes).
type scanScratch struct {
	cursors []mergeCursor
	ptrs    []*mergeCursor
	it      mergeIter
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// getScanScratch returns a scratch whose cursor storage can hold at least
// capHint cursors without reallocating (pointers into cursors stay valid).
func getScanScratch(capHint int) *scanScratch {
	sc := scanScratchPool.Get().(*scanScratch)
	if cap(sc.cursors) < capHint {
		sc.cursors = make([]mergeCursor, 0, capHint)
	}
	if cap(sc.ptrs) < capHint {
		sc.ptrs = make([]*mergeCursor, 0, capHint)
	}
	return sc
}

// start heapifies the cursors appended into sc.cursors and returns the
// ready iterator.
func (sc *scanScratch) start() *mergeIter {
	ptrs := sc.ptrs[:0]
	for i := range sc.cursors {
		ptrs = append(ptrs, &sc.cursors[i])
	}
	sc.ptrs = ptrs
	sc.it.init(ptrs)
	return &sc.it
}

// release drops all backing references and returns the scratch to the pool.
func (sc *scanScratch) release() {
	for i := range sc.cursors {
		sc.cursors[i] = mergeCursor{}
	}
	sc.cursors = sc.cursors[:0]
	for i := range sc.ptrs {
		sc.ptrs[i] = nil
	}
	sc.ptrs = sc.ptrs[:0]
	sc.it = mergeIter{}
	scanScratchPool.Put(sc)
}
