package kvstore

import "sync/atomic"

// Stats accumulates scan-side counters. RowsScanned counts every live row a
// scanner visited; RowsReturned counts rows that passed the push-down filter
// and were handed to the client; Seeks counts scanner setups (one per
// region × range); BytesReturned counts transferred value bytes. The
// difference between scanned and returned is exactly the work saved by
// push-down, and RowsScanned is the "number of candidates / retrievals"
// metric of the paper's evaluation.
//
// The fault-model counters cover the retry machinery: FailedRPCs counts
// injected per-attempt faults, RetriedRPCs counts retries the client
// performed, FailedRegions counts region tasks abandoned after exhausting
// retries or hitting a deadline, and PartialScans counts scans that returned
// a partial result.
type Stats struct {
	RowsScanned   atomic.Int64
	RowsReturned  atomic.Int64
	Seeks         atomic.Int64
	RPCs          atomic.Int64
	SimIONanos    atomic.Int64
	BytesReturned atomic.Int64
	Puts          atomic.Int64
	Deletes       atomic.Int64
	Flushes       atomic.Int64
	Compactions   atomic.Int64
	RegionSplits  atomic.Int64
	FailedRPCs    atomic.Int64
	RetriedRPCs   atomic.Int64
	FailedRegions atomic.Int64
	PartialScans  atomic.Int64
	WALAppends    atomic.Int64
	WALSyncs      atomic.Int64

	// Replication counters: BackoffNanos is the analytic retry backoff
	// charged across all client RPC paths; ShipFrames/ShipRejects count
	// leader→follower frame deliveries and fenced/corrupt rejections;
	// CatchupTail/CatchupSnapshots count the two catch-up gears; Failovers
	// counts leader promotions; FollowerReads counts region scans served by
	// a follower under a staleness bound.
	BackoffNanos     atomic.Int64
	ShipFrames       atomic.Int64
	ShipRejects      atomic.Int64
	CatchupTail      atomic.Int64
	CatchupSnapshots atomic.Int64
	Failovers        atomic.Int64
	FollowerReads    atomic.Int64

	// Block-format counters: BlockCacheHits/Misses count block fetches by
	// whether the decoded block was resident (a shared in-flight load
	// counts as a hit — one physical read served several callers);
	// BlockReadBytes is the encoded bytes actually read on misses — the
	// volume the cost model charges at DiskMBps. BloomChecks counts point
	// gets probing a run filter, BloomNegatives definitive skips, and
	// BloomFalsePositives probes that passed the filter but missed the
	// run. CatchupShipBytes is the encoded volume shipped by snapshot
	// catch-up rebuilds.
	BlockCacheHits      atomic.Int64
	BlockCacheMisses    atomic.Int64
	BlockReadBytes      atomic.Int64
	BloomChecks         atomic.Int64
	BloomNegatives      atomic.Int64
	BloomFalsePositives atomic.Int64
	CatchupShipBytes    atomic.Int64

	// Compaction write-amplification counters: BytesFlushed is the raw
	// key+value volume memtable flushes wrote into first-level runs;
	// BytesCompacted is the raw volume compactions re-read and rewrote
	// (their input runs). bytes_compacted / bytes_flushed is therefore the
	// rewrite amplification of the compaction policy — the number the tiered
	// scheduler exists to shrink. SubCompactions counts the key-range
	// sub-merges partitioned compactions fanned out (0 for unpartitioned
	// merges); CompactStallNanos is wall time a region's flush path spent
	// inside compaction, i.e. how long further flushes of that region
	// stalled behind merging.
	BytesFlushed      atomic.Int64
	BytesCompacted    atomic.Int64
	SubCompactions    atomic.Int64
	CompactStallNanos atomic.Int64

	// Fence-pruning counters: BlocksSkipped counts blocks a fence verdict
	// excluded before any cache lookup or decode (the candidates the scan
	// never paid for); BlocksAcceptedWhole counts blocks decoded with the
	// per-row filter elided because their fence sat fully inside the query
	// window; FenceBytesRead is the resident fence-blob bytes consulted —
	// the metadata cost of pruning, charged into scan bytes like an index
	// probe.
	BlocksSkipped       atomic.Int64
	BlocksAcceptedWhole atomic.Int64
	FenceBytesRead      atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	RowsScanned   int64
	RowsReturned  int64
	Seeks         int64
	RPCs          int64
	SimIONanos    int64
	BytesReturned int64
	Puts          int64
	Deletes       int64
	Flushes       int64
	Compactions   int64
	RegionSplits  int64
	FailedRPCs    int64
	RetriedRPCs   int64
	FailedRegions int64
	PartialScans  int64
	WALAppends    int64
	WALSyncs      int64

	BackoffNanos     int64
	ShipFrames       int64
	ShipRejects      int64
	CatchupTail      int64
	CatchupSnapshots int64
	Failovers        int64
	FollowerReads    int64

	BlockCacheHits      int64
	BlockCacheMisses    int64
	BlockReadBytes      int64
	BloomChecks         int64
	BloomNegatives      int64
	BloomFalsePositives int64
	CatchupShipBytes    int64

	BytesFlushed      int64
	BytesCompacted    int64
	SubCompactions    int64
	CompactStallNanos int64

	BlocksSkipped       int64
	BlocksAcceptedWhole int64
	FenceBytesRead      int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		RowsScanned:   s.RowsScanned.Load(),
		RowsReturned:  s.RowsReturned.Load(),
		Seeks:         s.Seeks.Load(),
		RPCs:          s.RPCs.Load(),
		SimIONanos:    s.SimIONanos.Load(),
		BytesReturned: s.BytesReturned.Load(),
		Puts:          s.Puts.Load(),
		Deletes:       s.Deletes.Load(),
		Flushes:       s.Flushes.Load(),
		Compactions:   s.Compactions.Load(),
		RegionSplits:  s.RegionSplits.Load(),
		FailedRPCs:    s.FailedRPCs.Load(),
		RetriedRPCs:   s.RetriedRPCs.Load(),
		FailedRegions: s.FailedRegions.Load(),
		PartialScans:  s.PartialScans.Load(),
		WALAppends:    s.WALAppends.Load(),
		WALSyncs:      s.WALSyncs.Load(),

		BackoffNanos:     s.BackoffNanos.Load(),
		ShipFrames:       s.ShipFrames.Load(),
		ShipRejects:      s.ShipRejects.Load(),
		CatchupTail:      s.CatchupTail.Load(),
		CatchupSnapshots: s.CatchupSnapshots.Load(),
		Failovers:        s.Failovers.Load(),
		FollowerReads:    s.FollowerReads.Load(),

		BlockCacheHits:      s.BlockCacheHits.Load(),
		BlockCacheMisses:    s.BlockCacheMisses.Load(),
		BlockReadBytes:      s.BlockReadBytes.Load(),
		BloomChecks:         s.BloomChecks.Load(),
		BloomNegatives:      s.BloomNegatives.Load(),
		BloomFalsePositives: s.BloomFalsePositives.Load(),
		CatchupShipBytes:    s.CatchupShipBytes.Load(),

		BytesFlushed:      s.BytesFlushed.Load(),
		BytesCompacted:    s.BytesCompacted.Load(),
		SubCompactions:    s.SubCompactions.Load(),
		CompactStallNanos: s.CompactStallNanos.Load(),

		BlocksSkipped:       s.BlocksSkipped.Load(),
		BlocksAcceptedWhole: s.BlocksAcceptedWhole.Load(),
		FenceBytesRead:      s.FenceBytesRead.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.RowsScanned.Store(0)
	s.RowsReturned.Store(0)
	s.Seeks.Store(0)
	s.RPCs.Store(0)
	s.SimIONanos.Store(0)
	s.BytesReturned.Store(0)
	s.Puts.Store(0)
	s.Deletes.Store(0)
	s.Flushes.Store(0)
	s.Compactions.Store(0)
	s.RegionSplits.Store(0)
	s.FailedRPCs.Store(0)
	s.RetriedRPCs.Store(0)
	s.FailedRegions.Store(0)
	s.PartialScans.Store(0)
	s.WALAppends.Store(0)
	s.WALSyncs.Store(0)

	s.BackoffNanos.Store(0)
	s.ShipFrames.Store(0)
	s.ShipRejects.Store(0)
	s.CatchupTail.Store(0)
	s.CatchupSnapshots.Store(0)
	s.Failovers.Store(0)
	s.FollowerReads.Store(0)

	s.BlockCacheHits.Store(0)
	s.BlockCacheMisses.Store(0)
	s.BlockReadBytes.Store(0)
	s.BloomChecks.Store(0)
	s.BloomNegatives.Store(0)
	s.BloomFalsePositives.Store(0)
	s.CatchupShipBytes.Store(0)

	s.BytesFlushed.Store(0)
	s.BytesCompacted.Store(0)
	s.SubCompactions.Store(0)
	s.CompactStallNanos.Store(0)

	s.BlocksSkipped.Store(0)
	s.BlocksAcceptedWhole.Store(0)
	s.FenceBytesRead.Store(0)
}

// Diff returns b - a field-wise, for measuring a single operation.
func Diff(a, b Snapshot) Snapshot {
	return Snapshot{
		RowsScanned:   b.RowsScanned - a.RowsScanned,
		RowsReturned:  b.RowsReturned - a.RowsReturned,
		Seeks:         b.Seeks - a.Seeks,
		RPCs:          b.RPCs - a.RPCs,
		SimIONanos:    b.SimIONanos - a.SimIONanos,
		BytesReturned: b.BytesReturned - a.BytesReturned,
		Puts:          b.Puts - a.Puts,
		Deletes:       b.Deletes - a.Deletes,
		Flushes:       b.Flushes - a.Flushes,
		Compactions:   b.Compactions - a.Compactions,
		RegionSplits:  b.RegionSplits - a.RegionSplits,
		FailedRPCs:    b.FailedRPCs - a.FailedRPCs,
		RetriedRPCs:   b.RetriedRPCs - a.RetriedRPCs,
		FailedRegions: b.FailedRegions - a.FailedRegions,
		PartialScans:  b.PartialScans - a.PartialScans,
		WALAppends:    b.WALAppends - a.WALAppends,
		WALSyncs:      b.WALSyncs - a.WALSyncs,

		BackoffNanos:     b.BackoffNanos - a.BackoffNanos,
		ShipFrames:       b.ShipFrames - a.ShipFrames,
		ShipRejects:      b.ShipRejects - a.ShipRejects,
		CatchupTail:      b.CatchupTail - a.CatchupTail,
		CatchupSnapshots: b.CatchupSnapshots - a.CatchupSnapshots,
		Failovers:        b.Failovers - a.Failovers,
		FollowerReads:    b.FollowerReads - a.FollowerReads,

		BlockCacheHits:      b.BlockCacheHits - a.BlockCacheHits,
		BlockCacheMisses:    b.BlockCacheMisses - a.BlockCacheMisses,
		BlockReadBytes:      b.BlockReadBytes - a.BlockReadBytes,
		BloomChecks:         b.BloomChecks - a.BloomChecks,
		BloomNegatives:      b.BloomNegatives - a.BloomNegatives,
		BloomFalsePositives: b.BloomFalsePositives - a.BloomFalsePositives,
		CatchupShipBytes:    b.CatchupShipBytes - a.CatchupShipBytes,

		BytesFlushed:      b.BytesFlushed - a.BytesFlushed,
		BytesCompacted:    b.BytesCompacted - a.BytesCompacted,
		SubCompactions:    b.SubCompactions - a.SubCompactions,
		CompactStallNanos: b.CompactStallNanos - a.CompactStallNanos,

		BlocksSkipped:       b.BlocksSkipped - a.BlocksSkipped,
		BlocksAcceptedWhole: b.BlocksAcceptedWhole - a.BlocksAcceptedWhole,
		FenceBytesRead:      b.FenceBytesRead - a.FenceBytesRead,
	}
}
