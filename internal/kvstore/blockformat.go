package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync/atomic"

	"github.com/tman-db/tman/internal/cache"
	"github.com/tman-db/tman/internal/compress"
)

// Block-based run format. A run's entries are laid out in ~blockBytes
// encoded blocks; the run keeps only the encoded blocks, a sparse index
// (first key + entry count per block), and a bloom filter resident —
// decoded rows exist transiently, in the store-wide block cache.
//
// Block layout (all multi-byte integers little-endian / uvarint):
//
//	u32     crc32c over everything after it
//	u8      format version (blockFormatV1)
//	uvarint entry count
//	uvarint raw bytes (sum of full key + value lengths)
//	uvarint restart count
//	uvarint simple8b word count
//	words   restart-offset deltas, simple8b packed, 8 bytes each
//	stream  entries
//
// Entry stream: every blockRestartInterval-th entry is a restart point
// storing its full key; entries in between store only the suffix after the
// longest common prefix with the previous key. One entry is
//
//	uvarint shared | uvarint unshared | uvarint vtag | key suffix | value
//
// where vtag packs the value length and the tombstone flag (vlen<<1 | tomb).
// Restart offsets (byte positions into the stream) are delta-encoded and
// simple8b-packed in the header, reusing internal/compress end to end.

const (
	blockFormatV1        = 1
	blockRestartInterval = 16
	// blockNoBits sizes the block-number field of a cache key; runs beyond
	// 2^24 blocks (unreachable at sane block sizes) bypass the cache.
	blockNoBits = 24

	// decodedEntryOverhead approximates the in-memory cost of one decoded
	// entry beyond its key/value bytes (two slice headers + flag), used to
	// charge the block cache honestly.
	decodedEntryOverhead = 56
)

// ErrBlockCorrupt is returned by decodeBlock for any structurally invalid
// or checksum-failing block.
var ErrBlockCorrupt = errors.New("kvstore: corrupt block")

// blockConfig is the store-wide block-format configuration shared by every
// region: geometry, filter density, the shared cache tier, and the stats
// sink for block/bloom counters. A nil *blockConfig on a region selects the
// legacy decoded-slice run format. Tables that want block fences derive a
// copy with the fence extractor set (Table.SetFenceExtractor), so the type
// must stay copyable — run ids come from the process-wide blockRunSeq.
type blockConfig struct {
	blockBytes int
	bloomBits  int
	cache      *cache.BlockCache // nil: decode on every read, charge every read
	stats      *Stats
	fence      FenceExtractor // nil: runs are built without fences
}

// blockRunSeq issues process-unique run ids — the high bits of block cache
// keys. Ids are never reused, so cached blocks of dropped runs simply age
// out without an invalidation protocol.
var blockRunSeq atomic.Uint64

// blockIndexEntry is one sparse-index row: the first key of a block and how
// many entries it holds (the count makes scan capacity hints cheap).
type blockIndexEntry struct {
	firstKey []byte
	count    int
}

// blockRun is the block-mode payload of a sortedRun: encoded blocks plus
// the resident metadata needed to route reads.
type blockRun struct {
	cfg      *blockConfig
	id       uint64
	blocks   [][]byte
	index    []blockIndexEntry
	filter   *bloom
	count    int // total entries
	rawBytes int // decoded key+value bytes
	encBytes int // encoded block bytes — the run's "disk" footprint

	// Block fences (nil when the run was built without a fence extractor or
	// the blob failed validation — both degrade every block to Inspect).
	// fenceBlob is the checksummed serialized form; its length is what a
	// fence-consulting cursor is charged. runFence aggregates the per-block
	// fences (valid only when every block is fenced), enabling run-level
	// short-circuits.
	fenceBlob []byte
	fences    []blockFence
	runFence  blockFence
}

// decodedBlock is a decompressed block as it lives in the cache: entries
// share one backing arena so a cached block is two allocations.
type decodedBlock struct {
	entries []entry
	charge  int64
}

// ------------------------------------------------------------- builder ---

// blockBuilder streams key-ordered entries into encoded blocks in a single
// pass, tracking raw and encoded sizes as it goes (no post-hoc O(N)
// recount) and collecting bloom hashes for the finished run's filter.
type blockBuilder struct {
	cfg    *blockConfig
	blocks [][]byte
	index  []blockIndexEntry
	hashes []uint64

	buf      []byte // current block's entry stream
	restarts []uint64
	firstKey []byte
	lastKey  []byte
	blkCount int

	// Per-block fence accumulation (cfg.fence != nil). A tombstone or an
	// extractor failure poisons the open block: it gets an invalid fence and
	// will always be inspected.
	fences    []blockFence
	blkFence  Fence
	blkFenced bool // open block has at least one summarized row
	blkPoison bool

	count     int
	rawBytes  int
	sealedRaw int // rawBytes at the last seal; open-block raw = rawBytes - sealedRaw
	encBytes  int
}

func newBlockBuilder(cfg *blockConfig) *blockBuilder {
	return &blockBuilder{cfg: cfg}
}

// add appends one entry; keys must arrive in strictly ascending order.
func (b *blockBuilder) add(key, value []byte, tomb bool) {
	if b.blkCount > 0 && len(b.buf) >= b.cfg.blockBytes {
		b.seal()
	}
	shared := 0
	if b.blkCount%blockRestartInterval == 0 {
		b.restarts = append(b.restarts, uint64(len(b.buf)))
	} else {
		shared = commonPrefixLen(b.lastKey, key)
	}
	vtag := uint64(len(value)) << 1
	if tomb {
		vtag |= 1
	}
	b.buf = compress.AppendUvarint(b.buf, uint64(shared))
	b.buf = compress.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = compress.AppendUvarint(b.buf, vtag)
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	if b.cfg.fence != nil && !b.blkPoison {
		if tomb {
			b.blkPoison = true
		} else if f, ok := b.cfg.fence(key, value); !ok {
			b.blkPoison = true
		} else if !b.blkFenced {
			b.blkFence, b.blkFenced = f, true
		} else {
			b.blkFence.union(f)
		}
	}
	if b.blkCount == 0 {
		b.firstKey = append(b.firstKey[:0], key...)
	}
	b.lastKey = append(b.lastKey[:0], key...)
	if b.cfg.bloomBits > 0 {
		b.hashes = append(b.hashes, bloomHash(key))
	}
	b.blkCount++
	b.count++
	b.rawBytes += len(key) + len(value)
}

// seal encodes the current block (header + checksum) and starts a new one.
func (b *blockBuilder) seal() {
	if b.blkCount == 0 {
		return
	}
	deltas := make([]uint64, len(b.restarts))
	prev := uint64(0)
	for i, off := range b.restarts {
		deltas[i] = off - prev
		prev = off
	}
	words, err := compress.Simple8bEncode(deltas)
	if err != nil {
		// Deltas are bounded by the block size (< 2^60); unreachable.
		panic("kvstore: block restart offsets overflow simple8b: " + err.Error())
	}
	hdr := make([]byte, 4, 4+1+4*binary.MaxVarintLen64+len(words)*8+len(b.buf))
	hdr = append(hdr, blockFormatV1)
	hdr = compress.AppendUvarint(hdr, uint64(b.blkCount))
	hdr = compress.AppendUvarint(hdr, uint64(b.blockRawBytes()))
	hdr = compress.AppendUvarint(hdr, uint64(len(b.restarts)))
	hdr = compress.AppendUvarint(hdr, uint64(len(words)))
	for _, w := range words {
		hdr = binary.LittleEndian.AppendUint64(hdr, w)
	}
	enc := append(hdr, b.buf...)
	binary.LittleEndian.PutUint32(enc[:4], crc32.Checksum(enc[4:], crcTable))

	b.blocks = append(b.blocks, enc)
	b.index = append(b.index, blockIndexEntry{
		firstKey: append([]byte(nil), b.firstKey...),
		count:    b.blkCount,
	})
	b.encBytes += len(enc)
	if b.cfg.fence != nil {
		b.fences = append(b.fences, blockFence{f: b.blkFence, valid: b.blkFenced && !b.blkPoison})
	}

	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.firstKey = b.firstKey[:0]
	b.lastKey = b.lastKey[:0]
	b.blkCount = 0
	b.blkFence = Fence{}
	b.blkFenced, b.blkPoison = false, false
	b.sealedRaw = b.rawBytes
}

// blockRawBytes is the raw key+value byte count of the open block.
func (b *blockBuilder) blockRawBytes() int { return b.rawBytes - b.sealedRaw }

// finish seals the open block and assembles the run.
func (b *blockBuilder) finish() *blockRun {
	b.seal()
	br := &blockRun{
		cfg:      b.cfg,
		id:       blockRunSeq.Add(1),
		blocks:   b.blocks,
		index:    b.index,
		filter:   newBloom(b.hashes, b.cfg.bloomBits),
		count:    b.count,
		rawBytes: b.rawBytes,
		encBytes: b.encBytes,
	}
	if b.cfg.fence != nil && len(b.blocks) > 0 {
		// Install through the validating decode path — the same route a
		// tampered blob takes — so an encoder bug can never produce fences
		// the decoder would reject.
		br.setFences(encodeFences(b.fences))
	}
	return br
}

// setFences installs a fence blob after full validation. A blob that fails
// to parse, or disagrees with the block count, is discarded: the run keeps
// nil fences and every block verdicts Inspect (fail-safe, never Skip).
func (br *blockRun) setFences(blob []byte) {
	fences, err := decodeFences(blob)
	if err != nil || len(fences) != len(br.blocks) {
		return
	}
	br.fenceBlob = blob
	br.fences = fences
	rf := blockFence{valid: len(fences) > 0}
	for i := range fences {
		if !fences[i].valid {
			rf.valid = false
			break
		}
		if i == 0 {
			rf.f = fences[i].f
		} else {
			rf.f.union(fences[i].f)
		}
	}
	br.runFence = rf
}

// verdict classifies block i for ff. skipOK gates Skip: when the caller
// cannot prove shadowing safety (the run is not in the region's oldest
// group-prefix) Skip downgrades to Inspect. Unfenced blocks always Inspect.
func (br *blockRun) verdict(ff FenceFilter, i int, skipOK bool) BlockVerdict {
	if i >= len(br.fences) || !br.fences[i].valid {
		return VerdictInspect
	}
	v := ff.FenceVerdict(br.fences[i].f)
	if v == VerdictSkip && !skipOK {
		return VerdictInspect
	}
	return v
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// ------------------------------------------------------------- decoder ---

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBlockCorrupt, fmt.Sprintf(format, args...))
}

// decodeBlock validates and decompresses one encoded block. The returned
// entries are backed by a single fresh arena (two allocations per block)
// and alias nothing in enc. Every structural violation — bad checksum,
// truncation at any offset, restart/entry mismatches — returns
// ErrBlockCorrupt.
func decodeBlock(enc []byte) ([]entry, int, error) {
	if len(enc) < 5 {
		return nil, 0, corrupt("short block: %d bytes", len(enc))
	}
	if got, want := crc32.Checksum(enc[4:], crcTable), binary.LittleEndian.Uint32(enc[:4]); got != want {
		return nil, 0, corrupt("checksum mismatch: got %08x want %08x", got, want)
	}
	if enc[4] != blockFormatV1 {
		return nil, 0, corrupt("unknown format %d", enc[4])
	}
	p := enc[5:]
	uv := func(what string) (uint64, error) {
		v, n := compress.Uvarint(p)
		if n <= 0 {
			return 0, corrupt("truncated %s", what)
		}
		p = p[n:]
		return v, nil
	}
	count64, err := uv("entry count")
	if err != nil {
		return nil, 0, err
	}
	raw64, err := uv("raw byte count")
	if err != nil {
		return nil, 0, err
	}
	nRestarts64, err := uv("restart count")
	if err != nil {
		return nil, 0, err
	}
	nWords64, err := uv("word count")
	if err != nil {
		return nil, 0, err
	}
	count, rawBytes := int(count64), int(raw64)
	nRestarts, nWords := int(nRestarts64), int(nWords64)
	// Each entry costs at least 3 stream bytes and each restart covers at
	// least one entry, so the remaining payload bounds both counts.
	if count <= 0 || count > len(enc) {
		return nil, 0, corrupt("implausible entry count %d", count)
	}
	if rawBytes < 0 || rawBytes > len(enc)*64 {
		return nil, 0, corrupt("implausible raw size %d", rawBytes)
	}
	wantRestarts := (count + blockRestartInterval - 1) / blockRestartInterval
	if nRestarts != wantRestarts {
		return nil, 0, corrupt("restart count %d, want %d for %d entries", nRestarts, wantRestarts, count)
	}
	if nWords < 0 || nWords > len(p)/8 {
		return nil, 0, corrupt("word count %d exceeds payload", nWords)
	}
	words := make([]uint64, nWords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	p = p[nWords*8:]
	deltas := compress.Simple8bDecode(make([]uint64, 0, nRestarts), words)
	if len(deltas) != nRestarts {
		return nil, 0, corrupt("restart array decodes to %d offsets, want %d", len(deltas), nRestarts)
	}
	restarts := make([]uint64, nRestarts)
	var off uint64
	for i, d := range deltas {
		off += d
		if off > uint64(len(p)) {
			return nil, 0, corrupt("restart offset %d beyond stream", off)
		}
		restarts[i] = off
	}

	arena := make([]byte, 0, rawBytes)
	entries := make([]entry, 0, count)
	var prevKey []byte
	stream := p
	pos := 0
	for i := 0; i < count; i++ {
		if i%blockRestartInterval == 0 {
			if want := int(restarts[i/blockRestartInterval]); pos != want {
				return nil, 0, corrupt("entry %d at offset %d, restart table says %d", i, pos, want)
			}
		}
		q := stream[pos:]
		shared, n1 := compress.Uvarint(q)
		if n1 <= 0 {
			return nil, 0, corrupt("truncated shared length at entry %d", i)
		}
		q = q[n1:]
		unshared, n2 := compress.Uvarint(q)
		if n2 <= 0 {
			return nil, 0, corrupt("truncated unshared length at entry %d", i)
		}
		q = q[n2:]
		vtag, n3 := compress.Uvarint(q)
		if n3 <= 0 {
			return nil, 0, corrupt("truncated value tag at entry %d", i)
		}
		q = q[n3:]
		vlen := int(vtag >> 1)
		tomb := vtag&1 != 0
		if shared > uint64(len(prevKey)) {
			return nil, 0, corrupt("entry %d shares %d bytes of a %d-byte predecessor", i, shared, len(prevKey))
		}
		if i%blockRestartInterval == 0 && shared != 0 {
			return nil, 0, corrupt("restart entry %d has shared prefix %d", i, shared)
		}
		need := int(unshared) + vlen
		if need < 0 || need > len(q) {
			return nil, 0, corrupt("entry %d body overruns stream", i)
		}
		keyStart := len(arena)
		arena = append(arena, prevKey[:shared]...)
		arena = append(arena, q[:unshared]...)
		key := arena[keyStart:len(arena):len(arena)]
		valStart := len(arena)
		arena = append(arena, q[unshared:need]...)
		value := arena[valStart:len(arena):len(arena)]
		if len(value) == 0 {
			value = nil
		}
		if len(entries) > 0 && bytes.Compare(entries[len(entries)-1].key, key) >= 0 {
			return nil, 0, corrupt("entry %d key out of order", i)
		}
		entries = append(entries, entry{key: key, value: value, tomb: tomb})
		prevKey = key
		pos += n1 + n2 + n3 + need
	}
	if pos != len(stream) {
		return nil, 0, corrupt("%d trailing bytes after last entry", len(stream)-pos)
	}
	if len(arena) != rawBytes {
		return nil, 0, corrupt("decoded %d raw bytes, header says %d", len(arena), rawBytes)
	}
	return entries, rawBytes, nil
}

// mustDecode decodes a block this process built. Blocks live in memory and
// are immutable after seal, so a decode failure here is a programming bug,
// not an I/O condition — fail loudly.
func mustDecode(enc []byte) *decodedBlock {
	entries, rawBytes, err := decodeBlock(enc)
	if err != nil {
		panic(err)
	}
	return &decodedBlock{
		entries: entries,
		charge:  int64(rawBytes + len(entries)*decodedEntryOverhead),
	}
}

// ----------------------------------------------------------- run reads ---

// seekBlock returns the index of the last block whose first key is <= key:
// the only block that can contain key. Returns -1 when key precedes the
// whole run.
func (br *blockRun) seekBlock(key []byte) int {
	return sort.Search(len(br.index), func(i int) bool {
		return bytes.Compare(br.index[i].firstKey, key) > 0
	}) - 1
}

// fetch returns block i decoded, via the shared cache unless nocache is
// set (compaction bypasses the cache so background merges neither pollute
// it nor skew hit rates). missBytes is the encoded bytes physically read:
// the cost-model disk charge, zero on a cache hit or a shared in-flight
// load.
func (br *blockRun) fetch(i int, nocache bool) (*decodedBlock, int64) {
	enc := br.blocks[i]
	st := br.cfg.stats
	c := br.cfg.cache
	if nocache {
		return mustDecode(enc), int64(len(enc))
	}
	if c == nil || i >= 1<<blockNoBits {
		if st != nil {
			st.BlockCacheMisses.Add(1)
			st.BlockReadBytes.Add(int64(len(enc)))
		}
		return mustDecode(enc), int64(len(enc))
	}
	key := br.id<<blockNoBits | uint64(i)
	v, kind, _ := c.GetOrLoad(key, func() (any, int64, error) {
		db := mustDecode(enc)
		return db, db.charge, nil
	})
	db := v.(*decodedBlock)
	switch kind {
	case cache.CacheLoad:
		if st != nil {
			st.BlockCacheMisses.Add(1)
			st.BlockReadBytes.Add(int64(len(enc)))
		}
		return db, int64(len(enc))
	default: // hit, or joined another caller's load: no new physical read
		if st != nil {
			st.BlockCacheHits.Add(1)
		}
		return db, 0
	}
}

// get is the bloom-gated point lookup.
func (br *blockRun) get(key []byte) (value []byte, tomb, found bool, missBytes int64) {
	st := br.cfg.stats
	if br.filter != nil {
		if st != nil {
			st.BloomChecks.Add(1)
		}
		if !br.filter.mayContain(bloomHash(key)) {
			if st != nil {
				st.BloomNegatives.Add(1)
			}
			return nil, false, false, 0
		}
	}
	i := br.seekBlock(key)
	if i < 0 {
		if st != nil && br.filter != nil {
			st.BloomFalsePositives.Add(1)
		}
		return nil, false, false, 0
	}
	db, miss := br.fetch(i, false)
	es := db.entries
	j := sort.Search(len(es), func(k int) bool { return bytes.Compare(es[k].key, key) >= 0 })
	if j < len(es) && bytes.Equal(es[j].key, key) {
		return es[j].value, es[j].tomb, true, miss
	}
	if st != nil && br.filter != nil {
		st.BloomFalsePositives.Add(1)
	}
	return nil, false, false, miss
}

// materialize decodes the whole run into one entry slice — the split path
// needs the full sorted content to cut at the median. Bypasses the cache:
// a split reads every block exactly once.
func (br *blockRun) materialize() []entry {
	out := make([]entry, 0, br.count)
	for i := range br.blocks {
		db, _ := br.fetch(i, true)
		out = append(out, db.entries...)
	}
	return out
}

// windowCount upper-bounds the entries in blocks [lo, hi] — the scan
// capacity hint, mirroring the legacy window size.
func (br *blockRun) windowCount(lo, hi int) int {
	n := 0
	for i := lo; i <= hi && i < len(br.index); i++ {
		if i >= 0 {
			n += br.index[i].count
		}
	}
	return n
}
