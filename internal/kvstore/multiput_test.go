package kvstore

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestMultiPutMatchesPut loads the same rows into two stores — one via
// per-row Put, one via shuffled MultiPut batches with duplicate keys — and
// asserts the visible contents are identical, across splits, flushes, and a
// final compaction.
func TestMultiPutMatchesPut(t *testing.T) {
	opts := NoNetworkOptions()
	opts.RegionMaxBytes = 32 << 10
	opts.MemtableFlushBytes = 4 << 10
	opts.MaxRunsPerRegion = 3

	mkRows := func() []KV {
		rng := rand.New(rand.NewSource(42))
		var rows []KV
		for i := 0; i < 3000; i++ {
			rows = append(rows, KV{
				Key:   []byte(fmt.Sprintf("key-%06d", i%2400)), // 600 duplicate keys
				Value: []byte(fmt.Sprintf("val-%06d-%d", i%2400, i)),
			})
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		return rows
	}

	seq := Open(opts)
	defer seq.Close()
	seqTbl, _ := seq.CreateTable("t")
	for _, kv := range mkRows() {
		seqTbl.Put(kv.Key, kv.Value)
	}

	bat := Open(opts)
	defer bat.Close()
	batTbl, _ := bat.CreateTable("t")
	rows := mkRows()
	for i := 0; i < len(rows); i += 512 {
		end := i + 512
		if end > len(rows) {
			end = len(rows)
		}
		batTbl.MultiPut(rows[i:end])
	}

	// Duplicate-key resolution differs between the paths only if MultiPut's
	// stable sort broke the later-write-wins contract.
	check := func() {
		t.Helper()
		a := seqTbl.Scan(nil, nil, nil, 0)
		b := batTbl.Scan(nil, nil, nil, 0)
		if len(a) != len(b) {
			t.Fatalf("row counts differ: Put=%d MultiPut=%d", len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
				t.Fatalf("row %d differs: Put=(%q,%q) MultiPut=(%q,%q)", i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
			}
		}
	}
	check()
	if batTbl.RegionCount() < 2 {
		t.Fatalf("want splits during batched load, got %d regions", batTbl.RegionCount())
	}
	seq.CompactAll()
	bat.CompactAll()
	check()
	seq.Quiesce()
	bat.Quiesce()
	check()
}

// TestMultiPutDurableReplay round-trips batched writes through the WAL: a
// reopened store must replay the group-commit batch records exactly.
func TestMultiPutDurableReplay(t *testing.T) {
	dir := t.TempDir()
	opts := NoNetworkOptions()
	s, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := s.OpenTable("t")
	var rows []KV
	for i := 0; i < 500; i++ {
		rows = append(rows, KV{Key: []byte(fmt.Sprintf("k-%05d", i)), Value: []byte(fmt.Sprintf("v-%05d", i))})
	}
	tbl.MultiPut(rows)
	// Overwrite a subset in a second batch: replay must preserve order.
	var over []KV
	for i := 0; i < 500; i += 7 {
		over = append(over, KV{Key: []byte(fmt.Sprintf("k-%05d", i)), Value: []byte(fmt.Sprintf("over-%05d", i))})
	}
	tbl.MultiPut(over)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reTbl := re.Table("t")
	if reTbl == nil {
		t.Fatal("table missing after replay")
	}
	got := reTbl.Scan(nil, nil, nil, 0)
	if len(got) != 500 {
		t.Fatalf("replayed %d rows, want 500", len(got))
	}
	for i := 0; i < 500; i++ {
		want := fmt.Sprintf("v-%05d", i)
		if i%7 == 0 {
			want = fmt.Sprintf("over-%05d", i)
		}
		v, ok := reTbl.Get([]byte(fmt.Sprintf("k-%05d", i)))
		if !ok || string(v) != want {
			t.Fatalf("key %d: got (%q,%v), want %q", i, v, ok, want)
		}
	}
}

// TestMultiPutCtxPartialApply drives a batch into a many-region table with
// aggressive fault injection and no retries: some region batches must fail,
// and the report has to account for every row — applied rows visible,
// failed rows absent, FailedRanges covering exactly the lost regions.
func TestMultiPutCtxPartialApply(t *testing.T) {
	opts := NoNetworkOptions()
	opts.RegionMaxBytes = 16 << 10
	opts.MemtableFlushBytes = 2 << 10
	opts.Fault = FaultConfig{Seed: 3, PFailRPC: 0.6}
	opts.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Multiplier: 2}
	s := Open(opts)
	defer s.Close()
	tbl, _ := s.CreateTable("t")

	// Pre-split the table with trusted writes so the fallible batch spans
	// many regions.
	for i := 0; i < 4000; i++ {
		tbl.Put([]byte(fmt.Sprintf("k-%06d", i)), []byte("seed-value-payload-padding"))
	}
	if tbl.RegionCount() < 4 {
		t.Fatalf("want several regions, got %d", tbl.RegionCount())
	}

	var rows []KV
	for i := 0; i < 4000; i += 3 {
		rows = append(rows, KV{Key: []byte(fmt.Sprintf("k-%06d", i)), Value: []byte(fmt.Sprintf("new-%06d", i))})
	}
	rep, err := tbl.MultiPutCtx(WithQueryBudget(context.Background()), rows)
	if err != nil {
		t.Fatalf("MultiPutCtx: %v", err)
	}
	if rep.Applied+rep.Failed != len(rows) {
		t.Fatalf("report rows don't add up: applied %d + failed %d != %d", rep.Applied, rep.Failed, len(rows))
	}
	if rep.Partial != (rep.FailedRegions > 0) || len(rep.FailedRanges) != rep.FailedRegions {
		t.Fatalf("inconsistent report: %+v", rep)
	}
	if rep.FailedRegions == 0 || rep.FailedRegions == rep.Regions {
		t.Fatalf("want a strict subset of regions to fail under p=0.6/attempts=2, got %d/%d", rep.FailedRegions, rep.Regions)
	}
	inFailedRange := func(key []byte) bool {
		for _, kr := range rep.FailedRanges {
			if (kr.Start == nil || bytes.Compare(key, kr.Start) >= 0) && (kr.End == nil || bytes.Compare(key, kr.End) < 0) {
				return true
			}
		}
		return false
	}
	for _, kv := range rows {
		v, ok := tbl.Get(kv.Key)
		if !ok {
			t.Fatalf("key %q missing entirely", kv.Key)
		}
		if inFailedRange(kv.Key) {
			if string(v) != "seed-value-payload-padding" {
				t.Fatalf("key %q in failed range was written: %q", kv.Key, v)
			}
		} else if !bytes.Equal(v, kv.Value) {
			t.Fatalf("key %q in applied range not written: %q", kv.Key, v)
		}
	}
	if rep.RetriedRPCs == 0 {
		t.Fatal("want retries under p=0.6")
	}
	if got := s.Stats().Snapshot().FailedRegions; got < int64(rep.FailedRegions) {
		t.Fatalf("stats FailedRegions=%d < report %d", got, rep.FailedRegions)
	}
}

// TestMultiPutCtxCanceled: an already-canceled context applies nothing and
// surfaces the cancellation.
func TestMultiPutCtxCanceled(t *testing.T) {
	s := Open(NoNetworkOptions())
	defer s.Close()
	tbl, _ := s.CreateTable("t")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := tbl.MultiPutCtx(ctx, []KV{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Value: []byte("2")}})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Applied != 0 || !rep.Partial {
		t.Fatalf("canceled batch applied rows: %+v", rep)
	}
	if _, ok := tbl.Get([]byte("a")); ok {
		t.Fatal("row visible after canceled batch")
	}
}
