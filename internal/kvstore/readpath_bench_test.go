package kvstore

import (
	"fmt"
	"testing"
)

// Benchmarks for the overhauled read path: k-way run merging, hot-region
// streaming scans, and the multi-window scan executor. Run via `make bench`
// to regenerate BENCH_readpath.json.

// buildMergeSources produces k key-sorted sources whose keys interleave,
// with a sprinkling of cross-source duplicates and tombstones — the shape a
// compaction or multi-run scan merge actually sees.
func buildMergeSources(k, total int) [][]entry {
	per := total / k
	sources := make([][]entry, k)
	for i := range sources {
		es := make([]entry, per)
		for j := range es {
			seq := j*k + i
			if j%37 == 0 && i > 0 {
				seq = j * k // duplicate a key owned by source 0
			}
			es[j] = entry{
				key:   []byte(fmt.Sprintf("key-%09d", seq)),
				value: []byte("value-payload-payload"),
				tomb:  j%53 == 0,
			}
		}
		sources[i] = es
	}
	return sources
}

func benchmarkMergeRuns(b *testing.B, k int) {
	sources := buildMergeSources(k, 65536)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out, _ := mergeRuns(sources, true)
		if len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkMergeRuns4Sources(b *testing.B)  { benchmarkMergeRuns(b, 4) }
func BenchmarkMergeRuns16Sources(b *testing.B) { benchmarkMergeRuns(b, 16) }
func BenchmarkMergeRuns64Sources(b *testing.B) { benchmarkMergeRuns(b, 64) }

// BenchmarkRegionScan scans a hot region holding many uncompacted runs plus
// a live memtable — the worst case for the merge layer.
func BenchmarkRegionScan(b *testing.B) {
	r := newRegion(1, nil, nil, 0, 1<<30, 1<<30, compactPolicy{fanIn: 4, subRanges: 1}, nil, nil) // thresholds disable auto flush/compact; nil bcfg = legacy runs
	var sink Stats
	const runs, perRun = 16, 2000
	for runIdx := 0; runIdx < runs; runIdx++ {
		for j := 0; j < perRun; j++ {
			seq := j*runs + runIdx
			r.put([]byte(fmt.Sprintf("key-%08d", seq)), []byte("value-payload-payload"))
		}
		r.mu.Lock()
		r.sealLocked()
		r.drainImmsLocked(&sink)
		r.mu.Unlock()
	}
	// Leave some rows in the memtable so the scan merges runs + memtable.
	for j := 0; j < perRun; j++ {
		r.put([]byte(fmt.Sprintf("key-%08d", j*runs+3)), []byte("fresh-payload"))
	}
	var out []KV
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out = out[:0]
		var hit bool
		out, hit, _ = r.scan(nil, nil, nil, 0, out, nil, nil)
		if hit || len(out) != runs*perRun {
			b.Fatalf("scan returned %d rows (hit=%v)", len(out), hit)
		}
	}
}

// BenchmarkScanRangesManyRegions measures the multi-window executor over a
// table split into many regions, each still holding several runs (no final
// compaction): per-query goroutine churn and merge allocations dominate the
// baseline here.
func BenchmarkScanRangesManyRegions(b *testing.B) {
	opts := NoNetworkOptions()
	opts.RegionMaxBytes = 32 << 10
	opts.MemtableFlushBytes = 4 << 10
	opts.MaxRunsPerRegion = 8
	s := Open(opts)
	tbl, _ := s.CreateTable("t")
	const rows = 30000
	for i := 0; i < rows; i++ {
		tbl.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("value-payload-payload-payload"))
	}
	ranges := make([]KeyRange, 64)
	for i := range ranges {
		lo := i * 400
		ranges[i] = KeyRange{
			Start: []byte(fmt.Sprintf("key-%08d", lo)),
			End:   []byte(fmt.Sprintf("key-%08d", lo+50)),
		}
	}
	if rc := tbl.RegionCount(); rc < 8 {
		b.Fatalf("want many regions, got %d", rc)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out := tbl.ScanRanges(ranges, nil, 0)
		if len(out) != 64*50 {
			b.Fatalf("scan returned %d", len(out))
		}
	}
}

// --- block-format benchmarks ---------------------------------------------

// blockBenchStore builds a block-format store with flushed multi-run
// regions: ~30k rows under small thresholds, trajectory-shaped keys.
func blockBenchStore(b *testing.B, cacheBytes int) (*Store, *Table) {
	b.Helper()
	opts := NoNetworkOptions()
	opts.RegionMaxBytes = 256 << 10
	opts.MemtableFlushBytes = 16 << 10
	opts.BlockCacheBytes = cacheBytes
	s := Open(opts)
	tbl, _ := s.CreateTable("t")
	for i := 0; i < 30000; i++ {
		tbl.Put([]byte(fmt.Sprintf("traj/%03d/%08d", i%40, i)), []byte("value-payload-payload-payload"))
	}
	s.Quiesce()
	return s, tbl
}

// BenchmarkBlockScanWarm scans the whole table with the shared block cache
// enabled: after the first pass every block is resident, so steady-state
// iterations charge no physical reads. Reports the cache hit rate.
func BenchmarkBlockScanWarm(b *testing.B) {
	s, tbl := blockBenchStore(b, 64<<20)
	tbl.Scan(nil, nil, nil, 0) // warm the cache
	before := s.BlockCacheStats()
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if out := tbl.Scan(nil, nil, nil, 0); len(out) != 30000 {
			b.Fatalf("scan returned %d rows", len(out))
		}
	}
	d := s.BlockCacheStats()
	hits, misses := float64(d.Hits-before.Hits), float64(d.Misses-before.Misses)
	if hits+misses > 0 {
		b.ReportMetric(hits/(hits+misses), "block_hit_rate")
	}
}

// BenchmarkBlockScanCold is the same scan with the cache disabled: every
// block decodes (and is charged) on every pass — the floor the cache is
// measured against.
func BenchmarkBlockScanCold(b *testing.B) {
	s, tbl := blockBenchStore(b, -1)
	before := s.Stats().Snapshot()
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if out := tbl.Scan(nil, nil, nil, 0); len(out) != 30000 {
			b.Fatalf("scan returned %d rows", len(out))
		}
	}
	d := Diff(before, s.Stats().Snapshot())
	if d.BlockCacheMisses > 0 {
		b.ReportMetric(0, "block_hit_rate")
		b.ReportMetric(float64(d.BlockReadBytes)/float64(d.BlockCacheMisses), "read_bytes_per_fetch")
	}
}

// BenchmarkBlockPointGetAbsent hammers point lookups for keys no run holds:
// the bloom filters should answer nearly all of them without touching a
// block. Reports the realized negative rate.
func BenchmarkBlockPointGetAbsent(b *testing.B) {
	s, tbl := blockBenchStore(b, 64<<20)
	before := s.Stats().Snapshot()
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, ok := tbl.Get([]byte(fmt.Sprintf("absent/%08d", n))); ok {
			b.Fatal("absent key found")
		}
	}
	d := Diff(before, s.Stats().Snapshot())
	if d.BloomChecks > 0 {
		b.ReportMetric(float64(d.BloomNegatives)/float64(d.BloomChecks), "bloom_negative_rate")
	}
}

// BenchmarkBlockPointGetPresent measures warm-cache point reads of keys
// that exist, the bloom-pass + single-block-fetch path.
func BenchmarkBlockPointGetPresent(b *testing.B) {
	_, tbl := blockBenchStore(b, 64<<20)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		i := n % 30000
		if _, ok := tbl.Get([]byte(fmt.Sprintf("traj/%03d/%08d", i%40, i))); !ok {
			b.Fatalf("key %d missing", i)
		}
	}
}

// BenchmarkBlockBuild measures the flush-side encoder: streaming a sorted
// entry batch through the block builder, bloom included.
func BenchmarkBlockBuild(b *testing.B) {
	es := make([]entry, 20000)
	for i := range es {
		es[i] = entry{
			key:   []byte(fmt.Sprintf("traj/%03d/%08d", i%40, i)),
			value: []byte("value-payload-payload-payload"),
		}
	}
	cfg := &blockConfig{blockBytes: 4 << 10, bloomBits: 10}
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if r := newRunFromEntries(cfg, es, -1); r.numEntries() != len(es) {
			b.Fatal("bad run")
		}
	}
}
