package kvstore

import (
	"fmt"
	"testing"
)

// Benchmarks for the overhauled read path: k-way run merging, hot-region
// streaming scans, and the multi-window scan executor. Run via `make bench`
// to regenerate BENCH_readpath.json.

// buildMergeSources produces k key-sorted sources whose keys interleave,
// with a sprinkling of cross-source duplicates and tombstones — the shape a
// compaction or multi-run scan merge actually sees.
func buildMergeSources(k, total int) [][]entry {
	per := total / k
	sources := make([][]entry, k)
	for i := range sources {
		es := make([]entry, per)
		for j := range es {
			seq := j*k + i
			if j%37 == 0 && i > 0 {
				seq = j * k // duplicate a key owned by source 0
			}
			es[j] = entry{
				key:   []byte(fmt.Sprintf("key-%09d", seq)),
				value: []byte("value-payload-payload"),
				tomb:  j%53 == 0,
			}
		}
		sources[i] = es
	}
	return sources
}

func benchmarkMergeRuns(b *testing.B, k int) {
	sources := buildMergeSources(k, 65536)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out := mergeRuns(sources, true)
		if len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkMergeRuns4Sources(b *testing.B)  { benchmarkMergeRuns(b, 4) }
func BenchmarkMergeRuns16Sources(b *testing.B) { benchmarkMergeRuns(b, 16) }
func BenchmarkMergeRuns64Sources(b *testing.B) { benchmarkMergeRuns(b, 64) }

// BenchmarkRegionScan scans a hot region holding many uncompacted runs plus
// a live memtable — the worst case for the merge layer.
func BenchmarkRegionScan(b *testing.B) {
	r := newRegion(1, nil, nil, 0, 1<<30, 1<<30, nil) // thresholds disable auto flush/compact
	var sink Stats
	const runs, perRun = 16, 2000
	for runIdx := 0; runIdx < runs; runIdx++ {
		for j := 0; j < perRun; j++ {
			seq := j*runs + runIdx
			r.put([]byte(fmt.Sprintf("key-%08d", seq)), []byte("value-payload-payload"))
		}
		r.mu.Lock()
		r.sealLocked()
		r.drainImmsLocked(&sink)
		r.mu.Unlock()
	}
	// Leave some rows in the memtable so the scan merges runs + memtable.
	for j := 0; j < perRun; j++ {
		r.put([]byte(fmt.Sprintf("key-%08d", j*runs+3)), []byte("fresh-payload"))
	}
	var out []KV
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out = out[:0]
		var hit bool
		out, hit, _, _ = r.scan(nil, nil, nil, 0, out, nil)
		if hit || len(out) != runs*perRun {
			b.Fatalf("scan returned %d rows (hit=%v)", len(out), hit)
		}
	}
}

// BenchmarkScanRangesManyRegions measures the multi-window executor over a
// table split into many regions, each still holding several runs (no final
// compaction): per-query goroutine churn and merge allocations dominate the
// baseline here.
func BenchmarkScanRangesManyRegions(b *testing.B) {
	opts := NoNetworkOptions()
	opts.RegionMaxBytes = 32 << 10
	opts.MemtableFlushBytes = 4 << 10
	opts.MaxRunsPerRegion = 8
	s := Open(opts)
	tbl, _ := s.CreateTable("t")
	const rows = 30000
	for i := 0; i < rows; i++ {
		tbl.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte("value-payload-payload-payload"))
	}
	ranges := make([]KeyRange, 64)
	for i := range ranges {
		lo := i * 400
		ranges[i] = KeyRange{
			Start: []byte(fmt.Sprintf("key-%08d", lo)),
			End:   []byte(fmt.Sprintf("key-%08d", lo+50)),
		}
	}
	if rc := tbl.RegionCount(); rc < 8 {
		b.Fatalf("want many regions, got %d", rc)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out := tbl.ScanRanges(ranges, nil, 0)
		if len(out) != 64*50 {
			b.Fatalf("scan returned %d", len(out))
		}
	}
}
