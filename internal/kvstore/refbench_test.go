package kvstore

// Benchmarks the pre-overhaul linear merge (kept as the property-test
// oracle in mergeprop_test.go) so before/after comparisons can be
// reproduced on one machine under identical load.
import "testing"

func benchmarkReferenceMerge(b *testing.B, k int) {
	sources := buildMergeSources(k, 65536)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		out := referenceMerge(sources, true)
		if len(out) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkReferenceMerge4Sources(b *testing.B)  { benchmarkReferenceMerge(b, 4) }
func BenchmarkReferenceMerge16Sources(b *testing.B) { benchmarkReferenceMerge(b, 16) }
func BenchmarkReferenceMerge64Sources(b *testing.B) { benchmarkReferenceMerge(b, 64) }
