package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"
)

// testBlockConfig returns a block config with no cache wired, so fetches
// decode directly and tests exercise the format, not the cache.
func testBlockConfig(blockBytes, bloomBits int) *blockConfig {
	return &blockConfig{blockBytes: blockBytes, bloomBits: bloomBits}
}

// buildEntries generates n strictly-ascending entries with trajectory-style
// composite keys (long shared prefixes), mixed value sizes, empty values,
// and periodic tombstones.
func buildEntries(n int, seed int64) []entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("traj/%04d/%010d", i/64, i))
		var value []byte
		switch i % 7 {
		case 0: // empty value
		case 1:
			value = bytes.Repeat([]byte{byte(i)}, 1+rng.Intn(8))
		default:
			value = make([]byte, rng.Intn(200))
			rng.Read(value)
		}
		out = append(out, entry{key: key, value: value, tomb: i%13 == 0})
	}
	return out
}

func buildRun(cfg *blockConfig, es []entry) *blockRun {
	b := newBlockBuilder(cfg)
	for i := range es {
		b.add(es[i].key, es[i].value, es[i].tomb)
	}
	return b.finish()
}

func TestBlockRoundTrip(t *testing.T) {
	for _, blockBytes := range []int{512, 4 << 10, 1 << 20} {
		t.Run(fmt.Sprintf("block%d", blockBytes), func(t *testing.T) {
			es := buildEntries(2000, 42)
			cfg := testBlockConfig(blockBytes, 10)
			br := buildRun(cfg, es)

			if !entriesEqual(br.materialize(), es) {
				t.Fatal("materialize does not round-trip the input entries")
			}
			if br.count != len(es) {
				t.Fatalf("count = %d, want %d", br.count, len(es))
			}
			wantRaw := 0
			for i := range es {
				wantRaw += len(es[i].key) + len(es[i].value)
			}
			if br.rawBytes != wantRaw {
				t.Fatalf("rawBytes = %d, want %d", br.rawBytes, wantRaw)
			}
			gotEnc := 0
			for _, blk := range br.blocks {
				gotEnc += len(blk)
			}
			if br.encBytes != gotEnc {
				t.Fatalf("encBytes = %d, blocks total %d", br.encBytes, gotEnc)
			}
			if len(br.index) != len(br.blocks) {
				t.Fatalf("index has %d rows for %d blocks", len(br.index), len(br.blocks))
			}
			// Index invariants: firstKey matches the block's first entry and
			// counts sum to the run count.
			sum, pos := 0, 0
			for i, blk := range br.blocks {
				got, _, err := decodeBlock(blk)
				if err != nil {
					t.Fatalf("block %d: %v", i, err)
				}
				if !bytes.Equal(br.index[i].firstKey, got[0].key) {
					t.Fatalf("block %d: index firstKey %q, block starts %q", i, br.index[i].firstKey, got[0].key)
				}
				if br.index[i].count != len(got) {
					t.Fatalf("block %d: index count %d, block holds %d", i, br.index[i].count, len(got))
				}
				if !entriesEqual(got, es[pos:pos+len(got)]) {
					t.Fatalf("block %d: content mismatch", i)
				}
				sum += len(got)
				pos += len(got)
			}
			if sum != br.count {
				t.Fatalf("index counts sum to %d, run count %d", sum, br.count)
			}
			if blockBytes <= 4<<10 && len(br.blocks) < 2 {
				t.Fatalf("expected a multi-block run at %d-byte blocks, got %d blocks", blockBytes, len(br.blocks))
			}
		})
	}
}

func TestBlockRunGet(t *testing.T) {
	es := buildEntries(1500, 7)
	br := buildRun(testBlockConfig(1024, 10), es)
	for i := range es {
		v, tomb, found, _ := br.get(es[i].key)
		if !found {
			t.Fatalf("key %q not found (bloom false negative or seek bug)", es[i].key)
		}
		if !bytes.Equal(v, es[i].value) || tomb != es[i].tomb {
			t.Fatalf("key %q: got (%q, %v), want (%q, %v)", es[i].key, v, tomb, es[i].value, es[i].tomb)
		}
	}
	for _, miss := range [][]byte{[]byte("a"), []byte("traj/0000/0000000000x"), []byte("zzz")} {
		if _, _, found, _ := br.get(miss); found {
			t.Fatalf("absent key %q reported found", miss)
		}
	}
}

func TestBlockRunEmptyAndSingle(t *testing.T) {
	cfg := testBlockConfig(4<<10, 10)
	empty := buildRun(cfg, nil)
	if empty.count != 0 || len(empty.blocks) != 0 || empty.filter != nil {
		t.Fatalf("empty run: count=%d blocks=%d filter=%v", empty.count, len(empty.blocks), empty.filter)
	}
	if _, _, found, _ := empty.get([]byte("k")); found {
		t.Fatal("empty run found a key")
	}
	if got := empty.materialize(); len(got) != 0 {
		t.Fatalf("empty run materializes %d entries", len(got))
	}

	single := buildRun(cfg, []entry{{key: []byte("only"), value: []byte("v"), tomb: false}})
	if single.count != 1 || len(single.blocks) != 1 {
		t.Fatalf("single-entry run: count=%d blocks=%d", single.count, len(single.blocks))
	}
	v, _, found, _ := single.get([]byte("only"))
	if !found || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("single-entry get = (%q, %v)", v, found)
	}
	if _, _, found, _ := single.get([]byte("onlx")); found {
		t.Fatal("single-entry run found an absent key")
	}
}

// TestDecodeBlockTruncation feeds every proper prefix of a valid block to
// the decoder: all must fail with ErrBlockCorrupt, none may panic.
func TestDecodeBlockTruncation(t *testing.T) {
	br := buildRun(testBlockConfig(1024, 0), buildEntries(300, 3))
	enc := br.blocks[0]
	for n := 0; n < len(enc); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decodeBlock panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, _, err := decodeBlock(enc[:n]); err == nil {
				t.Fatalf("%d-byte truncation decoded successfully", n)
			}
		}()
	}
}

// TestDecodeBlockBitFlips flips one bit at every byte offset: the checksum
// must reject every single-bit corruption.
func TestDecodeBlockBitFlips(t *testing.T) {
	br := buildRun(testBlockConfig(2048, 0), buildEntries(400, 9))
	enc := br.blocks[0]
	mut := make([]byte, len(enc))
	for off := 0; off < len(enc); off++ {
		copy(mut, enc)
		mut[off] ^= 1 << (off % 8)
		if _, _, err := decodeBlock(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded successfully", off)
		}
	}
}

// refix recomputes the checksum so tampered payloads pass the CRC and hit
// the structural validators behind it.
func refix(enc []byte) []byte {
	binary.LittleEndian.PutUint32(enc[:4], crc32.Checksum(enc[4:], crcTable))
	return enc
}

// TestDecodeBlockTamperedStructures corrupts specific header fields and
// repairs the checksum: the structural validation must still reject each.
func TestDecodeBlockTamperedStructures(t *testing.T) {
	br := buildRun(testBlockConfig(1024, 0), buildEntries(200, 11))
	base := br.blocks[0]

	tamper := func(name string, mutate func(enc []byte) []byte) {
		enc := append([]byte(nil), base...)
		enc = refix(mutate(enc))
		if _, _, err := decodeBlock(enc); err == nil {
			t.Errorf("%s: tampered block decoded successfully", name)
		}
	}
	tamper("bad format version", func(enc []byte) []byte { enc[4] = 99; return enc })
	tamper("zero entry count", func(enc []byte) []byte {
		// count is the first uvarint after the version byte; blocks here
		// hold <128 entries so it is a single byte.
		enc[5] = 0
		return enc
	})
	tamper("inflated entry count", func(enc []byte) []byte { enc[5] = 127; return enc })
	tamper("truncated stream", func(enc []byte) []byte { return enc[:len(enc)-3] })
	tamper("trailing garbage", func(enc []byte) []byte { return append(enc, 0xAB) })
	// A flipped value byte with a repaired CRC is NOT detectable — values
	// are arbitrary — so corruption there must be caught by the checksum
	// alone, which TestDecodeBlockBitFlips covers. Here corrupt the restart
	// words instead, which the offset/entry cross-check rejects.
	tamper("corrupt restart words", func(enc []byte) []byte { enc[12] ^= 0xFF; return enc })
}

func TestBloomProperties(t *testing.T) {
	const n, bitsPerKey = 10000, 10
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = bloomHash([]byte(fmt.Sprintf("present/%08d", i)))
	}
	f := newBloom(hashes, bitsPerKey)
	if f == nil {
		t.Fatal("newBloom returned nil for a populated filter")
	}
	for i := range hashes {
		if !f.mayContain(hashes[i]) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.mayContain(bloomHash([]byte(fmt.Sprintf("absent/%08d", i)))) {
			fp++
		}
	}
	// 10 bits/key gives ~1% theoretical FP; 5% leaves slack for hash luck.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.4f too high for %d bits/key", rate, bitsPerKey)
	}
	if f.sizeBytes() == 0 {
		t.Fatal("populated filter reports zero size")
	}
	var nilFilter *bloom
	if nilFilter.sizeBytes() != 0 {
		t.Fatal("nil filter reports nonzero size")
	}
	if newBloom(nil, bitsPerKey) != nil || newBloom(hashes, 0) != nil {
		t.Fatal("disabled/empty bloom must be nil")
	}
}

// FuzzDecodeBlock throws arbitrary bytes at the decoder. It must never
// panic, and anything it accepts must satisfy the format's invariants.
func FuzzDecodeBlock(f *testing.F) {
	for _, blockBytes := range []int{256, 1024} {
		br := buildRun(testBlockConfig(blockBytes, 0), buildEntries(200, int64(blockBytes)))
		for _, blk := range br.blocks {
			f.Add(append([]byte(nil), blk...))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, blockFormatV1, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, rawBytes, err := decodeBlock(data)
		if err != nil {
			return
		}
		got := 0
		for i := range entries {
			if i > 0 && bytes.Compare(entries[i-1].key, entries[i].key) >= 0 {
				t.Fatalf("accepted block with unsorted keys at %d", i)
			}
			got += len(entries[i].key) + len(entries[i].value)
		}
		if got != rawBytes {
			t.Fatalf("accepted block where entries total %d bytes but header says %d", got, rawBytes)
		}
	})
}
