package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// TestScanRangesLimitDeterministicAcrossRegions: with limit > 0 spanning
// several regions, every run must return the same rows — the globally
// smallest `limit` keys matching the (sorted, non-overlapping) ranges —
// because merged rows are sorted by key before truncation.
func TestScanRangesLimitDeterministicAcrossRegions(t *testing.T) {
	o := NoNetworkOptions()
	o.RegionMaxBytes = 4 << 10
	o.MemtableFlushBytes = 1 << 10
	s := Open(o)
	tbl := s.OpenTable("t")
	const n = 4000
	for i := 0; i < n; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%06d", i)))
	}
	if tbl.RegionCount() < 3 {
		t.Fatalf("want >=3 regions, got %d", tbl.RegionCount())
	}

	// Two sorted, non-overlapping ranges that each span region boundaries.
	ranges := []KeyRange{
		{Start: []byte("k000100"), End: []byte("k001500")},
		{Start: []byte("k002000"), End: []byte("k003500")},
	}
	const limit = 700

	// Brute force: smallest `limit` matching keys.
	var want []string
	for i := 100; i < 1500 && len(want) < limit; i++ {
		want = append(want, fmt.Sprintf("k%06d", i))
	}
	for i := 2000; i < 3500 && len(want) < limit; i++ {
		want = append(want, fmt.Sprintf("k%06d", i))
	}

	var first []KV
	for run := 0; run < 10; run++ {
		got := tbl.ScanRanges(ranges, nil, limit)
		if len(got) != limit {
			t.Fatalf("run %d: %d rows, want %d", run, len(got), limit)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return bytes.Compare(got[i].Key, got[j].Key) < 0 }) {
			t.Fatalf("run %d: limited result not key-ordered", run)
		}
		for i, kv := range got {
			if string(kv.Key) != want[i] {
				t.Fatalf("run %d row %d: got %q, want %q", run, i, kv.Key, want[i])
			}
		}
		if run == 0 {
			first = got
		} else if len(first) != len(got) {
			t.Fatalf("run %d: result size changed: %d vs %d", run, len(got), len(first))
		}
	}
}

// TestScanRangesLimitUnsortedRangesDeterministic: even with ranges given out
// of order the truncated result must be identical across runs.
func TestScanRangesLimitUnsortedRangesDeterministic(t *testing.T) {
	o := NoNetworkOptions()
	o.RegionMaxBytes = 4 << 10
	o.MemtableFlushBytes = 1 << 10
	s := Open(o)
	tbl := s.OpenTable("t")
	for i := 0; i < 4000; i++ {
		tbl.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v"))
	}
	ranges := []KeyRange{
		{Start: []byte("k003000"), End: []byte("k003800")},
		{Start: []byte("k000200"), End: []byte("k001000")},
	}
	baseline := tbl.ScanRanges(ranges, nil, 300)
	if len(baseline) != 300 {
		t.Fatalf("got %d rows, want 300", len(baseline))
	}
	for run := 0; run < 10; run++ {
		got := tbl.ScanRanges(ranges, nil, 300)
		if len(got) != len(baseline) {
			t.Fatalf("run %d: size %d vs %d", run, len(got), len(baseline))
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, baseline[i].Key) {
				t.Fatalf("run %d row %d: %q vs %q", run, i, got[i].Key, baseline[i].Key)
			}
		}
	}
}
