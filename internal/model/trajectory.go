// Package model defines TMan's core data model: spatio-temporal points,
// trajectories, time ranges, and the DP-Features sketch (representative
// points + bounding boxes, after TraSS) used to accelerate spatial and
// similarity queries without decompressing full point sequences.
package model

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tman-db/tman/internal/geo"
)

// Point is a single GPS observation. X and Y are planar coordinates
// (longitude and latitude in degrees for the datasets used in the paper);
// T is the observation timestamp in Unix milliseconds.
type Point struct {
	X, Y float64
	T    int64
}

// TimeRange is a closed time interval [Start, End] in Unix milliseconds.
type TimeRange struct {
	Start, End int64
}

// Valid reports whether the range is well formed (Start <= End).
func (tr TimeRange) Valid() bool { return tr.Start <= tr.End }

// Duration returns the length of the range in milliseconds.
func (tr TimeRange) Duration() int64 { return tr.End - tr.Start }

// Intersects reports whether two closed time ranges share at least one
// instant.
func (tr TimeRange) Intersects(o TimeRange) bool {
	return tr.Start <= o.End && o.Start <= tr.End
}

// Contains reports whether o lies entirely within tr.
func (tr TimeRange) Contains(o TimeRange) bool {
	return tr.Start <= o.Start && o.End <= tr.End
}

// String implements fmt.Stringer.
func (tr TimeRange) String() string {
	return fmt.Sprintf("[%d,%d]", tr.Start, tr.End)
}

// Trajectory is a time-ordered sequence of points produced by one moving
// object. OID identifies the object (a courier, a taxi); TID uniquely
// identifies the trajectory among all trajectories of all objects.
type Trajectory struct {
	OID    string
	TID    string
	Points []Point
}

// Validation errors returned by Trajectory.Validate.
var (
	ErrEmptyTrajectory = errors.New("model: trajectory has no points")
	ErrNoTID           = errors.New("model: trajectory has no TID")
	ErrUnorderedPoints = errors.New("model: trajectory points are not time-ordered")
)

// Validate checks structural invariants: a non-empty TID, at least one
// point, and non-decreasing timestamps.
func (t *Trajectory) Validate() error {
	if t.TID == "" {
		return ErrNoTID
	}
	if len(t.Points) == 0 {
		return ErrEmptyTrajectory
	}
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].T < t.Points[i-1].T {
			return fmt.Errorf("%w: point %d at %d before point %d at %d",
				ErrUnorderedPoints, i, t.Points[i].T, i-1, t.Points[i-1].T)
		}
	}
	return nil
}

// SortByTime sorts the points of t by timestamp (stable), repairing
// out-of-order input.
func (t *Trajectory) SortByTime() {
	sort.SliceStable(t.Points, func(i, j int) bool { return t.Points[i].T < t.Points[j].T })
}

// TimeRange returns the closed interval from the first point's timestamp to
// the last point's. The trajectory must be non-empty and time-ordered.
func (t *Trajectory) TimeRange() TimeRange {
	if len(t.Points) == 0 {
		return TimeRange{}
	}
	return TimeRange{Start: t.Points[0].T, End: t.Points[len(t.Points)-1].T}
}

// MBR returns the minimum bounding rectangle of all points.
func (t *Trajectory) MBR() geo.Rect {
	if len(t.Points) == 0 {
		return geo.Rect{}
	}
	r := geo.Rect{MinX: t.Points[0].X, MinY: t.Points[0].Y, MaxX: t.Points[0].X, MaxY: t.Points[0].Y}
	for _, p := range t.Points[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Points) }

// Segments calls fn for every consecutive point pair. It is the common
// building block for intersection tests without materializing a segment
// slice. fn returning false stops the iteration early.
func (t *Trajectory) Segments(fn func(s geo.Segment) bool) {
	for i := 1; i < len(t.Points); i++ {
		s := geo.Segment{
			X1: t.Points[i-1].X, Y1: t.Points[i-1].Y,
			X2: t.Points[i].X, Y2: t.Points[i].Y,
		}
		if !fn(s) {
			return
		}
	}
}

// IntersectsRect reports whether any point or segment of the trajectory
// intersects r. A single-point trajectory intersects iff its point is in r.
func (t *Trajectory) IntersectsRect(r geo.Rect) bool {
	if len(t.Points) == 0 {
		return false
	}
	if len(t.Points) == 1 {
		return r.ContainsPoint(t.Points[0].X, t.Points[0].Y)
	}
	hit := false
	t.Segments(func(s geo.Segment) bool {
		if s.IntersectsRect(r) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// Clone returns a deep copy of the trajectory.
func (t *Trajectory) Clone() *Trajectory {
	pts := make([]Point, len(t.Points))
	copy(pts, t.Points)
	return &Trajectory{OID: t.OID, TID: t.TID, Points: pts}
}

// String implements fmt.Stringer with a compact summary.
func (t *Trajectory) String() string {
	return fmt.Sprintf("Trajectory(oid=%s tid=%s pts=%d tr=%v)", t.OID, t.TID, len(t.Points), t.TimeRange())
}
