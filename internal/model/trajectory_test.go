package model

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/tman-db/tman/internal/geo"
)

func traj(tid string, pts ...Point) *Trajectory {
	return &Trajectory{OID: "o1", TID: tid, Points: pts}
}

func TestTrajectoryValidate(t *testing.T) {
	if err := traj("t1", Point{0, 0, 1}, Point{1, 1, 2}).Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	if err := traj("t1").Validate(); !errors.Is(err, ErrEmptyTrajectory) {
		t.Errorf("empty trajectory: got %v", err)
	}
	if err := (&Trajectory{Points: []Point{{0, 0, 1}}}).Validate(); !errors.Is(err, ErrNoTID) {
		t.Errorf("missing tid: got %v", err)
	}
	if err := traj("t1", Point{0, 0, 5}, Point{1, 1, 2}).Validate(); !errors.Is(err, ErrUnorderedPoints) {
		t.Errorf("unordered: got %v", err)
	}
	// Equal timestamps are allowed.
	if err := traj("t1", Point{0, 0, 5}, Point{1, 1, 5}).Validate(); err != nil {
		t.Errorf("equal timestamps rejected: %v", err)
	}
}

func TestTrajectorySortByTime(t *testing.T) {
	tr := traj("t1", Point{0, 0, 5}, Point{1, 1, 2}, Point{2, 2, 9})
	tr.SortByTime()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after sort: %v", err)
	}
	if tr.Points[0].T != 2 || tr.Points[2].T != 9 {
		t.Errorf("sort order wrong: %+v", tr.Points)
	}
}

func TestTimeRange(t *testing.T) {
	tr := traj("t1", Point{0, 0, 100}, Point{1, 1, 200}, Point{2, 2, 350})
	if got := tr.TimeRange(); got != (TimeRange{100, 350}) {
		t.Errorf("TimeRange = %v", got)
	}
	a := TimeRange{0, 10}
	if !a.Intersects(TimeRange{10, 20}) {
		t.Error("touching ranges should intersect")
	}
	if a.Intersects(TimeRange{11, 20}) {
		t.Error("disjoint ranges should not intersect")
	}
	if !a.Contains(TimeRange{3, 7}) || a.Contains(TimeRange{3, 11}) {
		t.Error("Contains wrong")
	}
	if (TimeRange{5, 3}).Valid() {
		t.Error("inverted range should be invalid")
	}
}

func TestTrajectoryMBR(t *testing.T) {
	tr := traj("t1", Point{3, 7, 1}, Point{-1, 2, 2}, Point{5, 4, 3})
	want := geo.Rect{MinX: -1, MinY: 2, MaxX: 5, MaxY: 7}
	if got := tr.MBR(); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	single := traj("t1", Point{2, 3, 1})
	if got := single.MBR(); got != (geo.Rect{MinX: 2, MinY: 3, MaxX: 2, MaxY: 3}) {
		t.Errorf("single-point MBR = %v", got)
	}
}

func TestTrajectoryIntersectsRect(t *testing.T) {
	// A trajectory whose MBR covers the rect but whose path avoids it.
	tr := traj("t1", Point{0, 0, 1}, Point{4, 0, 2}, Point{4, 4, 3})
	hole := geo.Rect{MinX: 1, MinY: 2, MaxX: 2, MaxY: 3}
	if !tr.MBR().Intersects(hole) {
		t.Fatal("test setup: MBR should cover the hole")
	}
	if tr.IntersectsRect(hole) {
		t.Error("path avoids rect; IntersectsRect should be false")
	}
	crossing := geo.Rect{MinX: 1, MinY: -1, MaxX: 2, MaxY: 1}
	if !tr.IntersectsRect(crossing) {
		t.Error("path crosses rect; IntersectsRect should be true")
	}
	if !traj("p", Point{1, 1, 1}).IntersectsRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}) {
		t.Error("single point inside rect")
	}
	if traj("p", Point{5, 5, 1}).IntersectsRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}) {
		t.Error("single point outside rect")
	}
}

func TestTrajectoryClone(t *testing.T) {
	tr := traj("t1", Point{0, 0, 1}, Point{1, 1, 2})
	c := tr.Clone()
	c.Points[0].X = 99
	if tr.Points[0].X == 99 {
		t.Error("Clone shares point storage")
	}
}

func TestSegmentsEarlyStop(t *testing.T) {
	tr := traj("t1", Point{0, 0, 1}, Point{1, 0, 2}, Point{2, 0, 3}, Point{3, 0, 4})
	count := 0
	tr.Segments(func(geo.Segment) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d segments, want 2", count)
	}
}

func randomWalk(rng *rand.Rand, n int) *Trajectory {
	pts := make([]Point, n)
	x, y := rng.Float64(), rng.Float64()
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.01
		y += (rng.Float64() - 0.5) * 0.01
		pts[i] = Point{X: x, Y: y, T: int64(i) * 1000}
	}
	return &Trajectory{OID: "o", TID: "t", Points: pts}
}

func TestDPFeaturesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		tr := randomWalk(rng, 2+rng.Intn(200))
		f := ExtractDPFeatures(tr, 0.001, 32)
		if len(f.Rep) < 2 {
			t.Fatalf("iter %d: want >=2 representative points, got %d", iter, len(f.Rep))
		}
		if len(f.Rep) > 32 {
			t.Fatalf("iter %d: maxRep exceeded: %d", iter, len(f.Rep))
		}
		if f.Rep[0] != tr.Points[0] || f.Rep[len(f.Rep)-1] != tr.Points[len(tr.Points)-1] {
			t.Fatalf("iter %d: endpoints not preserved", iter)
		}
		if len(f.Boxes) != len(f.Rep)-1 {
			t.Fatalf("iter %d: boxes=%d reps=%d", iter, len(f.Boxes), len(f.Rep))
		}
		// Every original point is covered by at least one box.
		for _, p := range tr.Points {
			covered := false
			for _, b := range f.Boxes {
				if b.ContainsPoint(p.X, p.Y) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: point %+v not covered by any feature box", iter, p)
			}
		}
		// Sketch MBR equals trajectory MBR.
		if f.MBR() != tr.MBR() {
			t.Fatalf("iter %d: sketch MBR %v != trajectory MBR %v", iter, f.MBR(), tr.MBR())
		}
	}
}

func TestDPFeaturesMayIntersectIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		tr := randomWalk(rng, 2+rng.Intn(100))
		f := ExtractDPFeatures(tr, 0.002, 16)
		cx, cy := rng.Float64(), rng.Float64()
		r := geo.NewRect(cx, cy, cx+rng.Float64()*0.1, cy+rng.Float64()*0.1)
		exact := tr.IntersectsRect(r)
		approx := f.MayIntersect(r)
		if exact && !approx {
			t.Fatalf("iter %d: sketch produced a false negative (rect %v)", iter, r)
		}
	}
}

func TestDPFeaturesMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		tr := randomWalk(rng, 2+rng.Intn(100))
		f := ExtractDPFeatures(tr, 0.002, 16)
		qx, qy := rng.Float64()*2-0.5, rng.Float64()*2-0.5
		lb := f.MinDistToPoint(qx, qy)
		// Exact nearest original point distance.
		best := -1.0
		for _, p := range tr.Points {
			dx, dy := p.X-qx, p.Y-qy
			d := dx*dx + dy*dy
			if best < 0 || d < best {
				best = d
			}
		}
		exact := sqrtf(best)
		if lb > exact+1e-9 {
			t.Fatalf("iter %d: lower bound %g exceeds exact distance %g", iter, lb, exact)
		}
	}
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 64; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

func TestDPFeaturesDegenerateInputs(t *testing.T) {
	empty := ExtractDPFeatures(&Trajectory{TID: "e"}, 0.01, 8)
	if len(empty.Rep) != 0 || len(empty.Boxes) != 0 {
		t.Error("empty trajectory should yield empty sketch")
	}
	single := ExtractDPFeatures(traj("s", Point{1, 2, 3}), 0.01, 8)
	if len(single.Rep) != 1 || len(single.Boxes) != 0 {
		t.Errorf("single point sketch = %+v", single)
	}
	if !single.MayIntersect(geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}) {
		t.Error("single point sketch should intersect covering rect")
	}
	two := ExtractDPFeatures(traj("d", Point{0, 0, 1}, Point{1, 1, 2}), 0.01, 8)
	if len(two.Rep) != 2 || len(two.Boxes) != 1 {
		t.Errorf("two-point sketch = %+v", two)
	}
}

func TestDPFeaturesStraightLineCollapses(t *testing.T) {
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{X: float64(i), Y: 2 * float64(i), T: int64(i)}
	}
	f := ExtractDPFeatures(&Trajectory{OID: "o", TID: "line", Points: pts}, 1e-9, 0)
	if len(f.Rep) != 2 {
		t.Errorf("collinear points should collapse to endpoints, got %d reps", len(f.Rep))
	}
}

func TestStringersAndAccessors(t *testing.T) {
	tr := traj("t9", Point{1, 2, 100}, Point{3, 4, 200})
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.TimeRange().Duration(); got != 100 {
		t.Errorf("Duration = %d", got)
	}
	if s := tr.String(); s == "" || !strings.Contains(s, "t9") {
		t.Errorf("Trajectory.String = %q", s)
	}
	if s := (TimeRange{1, 2}).String(); s != "[1,2]" {
		t.Errorf("TimeRange.String = %q", s)
	}
	// Empty trajectory degenerate accessors.
	empty := &Trajectory{TID: "e"}
	if empty.TimeRange() != (TimeRange{}) {
		t.Error("empty TimeRange should be zero")
	}
}

func TestDPFeaturesSinglePointBounds(t *testing.T) {
	single := ExtractDPFeatures(traj("s", Point{2, 3, 1}), 0.01, 8)
	// MBR of a box-less sketch falls back to representative-point bounds.
	if got := single.MBR(); got != (geo.Rect{MinX: 2, MinY: 3, MaxX: 2, MaxY: 3}) {
		t.Errorf("single MBR = %v", got)
	}
	if d := single.MinDistToPoint(2, 4); math.Abs(d-1) > 1e-12 {
		t.Errorf("single MinDistToPoint = %g", d)
	}
	if single.MayIntersect(geo.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}) {
		t.Error("distant rect should not intersect single-point sketch")
	}
	emptySketch := DPFeatures{}
	if emptySketch.MBR() != (geo.Rect{}) {
		t.Error("empty sketch MBR should be zero")
	}
	if emptySketch.MinDistToPoint(1, 1) != 0 {
		t.Error("empty sketch MinDist should be 0")
	}
}
