package model

import (
	"github.com/tman-db/tman/internal/geo"
)

// DPFeatures is the trajectory sketch proposed in TraSS ("dp-feature") and
// reused by TMan's storage schema (Section III / IV-B of the paper): a small
// set of representative points chosen by Douglas-Peucker simplification,
// together with the bounding box of every run of original points between two
// consecutive representative points.
//
// The sketch supports cheap conservative tests:
//
//   - spatial filters can reject a trajectory if no sub-box intersects the
//     query window, without decompressing the full point sequence;
//   - similarity searches obtain lower bounds on point-set distances from
//     the boxes (every original point lies inside the box covering it).
type DPFeatures struct {
	// Rep holds the representative points in trajectory order. It always
	// includes the first and last point of the trajectory.
	Rep []Point
	// Boxes[i] bounds all original points between Rep[i] and Rep[i+1]
	// inclusive; len(Boxes) == len(Rep)-1 for trajectories with >= 2
	// representative points, and len(Boxes) == 0 for single-point input.
	Boxes []geo.Rect
}

// ExtractDPFeatures computes the DP-Features sketch with the given
// simplification tolerance (in coordinate units) and an upper bound on the
// number of representative points. maxRep <= 2 keeps only the endpoints;
// maxRep <= 0 means no bound.
func ExtractDPFeatures(t *Trajectory, epsilon float64, maxRep int) DPFeatures {
	n := len(t.Points)
	if n == 0 {
		return DPFeatures{}
	}
	if n == 1 {
		return DPFeatures{Rep: []Point{t.Points[0]}}
	}
	keep := douglasPeucker(t.Points, epsilon)
	if maxRep > 1 && len(keep) > maxRep {
		keep = thinIndices(keep, maxRep)
	}
	rep := make([]Point, len(keep))
	for i, idx := range keep {
		rep[i] = t.Points[idx]
	}
	boxes := make([]geo.Rect, len(keep)-1)
	for i := 0; i+1 < len(keep); i++ {
		boxes[i] = boundsOf(t.Points[keep[i] : keep[i+1]+1])
	}
	return DPFeatures{Rep: rep, Boxes: boxes}
}

// douglasPeucker returns the sorted indices of points kept by the classic
// Douglas-Peucker polyline simplification with tolerance epsilon. The first
// and last indices are always kept. An iterative stack avoids deep recursion
// on long trajectories.
func douglasPeucker(pts []Point, epsilon float64) []int {
	n := len(pts)
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, n - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		seg := geo.Segment{X1: pts[s.lo].X, Y1: pts[s.lo].Y, X2: pts[s.hi].X, Y2: pts[s.hi].Y}
		maxD, maxI := -1.0, -1
		for i := s.lo + 1; i < s.hi; i++ {
			d := geo.PointSegmentDist(pts[i].X, pts[i].Y, seg)
			if d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > epsilon {
			keep[maxI] = true
			stack = append(stack, span{s.lo, maxI}, span{maxI, s.hi})
		}
	}
	out := make([]int, 0, 16)
	for i, k := range keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// thinIndices reduces a sorted index list to at most max entries, always
// preserving the first and last.
func thinIndices(idx []int, max int) []int {
	if len(idx) <= max {
		return idx
	}
	out := make([]int, 0, max)
	// Evenly sample max-1 positions over [0, len-2], then append the last.
	for i := 0; i < max-1; i++ {
		pos := i * (len(idx) - 1) / (max - 1)
		if len(out) == 0 || idx[pos] != out[len(out)-1] {
			out = append(out, idx[pos])
		}
	}
	if out[len(out)-1] != idx[len(idx)-1] {
		out = append(out, idx[len(idx)-1])
	}
	return out
}

func boundsOf(pts []Point) geo.Rect {
	r := geo.Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}

// MBR returns the union of all feature boxes (or the bounds of the
// representative points when there are no boxes).
func (f DPFeatures) MBR() geo.Rect {
	if len(f.Boxes) == 0 {
		if len(f.Rep) == 0 {
			return geo.Rect{}
		}
		return boundsOf(f.Rep)
	}
	r := f.Boxes[0]
	for _, b := range f.Boxes[1:] {
		r = r.Union(b)
	}
	return r
}

// MayIntersect reports whether the sketch admits an intersection between the
// original trajectory and r. False guarantees the original trajectory does
// not intersect r; true requires an exact check on the full points.
func (f DPFeatures) MayIntersect(r geo.Rect) bool {
	if len(f.Boxes) == 0 {
		for _, p := range f.Rep {
			if r.ContainsPoint(p.X, p.Y) {
				return true
			}
		}
		return false
	}
	for _, b := range f.Boxes {
		if b.Intersects(r) {
			return true
		}
	}
	return false
}

// MinDistToPoint returns a lower bound on the distance from (x, y) to any
// original point of the trajectory.
func (f DPFeatures) MinDistToPoint(x, y float64) float64 {
	if len(f.Boxes) == 0 {
		best := -1.0
		for _, p := range f.Rep {
			d := geo.PointSegmentDist(x, y, geo.Segment{X1: p.X, Y1: p.Y, X2: p.X, Y2: p.Y})
			if best < 0 || d < best {
				best = d
			}
		}
		if best < 0 {
			return 0
		}
		return best
	}
	best := f.Boxes[0].MinDistToPoint(x, y)
	for _, b := range f.Boxes[1:] {
		if d := b.MinDistToPoint(x, y); d < best {
			best = d
		}
	}
	return best
}
