// Package codec implements the order-preserving byte encodings TMan uses to
// build row keys for its key-value tables.
//
// Key-value stores sort rows lexicographically by key bytes, so every
// component of a composite row key must be encoded such that byte order
// equals logical order:
//
//   - unsigned integers are written big-endian with a fixed width;
//   - signed integers are offset by the sign bit first;
//   - strings are terminated with 0x00 (and must not contain 0x00).
//
// The primary-table row key layout (paper Eq. 6) is
//
//	rowkey = shard(1B) :: indexValue(8B BE) :: tid bytes
//
// and secondary-table keys follow the same pattern with their own index
// value component.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortKey is returned when decoding a key that is shorter than the
// fixed-width components require.
var ErrShortKey = errors.New("codec: key too short")

// AppendUint64 appends v big-endian (8 bytes, order-preserving) to dst.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// Uint64 decodes a big-endian uint64 from the first 8 bytes of b.
func Uint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("%w: need 8 bytes, have %d", ErrShortKey, len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// AppendUint32 appends v big-endian (4 bytes, order-preserving) to dst.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// Uint32 decodes a big-endian uint32 from the first 4 bytes of b.
func Uint32(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: need 4 bytes, have %d", ErrShortKey, len(b))
	}
	return binary.BigEndian.Uint32(b), nil
}

// AppendInt64 appends v in an order-preserving signed encoding: the sign bit
// is flipped so that negative values sort before positive ones.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v)^(1<<63))
}

// Int64 decodes an order-preserving signed int64 from the first 8 bytes.
func Int64(b []byte) (int64, error) {
	u, err := Uint64(b)
	if err != nil {
		return 0, err
	}
	return int64(u ^ (1 << 63)), nil
}

// PrimaryKey builds a primary-table row key: shard byte, 8-byte big-endian
// index value, then the raw tid bytes.
func PrimaryKey(shard byte, indexValue uint64, tid string) []byte {
	k := make([]byte, 0, 1+8+len(tid))
	k = append(k, shard)
	k = AppendUint64(k, indexValue)
	k = append(k, tid...)
	return k
}

// SplitPrimaryKey decodes a primary-table row key into its components.
func SplitPrimaryKey(key []byte) (shard byte, indexValue uint64, tid string, err error) {
	if len(key) < 9 {
		return 0, 0, "", fmt.Errorf("%w: primary key needs >=9 bytes, have %d", ErrShortKey, len(key))
	}
	v, _ := Uint64(key[1:])
	return key[0], v, string(key[9:]), nil
}

// RangeForIndexValues returns the [start, end) key range that covers, within
// one shard, every primary key whose index value lies in [lo, hi] for any
// tid. end is exclusive: it is the first key of index value hi+1 (or the
// next shard when hi is the maximum value).
func RangeForIndexValues(shard byte, lo, hi uint64) (start, end []byte) {
	start = make([]byte, 0, 9)
	start = append(start, shard)
	start = AppendUint64(start, lo)
	end = make([]byte, 0, 9)
	if hi == ^uint64(0) {
		end = append(end, shard+1)
		if shard == 0xFF {
			// Sentinel past all keys of the last shard.
			end = append(end[:0], 0xFF)
			end = AppendUint64(end, hi)
			end = append(end, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		}
		return start, end
	}
	end = append(end, shard)
	end = AppendUint64(end, hi+1)
	return start, end
}

// SecondaryKey builds a secondary-table row key: shard byte, a raw
// order-preserving encoded index component, then the tid bytes separated by
// 0x00. tid must not contain 0x00.
func SecondaryKey(shard byte, indexComponent []byte, tid string) []byte {
	k := make([]byte, 0, 1+len(indexComponent)+1+len(tid))
	k = append(k, shard)
	k = append(k, indexComponent...)
	k = append(k, 0x00)
	k = append(k, tid...)
	return k
}

// AppendString appends s followed by a 0x00 terminator, preserving order
// among strings that do not contain 0x00.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, s...)
	return append(dst, 0x00)
}

// String decodes a 0x00-terminated string from b, returning the string and
// the remaining bytes.
func String(b []byte) (string, []byte, error) {
	for i, c := range b {
		if c == 0x00 {
			return string(b[:i]), b[i+1:], nil
		}
	}
	return "", nil, errors.New("codec: unterminated string component")
}

// ShardOf deterministically assigns a tid to one of n shards using the FNV-1a
// hash. n must be in [1, 256].
func ShardOf(tid string, n int) byte {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(tid); i++ {
		h ^= uint64(tid[i])
		h *= prime64
	}
	return byte(h % uint64(n))
}
