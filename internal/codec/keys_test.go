package codec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUint64(nil, v)
		got, err := Uint64(b)
		return err == nil && got == v && len(b) == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64OrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		ba := AppendUint64(nil, a)
		bb := AppendUint64(nil, b)
		cmp := bytes.Compare(ba, bb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ba := AppendInt64(nil, a)
		bb := AppendInt64(nil, b)
		cmp := bytes.Compare(ba, bb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Round trip.
	g := func(v int64) bool {
		got, err := Int64(AppendInt64(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortDecodes(t *testing.T) {
	if _, err := Uint64([]byte{1, 2}); err == nil {
		t.Error("short uint64 should error")
	}
	if _, err := Uint32([]byte{1}); err == nil {
		t.Error("short uint32 should error")
	}
	if _, err := Int64(nil); err == nil {
		t.Error("nil int64 should error")
	}
	if _, _, _, err := SplitPrimaryKey([]byte{1, 2, 3}); err == nil {
		t.Error("short primary key should error")
	}
}

func TestPrimaryKeyRoundTrip(t *testing.T) {
	f := func(shard byte, v uint64, tid string) bool {
		k := PrimaryKey(shard, v, tid)
		s, iv, id, err := SplitPrimaryKey(k)
		return err == nil && s == shard && iv == v && id == tid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryKeyOrdering(t *testing.T) {
	// Within a shard, keys sort by index value first, then tid.
	k1 := PrimaryKey(3, 100, "zzz")
	k2 := PrimaryKey(3, 101, "aaa")
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("smaller index value should sort first regardless of tid")
	}
	k3 := PrimaryKey(3, 100, "aaa")
	if bytes.Compare(k3, k1) >= 0 {
		t.Error("same index value: tid breaks ties")
	}
	// Shard dominates.
	k4 := PrimaryKey(2, ^uint64(0), "zzz")
	if bytes.Compare(k4, k3) >= 0 {
		t.Error("lower shard should sort first")
	}
}

func TestRangeForIndexValuesCoversExactly(t *testing.T) {
	start, end := RangeForIndexValues(5, 10, 20)
	inside := [][]byte{
		PrimaryKey(5, 10, ""),
		PrimaryKey(5, 10, "a"),
		PrimaryKey(5, 15, "zz"),
		PrimaryKey(5, 20, "\xff\xff"),
	}
	outside := [][]byte{
		PrimaryKey(5, 9, "\xff"),
		PrimaryKey(5, 21, ""),
		PrimaryKey(4, 15, "a"),
		PrimaryKey(6, 15, "a"),
	}
	for _, k := range inside {
		if bytes.Compare(k, start) < 0 || bytes.Compare(k, end) >= 0 {
			t.Errorf("key %x should be inside [%x,%x)", k, start, end)
		}
	}
	for _, k := range outside {
		if bytes.Compare(k, start) >= 0 && bytes.Compare(k, end) < 0 {
			t.Errorf("key %x should be outside [%x,%x)", k, start, end)
		}
	}
}

func TestRangeForMaxIndexValue(t *testing.T) {
	start, end := RangeForIndexValues(5, 100, ^uint64(0))
	k := PrimaryKey(5, ^uint64(0), "zzzz")
	if bytes.Compare(k, start) < 0 || bytes.Compare(k, end) >= 0 {
		t.Errorf("max index value key should be inside range")
	}
	other := PrimaryKey(6, 0, "")
	if bytes.Compare(other, end) < 0 {
		t.Errorf("next shard's keys must be outside the range")
	}
}

func TestStringComponentRoundTrip(t *testing.T) {
	b := AppendString(nil, "hello")
	b = AppendUint64(b, 42)
	s, rest, err := String(b)
	if err != nil || s != "hello" {
		t.Fatalf("String = %q, err=%v", s, err)
	}
	v, err := Uint64(rest)
	if err != nil || v != 42 {
		t.Fatalf("rest decode = %d, err=%v", v, err)
	}
	if _, _, err := String([]byte("no-terminator")); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestShardOf(t *testing.T) {
	if ShardOf("any", 1) != 0 {
		t.Error("single shard must map to 0")
	}
	// Deterministic.
	if ShardOf("abc", 16) != ShardOf("abc", 16) {
		t.Error("ShardOf must be deterministic")
	}
	// Within range and reasonably spread.
	seen := map[byte]int{}
	for i := 0; i < 1000; i++ {
		s := ShardOf(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), 8)
		if s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s]++
	}
	if len(seen) < 6 {
		t.Errorf("poor shard spread: only %d of 8 shards used", len(seen))
	}
}

func TestSecondaryKeyOrdering(t *testing.T) {
	idx1 := AppendUint64(nil, 7)
	idx2 := AppendUint64(nil, 8)
	k1 := SecondaryKey(1, idx1, "tidZ")
	k2 := SecondaryKey(1, idx2, "tidA")
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("secondary keys should order by index component first")
	}
}
