// Package workload generates the synthetic datasets and query workloads
// used to reproduce the paper's evaluation.
//
// The paper evaluates on two proprietary-ish datasets — TDrive (318,744
// Beijing taxi trajectories over one week) and Lorry (2,643,450 Guangzhou
// lorry trajectories over one month) — plus offset-replicated synthetic
// scalings. Neither raw dataset ships with this repository, so generators
// reproduce the *distributions* the paper itself reports in Fig. 14:
//
//   - TDrive: ~66% of time ranges < 2h, >99% < 18h; spatial extents
//     concentrated at TShape resolutions 7-10 under boundary
//     (110,35,125,45) — trips of roughly 2.7-65 km.
//   - Lorry: ~88% < 2h, 99% < 14h; resolutions 9-14 under boundary
//     (70,0,140,55), with <1% long inter-city hauls.
//
// Every evaluation metric consumed downstream (index selectivity, candidate
// counts, crossovers) depends only on these marginals.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Dataset describes a generated dataset.
type Dataset struct {
	Name     string
	Boundary geo.Rect
	// TimeOrigin is the first possible trajectory start (Unix ms), and
	// TimeSpan the dataset's temporal extent in ms.
	TimeOrigin int64
	TimeSpan   int64
	Trajs      []*model.Trajectory
}

// durBucket is one mixture component of the time-range distribution.
type durBucket struct {
	weight   float64
	min, max int64 // duration range in ms
}

// spec defines a generator's distributions.
type spec struct {
	name       string
	boundary   geo.Rect
	timeOrigin int64
	timeSpan   int64
	durations  []durBucket
	// extentKm samples a trajectory's spatial extent in km.
	extents []extentBucket
	// hotspots concentrate trajectories in urban cores, giving elements
	// realistic reuse.
	hotspots  []hotspot
	objects   int
	avgPoints int
}

type extentBucket struct {
	weight   float64
	min, max float64 // extent in km
}

type hotspot struct {
	cx, cy, radius float64 // degrees
	weight         float64
}

const (
	minute = int64(60_000)
	hour   = int64(3600_000)
	day    = 24 * hour
)

// tdriveSpec matches Fig. 14(a)/(c): one week of Beijing taxis.
func tdriveSpec() spec {
	return spec{
		name:       "tdrive",
		boundary:   geo.Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45},
		timeOrigin: 1_201_900_000_000, // Feb 2008, as TDrive
		timeSpan:   7 * day,
		durations: []durBucket{
			// Short urban trips dominate inside the <2h mass (taxis run
			// 15-45 minute fares), keeping the mean well below an hour as
			// the paper's CDF implies.
			{weight: 0.40, min: 5 * minute, max: 45 * minute},
			{weight: 0.26, min: 45 * minute, max: 2 * hour},
			{weight: 0.28, min: 2 * hour, max: 10 * hour},
			{weight: 0.05, min: 10 * hour, max: 18 * hour},
			{weight: 0.01, min: 18 * hour, max: 40 * hour},
		},
		// Resolutions 7-10 under a 15-degree boundary: cell width 15/2^r
		// degrees ≈ 1667km/2^r; α=5 elements at r=7..10 hold extents of
		// roughly 2.7-65 km.
		extents: []extentBucket{
			{weight: 0.25, min: 2.7, max: 8},
			{weight: 0.40, min: 8, max: 20},
			{weight: 0.25, min: 20, max: 40},
			{weight: 0.10, min: 40, max: 65},
		},
		hotspots: []hotspot{
			{cx: 116.4, cy: 39.9, radius: 0.5, weight: 0.7}, // Beijing core
			{cx: 116.7, cy: 39.6, radius: 0.8, weight: 0.2},
			{cx: 117.2, cy: 39.1, radius: 0.6, weight: 0.1}, // Tianjin
		},
		objects:   1200,
		avgPoints: 60,
	}
}

// lorrySpec matches Fig. 14(b)/(d): one month of Guangzhou lorries.
func lorrySpec() spec {
	return spec{
		name:       "lorry",
		boundary:   geo.Rect{MinX: 70, MinY: 0, MaxX: 140, MaxY: 55},
		timeOrigin: 1_393_632_000_000, // 2014-03-01
		timeSpan:   31 * day,
		durations: []durBucket{
			// Delivery legs are short; the 88% < 2h mass concentrates well
			// under an hour.
			{weight: 0.60, min: 5 * minute, max: 40 * minute},
			{weight: 0.28, min: 40 * minute, max: 2 * hour},
			{weight: 0.10, min: 2 * hour, max: 8 * hour},
			{weight: 0.015, min: 8 * hour, max: 14 * hour},
			{weight: 0.005, min: 14 * hour, max: 36 * hour},
		},
		// Resolutions 9-14 under a 70-degree boundary: extents of ~2-76km,
		// with <1% inter-city hauls (hundreds of km).
		extents: []extentBucket{
			{weight: 0.35, min: 2, max: 8},
			{weight: 0.35, min: 8, max: 25},
			{weight: 0.22, min: 25, max: 76},
			{weight: 0.072, min: 76, max: 200},
			{weight: 0.008, min: 200, max: 900}, // long hauls
		},
		hotspots: []hotspot{
			{cx: 113.3, cy: 23.1, radius: 0.6, weight: 0.55}, // Guangzhou
			{cx: 114.1, cy: 22.6, radius: 0.5, weight: 0.25}, // Shenzhen
			{cx: 113.1, cy: 22.3, radius: 0.4, weight: 0.12},
			{cx: 112.0, cy: 24.8, radius: 1.2, weight: 0.08},
		},
		objects:   5000,
		avgPoints: 40,
	}
}

// TDriveSim generates a TDrive-like dataset with n trajectories.
func TDriveSim(n int, seed int64) *Dataset { return generate(tdriveSpec(), n, seed) }

// TLorrySim generates a Lorry-like dataset with n trajectories.
func TLorrySim(n int, seed int64) *Dataset { return generate(lorrySpec(), n, seed) }

// kmPerDegree approximates planar degree length at mid latitudes; the
// paper's resolution histograms are computed the same way (extent relative
// to the boundary).
const kmPerDegree = 111.0

func generate(s spec, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// Scale the fleet so objects average ~40 trajectories regardless of the
	// generated dataset size (the paper's Fig. 19(a): half the objects have
	// <= 40 trajectories over 12 hours).
	objects := s.objects
	if n/40 < objects {
		objects = n / 40
	}
	if objects < 20 {
		objects = 20
	}
	ds := &Dataset{
		Name:       s.name,
		Boundary:   s.boundary,
		TimeOrigin: s.timeOrigin,
		TimeSpan:   s.timeSpan,
		Trajs:      make([]*model.Trajectory, 0, n),
	}
	for i := 0; i < n; i++ {
		oid := fmt.Sprintf("%s-obj-%05d", s.name, rng.Intn(objects))
		tid := fmt.Sprintf("%s-%07d", s.name, i)
		ds.Trajs = append(ds.Trajs, genTraj(s, rng, oid, tid))
	}
	return ds
}

func sampleBucketDur(rng *rand.Rand, buckets []durBucket) int64 {
	r := rng.Float64()
	for _, b := range buckets {
		if r < b.weight {
			return b.min + rng.Int63n(b.max-b.min)
		}
		r -= b.weight
	}
	last := buckets[len(buckets)-1]
	return last.min + rng.Int63n(last.max-last.min)
}

func sampleExtent(rng *rand.Rand, buckets []extentBucket) float64 {
	r := rng.Float64()
	for _, b := range buckets {
		if r < b.weight {
			return b.min + rng.Float64()*(b.max-b.min)
		}
		r -= b.weight
	}
	last := buckets[len(buckets)-1]
	return last.min + rng.Float64()*(last.max-last.min)
}

func sampleHotspot(rng *rand.Rand, spots []hotspot) (cx, cy, radius float64) {
	r := rng.Float64()
	for _, h := range spots {
		if r < h.weight {
			return h.cx, h.cy, h.radius
		}
		r -= h.weight
	}
	h := spots[len(spots)-1]
	return h.cx, h.cy, h.radius
}

// genTraj builds one random-waypoint trajectory: a start near a hotspot, a
// heading, and a walk sized to hit the sampled spatial extent and duration.
func genTraj(s spec, rng *rand.Rand, oid, tid string) *model.Trajectory {
	dur := sampleBucketDur(rng, s.durations)
	extentDeg := sampleExtent(rng, s.extents) / kmPerDegree
	cx, cy, radius := sampleHotspot(rng, s.hotspots)

	startX := cx + (rng.Float64()*2-1)*radius
	startY := cy + (rng.Float64()*2-1)*radius

	nPts := s.avgPoints/2 + rng.Intn(s.avgPoints)
	if nPts < 2 {
		nPts = 2
	}
	pts := make([]model.Point, nPts)
	startT := s.timeOrigin + rng.Int63n(maxI64(1, s.timeSpan-dur))

	// Random waypoint walk scaled so the bounding box approximates the
	// sampled extent: alternate straight legs with direction changes.
	heading := rng.Float64() * 2 * math.Pi
	legLen := extentDeg / math.Sqrt(float64(nPts))
	x, y := startX, startY
	minX, maxX, minY, maxY := x, x, y, y
	for i := 0; i < nPts; i++ {
		pts[i] = model.Point{
			X: clampF(x, s.boundary.MinX, s.boundary.MaxX),
			Y: clampF(y, s.boundary.MinY, s.boundary.MaxY),
			T: startT + int64(float64(dur)*float64(i)/float64(nPts-1)),
		}
		// Turn occasionally, keeping momentum.
		heading += (rng.Float64() - 0.5) * 1.2
		step := legLen * (0.5 + rng.Float64())
		// Gentle pull back toward the start once the target extent is hit,
		// so the bounding box stays near the sampled size.
		if maxX-minX > extentDeg || maxY-minY > extentDeg {
			heading = math.Atan2(startY-y, startX-x) + (rng.Float64()-0.5)*0.8
		}
		x += math.Cos(heading) * step
		y += math.Sin(heading) * step
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Replicate implements the paper's scalability dataset (Section VI-F): it
// returns factor copies of the dataset with time ranges and spatial
// locations offset ("we offset the time range and spatial location of the
// original data to generate 10x Lorry data"). Offsets are small relative to
// the dataset extent, so data density grows with the factor — queries of a
// fixed size must process proportionally more data, which is what the
// paper's scalability figure measures.
func Replicate(ds *Dataset, factor int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{
		Name:       fmt.Sprintf("%s-x%d", ds.Name, factor),
		Boundary:   ds.Boundary,
		TimeOrigin: ds.TimeOrigin,
		TimeSpan:   ds.TimeSpan + int64(factor)*6*hour,
		Trajs:      make([]*model.Trajectory, 0, len(ds.Trajs)*factor),
	}
	for c := 0; c < factor; c++ {
		dt := int64(c) * 6 * hour
		dx := (rng.Float64() - 0.5) * ds.Boundary.Width() * 0.05
		dy := (rng.Float64() - 0.5) * ds.Boundary.Height() * 0.05
		for _, t := range ds.Trajs {
			nt := &model.Trajectory{
				OID:    fmt.Sprintf("%s-c%d", t.OID, c),
				TID:    fmt.Sprintf("%s-c%d", t.TID, c),
				Points: make([]model.Point, len(t.Points)),
			}
			for i, p := range t.Points {
				nt.Points[i] = model.Point{
					X: clampF(p.X+dx, ds.Boundary.MinX, ds.Boundary.MaxX),
					Y: clampF(p.Y+dy, ds.Boundary.MinY, ds.Boundary.MaxY),
					T: p.T + dt,
				}
			}
			out.Trajs = append(out.Trajs, nt)
		}
	}
	return out
}
