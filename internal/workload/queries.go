package workload

import (
	"math/rand"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// QuerySampler draws the random query windows the paper's setting section
// describes: "we randomly generate 100 query windows within the
// spatio-temporal range of TDrive and Lorry".
type QuerySampler struct {
	ds  *Dataset
	rng *rand.Rand
}

// NewQuerySampler creates a sampler over a dataset.
func NewQuerySampler(ds *Dataset, seed int64) *QuerySampler {
	return &QuerySampler{ds: ds, rng: rand.New(rand.NewSource(seed))}
}

// TimeWindow samples a temporal query of the given duration, anchored near
// trajectory activity (a random trajectory's start time) so queries are not
// dominated by empty regions.
func (s *QuerySampler) TimeWindow(duration int64) model.TimeRange {
	if len(s.ds.Trajs) == 0 {
		start := s.ds.TimeOrigin + s.rng.Int63n(maxI64(1, s.ds.TimeSpan-duration))
		return model.TimeRange{Start: start, End: start + duration}
	}
	t := s.ds.Trajs[s.rng.Intn(len(s.ds.Trajs))]
	anchor := t.TimeRange().Start - duration/2 + s.rng.Int63n(maxI64(1, duration))
	if anchor < s.ds.TimeOrigin {
		anchor = s.ds.TimeOrigin
	}
	return model.TimeRange{Start: anchor, End: anchor + duration}
}

// SpaceWindow samples a spatial query window of sideKm × sideKm kilometres,
// centered near a random trajectory point.
func (s *QuerySampler) SpaceWindow(sideKm float64) geo.Rect {
	side := sideKm / kmPerDegree
	var cx, cy float64
	if len(s.ds.Trajs) == 0 {
		cx = s.ds.Boundary.MinX + s.rng.Float64()*s.ds.Boundary.Width()
		cy = s.ds.Boundary.MinY + s.rng.Float64()*s.ds.Boundary.Height()
	} else {
		t := s.ds.Trajs[s.rng.Intn(len(s.ds.Trajs))]
		p := t.Points[s.rng.Intn(len(t.Points))]
		cx, cy = p.X, p.Y
	}
	r := geo.Rect{
		MinX: cx - side/2, MinY: cy - side/2,
		MaxX: cx + side/2, MaxY: cy + side/2,
	}
	// Clamp into the boundary, preserving the window size where possible.
	if r.MinX < s.ds.Boundary.MinX {
		r.MaxX += s.ds.Boundary.MinX - r.MinX
		r.MinX = s.ds.Boundary.MinX
	}
	if r.MinY < s.ds.Boundary.MinY {
		r.MaxY += s.ds.Boundary.MinY - r.MinY
		r.MinY = s.ds.Boundary.MinY
	}
	if r.MaxX > s.ds.Boundary.MaxX {
		r.MinX -= r.MaxX - s.ds.Boundary.MaxX
		r.MaxX = s.ds.Boundary.MaxX
	}
	if r.MaxY > s.ds.Boundary.MaxY {
		r.MinY -= r.MaxY - s.ds.Boundary.MaxY
		r.MaxY = s.ds.Boundary.MaxY
	}
	return r
}

// QueryTrajectory samples a stored trajectory to use as a similarity query.
func (s *QuerySampler) QueryTrajectory() *model.Trajectory {
	return s.ds.Trajs[s.rng.Intn(len(s.ds.Trajs))]
}

// ObjectID samples an object id present in the dataset.
func (s *QuerySampler) ObjectID() string {
	return s.ds.Trajs[s.rng.Intn(len(s.ds.Trajs))].OID
}

// ObjectWindow samples an ID-temporal query: an object together with a time
// range anchored near one of its trajectories, so queries hit realistic
// activity instead of empty time.
func (s *QuerySampler) ObjectWindow(duration int64) (string, model.TimeRange) {
	t := s.ds.Trajs[s.rng.Intn(len(s.ds.Trajs))]
	anchor := t.TimeRange().Start - duration/2
	if anchor < s.ds.TimeOrigin {
		anchor = s.ds.TimeOrigin
	}
	return t.OID, model.TimeRange{Start: anchor, End: anchor + duration}
}
