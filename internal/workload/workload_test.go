package workload

import (
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
)

func TestTDriveSimMatchesPaperTimeDistribution(t *testing.T) {
	ds := TDriveSim(5000, 1)
	if len(ds.Trajs) != 5000 {
		t.Fatalf("generated %d trajectories", len(ds.Trajs))
	}
	var under2h, under18h int
	for _, tr := range ds.Trajs {
		d := tr.TimeRange().Duration()
		if d <= 2*hour {
			under2h++
		}
		if d <= 18*hour {
			under18h++
		}
	}
	f2 := float64(under2h) / 5000
	f18 := float64(under18h) / 5000
	// Paper: ~66% < 2h, >99% < 18h.
	if f2 < 0.60 || f2 > 0.72 {
		t.Errorf("TDrive under-2h fraction = %.3f, want ~0.66", f2)
	}
	if f18 < 0.985 {
		t.Errorf("TDrive under-18h fraction = %.3f, want > 0.99", f18)
	}
}

func TestTLorrySimMatchesPaperTimeDistribution(t *testing.T) {
	ds := TLorrySim(5000, 2)
	var under2h, under14h int
	for _, tr := range ds.Trajs {
		d := tr.TimeRange().Duration()
		if d <= 2*hour {
			under2h++
		}
		if d <= 14*hour {
			under14h++
		}
	}
	f2 := float64(under2h) / 5000
	f14 := float64(under14h) / 5000
	// Paper: ~88% < 2h, 99% < 14h.
	if f2 < 0.82 || f2 > 0.93 {
		t.Errorf("Lorry under-2h fraction = %.3f, want ~0.88", f2)
	}
	if f14 < 0.98 {
		t.Errorf("Lorry under-14h fraction = %.3f, want ~0.99", f14)
	}
}

// Fig. 14(c)/(d): resolution histograms at α=β=5. TDrive concentrates at
// 7-10; Lorry at 9-14 with a small long-haul tail.
func TestResolutionDistributions(t *testing.T) {
	check := func(name string, ds *Dataset, lo, hi int, wantFrac float64) {
		t.Helper()
		space := geo.MustSpace(ds.Boundary)
		in := 0
		for _, tr := range ds.Trajs {
			mbr := space.NormalizeRect(tr.MBR())
			r := quad.ResolutionForExtent(mbr.Width(), mbr.Height(), 5, 5, 16)
			if r >= lo && r <= hi {
				in++
			}
		}
		frac := float64(in) / float64(len(ds.Trajs))
		if frac < wantFrac {
			t.Errorf("%s: only %.3f of trajectories in resolutions [%d,%d], want >= %.2f",
				name, frac, lo, hi, wantFrac)
		}
	}
	check("tdrive", TDriveSim(3000, 3), 7, 10, 0.80)
	check("lorry", TLorrySim(3000, 4), 9, 14, 0.80)
}

func TestTrajectoriesAreValidAndInBounds(t *testing.T) {
	for _, ds := range []*Dataset{TDriveSim(1000, 5), TLorrySim(1000, 6)} {
		for i, tr := range ds.Trajs {
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s traj %d invalid: %v", ds.Name, i, err)
			}
			mbr := tr.MBR()
			if !ds.Boundary.Contains(mbr) {
				t.Fatalf("%s traj %d MBR %v outside boundary", ds.Name, i, mbr)
			}
			trng := tr.TimeRange()
			if trng.Start < ds.TimeOrigin || trng.End > ds.TimeOrigin+ds.TimeSpan+2*day {
				t.Fatalf("%s traj %d time range %v outside dataset span", ds.Name, i, trng)
			}
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := TDriveSim(100, 42)
	b := TDriveSim(100, 42)
	for i := range a.Trajs {
		if a.Trajs[i].TID != b.Trajs[i].TID || len(a.Trajs[i].Points) != len(b.Trajs[i].Points) {
			t.Fatal("generation is not deterministic for equal seeds")
		}
		if a.Trajs[i].Points[0] != b.Trajs[i].Points[0] {
			t.Fatal("point streams differ for equal seeds")
		}
	}
	c := TDriveSim(100, 43)
	same := 0
	for i := range a.Trajs {
		if a.Trajs[i].Points[0] == c.Trajs[i].Points[0] {
			same++
		}
	}
	if same == len(a.Trajs) {
		t.Error("different seeds produced identical data")
	}
}

func TestReplicateScalesAndOffsets(t *testing.T) {
	base := TLorrySim(200, 7)
	rep := Replicate(base, 3, 8)
	if len(rep.Trajs) != 600 {
		t.Fatalf("replicated size = %d, want 600", len(rep.Trajs))
	}
	// TIDs must stay unique.
	seen := map[string]bool{}
	for _, tr := range rep.Trajs {
		if seen[tr.TID] {
			t.Fatalf("duplicate TID %s", tr.TID)
		}
		seen[tr.TID] = true
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Copies are offset but stay within the (slightly extended) span so
	// data density grows with the factor.
	for _, tr := range rep.Trajs {
		r := tr.TimeRange()
		if r.Start < rep.TimeOrigin || r.End > rep.TimeOrigin+rep.TimeSpan+2*day {
			t.Errorf("replica time range %v outside extended span", r)
			break
		}
	}
}

func TestQuerySampler(t *testing.T) {
	ds := TDriveSim(500, 9)
	s := NewQuerySampler(ds, 10)
	for i := 0; i < 200; i++ {
		q := s.TimeWindow(1 * hour)
		if !q.Valid() || q.Duration() != hour {
			t.Fatalf("bad time window %v", q)
		}
		r := s.SpaceWindow(1.5)
		if !r.Valid() {
			t.Fatalf("bad space window %v", r)
		}
		if !ds.Boundary.Contains(r) {
			t.Fatalf("window %v outside boundary", r)
		}
		side := r.Width() * kmPerDegree
		if side < 1.4 || side > 1.6 {
			t.Fatalf("window side = %.2f km, want 1.5", side)
		}
	}
	if s.ObjectID() == "" {
		t.Error("empty object id")
	}
	if s.QueryTrajectory() == nil {
		t.Error("nil query trajectory")
	}
}

func TestHotspotConcentration(t *testing.T) {
	ds := TLorrySim(3000, 21)
	// At least half of all trajectory starts should fall near the
	// configured urban hotspots (within ~1.5 degrees of Guangzhou or
	// Shenzhen).
	near := 0
	for _, tr := range ds.Trajs {
		p := tr.Points[0]
		if dist2(p.X, p.Y, 113.3, 23.1) < 1.5 || dist2(p.X, p.Y, 114.1, 22.6) < 1.5 {
			near++
		}
	}
	frac := float64(near) / float64(len(ds.Trajs))
	if frac < 0.5 {
		t.Errorf("only %.2f of starts near hotspots; clustering too weak", frac)
	}
}

func dist2(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

func TestExtentsRoughlyMatchSample(t *testing.T) {
	ds := TDriveSim(2000, 23)
	// The extent mixture tops out at 65 km for TDrive; sampled MBRs should
	// respect it with modest walk overshoot.
	over := 0
	for _, tr := range ds.Trajs {
		mbr := tr.MBR()
		km := mbr.Width() * kmPerDegree
		if h := mbr.Height() * kmPerDegree; h > km {
			km = h
		}
		if km > 100 {
			over++
		}
	}
	if frac := float64(over) / float64(len(ds.Trajs)); frac > 0.02 {
		t.Errorf("%.3f of trajectories exceed 100km extent; walk control too loose", frac)
	}
}

func TestTimeWindowNeverBeforeOrigin(t *testing.T) {
	ds := TDriveSim(50, 25)
	s := NewQuerySampler(ds, 26)
	for i := 0; i < 500; i++ {
		q := s.TimeWindow(24 * hour)
		if q.Start < ds.TimeOrigin {
			t.Fatalf("window starts before origin: %v", q)
		}
	}
}

func TestObjectWindowAnchorsToObjectActivity(t *testing.T) {
	ds := TLorrySim(500, 27)
	s := NewQuerySampler(ds, 28)
	for i := 0; i < 100; i++ {
		oid, q := s.ObjectWindow(12 * hour)
		// The object must have at least one trajectory intersecting q.
		hit := false
		for _, tr := range ds.Trajs {
			if tr.OID == oid && tr.TimeRange().Intersects(q) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("iter %d: sampled object window misses all activity", i)
		}
	}
}
