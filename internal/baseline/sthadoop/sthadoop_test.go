package sthadoop

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

var boundary = geo.Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45}

func testStore(t *testing.T, n int, seed int64) (*Store, []*model.Trajectory) {
	t.Helper()
	cfg := DefaultConfig(boundary)
	cfg.JobStartupMillis = 0 // keep unit tests fast
	s := New(cfg)
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]*model.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		m := 5 + rng.Intn(40)
		pts := make([]model.Point, m)
		x := 110 + rng.Float64()*15
		y := 35 + rng.Float64()*10
		ts := int64(1_500_000_000_000) + rng.Int63n(14*24*3600_000)
		for j := range pts {
			x += (rng.Float64() - 0.5) * 0.02
			y += (rng.Float64() - 0.5) * 0.02
			ts += 60_000
			pts[j] = model.Point{X: clampF(x, 110, 125), Y: clampF(y, 35, 45), T: ts}
		}
		tr := &model.Trajectory{OID: "o", TID: fmt.Sprintf("t%05d", i), Points: pts}
		trajs = append(trajs, tr)
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	return s, trajs
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestTemporalQueryFindsIntersectingTrajectories(t *testing.T) {
	s, trajs := testStore(t, 300, 1)
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 10; iter++ {
		qs := int64(1_500_000_000_000) + rng.Int63n(14*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + 6*3600_000}
		got, rep := s.TemporalRangeQuery(q)
		gotSet := map[string]bool{}
		for _, g := range got {
			gotSet[g.TID] = true
			if !g.TimeRange().Intersects(q) {
				t.Fatalf("result %s does not intersect query", g.TID)
			}
		}
		// A trajectory with a point inside q must be found (point-level
		// recall; range-straddling trajectories without samples inside are
		// a documented STH semantic gap).
		for _, tr := range trajs {
			hasPoint := false
			for _, p := range tr.Points {
				if p.T >= q.Start && p.T <= q.End {
					hasPoint = true
					break
				}
			}
			if hasPoint && !gotSet[tr.TID] {
				t.Fatalf("iter %d: trajectory with sampled point in range missing", iter)
			}
		}
		if rep.Candidates == 0 && len(got) > 0 {
			t.Error("candidates not counted")
		}
	}
}

func TestSpatialQueryPointRecall(t *testing.T) {
	s, trajs := testStore(t, 300, 3)
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 10; iter++ {
		cx := 110 + rng.Float64()*14
		cy := 35 + rng.Float64()*9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}
		got, _ := s.SpatialRangeQuery(sr)
		gotSet := map[string]bool{}
		for _, g := range got {
			gotSet[g.TID] = true
			if !g.IntersectsRect(sr) {
				t.Fatalf("result does not intersect window")
			}
		}
		for _, tr := range trajs {
			hasPoint := false
			for _, p := range tr.Points {
				if sr.ContainsPoint(p.X, p.Y) {
					hasPoint = true
					break
				}
			}
			if hasPoint && !gotSet[tr.TID] {
				t.Fatalf("iter %d: trajectory with point inside window missing", iter)
			}
		}
	}
}

func TestCandidatesArePointGranularity(t *testing.T) {
	s, _ := testStore(t, 200, 5)
	q := model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 14*24*3600_000}
	_, rep := s.TemporalRangeQuery(q)
	// Visiting a wide range must touch far more points than trajectories —
	// the order-of-magnitude gap of Fig. 17(b).
	if rep.Candidates < 200*3 {
		t.Errorf("point-granularity candidates = %d, expected thousands", rep.Candidates)
	}
}

func TestOOMSimulation(t *testing.T) {
	cfg := DefaultConfig(boundary)
	cfg.JobStartupMillis = 0
	cfg.MaxMemoryPoints = 100
	s := New(cfg)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		pts := make([]model.Point, 20)
		for j := range pts {
			pts[j] = model.Point{
				X: 110 + rng.Float64()*15, Y: 35 + rng.Float64()*10,
				T: 1_500_000_000_000 + int64(j)*60_000,
			}
		}
		s.Put(&model.Trajectory{OID: "o", TID: fmt.Sprintf("t%d", i), Points: pts})
	}
	_, rep := s.TemporalRangeQuery(model.TimeRange{Start: 1_500_000_000_000, End: 1_500_000_000_000 + 3600_000})
	if !rep.OOM {
		t.Error("expected OOM with a 100-point budget")
	}
}

func TestPointsCounter(t *testing.T) {
	s, trajs := testStore(t, 50, 7)
	var want int64
	for _, tr := range trajs {
		want += int64(len(tr.Points))
	}
	if s.Points() != want {
		t.Errorf("Points = %d, want %d", s.Points(), want)
	}
}
